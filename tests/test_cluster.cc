/**
 * @file
 * Cluster-layer tests: deployment, routing, keep-alive scale-to-zero,
 * cold/warm accounting under Poisson and closed-loop traffic.
 */

#include <gtest/gtest.h>

#include "cluster/azure_workload.hh"
#include "cluster/cluster.hh"
#include "cluster/traffic.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::cluster {
namespace {

using sim::Simulation;
using sim::Task;

ClusterConfig
smallConfig(int workers = 1)
{
    ClusterConfig cfg;
    cfg.workers = workers;
    cfg.keepAlive = sec(60);
    cfg.scalePeriod = sec(1);
    return cfg;
}

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

TEST(Cluster, DeployAndInvoke)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    Duration e2e = 0;
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        e2e = co_await cluster.invoke("helloworld");
    });
    EXPECT_GT(e2e, msec(100)); // record-phase cold start
    EXPECT_EQ(cluster.stats("helloworld").coldStarts, 1);
    EXPECT_EQ(cluster.instanceCount("helloworld"), 1);
}

TEST(Cluster, SecondInvocationHitsWarmInstance)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    Duration first = 0, second = 0;
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        first = co_await cluster.invoke("helloworld");
        second = co_await cluster.invoke("helloworld");
    });
    EXPECT_EQ(cluster.stats("helloworld").warmHits, 1);
    EXPECT_LT(second, first / 10);
}

TEST(Cluster, KeepAliveScalesToZero)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        cluster.startAutoscaler();
        (void)co_await cluster.invoke("helloworld");
        EXPECT_EQ(cluster.instanceCount("helloworld"), 1);
        // Within keep-alive: instance stays.
        co_await sim.delay(sec(30));
        EXPECT_EQ(cluster.instanceCount("helloworld"), 1);
        // Beyond keep-alive: janitor reclaims it.
        co_await sim.delay(sec(45));
        EXPECT_EQ(cluster.instanceCount("helloworld"), 0);
        EXPECT_GT(cluster.stats("helloworld").scaleDowns, 0);
        // Next invocation is cold again (REAP prefetch this time).
        (void)co_await cluster.invoke("helloworld");
        EXPECT_EQ(cluster.stats("helloworld").coldStarts, 2);
        cluster.stopAutoscaler();
    });
}

TEST(Cluster, ConcurrentBurstScalesOut)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        // Warm-up + record.
        (void)co_await cluster.invoke("helloworld");

        // Four simultaneous arrivals: one warm hit + three cold
        // scale-outs.
        struct Arrival {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("helloworld");
                done->arrive();
            }
        };
        sim::Latch done(sim, 4);
        for (int i = 0; i < 4; ++i)
            sim.spawn(Arrival::run(cluster, &done));
        co_await done.wait();
        EXPECT_EQ(cluster.instanceCount("helloworld"), 4);
    });
    EXPECT_EQ(cluster.stats("helloworld").coldStarts, 4);
    EXPECT_EQ(cluster.stats("helloworld").warmHits, 1);
}

TEST(Cluster, MultiWorkerRouting)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig(3));
    cluster.deploy(func::profileByName("pyaes"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        // Sequential invocations reuse the same warm worker.
        for (int i = 0; i < 5; ++i)
            (void)co_await cluster.invoke("pyaes");
        EXPECT_EQ(cluster.instanceCount("pyaes"), 1);
    });
    EXPECT_EQ(cluster.stats("pyaes").coldStarts, 1);
    EXPECT_EQ(cluster.stats("pyaes").warmHits, 4);
}

TEST(Cluster, RoundRobinRotationStartsAtWorkerZero)
{
    // Regression: the round-robin cursor used to pre-increment, so a
    // fresh cluster's first cold start (no warm instance anywhere)
    // always skipped worker 0.
    Simulation sim;
    Cluster cluster(sim, smallConfig(2));
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        (void)co_await cluster.invoke("helloworld");
    });
    EXPECT_EQ(
        cluster.worker(0).orchestrator().instanceCount("helloworld"),
        1);
    EXPECT_EQ(
        cluster.worker(1).orchestrator().instanceCount("helloworld"),
        0);
}

TEST(Cluster, RoundRobinCyclesAllWorkersInOrder)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig(3));
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        struct Arrival {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("helloworld");
                done->arrive();
            }
        };
        // Three simultaneous colds: the rotation must visit 0, 1, 2.
        sim::Latch done(sim, 3);
        for (int i = 0; i < 3; ++i)
            sim.spawn(Arrival::run(cluster, &done));
        co_await done.wait();
        for (int w = 0; w < 3; ++w) {
            EXPECT_EQ(cluster.worker(w).orchestrator().instanceCount(
                          "helloworld"),
                      1)
                << "worker " << w;
        }
    });
}

TEST(Cluster, PoissonTrafficSparseArrivalsAreCold)
{
    // Inter-arrival >> keep-alive: every invocation is a cold start.
    Simulation sim;
    ClusterConfig cfg = smallConfig();
    cfg.keepAlive = sec(10);
    Cluster cluster(sim, cfg);
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        cluster.startAutoscaler();
        PoissonTraffic load(sim, cluster, "helloworld", sec(120), 8,
                            42);
        co_await load.run();
        cluster.stopAutoscaler();
    });
    const auto &st = cluster.stats("helloworld");
    EXPECT_EQ(st.coldStarts + st.warmHits, 8);
    EXPECT_GE(st.coldStarts, 6); // overwhelmingly cold
}

TEST(Cluster, PoissonTrafficDenseArrivalsAreWarm)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        cluster.startAutoscaler();
        PoissonTraffic load(sim, cluster, "helloworld", msec(500), 40,
                            42);
        co_await load.run();
        cluster.stopAutoscaler();
    });
    const auto &st = cluster.stats("helloworld");
    EXPECT_EQ(st.coldStarts + st.warmHits, 40);
    EXPECT_GE(st.warmHits, 30);
}

TEST(Cluster, ClosedLoopKeepsInstancesWarm)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("pyaes"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        ClosedLoopTraffic bg(sim, cluster, "pyaes", 2, msec(50), 7);
        bg.start();
        co_await sim.delay(sec(5));
        co_await bg.stopAndDrain();
        EXPECT_GT(bg.completed(), 50);
    });
    const auto &st = cluster.stats("pyaes");
    EXPECT_LE(st.coldStarts, 2); // at most one per client
    EXPECT_GT(st.warmHits, 50);
}

TEST(Cluster, LatencyStatsRecorded)
{
    Simulation sim;
    Cluster cluster(sim, smallConfig());
    cluster.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await cluster.prepareAllSnapshots();
        for (int i = 0; i < 3; ++i)
            (void)co_await cluster.invoke("helloworld");
    });
    const auto &s = cluster.stats("helloworld").e2eLatencyMs;
    EXPECT_EQ(s.count(), 3);
    EXPECT_GT(s.max(), s.min());
}

TEST(Cluster, AzureWorkloadLatenciesBitIdentical)
{
    // DES-core determinism guard (ahead of the planned event-queue /
    // Channel perf work): two runs of the Azure workload with the
    // same seed must produce bit-identical per-invocation latencies,
    // not just matching aggregates.
    auto run_once = [](std::uint64_t seed) {
        Simulation sim;
        ClusterConfig cfg;
        cfg.workers = 2;
        cfg.keepAlive = sec(90);
        Cluster c(sim, cfg);
        AzureWorkloadConfig wcfg;
        wcfg.seed = seed;
        wcfg.functions = 4;
        wcfg.minInterarrival = sec(2);
        wcfg.maxInterarrival = sec(20);
        wcfg.horizon = sec(180);
        AzureWorkload w(sim, c, wcfg);
        AzureWorkloadResult result;
        runScenario(sim, [&]() -> Task<void> {
            result = co_await w.run();
        });
        return result;
    };
    auto a = run_once(0x5eed);
    auto b = run_once(0x5eed);
    ASSERT_GT(a.invocations, 10);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.coldStarts, b.coldStarts);
    // Bit-identical sample-by-sample.
    ASSERT_EQ(a.e2eLatencyMs.values().size(),
              b.e2eLatencyMs.values().size());
    for (size_t i = 0; i < a.e2eLatencyMs.values().size(); ++i) {
        EXPECT_EQ(a.e2eLatencyMs.values()[i],
                  b.e2eLatencyMs.values()[i])
            << "invocation " << i;
    }
    // A different seed must actually change the trajectory.
    auto c = run_once(0xd1ff);
    EXPECT_NE(a.e2eLatencyMs.sum(), c.e2eLatencyMs.sum());
}

} // namespace
} // namespace vhive::cluster
