/**
 * @file
 * Property-based suites (parameterized gtest) asserting the paper's
 * qualitative claims hold for EVERY function in the suite and across
 * seeds — the invariants a REAP deployment relies on:
 *
 *  P1  REAP prefetch is never slower than the vanilla baseline.
 *  P2  REAP eliminates the majority of page faults.
 *  P3  Residual faults track the unique/drift page fraction.
 *  P4  Restored footprint ~= working set, always << boot footprint.
 *  P5  Record-phase overhead stays within a sane envelope.
 *  P6  Warm invocations approximate the profile's warm time.
 *  P7  Traces are bit-deterministic; different inputs share the
 *      stable pool.
 *  P8  The WS-file/trace-file pair round-trips through the codec.
 *  P9  The DES kernel drains random schedule() interleavings in exact
 *      (when, seq) FIFO order through the two-level event queue.
 *  P10 The timing-wheel queue (now-ring / near heap / wheel / far
 *      heap) pops in exactly the order a flat reference heap does,
 *      for random schedules spanning every level's time range.
 *  P11 Class profile generators stay inside their declared envelope
 *      for every (seed, index), are bit-deterministic, and Generic
 *      cycles the FunctionBench pool unchanged.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/options.hh"
#include "core/orchestrator.hh"
#include "core/worker.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace vhive::core {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

/** Everything one cold-start experiment produces, for one function. */
struct Outcome {
    LatencyBreakdown vanilla;
    LatencyBreakdown record;
    LatencyBreakdown reap;
    LatencyBreakdown warm;
    Bytes restoredFootprint = 0;
    std::int64_t recordedPages = 0;
};

Outcome
runFunction(const std::string &name, std::uint64_t seed)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.seed = seed;
    Worker w(sim, cfg);
    Outcome out;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName(name));
        co_await orch.prepareSnapshot(name);

        InvokeOptions cold;
        cold.flushPageCache = true;
        cold.forceCold = true;

        out.vanilla = co_await orch.invoke(
            name, ColdStartMode::VanillaSnapshot, cold);
        out.record =
            co_await orch.invoke(name, ColdStartMode::Reap, cold);
        out.recordedPages = orch.record(name).pageCount();

        InvokeOptions keep = cold;
        keep.keepWarm = true;
        out.reap =
            co_await orch.invoke(name, ColdStartMode::Reap, keep);
        out.restoredFootprint = orch.instanceFootprints(name)[0];
        out.warm = co_await orch.invoke(name, ColdStartMode::Reap);
        co_await orch.stopAllInstances(name);
    });
    return out;
}

class PerFunction : public ::testing::TestWithParam<const char *>
{
  protected:
    const func::FunctionProfile &
    profile() const
    {
        return func::profileByName(GetParam());
    }
};

TEST_P(PerFunction, ReapNeverSlowerThanVanilla)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    EXPECT_LT(o.reap.total, o.vanilla.total) << GetParam();
}

TEST_P(PerFunction, ReapEliminatesMajorityOfFaults)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    // Residual faults are a strict minority of the recorded set.
    EXPECT_LT(o.reap.residualFaults, o.recordedPages / 2)
        << GetParam();
    // For stable functions (low unique/drift), elimination is ~97%+.
    const auto &p = profile();
    if (p.uniqueFrac < 0.05 && p.stableDriftFrac == 0.0) {
        EXPECT_LT(o.reap.residualFaults, o.recordedPages / 20)
            << GetParam();
    }
}

TEST_P(PerFunction, ResidualsTrackUniqueFraction)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    double expected_frac =
        p.uniqueFrac + (1.0 - p.uniqueFrac) * p.stableDriftFrac;
    double resid_pages =
        static_cast<double>(o.reap.majorFaults > 0
                                ? o.reap.residualFaults
                                : 0);
    // Residual FAULTS (run-granular) must not exceed the expected
    // unique PAGES; and unless the function is fully stable they
    // should be nonzero.
    EXPECT_LE(resid_pages,
              expected_frac * static_cast<double>(p.wsPages()) * 1.2)
        << GetParam();
    if (expected_frac > 0.01) {
        EXPECT_GT(o.reap.residualFaults, 0) << GetParam();
    }
}

TEST_P(PerFunction, RestoredFootprintTracksWorkingSet)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    double fp = toMiB(o.restoredFootprint);
    double ws = toMiB(p.workingSet);
    EXPECT_GT(fp, ws * 0.85) << GetParam();
    // A REAP instance holds the prefetched (record) set plus this
    // invocation's own unique pages.
    EXPECT_LT(fp, ws * 1.35 + 4.0) << GetParam();
    EXPECT_LT(fp, toMiB(p.bootFootprint) * 0.65) << GetParam();
}

TEST_P(PerFunction, RecordOverheadWithinEnvelope)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    double overhead = static_cast<double>(o.record.total) /
                          static_cast<double>(o.vanilla.total) -
                      1.0;
    EXPECT_GT(overhead, 0.0) << GetParam();
    EXPECT_LT(overhead, 0.95) << GetParam(); // paper: 15-87%
}

TEST_P(PerFunction, WarmApproximatesProfileWarmTime)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    // Warm total = warm exec + wire costs + input fetch; allow slack.
    Duration slack = msec(3);
    if (p.inputSize > 0)
        slack += sec(static_cast<double>(p.inputSize) / 150e6);
    EXPECT_GE(o.warm.total, p.warmExec) << GetParam();
    EXPECT_LE(o.warm.total, p.warmExec + slack) << GetParam();
}

TEST_P(PerFunction, BreakdownSumsToTotal)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    for (const LatencyBreakdown *bd :
         {&o.vanilla, &o.record, &o.reap}) {
        Duration parts = bd->loadVmm + bd->connRestore +
                         bd->processing + bd->fetchWs + bd->installWs;
        EXPECT_LE(parts, bd->total + msec(1)) << GetParam();
        // Components cover at least 90% of the end-to-end time (the
        // rest is control-plane handling).
        EXPECT_GT(static_cast<double>(parts),
                  0.90 * static_cast<double>(bd->total))
            << GetParam();
    }
}

TEST_P(PerFunction, TraceCodecRoundTripsRecordedSet)
{
    Simulation sim;
    Worker w(sim);
    WorkingSetRecord rec;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(profile());
        co_await orch.prepareSnapshot(GetParam());
        orch.flushHostCaches();
        (void)co_await orch.invoke(GetParam(), ColdStartMode::Reap);
        rec = orch.record(GetParam());
    });
    ASSERT_GT(rec.pageCount(), 0);
    auto bytes = TraceFileCodec::encode(rec);
    auto decoded = TraceFileCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->pages, rec.pages);
    // Delta-varint encoding stays well under 8 bytes/page.
    EXPECT_LT(static_cast<double>(bytes.size()),
              8.0 * static_cast<double>(rec.pageCount()));
}

TEST_P(PerFunction, DeterministicAcrossRuns)
{
    Outcome a = runFunction(GetParam(), 0x77);
    Outcome b = runFunction(GetParam(), 0x77);
    EXPECT_EQ(a.vanilla.total, b.vanilla.total);
    EXPECT_EQ(a.reap.total, b.reap.total);
    EXPECT_EQ(a.reap.residualFaults, b.reap.residualFaults);
    EXPECT_EQ(a.recordedPages, b.recordedPages);
}

INSTANTIATE_TEST_SUITE_P(
    FunctionBench, PerFunction,
    ::testing::Values("helloworld", "chameleon", "pyaes",
                      "image_rotate", "json_serdes", "lr_serving",
                      "cnn_serving", "rnn_serving", "lr_training",
                      "video_processing"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

/** Trace-generator invariants across seeds (property sweep). */
class TraceSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceSeeds, StablePoolIdenticalAcrossInputs)
{
    func::TraceGenerator gen(GetParam());
    for (const auto &p : func::functionBench()) {
        if (p.stableDriftFrac > 0)
            continue; // drift intentionally breaks this
        auto a = gen.invocation(p, 10);
        auto b = gen.invocation(p, 11);
        // Stable pages of a must all appear in b's page set.
        auto pb = b.touchedPages();
        std::int64_t missing = 0;
        for (const auto &r : a.runs) {
            if (!r.stable)
                continue;
            for (std::int64_t pg = r.page; pg < r.page + r.pages;
                 ++pg) {
                if (!std::binary_search(pb.begin(), pb.end(), pg))
                    ++missing;
            }
        }
        EXPECT_EQ(missing, 0) << p.name << " seed " << GetParam();
    }
}

TEST_P(TraceSeeds, PageAccountingConsistent)
{
    func::TraceGenerator gen(GetParam());
    for (const auto &p : func::functionBench()) {
        auto t = gen.invocation(p, 3);
        std::int64_t run_pages = 0;
        for (const auto &r : t.runs)
            run_pages += r.pages;
        EXPECT_EQ(run_pages, t.totalPages()) << p.name;
        EXPECT_EQ(t.totalPages(), p.wsPages()) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeeds,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0x123456789abcdefull));

/**
 * P9: kernel event-queue ordering. Parks coroutines on a capture-the-
 * handle awaitable, then drives Simulation::schedule directly with
 * randomly shuffled, heavily colliding timestamps — mixing the
 * now-ring and future-heap paths of the two-level queue — and checks
 * the drain order is exactly (when, seq): time-sorted, FIFO within a
 * timestamp.
 */
class KernelQueue : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    struct Hook {
        std::coroutine_handle<> handle;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            handle = h;
        }
        void await_resume() const noexcept {}
    };

    static Task<void>
    parked(Simulation &sim, Hook &hook,
           std::vector<std::pair<Time, int>> &log, int id)
    {
        co_await hook;
        log.emplace_back(sim.now(), id);
    }
};

TEST_P(KernelQueue, RandomInterleavingsDrainInWhenSeqFifoOrder)
{
    Rng rng(GetParam());
    Simulation sim;
    const int n = 256;
    std::vector<Hook> hooks(n);
    std::vector<std::pair<Time, int>> log;
    std::vector<Task<void>> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        tasks.push_back(parked(sim, hooks[i], log, i));
    for (auto &t : tasks)
        t.start(sim);
    sim.run(); // every task parks on its hook
    ASSERT_TRUE(log.empty());

    // Shuffle who gets scheduled when; ~6 distinct timestamps for 256
    // events forces long same-timestamp FIFO chains, and offset 0
    // lands in the now-ring while the rest go through the heap.
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(n, [&](std::int64_t i, std::int64_t j) {
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(j)]);
    });

    std::vector<std::pair<Time, int>> expected;
    for (int id : order) {
        Time when = sim.now() + usec(rng.uniformInt(0, 5));
        sim.schedule(hooks[static_cast<std::size_t>(id)].handle, when);
        expected.emplace_back(when, id);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    sim.run();
    EXPECT_EQ(log, expected);
}

TEST_P(KernelQueue, RunUntilHonorsWhenSeqOrderAcrossResumes)
{
    // Same setup, but drained in runUntil slices whose boundaries land
    // exactly on event timestamps; slicing must not reorder anything.
    Rng rng(GetParam() ^ 0x5eedull);
    Simulation sim;
    const int n = 128;
    std::vector<Hook> hooks(n);
    std::vector<std::pair<Time, int>> log;
    std::vector<Task<void>> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        tasks.push_back(parked(sim, hooks[i], log, i));
    for (auto &t : tasks)
        t.start(sim);
    sim.run();

    const Time base = sim.now();
    std::vector<std::pair<Time, int>> expected;
    for (int id = 0; id < n; ++id) {
        Time when = base + usec(rng.uniformInt(0, 3));
        sim.schedule(hooks[static_cast<std::size_t>(id)].handle, when);
        expected.emplace_back(when, id);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    for (Time cut = base; cut <= base + usec(3); cut += usec(1))
        sim.runUntil(cut);
    sim.run();
    EXPECT_EQ(log, expected);
}

TEST_P(KernelQueue, WheelMatchesReferenceHeapUnderRandomSchedules)
{
    // P10: drive sim::KernelQueue directly (null handles; pop never
    // resumes) against a flat (when, seq) min-heap. Deltas are drawn
    // from every level's range — 0 (now-ring), within the near granule
    // (16.4 us), across the wheel span (~67 ms, including exact slot
    // multiples), and beyond it (far heap) — interleaved with drains
    // that advance the clock and force refills/re-anchors.
    Rng rng(GetParam() ^ 0x3e17ull);
    sim::KernelQueue q;
    using Ref = std::pair<Time, std::uint64_t>;
    std::vector<Ref> ref;
    auto later = [](const Ref &a, const Ref &b) { return a > b; };

    Time now = 0;
    std::uint64_t seq = 0;
    auto pushOne = [&](Duration d) {
        q.push(now + d, seq, {}, now);
        ref.emplace_back(now + d, seq);
        std::push_heap(ref.begin(), ref.end(), later);
        ++seq;
    };
    auto popOne = [&] {
        ASSERT_EQ(q.nextWhen(), ref.front().first);
        sim::Event ev = q.pop();
        std::pop_heap(ref.begin(), ref.end(), later);
        Ref want = ref.back();
        ref.pop_back();
        ASSERT_EQ(ev.when, want.first);
        ASSERT_EQ(ev.seq, want.second);
        ASSERT_GE(ev.when, now);
        now = ev.when;
    };

    for (int round = 0; round < 1500; ++round) {
        std::int64_t burst = rng.uniformInt(1, 8);
        for (std::int64_t i = 0; i < burst; ++i) {
            Duration d = 0;
            switch (rng.uniformInt(0, 4)) {
            case 0:
                break; // now-ring
            case 1:
                d = rng.uniformInt(1, usec(16)); // near heap
                break;
            case 2:
                d = rng.uniformInt(1, msec(60)); // wheel slots
                break;
            case 3:
                d = rng.uniformInt(1, sec(5)); // far heap
                break;
            default:
                // Exact granule multiples probe slot boundaries.
                d = rng.uniformInt(0, 100) * Duration{1 << 14};
                break;
            }
            pushOne(d);
        }
        std::int64_t drains = rng.uniformInt(0, 10);
        while (drains-- > 0 && !q.empty())
            popOne();
        if (::testing::Test::HasFatalFailure())
            return;
    }
    while (!q.empty())
        popOne();
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(q.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelQueue,
                         ::testing::Values(1ull, 7ull, 99ull,
                                           0xfeedfaceull));

// --------------------------------------- P11: class profile envelopes

TEST(FunctionClasses, ProfilesStayInsideDeclaredEnvelope)
{
    const func::FunctionClass classes[] = {
        func::FunctionClass::MlInference, func::FunctionClass::Media,
        func::FunctionClass::Etl};
    const std::uint64_t seeds[] = {1, 7, 42, 0xa27e, 0xfeedface};
    for (auto cls : classes) {
        const auto &env = func::classEnvelope(cls);
        for (auto seed : seeds) {
            for (int idx = 0; idx < 32; ++idx) {
                SCOPED_TRACE(std::string(func::functionClassName(cls)) +
                             " seed=" + std::to_string(seed) +
                             " idx=" + std::to_string(idx));
                auto p = func::makeClassProfile(cls, seed, idx);
                EXPECT_EQ(p.cls, cls);
                EXPECT_GE(p.workingSet, env.minWorkingSet);
                EXPECT_LE(p.workingSet, env.maxWorkingSet);
                EXPECT_GE(p.uniqueFrac, env.minUniqueFrac);
                EXPECT_LE(p.uniqueFrac, env.maxUniqueFrac);
                EXPECT_GE(p.contiguityMean, env.minContiguity);
                EXPECT_LE(p.contiguityMean, env.maxContiguity);
                EXPECT_GE(p.inputSize, env.minInput);
                EXPECT_LE(p.inputSize, env.maxInput);
                EXPECT_GE(p.warmExec, msec(env.minWarmMs));
                EXPECT_LE(p.warmExec, msec(env.maxWarmMs));
                EXPECT_GE(p.initTime, msec(env.minInitMs));
                EXPECT_LE(p.initTime, msec(env.maxInitMs));
                EXPECT_GE(p.bootFootprint, env.minBootFootprint);
                EXPECT_LE(p.bootFootprint, env.maxBootFootprint);
                // The generated VM is self-consistent: the working
                // set and boot footprint fit into guest memory.
                EXPECT_LE(p.workingSet, p.vmMemory);
                EXPECT_LE(p.bootFootprint, p.vmMemory);
            }
        }
    }
}

TEST(FunctionClasses, GenerationIsDeterministicAndSeedSensitive)
{
    for (auto cls : {func::FunctionClass::MlInference,
                     func::FunctionClass::Media,
                     func::FunctionClass::Etl}) {
        SCOPED_TRACE(func::functionClassName(cls));
        auto a = func::makeClassProfile(cls, 42, 3);
        auto b = func::makeClassProfile(cls, 42, 3);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.warmExec, b.warmExec);
        EXPECT_EQ(a.workingSet, b.workingSet);
        EXPECT_EQ(a.uniqueFrac, b.uniqueFrac);
        EXPECT_EQ(a.contiguityMean, b.contiguityMean);
        EXPECT_EQ(a.inputSize, b.inputSize);
        EXPECT_EQ(a.initTime, b.initTime);
        EXPECT_EQ(a.bootFootprint, b.bootFootprint);
        // A different seed or index perturbs the draws (the streams
        // are named by class/index with the seed as the key).
        auto c = func::makeClassProfile(cls, 43, 3);
        auto d = func::makeClassProfile(cls, 42, 4);
        EXPECT_TRUE(a.workingSet != c.workingSet ||
                    a.warmExec != c.warmExec ||
                    a.uniqueFrac != c.uniqueFrac);
        EXPECT_TRUE(a.workingSet != d.workingSet ||
                    a.warmExec != d.warmExec ||
                    a.uniqueFrac != d.uniqueFrac);
    }
}

TEST(FunctionClasses, GenericCyclesFunctionBenchPoolUnchanged)
{
    const auto &pool = func::functionBench();
    ASSERT_FALSE(pool.empty());
    for (int idx = 0; idx < 2 * static_cast<int>(pool.size()); ++idx) {
        const auto &expect =
            pool[static_cast<size_t>(idx) % pool.size()];
        // Generic ignores the seed entirely.
        for (std::uint64_t seed : {0ull, 42ull, 0xa27eull}) {
            auto p = func::makeClassProfile(func::FunctionClass::Generic,
                                            seed, idx);
            EXPECT_EQ(p.name, expect.name);
            EXPECT_EQ(p.workingSet, expect.workingSet);
            EXPECT_EQ(p.warmExec, expect.warmExec);
            EXPECT_EQ(p.inputSize, expect.inputSize);
            EXPECT_EQ(p.cls, func::FunctionClass::Generic);
        }
    }
}

} // namespace
} // namespace vhive::core
