/**
 * @file
 * Property-based suites (parameterized gtest) asserting the paper's
 * qualitative claims hold for EVERY function in the suite and across
 * seeds — the invariants a REAP deployment relies on:
 *
 *  P1  REAP prefetch is never slower than the vanilla baseline.
 *  P2  REAP eliminates the majority of page faults.
 *  P3  Residual faults track the unique/drift page fraction.
 *  P4  Restored footprint ~= working set, always << boot footprint.
 *  P5  Record-phase overhead stays within a sane envelope.
 *  P6  Warm invocations approximate the profile's warm time.
 *  P7  Traces are bit-deterministic; different inputs share the
 *      stable pool.
 *  P8  The WS-file/trace-file pair round-trips through the codec.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/options.hh"
#include "core/orchestrator.hh"
#include "core/worker.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::core {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

/** Everything one cold-start experiment produces, for one function. */
struct Outcome {
    LatencyBreakdown vanilla;
    LatencyBreakdown record;
    LatencyBreakdown reap;
    LatencyBreakdown warm;
    Bytes restoredFootprint = 0;
    std::int64_t recordedPages = 0;
};

Outcome
runFunction(const std::string &name, std::uint64_t seed)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.seed = seed;
    Worker w(sim, cfg);
    Outcome out;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName(name));
        co_await orch.prepareSnapshot(name);

        InvokeOptions cold;
        cold.flushPageCache = true;
        cold.forceCold = true;

        out.vanilla = co_await orch.invoke(
            name, ColdStartMode::VanillaSnapshot, cold);
        out.record =
            co_await orch.invoke(name, ColdStartMode::Reap, cold);
        out.recordedPages = orch.record(name).pageCount();

        InvokeOptions keep = cold;
        keep.keepWarm = true;
        out.reap =
            co_await orch.invoke(name, ColdStartMode::Reap, keep);
        out.restoredFootprint = orch.instanceFootprints(name)[0];
        out.warm = co_await orch.invoke(name, ColdStartMode::Reap);
        co_await orch.stopAllInstances(name);
    });
    return out;
}

class PerFunction : public ::testing::TestWithParam<const char *>
{
  protected:
    const func::FunctionProfile &
    profile() const
    {
        return func::profileByName(GetParam());
    }
};

TEST_P(PerFunction, ReapNeverSlowerThanVanilla)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    EXPECT_LT(o.reap.total, o.vanilla.total) << GetParam();
}

TEST_P(PerFunction, ReapEliminatesMajorityOfFaults)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    // Residual faults are a strict minority of the recorded set.
    EXPECT_LT(o.reap.residualFaults, o.recordedPages / 2)
        << GetParam();
    // For stable functions (low unique/drift), elimination is ~97%+.
    const auto &p = profile();
    if (p.uniqueFrac < 0.05 && p.stableDriftFrac == 0.0) {
        EXPECT_LT(o.reap.residualFaults, o.recordedPages / 20)
            << GetParam();
    }
}

TEST_P(PerFunction, ResidualsTrackUniqueFraction)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    double expected_frac =
        p.uniqueFrac + (1.0 - p.uniqueFrac) * p.stableDriftFrac;
    double resid_pages =
        static_cast<double>(o.reap.majorFaults > 0
                                ? o.reap.residualFaults
                                : 0);
    // Residual FAULTS (run-granular) must not exceed the expected
    // unique PAGES; and unless the function is fully stable they
    // should be nonzero.
    EXPECT_LE(resid_pages,
              expected_frac * static_cast<double>(p.wsPages()) * 1.2)
        << GetParam();
    if (expected_frac > 0.01) {
        EXPECT_GT(o.reap.residualFaults, 0) << GetParam();
    }
}

TEST_P(PerFunction, RestoredFootprintTracksWorkingSet)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    double fp = toMiB(o.restoredFootprint);
    double ws = toMiB(p.workingSet);
    EXPECT_GT(fp, ws * 0.85) << GetParam();
    // A REAP instance holds the prefetched (record) set plus this
    // invocation's own unique pages.
    EXPECT_LT(fp, ws * 1.35 + 4.0) << GetParam();
    EXPECT_LT(fp, toMiB(p.bootFootprint) * 0.65) << GetParam();
}

TEST_P(PerFunction, RecordOverheadWithinEnvelope)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    double overhead = static_cast<double>(o.record.total) /
                          static_cast<double>(o.vanilla.total) -
                      1.0;
    EXPECT_GT(overhead, 0.0) << GetParam();
    EXPECT_LT(overhead, 0.95) << GetParam(); // paper: 15-87%
}

TEST_P(PerFunction, WarmApproximatesProfileWarmTime)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    const auto &p = profile();
    // Warm total = warm exec + wire costs + input fetch; allow slack.
    Duration slack = msec(3);
    if (p.inputSize > 0)
        slack += sec(static_cast<double>(p.inputSize) / 150e6);
    EXPECT_GE(o.warm.total, p.warmExec) << GetParam();
    EXPECT_LE(o.warm.total, p.warmExec + slack) << GetParam();
}

TEST_P(PerFunction, BreakdownSumsToTotal)
{
    Outcome o = runFunction(GetParam(), 0xabc);
    for (const LatencyBreakdown *bd :
         {&o.vanilla, &o.record, &o.reap}) {
        Duration parts = bd->loadVmm + bd->connRestore +
                         bd->processing + bd->fetchWs + bd->installWs;
        EXPECT_LE(parts, bd->total + msec(1)) << GetParam();
        // Components cover at least 90% of the end-to-end time (the
        // rest is control-plane handling).
        EXPECT_GT(static_cast<double>(parts),
                  0.90 * static_cast<double>(bd->total))
            << GetParam();
    }
}

TEST_P(PerFunction, TraceCodecRoundTripsRecordedSet)
{
    Simulation sim;
    Worker w(sim);
    WorkingSetRecord rec;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(profile());
        co_await orch.prepareSnapshot(GetParam());
        orch.flushHostCaches();
        (void)co_await orch.invoke(GetParam(), ColdStartMode::Reap);
        rec = orch.record(GetParam());
    });
    ASSERT_GT(rec.pageCount(), 0);
    auto bytes = TraceFileCodec::encode(rec);
    auto decoded = TraceFileCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->pages, rec.pages);
    // Delta-varint encoding stays well under 8 bytes/page.
    EXPECT_LT(static_cast<double>(bytes.size()),
              8.0 * static_cast<double>(rec.pageCount()));
}

TEST_P(PerFunction, DeterministicAcrossRuns)
{
    Outcome a = runFunction(GetParam(), 0x77);
    Outcome b = runFunction(GetParam(), 0x77);
    EXPECT_EQ(a.vanilla.total, b.vanilla.total);
    EXPECT_EQ(a.reap.total, b.reap.total);
    EXPECT_EQ(a.reap.residualFaults, b.reap.residualFaults);
    EXPECT_EQ(a.recordedPages, b.recordedPages);
}

INSTANTIATE_TEST_SUITE_P(
    FunctionBench, PerFunction,
    ::testing::Values("helloworld", "chameleon", "pyaes",
                      "image_rotate", "json_serdes", "lr_serving",
                      "cnn_serving", "rnn_serving", "lr_training",
                      "video_processing"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

/** Trace-generator invariants across seeds (property sweep). */
class TraceSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceSeeds, StablePoolIdenticalAcrossInputs)
{
    func::TraceGenerator gen(GetParam());
    for (const auto &p : func::functionBench()) {
        if (p.stableDriftFrac > 0)
            continue; // drift intentionally breaks this
        auto a = gen.invocation(p, 10);
        auto b = gen.invocation(p, 11);
        // Stable pages of a must all appear in b's page set.
        auto pb = b.touchedPages();
        std::int64_t missing = 0;
        for (const auto &r : a.runs) {
            if (!r.stable)
                continue;
            for (std::int64_t pg = r.page; pg < r.page + r.pages;
                 ++pg) {
                if (!std::binary_search(pb.begin(), pb.end(), pg))
                    ++missing;
            }
        }
        EXPECT_EQ(missing, 0) << p.name << " seed " << GetParam();
    }
}

TEST_P(TraceSeeds, PageAccountingConsistent)
{
    func::TraceGenerator gen(GetParam());
    for (const auto &p : func::functionBench()) {
        auto t = gen.invocation(p, 3);
        std::int64_t run_pages = 0;
        for (const auto &r : t.runs)
            run_pages += r.pages;
        EXPECT_EQ(run_pages, t.totalPages()) << p.name;
        EXPECT_EQ(t.totalPages(), p.wsPages()) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeeds,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0x123456789abcdefull));

} // namespace
} // namespace vhive::core
