/**
 * @file
 * Chaos property suite: fault plans x function classes x cold-start
 * modes, asserting the invariants the data plane must keep under
 * injected faults —
 *
 *  - pipeline byte accounting balances (every logical byte counted
 *    once; hedge duplicates accounted separately);
 *  - chunk refcounts never go negative and the staged index converges
 *    to the crash-free state, even when staging passes crash
 *    mid-flight;
 *  - single-flight staging never builds or uploads twice, faults or
 *    not;
 *  - every accepted invocation completes or is reported failed
 *    exactly once (coldStarts + warmHits + failedInvocations ==
 *    invocations);
 *  - a plan whose windows never open perturbs nothing (fault-free
 *    bit-identity; the golden suite locks the no-plan side);
 *  - same (seed, plan, workload) is bit-identical across runs and
 *    across parallel-kernel thread counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/azure_workload.hh"
#include "cluster/cluster.hh"
#include "cluster/parallel_fleet.hh"
#include "cluster/snapshot_registry.hh"
#include "cluster/traffic.hh"
#include "core/options.hh"
#include "func/profile.hh"
#include "mem/page_fetch.hh"
#include "mem/page_source.hh"
#include "net/object_store.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::FaultWindow;
using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

FaultSpec
spec(FaultKind kind, std::string target, Time start, Time end,
     double magnitude = 1.0, double probability = 1.0)
{
    FaultSpec s;
    s.kind = kind;
    s.target = std::move(target);
    s.windows.push_back(FaultWindow{start, end, magnitude, probability});
    return s;
}

// --------------------------------------------------- store-level faults

TEST(ChaosStore, OutageDelaysButCompletes)
{
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    FaultPlan plan(1);
    plan.add(spec(FaultKind::StoreOutage, "store", 0, sec(2)));
    store.setFaultPlan(&plan, "store");

    Duration took = 0;
    struct T {
        static Task<void>
        run(Simulation &sim, net::ObjectStore &s, Duration &out)
        {
            Time t0 = sim.now();
            co_await s.get(kMiB);
            out = sim.now() - t0;
        }
    };
    sim.spawn(T::run(sim, store, took));
    sim.run();

    // Stalled to the end of the outage window, then served normally.
    EXPECT_GE(took, sec(2));
    EXPECT_LT(took, sec(2) + msec(100));
    EXPECT_EQ(plan.stats().outageStalls, 1);
    EXPECT_EQ(plan.stats().outageStallTime, sec(2));
    EXPECT_EQ(store.stats().outageStalls, 1);
    // Byte accounting is oblivious to the fault.
    EXPECT_EQ(store.stats().bytesServed, kMiB);
}

TEST(ChaosStore, LatencyStormScalesServiceTime)
{
    auto timed_get = [](FaultPlan *plan) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        if (plan != nullptr)
            store.setFaultPlan(plan, "store");
        Duration took = 0;
        struct T {
            static Task<void>
            run(Simulation &sim, net::ObjectStore &s, Duration &out)
            {
                Time t0 = sim.now();
                co_await s.get(4 * kMiB);
                out = sim.now() - t0;
            }
        };
        sim.spawn(T::run(sim, store, took));
        sim.run();
        return took;
    };

    Duration base = timed_get(nullptr);
    FaultPlan storm(7);
    storm.add(spec(FaultKind::LatencyStorm, "store", 0, sec(10), 3.0));
    Duration stormy = timed_get(&storm);
    EXPECT_EQ(stormy, 3 * base);
    EXPECT_EQ(storm.stats().stormHits, 1);
}

TEST(ChaosStore, RequestErrorsPayRetriesAndBalance)
{
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    FaultPlan plan(11);
    plan.add(
        spec(FaultKind::RequestError, "store", 0, sec(60), 1.0, 0.5));
    store.setFaultPlan(&plan, "store");

    const Bytes len = 8 * kMiB;
    mem::RemoteObjectSource src(store);
    mem::PageFetchPipeline pipe(sim, src);
    struct T {
        static Task<void>
        run(mem::PageFetchPipeline &p, Bytes len)
        {
            co_await p.fetchWindowed(0, len, kMiB, 4);
        }
    };
    sim.spawn(T::run(pipe, len));
    sim.run();

    // Errors fired (p=0.5 over 8 windows is overwhelmingly likely),
    // every one paid a retry, and no byte was counted twice.
    EXPECT_GT(plan.stats().requestErrors, 0);
    EXPECT_EQ(store.stats().requestRetries, plan.stats().requestErrors);
    EXPECT_EQ(pipe.stats().bytesFetched, len);
    EXPECT_EQ(store.stats().bytesServed, len);
}

TEST(ChaosStore, InactivePlanDrawsNothing)
{
    // A plan whose windows never open must not perturb a run: the
    // Bernoulli streams are only consulted inside active windows.
    auto run_once = [](FaultPlan *plan) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        if (plan != nullptr)
            store.setFaultPlan(plan, "store");
        struct T {
            static Task<void>
            run(net::ObjectStore &s)
            {
                for (int i = 0; i < 16; ++i)
                    co_await s.get(256 * kKiB);
            }
        };
        sim.spawn(T::run(store));
        return sim.run();
    };

    Time base = run_once(nullptr);
    FaultPlan dormant(3);
    dormant.add(spec(FaultKind::Straggler, "*", sec(9000), sec(9999),
                     10.0, 0.5));
    EXPECT_EQ(run_once(&dormant), base);
    EXPECT_EQ(dormant.stats().stragglers, 0);
}

// ------------------------------------------------------ hedged requests

TEST(ChaosHedge, StragglerHedgeImprovesAndBalances)
{
    // Roughly 1-in-3 GETs is 20x slower; hedging after a short delay
    // races a duplicate against the straggler and proceeds on the
    // winner. Unhedged, each lane serializes its stragglers; hedged,
    // they overlap (loser legs drain concurrently at the fetch tail),
    // so with enough windows per lane the fetch gets strictly faster.
    const Bytes len = 32 * kMiB;
    auto run_once = [&](Duration hedge, mem::PageFetchStats *stats,
                        net::ObjectStoreStats *sstats) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        FaultPlan plan(21);
        plan.add(spec(FaultKind::Straggler, "store", 0, sec(600), 20.0,
                      0.34));
        store.setFaultPlan(&plan, "store");
        mem::RemoteObjectSource src(store);
        mem::PageFetchPipeline pipe(sim, src);
        pipe.setHedgeDelay(hedge);
        Duration took = 0;
        struct T {
            static Task<void>
            run(mem::PageFetchPipeline &p, Bytes len, Duration *out)
            {
                co_await p.fetchWindowedTimed(0, len, kMiB, 4, out);
            }
        };
        sim.spawn(T::run(pipe, len, &took));
        sim.run();
        if (stats != nullptr)
            *stats = pipe.stats();
        if (sstats != nullptr)
            *sstats = store.stats();
        return took;
    };

    mem::PageFetchStats plain_stats, hedged_stats;
    net::ObjectStoreStats plain_store, hedged_store;
    Duration plain = run_once(0, &plain_stats, &plain_store);
    Duration hedged = run_once(msec(20), &hedged_stats, &hedged_store);

    // Hedges were issued, some won, and the fetch got faster.
    EXPECT_GT(hedged_stats.hedgesIssued, 0);
    EXPECT_GT(hedged_stats.hedgeWins, 0);
    EXPECT_LT(hedged, plain);

    // Byte accounting balances exactly: the pipeline counts each
    // logical byte once, and the store served those bytes plus the
    // duplicate (hedge) GET traffic — nothing more, nothing less.
    EXPECT_EQ(plain_stats.bytesFetched, len);
    EXPECT_EQ(plain_stats.hedgedBytes, 0);
    EXPECT_EQ(plain_store.bytesServed, len);
    EXPECT_EQ(hedged_stats.bytesFetched, len);
    EXPECT_EQ(hedged_store.bytesServed,
              len + hedged_stats.hedgedBytes);
}

TEST(ChaosHedge, ZeroDelayIsBitIdenticalToUnhedged)
{
    // hedgeDelay == 0 must take the historical single-GET path: same
    // finish time, same store request count, no hedge accounting.
    auto run_once = [](bool call_setter) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        mem::RemoteObjectSource src(store);
        mem::PageFetchPipeline pipe(sim, src);
        if (call_setter)
            pipe.setHedgeDelay(0);
        struct T {
            static Task<void>
            run(mem::PageFetchPipeline &p)
            {
                co_await p.fetchWindowed(0, 4 * kMiB, kMiB, 2);
            }
        };
        sim.spawn(T::run(pipe));
        Time end = sim.run();
        return std::make_pair(end, store.stats().gets);
    };
    EXPECT_EQ(run_once(false), run_once(true));
}

// ---------------------------------------------- worker crashes, retries

cluster::ClusterConfig
tieredConfig(int workers)
{
    cluster::ClusterConfig cfg;
    cfg.workers = workers;
    cfg.coldStartMode = core::ColdStartMode::TieredReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(60);
    return cfg;
}

TEST(ChaosCrash, WorkerCrashRetriesAndCompletes)
{
    Simulation sim;
    cluster::Cluster c(sim, tieredConfig(1));
    c.deploy(func::profileByName("helloworld"));

    FaultPlan plan(5);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // The crash window covers the first cold-start attempt only:
        // the 2 s of lost work advances time past the window, so the
        // retry (on the same, only, worker) succeeds.
        Time base = sim.now();
        plan.add(spec(FaultKind::WorkerCrash, "worker/0", base,
                      base + sec(1), 2000.0));
        c.installFaultPlan(&plan);
        Duration e2e = co_await c.invoke("helloworld");
        EXPECT_GT(e2e, sec(2)); // paid the lost work before retrying
        c.installFaultPlan(nullptr);
    });

    EXPECT_EQ(plan.stats().workerCrashes, 1);
    const auto &st = c.stats("helloworld");
    EXPECT_EQ(st.crashRetries, 1);
    EXPECT_EQ(st.coldStarts, 1);
    EXPECT_EQ(st.failedInvocations, 0);
    // The crashed attempt's instance was torn down; the retry's one
    // instance is the only survivor.
    EXPECT_EQ(c.instanceCount("helloworld"), 1);
    EXPECT_EQ(c.worker(0).orchestrator().stats("helloworld").crashes,
              1);
}

TEST(ChaosCrash, ExhaustedRetriesFailExactlyOnce)
{
    Simulation sim;
    cluster::ClusterConfig cfg = tieredConfig(1);
    cfg.maxColdStartRetries = 2;
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));

    FaultPlan plan(6);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // A crash window covering the rest of the run at probability
        // 1: every attempt crashes, retries exhaust, the invocation is
        // reported failed exactly once — in failedInvocations, not
        // coldStarts.
        plan.add(spec(FaultKind::WorkerCrash, "worker/*", sim.now(),
                      sim.now() + sec(9000), 50.0));
        c.installFaultPlan(&plan);
        (void)co_await c.invoke("helloworld");
        c.installFaultPlan(nullptr);
    });

    const auto &st = c.stats("helloworld");
    EXPECT_EQ(plan.stats().workerCrashes, 3); // initial + 2 retries
    EXPECT_EQ(st.crashRetries, 2);
    EXPECT_EQ(st.failedInvocations, 1);
    EXPECT_EQ(st.coldStarts, 0);
    EXPECT_EQ(st.warmHits, 0);
    // Accepted == served-or-failed, exactly once.
    EXPECT_EQ(st.coldStarts + st.warmHits + st.failedInvocations, 1);
    // Every crashed instance was torn down.
    EXPECT_EQ(c.instanceCount("helloworld"), 0);
}

// --------------------------------------------------------- staging

TEST(ChaosStaging, OutageStallsButStagesOnce)
{
    Simulation sim;
    cluster::Cluster c(sim, tieredConfig(2));
    c.deploy(func::profileByName("pyaes"));
    FaultPlan plan(8);
    plan.add(spec(FaultKind::StagingOutage, "staging/*", 0, sec(5)));
    c.installFaultPlan(&plan);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
    });
    c.installFaultPlan(nullptr);

    EXPECT_GE(plan.stats().stagingStalls, 1);
    EXPECT_EQ(c.snapshotRegistry()->totalBuilds(), 1);
    EXPECT_EQ(c.sharedObjectStore()->stats().puts, 1);
    EXPECT_TRUE(c.snapshotRegistry()->isStaged("pyaes"));
    // The stall pushed staging past the outage window.
    EXPECT_GE(sim.now(), sec(5));
}

TEST(ChaosStaging, MidStageCrashRollsBackAndConverges)
{
    // Chunked (DedupReap) staging crashed mid-pass must roll its chunk
    // references back and retry; the converged index must match a
    // crash-free staging exactly.
    auto stage_once = [](FaultPlan *plan) {
        auto sim = std::make_unique<Simulation>();
        cluster::ClusterConfig cfg;
        cfg.workers = 2;
        cfg.coldStartMode = core::ColdStartMode::DedupReap;
        cfg.sharedSnapshots = true;
        auto c = std::make_unique<cluster::Cluster>(*sim, cfg);
        c->deploy(func::profileByName("helloworld"));
        c->deploy(func::profileByName("pyaes"));
        if (plan != nullptr)
            c->installFaultPlan(plan);
        runScenario(*sim, [&]() -> Task<void> {
            co_await c->prepareAllSnapshots();
        });
        if (plan != nullptr)
            c->installFaultPlan(nullptr);
        return std::make_pair(std::move(sim), std::move(c));
    };

    auto [sim_ok, clean] = stage_once(nullptr);
    FaultPlan plan(9);
    // Crashes fire per staged chunk with p=0.01 inside a long window;
    // every crash pays lost work and every upload pays store time, so
    // simulated time marches toward the window end and staging always
    // converges.
    plan.add(spec(FaultKind::WorkerCrash, "staging/*", 0, sec(120),
                  5.0, 0.01));
    auto [sim_f, faulted] = stage_once(&plan);

    EXPECT_GE(plan.stats().workerCrashes, 1);
    auto *creg = clean->snapshotRegistry();
    auto *freg = faulted->snapshotRegistry();
    for (const char *fn : {"helloworld", "pyaes"}) {
        const cluster::StagedArtifact &a = creg->artifact(fn);
        const cluster::StagedArtifact &b = freg->artifact(fn);
        EXPECT_EQ(a.builds, b.builds) << fn;
        EXPECT_EQ(a.chunksTotal, b.chunksTotal) << fn;
        EXPECT_EQ(a.chunksUploaded, b.chunksUploaded) << fn;
        EXPECT_EQ(a.stagedBytes, b.stagedBytes) << fn;
        EXPECT_EQ(a.dedupSavedBytes, b.dedupSavedBytes) << fn;
        EXPECT_EQ(a.logicalBytes, b.logicalBytes) << fn;
    }
    // Index-wide: the aborted attempts' references were all released
    // (chunks they alone stored evicted), so the resident index is
    // identical to the crash-free one — and release() floors at zero,
    // so refcounts never went negative along the way.
    EXPECT_EQ(freg->chunkIndex().chunkCount(),
              creg->chunkIndex().chunkCount());
    EXPECT_EQ(freg->chunkIndex().storedBytes(),
              creg->chunkIndex().storedBytes());
    EXPECT_EQ(freg->chunkIndex().rawBytes(),
              creg->chunkIndex().rawBytes());
    // Rollbacks really evicted chunks in the faulted run.
    EXPECT_GT(freg->chunkIndex().stats().evictions,
              creg->chunkIndex().stats().evictions);
}

TEST(ChaosStaging, SingleFlightNeverDoubleStagesUnderStorm)
{
    // Concurrent ensureStaged callers during a latency storm: the slow
    // staging pass is in flight far longer, yet later callers must
    // wait on it, never duplicate it.
    Simulation sim;
    cluster::Cluster c(sim, tieredConfig(4));
    c.deploy(func::profileByName("helloworld"));
    c.deploy(func::profileByName("json_serdes"));
    FaultPlan plan(10);
    plan.add(
        spec(FaultKind::LatencyStorm, "store/shared", 0, sec(60), 8.0));
    c.installFaultPlan(&plan);
    runScenario(sim, [&]() -> Task<void> {
        struct Prep {
            static Task<void>
            run(cluster::Cluster &c, sim::Latch *done)
            {
                co_await c.prepareAllSnapshots();
                done->arrive();
            }
        };
        sim::Latch done(sim, 4);
        for (int i = 0; i < 4; ++i)
            sim.spawn(Prep::run(c, &done));
        co_await done.wait();
    });
    c.installFaultPlan(nullptr);

    EXPECT_GT(plan.stats().stormHits, 0);
    EXPECT_EQ(c.snapshotRegistry()->totalBuilds(), 2);
    EXPECT_EQ(c.sharedObjectStore()->stats().puts, 2);
}

// ------------------------------------------------- whole-workload runs

/**
 * Stage the fleet, then let @p arm add fault windows relative to the
 * post-staging time (faults land in the measured window, not on the
 * staging prologue), install the plan and drive the workload.
 */
template <typename Arm>
cluster::AzureWorkloadResult
runAzure(cluster::ClusterConfig ccfg, cluster::AzureWorkloadConfig wcfg,
         FaultPlan *plan, Arm &&arm)
{
    Simulation sim;
    cluster::Cluster c(sim, ccfg);
    cluster::AzureWorkload w(sim, c, wcfg);
    cluster::AzureWorkloadResult result;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        if (plan != nullptr) {
            arm(*plan, sim.now());
            c.installFaultPlan(plan);
        }
        result = co_await w.run();
        c.installFaultPlan(nullptr);
    });
    return result;
}

cluster::AzureWorkloadResult
runAzure(cluster::ClusterConfig ccfg, cluster::AzureWorkloadConfig wcfg)
{
    return runAzure(ccfg, wcfg, nullptr, [](FaultPlan &, Time) {});
}

cluster::AzureWorkloadConfig
shortMix()
{
    cluster::AzureWorkloadConfig wcfg;
    wcfg.functions = 4;
    wcfg.minInterarrival = sec(2);
    wcfg.maxInterarrival = sec(20);
    wcfg.horizon = sec(120);
    return wcfg;
}

TEST(ChaosWorkload, FaultFreeBitIdenticalWithDormantPlan)
{
    // Installing a plan whose windows never open must not change a
    // single sample: hook points draw nothing outside windows.
    cluster::ClusterConfig ccfg = tieredConfig(2);
    auto base = runAzure(ccfg, shortMix());
    FaultPlan dormant(99);
    auto far_future = [](FaultPlan &p, Time base_t) {
        p.add(spec(FaultKind::StoreOutage, "*", base_t + sec(90000),
                   base_t + sec(90060)));
        p.add(spec(FaultKind::WorkerCrash, "*", base_t + sec(90000),
                   base_t + sec(90060), 10.0, 0.5));
        p.add(spec(FaultKind::Straggler, "*", base_t + sec(90000),
                   base_t + sec(90060), 10.0, 0.5));
    };
    auto dormant_run = runAzure(ccfg, shortMix(), &dormant, far_future);

    ASSERT_GT(base.invocations, 5);
    EXPECT_EQ(base.invocations, dormant_run.invocations);
    EXPECT_EQ(base.coldStarts, dormant_run.coldStarts);
    EXPECT_EQ(base.warmHits, dormant_run.warmHits);
    ASSERT_EQ(base.e2eLatencyMs.values().size(),
              dormant_run.e2eLatencyMs.values().size());
    for (size_t i = 0; i < base.e2eLatencyMs.values().size(); ++i)
        EXPECT_EQ(base.e2eLatencyMs.values()[i],
                  dormant_run.e2eLatencyMs.values()[i])
            << "sample " << i;
}

TEST(ChaosWorkload, SameSeedSamePlanBitIdentical)
{
    cluster::ClusterConfig ccfg = tieredConfig(2);
    auto arm = [](FaultPlan &p, Time base_t) {
        p.add(spec(FaultKind::Straggler, "store/*", base_t,
                   base_t + sec(120), 10.0, 0.2));
        p.add(spec(FaultKind::WorkerCrash, "worker/*",
                   base_t + sec(20), base_t + sec(40), 100.0, 0.3));
    };

    FaultPlan a(42), b(42), d(43);
    auto ra = runAzure(ccfg, shortMix(), &a, arm);
    auto rb = runAzure(ccfg, shortMix(), &b, arm);
    auto rd = runAzure(ccfg, shortMix(), &d, arm);

    // Same (seed, plan, workload): bit-identical histories.
    ASSERT_EQ(ra.e2eLatencyMs.values().size(),
              rb.e2eLatencyMs.values().size());
    for (size_t i = 0; i < ra.e2eLatencyMs.values().size(); ++i)
        EXPECT_EQ(ra.e2eLatencyMs.values()[i],
                  rb.e2eLatencyMs.values()[i]);
    EXPECT_EQ(a.stats().stragglers, b.stats().stragglers);
    EXPECT_EQ(a.stats().workerCrashes, b.stats().workerCrashes);

    // A different plan seed redraws the Bernoulli streams.
    bool differs =
        ra.e2eLatencyMs.values() != rd.e2eLatencyMs.values() ||
        a.stats().stragglers != d.stats().stragglers;
    EXPECT_TRUE(differs);
}

TEST(ChaosWorkload, SweepInvariantsAcrossPlansClassesAndModes)
{
    // The product sweep: fault plans x function classes x cold-start
    // modes; every accepted invocation must complete or be reported
    // failed exactly once, under every combination.
    struct PlanMaker {
        const char *name;
        std::uint64_t seed;
        void (*arm)(FaultPlan &, Time);
    };
    const PlanMaker plans[] = {
        {"outage", 101,
         [](FaultPlan &p, Time t) {
             p.add(spec(FaultKind::StoreOutage, "store/*", t + sec(10),
                        t + sec(14)));
         }},
        {"storm+straggler", 102,
         [](FaultPlan &p, Time t) {
             p.add(spec(FaultKind::LatencyStorm, "store/*", t + sec(5),
                        t + sec(30), 4.0));
             p.add(spec(FaultKind::Straggler, "store/*", t,
                        t + sec(120), 12.0, 0.25));
         }},
        {"crash+errors", 103,
         [](FaultPlan &p, Time t) {
             p.add(spec(FaultKind::WorkerCrash, "worker/*", t + sec(10),
                        t + sec(60), 80.0, 0.5));
             p.add(spec(FaultKind::RequestError, "store/*", t,
                        t + sec(120), 1.0, 0.3));
         }},
    };
    const std::vector<func::FunctionClass> class_mixes[] = {
        {func::FunctionClass::MlInference, func::FunctionClass::Etl},
        {func::FunctionClass::Media, func::FunctionClass::MlInference,
         func::FunctionClass::Etl},
    };
    const core::ColdStartMode modes[] = {
        core::ColdStartMode::TieredReap,
        core::ColdStartMode::RemoteReap,
    };

    for (const PlanMaker &pm : plans) {
        for (const auto &mix : class_mixes) {
            for (core::ColdStartMode mode : modes) {
                SCOPED_TRACE(std::string(pm.name) + " classes=" +
                             std::to_string(mix.size()) + " mode=" +
                             core::coldStartModeName(mode));
                cluster::ClusterConfig ccfg = tieredConfig(2);
                ccfg.coldStartMode = mode;
                cluster::AzureWorkloadConfig wcfg = shortMix();
                wcfg.classMix = mix;
                FaultPlan plan(pm.seed);
                auto r = runAzure(ccfg, wcfg, &plan, pm.arm);
                EXPECT_GT(r.invocations, 0);
                // Exactly-once completion accounting.
                EXPECT_EQ(r.coldStarts + r.warmHits +
                              r.failedInvocations,
                          r.invocations);
                EXPECT_EQ(static_cast<std::int64_t>(
                              r.e2eLatencyMs.values().size()),
                          r.invocations);
            }
        }
    }
}

TEST(ChaosWorkload, OutageOverFlashCrowdWithPreWarmsExactlyOnce)
{
    // A shard outage covering a tenant flash crowd while the
    // hybrid-histogram control plane is actively pre-warming: the
    // crowd's invocations, the background pre-warm loads and the
    // outage stalls all interleave on the same shared store, and the
    // accounting must still balance — every accepted invocation lands
    // in exactly one of cold/warm/failed, and pre-warm loads are
    // counted as pre-warms, never as invocations.
    Simulation sim;
    cluster::ClusterConfig cfg = tieredConfig(4);
    cfg.sharedStoreShards = 4;
    cfg.keepAlive = sec(20);
    // Default (spreading) routing, deliberately: the crowd spills onto
    // workers that must fetch fresh chunks mid-outage. Under
    // LocalityHash every function's working set is already resident on
    // its home worker by crowd time and the dark shard is never hit.
    cfg.controlPolicy = cluster::ControlPolicyKind::HybridHistogram;
    cluster::Cluster c(sim, cfg);

    cluster::TrafficConfig tcfg;
    tcfg.functions = 12;
    tcfg.tenants = 3;
    tcfg.aggregateRps = 0.8;
    tcfg.horizon = sec(300);
    cluster::BurstSpec crowd;
    crowd.kind = cluster::BurstKind::FlashCrowd;
    crowd.tenant = 1;
    // Early crowd, before the fleet has pulled every artifact to every
    // worker: its spread onto fresh workers forces first-touch fetches
    // inside the outage window.
    crowd.start = sec(30);
    crowd.duration = sec(40);
    crowd.multiplier = 10.0;
    tcfg.bursts.push_back(crowd);

    cluster::TrafficWorkload workload(sim, c, tcfg);
    FaultPlan plan(0xc0a7);
    cluster::TrafficWorkloadResult r;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // The whole shared store dark for exactly the crowd window:
        // any chunk fetch the crowd forces mid-window stalls.
        Time base = sim.now();
        for (int s = 0; s < cfg.sharedStoreShards; ++s)
            plan.add(spec(FaultKind::StoreOutage,
                          "store/shared/" + std::to_string(s),
                          base + crowd.start,
                          base + crowd.start + crowd.duration));
        c.installFaultPlan(&plan);
        r = co_await workload.run();
        c.installFaultPlan(nullptr);
    });

    cluster::FleetStats fs = c.fleetStats();
    ASSERT_GT(r.invocations, 0);
    // Exactly-once completion accounting across the whole run.
    EXPECT_EQ(r.coldStarts + r.warmHits + r.failedInvocations,
              r.invocations);
    EXPECT_EQ(static_cast<std::int64_t>(
                  r.e2eLatencyMs.values().size()),
              r.invocations);
    // The control plane really was active across the outage, and its
    // loads are accounted separately from invocations: each pre-warm
    // produces at most one instance, which is later hit once or
    // retired once (or is still resident at shutdown).
    EXPECT_GT(fs.preWarms, 0);
    EXPECT_LE(fs.preWarmHits, fs.preWarms);
    EXPECT_LE(fs.preWarmHits + fs.wastedPreWarms, fs.preWarms);
    // A pre-warm hit is a warm hit served off a pre-warmed instance.
    EXPECT_LE(fs.preWarmHits, r.warmHits);
    // The outage genuinely stalled requests during the crowd.
    EXPECT_GE(plan.stats().outageStalls, 1);
}

// ------------------------------------------------------ parallel fleet

TEST(ChaosParallel, StoreFaultDigestStableAcrossThreads)
{
    // Per-domain fault plans keep the parallel kernel deterministic:
    // the same faulted fleet is bit-identical for any simThreads.
    auto run_fleet = [](int threads, bool faults) {
        cluster::ParallelFleetConfig cfg;
        cfg.workers = 3;
        cfg.simThreads = threads;
        cfg.workload.functions = 5;
        cfg.workload.minInterarrival = sec(2);
        cfg.workload.maxInterarrival = sec(20);
        cfg.workload.horizon = sec(90);
        if (faults) {
            cfg.faultSeed = 77;
            cfg.storeFaults.push_back(spec(FaultKind::Straggler,
                                           "store/*", 0, sec(600), 8.0,
                                           0.3));
            cfg.storeFaults.push_back(spec(FaultKind::LatencyStorm,
                                           "store/*", sec(20), sec(40),
                                           3.0));
        }
        cluster::ParallelFleet fleet(cfg);
        return fleet.run().digest();
    };

    std::uint64_t d1 = run_fleet(1, true);
    EXPECT_EQ(run_fleet(2, true), d1);
    EXPECT_EQ(run_fleet(4, true), d1);
    // And the faults actually changed the simulated history.
    EXPECT_NE(run_fleet(1, false), d1);
}

TEST(ChaosParallel, RegistryModesRunWithoutSharedSnapshots)
{
    // Registry-backed modes are no longer blanket-rejected: without
    // sharedSnapshots each worker stages into its own store,
    // domain-confined, and the run completes.
    cluster::ParallelFleetConfig cfg;
    cfg.workers = 2;
    cfg.coldStartMode = core::ColdStartMode::DedupReap;
    cfg.workload.functions = 2;
    cfg.workload.minInterarrival = sec(2);
    cfg.workload.maxInterarrival = sec(10);
    cfg.workload.horizon = sec(60);
    cluster::ParallelFleet fleet(cfg);
    auto r = fleet.run();
    EXPECT_GT(r.invocations, 0);
}

TEST(ChaosParallel, RejectsUnsupportedConfigsWithCleanError)
{
    // Genuinely unsupported configs still fail as a clean fatal()
    // (exit code 1) naming the problem — raised before the kernel's
    // thread pool exists, never an assert/abort.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    cluster::ParallelFleetConfig cfg;
    cfg.workers = 2;
    cfg.sharedSnapshots = true;
    cfg.coldStartMode = core::ColdStartMode::Reap;
    EXPECT_EXIT({ cluster::ParallelFleet fleet(cfg); },
                ::testing::ExitedWithCode(1), "remote-capable");

    cfg.coldStartMode = core::ColdStartMode::TieredReap;
    cfg.sharedStoreShards = 0;
    EXPECT_EXIT({ cluster::ParallelFleet fleet(cfg); },
                ::testing::ExitedWithCode(1), "sharedStoreShards");
}

} // namespace
} // namespace vhive
