/**
 * @file
 * Cross-module integration tests: end-to-end determinism, concurrent
 * cold-start behaviour (the Fig. 9 mechanism), disk-type effects, and
 * interactions between the cluster layer and REAP state.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::core {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

Duration
fullColdStartFlow(std::uint64_t seed)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.seed = seed;
    Worker w(sim, cfg);
    Duration total = 0;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("chameleon"));
        co_await orch.prepareSnapshot("chameleon");
        orch.flushHostCaches();
        (void)co_await orch.invoke("chameleon", ColdStartMode::Reap);
        orch.flushHostCaches();
        auto bd =
            co_await orch.invoke("chameleon", ColdStartMode::Reap);
        total = bd.total;
    });
    return total;
}

TEST(Integration, BitReproducibleAcrossRuns)
{
    Duration a = fullColdStartFlow(0x1111);
    Duration b = fullColdStartFlow(0x1111);
    EXPECT_EQ(a, b);
}

TEST(Integration, SeedChangesPerturbButStaySane)
{
    Duration a = fullColdStartFlow(0x1111);
    Duration b = fullColdStartFlow(0x2222);
    // Different page layouts shift latency slightly, not wildly.
    double ratio = static_cast<double>(a) / static_cast<double>(b);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

Task<void>
concurrentCold(Orchestrator &orch, std::string name, Samples *lat,
               sim::Latch *done, ColdStartMode mode,
               Simulation &sim)
{
    InvokeOptions opts;
    opts.forceCold = true;
    Time t0 = sim.now();
    (void)co_await orch.invoke(name, mode, opts);
    lat->add(toMs(sim.now() - t0));
    done->arrive();
}

double
avgConcurrentColdMs(int n, ColdStartMode mode)
{
    Simulation sim;
    Worker w(sim);
    auto &orch = w.orchestrator();
    const auto &base = func::profileByName("helloworld");
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) {
        auto p = base;
        p.name = "f" + std::to_string(i);
        names.push_back(p.name);
        orch.registerFunction(p);
    }
    Samples lat;
    runScenario(sim, [&]() -> Task<void> {
        for (const auto &nm : names) {
            co_await orch.prepareSnapshot(nm);
            if (mode == ColdStartMode::Reap) {
                orch.flushHostCaches();
                (void)co_await orch.invoke(nm, ColdStartMode::Reap);
            }
        }
        orch.flushHostCaches();
        sim::Latch done(sim, n);
        for (const auto &nm : names)
            sim.spawn(concurrentCold(orch, nm, &lat, &done, mode,
                                     sim));
        co_await done.wait();
    });
    return lat.mean();
}

TEST(Integration, BaselineConcurrencyDegradesNearLinearly)
{
    // Fig. 9: the serialized fault path makes the baseline's
    // per-instance latency grow steeply with concurrency.
    double c1 = avgConcurrentColdMs(1, ColdStartMode::VanillaSnapshot);
    double c8 = avgConcurrentColdMs(8, ColdStartMode::VanillaSnapshot);
    double c32 =
        avgConcurrentColdMs(32, ColdStartMode::VanillaSnapshot);
    EXPECT_GT(c8, 2.0 * c1);
    EXPECT_GT(c32, 7.0 * c1); // steep, near-linear degradation
}

TEST(Integration, ReapConcurrencyScalesFarBetter)
{
    double b8 = avgConcurrentColdMs(8, ColdStartMode::VanillaSnapshot);
    double r8 = avgConcurrentColdMs(8, ColdStartMode::Reap);
    EXPECT_LT(r8, b8 / 4.0);
    // REAP at 8 concurrent stays within a small multiple of solo.
    double r1 = avgConcurrentColdMs(1, ColdStartMode::Reap);
    EXPECT_LT(r8, 5.0 * r1);
}

TEST(Integration, HddAmplifiesReapAdvantage)
{
    auto run = [](storage::DiskParams disk) {
        Simulation sim;
        WorkerConfig cfg;
        cfg.disk = disk;
        Worker w(sim, cfg);
        double speedup = 0;
        runScenario(sim, [&]() -> Task<void> {
            auto &orch = w.orchestrator();
            orch.registerFunction(func::profileByName("helloworld"));
            co_await orch.prepareSnapshot("helloworld");
            orch.flushHostCaches();
            (void)co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap);
            InvokeOptions opts;
            opts.flushPageCache = true;
            opts.forceCold = true;
            auto v = co_await orch.invoke(
                "helloworld", ColdStartMode::VanillaSnapshot, opts);
            auto r = co_await orch.invoke("helloworld",
                                          ColdStartMode::Reap, opts);
            speedup = static_cast<double>(v.total) /
                      static_cast<double>(r.total);
        });
        return speedup;
    };
    double ssd = run(storage::DiskParams::ssd());
    double hdd = run(storage::DiskParams::hdd());
    // Sec. 6.3: REAP helps even more on HDD (5.4x vs 3.7x average).
    EXPECT_GT(hdd, ssd);
}

TEST(Integration, ClusterColdStartsUseRecordedWorkingSet)
{
    // After the cluster's first (record) cold start, later cold
    // starts on the same worker prefetch instead of recording.
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 1;
    cfg.keepAlive = sec(5);
    cfg.scalePeriod = sec(1);
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    Duration first = 0, second = 0;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        c.startAutoscaler();
        first = co_await c.invoke("helloworld"); // record phase
        co_await sim.delay(sec(10));             // scaled to zero
        EXPECT_EQ(c.instanceCount("helloworld"), 0);
        second = co_await c.invoke("helloworld"); // REAP prefetch
        c.stopAutoscaler();
    });
    EXPECT_LT(second, first / 3);
}

TEST(Integration, SnapshotFilesLandOnDisk)
{
    Simulation sim;
    Worker w(sim);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("pyaes");
        orch.flushHostCaches();
        (void)co_await orch.invoke("pyaes", ColdStartMode::Reap);
    });
    auto &fs = w.fileStore();
    EXPECT_NE(fs.lookup("pyaes/vmm_state"), storage::kInvalidFile);
    EXPECT_NE(fs.lookup("pyaes/guest_mem"), storage::kInvalidFile);
    EXPECT_NE(fs.lookup("pyaes/ws"), storage::kInvalidFile);
    EXPECT_NE(fs.lookup("pyaes/trace"), storage::kInvalidFile);
    // WS file sized to the recorded working set.
    auto ws = fs.lookup("pyaes/ws");
    EXPECT_EQ(fs.fileSize(ws),
              w.orchestrator().record("pyaes").wsFileBytes());
    // Guest memory file holds the full VM image.
    auto gm = fs.lookup("pyaes/guest_mem");
    EXPECT_EQ(fs.fileSize(gm),
              func::profileByName("pyaes").vmMemory);
}

TEST(Integration, ReapNeverFetchesMoreThanRecorded)
{
    Simulation sim;
    Worker w(sim);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("json_serdes"));
        co_await orch.prepareSnapshot("json_serdes");
        orch.flushHostCaches();
        (void)co_await orch.invoke("json_serdes", ColdStartMode::Reap);
        std::int64_t recorded =
            orch.record("json_serdes").pageCount();

        w.disk().resetStats();
        orch.flushHostCaches();
        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        auto bd = co_await orch.invoke("json_serdes",
                                       ColdStartMode::Reap, opts);
        EXPECT_EQ(bd.prefetchedPages, recorded);
        // Disk traffic: WS file + VMM state + residual faults; far
        // below re-reading the full 256 MB image.
        EXPECT_LT(w.disk().stats().bytesRead, 64 * kMiB);
    });
}

} // namespace
} // namespace vhive::core
