/**
 * @file
 * Storage-model tests, including the fio-like calibration the paper
 * relies on (Sec. 5.2.3): ~32 MB/s at queue depth 1 with 4 KB reads,
 * ~360 MB/s at depth 16, ~850 MB/s for large sequential reads, plus
 * cache/O_DIRECT path behaviour and the HDD seek model.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "storage/file_store.hh"
#include "util/units.hh"

namespace vhive::storage {
namespace {

using sim::Simulation;
using sim::Task;

struct Fixture {
    Simulation sim;
    DiskDevice ssd{sim, DiskParams::ssd()};
    FileStore fs{sim, ssd};
};

Task<void>
timedRead(Simulation &sim, DiskDevice &d, Bytes lba, Bytes len,
          Duration &out)
{
    Time t0 = sim.now();
    co_await d.read(lba, len);
    out = sim.now() - t0;
}

TEST(DiskModel, SingleSmallReadLatency)
{
    Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    Duration d = 0;
    sim.spawn(timedRead(sim, ssd, 0, 4 * kKiB, d));
    sim.run();
    // Paper: one outstanding 4 KB read extracts ~32 MB/s, i.e. ~125 us.
    double mb_s = mbps(4 * kKiB, d);
    EXPECT_GT(mb_s, 24.0);
    EXPECT_LT(mb_s, 45.0);
}

Task<void>
qdWorker(Simulation &sim, DiskDevice &d, int reads, Bytes stride,
         Bytes base, sim::Latch *done)
{
    for (int i = 0; i < reads; ++i)
        co_await d.read(base + i * stride, 4 * kKiB);
    done->arrive();
    (void)sim;
}

double
randomReadThroughput(int depth, int reads_per_worker)
{
    Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    sim::Latch done(sim, depth);
    for (int w = 0; w < depth; ++w) {
        // Disjoint, non-adjacent regions approximate random access.
        sim.spawn(qdWorker(sim, ssd, reads_per_worker, 64 * kKiB,
                           w * 512 * kMiB, &done));
    }
    Time end = sim.run();
    Bytes total = static_cast<Bytes>(depth) * reads_per_worker * 4 * kKiB;
    return mbps(total, end);
}

TEST(DiskModel, QueueDepth16Throughput)
{
    // Paper: 16 concurrent 4 KB requests -> ~360 MB/s.
    double mb_s = randomReadThroughput(16, 200);
    EXPECT_GT(mb_s, 270.0);
    EXPECT_LT(mb_s, 430.0);
}

TEST(DiskModel, ThroughputScalesWithDepthThenSaturates)
{
    double qd1 = randomReadThroughput(1, 200);
    double qd4 = randomReadThroughput(4, 200);
    double qd16 = randomReadThroughput(16, 200);
    double qd64 = randomReadThroughput(64, 100);
    EXPECT_GT(qd4, 2.5 * qd1);
    EXPECT_GT(qd16, 1.8 * qd4);
    // Controller serialization saturates the device.
    EXPECT_LT(qd64, 1.4 * qd16);
}

TEST(DiskModel, LargeSequentialReadNearsPeak)
{
    Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    Duration d = 0;
    sim.spawn(timedRead(sim, ssd, 0, 8 * kMiB, d));
    sim.run();
    // Paper: peak ~850 MB/s for large reads.
    double mb_s = mbps(8 * kMiB, d);
    EXPECT_GT(mb_s, 650.0);
    EXPECT_LT(mb_s, 1050.0);
}

TEST(DiskModel, HddSeekDominatesRandomReads)
{
    Simulation sim;
    DiskDevice hdd(sim, DiskParams::hdd());
    Duration d = 0;
    sim.spawn(timedRead(sim, hdd, 1 * kGiB, 4 * kKiB, d));
    sim.run();
    EXPECT_GT(d, msec(5)); // dominated by the seek
    EXPECT_EQ(hdd.stats().seeks, 1);
}

TEST(DiskModel, HddSequentialAvoidsSeeks)
{
    struct Seq {
        static Task<void>
        run(Simulation &sim, DiskDevice &d)
        {
            co_await d.read(0, 4 * kMiB);
            (void)sim;
        }
    };
    Simulation sim;
    DiskDevice hdd(sim, DiskParams::hdd());
    sim.spawn(Seq::run(sim, hdd));
    Time end = sim.run();
    EXPECT_EQ(hdd.stats().seeks, 1); // only the initial positioning
    double mb_s = mbps(4 * kMiB, end);
    EXPECT_GT(mb_s, 80.0); // streams near media rate
}

TEST(DiskModel, StatsCountRequests)
{
    Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    Duration d = 0;
    sim.spawn(timedRead(sim, ssd, 0, 1 * kMiB, d));
    sim.run();
    EXPECT_EQ(ssd.stats().requests, 1);
    EXPECT_EQ(ssd.stats().subRequests, 8); // 1 MiB / 128 KiB stripes
    EXPECT_EQ(ssd.stats().bytesRead, 1 * kMiB);
}

TEST(FileStore, CreateLookupSize)
{
    Fixture fx;
    FileId f = fx.fs.createFile("snap/memory", 10 * kMiB);
    EXPECT_EQ(fx.fs.lookup("snap/memory"), f);
    EXPECT_EQ(fx.fs.lookup("nope"), kInvalidFile);
    EXPECT_EQ(fx.fs.fileSize(f), 10 * kMiB);
    EXPECT_EQ(fx.fs.fileName(f), "snap/memory");
}

TEST(FileStore, SizeRoundsUpToPages)
{
    Fixture fx;
    FileId f = fx.fs.createFile("x", 4097);
    EXPECT_EQ(fx.fs.fileSize(f), 2 * kPageSize);
}

Task<void>
timedBuffered(Fixture &fx, FileId f, Bytes off, Bytes len, Duration &out)
{
    Time t0 = fx.sim.now();
    co_await fx.fs.readBuffered(f, off, len);
    out = fx.sim.now() - t0;
}

Task<void>
timedDirect(Fixture &fx, FileId f, Bytes off, Bytes len, Duration &out)
{
    Time t0 = fx.sim.now();
    co_await fx.fs.readDirect(f, off, len);
    out = fx.sim.now() - t0;
}

Task<void>
timedFault(Fixture &fx, FileId f, Bytes off, Bytes len, Duration &out)
{
    Time t0 = fx.sim.now();
    co_await fx.fs.faultRead(f, off, len);
    out = fx.sim.now() - t0;
}

TEST(FileStore, BufferedReadPopulatesCache)
{
    Fixture fx;
    FileId f = fx.fs.createFile("f", 1 * kMiB);
    EXPECT_FALSE(fx.fs.isCached(f, 0, 64 * kKiB));
    Duration cold = 0, warm = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 64 * kKiB, cold));
    fx.sim.run();
    EXPECT_TRUE(fx.fs.isCached(f, 0, 64 * kKiB));
    fx.sim.spawn(timedBuffered(fx, f, 0, 64 * kKiB, warm));
    fx.sim.run();
    EXPECT_LT(warm, cold / 10); // cache hit is far cheaper
    EXPECT_GT(fx.fs.stats().cacheHits, 0);
}

TEST(FileStore, DropCachesForcesMisses)
{
    Fixture fx;
    FileId f = fx.fs.createFile("f", 1 * kMiB);
    Duration first = 0, second = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 256 * kKiB, first));
    fx.sim.run();
    fx.fs.dropCaches();
    EXPECT_FALSE(fx.fs.isCached(f, 0, kPageSize));
    fx.sim.spawn(timedBuffered(fx, f, 0, 256 * kKiB, second));
    fx.sim.run();
    // Same cold cost both times.
    EXPECT_NEAR(static_cast<double>(second),
                static_cast<double>(first), first * 0.01);
}

TEST(FileStore, DirectBypassesCache)
{
    Fixture fx;
    FileId f = fx.fs.createFile("f", 8 * kMiB);
    Duration d = 0;
    fx.sim.spawn(timedDirect(fx, f, 0, 8 * kMiB, d));
    fx.sim.run();
    EXPECT_FALSE(fx.fs.isCached(f, 0, kPageSize));
    EXPECT_EQ(fx.fs.stats().directReads, 1);
}

TEST(FileStore, DirectBeatsBufferedForLargeReads)
{
    // The Fig. 7 WS-file vs REAP distinction: an 8 MiB O_DIRECT read is
    // roughly 2x faster than the buffered path (275 vs 533 MB/s in the
    // paper).
    Fixture fx;
    FileId f = fx.fs.createFile("ws", 8 * kMiB);
    Duration buffered = 0, direct = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 8 * kMiB, buffered));
    fx.sim.run();
    fx.fs.dropCaches();
    fx.sim.spawn(timedDirect(fx, f, 0, 8 * kMiB, direct));
    fx.sim.run();
    double buf_mbs = mbps(8 * kMiB, buffered);
    double dir_mbs = mbps(8 * kMiB, direct);
    EXPECT_GT(buf_mbs, 200.0);
    EXPECT_LT(buf_mbs, 400.0);
    EXPECT_GT(dir_mbs, 500.0);
    EXPECT_GT(dir_mbs, 1.5 * buf_mbs);
}

TEST(FileStore, FaultReadCostlierThanPread)
{
    Fixture fx;
    FileId f = fx.fs.createFile("mem", 16 * kMiB);
    Duration fault = 0, pread = 0;
    fx.sim.spawn(timedFault(fx, f, 0, 3 * kPageSize, fault));
    fx.sim.run();
    fx.fs.dropCaches();
    fx.sim.spawn(timedBuffered(fx, f, 0, 3 * kPageSize, pread));
    fx.sim.run();
    EXPECT_GT(fault, pread);
    EXPECT_EQ(fx.fs.stats().faultMisses, 1);
}

TEST(FileStore, FaultReadOnCachedRangeIsMinor)
{
    Fixture fx;
    FileId f = fx.fs.createFile("mem", 16 * kMiB);
    Duration major = 0, minor = 0;
    fx.sim.spawn(timedFault(fx, f, 0, 2 * kPageSize, major));
    fx.sim.run();
    fx.sim.spawn(timedFault(fx, f, 0, 2 * kPageSize, minor));
    fx.sim.run();
    EXPECT_LT(minor, usec(10));
    EXPECT_GT(major, usec(100));
}

TEST(FileStore, SerializedFaultPathLimitsAggregateThroughput)
{
    // The Fig. 9 baseline phenomenon: many instances faulting in
    // parallel extract far less than fio at the same concurrency
    // because the per-miss serialized stage dominates.
    struct Faulter {
        static Task<void>
        run(FileStore &fs, FileId f, int faults, sim::Latch *done)
        {
            for (int i = 0; i < faults; ++i)
                co_await fs.faultRead(f, static_cast<Bytes>(i) * 64 *
                                             kKiB,
                                      3 * kPageSize);
            done->arrive();
        }
    };
    Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    FileStore fs(sim, ssd);
    const int instances = 32;
    const int faults = 60;
    std::vector<FileId> f;
    for (int i = 0; i < instances; ++i)
        f.push_back(fs.createFile("m" + std::to_string(i), 16 * kMiB));
    sim::Latch done(sim, instances);
    for (int i = 0; i < instances; ++i)
        sim.spawn(Faulter::run(fs, f[i], faults, &done));
    Time end = sim.run();
    Bytes useful =
        static_cast<Bytes>(instances) * faults * 3 * kPageSize;
    double mb_s = mbps(useful, end);
    // Well under the ~350+ MB/s the raw device would sustain.
    EXPECT_LT(mb_s, 140.0);
    EXPECT_GT(mb_s, 50.0);
}

TEST(FileStore, WriteBufferedMarksCachedAndReturnsFast)
{
    Fixture fx;
    FileId f = fx.fs.createFile("ws", 4 * kMiB);
    Duration d = 0;
    struct W {
        static Task<void>
        run(Fixture &fx, FileId f, Duration &out)
        {
            Time t0 = fx.sim.now();
            co_await fx.fs.writeBuffered(f, 0, 4 * kMiB);
            out = fx.sim.now() - t0;
        }
    };
    fx.sim.spawn(W::run(fx, f, d));
    fx.sim.run();
    EXPECT_TRUE(fx.fs.isCached(f, 0, 4 * kMiB));
    EXPECT_LT(d, msec(2));                        // async writeback
    EXPECT_EQ(fx.ssd.stats().bytesWritten, 4 * kMiB); // landed on disk
}

TEST(FileStore, TruncateGrowDropsCache)
{
    Fixture fx;
    FileId f = fx.fs.createFile("ws", 1 * kMiB);
    Duration d = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 1 * kMiB, d));
    fx.sim.run();
    EXPECT_TRUE(fx.fs.isCached(f, 0, 1 * kMiB));
    fx.fs.truncate(f, 2 * kMiB);
    EXPECT_EQ(fx.fs.fileSize(f), 2 * kMiB);
    EXPECT_FALSE(fx.fs.isCached(f, 0, kPageSize));
}

TEST(FileStore, PartialCacheOnlyFetchesMissingChunks)
{
    Fixture fx;
    FileId f = fx.fs.createFile("f", 1 * kMiB);
    Duration first = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 512 * kKiB, first));
    fx.sim.run();
    Bytes before = fx.ssd.stats().bytesRead;
    Duration second = 0;
    fx.sim.spawn(timedBuffered(fx, f, 0, 1 * kMiB, second));
    fx.sim.run();
    // Only the second half should hit the device.
    EXPECT_EQ(fx.ssd.stats().bytesRead - before, 512 * kKiB);
}


TEST(FileStore, FaultReadaheadExtendsWindow)
{
    // With fault readahead configured (the HDD model), a small fault
    // pulls a larger window so later nearby faults become minor.
    sim::Simulation sim;
    DiskDevice hdd(sim, DiskParams::hdd());
    IoPathParams io;
    io.faultReadahead = 48 * kKiB;
    FileStore fs(sim, hdd, io);
    FileId f = fs.createFile("mem", 4 * kMiB);
    struct T {
        static sim::Task<void>
        run(FileStore &fs, FileId f, Duration &first, Duration &second,
            sim::Simulation &sim)
        {
            Time t0 = sim.now();
            co_await fs.faultRead(f, 0, kPageSize);
            first = sim.now() - t0;
            t0 = sim.now();
            // Within the readahead window: a minor fault, no seek.
            co_await fs.faultRead(f, 8 * kPageSize, kPageSize);
            second = sim.now() - t0;
        }
    };
    Duration first = 0, second = 0;
    sim.spawn(T::run(fs, f, first, second, sim));
    sim.run();
    EXPECT_GT(first, msec(5));   // paid the seek once
    EXPECT_LT(second, usec(50)); // absorbed by the window
    EXPECT_EQ(fs.stats().faultMisses, 1);
}

TEST(FileStore, FaultReadaheadClampsAtFileEnd)
{
    sim::Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    IoPathParams io;
    io.faultReadahead = 48 * kKiB;
    FileStore fs(sim, ssd, io);
    FileId f = fs.createFile("mem", 4 * kPageSize);
    struct T {
        static sim::Task<void>
        run(FileStore &fs, FileId f)
        {
            // Fault near the end: the window must not run past EOF.
            co_await fs.faultRead(f, 3 * kPageSize, kPageSize);
        }
    };
    sim.spawn(T::run(fs, f));
    sim.run();
    EXPECT_TRUE(fs.isCached(f, 3 * kPageSize, kPageSize));
}

TEST(DiskModel, RemoteStorageEnvelope)
{
    // Sanity for the Sec. 7.1 extension device: RTT-bound small
    // reads, respectable bulk streaming.
    sim::Simulation sim;
    DiskDevice remote(sim, DiskParams::remoteStorage());
    Duration small = 0, bulk = 0;
    sim.spawn(timedRead(sim, remote, 0, 4 * kKiB, small));
    sim.run();
    sim.spawn(timedRead(sim, remote, 1 * kGiB, 32 * kMiB, bulk));
    sim.run();
    EXPECT_GT(small, usec(350));
    EXPECT_LT(mbps(4 * kKiB, small), 12.0);
    EXPECT_GT(mbps(32 * kMiB, bulk), 400.0);
}

TEST(FileStore, ConcurrentBufferedReadsShareThePlug)
{
    // Many concurrent buffered readers serialize on the block-layer
    // plug stage: aggregate throughput is bounded by it.
    struct Reader {
        static sim::Task<void>
        run(FileStore &fs, FileId f, int reads, sim::Latch *done)
        {
            for (int i = 0; i < reads; ++i)
                co_await fs.readBuffered(
                    f, static_cast<Bytes>(i) * 64 * kKiB, 4 * kKiB);
            done->arrive();
        }
    };
    sim::Simulation sim;
    DiskDevice ssd(sim, DiskParams::ssd());
    FileStore fs(sim, ssd);
    const int readers = 16;
    const int reads = 50;
    std::vector<FileId> files;
    for (int i = 0; i < readers; ++i)
        files.push_back(
            fs.createFile("f" + std::to_string(i), 16 * kMiB));
    sim::Latch done(sim, readers);
    for (int i = 0; i < readers; ++i)
        sim.spawn(Reader::run(fs, files[static_cast<size_t>(i)],
                              reads, &done));
    Time end = sim.run();
    double mb_s =
        mbps(static_cast<Bytes>(readers) * reads * 4 * kKiB, end);
    // Plug-bound: ~4 KiB / 30 us ~= 137 MB/s, well below the raw
    // device's ~340 MB/s at this concurrency.
    EXPECT_LT(mb_s, 180.0);
    EXPECT_GT(mb_s, 80.0);
}

} // namespace
} // namespace vhive::storage
