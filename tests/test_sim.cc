/**
 * @file
 * Unit tests for the DES kernel: clock/event ordering, coroutine task
 * composition, fork/join, and the synchronization primitives.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/frame_pool.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::sim {
namespace {

Task<void>
sleeper(Simulation &sim, Duration d, std::vector<int> &log, int id)
{
    co_await sim.delay(d);
    log.push_back(id);
}

TEST(Simulation, DelayAdvancesClock)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, msec(5), log, 1));
    Time end = sim.run();
    EXPECT_EQ(end, msec(5));
    EXPECT_EQ(log, std::vector<int>({1}));
}

TEST(Simulation, EventsFireInTimeOrder)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, msec(30), log, 3));
    sim.spawn(sleeper(sim, msec(10), log, 1));
    sim.spawn(sleeper(sim, msec(20), log, 2));
    sim.run();
    EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(Simulation, SameTimestampIsFifo)
{
    Simulation sim;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i)
        sim.spawn(sleeper(sim, msec(7), log, i));
    sim.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(Simulation, ZeroDelayCompletesInline)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, 0, log, 1));
    EXPECT_EQ(sim.run(), 0);
    EXPECT_EQ(log.size(), 1u);
}

TEST(Simulation, RunUntilLeavesFutureEventsQueued)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, msec(10), log, 1));
    sim.spawn(sleeper(sim, msec(50), log, 2));
    sim.runUntil(msec(20));
    EXPECT_EQ(sim.now(), msec(20));
    EXPECT_EQ(log, std::vector<int>({1}));
    sim.run();
    EXPECT_EQ(log, std::vector<int>({1, 2}));
    EXPECT_EQ(sim.now(), msec(50));
}

Task<int>
answer(Simulation &sim)
{
    co_await sim.delay(usec(1));
    co_return 42;
}

Task<void>
awaitsChild(Simulation &sim, int &out)
{
    out = co_await answer(sim);
}

TEST(Task, ChildResultPropagates)
{
    Simulation sim;
    int out = 0;
    sim.spawn(awaitsChild(sim, out));
    sim.run();
    EXPECT_EQ(out, 42);
}

Task<int>
instant(int v)
{
    co_return v;
}

Task<void>
awaitsInstant(int &out)
{
    out = co_await instant(7);
}

TEST(Task, ImmediateChildCompletesAtSameTime)
{
    Simulation sim;
    int out = 0;
    sim.spawn(awaitsInstant(out));
    Time end = sim.run();
    EXPECT_EQ(out, 7);
    EXPECT_EQ(end, 0);
}

Task<void>
forkJoin(Simulation &sim, std::vector<int> &log, Time &joined_at)
{
    // Start three children in parallel, then join them all.
    std::vector<Task<void>> kids;
    kids.push_back(sleeper(sim, msec(3), log, 3));
    kids.push_back(sleeper(sim, msec(1), log, 1));
    kids.push_back(sleeper(sim, msec(2), log, 2));
    for (auto &k : kids)
        k.start(sim);
    for (auto &k : kids)
        co_await k;
    joined_at = sim.now();
}

TEST(Task, ForkJoinRunsChildrenConcurrently)
{
    Simulation sim;
    std::vector<int> log;
    Time joined_at = -1;
    sim.spawn(forkJoin(sim, log, joined_at));
    sim.run();
    // Children overlap: total time is max, not sum.
    EXPECT_EQ(joined_at, msec(3));
    EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(Task, SequentialAwaitAccumulatesTime)
{
    struct Runner {
        static Task<void>
        run(Simulation &sim, std::vector<Time> &marks, std::vector<int> &l)
        {
            co_await sim.delay(msec(1));
            marks.push_back(sim.now());
            co_await sleeper(sim, msec(2), l, 9);
            marks.push_back(sim.now());
        }
    };
    Simulation sim;
    std::vector<Time> marks;
    std::vector<int> log;
    sim.spawn(Runner::run(sim, marks, log));
    sim.run();
    ASSERT_EQ(marks.size(), 2u);
    EXPECT_EQ(marks[0], msec(1));
    EXPECT_EQ(marks[1], msec(3));
}

TEST(Simulation, TeardownReclaimsBlockedTasks)
{
    // A task blocked on a never-opened gate must be reclaimed by the
    // simulation destructor without leaks or crashes.
    struct Blocked {
        static Task<void>
        run(Gate &gate, bool &cleaned)
        {
            struct OnExit {
                bool &flag;
                ~OnExit() { flag = true; }
            } on_exit{cleaned};
            co_await gate.wait();
        }
    };
    bool cleaned = false;
    {
        Simulation sim;
        Gate gate(sim);
        sim.spawn(Blocked::run(gate, cleaned));
        sim.run();
        EXPECT_FALSE(cleaned);
    }
    EXPECT_TRUE(cleaned);
}

TEST(Gate, ReleasesAllWaiters)
{
    struct Waiter {
        static Task<void>
        run(Gate &g, int &done)
        {
            co_await g.wait();
            ++done;
        }
    };
    struct Opener {
        static Task<void>
        run(Simulation &sim, Gate &g)
        {
            co_await sim.delay(msec(4));
            g.openGate();
        }
    };
    Simulation sim;
    Gate gate(sim);
    int done = 0;
    for (int i = 0; i < 5; ++i)
        sim.spawn(Waiter::run(gate, done));
    sim.spawn(Opener::run(sim, gate));
    sim.run();
    EXPECT_EQ(done, 5);
    EXPECT_TRUE(gate.isOpen());
}

TEST(Gate, OpenGateIsPassThrough)
{
    struct Waiter {
        static Task<void>
        run(Simulation &sim, Gate &g, Time &woke)
        {
            co_await sim.delay(msec(2));
            co_await g.wait();
            woke = sim.now();
        }
    };
    Simulation sim;
    Gate gate(sim);
    gate.openGate();
    Time woke = -1;
    sim.spawn(Waiter::run(sim, gate, woke));
    sim.run();
    EXPECT_EQ(woke, msec(2));
}

TEST(Latch, CountsDown)
{
    struct Worker {
        static Task<void>
        run(Simulation &sim, Latch &latch, Duration d)
        {
            co_await sim.delay(d);
            latch.arrive();
        }
    };
    struct Joiner {
        static Task<void>
        run(Simulation &sim, Latch &latch, Time &when)
        {
            co_await latch.wait();
            when = sim.now();
        }
    };
    Simulation sim;
    Latch latch(sim, 3);
    Time when = -1;
    sim.spawn(Worker::run(sim, latch, msec(1)));
    sim.spawn(Worker::run(sim, latch, msec(5)));
    sim.spawn(Worker::run(sim, latch, msec(3)));
    sim.spawn(Joiner::run(sim, latch, when));
    sim.run();
    EXPECT_EQ(when, msec(5));
}

TEST(Latch, ZeroCountOpensImmediately)
{
    struct Joiner {
        static Task<void>
        run(Simulation &sim, Latch &latch, Time &when)
        {
            co_await latch.wait();
            when = sim.now();
        }
    };
    Simulation sim;
    Latch latch(sim, 0);
    Time when = -1;
    sim.spawn(Joiner::run(sim, latch, when));
    sim.run();
    EXPECT_EQ(when, 0);
}

Task<void>
useResource(Simulation &sim, Semaphore &sem, Duration hold,
            std::vector<Time> &starts)
{
    co_await sem.acquire();
    SemaphoreGuard guard(sem);
    starts.push_back(sim.now());
    co_await sim.delay(hold);
}

TEST(Semaphore, SerializesWhenSinglePermit)
{
    Simulation sim;
    Semaphore sem(sim, 1);
    std::vector<Time> starts;
    for (int i = 0; i < 3; ++i)
        sim.spawn(useResource(sim, sem, msec(10), starts));
    sim.run();
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], 0);
    EXPECT_EQ(starts[1], msec(10));
    EXPECT_EQ(starts[2], msec(20));
}

TEST(Semaphore, ParallelismMatchesPermits)
{
    Simulation sim;
    Semaphore sem(sim, 4);
    std::vector<Time> starts;
    for (int i = 0; i < 8; ++i)
        sim.spawn(useResource(sim, sem, msec(10), starts));
    Time end = sim.run();
    // Two waves of four.
    EXPECT_EQ(end, msec(20));
    EXPECT_EQ(std::count(starts.begin(), starts.end(), 0), 4);
    EXPECT_EQ(std::count(starts.begin(), starts.end(), msec(10)), 4);
}

TEST(Semaphore, QueueLengthVisible)
{
    Simulation sim;
    Semaphore sem(sim, 1);
    std::vector<Time> starts;
    for (int i = 0; i < 3; ++i)
        sim.spawn(useResource(sim, sem, msec(1), starts));
    sim.runUntil(usec(1));
    EXPECT_EQ(sem.queueLength(), 2);
    sim.run();
    EXPECT_EQ(sem.queueLength(), 0);
    EXPECT_EQ(sem.availablePermits(), 1);
}

TEST(Semaphore, GuardMoveAssignReleasesHeldPermit)
{
    struct T {
        static Task<void>
        run(Semaphore &a, Semaphore &b)
        {
            co_await a.acquire();
            SemaphoreGuard ga(a);
            co_await b.acquire();
            SemaphoreGuard gb(b);
            // Assigning over a live guard must release its permit
            // immediately, then adopt the other guard's.
            ga = std::move(gb);
            EXPECT_EQ(a.availablePermits(), 1);
            EXPECT_EQ(b.availablePermits(), 0);
        }
    };
    Simulation sim;
    Semaphore a(sim, 1), b(sim, 1);
    sim.spawn(T::run(a, b));
    sim.run();
    // ga released b's permit at scope exit; the moved-from gb did
    // not double-release anything.
    EXPECT_EQ(a.availablePermits(), 1);
    EXPECT_EQ(b.availablePermits(), 1);
}

TEST(Semaphore, GuardMoveAssignIntoEmptyGuard)
{
    struct T {
        static Task<void>
        run(Semaphore &sem)
        {
            co_await sem.acquire();
            SemaphoreGuard held(sem);
            SemaphoreGuard empty(std::move(held));
            // `held` is now empty; assigning into it must not release.
            held = std::move(empty);
            EXPECT_EQ(sem.availablePermits(), 0);
        }
    };
    Simulation sim;
    Semaphore sem(sim, 1);
    sim.spawn(T::run(sem));
    sim.run();
    EXPECT_EQ(sem.availablePermits(), 1);
}

namespace frame_pool_test {

Task<void>
shortLived(Simulation &sim)
{
    co_await sim.delay(1);
}

Task<void>
driver(Simulation &sim, int waves, int perWave)
{
    for (int w = 0; w < waves; ++w) {
        for (int i = 0; i < perWave; ++i)
            sim.spawn(shortLived(sim));
        co_await sim.delay(2);
    }
}

void
runChurn()
{
    Simulation sim;
    sim.spawn(driver(sim, 40, 8));
    sim.run();
}

} // namespace frame_pool_test

TEST(FramePool, SteadyStateChurnReusesFramesWithoutCarving)
{
    if (!FramePool::pooling())
        GTEST_SKIP() << "frame pool bypassed under sanitizers";
    // Warm the size classes, then verify an identical second run is
    // served entirely from recycled frames: no fresh slab memory, and
    // teardown returns every frame to the pool.
    frame_pool_test::runChurn();
    auto mid = FramePool::stats();
    auto liveMid = FramePool::liveFrames();

    frame_pool_test::runChurn();
    auto after = FramePool::stats();

    EXPECT_GT(after.poolAllocs, mid.poolAllocs);
    EXPECT_EQ(after.carvedBlocks, mid.carvedBlocks);
    EXPECT_EQ(after.slabBytes, mid.slabBytes);
    EXPECT_EQ(FramePool::liveFrames(), liveMid);
}

TEST(FramePool, TeardownReturnsBlockedTaskFrames)
{
    struct Blocked {
        static Task<void>
        run(Gate &gate)
        {
            co_await gate.wait();
        }
    };
    if (!FramePool::pooling())
        GTEST_SKIP() << "frame pool bypassed under sanitizers";
    auto live0 = FramePool::liveFrames();
    {
        Simulation sim;
        Gate gate(sim);
        for (int i = 0; i < 10; ++i)
            sim.spawn(Blocked::run(gate));
        sim.run();
        EXPECT_GE(FramePool::liveFrames(), live0 + 10);
    }
    // Simulation teardown destroyed the blocked frames; all of them
    // went back to the free lists.
    EXPECT_EQ(FramePool::liveFrames(), live0);
}

TEST(Channel, DeliversFifo)
{
    struct Producer {
        static Task<void>
        run(Simulation &sim, Channel<int> &ch)
        {
            for (int i = 0; i < 5; ++i) {
                co_await sim.delay(msec(1));
                ch.send(i);
            }
        }
    };
    struct Consumer {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &got)
        {
            for (int i = 0; i < 5; ++i)
                got.push_back(co_await ch.recv());
        }
    };
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<int> got;
    sim.spawn(Producer::run(sim, ch));
    sim.spawn(Consumer::run(ch, got));
    sim.run();
    EXPECT_EQ(got, std::vector<int>({0, 1, 2, 3, 4}));
}

TEST(Channel, BuffersWhenNoReceiver)
{
    Simulation sim;
    Channel<int> ch(sim);
    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.size(), 2);
    std::vector<int> got;
    struct Consumer {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &got)
        {
            got.push_back(co_await ch.recv());
            got.push_back(co_await ch.recv());
        }
    };
    sim.spawn(Consumer::run(ch, got));
    sim.run();
    EXPECT_EQ(got, std::vector<int>({1, 2}));
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, HandoffIsNotStolenByLateReceiver)
{
    // Receiver A blocks first; a value is sent; receiver B arrives at
    // the same timestamp. A must get the value, B must stay blocked.
    struct Recv {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &order, int id)
        {
            int v = co_await ch.recv();
            order.push_back(id * 100 + v);
        }
    };
    struct Sender {
        static Task<void>
        run(Simulation &sim, Channel<int> &ch)
        {
            co_await sim.delay(msec(1));
            ch.send(7);
            co_return;
        }
    };
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<int> order;
    sim.spawn(Recv::run(ch, order, 1));
    sim.spawn(Sender::run(sim, ch));
    sim.spawn(Recv::run(ch, order, 2)); // blocks: only one value sent
    sim.run();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 107);
}

TEST(Channel, ManyProducersManyConsumers)
{
    struct Producer {
        static Task<void>
        run(Simulation &sim, Channel<int> &ch, int base, Duration gap)
        {
            for (int i = 0; i < 10; ++i) {
                co_await sim.delay(gap);
                ch.send(base + i);
            }
        }
    };
    struct Consumer {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &got, int count)
        {
            for (int i = 0; i < count; ++i)
                got.push_back(co_await ch.recv());
        }
    };
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<int> got;
    sim.spawn(Producer::run(sim, ch, 0, usec(10)));
    sim.spawn(Producer::run(sim, ch, 100, usec(17)));
    sim.spawn(Consumer::run(ch, got, 10));
    sim.spawn(Consumer::run(ch, got, 10));
    sim.run();
    EXPECT_EQ(got.size(), 20u);
    std::sort(got.begin(), got.end());
    EXPECT_TRUE(std::unique(got.begin(), got.end()) == got.end());
}

TEST(Simulation, DeterministicEventCount)
{
    auto run_once = [](std::int64_t &events, Time &end) {
        Simulation sim;
        Channel<int> ch(sim);
        std::vector<int> got;
        struct P {
            static Task<void>
            run(Simulation &sim, Channel<int> &ch)
            {
                for (int i = 0; i < 50; ++i) {
                    co_await sim.delay(usec(3));
                    ch.send(i);
                }
            }
        };
        struct C {
            static Task<void>
            run(Channel<int> &ch, std::vector<int> &got)
            {
                for (int i = 0; i < 50; ++i)
                    got.push_back(co_await ch.recv());
            }
        };
        sim.spawn(P::run(sim, ch));
        sim.spawn(C::run(ch, got));
        end = sim.run();
        events = sim.eventsProcessed();
    };
    std::int64_t e1 = 0, e2 = 0;
    Time t1 = 0, t2 = 0;
    run_once(e1, t1);
    run_once(e2, t2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(t1, t2);
}

} // namespace
} // namespace vhive::sim
