/**
 * @file
 * Tests for the sharded artifact store (net/sharded_store.hh):
 * unsharded bit-compatibility with a bare ObjectStore, deterministic
 * chunk placement under both policies, per-shard stats fanning through
 * FleetStats, and per-shard fault targeting.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/fleet_stats.hh"
#include "net/object_store.hh"
#include "net/sharded_store.hh"
#include "sim/simulation.hh"
#include "util/units.hh"

namespace vhive::net {
namespace {

sim::Task<void>
driveOps(ArtifactStore &store, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        std::uint64_t h = 0x9000 + static_cast<std::uint64_t>(i);
        co_await store.putChunk(64 * kKiB, {h, 0x42});
        co_await store.getChunks(1, 64 * kKiB, {h, 0x42});
        co_await store.put(kMiB, {h, h});
        co_await store.getRange(0, 256 * kKiB, {h, h});
    }
}

TEST(ShardedStore, UnshardedMatchesBareObjectStore)
{
    // shards == 1 is the regression baseline: same op sequence, same
    // stats as a bare ObjectStore, field for field.
    sim::Simulation sim;
    ObjectStore bare(sim, ObjectStoreParams::remote());
    ShardedObjectStore sharded(sim, ShardedStoreParams{});

    sim.spawn(driveOps(bare, 8));
    sim.spawn(driveOps(sharded, 8));
    sim.run();

    const ObjectStoreStats &a = bare.stats();
    ObjectStoreStats b = sharded.stats();
    EXPECT_EQ(a.gets, b.gets);
    EXPECT_EQ(a.puts, b.puts);
    EXPECT_EQ(a.rangedGets, b.rangedGets);
    EXPECT_EQ(a.bytesServed, b.bytesServed);
    EXPECT_EQ(a.bytesStored, b.bytesStored);
    EXPECT_EQ(a.chunkPuts, b.chunkPuts);
    EXPECT_EQ(a.chunkBatches, b.chunkBatches);
    EXPECT_EQ(a.chunksServed, b.chunksServed);
    EXPECT_EQ(a.streamWaits, b.streamWaits);
    EXPECT_EQ(a.streamWaitTime, b.streamWaitTime);
    EXPECT_EQ(a.peakStreamQueue, b.peakStreamQueue);
}

TEST(ShardedStore, HashPlacementIsDeterministicAndSpreads)
{
    sim::Simulation sim;
    ShardedStoreParams sp;
    sp.shards = 4;
    ShardedObjectStore store(sim, sp);

    std::vector<int> counts(4, 0);
    for (std::uint64_t h = 1; h <= 256; ++h) {
        int s = store.shardOf({h, 0});
        EXPECT_EQ(s, hashShardOf(h, 4));
        EXPECT_EQ(s, store.shardOf({h, 0})); // stable
        ++counts[static_cast<size_t>(s)];
    }
    // SplitMix64 spreads 256 keys across 4 shards reasonably evenly.
    for (int c : counts) {
        EXPECT_GT(c, 32);
        EXPECT_LT(c, 96);
    }
}

TEST(ShardedStore, OverlapAwarePlacementFirstWriterWins)
{
    sim::Simulation sim;
    ShardedStoreParams sp;
    sp.shards = 8;
    sp.placement = ChunkPlacementPolicy::OverlapAware;
    ShardedObjectStore store(sim, sp);

    const std::uint64_t scope_a = 0xaaa, scope_b = 0xbbb;
    sim.spawn([](ShardedObjectStore &store, std::uint64_t a,
                 std::uint64_t b) -> sim::Task<void> {
        // Function A stages chunks 1..8; the shared chunk 5 is later
        // re-staged by function B but must keep A's placement.
        for (std::uint64_t h = 1; h <= 8; ++h)
            co_await store.putChunk(64 * kKiB, {h, a});
        co_await store.putChunk(64 * kKiB, {5, b});
    }(store, scope_a, scope_b));
    sim.run();

    // All of A's chunks co-locate on A's scope shard.
    int home_a = hashShardOf(scope_a, 8);
    for (std::uint64_t h = 1; h <= 8; ++h)
        EXPECT_EQ(store.shardOf({h, scope_a}), home_a);
    // The shared chunk kept its first placement (A's shard), found
    // through B's scope too — reads follow writes.
    EXPECT_EQ(store.shardOf({5, scope_b}), home_a);

    // The placement log recorded each chunk exactly once.
    EXPECT_EQ(store.placements().size(), 8u);

    // An identically driven second store makes identical decisions.
    ShardedObjectStore other(sim, sp);
    for (const auto &[hash, shard] : store.placements())
        other.recordPlacement(hash, shard);
    for (std::uint64_t h = 1; h <= 8; ++h)
        EXPECT_EQ(other.shardOf({h, scope_a}),
                  store.shardOf({h, scope_a}));
}

TEST(ShardedStore, ShardStatsSumToAggregate)
{
    sim::Simulation sim;
    ShardedStoreParams sp;
    sp.shards = 4;
    ShardedObjectStore store(sim, sp);
    sim.spawn(driveOps(store, 32));
    sim.run();

    ObjectStoreStats sum;
    std::int64_t peak = 0;
    for (const ObjectStoreStats &row : store.shardStats()) {
        cluster::mergeStoreStats(sum, row);
        peak = std::max(peak, row.peakStreamQueue);
    }
    ObjectStoreStats agg = store.stats();
    EXPECT_EQ(agg.gets, sum.gets);
    EXPECT_EQ(agg.puts, sum.puts);
    EXPECT_EQ(agg.chunkPuts, sum.chunkPuts);
    EXPECT_EQ(agg.bytesServed, sum.bytesServed);
    EXPECT_EQ(agg.bytesStored, sum.bytesStored);
    EXPECT_EQ(agg.streamWaits, sum.streamWaits);
    EXPECT_EQ(agg.peakStreamQueue, peak);
    // Work actually landed on more than one shard.
    int used = 0;
    for (const ObjectStoreStats &row : store.shardStats())
        used += row.gets + row.puts + row.chunkPuts > 0;
    EXPECT_GT(used, 1);
}

TEST(ShardedStore, ClusterFleetStatsCarryPerShardRows)
{
    // End to end: a tiered-shared cluster over a 4-shard store
    // exports both the aggregate and the agreeing per-shard rows.
    sim::Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 2;
    cfg.coldStartMode = core::ColdStartMode::TieredReap;
    cfg.sharedSnapshots = true;
    cfg.sharedStoreShards = 4;
    cluster::Cluster cl(sim, cfg);
    cl.deploy(func::functionBench()[0]);
    cl.deploy(func::functionBench()[1]);

    sim.spawn([](cluster::Cluster &cl) -> sim::Task<void> {
        co_await cl.prepareAllSnapshots();
        (void)co_await cl.invoke(func::functionBench()[0].name);
        (void)co_await cl.invoke(func::functionBench()[1].name);
    }(cl));
    sim.run();

    cluster::FleetStats fs = cl.fleetStats();
    ASSERT_EQ(static_cast<int>(fs.storeShards.size()), 4);
    ObjectStoreStats sum;
    for (const ObjectStoreStats &row : fs.storeShards)
        cluster::mergeStoreStats(sum, row);
    EXPECT_EQ(fs.store.gets, sum.gets);
    EXPECT_EQ(fs.store.puts, sum.puts);
    EXPECT_EQ(fs.store.bytesStored, sum.bytesStored);
    EXPECT_GT(fs.store.puts + fs.store.chunkPuts, 0);
}

} // namespace
} // namespace vhive::net
