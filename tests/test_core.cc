/**
 * @file
 * Core (REAP + orchestrator) tests: trace-file codec round trips, the
 * record phase, prefetch-phase fault elimination, mode ordering
 * (vanilla > parallel-PF > WS-file > REAP), warm routing, instance
 * lifecycle, and the Sec. 7.2 adaptive re-record policy.
 */

#include <gtest/gtest.h>

#include "core/options.hh"
#include "core/orchestrator.hh"
#include "core/worker.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::core {
namespace {

using sim::Simulation;
using sim::Task;
using Opts = InvokeOptions;

/** Run a single orchestrator task to completion. */
template <typename Fn>
void
runScenario(Worker &w, Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Worker &w, Fn &body)
        {
            co_await body(w.orchestrator());
        }
    };
    sim.spawn(Runner::run(w, body));
    sim.run();
}

TEST(TraceCodec, RoundTrip)
{
    WorkingSetRecord r;
    r.pages = {0, 512, 513, 514, 1000, 999, 70000};
    auto bytes = TraceFileCodec::encode(r);
    EXPECT_EQ(static_cast<Bytes>(bytes.size()),
              TraceFileCodec::encodedSize(r));
    auto decoded = TraceFileCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->pages, r.pages);
}

TEST(TraceCodec, EmptyRecord)
{
    WorkingSetRecord r;
    auto bytes = TraceFileCodec::encode(r);
    auto decoded = TraceFileCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->pages.empty());
}

TEST(TraceCodec, DetectsCorruption)
{
    WorkingSetRecord r;
    for (std::int64_t i = 0; i < 1000; ++i)
        r.pages.push_back(i * 3);
    auto bytes = TraceFileCodec::encode(r);
    // Flip a payload byte.
    auto corrupted = bytes;
    corrupted[bytes.size() / 2] ^= 0x40;
    EXPECT_FALSE(TraceFileCodec::decode(corrupted).has_value());
    // Truncate.
    auto truncated = bytes;
    truncated.resize(truncated.size() - 5);
    EXPECT_FALSE(TraceFileCodec::decode(truncated).has_value());
    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_FALSE(TraceFileCodec::decode(bad_magic).has_value());
}

namespace {

/** Recompute and overwrite the trailing CRC of an encoded buffer. */
void
refreshCrc(std::vector<std::uint8_t> &bytes)
{
    ASSERT_GE(bytes.size(), 4u);
    std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
    for (int i = 0; i < 4; ++i)
        bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
}

} // namespace

TEST(TraceCodec, RejectsBadMagic)
{
    WorkingSetRecord r;
    r.pages = {1, 2, 3};
    auto bytes = TraceFileCodec::encode(r);
    // Corrupt the magic but keep the CRC valid, so the rejection can
    // only come from the magic check itself.
    bytes[0] = 'X';
    refreshCrc(bytes);
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsBadVersion)
{
    WorkingSetRecord r;
    r.pages = {1, 2, 3};
    auto bytes = TraceFileCodec::encode(r);
    // The format version is the trailing magic byte ('1'). Bump it
    // with a valid CRC: still rejected.
    bytes[7] = '2';
    refreshCrc(bytes);
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsCrcMismatch)
{
    WorkingSetRecord r;
    r.pages = {4, 9, 12, 40};
    auto bytes = TraceFileCodec::encode(r);
    bytes.back() ^= 0xff; // corrupt the stored CRC itself
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsTruncatedVarintStream)
{
    // A buffer whose header promises more varints than the payload
    // carries, with a *valid* CRC over the truncated bytes: decode
    // must fail on the varint stream, not the checksum.
    WorkingSetRecord r;
    r.pages = {100, 200, 300, 400, 500};
    auto bytes = TraceFileCodec::encode(r);
    // Drop two payload bytes (keeping the 4 CRC bytes at the end).
    bytes.erase(bytes.end() - 6, bytes.end() - 4);
    refreshCrc(bytes);
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsTrailingGarbage)
{
    // Extra payload bytes after the promised varints (valid CRC):
    // the decoder must notice the stream did not end at the CRC.
    WorkingSetRecord r;
    r.pages = {7, 8, 9};
    auto bytes = TraceFileCodec::encode(r);
    bytes.insert(bytes.end() - 4, std::uint8_t{0x00});
    refreshCrc(bytes);
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsNegativePageDelta)
{
    // A delta stream that walks below page 0 is corrupt even when the
    // CRC and framing are intact.
    std::vector<std::uint8_t> bytes = {'R', 'E', 'A', 'P',
                                       'T', 'R', 'C', '1'};
    bytes.push_back(1); // count = 1
    // zigzag(-1) = 1: first (absolute) page would be -1.
    bytes.push_back(1);
    bytes.resize(bytes.size() + 4);
    refreshCrc(bytes);
    EXPECT_FALSE(TraceFileCodec::decode(bytes).has_value());
}

TEST(TraceCodec, RejectsTooShortBuffer)
{
    std::vector<std::uint8_t> tiny = {'R', 'E', 'A', 'P'};
    EXPECT_FALSE(TraceFileCodec::decode(tiny).has_value());
    EXPECT_FALSE(
        TraceFileCodec::decode(std::vector<std::uint8_t>{})
            .has_value());
}

TEST(TraceCodec, DeltaEncodingIsCompact)
{
    // Mostly-contiguous pages should encode in ~1-2 bytes per entry.
    WorkingSetRecord r;
    std::int64_t page = 1000;
    for (int i = 0; i < 4096; ++i) {
        r.pages.push_back(page);
        page += (i % 3 == 0) ? 5 : 1;
    }
    auto bytes = TraceFileCodec::encode(r);
    EXPECT_LT(bytes.size(), 4096u * 2 + 64);
}

TEST(TraceCodec, Crc32KnownVector)
{
    // CRC32("123456789") = 0xCBF43926 (IEEE check value).
    const char *s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(s), 9),
              0xCBF43926u);
}

TEST(WorkingSetRecord, WastedAgainst)
{
    WorkingSetRecord r;
    r.pages = {1, 2, 3, 10, 11};
    std::vector<std::int64_t> touched = {2, 3, 10, 50};
    EXPECT_EQ(r.wastedAgainst(touched), 2); // pages 1 and 11
    EXPECT_EQ(r.wsFileBytes(), 5 * kPageSize);
}

TEST(WorkingSetRecord, WastedAgainstEdgeCases)
{
    WorkingSetRecord empty;
    EXPECT_EQ(empty.wastedAgainst({}), 0);
    EXPECT_EQ(empty.wastedAgainst({1, 2, 3}), 0);
    EXPECT_EQ(empty.wsFileBytes(), 0);

    WorkingSetRecord r;
    r.pages = {5, 6, 7};
    // Nothing touched: the whole record was wasted.
    EXPECT_EQ(r.wastedAgainst({}), 3);
    // Touched superset: nothing wasted.
    EXPECT_EQ(r.wastedAgainst({4, 5, 6, 7, 8}), 0);
    // Exact match.
    EXPECT_EQ(r.wastedAgainst({5, 6, 7}), 0);

    // Duplicate record entries each count against the touched set
    // (the WS file stores one copy per recorded fault).
    WorkingSetRecord dup;
    dup.pages = {3, 3, 9};
    EXPECT_EQ(dup.wastedAgainst({3}), 1);  // only page 9 missing
    EXPECT_EQ(dup.wastedAgainst({10}), 3); // both 3s and the 9
}

TEST(Orchestrator, RecordThenPrefetchEliminatesFaults)
{
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown record_bd, reap_bd;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");

        orch.flushHostCaches();
        record_bd = co_await orch.invoke(
            "helloworld", ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(record_bd.recordPhase);
        EXPECT_TRUE(orch.hasRecord("helloworld"));

        orch.flushHostCaches();
        reap_bd = co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_FALSE(reap_bd.recordPhase);
    });

    // The record phase faults the full working set through userspace.
    EXPECT_GT(record_bd.majorFaults, 500);
    // REAP eliminates the overwhelming majority of faults (97% avg).
    EXPECT_LT(reap_bd.residualFaults, record_bd.majorFaults / 10);
    EXPECT_GT(reap_bd.prefetchedPages, 1500);
    // And slashes the cold-start latency (3.7x avg; helloworld ~3.9x).
    EXPECT_LT(reap_bd.total, record_bd.total / 2);
}

TEST(Orchestrator, ModeOrderingMatchesFig7)
{
    // Vanilla > ParallelPFs > WS-file > REAP for helloworld (Fig. 7).
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown vanilla, par_pf, ws_file, reap;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        // Record once so prefetch modes have the trace/WS files.
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   Opts{});

        orch.flushHostCaches();
        vanilla = co_await orch.invoke(
            "helloworld", ColdStartMode::VanillaSnapshot, Opts{});
        orch.flushHostCaches();
        par_pf = co_await orch.invoke(
            "helloworld", ColdStartMode::ParallelPageFaults, Opts{});
        orch.flushHostCaches();
        ws_file = co_await orch.invoke(
            "helloworld", ColdStartMode::WsFileCached, Opts{});
        orch.flushHostCaches();
        reap = co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                    Opts{});
    });

    EXPECT_GT(vanilla.total, par_pf.total);
    EXPECT_GT(par_pf.total, ws_file.total);
    EXPECT_GT(ws_file.total, reap.total);
    // REAP's O_DIRECT fetch beats the page-cached fetch.
    EXPECT_LT(reap.fetchWs, ws_file.fetchWs);
    // All prefetch modes fetch the same page count.
    EXPECT_EQ(ws_file.prefetchedPages, reap.prefetchedPages);
}

TEST(Orchestrator, WarmRoutingAndKeepWarm)
{
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown cold, warm;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("pyaes");
        orch.flushHostCaches();
        Opts keep;
        keep.keepWarm = true;
        cold = co_await orch.invoke(
            "pyaes", ColdStartMode::VanillaSnapshot, keep);
        EXPECT_EQ(orch.instanceCount("pyaes"), 1);
        warm = co_await orch.invoke(
            "pyaes", ColdStartMode::VanillaSnapshot, Opts{});
        co_await orch.stopAllInstances("pyaes");
    });
    EXPECT_TRUE(cold.cold);
    EXPECT_FALSE(warm.cold);
    EXPECT_EQ(warm.loadVmm, 0);
    EXPECT_EQ(warm.connRestore, 0);
    // One-to-two orders of magnitude (Sec. 4.2).
    EXPECT_GT(cold.total, 20 * warm.total);
}

TEST(Orchestrator, InstanceLifecycle)
{
    Simulation sim;
    Worker w(sim);
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        EXPECT_EQ(orch.instanceCount("helloworld"), 0);

        Opts keep;
        keep.keepWarm = true;
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   keep);
        EXPECT_EQ(orch.instanceCount("helloworld"), 1);
        EXPECT_EQ(orch.idleInstanceCount("helloworld"), 1);

        Opts keep_cold;
        keep_cold.keepWarm = true;
        keep_cold.forceCold = true;
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   keep_cold);
        EXPECT_EQ(orch.instanceCount("helloworld"), 2);

        co_await orch.stopAllInstances("helloworld");
        EXPECT_EQ(orch.instanceCount("helloworld"), 0);
    });
}

TEST(Orchestrator, FootprintRestoredVsBooted)
{
    // Fig. 4: restored instances have a small fraction of the booted
    // footprint.
    Simulation sim;
    Worker w(sim);
    Bytes booted = 0, restored = 0;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("lr_serving"));
        co_await orch.prepareSnapshot("lr_serving");

        Opts keep;
        keep.keepWarm = true;
        (void)co_await orch.invoke(
            "lr_serving", ColdStartMode::BootFromScratch, keep);
        booted = orch.instanceFootprints("lr_serving")[0];
        co_await orch.stopAllInstances("lr_serving");

        orch.flushHostCaches();
        (void)co_await orch.invoke(
            "lr_serving", ColdStartMode::VanillaSnapshot, keep);
        restored = orch.instanceFootprints("lr_serving")[0];
        co_await orch.stopAllInstances("lr_serving");
    });
    const auto &p = func::profileByName("lr_serving");
    EXPECT_NEAR(toMiB(booted), toMiB(p.bootFootprint) + 3.0, 5.0);
    EXPECT_NEAR(toMiB(restored), toMiB(p.workingSet) + 3.0, 5.0);
    EXPECT_LT(restored, booted / 4);
}

TEST(Orchestrator, RecordOverheadModest)
{
    // Sec. 6.4: the record phase costs 15-87% (28% avg) over vanilla.
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown vanilla, record;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        vanilla = co_await orch.invoke(
            "helloworld", ColdStartMode::VanillaSnapshot, Opts{});
        orch.flushHostCaches();
        record = co_await orch.invoke("helloworld",
                                      ColdStartMode::Reap, Opts{});
    });
    EXPECT_TRUE(record.recordPhase);
    double overhead = static_cast<double>(record.total) /
                          static_cast<double>(vanilla.total) -
                      1.0;
    EXPECT_GT(overhead, 0.05);
    EXPECT_LT(overhead, 0.90);
}

TEST(Orchestrator, MispredictionsTrackUniquePages)
{
    // Sec. 7.1: wasted prefetched pages ~= the unique-page fraction.
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown bd;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("image_rotate"));
        co_await orch.prepareSnapshot("image_rotate");
        orch.flushHostCaches();
        (void)co_await orch.invoke("image_rotate",
                                   ColdStartMode::Reap, Opts{});
        orch.flushHostCaches();
        bd = co_await orch.invoke("image_rotate", ColdStartMode::Reap,
                                  Opts{});
    });
    const auto &p = func::profileByName("image_rotate");
    double wasted_frac = static_cast<double>(bd.wastedPrefetch) /
                         static_cast<double>(bd.prefetchedPages);
    EXPECT_GT(wasted_frac, p.uniqueFrac * 0.4);
    EXPECT_LT(wasted_frac, p.uniqueFrac * 1.6);
}

TEST(Orchestrator, AdaptiveRerecord)
{
    // Sec. 7.2: drifting working sets trigger a re-record when the
    // policy is enabled.
    Simulation sim;
    WorkerConfig cfg;
    cfg.reap.adaptiveRerecord = true;
    cfg.reap.rerecordThreshold = 0.05;
    Worker w(sim, cfg);
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(
            func::profileByName("video_processing"));
        co_await orch.prepareSnapshot("video_processing");
        orch.flushHostCaches();
        auto r1 = co_await orch.invoke("video_processing",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(r1.recordPhase);
        orch.flushHostCaches();
        auto r2 = co_await orch.invoke("video_processing",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_FALSE(r2.recordPhase);
        // Drift (45% of the stable pool shifts) exceeds the threshold.
        EXPECT_GT(orch.stats("video_processing").rerecordsTriggered,
                  0);
        orch.flushHostCaches();
        auto r3 = co_await orch.invoke("video_processing",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(r3.recordPhase); // re-recorded
    });
}

TEST(Orchestrator, ConnRestoreShrinksWithReap)
{
    // Sec. 6.3: connection restoration shrinks ~45x to 4-7 ms.
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown vanilla, reap;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("chameleon"));
        co_await orch.prepareSnapshot("chameleon");
        orch.flushHostCaches();
        vanilla = co_await orch.invoke(
            "chameleon", ColdStartMode::VanillaSnapshot, Opts{});
        orch.flushHostCaches();
        (void)co_await orch.invoke("chameleon", ColdStartMode::Reap,
                                   Opts{});
        orch.flushHostCaches();
        reap = co_await orch.invoke("chameleon", ColdStartMode::Reap,
                                    Opts{});
    });
    EXPECT_GT(vanilla.connRestore, msec(60));
    EXPECT_GT(reap.connRestore, msec(3));
    EXPECT_LT(reap.connRestore, msec(9));
    EXPECT_GT(vanilla.connRestore, 10 * reap.connRestore);
}

TEST(Orchestrator, BootModeWorksWithoutSnapshot)
{
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown bd;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        bd = co_await orch.invoke(
            "helloworld", ColdStartMode::BootFromScratch, Opts{});
    });
    EXPECT_TRUE(bd.cold);
    // Boot >> snapshot restore (Sec. 2.2: 700-1300 ms + init).
    EXPECT_GT(bd.total, msec(700));
}

TEST(Orchestrator, StatsAccumulate)
{
    Simulation sim;
    Worker w(sim);
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        Opts keep;
        keep.keepWarm = true;
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   keep);
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   Opts{});
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   Opts{});
        co_await orch.stopAllInstances("helloworld");
    });
    const auto &st = w.orchestrator().stats("helloworld");
    EXPECT_EQ(st.coldInvocations, 1);
    EXPECT_EQ(st.recordPhases, 1);
    EXPECT_EQ(st.warmInvocations, 2);
}


TEST(Orchestrator, ParallelPfInstallsExactlyTheRecord)
{
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown bd;
    std::int64_t recorded = 0;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("pyaes");
        orch.flushHostCaches();
        (void)co_await orch.invoke("pyaes", ColdStartMode::Reap,
                                   Opts{});
        recorded = orch.record("pyaes").pageCount();
        Opts opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        bd = co_await orch.invoke(
            "pyaes", ColdStartMode::ParallelPageFaults, opts);
    });
    EXPECT_EQ(bd.prefetchedPages, recorded);
    EXPECT_GT(bd.fetchWs, 0);
    EXPECT_EQ(bd.installWs, 0); // installs interleave with fetches
    EXPECT_LT(bd.residualFaults, recorded / 10);
}

TEST(Orchestrator, WsFileModeBenefitsFromWarmPageCache)
{
    // Behavioral contrast: the page-cached WS-file fetch collapses
    // when the file is already resident, while REAP's O_DIRECT fetch
    // pays the device cost every time (Sec. 5.2.3).
    Simulation sim;
    Worker w(sim);
    LatencyBreakdown ws_cold, ws_warm_cache, reap_cold,
        reap_warm_cache;
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap,
                                   Opts{});
        Opts flush;
        flush.flushPageCache = true;
        flush.forceCold = true;
        Opts no_flush;
        no_flush.forceCold = true;

        ws_cold = co_await orch.invoke(
            "helloworld", ColdStartMode::WsFileCached, flush);
        ws_warm_cache = co_await orch.invoke(
            "helloworld", ColdStartMode::WsFileCached, no_flush);
        reap_cold = co_await orch.invoke("helloworld",
                                         ColdStartMode::Reap, flush);
        reap_warm_cache = co_await orch.invoke(
            "helloworld", ColdStartMode::Reap, no_flush);
    });
    // Cached WS file: second fetch nearly free.
    EXPECT_LT(ws_warm_cache.fetchWs, ws_cold.fetchWs / 5);
    // O_DIRECT: cache residency does not help the fetch.
    EXPECT_GT(reap_warm_cache.fetchWs, reap_cold.fetchWs / 2);
}

TEST(Orchestrator, RerecordUsesNewInput)
{
    // After invalidation, the next cold start re-records with the
    // current input; the new record covers that input's unique pages.
    Simulation sim;
    Worker w(sim);
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("image_rotate"));
        co_await orch.prepareSnapshot("image_rotate");
        orch.flushHostCaches();
        auto r1 = co_await orch.invoke("image_rotate",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(r1.recordPhase);
        auto first = orch.record("image_rotate").sortedPages();

        orch.invalidateRecord("image_rotate");
        orch.flushHostCaches();
        auto r2 = co_await orch.invoke("image_rotate",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(r2.recordPhase);
        auto second = orch.record("image_rotate").sortedPages();
        // Different inputs -> records differ in their unique parts.
        EXPECT_NE(first, second);
        EXPECT_EQ(orch.stats("image_rotate").recordPhases, 2);
    });
}

TEST(Orchestrator, StopAllReclaimsManyInstances)
{
    Simulation sim;
    Worker w(sim);
    runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        Opts keep;
        keep.keepWarm = true;
        keep.forceCold = true;
        for (int i = 0; i < 5; ++i)
            (void)co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap, keep);
        EXPECT_EQ(orch.instanceCount("helloworld"), 5);
        co_await orch.stopAllInstances("helloworld");
        EXPECT_EQ(orch.instanceCount("helloworld"), 0);
        // Fresh start still works after mass teardown.
        auto bd = co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap, Opts{});
        EXPECT_TRUE(bd.cold);
    });
}

TEST(Orchestrator, OverlapAblationReducesLatency)
{
    // Ablation: overlapping the WS fetch with VMM-state load shortens
    // REAP cold starts for working sets whose fetch fits under the
    // load time.
    auto run_with = [](bool overlap) {
        Simulation sim;
        WorkerConfig cfg;
        cfg.reap.overlapFetchWithVmmLoad = overlap;
        Worker w(sim, cfg);
        LatencyBreakdown bd;
        runScenario(w, sim, [&](Orchestrator &orch) -> Task<void> {
            orch.registerFunction(func::profileByName("helloworld"));
            co_await orch.prepareSnapshot("helloworld");
            orch.flushHostCaches();
            (void)co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap, Opts{});
            orch.flushHostCaches();
            bd = co_await orch.invoke("helloworld",
                                      ColdStartMode::Reap, Opts{});
        });
        return bd.total;
    };
    Duration without = run_with(false);
    Duration with = run_with(true);
    EXPECT_LT(with, without);
}

} // namespace
} // namespace vhive::core
