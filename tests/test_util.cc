/**
 * @file
 * Unit tests for the util module: units, RNG determinism and
 * distribution shape, statistics containers, and the table printer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace vhive {
namespace {

TEST(Units, TimeLiterals)
{
    EXPECT_EQ(usec(1), 1000);
    EXPECT_EQ(msec(1), 1000 * 1000);
    EXPECT_EQ(sec(1), 1000LL * 1000 * 1000);
    EXPECT_DOUBLE_EQ(toMs(msec(232)), 232.0);
    EXPECT_DOUBLE_EQ(toUs(usec(122)), 122.0);
}

TEST(Units, PageMath)
{
    EXPECT_EQ(kPageSize, 4096);
    EXPECT_EQ(pagesForBytes(0), 0);
    EXPECT_EQ(pagesForBytes(1), 1);
    EXPECT_EQ(pagesForBytes(4096), 1);
    EXPECT_EQ(pagesForBytes(4097), 2);
    EXPECT_EQ(pagesForBytes(8 * kMiB), 2048);
    EXPECT_EQ(bytesForPages(2048), 8 * kMiB);
}

TEST(Units, Throughput)
{
    // 8 MB in 10 ms -> 800 MB/s (decimal MB as the paper reports).
    EXPECT_NEAR(mbps(8'000'000, msec(10)), 800.0, 1e-9);
    EXPECT_DOUBLE_EQ(mbps(123, 0), 0.0);
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng named1(42, "disk"), named2(42, "disk"), other(42, "cpu");
    EXPECT_EQ(named1.next(), named2.next());
    EXPECT_NE(named1.next(), other.next());
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        auto v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, GeometricMeanConverges)
{
    Rng rng(123);
    for (double mean : {1.0, 2.4, 3.0, 5.0}) {
        double acc = 0;
        const int n = 40000;
        for (int i = 0; i < n; ++i)
            acc += static_cast<double>(rng.geometric(mean));
        double sample_mean = acc / n;
        EXPECT_NEAR(sample_mean, mean, mean * 0.05)
            << "target mean " << mean;
    }
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(1.5), 1);
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(99);
    double acc = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += rng.exponential(250.0);
    EXPECT_NEAR(acc / n, 250.0, 10.0);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(1234);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(10, [&](std::int64_t i, std::int64_t j) {
        std::swap(v[i], v[j]);
    });
    std::sort(v.begin(), v.end());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(Samples, BasicSummary)
{
    Samples s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Samples, Geomean)
{
    Samples s;
    s.add(1.0);
    s.add(4.0);
    s.add(16.0);
    EXPECT_NEAR(s.geomean(), 4.0, 1e-9);
}

TEST(Samples, PaperGeomeanSpeedup)
{
    // The paper's "3.7x average" is the geometric mean of per-function
    // speedups; sanity-check our helper reproduces it from the Fig. 8
    // numbers.
    Samples s;
    const double base[] = {232, 437, 309, 594, 535, 647, 1424, 503,
                           8057, 2642};
    const double reap[] = {60, 97, 55, 207, 127, 66, 237, 82, 6090, 2540};
    for (int i = 0; i < 10; ++i)
        s.add(base[i] / reap[i]);
    EXPECT_NEAR(s.geomean(), 3.7, 0.15);
}

TEST(Samples, Percentiles)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.2);
}

TEST(Samples, PercentileSingleValue)
{
    Samples s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
}

TEST(RunningStats, MatchesSamples)
{
    Rng rng(3);
    Samples s;
    RunningStats r;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.exponential(10.0);
        s.add(v);
        r.add(v);
    }
    EXPECT_EQ(r.count(), 1000);
    EXPECT_NEAR(r.mean(), s.mean(), 1e-9);
    EXPECT_NEAR(std::sqrt(r.variance()), s.stddev(), 1e-6);
    EXPECT_DOUBLE_EQ(r.min(), s.min());
    EXPECT_DOUBLE_EQ(r.max(), s.max());
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Table, AlignsColumns)
{
    Table t({"function", "cold_ms", "warm_ms"});
    t.row().cell("helloworld").cell(232.0, 0).cell(1.0, 0);
    t.row().cell("cnn_serving").cell(1424.0, 0).cell(192.0, 0);
    std::string out = t.str();
    EXPECT_NE(out.find("function"), std::string::npos);
    EXPECT_NE(out.find("helloworld"), std::string::npos);
    EXPECT_NE(out.find("1424"), std::string::npos);
    // Header and rule plus two rows -> at least 4 lines.
    EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, IntegerCells)
{
    Table t({"a", "b"});
    t.row().cell(static_cast<std::int64_t>(7)).cell("x");
    EXPECT_NE(t.str().find("7"), std::string::npos);
}

} // namespace
} // namespace vhive
