/**
 * @file
 * MicroVM lifecycle tests: boot, snapshot, two-phase restore, and
 * invocation serving under each memory backing mode.
 */

#include <gtest/gtest.h>

#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "host/cpu_pool.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "storage/file_store.hh"
#include "util/units.hh"
#include "vmm/microvm.hh"
#include "vmm/snapshot.hh"

namespace vhive::vmm {
namespace {

using sim::Simulation;
using sim::Task;

struct Fixture {
    Simulation sim;
    storage::DiskDevice ssd{sim, storage::DiskParams::ssd()};
    storage::FileStore fs{sim, ssd};
    host::CpuPool cpus{sim, 48};
    func::TraceGenerator gen{0xf00d};

    SnapshotFiles
    makeSnapshotFiles(const func::FunctionProfile &p)
    {
        SnapshotFiles files;
        files.vmmState =
            fs.createFile(p.name + "/vmm_state", VmmParams{}.vmmStateSize);
        files.guestMemory =
            fs.createFile(p.name + "/guest_mem", p.vmMemory);
        return files;
    }
};

TEST(MicroVm, BootTouchesFootprintPages)
{
    Fixture fx;
    const auto &p = func::profileByName("helloworld");
    MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
    struct T {
        static Task<void>
        run(Fixture &fx, MicroVm &vm, const func::FunctionProfile &p,
            Duration &out)
        {
            Time t0 = fx.sim.now();
            co_await vm.bootFromScratch(fx.gen.boot(p));
            out = fx.sim.now() - t0;
        }
    };
    Duration boot_time = 0;
    fx.sim.spawn(T::run(fx, vm, p, boot_time));
    fx.sim.run();
    EXPECT_EQ(vm.state(), VmState::Running);
    // Fig. 4 blue bar: footprint ~= boot footprint (+3 MB VMM).
    EXPECT_NEAR(toMiB(vm.footprint()), toMiB(p.bootFootprint) + 3.0,
                4.0);
    // Sec. 2.2: boot within production frameworks takes 700-1300 ms
    // plus user init.
    EXPECT_GT(boot_time, msec(700));
    EXPECT_LT(boot_time, msec(2500));
}

TEST(MicroVm, SnapshotCapturesAndTransitions)
{
    Fixture fx;
    const auto &p = func::profileByName("helloworld");
    MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
    auto files = fx.makeSnapshotFiles(p);
    struct T {
        static Task<void>
        run(Fixture &fx, MicroVm &vm, const func::FunctionProfile &p,
            SnapshotFiles files)
        {
            co_await vm.bootFromScratch(fx.gen.boot(p));
            co_await vm.createSnapshot(files);
        }
    };
    fx.sim.spawn(T::run(fx, vm, p, files));
    fx.sim.run();
    EXPECT_EQ(vm.state(), VmState::Snapshotted);
    // The full 256 MB memory image plus VMM state landed on disk.
    EXPECT_GE(fx.ssd.stats().bytesWritten, p.vmMemory);
}

/** Boot + snapshot a function, returning the files. */
Task<void>
prepareSnapshot(Fixture &fx, const func::FunctionProfile &p,
                SnapshotFiles files)
{
    auto vm = std::make_unique<MicroVm>(fx.sim, fx.fs, fx.cpus, p);
    co_await vm->bootFromScratch(fx.gen.boot(p));
    co_await vm->createSnapshot(files);
}

TEST(MicroVm, LazyRestoreServesInvocationSlowly)
{
    Fixture fx;
    const auto &p = func::profileByName("helloworld");
    auto files = fx.makeSnapshotFiles(p);

    struct T {
        static Task<void>
        run(Fixture &fx, const func::FunctionProfile &p,
            SnapshotFiles files, Duration &load_vmm,
            InvocationBreakdown &bd, Bytes &fp)
        {
            co_await prepareSnapshot(fx, p, files);
            fx.fs.dropCaches(); // cold invocation methodology, Sec. 4.1

            MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
            Time t0 = fx.sim.now();
            co_await vm.loadVmmState(files);
            co_await vm.resumeLazy(files);
            load_vmm = fx.sim.now() - t0;
            bd = co_await vm.serveInvocation(fx.gen.invocation(p, 0),
                                             nullptr);
            fp = vm.footprint();
        }
    };
    Duration load_vmm = 0;
    InvocationBreakdown bd;
    Bytes fp = 0;
    fx.sim.spawn(T::run(fx, p, files, load_vmm, bd, fp));
    fx.sim.run();

    // Load VMM: tens of ms (Fig. 2 breakdown).
    EXPECT_GT(load_vmm, msec(15));
    EXPECT_LT(load_vmm, msec(60));
    // Connection restoration includes infra-page faults: >> handshake.
    EXPECT_GT(bd.connRestore, msec(50));
    // Cold processing is orders of magnitude above the 1 ms warm time.
    EXPECT_GT(bd.processing, msec(30));
    EXPECT_GT(bd.majorFaults, 0);
    // Fig. 4 red bar: restored footprint ~= working set, far below
    // the boot footprint.
    EXPECT_LT(fp, 20 * kMiB);
    EXPECT_GT(fp, 8 * kMiB);
}

TEST(MicroVm, WarmInvocationIsFast)
{
    Fixture fx;
    const auto &p = func::profileByName("helloworld");
    auto files = fx.makeSnapshotFiles(p);
    struct T {
        static Task<void>
        run(Fixture &fx, const func::FunctionProfile &p,
            SnapshotFiles files, InvocationBreakdown &cold,
            InvocationBreakdown &warm)
        {
            co_await prepareSnapshot(fx, p, files);
            fx.fs.dropCaches();
            MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
            co_await vm.loadVmmState(files);
            co_await vm.resumeLazy(files);
            cold = co_await vm.serveInvocation(fx.gen.invocation(p, 0),
                                               nullptr);
            warm = co_await vm.serveInvocation(fx.gen.invocation(p, 1),
                                               nullptr);
        }
    };
    InvocationBreakdown cold, warm;
    fx.sim.spawn(T::run(fx, p, files, cold, warm));
    fx.sim.run();
    // Warm: established connection, resident pages.
    EXPECT_EQ(warm.connRestore, 0);
    EXPECT_LT(warm.processing, msec(5));
    // One-to-two orders of magnitude gap (Sec. 4.2).
    EXPECT_GT(cold.total(), 20 * warm.total());
}

TEST(MicroVm, UffdRestoreDeliversFaultsToMonitor)
{
    Fixture fx;
    const auto &p = func::profileByName("helloworld");
    auto files = fx.makeSnapshotFiles(p);

    struct Monitor {
        /** Record-style monitor serving faults from the memory file. */
        static Task<void>
        run(Fixture &fx, MicroVm &vm, mem::UserFaultFd &uffd,
            storage::FileId mem_file, bool &saw_first_byte)
        {
            while (true) {
                mem::FaultEvent ev = co_await uffd.nextFault();
                if (ev.page < 0)
                    break; // sentinel: shut down
                if (ev.page == 0)
                    saw_first_byte = true;
                co_await fx.fs.readBuffered(mem_file,
                                            bytesForPages(ev.page),
                                            bytesForPages(ev.runPages));
                co_await uffd.copyCost(ev.runPages, 0);
                vm.guestMemory().installRange(ev.page, ev.runPages);
                ev.done->openGate();
            }
        }
    };
    struct T {
        static Task<void>
        run(Fixture &fx, const func::FunctionProfile &p,
            SnapshotFiles files, mem::UserFaultFd &uffd,
            InvocationBreakdown &bd, bool &saw_first_byte)
        {
            co_await prepareSnapshot(fx, p, files);
            fx.fs.dropCaches();
            MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
            fx.sim.spawn(Monitor::run(fx, vm, uffd, files.guestMemory,
                                      saw_first_byte));
            co_await vm.loadVmmState(files);
            co_await vm.resumeWithUffd(files, &uffd);
            bd = co_await vm.serveInvocation(fx.gen.invocation(p, 0),
                                             nullptr);
            // Stop the monitor.
            uffd.sendShutdown();
        }
    };
    mem::UserFaultFd uffd(fx.sim);
    InvocationBreakdown bd;
    bool saw_first_byte = false;
    fx.sim.spawn(T::run(fx, p, files, uffd, bd, saw_first_byte));
    fx.sim.run();
    EXPECT_TRUE(saw_first_byte);
    EXPECT_GT(uffd.stats().faultsDelivered, 100);
    EXPECT_GT(bd.processing, msec(10));
}

TEST(MicroVm, InputFetchedFromObjectStore)
{
    Fixture fx;
    net::ObjectStore s3(fx.sim);
    const auto &p = func::profileByName("image_rotate");
    auto files = fx.makeSnapshotFiles(p);
    struct T {
        static Task<void>
        run(Fixture &fx, const func::FunctionProfile &p,
            SnapshotFiles files, net::ObjectStore &s3)
        {
            co_await prepareSnapshot(fx, p, files);
            fx.fs.dropCaches();
            MicroVm vm(fx.sim, fx.fs, fx.cpus, p);
            co_await vm.loadVmmState(files);
            co_await vm.resumeLazy(files);
            (void)co_await vm.serveInvocation(
                fx.gen.invocation(p, 0), &s3);
        }
    };
    fx.sim.spawn(T::run(fx, p, files, s3));
    fx.sim.run();
    EXPECT_EQ(s3.stats().gets, 1);
    EXPECT_EQ(s3.stats().bytesServed, p.inputSize);
}

} // namespace
} // namespace vhive::vmm
