/**
 * @file
 * Fleet-control-plane tests: shared snapshot staging through the
 * SnapshotRegistry (build-once, stage-once, remote fan-out), routing
 * policy registry dispatch and placement behaviour, fleet-wide stats
 * aggregation, and the autoscaler scale-down / in-flight invocation
 * race.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/azure_workload.hh"
#include "cluster/cluster.hh"
#include "cluster/routing_policy.hh"
#include "cluster/snapshot_registry.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::cluster {
namespace {

using sim::Simulation;
using sim::Task;

ClusterConfig
sharedConfig(int workers)
{
    ClusterConfig cfg;
    cfg.workers = workers;
    cfg.coldStartMode = core::ColdStartMode::TieredReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(60);
    cfg.scalePeriod = sec(1);
    return cfg;
}

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

std::int64_t
fleetSnapshotBuilds(Cluster &c)
{
    std::int64_t n = 0;
    for (int i = 0; i < c.workerCount(); ++i)
        n += c.worker(i).orchestrator().snapshotBuilds();
    return n;
}

TEST(SnapshotRegistry, BuildsOncePerFunctionRegardlessOfWorkers)
{
    for (int workers : {1, 4}) {
        Simulation sim;
        Cluster c(sim, sharedConfig(workers));
        c.deploy(func::profileByName("helloworld"));
        c.deploy(func::profileByName("pyaes"));
        runScenario(sim, [&]() -> Task<void> {
            co_await c.prepareAllSnapshots();
        });
        // One build + one put per function, no matter the fleet size.
        EXPECT_EQ(fleetSnapshotBuilds(c), 2) << workers << " workers";
        EXPECT_EQ(c.snapshotRegistry()->totalBuilds(), 2);
        EXPECT_EQ(c.sharedObjectStore()->stats().puts, 2);
        EXPECT_GT(c.snapshotRegistry()->totalStagedBytes(), 0);
        // Every worker can cold-start both functions.
        for (int w = 0; w < workers; ++w) {
            EXPECT_TRUE(c.worker(w).orchestrator().hasRecord(
                "helloworld"));
            EXPECT_TRUE(
                c.worker(w).orchestrator().hasRecord("pyaes"));
        }
    }
}

TEST(SnapshotRegistry, StagesOnceUnderConcurrentPrepare)
{
    Simulation sim;
    Cluster c(sim, sharedConfig(4));
    c.deploy(func::profileByName("helloworld"));
    c.deploy(func::profileByName("json_serdes"));
    runScenario(sim, [&]() -> Task<void> {
        struct Prep {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                co_await c.prepareAllSnapshots();
                done->arrive();
            }
        };
        sim::Latch done(sim, 4);
        for (int i = 0; i < 4; ++i)
            sim.spawn(Prep::run(c, &done));
        co_await done.wait();
    });
    EXPECT_EQ(c.snapshotRegistry()->totalBuilds(), 2);
    EXPECT_EQ(fleetSnapshotBuilds(c), 2);
    EXPECT_EQ(c.sharedObjectStore()->stats().puts, 2);
}

TEST(SnapshotRegistry, NonHomeWorkerColdStartsThroughRemoteTier)
{
    Simulation sim;
    Cluster c(sim, sharedConfig(2));
    const auto &profile = func::profileByName("json_serdes");
    c.deploy(profile);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        int home = c.snapshotRegistry()->homeWorkerFor(profile.name);
        int other = 1 - home;
        auto &orch = c.worker(other).orchestrator();
        EXPECT_FALSE(orch.artifactsLocal(profile.name));

        core::InvokeOptions cold;
        cold.forceCold = true;
        auto bd = co_await orch.invoke(
            profile.name, core::ColdStartMode::TieredReap, cold);
        EXPECT_TRUE(bd.cold);
        EXPECT_FALSE(bd.recordPhase); // adopted record, no re-record
        Bytes remote_bytes = 0;
        for (const auto &t : bd.tierHits)
            if (t.tier == "remote")
                remote_bytes = t.bytes;
        EXPECT_GT(remote_bytes, 0);
        // Admission re-localized the artifacts: the next cold start
        // on this worker is served from the local tiers.
        EXPECT_TRUE(orch.artifactsLocal(profile.name));
        auto bd2 = co_await orch.invoke(
            profile.name, core::ColdStartMode::TieredReap, cold);
        for (const auto &t : bd2.tierHits) {
            if (t.tier == "remote") {
                EXPECT_EQ(t.bytes, 0);
            }
        }
    });
}

TEST(SnapshotRegistry, TracksFetchFanInThroughFrontEnd)
{
    Simulation sim;
    ClusterConfig cfg = sharedConfig(4);
    // Least-loaded spreads the concurrent colds across the fleet, so
    // several workers pull the one staged artifact.
    cfg.routingPolicy = RoutingPolicyKind::LeastLoaded;
    Cluster c(sim, cfg);
    const auto &profile = func::profileByName("helloworld");
    c.deploy(profile);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        struct Arrival {
            static Task<void>
            run(Cluster &c, std::string n, sim::Latch *done)
            {
                (void)co_await c.invoke(n);
                done->arrive();
            }
        };
        sim::Latch done(sim, 4);
        for (int i = 0; i < 4; ++i)
            sim.spawn(Arrival::run(c, profile.name, &done));
        co_await done.wait();
    });
    const StagedArtifact &art =
        c.snapshotRegistry()->artifact(profile.name);
    // The home worker kept a local copy; the other three pulled it.
    EXPECT_EQ(art.builds, 1);
    EXPECT_EQ(art.fetchFanIn(), 3);
    EXPECT_GE(art.remoteFetches, 3);
    FleetStats fs = c.fleetStats();
    EXPECT_EQ(fs.fetchFanIn, 3);
    EXPECT_EQ(fs.snapshotBuilds, 1);
}

TEST(RoutingPolicy, RegistryDispatchAndExtension)
{
    RoutingPolicyRegistry reg;
    EXPECT_STREQ(reg.policyFor(RoutingPolicyKind::WarmFirst).name(),
                 "warm-first");
    EXPECT_STREQ(reg.policyFor(RoutingPolicyKind::LeastLoaded).name(),
                 "least-loaded");
    EXPECT_STREQ(reg.policyFor(RoutingPolicyKind::LocalityHash).name(),
                 "locality-hash");
    EXPECT_EQ(reg.kinds().size(), 3u);

    // The extension path: swap a built-in for a custom strategy.
    struct PinToZero final : RoutingPolicy {
        const char *name() const override { return "pin-to-zero"; }
        int route(const RouteContext &) override { return 0; }
    };
    reg.registerPolicy(RoutingPolicyKind::LeastLoaded,
                       std::make_unique<PinToZero>());
    EXPECT_STREQ(reg.policyFor(RoutingPolicyKind::LeastLoaded).name(),
                 "pin-to-zero");
}

TEST(RoutingPolicy, LeastLoadedSpreadsConcurrentColds)
{
    Simulation sim;
    ClusterConfig cfg;
    cfg.workers = 4;
    cfg.routingPolicy = RoutingPolicyKind::LeastLoaded;
    Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        struct Arrival {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("helloworld");
                done->arrive();
            }
        };
        sim::Latch done(sim, 4);
        for (int i = 0; i < 4; ++i)
            sim.spawn(Arrival::run(c, &done));
        co_await done.wait();
        // One instance per worker: each arrival saw the previous
        // dispatches as in-flight load and moved on.
        for (int w = 0; w < 4; ++w) {
            EXPECT_EQ(c.worker(w).orchestrator().instanceCount(
                          "helloworld"),
                      1)
                << "worker " << w;
        }
    });
}

TEST(RoutingPolicy, LocalityHashConcentratesColdsOnHomeWorker)
{
    Simulation sim;
    ClusterConfig cfg;
    cfg.workers = 4;
    cfg.routingPolicy = RoutingPolicyKind::LocalityHash;
    Cluster c(sim, cfg);
    c.deploy(func::profileByName("pyaes"));
    int home = LocalityHashPolicy::homeWorker("pyaes", 4);
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        struct Arrival {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("pyaes");
                done->arrive();
            }
        };
        sim::Latch done(sim, 3);
        for (int i = 0; i < 3; ++i)
            sim.spawn(Arrival::run(c, &done));
        co_await done.wait();
        // All three colds landed on the hash-home worker (spill
        // threshold not reached), keeping its artifact tiers hot.
        for (int w = 0; w < 4; ++w) {
            EXPECT_EQ(
                c.worker(w).orchestrator().instanceCount("pyaes"),
                w == home ? 3 : 0)
                << "worker " << w;
        }
    });
}

TEST(RoutingPolicy, WarmFirstSelectedExplicitlyMatchesDefault)
{
    // Policy-registry dispatch determinism: routing through the
    // registry-installed warm-first policy must reproduce the default
    // config's trajectory sample-for-sample.
    auto run_once = [](bool explicit_policy) {
        Simulation sim;
        ClusterConfig cfg;
        cfg.workers = 3;
        cfg.keepAlive = sec(90);
        if (explicit_policy)
            cfg.routingPolicy = RoutingPolicyKind::WarmFirst;
        Cluster c(sim, cfg);
        AzureWorkloadConfig wcfg;
        wcfg.functions = 4;
        wcfg.minInterarrival = sec(2);
        wcfg.maxInterarrival = sec(20);
        wcfg.horizon = sec(120);
        AzureWorkload w(sim, c, wcfg);
        AzureWorkloadResult result;
        runScenario(sim, [&]() -> Task<void> {
            result = co_await w.run();
        });
        return result;
    };
    auto a = run_once(false);
    auto b = run_once(true);
    ASSERT_GT(a.invocations, 5);
    ASSERT_EQ(a.e2eLatencyMs.values().size(),
              b.e2eLatencyMs.values().size());
    for (size_t i = 0; i < a.e2eLatencyMs.values().size(); ++i)
        EXPECT_EQ(a.e2eLatencyMs.values()[i],
                  b.e2eLatencyMs.values()[i]);
}

TEST(FleetStats, AggregatesColdPercentilesTiersAndContention)
{
    Simulation sim;
    ClusterConfig cfg = sharedConfig(2);
    cfg.routingPolicy = RoutingPolicyKind::LeastLoaded;
    Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    c.deploy(func::profileByName("json_serdes"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        struct Arrival {
            static Task<void>
            run(Cluster &c, std::string n, sim::Latch *done)
            {
                (void)co_await c.invoke(n);
                done->arrive();
            }
        };
        sim::Latch done(sim, 6);
        // Four concurrent colds of one function spread across both
        // workers under least-loaded, so whichever worker is not the
        // function's staging home provably pulls through the remote
        // tier.
        for (int i = 0; i < 4; ++i)
            sim.spawn(Arrival::run(c, "helloworld", &done));
        for (int i = 0; i < 2; ++i)
            sim.spawn(Arrival::run(c, "json_serdes", &done));
        co_await done.wait();
    });
    FleetStats fs = c.fleetStats();
    EXPECT_EQ(fs.workers, 2);
    EXPECT_GT(fs.coldE2eMs.count(), 0);
    EXPECT_EQ(fs.coldE2eMs.count() + fs.warmE2eMs.count(), 6);
    EXPECT_GE(fs.coldP99(), fs.coldP50());
    EXPECT_GT(fs.coldP50(), 0.0);
    // Cold starts flowed through the tiered chain; the fleet table
    // has a remote row with actual bytes.
    bool found_remote = false;
    for (const auto &t : fs.tierHits) {
        if (t.tier == "remote" && t.bytes > 0)
            found_remote = true;
    }
    EXPECT_TRUE(found_remote);
    // Per-worker rows sum to the fleet counters.
    std::int64_t cold_sum = 0;
    for (const auto &row : fs.perWorker)
        cold_sum += row.coldStarts;
    EXPECT_EQ(cold_sum, fs.coldE2eMs.count());
    // The shared store served every staged artifact and fetch.
    EXPECT_EQ(fs.store.puts, 2);
    EXPECT_GT(fs.store.gets, 0);
    EXPECT_GT(fs.residentBytes, 0);
}

TEST(Autoscaler, ScaleDownSkipsBusyInstance)
{
    // The janitor race the control plane must survive: the keep-alive
    // window expires while one instance is mid-invocation and another
    // sits idle. The idle one must be reclaimed, the busy one must
    // finish (stopping it used to trip the !busy assertion).
    Simulation sim;
    ClusterConfig cfg;
    cfg.workers = 1;
    cfg.keepAlive = sec(2);
    cfg.scalePeriod = msec(500);
    Cluster c(sim, cfg);
    c.deploy(func::profileByName("lr_training")); // ~5 s invocations
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // Two concurrent colds leave two warm instances.
        struct Arrival {
            static Task<void>
            run(Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("lr_training");
                done->arrive();
            }
        };
        sim::Latch done(sim, 2);
        for (int i = 0; i < 2; ++i)
            sim.spawn(Arrival::run(c, &done));
        co_await done.wait();
        EXPECT_EQ(c.instanceCount("lr_training"), 2);

        // One long warm invocation keeps one instance busy while the
        // other idles past the keep-alive window.
        c.startAutoscaler();
        Duration e2e = co_await c.invoke("lr_training");
        EXPECT_GT(e2e, cfg.keepAlive); // the window expired mid-flight
        c.stopAutoscaler();

        // The idle instance was scaled down; the busy one survived
        // its invocation.
        EXPECT_EQ(c.instanceCount("lr_training"), 1);
        EXPECT_GE(c.stats("lr_training").scaleDowns, 1);
    });
}

TEST(Cluster, SharedSnapshotsRejectsLocalOnlyMode)
{
    Simulation sim;
    ClusterConfig cfg;
    cfg.workers = 2;
    cfg.sharedSnapshots = true;
    cfg.coldStartMode = core::ColdStartMode::Reap;
    EXPECT_DEATH({ Cluster c(sim, cfg); }, "remote-capable");
}

TEST(AzureWorkloadFleet, SharedStagingColdStartsStayCorrect)
{
    // End-to-end: the Azure mix over a shared-staging fleet. Exactly
    // one build per function, and the run completes with every
    // invocation accounted.
    Simulation sim;
    ClusterConfig cfg = sharedConfig(4);
    cfg.keepAlive = sec(45);
    Cluster c(sim, cfg);
    AzureWorkloadConfig wcfg;
    wcfg.functions = 6;
    wcfg.minInterarrival = sec(2);
    wcfg.maxInterarrival = sec(30);
    wcfg.horizon = sec(240);
    AzureWorkload w(sim, c, wcfg);
    AzureWorkloadResult result;
    runScenario(sim, [&]() -> Task<void> {
        result = co_await w.run();
    });
    EXPECT_GT(result.invocations, 10);
    EXPECT_EQ(result.coldStarts + result.warmHits,
              result.invocations);
    EXPECT_EQ(c.snapshotRegistry()->totalBuilds(), 6);
    EXPECT_EQ(fleetSnapshotBuilds(c), 6);
    FleetStats fs = c.fleetStats();
    EXPECT_EQ(fs.coldE2eMs.count(), result.coldStarts);
    EXPECT_GT(fs.coldP99(), 0.0);
}

} // namespace
} // namespace vhive::cluster
