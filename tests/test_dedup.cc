/**
 * @file
 * The content-addressed artifact layer: manifest codec round-trips and
 * corruption rejection, ChunkStore refcount lifecycle (store once,
 * evict only at zero), the chunked-reassembly == blob-path property,
 * ChunkPageSource cache/remote accounting, the DedupReap loader
 * end-to-end (worker and fleet), the adaptive (AIMD) window satellite,
 * the admit-on-N-hits satellite, and chunk-aware routing.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/cluster.hh"
#include "cluster/routing_policy.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "mem/chunk_source.hh"
#include "mem/page_fetch.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "util/rng.hh"
#include "util/units.hh"
#include "vmm/snapshot.hh"

namespace vhive {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

vmm::ChunkingModel
model(Bytes chunk_bytes = 64 * kKiB, double dup = 0.35,
      bool compression = true)
{
    vmm::ChunkingModel m;
    m.chunkBytes = chunk_bytes;
    m.crossFunctionDupRatio = dup;
    m.compression = compression;
    return m;
}

// ------------------------------------------------------ manifest codec

TEST(ManifestCodec, RoundTripsBitExactly)
{
    auto m = vmm::chunkArtifact("fn/ws", 3 * kMiB + 12 * kKiB, model());
    auto bytes = storage::ManifestCodec::encode(m);
    EXPECT_EQ(static_cast<Bytes>(bytes.size()),
              storage::ManifestCodec::encodedSize(m));

    auto decoded = storage::ManifestCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->artifact, m.artifact);
    EXPECT_EQ(decoded->chunkBytes, m.chunkBytes);
    ASSERT_EQ(decoded->chunks.size(), m.chunks.size());
    for (size_t i = 0; i < m.chunks.size(); ++i) {
        EXPECT_EQ(decoded->chunks[i].hash, m.chunks[i].hash);
        EXPECT_EQ(decoded->chunks[i].rawBytes, m.chunks[i].rawBytes);
        EXPECT_EQ(decoded->chunks[i].storedBytes,
                  m.chunks[i].storedBytes);
    }
}

TEST(ManifestCodec, RejectsCorruption)
{
    auto m = vmm::chunkArtifact("fn/ws", kMiB, model());
    auto good = storage::ManifestCodec::encode(m);

    // Any single flipped byte must fail the CRC (or the magic).
    for (size_t pos : {size_t{0}, size_t{4}, good.size() / 2,
                       good.size() - 1}) {
        auto bad = good;
        bad[pos] ^= 0x40;
        EXPECT_FALSE(storage::ManifestCodec::decode(bad).has_value())
            << "flipped byte " << pos;
    }
    // Truncation at every prefix length must be rejected.
    for (size_t len : {size_t{0}, size_t{7}, size_t{11},
                       good.size() - 5, good.size() - 1}) {
        auto bad = std::vector<std::uint8_t>(good.begin(),
                                             good.begin() +
                                                 static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(storage::ManifestCodec::decode(bad).has_value())
            << "truncated to " << len;
    }
}

// ------------------------------------------------- refcount lifecycle

TEST(ChunkStore, StoresOnceAndEvictsOnlyAtZero)
{
    storage::ChunkStore cs;
    storage::ChunkRef a{0x1111, 64 * kKiB, 40 * kKiB};
    storage::ChunkRef b{0x2222, 64 * kKiB, 30 * kKiB};

    EXPECT_TRUE(cs.addRef(a));  // new -> caller owes an upload
    EXPECT_FALSE(cs.addRef(a)); // dedup
    EXPECT_TRUE(cs.addRef(b));
    EXPECT_EQ(cs.refCount(a.hash), 2);
    EXPECT_EQ(cs.chunkCount(), 2);
    EXPECT_EQ(cs.storedBytes(), 70 * kKiB);
    EXPECT_EQ(cs.stats().inserts, 2);
    EXPECT_EQ(cs.stats().dedupHits, 1);
    EXPECT_EQ(cs.stats().dedupSavedBytes, 40 * kKiB);

    // First release only decrements; the chunk stays resident.
    EXPECT_FALSE(cs.release(a.hash));
    EXPECT_TRUE(cs.contains(a.hash));
    EXPECT_EQ(cs.refCount(a.hash), 1);

    // Last reference evicts.
    EXPECT_TRUE(cs.release(a.hash));
    EXPECT_FALSE(cs.contains(a.hash));
    EXPECT_EQ(cs.storedBytes(), 30 * kKiB);
    EXPECT_EQ(cs.stats().evictions, 1);

    // Releasing an absent hash is a tolerated no-op.
    EXPECT_FALSE(cs.release(a.hash));
}

TEST(ChunkStore, ManifestHelpersTrackResidency)
{
    storage::ChunkStore cs;
    auto m = vmm::chunkArtifact("fn/ws", 2 * kMiB, model());
    EXPECT_EQ(cs.residentChunks(m), 0);
    Bytes uploaded = cs.addManifest(m);
    EXPECT_GT(uploaded, 0);
    EXPECT_LE(uploaded, m.storedBytes()); // in-manifest dups collapse
    EXPECT_EQ(cs.residentChunks(m), m.chunkCount());
    EXPECT_DOUBLE_EQ(cs.residentFraction(m), 1.0);
    cs.releaseManifest(m);
    EXPECT_EQ(cs.chunkCount(), 0);
}

// ------------------------------------- chunked reassembly == blob path

TEST(ChunkManifest, PropertyChunkingCoversArtifactExactly)
{
    // For random (artifact size, chunk size): the manifest reassembles
    // to exactly the blob's bytes — full coverage, no overlap, every
    // non-final chunk nominal, identical hash => identical sizes.
    Rng rng(0xded09);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes chunk = kPageSize * rng.uniformInt(1, 64);
        Bytes raw = rng.uniformInt(1, 96) * 37 * kKiB +
                    rng.uniformInt(0, 4096);
        auto m = vmm::chunkArtifact(
            "fn" + std::to_string(trial) + "/ws", raw,
            model(chunk, rng.uniform(), rng.chance(0.5)));

        EXPECT_EQ(m.rawBytes(), raw);
        std::map<storage::ChunkHash, storage::ChunkRef> seen;
        for (size_t i = 0; i < m.chunks.size(); ++i) {
            const auto &c = m.chunks[i];
            EXPECT_GT(c.rawBytes, 0);
            EXPECT_GT(c.storedBytes, 0);
            EXPECT_LE(c.storedBytes, c.rawBytes);
            if (i + 1 < m.chunks.size()) {
                EXPECT_EQ(c.rawBytes, chunk);
            }
            auto it = seen.find(c.hash);
            if (it != seen.end()) {
                EXPECT_EQ(it->second.rawBytes, c.rawBytes);
                EXPECT_EQ(it->second.storedBytes, c.storedBytes);
            }
            seen.emplace(c.hash, c);
        }
        // Random subranges map onto exactly the covering chunks.
        for (int probe = 0; probe < 8; ++probe) {
            Bytes off = rng.uniformInt(0, raw - 1);
            Bytes len = rng.uniformInt(1, raw - off);
            auto [first, last] = m.chunkSpan(off, len);
            EXPECT_LE(static_cast<Bytes>(first) * chunk, off);
            EXPECT_GT(static_cast<Bytes>(first + 1) * chunk, off);
            EXPECT_LT(static_cast<Bytes>(last) * chunk, off + len);
            EXPECT_GE(static_cast<Bytes>(last) * chunk +
                          m.chunks[last].rawBytes,
                      off + len);
        }
    }
}

TEST(ChunkPageSource, ReassemblyMovesBlobIdenticalBytes)
{
    // Any (offset, len) walk through the chunked source serves
    // exactly len raw bytes (cache portion + remote portion), and a
    // full sequential read reassembles the whole artifact.
    const Bytes raw = 5 * kMiB + 3 * kPageSize;
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    auto m = vmm::chunkArtifact("fn/ws", raw, model());
    storage::ChunkStore cache;
    mem::ChunkPageSource src(sim, store, m, &cache);
    mem::PageFetchPipeline pipe(sim, src);

    runScenario(sim, [&]() -> Task<void> {
        co_await pipe.fetchWindowed(0, raw, kMiB, 4);
    });

    Bytes served = 0;
    for (const auto &t : src.tierStats())
        served += t.bytes;
    EXPECT_EQ(served, raw);
    EXPECT_EQ(pipe.stats().bytesFetched, raw);

    // Every *distinct* chunk was transferred exactly once — repeats
    // within the manifest were served from the cache — moving the
    // compressed size over the wire, not the raw size.
    std::set<storage::ChunkHash> distinct;
    Bytes distinct_raw = 0, distinct_stored = 0;
    for (const auto &c : m.chunks) {
        if (distinct.insert(c.hash).second) {
            distinct_raw += c.rawBytes;
            distinct_stored += c.storedBytes;
        }
    }
    const auto &cs = src.chunkStats();
    EXPECT_EQ(cs.remoteChunks,
              static_cast<std::int64_t>(distinct.size()));
    EXPECT_EQ(cs.rawBytesFetched, distinct_raw);
    EXPECT_EQ(cs.storedBytesFetched, distinct_stored);
    EXPECT_LT(cs.storedBytesFetched, cs.rawBytesFetched);
    EXPECT_EQ(store.stats().bytesServed, cs.storedBytesFetched);
}

TEST(ChunkPageSource, ResidentChunksServeLocally)
{
    // Two functions whose manifests share runtime-pool chunks: after
    // A's fetch, B's fetch moves only B's unique + unseen chunks.
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    auto ma = vmm::chunkArtifact("fnA/ws", 4 * kMiB, model(64 * kKiB, 0.6));
    auto mb = vmm::chunkArtifact("fnB/ws", 4 * kMiB, model(64 * kKiB, 0.6));
    storage::ChunkStore cache; // the worker-wide cache both share
    mem::ChunkPageSource sa(sim, store, ma, &cache);
    mem::ChunkPageSource sb(sim, store, mb, &cache);

    runScenario(sim, [&]() -> Task<void> {
        co_await sa.readAll();
        co_await sb.readAll();
    });

    // The manifests overlap through the shared pool: B's fetch found
    // chunks A already pulled and skipped their transfer.
    std::set<storage::ChunkHash> a_hashes;
    for (const auto &c : ma.chunks)
        a_hashes.insert(c.hash);
    std::set<storage::ChunkHash> b_distinct;
    Bytes b_unseen_stored = 0;
    std::int64_t b_overlap = 0;
    for (const auto &c : mb.chunks) {
        if (!b_distinct.insert(c.hash).second)
            continue;
        if (a_hashes.count(c.hash))
            ++b_overlap;
        else
            b_unseen_stored += c.storedBytes;
    }
    ASSERT_GT(b_overlap, 0);
    EXPECT_GT(sb.chunkStats().cacheChunks, 0);
    EXPECT_EQ(sb.chunkStats().storedBytesFetched, b_unseen_stored);
    // A rerun of A is served entirely from the cache.
    Bytes served_before = store.stats().bytesServed;
    runScenario(sim, [&]() -> Task<void> {
        co_await sa.readAll();
    });
    EXPECT_EQ(store.stats().bytesServed, served_before);
}

// ------------------------------------------------- DedupReap end-to-end

TEST(DedupReap, WorkerColdStartUsesChunkedRemotePath)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("json_serdes"));

    core::LatencyBreakdown fresh, warmed;
    runScenario(sim, [&]() -> Task<void> {
        co_await orch.prepareSnapshot("json_serdes");
        core::InvokeOptions opts;
        opts.forceCold = true;
        // Record phase, then staging evicts the local copy
        // (fresh-worker model): the next cold walks the chunk path.
        (void)co_await orch.invoke("json_serdes",
                                   core::ColdStartMode::DedupReap,
                                   opts);
        fresh = co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
        warmed = co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
    });

    auto row = [&](const core::LatencyBreakdown &bd,
                   const char *label) -> const core::TierBreakdown * {
        for (const auto &t : bd.tierHits)
            if (t.tier == label)
                return &t;
        return nullptr;
    };
    // Fresh: the chunked backstop served the whole working set...
    const auto *remote = row(fresh, "chunk-remote");
    ASSERT_NE(remote, nullptr);
    EXPECT_GT(remote->bytes, 0);
    // ...and staging + transfer were chunk-level operations.
    EXPECT_GT(w.objectStore().stats().chunkPuts, 0);
    EXPECT_GT(w.objectStore().stats().chunkBatches, 0);
    EXPECT_GT(orch.chunkResidency("json_serdes"), 0.99);
    // Warmed: admission re-localized the artifacts; no remote bytes.
    const auto *remote2 = row(warmed, "chunk-remote");
    ASSERT_NE(remote2, nullptr);
    EXPECT_EQ(remote2->bytes, 0);
    EXPECT_TRUE(orch.artifactsLocal("json_serdes"));
}

TEST(DedupReap, StagingDedupsAcrossFunctionsOnOneWorker)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    cfg.reap.chunkDupRatio = 0.6;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("helloworld"));
    orch.registerFunction(func::profileByName("pyaes"));

    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        for (const char *fn : {"helloworld", "pyaes"}) {
            co_await orch.prepareSnapshot(fn);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
        }
    });

    // The second function's staging found shared chunks already in
    // the index: fewer uploads than manifest chunks.
    const auto &idx = orch.stagedChunkIndex();
    EXPECT_GT(idx.stats().dedupHits, 0);
    EXPECT_GT(idx.stats().dedupSavedBytes, 0);
    EXPECT_EQ(static_cast<std::int64_t>(
                  w.objectStore().stats().chunkPuts),
              idx.stats().inserts);
}

TEST(DedupReap, FleetSharedStagingCountsDedupInFleetStats)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 4;
    cfg.coldStartMode = core::ColdStartMode::DedupReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(60);
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    c.deploy(func::profileByName("pyaes"));
    c.deploy(func::profileByName("json_serdes"));

    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        for (const char *fn : {"helloworld", "pyaes", "json_serdes"})
            (void)co_await c.invoke(fn);
    });

    auto fs = c.fleetStats();
    EXPECT_GT(fs.chunkLogicalBytes, 0);
    EXPECT_GT(fs.chunkStoredBytes, 0);
    EXPECT_GT(fs.chunkDedupSavedBytes, 0); // cross-function chunks
    EXPECT_GT(fs.dedupRatio(), 0.0);
    EXPECT_LT(fs.dedupRatio(), 1.0);
    EXPECT_GT(fs.chunksStored, 0);
    EXPECT_GT(fs.chunksDeduped, 0);
    // Chunked staging moved strictly fewer bytes than the blobs.
    EXPECT_LT(fs.stagedBytes, fs.chunkLogicalBytes);
    // One build per function, as with blob staging.
    EXPECT_EQ(fs.snapshotBuilds, 3);
}

TEST(DedupReap, InvalidateRetainsRefsUntilRetire)
{
    Simulation sim;
    core::WorkerConfig cfg;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("helloworld"));

    runScenario(sim, [&]() -> Task<void> {
        co_await orch.prepareSnapshot("helloworld");
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke(
            "helloworld", core::ColdStartMode::DedupReap, opts);
        (void)co_await orch.invoke(
            "helloworld", core::ColdStartMode::DedupReap, opts);
    });
    ASSERT_TRUE(orch.manifests("helloworld") != nullptr);
    std::int64_t staged = orch.stagedChunkIndex().chunkCount();
    ASSERT_GT(staged, 0);

    // Invalidation keeps the outgoing version's references alive so
    // the re-record's staging can diff against them (delta
    // manifests): nothing is released yet.
    orch.invalidateRecord("helloworld");
    EXPECT_EQ(orch.manifests("helloworld"), nullptr);
    EXPECT_EQ(orch.stagedChunkIndex().chunkCount(), staged);
    EXPECT_EQ(orch.stagedChunkIndex().stats().evictions, 0);

    // Retiring the function (fleet GC) releases everything; with a
    // single function every staged chunk hits refcount zero.
    orch.retireRecord("helloworld");
    EXPECT_EQ(orch.stagedChunkIndex().chunkCount(), 0);
    EXPECT_EQ(orch.stagedChunkIndex().stats().evictions, staged);

    // Idempotent: a second retire finds nothing to release.
    orch.retireRecord("helloworld");
    EXPECT_EQ(orch.stagedChunkIndex().chunkCount(), 0);
    EXPECT_EQ(orch.stagedChunkIndex().stats().evictions, staged);
}

TEST(DedupReap, SharedChunkRefsReleaseInOrder)
{
    // Release ordering of the staged index under retirement: a chunk
    // referenced by two functions must survive the first function's
    // retireRecord() with exactly the other function's references, a
    // repeated retirement must release nothing (no double-release, no
    // negative counts), and only the last holder's retirement evicts.
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    cfg.reap.chunkDupRatio = 0.6;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("helloworld"));
    orch.registerFunction(func::profileByName("pyaes"));

    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        for (const char *fn : {"helloworld", "pyaes"}) {
            co_await orch.prepareSnapshot(fn);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
        }
    });

    auto hw = orch.manifests("helloworld");
    auto py = orch.manifests("pyaes");
    ASSERT_NE(hw, nullptr);
    ASSERT_NE(py, nullptr);
    auto countRefs = [](const vmm::SnapshotManifests &m,
                        storage::ChunkHash h) {
        std::int64_t n = 0;
        for (const auto *man : {&m.vmmState, &m.ws})
            for (const auto &c : man->chunks)
                if (c.hash == h)
                    ++n;
        return n;
    };
    // A chunk both functions staged (chunkDupRatio guarantees one).
    storage::ChunkHash shared_hash{};
    bool found = false;
    for (const auto &c : hw->ws.chunks) {
        if (countRefs(*py, c.hash) > 0) {
            shared_hash = c.hash;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    const auto &staged = orch.stagedChunkIndex();
    EXPECT_EQ(staged.refCount(shared_hash),
              countRefs(*hw, shared_hash) +
                  countRefs(*py, shared_hash));

    // Retire helloworld: the shared chunk keeps pyaes's references.
    orch.retireRecord("helloworld");
    EXPECT_EQ(staged.refCount(shared_hash),
              countRefs(*py, shared_hash));
    EXPECT_DOUBLE_EQ(staged.residentFraction(py->ws), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(py->vmmState), 1.0);

    // Repeated retirement finds nothing left to release.
    std::int64_t count_after = staged.chunkCount();
    orch.retireRecord("helloworld");
    EXPECT_EQ(staged.chunkCount(), count_after);
    EXPECT_EQ(staged.refCount(shared_hash),
              countRefs(*py, shared_hash));

    // The last holder's retirement evicts everything.
    orch.retireRecord("pyaes");
    EXPECT_EQ(staged.refCount(shared_hash), 0);
    EXPECT_EQ(staged.chunkCount(), 0);
}

TEST(DedupReap, InvalidateMidColdStartKeepsIndexConsistent)
{
    // invalidateRecord() racing an in-flight cold start: the loader
    // pinned the manifests, so the fetch completes normally, the old
    // version's references are retained for delta diffing (the other
    // function's stay fully resident), and a re-record + re-stage
    // moves only the churned chunks before converging back to a
    // fully staged pair.
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    cfg.reap.chunkDupRatio = 0.6;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("helloworld"));
    orch.registerFunction(func::profileByName("pyaes"));

    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        for (const char *fn : {"helloworld", "pyaes"}) {
            co_await orch.prepareSnapshot(fn);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
            (void)co_await orch.invoke(
                fn, core::ColdStartMode::DedupReap, opts);
        }
    });
    auto hw = orch.manifests("helloworld");
    auto py = orch.manifests("pyaes");
    ASSERT_NE(hw, nullptr);
    ASSERT_NE(py, nullptr);

    // Model a worker that lost its local copies: the next cold start
    // must walk the chunk-remote path, a long in-flight fetch.
    orch.localChunkCache().releaseManifest(hw->ws);
    orch.localChunkCache().releaseManifest(hw->vmmState);
    orch.evictLocalArtifacts("helloworld");
    orch.flushHostCaches();

    core::LatencyBreakdown bd;
    bool invoke_done = false;
    bool raced_in_flight = false;
    struct Invoker {
        static Task<void>
        run(core::Orchestrator &orch, core::LatencyBreakdown *bd,
            bool *done)
        {
            core::InvokeOptions opts;
            opts.forceCold = true;
            *bd = co_await orch.invoke(
                "helloworld", core::ColdStartMode::DedupReap, opts);
            *done = true;
        }
    };
    runScenario(sim, [&]() -> Task<void> {
        sim.spawn(Invoker::run(orch, &bd, &invoke_done));
        co_await sim.delay(msec(10));
        raced_in_flight = !invoke_done;
        orch.invalidateRecord("helloworld");
    });

    // The invalidation really raced the cold start, which still
    // completed against the pinned manifest.
    EXPECT_TRUE(raced_in_flight);
    EXPECT_TRUE(invoke_done);
    EXPECT_TRUE(bd.cold);
    EXPECT_FALSE(bd.crashed);
    EXPECT_GT(bd.total, 0);
    EXPECT_EQ(orch.manifests("helloworld"), nullptr);

    // Delta retention: the old version's references survive the
    // invalidation, so *both* functions are still fully resident in
    // the staged index (nothing released before the delta lands).
    const auto &staged = orch.stagedChunkIndex();
    EXPECT_DOUBLE_EQ(staged.residentFraction(py->ws), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(py->vmmState), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(hw->ws), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(hw->vmmState), 1.0);

    // Re-record + re-stage: record phase first (the invalidation
    // cleared the record), then a chunked cold start stages the new
    // version as a delta against the retained old references.
    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke(
            "helloworld", core::ColdStartMode::DedupReap, opts);
        (void)co_await orch.invoke(
            "helloworld", core::ColdStartMode::DedupReap, opts);
    });
    EXPECT_TRUE(orch.hasRecord("helloworld"));
    auto hw2 = orch.manifests("helloworld");
    ASSERT_NE(hw2, nullptr);
    EXPECT_DOUBLE_EQ(staged.residentFraction(hw2->ws), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(hw2->vmmState), 1.0);
    EXPECT_DOUBLE_EQ(staged.residentFraction(py->ws), 1.0);

    // The delta landed: only the churned chunks were re-uploaded
    // (strictly fewer than a full manifest), at least one chunk
    // carried over unchanged, and the old version's exclusive chunks
    // are gone — the index holds exactly py ∪ hw2.
    const auto &st = orch.stats("helloworld");
    std::int64_t hw2_chunks =
        static_cast<std::int64_t>(hw2->ws.chunks.size() +
                                  hw2->vmmState.chunks.size());
    EXPECT_EQ(st.deltaRestages, 1);
    EXPECT_GT(st.deltaChunksUnchanged, 0);
    EXPECT_GT(st.deltaChunksUploaded, 0); // churn really happened
    EXPECT_LT(st.deltaChunksUploaded, hw2_chunks / 2);
    std::set<storage::ChunkHash> keep;
    for (const auto *m : {py.get(), hw2.get()})
        for (const auto *man : {&m->vmmState, &m->ws})
            for (const auto &c : man->chunks)
                keep.insert(c.hash);
    EXPECT_EQ(staged.chunkCount(),
              static_cast<std::int64_t>(keep.size()));
}

// ------------------------------------------------- adaptive AIMD window

TEST(AdaptiveWindow, ConvergesIntoSweetSpotBand)
{
    // windowBytes == 0 => AIMD. Against the remote store defaults the
    // controller must converge into the sweet-spot band the
    // bench_tiered_window_sweep maps (hundreds of KiB to ~2 MiB), and
    // land within a modest factor of the best fixed window's time.
    const Bytes len = 48 * kMiB;
    auto run = [&](Bytes window) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        mem::RemoteObjectSource src(store);
        mem::PageFetchPipeline pipe(sim, src);
        Duration took = 0;
        runScenario(sim, [&]() -> Task<void> {
            co_await pipe.fetchWindowedTimed(0, len, window, 4,
                                             &took);
        });
        return std::pair<Duration, Bytes>(
            took, pipe.stats().convergedWindowBytes);
    };

    auto [adaptive_t, converged] = run(0);
    auto [fixed_t, ignored] = run(kMiB); // the PR 2 sweet spot
    (void)ignored;

    EXPECT_GE(converged, 256 * kKiB);
    EXPECT_LE(converged, 2 * kMiB);
    EXPECT_LE(static_cast<double>(adaptive_t),
              1.3 * static_cast<double>(fixed_t));

    // And it still moves exactly the artifact's bytes.
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    mem::RemoteObjectSource src(store);
    mem::PageFetchPipeline pipe(sim, src);
    runScenario(sim, [&]() -> Task<void> {
        co_await pipe.fetchWindowed(0, len, 0, 4);
    });
    EXPECT_EQ(pipe.stats().bytesFetched, len);
    EXPECT_EQ(store.stats().bytesServed, len);
    EXPECT_EQ(pipe.stats().adaptiveFetches, 1);
}

TEST(AdaptiveWindow, TieredLoaderUsesAdaptiveModeAtZeroWindow)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    cfg.reap.tieredWindowBytes = 0; // adaptive
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("json_serdes"));

    core::LatencyBreakdown fresh;
    runScenario(sim, [&]() -> Task<void> {
        co_await orch.prepareSnapshot("json_serdes");
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke("json_serdes",
                                   core::ColdStartMode::TieredReap,
                                   opts);
        fresh = co_await orch.invoke(
            "json_serdes", core::ColdStartMode::TieredReap, opts);
    });
    // The fresh fetch went remote through ranged GETs sized by the
    // controller — more than one window, fewer than one per page.
    std::int64_t ranged = w.objectStore().stats().rangedGets;
    EXPECT_GT(ranged, 1);
    EXPECT_LT(ranged,
              func::profileByName("json_serdes").wsPages());
    EXPECT_GT(fresh.fetchWs, 0);
}

// ---------------------------------------------------- admit-after-hits

TEST(TieredAdmission, AdmitAfterTwoHitsDelaysLocalization)
{
    auto run_colds = [](int admit_after) {
        Simulation sim;
        core::WorkerConfig cfg;
        cfg.objectStore = net::ObjectStoreParams::remote();
        cfg.reap.admitAfterHits = admit_after;
        core::Worker w(sim, cfg);
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("json_serdes"));
        std::vector<bool> local_after;
        runScenario(sim, [&]() -> Task<void> {
            co_await orch.prepareSnapshot("json_serdes");
            core::InvokeOptions opts;
            opts.forceCold = true;
            // Record + stage (evicts local copy).
            (void)co_await orch.invoke(
                "json_serdes", core::ColdStartMode::TieredReap, opts);
            for (int i = 0; i < 3; ++i) {
                (void)co_await orch.invoke(
                    "json_serdes", core::ColdStartMode::TieredReap,
                    opts);
                local_after.push_back(
                    orch.artifactsLocal("json_serdes"));
            }
        });
        return local_after;
    };

    // N=1 (default): the first post-staging cold localizes.
    auto n1 = run_colds(1);
    ASSERT_EQ(n1.size(), 3u);
    EXPECT_TRUE(n1[0]);

    // N=2: the first cold start pays remote WITHOUT admitting; the
    // second admits and localizes; the third is local.
    auto n2 = run_colds(2);
    ASSERT_EQ(n2.size(), 3u);
    EXPECT_FALSE(n2[0]);
    EXPECT_TRUE(n2[1]);
    EXPECT_TRUE(n2[2]);
}

// ------------------------------------------------- chunk-aware routing

struct StubFleet final : public cluster::FleetView
{
    std::vector<double> residency{0.0, 0.0, 0.0, 0.0};

    int
    workerCount() const override
    {
        return static_cast<int>(residency.size());
    }
    std::int64_t
    idleInstances(int, const std::string &) const override
    {
        return 0; // all cold
    }
    std::int64_t inFlight(int) const override { return 0; }
    Bytes residentBytes(int) const override { return 0; }
    bool artifactsLocal(int, const std::string &) const override
    {
        return false;
    }
    double
    chunkResidency(int worker, const std::string &) const override
    {
        return residency[static_cast<size_t>(worker)];
    }
};

TEST(LocalityHash, OverlapWeightRoutesToChunkRichWorker)
{
    StubFleet fleet;
    const std::string name = "fn";
    int home = cluster::LocalityHashPolicy::homeWorker(name, 4);
    int rich = (home + 2) % 4; // chunk-rich worker away from home
    fleet.residency[static_cast<size_t>(rich)] = 0.9;

    cluster::LocalityHashPolicy plain;
    EXPECT_EQ(plain.route(cluster::RouteContext{name, fleet}), home);

    cluster::LocalityHashPolicy weighted;
    weighted.setOverlapWeight(2.0);
    // 2.0 * 0.9 resident beats the ring-distance penalty: the cold
    // start goes where the chunks already are.
    EXPECT_EQ(weighted.route(cluster::RouteContext{name, fleet}),
              rich);

    // With no residency anywhere the weighted pick degrades to home.
    fleet.residency.assign(4, 0.0);
    EXPECT_EQ(weighted.route(cluster::RouteContext{name, fleet}),
              home);
}

} // namespace
} // namespace vhive
