/**
 * @file
 * Tests for guest memory backing modes and the userfaultfd model,
 * including a miniature record-style monitor loop.
 */

#include <gtest/gtest.h>

#include "host/cpu_pool.hh"
#include "mem/guest_memory.hh"
#include "mem/page_fetch.hh"
#include "mem/page_source.hh"
#include "mem/tiered_source.hh"
#include "sim/fault.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "storage/file_store.hh"
#include "util/units.hh"

namespace vhive::mem {
namespace {

using sim::Simulation;
using sim::Task;

struct Fixture {
    Simulation sim;
    storage::DiskDevice ssd{sim, storage::DiskParams::ssd()};
    storage::FileStore fs{sim, ssd};
};

TEST(CpuPool, SerializesBeyondCoreCount)
{
    Simulation sim;
    host::CpuPool pool(sim, 2);
    sim::Latch done(sim, 4);
    struct Job {
        static Task<void>
        run(host::CpuPool &pool, sim::Latch *done)
        {
            co_await pool.exec(msec(10));
            done->arrive();
        }
    };
    for (int i = 0; i < 4; ++i)
        sim.spawn(Job::run(pool, &done));
    Time end = sim.run();
    EXPECT_EQ(end, msec(20)); // two waves on two cores
    EXPECT_EQ(pool.idleCores(), 2);
}

TEST(GuestMemory, AnonymousTouchMaterializesPages)
{
    Fixture fx;
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 64);
            co_await gm.touchRun(100, 4);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 68);
    EXPECT_TRUE(gm.isPresent(0));
    EXPECT_TRUE(gm.isPresent(103));
    EXPECT_FALSE(gm.isPresent(104));
    EXPECT_EQ(gm.stats().majorFaults, 2);
}

TEST(GuestMemory, RepeatTouchIsMinor)
{
    Fixture fx;
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 10);
            co_await gm.touchRun(0, 10);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.stats().majorFaults, 1);
    EXPECT_EQ(gm.stats().minorFaults, 10);
    EXPECT_EQ(gm.presentPages(), 10);
}

TEST(GuestMemory, LazyFileFaultsReadFromDisk)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backLazyFile(mem_file);
    Duration took = 0;
    struct T {
        static Task<void>
        run(Fixture &fx, GuestMemory &gm, Duration &out)
        {
            Time t0 = fx.sim.now();
            co_await gm.touchRun(16, 3);
            out = fx.sim.now() - t0;
        }
    };
    fx.sim.spawn(T::run(fx, gm, took));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 3);
    EXPECT_GT(fx.ssd.stats().bytesRead, 0);
    // Fault path: serialized miss stage + device access, order 100s us.
    EXPECT_GT(took, usec(150));
    EXPECT_LT(took, msec(2));
}

TEST(GuestMemory, LazyFileMixedRunSplitsFaults)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backLazyFile(mem_file);
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(10, 4);  // pages 10..13 resident
            co_await gm.touchRun(8, 8);   // 8,9 missing; 10..13 hit;
                                          // 14,15 missing
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 8);
    EXPECT_EQ(gm.stats().majorFaults, 3);
    EXPECT_EQ(gm.stats().minorFaults, 4);
}

TEST(GuestMemory, BackLazyFileResetsPresence)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 100);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 100);
    gm.backLazyFile(mem_file);
    EXPECT_EQ(gm.presentPages(), 0);
}

/** A minimal record-mode monitor: serve each fault from the file. */
Task<void>
miniMonitor(Fixture &fx, GuestMemory &gm, UserFaultFd &uffd,
            storage::FileId mem_file, int expected_faults,
            std::vector<std::int64_t> *trace)
{
    for (int i = 0; i < expected_faults; ++i) {
        FaultEvent ev = co_await uffd.nextFault();
        trace->push_back(ev.page);
        co_await fx.fs.readBuffered(mem_file, bytesForPages(ev.page),
                                    bytesForPages(ev.runPages));
        co_await uffd.copyCost(ev.runPages, 0);
        gm.installRange(ev.page, ev.runPages);
        ev.done->openGate();
    }
}

TEST(Uffd, MonitorServesFaults)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    std::vector<std::int64_t> trace;
    fx.sim.spawn(miniMonitor(fx, gm, uffd, mem_file, 3, &trace));

    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(42, 2);
            co_await gm.touchRun(100, 3);
            co_await gm.touchRun(7, 1);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();

    EXPECT_EQ(gm.presentPages(), 6);
    EXPECT_EQ((trace), (std::vector<std::int64_t>{42, 100, 7}));
    EXPECT_EQ(uffd.stats().faultsDelivered, 3);
    EXPECT_EQ(uffd.stats().pagesInstalled, 6);
    EXPECT_EQ(gm.stats().pagesInstalledByMonitor, 6);
}

TEST(Uffd, PartialInstallRefaults)
{
    // Monitor that installs only the first page of each request: the
    // faulting run must re-fault for the remainder and still complete.
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 256 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 256);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    struct StingyMonitor {
        static Task<void>
        run(Fixture &fx, GuestMemory &gm, UserFaultFd &uffd,
            storage::FileId f, int faults)
        {
            for (int i = 0; i < faults; ++i) {
                FaultEvent ev = co_await uffd.nextFault();
                co_await fx.fs.readBuffered(f, bytesForPages(ev.page),
                                            kPageSize);
                co_await uffd.copyCost(1, 0);
                gm.installRange(ev.page, 1);
                ev.done->openGate();
            }
        }
    };
    struct T {
        static Task<void>
        run(GuestMemory &gm, bool &done)
        {
            co_await gm.touchRun(10, 4);
            done = true;
        }
    };
    bool done = false;
    fx.sim.spawn(StingyMonitor::run(fx, gm, uffd, mem_file, 4));
    fx.sim.spawn(T::run(gm, done));
    fx.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(gm.presentPages(), 4);
    EXPECT_EQ(uffd.stats().faultsDelivered, 4);
}

TEST(Uffd, CopyCostBatches)
{
    Simulation sim;
    UserFaultFd uffd(sim);
    struct T {
        static Task<void>
        run(Simulation &sim, UserFaultFd &uffd, Duration &batched,
            Duration &singles)
        {
            Time t0 = sim.now();
            co_await uffd.copyCost(2048, 0); // one big call
            batched = sim.now() - t0;
            t0 = sim.now();
            co_await uffd.copyCost(2048, 1); // page-at-a-time
            singles = sim.now() - t0;
        }
    };
    Duration batched = 0, singles = 0;
    sim.spawn(T::run(sim, uffd, batched, singles));
    sim.run();
    EXPECT_LT(batched, singles);
    EXPECT_EQ(uffd.stats().copyCalls, 1 + 2048);
    EXPECT_EQ(uffd.stats().pagesInstalled, 2 * 2048);
}

// ------------------------------------------------ pipeline properties

/**
 * A three-tier fallback chain over one WS-like file and a remote
 * store, mirroring what TieredReapLoader builds: page cache (gated on
 * cache residency), local SSD (gated on @p localValid), remote
 * backstop. Admission lands remote bytes in the file's cache pages.
 */
struct TieredFixture {
    Fixture fx;
    net::ObjectStore store{fx.sim,
                           net::ObjectStoreParams::remote()};
    storage::FileId file;
    bool localValid = false;
    mem::TieredPageSource tiered{fx.sim};

    explicit TieredFixture(Bytes bytes = 8 * kMiB)
    {
        file = fx.fs.createFile("ws", bytes);
        storage::FileStore *fs = &fx.fs;
        storage::FileId f = file;
        bool *valid = &localValid;
        tiered.addTier(mem::TieredPageSource::Tier{
            "page-cache",
            std::make_unique<mem::BufferedFileSource>(*fs, f),
            [fs, f](Bytes off, Bytes len) {
                return fs->isCached(f, off, len);
            },
            nullptr});
        tiered.addTier(mem::TieredPageSource::Tier{
            "local-ssd",
            std::make_unique<mem::DirectFileSource>(*fs, f),
            [valid](Bytes, Bytes) { return *valid; },
            [fs, f](Bytes off, Bytes len) {
                return fs->writeBuffered(f, off, len);
            }});
        tiered.addTier(mem::TieredPageSource::Tier{
            "remote",
            std::make_unique<mem::RemoteObjectSource>(store),
            nullptr, nullptr});
    }
};

/** Sum of per-tier served bytes. */
Bytes
tierBytes(const std::vector<mem::TierStats> &tiers)
{
    Bytes total = 0;
    for (const auto &t : tiers)
        total += t.bytes;
    return total;
}

/** Sum of per-tier hits (= reads served by the chain). */
std::int64_t
tierHits(const std::vector<mem::TierStats> &tiers)
{
    std::int64_t total = 0;
    for (const auto &t : tiers)
        total += t.hits;
    return total;
}

TEST(PageFetchPipeline, WindowedMovesIdenticalBytesToContiguous)
{
    // Property: for ANY (windowBytes, inFlight) split — divisible or
    // not, over- or under-subscribed — fetchWindowed moves exactly the
    // bytes fetchContiguous moves.
    const Bytes len = 3 * kMiB + 12 * kKiB;
    const Bytes windows[] = {kPageSize,       64 * kKiB,
                             100 * kKiB,      kMiB,
                             2 * kMiB,        len,
                             4 * len,         0};
    const int inflight[] = {1, 2, 3, 8, 64};

    Fixture ref;
    auto ref_file = ref.fs.createFile("ws", len);
    mem::BufferedFileSource ref_src(ref.fs, ref_file);
    mem::PageFetchPipeline ref_pipe(ref.sim, ref_src);
    struct Contig {
        static Task<void>
        run(mem::PageFetchPipeline &p, Bytes len)
        {
            co_await p.fetchContiguous(0, len);
        }
    };
    ref.sim.spawn(Contig::run(ref_pipe, len));
    ref.sim.run();
    ASSERT_EQ(ref_pipe.stats().bytesFetched, len);

    for (Bytes w : windows) {
        for (int n : inflight) {
            Fixture fx;
            auto file = fx.fs.createFile("ws", len);
            mem::BufferedFileSource src(fx.fs, file);
            mem::PageFetchPipeline pipe(fx.sim, src);
            struct Windowed {
                static Task<void>
                run(mem::PageFetchPipeline &p, Bytes len, Bytes w,
                    int n)
                {
                    co_await p.fetchWindowed(0, len, w, n);
                }
            };
            fx.sim.spawn(Windowed::run(pipe, len, w, n));
            fx.sim.run();
            EXPECT_EQ(pipe.stats().bytesFetched,
                      ref_pipe.stats().bytesFetched)
                << "window=" << w << " inFlight=" << n;
            // The device moved every byte exactly once, too.
            EXPECT_EQ(fx.ssd.stats().bytesRead,
                      ref.ssd.stats().bytesRead)
                << "window=" << w << " inFlight=" << n;
        }
    }
}

TEST(PageFetchPipeline, WindowedZeroLengthIsNoOpFetch)
{
    // A zero-length range degenerates to one contiguous fetch of zero
    // bytes for every window size (fixed, covering, adaptive): no
    // windows issued, no bytes moved, and the pipeline still accounts
    // the call.
    const Bytes windows[] = {kPageSize, kMiB, 0};
    for (Bytes w : windows) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        RemoteObjectSource src(store);
        PageFetchPipeline pipe(sim, src);
        struct T {
            static Task<void>
            run(PageFetchPipeline &p, Bytes w)
            {
                co_await p.fetchWindowed(0, 0, w, 4);
            }
        };
        sim.spawn(T::run(pipe, w));
        sim.run();
        EXPECT_EQ(pipe.stats().bytesFetched, 0) << "window=" << w;
        EXPECT_EQ(pipe.stats().contiguousFetches, 1) << "window=" << w;
        EXPECT_EQ(pipe.stats().windowedFetches, 0) << "window=" << w;
        EXPECT_EQ(pipe.stats().windowsIssued, 0) << "window=" << w;
        EXPECT_EQ(store.stats().bytesServed, 0) << "window=" << w;
    }
}

TEST(PageFetchPipeline, WindowLargerThanArtifactIsContiguous)
{
    // A window covering (or exceeding) the whole artifact must
    // degenerate to the contiguous shape: one request, no windowed
    // accounting.
    const Bytes len = 2 * kMiB + 3 * kKiB;
    for (Bytes w : {len, len + 1, 100 * len}) {
        Simulation sim;
        net::ObjectStore store(sim, net::ObjectStoreParams::remote());
        RemoteObjectSource src(store);
        PageFetchPipeline pipe(sim, src);
        struct T {
            static Task<void>
            run(PageFetchPipeline &p, Bytes len, Bytes w)
            {
                co_await p.fetchWindowed(0, len, w, 8);
            }
        };
        sim.spawn(T::run(pipe, len, w));
        sim.run();
        EXPECT_EQ(pipe.stats().contiguousFetches, 1) << "window=" << w;
        EXPECT_EQ(pipe.stats().windowedFetches, 0) << "window=" << w;
        EXPECT_EQ(pipe.stats().windowsIssued, 0) << "window=" << w;
        EXPECT_EQ(pipe.stats().bytesFetched, len) << "window=" << w;
        EXPECT_EQ(store.stats().gets, 1) << "window=" << w;
        EXPECT_EQ(store.stats().bytesServed, len) << "window=" << w;
    }
}

TEST(PageFetchPipeline, AdaptiveFetchCompletesUnderStoreErrors)
{
    // The AIMD-sized adaptive fetch over a store injecting mid-stream
    // request errors: errors inflate observed per-GET times (which the
    // controller may read as congestion), but the fetch must still
    // move every byte exactly once and converge inside the configured
    // window bounds.
    Simulation sim;
    net::ObjectStore store(sim, net::ObjectStoreParams::remote());
    sim::FaultPlan plan(17);
    sim::FaultSpec err;
    err.kind = sim::FaultKind::RequestError;
    err.target = "store";
    err.windows.push_back(sim::FaultWindow{0, sec(600), 1.0, 0.4});
    plan.add(err);
    store.setFaultPlan(&plan, "store");

    const Bytes len = 24 * kMiB + 5 * kKiB;
    RemoteObjectSource src(store);
    PageFetchPipeline pipe(sim, src);
    struct T {
        static Task<void>
        run(PageFetchPipeline &p, Bytes len)
        {
            co_await p.fetchWindowed(0, len, 0, 4); // adaptive
        }
    };
    sim.spawn(T::run(pipe, len));
    sim.run();

    EXPECT_EQ(pipe.stats().adaptiveFetches, 1);
    EXPECT_EQ(pipe.stats().bytesFetched, len);
    EXPECT_EQ(store.stats().bytesServed, len);
    EXPECT_GT(plan.stats().requestErrors, 0);
    EXPECT_EQ(store.stats().requestRetries, plan.stats().requestErrors);
    const auto &ap = pipe.adaptiveParams();
    EXPECT_GE(pipe.stats().convergedWindowBytes, ap.minWindow);
    EXPECT_LE(pipe.stats().convergedWindowBytes, ap.maxWindow);
    EXPECT_GT(pipe.stats().windowsIssued, 1);
}

TEST(PageFetchPipeline, TieredAccountingInvariants)
{
    // Properties over a fetch history that exercises all three tiers:
    //  - bytesFetched == sum of per-tier served bytes
    //  - every read is served by exactly one tier (sum hits == reads)
    //  - per-tier probes chain: hits[0]+misses[0] == reads, and
    //    hits[i]+misses[i] == misses[i-1] below the top.
    const Bytes len = 4 * kMiB;
    TieredFixture tf(len);
    mem::PageFetchPipeline pipe(tf.fx.sim, tf.tiered);
    struct T {
        static Task<void>
        run(TieredFixture &tf, mem::PageFetchPipeline &p, Bytes len)
        {
            // Pass 1: nothing local — remote serves, admission fills
            // the cache.
            co_await p.fetchWindowed(0, len, 512 * kKiB, 4);
            // Pass 2: cache serves.
            co_await p.fetchWindowed(0, len, 512 * kKiB, 4);
            // Pass 3: flushed cache + valid local copy — SSD serves.
            tf.localValid = true;
            tf.fx.fs.dropFileCaches(tf.file);
            co_await p.fetchWindowed(0, len, kMiB, 2);
            // Pass 4: a contiguous fetch through the same chain.
            tf.fx.fs.dropFileCaches(tf.file);
            co_await p.fetchContiguous(0, len);
        }
    };
    tf.fx.sim.spawn(T::run(tf, pipe, len));
    tf.fx.sim.run();

    const auto &st = pipe.stats();
    ASSERT_EQ(st.tiers.size(), 3u);
    const auto &cache = st.tiers[0];
    const auto &ssd = st.tiers[1];
    const auto &remote = st.tiers[2];

    // 8 + 8 + 4 + 1 windows entered the chain.
    std::int64_t reads = tierHits(st.tiers);
    EXPECT_EQ(reads, 21);
    EXPECT_EQ(st.bytesFetched, tierBytes(st.tiers));
    EXPECT_EQ(cache.hits + cache.misses, reads);
    EXPECT_EQ(ssd.hits + ssd.misses, cache.misses);
    EXPECT_EQ(remote.hits + remote.misses, ssd.misses);
    EXPECT_EQ(remote.misses, 0); // the backstop never declines
    // Every tier served something in this history.
    EXPECT_GT(cache.hits, 0);
    EXPECT_GT(ssd.hits, 0);
    EXPECT_GT(remote.hits, 0);
    // Admission mirrored exactly the remote-served ranges.
    EXPECT_EQ(ssd.admissions, remote.hits);
    EXPECT_EQ(ssd.bytesAdmitted, remote.bytes);
}

TEST(PageFetchPipeline, TieredAdmissionPopulatesUpperTiers)
{
    const Bytes len = 2 * kMiB;
    TieredFixture tf(len);
    mem::PageFetchPipeline pipe(tf.fx.sim, tf.tiered);
    std::int64_t gets_after_first = 0;
    struct T {
        static Task<void>
        run(TieredFixture &tf, mem::PageFetchPipeline &p, Bytes len,
            std::int64_t &gets_after_first)
        {
            co_await p.fetchWindowed(0, len, 256 * kKiB, 8);
            gets_after_first = tf.store.stats().gets;
            co_await p.fetchWindowed(0, len, 256 * kKiB, 8);
        }
    };
    tf.fx.sim.spawn(T::run(tf, pipe, len, gets_after_first));
    tf.fx.sim.run();
    EXPECT_EQ(gets_after_first, 8);
    // The second pass was served entirely above the remote tier.
    EXPECT_EQ(tf.store.stats().gets, gets_after_first);
    EXPECT_EQ(pipe.stats().tiers[0].hits, 8);
    // And the chain still moved every byte of both passes.
    EXPECT_EQ(pipe.stats().bytesFetched, 2 * len);
}

TEST(Uffd, FaultLatencyAccountsTrapAndWake)
{
    // With an instant monitor, the fault round trip still costs the
    // trap, monitor wake, and target wake.
    Fixture fx;
    auto mem_file = fx.fs.createFile("m", 64 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 64);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);
    struct InstantMonitor {
        static Task<void>
        run(GuestMemory &gm, UserFaultFd &uffd)
        {
            FaultEvent ev = co_await uffd.nextFault();
            gm.installRange(ev.page, ev.runPages);
            ev.done->openGate();
        }
    };
    struct T {
        static Task<void>
        run(Simulation &sim, GuestMemory &gm, Duration &out)
        {
            Time t0 = sim.now();
            co_await gm.touchRun(0, 1);
            out = sim.now() - t0;
        }
    };
    Duration took = 0;
    fx.sim.spawn(InstantMonitor::run(gm, uffd));
    fx.sim.spawn(T::run(fx.sim, gm, took));
    fx.sim.run();
    const auto &p = uffd.params();
    // + 100 ns: the re-scan touches the freshly installed page.
    EXPECT_EQ(took, p.faultTrap + p.monitorWake + p.wakeTarget + 100);
}

/** Instant monitor serving a fixed number of single-page faults. */
Task<void>
instantMonitor(GuestMemory &gm, UserFaultFd &uffd, int expected_faults)
{
    for (int i = 0; i < expected_faults; ++i) {
        FaultEvent ev = co_await uffd.nextFault();
        gm.installRange(ev.page, ev.runPages);
        ev.done->openGate();
    }
}

Task<void>
touchOne(Simulation &sim, GuestMemory &gm, std::int64_t page,
         Duration start_at, Duration &took)
{
    co_await sim.delay(start_at);
    Time t0 = sim.now();
    co_await gm.touchRun(page, 1);
    took = sim.now() - t0;
}

TEST(Uffd, SameInstantBurstCoalescesTrapsLatencyUnchanged)
{
    // Five guest threads fault at the same instant. The leader's trap
    // completion delivers the whole burst, so the kernel pays one trap
    // event instead of five — but every fault's simulated latency must
    // be exactly what five independent traps would have produced:
    // same maturity instant, same FIFO channel order, same serialized
    // monitor wakes (this is the Fig. 7 breakdown invariant).
    constexpr int kFaults = 5;
    Fixture fx;
    auto mem_file = fx.fs.createFile("m", 64 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 64);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    fx.sim.spawn(instantMonitor(gm, uffd, kFaults));
    Duration took[kFaults] = {};
    for (int i = 0; i < kFaults; ++i)
        fx.sim.spawn(touchOne(fx.sim, gm, 8 * i, 0, took[i]));
    fx.sim.run();

    const auto &p = uffd.params();
    for (int i = 0; i < kFaults; ++i) {
        // Fault i is served after i+1 serialized monitor wakes; the
        // trailing 100 ns is the re-scan of the installed page.
        EXPECT_EQ(took[i], p.faultTrap + (i + 1) * p.monitorWake +
                               p.wakeTarget + 100)
            << "fault " << i;
    }
    EXPECT_EQ(uffd.stats().faultsDelivered, kFaults);
    EXPECT_EQ(uffd.stats().trapBatches, 1);
    EXPECT_EQ(uffd.stats().faultsCoalesced, kFaults - 1);
}

TEST(Uffd, StaggeredBurstMaturesFollowersOnTime)
{
    // A follower fault raised while the leader's trap is in flight but
    // maturing later must not be delivered early: the dispatcher wakes
    // at the follower's own maturity instant (raise + faultTrap), so
    // its latency matches an independent trap to the nanosecond.
    Fixture fx;
    auto mem_file = fx.fs.createFile("m", 64 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 64);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    const Duration stagger = usec(10); // < faultTrap: overlaps leader
    fx.sim.spawn(instantMonitor(gm, uffd, 2));
    Duration tookA = 0, tookB = 0;
    fx.sim.spawn(touchOne(fx.sim, gm, 0, 0, tookA));
    fx.sim.spawn(touchOne(fx.sim, gm, 8, stagger, tookB));
    fx.sim.run();

    const auto &p = uffd.params();
    ASSERT_LT(stagger, p.faultTrap);
    EXPECT_EQ(tookA, p.faultTrap + p.monitorWake + p.wakeTarget + 100);
    // B matures at stagger + faultTrap (dispatcher wake, not early
    // delivery with A), then waits for the monitor to finish A: the
    // monitor frees up at faultTrap + monitorWake, serves B for
    // another monitorWake, and B's own clock started at stagger.
    EXPECT_EQ(tookB, p.faultTrap + 2 * p.monitorWake + p.wakeTarget +
                         100 - stagger);
    EXPECT_EQ(uffd.stats().trapBatches, 2);
    EXPECT_EQ(uffd.stats().faultsCoalesced, 1);
}

} // namespace
} // namespace vhive::mem
