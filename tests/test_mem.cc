/**
 * @file
 * Tests for guest memory backing modes and the userfaultfd model,
 * including a miniature record-style monitor loop.
 */

#include <gtest/gtest.h>

#include "host/cpu_pool.hh"
#include "mem/guest_memory.hh"
#include "mem/uffd.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "storage/file_store.hh"
#include "util/units.hh"

namespace vhive::mem {
namespace {

using sim::Simulation;
using sim::Task;

struct Fixture {
    Simulation sim;
    storage::DiskDevice ssd{sim, storage::DiskParams::ssd()};
    storage::FileStore fs{sim, ssd};
};

TEST(CpuPool, SerializesBeyondCoreCount)
{
    Simulation sim;
    host::CpuPool pool(sim, 2);
    sim::Latch done(sim, 4);
    struct Job {
        static Task<void>
        run(host::CpuPool &pool, sim::Latch *done)
        {
            co_await pool.exec(msec(10));
            done->arrive();
        }
    };
    for (int i = 0; i < 4; ++i)
        sim.spawn(Job::run(pool, &done));
    Time end = sim.run();
    EXPECT_EQ(end, msec(20)); // two waves on two cores
    EXPECT_EQ(pool.idleCores(), 2);
}

TEST(GuestMemory, AnonymousTouchMaterializesPages)
{
    Fixture fx;
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 64);
            co_await gm.touchRun(100, 4);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 68);
    EXPECT_TRUE(gm.isPresent(0));
    EXPECT_TRUE(gm.isPresent(103));
    EXPECT_FALSE(gm.isPresent(104));
    EXPECT_EQ(gm.stats().majorFaults, 2);
}

TEST(GuestMemory, RepeatTouchIsMinor)
{
    Fixture fx;
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 10);
            co_await gm.touchRun(0, 10);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.stats().majorFaults, 1);
    EXPECT_EQ(gm.stats().minorFaults, 10);
    EXPECT_EQ(gm.presentPages(), 10);
}

TEST(GuestMemory, LazyFileFaultsReadFromDisk)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backLazyFile(mem_file);
    Duration took = 0;
    struct T {
        static Task<void>
        run(Fixture &fx, GuestMemory &gm, Duration &out)
        {
            Time t0 = fx.sim.now();
            co_await gm.touchRun(16, 3);
            out = fx.sim.now() - t0;
        }
    };
    fx.sim.spawn(T::run(fx, gm, took));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 3);
    EXPECT_GT(fx.ssd.stats().bytesRead, 0);
    // Fault path: serialized miss stage + device access, order 100s us.
    EXPECT_GT(took, usec(150));
    EXPECT_LT(took, msec(2));
}

TEST(GuestMemory, LazyFileMixedRunSplitsFaults)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backLazyFile(mem_file);
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(10, 4);  // pages 10..13 resident
            co_await gm.touchRun(8, 8);   // 8,9 missing; 10..13 hit;
                                          // 14,15 missing
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 8);
    EXPECT_EQ(gm.stats().majorFaults, 3);
    EXPECT_EQ(gm.stats().minorFaults, 4);
}

TEST(GuestMemory, BackLazyFileResetsPresence)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    gm.backAnonymous();
    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(0, 100);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();
    EXPECT_EQ(gm.presentPages(), 100);
    gm.backLazyFile(mem_file);
    EXPECT_EQ(gm.presentPages(), 0);
}

/** A minimal record-mode monitor: serve each fault from the file. */
Task<void>
miniMonitor(Fixture &fx, GuestMemory &gm, UserFaultFd &uffd,
            storage::FileId mem_file, int expected_faults,
            std::vector<std::int64_t> *trace)
{
    for (int i = 0; i < expected_faults; ++i) {
        FaultEvent ev = co_await uffd.nextFault();
        trace->push_back(ev.page);
        co_await fx.fs.readBuffered(mem_file, bytesForPages(ev.page),
                                    bytesForPages(ev.runPages));
        co_await uffd.copyCost(ev.runPages, 0);
        gm.installRange(ev.page, ev.runPages);
        ev.done->openGate();
    }
}

TEST(Uffd, MonitorServesFaults)
{
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 1024 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 1024);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    std::vector<std::int64_t> trace;
    fx.sim.spawn(miniMonitor(fx, gm, uffd, mem_file, 3, &trace));

    struct T {
        static Task<void>
        run(GuestMemory &gm)
        {
            co_await gm.touchRun(42, 2);
            co_await gm.touchRun(100, 3);
            co_await gm.touchRun(7, 1);
        }
    };
    fx.sim.spawn(T::run(gm));
    fx.sim.run();

    EXPECT_EQ(gm.presentPages(), 6);
    EXPECT_EQ((trace), (std::vector<std::int64_t>{42, 100, 7}));
    EXPECT_EQ(uffd.stats().faultsDelivered, 3);
    EXPECT_EQ(uffd.stats().pagesInstalled, 6);
    EXPECT_EQ(gm.stats().pagesInstalledByMonitor, 6);
}

TEST(Uffd, PartialInstallRefaults)
{
    // Monitor that installs only the first page of each request: the
    // faulting run must re-fault for the remainder and still complete.
    Fixture fx;
    auto mem_file = fx.fs.createFile("snap.mem", 256 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 256);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);

    struct StingyMonitor {
        static Task<void>
        run(Fixture &fx, GuestMemory &gm, UserFaultFd &uffd,
            storage::FileId f, int faults)
        {
            for (int i = 0; i < faults; ++i) {
                FaultEvent ev = co_await uffd.nextFault();
                co_await fx.fs.readBuffered(f, bytesForPages(ev.page),
                                            kPageSize);
                co_await uffd.copyCost(1, 0);
                gm.installRange(ev.page, 1);
                ev.done->openGate();
            }
        }
    };
    struct T {
        static Task<void>
        run(GuestMemory &gm, bool &done)
        {
            co_await gm.touchRun(10, 4);
            done = true;
        }
    };
    bool done = false;
    fx.sim.spawn(StingyMonitor::run(fx, gm, uffd, mem_file, 4));
    fx.sim.spawn(T::run(gm, done));
    fx.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(gm.presentPages(), 4);
    EXPECT_EQ(uffd.stats().faultsDelivered, 4);
}

TEST(Uffd, CopyCostBatches)
{
    Simulation sim;
    UserFaultFd uffd(sim);
    struct T {
        static Task<void>
        run(Simulation &sim, UserFaultFd &uffd, Duration &batched,
            Duration &singles)
        {
            Time t0 = sim.now();
            co_await uffd.copyCost(2048, 0); // one big call
            batched = sim.now() - t0;
            t0 = sim.now();
            co_await uffd.copyCost(2048, 1); // page-at-a-time
            singles = sim.now() - t0;
        }
    };
    Duration batched = 0, singles = 0;
    sim.spawn(T::run(sim, uffd, batched, singles));
    sim.run();
    EXPECT_LT(batched, singles);
    EXPECT_EQ(uffd.stats().copyCalls, 1 + 2048);
    EXPECT_EQ(uffd.stats().pagesInstalled, 2 * 2048);
}

TEST(Uffd, FaultLatencyAccountsTrapAndWake)
{
    // With an instant monitor, the fault round trip still costs the
    // trap, monitor wake, and target wake.
    Fixture fx;
    auto mem_file = fx.fs.createFile("m", 64 * kPageSize);
    GuestMemory gm(fx.sim, fx.fs, 64);
    UserFaultFd uffd(fx.sim);
    gm.backUffd(mem_file, &uffd);
    struct InstantMonitor {
        static Task<void>
        run(GuestMemory &gm, UserFaultFd &uffd)
        {
            FaultEvent ev = co_await uffd.nextFault();
            gm.installRange(ev.page, ev.runPages);
            ev.done->openGate();
        }
    };
    struct T {
        static Task<void>
        run(Simulation &sim, GuestMemory &gm, Duration &out)
        {
            Time t0 = sim.now();
            co_await gm.touchRun(0, 1);
            out = sim.now() - t0;
        }
    };
    Duration took = 0;
    fx.sim.spawn(InstantMonitor::run(gm, uffd));
    fx.sim.spawn(T::run(fx.sim, gm, took));
    fx.sim.run();
    const auto &p = uffd.params();
    // + 100 ns: the re-scan touches the freshly installed page.
    EXPECT_EQ(took, p.faultTrap + p.monitorWake + p.wakeTarget + 100);
}

} // namespace
} // namespace vhive::mem
