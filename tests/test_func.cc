/**
 * @file
 * Tests for the FunctionBench profiles and trace generation: the
 * catalog matches Table 1, traces are deterministic, working-set
 * properties (contiguity, reuse, drift) land where the paper's
 * characterization figures put them.
 */

#include <gtest/gtest.h>

#include <set>

#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "util/units.hh"

namespace vhive::func {
namespace {

constexpr std::uint64_t kSeed = 0x5eed;

TEST(Profiles, CatalogMatchesTable1)
{
    const auto &fb = functionBench();
    ASSERT_EQ(fb.size(), 10u);
    const char *expected[] = {
        "helloworld", "chameleon", "pyaes", "image_rotate",
        "json_serdes", "lr_serving", "cnn_serving", "rnn_serving",
        "lr_training", "video_processing",
    };
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(fb[i].name, expected[i]);
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(profileByName("pyaes").name, "pyaes");
    EXPECT_GT(profileByName("cnn_serving").warmExec, msec(100));
}

TEST(Profiles, FootprintsInPaperRanges)
{
    // Fig. 4: boot footprints 148-256 MB; working sets 8-99 MB.
    for (const auto &p : functionBench()) {
        EXPECT_GE(p.bootFootprint, 148 * kMiB) << p.name;
        EXPECT_LE(p.bootFootprint, 256 * kMiB) << p.name;
        EXPECT_GE(p.workingSet, 8 * kMiB) << p.name;
        EXPECT_LE(p.workingSet, 99 * kMiB) << p.name;
        EXPECT_LT(p.workingSet, p.bootFootprint) << p.name;
    }
}

TEST(Profiles, DerivedPageCounts)
{
    const auto &p = profileByName("helloworld");
    EXPECT_EQ(p.wsPages(), pagesForBytes(p.workingSet));
    EXPECT_EQ(p.stablePages() + p.uniquePages(), p.wsPages());
    EXPECT_GT(p.stablePages(), 0);
}

TEST(TraceGen, Deterministic)
{
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("chameleon");
    auto a = gen.invocation(p, 3);
    auto b = gen.invocation(p, 3);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].page, b.runs[i].page);
        EXPECT_EQ(a.runs[i].pages, b.runs[i].pages);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    const auto &p = profileByName("chameleon");
    auto a = TraceGenerator(1).invocation(p, 0);
    auto b = TraceGenerator(2).invocation(p, 0);
    auto ra = comparePageSets(a, b);
    EXPECT_GT(ra.onlyFirst + ra.onlySecond, 0);
}

TEST(TraceGen, PageCountsMatchProfile)
{
    TraceGenerator gen(kSeed);
    for (const auto &p : functionBench()) {
        auto t = gen.invocation(p, 1);
        EXPECT_EQ(t.stablePageCount + t.uniquePageCount, p.wsPages())
            << p.name;
        auto pages = t.touchedPages();
        // No page is touched by two different runs.
        EXPECT_EQ(static_cast<std::int64_t>(pages.size()),
                  t.totalPages())
            << p.name;
    }
}

TEST(TraceGen, NoOverlapWithinInvocation)
{
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("lr_training");
    auto t = gen.invocation(p, 7);
    std::set<std::int64_t> seen;
    for (const auto &r : t.runs) {
        for (std::int64_t pg = r.page; pg < r.page + r.pages; ++pg) {
            EXPECT_TRUE(seen.insert(pg).second)
                << "page " << pg << " appears twice";
        }
    }
}

TEST(TraceGen, PagesWithinVmMemory)
{
    TraceGenerator gen(kSeed);
    for (const auto &p : functionBench()) {
        auto t = gen.invocation(p, 2);
        std::int64_t vm_pages = pagesForBytes(p.vmMemory);
        for (const auto &r : t.runs) {
            EXPECT_GE(r.page, 0) << p.name;
            EXPECT_LE(r.page + r.pages, vm_pages) << p.name;
        }
    }
}

TEST(TraceGen, ContiguityNearProfileMean)
{
    // Fig. 3: average contiguous-run length 2-3 pages, ~5 for
    // lr_training.
    TraceGenerator gen(kSeed);
    for (const auto &p : functionBench()) {
        auto t = gen.invocation(p, 0);
        double contig = averageContiguity(t.touchedPages());
        EXPECT_GT(contig, 0.65 * p.contiguityMean) << p.name;
        EXPECT_LT(contig, 1.6 * p.contiguityMean) << p.name;
    }
}

TEST(TraceGen, StablePagesRecurAcrossInvocations)
{
    // Fig. 5: for most functions >97% of pages recur across
    // invocations with different inputs.
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("helloworld");
    auto a = gen.invocation(p, 0);
    auto b = gen.invocation(p, 1);
    auto r = comparePageSets(a, b);
    EXPECT_GT(r.sameFrac(), 0.95);
}

TEST(TraceGen, LargeInputFunctionsReuseLess)
{
    TraceGenerator gen(kSeed);
    auto small = comparePageSets(
        gen.invocation(profileByName("pyaes"), 0),
        gen.invocation(profileByName("pyaes"), 1));
    auto large = comparePageSets(
        gen.invocation(profileByName("lr_training"), 0),
        gen.invocation(profileByName("lr_training"), 1));
    EXPECT_LT(large.sameFrac(), small.sameFrac());
    // Still above the paper's 76% floor.
    EXPECT_GT(large.sameFrac(), 0.60);
}

TEST(TraceGen, SameInputIdenticalPageSet)
{
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("image_rotate");
    auto r = comparePageSets(gen.invocation(p, 5),
                             gen.invocation(p, 5));
    EXPECT_EQ(r.onlyFirst, 0);
    EXPECT_EQ(r.onlySecond, 0);
}

TEST(TraceGen, DriftShiftsStableSet)
{
    // video_processing: different input shapes relocate a chunk of the
    // otherwise-stable pool (Sec. 6.3).
    TraceGenerator gen(kSeed);
    const auto &video = profileByName("video_processing");
    auto a = gen.invocation(video, 0);
    auto b = gen.invocation(video, 1);
    auto r = comparePageSets(a, b);
    // Reuse is much lower than the drift-free stable fraction.
    EXPECT_LT(r.sameFrac(), 1.0 - video.stableDriftFrac * 0.5);
    EXPECT_GT(r.sameFrac(), 0.30);
}

TEST(TraceGen, InfraRunsComeFirstAndAreStable)
{
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("lr_serving");
    auto t = gen.invocation(p, 0);
    bool seen_processing = false;
    std::int64_t infra_pages = 0;
    for (const auto &r : t.runs) {
        if (r.phase == Phase::ConnectionRestore) {
            EXPECT_FALSE(seen_processing)
                << "conn-restore run after processing began";
            EXPECT_TRUE(r.stable);
            infra_pages += r.pages;
        } else {
            seen_processing = true;
        }
    }
    EXPECT_GE(infra_pages, p.infraPages() - 8);
    EXPECT_LE(infra_pages, p.infraPages() + 8);
}

TEST(TraceGen, ComputeSumsToWarmTime)
{
    TraceGenerator gen(kSeed);
    for (const auto &p : functionBench()) {
        auto t = gen.invocation(p, 0);
        Duration total = 0;
        for (const auto &r : t.runs)
            total += r.computeAfter;
        EXPECT_EQ(total, p.warmExec) << p.name;
    }
}

TEST(TraceGen, InfraRunsRecurAcrossInputs)
{
    // The gRPC/kernel infra pages must be identical across inputs:
    // that is why REAP shrinks connection restoration ~45x.
    TraceGenerator gen(kSeed);
    const auto &p = profileByName("video_processing");
    auto a = gen.invocation(p, 0);
    auto b = gen.invocation(p, 1);
    std::set<std::int64_t> ia, ib;
    for (const auto &r : a.runs)
        if (r.phase == Phase::ConnectionRestore)
            for (std::int64_t pg = r.page; pg < r.page + r.pages; ++pg)
                ia.insert(pg);
    for (const auto &r : b.runs)
        if (r.phase == Phase::ConnectionRestore)
            for (std::int64_t pg = r.page; pg < r.page + r.pages; ++pg)
                ib.insert(pg);
    EXPECT_EQ(ia, ib);
}

TEST(TraceGen, BootCoversStablePoolAndFootprint)
{
    TraceGenerator gen(kSeed);
    for (const auto &p : functionBench()) {
        auto boot = gen.boot(p);
        std::int64_t boot_pages = 0;
        for (const auto &r : boot.runs)
            boot_pages += r.pages;
        std::int64_t target =
            std::min(pagesForBytes(p.bootFootprint),
                     pagesForBytes(p.vmMemory));
        EXPECT_NEAR(static_cast<double>(boot_pages),
                    static_cast<double>(target),
                    static_cast<double>(target) * 0.02)
            << p.name;

        // Boot must cover every stable page of a later invocation
        // (so the snapshot contains a warm working set).
        auto inv = gen.invocation(p, 4);
        std::set<std::int64_t> booted;
        for (const auto &r : boot.runs)
            for (std::int64_t pg = r.page; pg < r.page + r.pages; ++pg)
                booted.insert(pg);
        std::int64_t missing_stable = 0;
        for (const auto &r : inv.runs) {
            if (!r.stable)
                continue;
            for (std::int64_t pg = r.page; pg < r.page + r.pages; ++pg)
                if (!booted.count(pg))
                    ++missing_stable;
        }
        if (p.stableDriftFrac == 0.0) {
            EXPECT_EQ(missing_stable, 0) << p.name;
        }
    }
}

TEST(TraceGen, AverageContiguityHelper)
{
    EXPECT_DOUBLE_EQ(averageContiguity({}), 0.0);
    EXPECT_DOUBLE_EQ(averageContiguity({5}), 1.0);
    EXPECT_DOUBLE_EQ(averageContiguity({1, 2, 3}), 3.0);
    EXPECT_DOUBLE_EQ(averageContiguity({1, 2, 4, 5}), 2.0);
    EXPECT_DOUBLE_EQ(averageContiguity({1, 3, 5}), 1.0);
}

TEST(TraceGen, ReuseStatsHelper)
{
    InvocationTrace a, b;
    a.runs = {{0, 4, 0, Phase::Processing, true}};
    b.runs = {{2, 4, 0, Phase::Processing, true}};
    auto r = comparePageSets(a, b);
    EXPECT_EQ(r.samePages, 2);
    EXPECT_EQ(r.onlyFirst, 2);
    EXPECT_EQ(r.onlySecond, 2);
    EXPECT_DOUBLE_EQ(r.sameFrac(), 0.5);
}

} // namespace
} // namespace vhive::func
