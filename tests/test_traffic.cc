/**
 * @file
 * Property tests for the planet-scale traffic model
 * (cluster/traffic.hh): deterministic construction per seed, seed
 * sensitivity, burst membership semantics, thinning-sampler accuracy
 * against the analytic rate integral, and the open-loop
 * TrafficWorkload driver on a small cluster.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/traffic.hh"
#include "sim/simulation.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace vhive::cluster {
namespace {

TrafficConfig
smallConfig()
{
    TrafficConfig cfg;
    cfg.functions = 24;
    cfg.tenants = 4;
    cfg.zipfExponent = 1.1;
    cfg.aggregateRps = 10.0;
    cfg.horizon = sec(300);
    return cfg;
}

TEST(TrafficEngine, ConstructionIsDeterministicPerSeed)
{
    TrafficConfig cfg = smallConfig();
    cfg.diurnal.amplitude = 0.4;
    BurstSpec storm;
    storm.kind = BurstKind::DeployStorm;
    storm.fraction = 0.3;
    cfg.bursts.push_back(storm);

    TrafficEngine a(cfg);
    TrafficEngine b(cfg);
    for (int i = 0; i < cfg.functions; ++i) {
        EXPECT_EQ(a.profile(i).name, b.profile(i).name);
        EXPECT_EQ(a.tenantOf(i), b.tenantOf(i));
        EXPECT_DOUBLE_EQ(a.baseRate(i), b.baseRate(i));
        EXPECT_EQ(a.burstAffects(0, i), b.burstAffects(0, i));
        EXPECT_DOUBLE_EQ(a.rateAt(i, sec(42)), b.rateAt(i, sec(42)));
    }

    // And the arrival streams themselves are reproducible.
    Rng r1(cfg.seed, "traffic-arrivals/x");
    Rng r2(cfg.seed, "traffic-arrivals/x");
    Duration t1 = 0, t2 = 0;
    for (int k = 0; k < 50; ++k) {
        t1 = a.nextArrival(0, t1, r1);
        t2 = b.nextArrival(0, t2, r2);
        EXPECT_EQ(t1, t2);
    }
}

TEST(TrafficEngine, SeedChangesTenantsAndBurstMembership)
{
    TrafficConfig cfg = smallConfig();
    BurstSpec storm;
    storm.kind = BurstKind::DeployStorm;
    storm.fraction = 0.5;
    cfg.bursts.push_back(storm);

    TrafficConfig other = cfg;
    other.seed = cfg.seed + 1;
    TrafficEngine a(cfg);
    TrafficEngine b(other);

    int tenant_diffs = 0, member_diffs = 0;
    for (int i = 0; i < cfg.functions; ++i) {
        tenant_diffs += a.tenantOf(i) != b.tenantOf(i);
        member_diffs += a.burstAffects(0, i) != b.burstAffects(0, i);
    }
    EXPECT_GT(tenant_diffs, 0);
    EXPECT_GT(member_diffs, 0);
}

TEST(TrafficEngine, ZipfRatesAreNormalizedAndSkewed)
{
    TrafficConfig cfg = smallConfig();
    TrafficEngine eng(cfg);
    double sum = 0;
    for (int i = 0; i < cfg.functions; ++i) {
        sum += eng.baseRate(i);
        if (i > 0) {
            EXPECT_LT(eng.baseRate(i), eng.baseRate(i - 1));
        }
    }
    EXPECT_NEAR(sum, cfg.aggregateRps, 1e-9);
    // Heavy tail: the hottest function dominates the coldest.
    EXPECT_GT(eng.baseRate(0) / eng.baseRate(cfg.functions - 1), 10.0);
}

TEST(TrafficEngine, BurstSemantics)
{
    TrafficConfig cfg = smallConfig();
    cfg.diurnal.amplitude = 0; // isolate the burst factor
    BurstSpec crowd;
    crowd.kind = BurstKind::FlashCrowd;
    crowd.tenant = 2;
    crowd.start = sec(100);
    crowd.duration = sec(30);
    crowd.multiplier = 12.0;
    cfg.bursts.push_back(crowd);
    TrafficEngine eng(cfg);

    for (int i = 0; i < cfg.functions; ++i) {
        EXPECT_EQ(eng.burstAffects(0, i), eng.tenantOf(i) == 2);
        double before = eng.rateAt(i, sec(99));
        double during = eng.rateAt(i, sec(110));
        double after = eng.rateAt(i, sec(131));
        if (eng.tenantOf(i) == 2) {
            EXPECT_NEAR(during / before, 12.0, 1e-9);
        } else {
            EXPECT_DOUBLE_EQ(during, before);
        }
        EXPECT_DOUBLE_EQ(after, before);
        // The thinning envelope really bounds the modulated rate.
        EXPECT_LE(during, eng.peakRate(i) + 1e-12);
    }
}

TEST(TrafficEngine, DiurnalModulatesAroundBaseRate)
{
    TrafficConfig cfg = smallConfig();
    cfg.diurnal.amplitude = 0.6;
    cfg.diurnal.period = sec(200);
    TrafficEngine eng(cfg);

    // Peak at a quarter period, trough at three quarters.
    EXPECT_NEAR(eng.rateAt(3, sec(50)), eng.baseRate(3) * 1.6, 1e-9);
    EXPECT_NEAR(eng.rateAt(3, sec(150)), eng.baseRate(3) * 0.4, 1e-9);
    // Mean over one full period is the base rate.
    double mean = eng.expectedArrivals(3, 0, sec(200)) / 200.0;
    EXPECT_NEAR(mean, eng.baseRate(3), eng.baseRate(3) * 0.01);
}

TEST(TrafficEngine, ThinningSamplerHitsTargetRate)
{
    // The sampled arrival count over the horizon matches the analytic
    // integral of the rate function within Poisson noise (~4 sigma).
    TrafficConfig cfg = smallConfig();
    cfg.aggregateRps = 50.0;
    cfg.diurnal.amplitude = 0.5;
    cfg.diurnal.period = sec(120);
    BurstSpec crowd;
    crowd.kind = BurstKind::FlashCrowd;
    crowd.tenant = 1;
    crowd.start = sec(60);
    crowd.duration = sec(40);
    crowd.multiplier = 6.0;
    cfg.bursts.push_back(crowd);
    TrafficEngine eng(cfg);

    for (int fn : {0, 1, 2, 5}) {
        double expect = eng.expectedArrivals(fn, 0, cfg.horizon);
        ASSERT_GT(expect, 30.0) << "fn=" << fn
                                << " too sparse to test";
        Rng rng(cfg.seed, "thinning-test/" + std::to_string(fn));
        std::int64_t n = 0;
        Duration t = 0;
        while (true) {
            t = eng.nextArrival(fn, t, rng);
            if (t >= cfg.horizon)
                break;
            ++n;
        }
        double sigma = std::sqrt(expect);
        EXPECT_NEAR(static_cast<double>(n), expect, 4.0 * sigma)
            << "fn=" << fn;
    }
}

TEST(TrafficEngine, PeriodicClassFiresOnTimerGrid)
{
    TrafficConfig cfg = smallConfig();
    cfg.periodicFraction = 0.5;
    cfg.periodicMinPeriod = sec(30);
    cfg.periodicMaxPeriod = sec(120);
    cfg.horizon = sec(600);
    // Modulation a timer must ignore.
    cfg.diurnal.amplitude = 0.5;
    cfg.diurnal.period = sec(120);
    TrafficEngine a(cfg), b(cfg);

    int periodic = 0;
    for (int fn = 0; fn < cfg.functions; ++fn) {
        ASSERT_EQ(a.isPeriodic(fn), b.isPeriodic(fn)) << fn;
        ASSERT_EQ(a.periodOf(fn), b.periodOf(fn)) << fn;
        if (!a.isPeriodic(fn))
            continue;
        ++periodic;
        Duration period = a.periodOf(fn);
        EXPECT_GE(period, cfg.periodicMinPeriod);
        EXPECT_LE(period, cfg.periodicMaxPeriod);
        // A timer's rate is flat: no diurnal or burst modulation.
        EXPECT_EQ(a.rateAt(fn, 0), a.rateAt(fn, sec(60)));

        // Arrivals walk the jittered grid: every gap within one
        // period +/- the jitter band, and the stream is identical
        // across engines fed the same Rng stream.
        Rng ra(cfg.seed, "periodic-test"), rb(cfg.seed,
                                              "periodic-test");
        Duration ta = 0, tb = 0;
        auto slack = static_cast<Duration>(
            cfg.periodicJitter * static_cast<double>(period));
        for (int i = 0; i < 12; ++i) {
            Duration prev = ta;
            ta = a.nextArrival(fn, ta, ra);
            tb = b.nextArrival(fn, tb, rb);
            ASSERT_EQ(ta, tb) << "fn=" << fn << " i=" << i;
            ASSERT_GT(ta, prev);
            if (i > 0) {
                EXPECT_GE(ta - prev, period - slack);
                EXPECT_LE(ta - prev, period + slack);
            }
        }
        // Count over the horizon matches the timer rate.
        double expect = a.expectedArrivals(fn, 0, cfg.horizon);
        EXPECT_NEAR(expect,
                    static_cast<double>(cfg.horizon) /
                        static_cast<double>(period),
                    1.0);
    }
    // periodicFraction=0.5 over 24 functions: both classes present.
    EXPECT_GT(periodic, 4);
    EXPECT_LT(periodic, 20);
}

TEST(TrafficWorkload, OpenLoopDrivesAndDrains)
{
    sim::Simulation sim;
    ClusterConfig ccfg;
    ccfg.workers = 2;
    ccfg.coldStartMode = core::ColdStartMode::Reap;
    Cluster cluster(sim, ccfg);

    TrafficConfig tcfg = smallConfig();
    tcfg.functions = 6;
    tcfg.aggregateRps = 1.0;
    tcfg.horizon = sec(120);
    TrafficWorkload wl(sim, cluster, tcfg);

    TrafficWorkloadResult r;
    sim.spawn([](TrafficWorkload &wl,
                 TrafficWorkloadResult &out) -> sim::Task<void> {
        out = co_await wl.run();
    }(wl, r));
    sim.run();

    EXPECT_GT(r.invocations, 0);
    // Open loop still completes every fired invocation.
    EXPECT_EQ(r.coldStarts + r.warmHits + r.failedInvocations,
              r.invocations);
    EXPECT_EQ(r.e2eLatencyMs.count(), r.invocations);
}

} // namespace
} // namespace vhive::cluster
