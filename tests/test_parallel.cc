/**
 * @file
 * Tests for the parallel DES kernel (sim/parallel.hh) and the
 * multi-core fleet harness (cluster/parallel_fleet.hh): cross-port
 * latency/ordering semantics, and — the headline contract — bit
 * identity of simulated results across 1/2/4/8 sim threads.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cluster/parallel_fleet.hh"
#include "sim/parallel.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::sim {
namespace {

using EventLog = std::vector<std::tuple<int, Time, int>>;

Task<void>
pingSender(Simulation &sim, CrossPort<int> &out, int count,
           Duration gap)
{
    for (int i = 0; i < count; ++i) {
        co_await sim.delay(gap);
        out.send(i);
    }
}

Task<void>
pingReceiver(Simulation &sim, CrossPort<int> &in, int count,
             EventLog &log, int domain)
{
    for (int i = 0; i < count; ++i) {
        int v = co_await in.recv();
        log.emplace_back(domain, sim.now(), v);
    }
}

TEST(CrossPort, DeliversAfterLatencyInOrder)
{
    ParallelKernel k(2, 1);
    CrossPort<int> port(k, k.domain(0), k.domain(1), usec(500));
    EventLog log;
    k.sim(0).spawn(pingSender(k.sim(0), port, 3, msec(1)));
    k.sim(1).spawn(pingReceiver(k.sim(1), port, 3, log, 1));
    k.run();

    ASSERT_EQ(log.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(std::get<2>(log[static_cast<size_t>(i)]), i);
        // Sent at (i+1) ms, delivered one port latency later.
        EXPECT_EQ(std::get<1>(log[static_cast<size_t>(i)]),
                  msec(i + 1) + usec(500));
    }
}

TEST(CrossPort, EarlyReceiverParksUntilDeliveryInstant)
{
    ParallelKernel k(2, 1);
    CrossPort<int> port(k, k.domain(0), k.domain(1), msec(2));
    EventLog log;
    // Receiver is waiting long before the sender fires.
    k.sim(1).spawn(pingReceiver(k.sim(1), port, 1, log, 1));
    k.sim(0).spawn(pingSender(k.sim(0), port, 1, msec(5)));
    k.run();

    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(std::get<1>(log[0]), msec(7)); // send at 5ms + 2ms hop
}

/**
 * A ring of domains passing an incrementing token: every hop crosses
 * a domain boundary, so window synchronization is exercised heavily.
 */
Task<void>
ringNode(Simulation &sim, CrossPort<int> &in, CrossPort<int> &out,
         int hops, EventLog &log, int domain)
{
    while (true) {
        int v = co_await in.recv();
        log.emplace_back(domain, sim.now(), v);
        if (v >= hops)
            co_return;
        co_await sim.delay(usec(50 + 13 * (v % 7)));
        out.send(v + 1);
    }
}

EventLog
runTokenRing(int domains, int threads, int hops)
{
    ParallelKernel k(domains, threads);
    std::vector<std::unique_ptr<CrossPort<int>>> ports;
    for (int d = 0; d < domains; ++d) {
        ports.push_back(std::make_unique<CrossPort<int>>(
            k, k.domain(d), k.domain((d + 1) % domains), usec(200)));
    }
    EventLog log;
    for (int d = 0; d < domains; ++d) {
        int prev = (d + domains - 1) % domains;
        k.sim(d).spawn(ringNode(k.sim(d), *ports[static_cast<size_t>(prev)],
                                *ports[static_cast<size_t>(d)], hops,
                                log, d));
    }
    // Kick the token into domain 0 (pre-run send from the last
    // domain's port, at time 0).
    ports.back()->send(0);
    k.run();
    return log;
}

TEST(ParallelKernel, TokenRingIsIdenticalAcrossThreadCounts)
{
    // NOTE: the log is appended by different domains; with >1 thread
    // appends could race, so the ring is serial by construction (one
    // token). That makes the log a total order and keeps the test
    // race-free under TSan.
    EventLog ref = runTokenRing(4, 1, 64);
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(std::get<2>(ref.back()), 64);
    for (int threads : {2, 4, 8}) {
        EventLog log = runTokenRing(4, threads, 64);
        EXPECT_EQ(log, ref) << "threads=" << threads;
    }
}

/**
 * Many independent workers with private timers plus cross-traffic to
 * a hub domain; checks total event counts and the hub's observed
 * message order are thread-count independent.
 */
Task<void>
chatterWorker(Simulation &sim, CrossPort<int> &out, int id, int msgs)
{
    for (int i = 0; i < msgs; ++i) {
        // Do some purely local work (events that should run in
        // parallel windows).
        for (int j = 0; j < 5; ++j)
            co_await sim.delay(usec(30 + ((id * 7 + i * 3 + j) % 11)));
        out.send(id * 1000 + i);
    }
}

Task<void>
chatterHub(Simulation &sim,
           std::vector<std::unique_ptr<CrossPort<int>>> &in, int total,
           EventLog &log)
{
    // Round-robin over per-worker ports: hub consumes exactly the
    // number of messages each worker will send.
    int per = total / static_cast<int>(in.size());
    for (int i = 0; i < per; ++i) {
        for (auto &port : in) {
            int v = co_await port->recv();
            log.emplace_back(0, sim.now(), v);
        }
    }
}

std::pair<EventLog, std::int64_t>
runChatter(int workers, int threads, int msgs)
{
    ParallelKernel k(workers + 1, threads);
    std::vector<std::unique_ptr<CrossPort<int>>> ports;
    for (int w = 0; w < workers; ++w)
        ports.push_back(std::make_unique<CrossPort<int>>(
            k, k.domain(w + 1), k.domain(0), usec(500)));
    EventLog log;
    for (int w = 0; w < workers; ++w)
        k.sim(w + 1).spawn(
            chatterWorker(k.sim(w + 1), *ports[static_cast<size_t>(w)],
                          w, msgs));
    k.sim(0).spawn(chatterHub(k.sim(0), ports, workers * msgs, log));
    k.run();
    return {std::move(log), k.totalEventsProcessed()};
}

TEST(ParallelKernel, ChatterIsIdenticalAcrossThreadCounts)
{
    auto [ref_log, ref_events] = runChatter(6, 1, 20);
    ASSERT_EQ(ref_log.size(), 6u * 20u);
    for (int threads : {2, 4, 8}) {
        auto [log, events] = runChatter(6, threads, 20);
        EXPECT_EQ(log, ref_log) << "threads=" << threads;
        EXPECT_EQ(events, ref_events) << "threads=" << threads;
    }
}

TEST(ParallelKernel, SoloFastPathCoversSingleActiveDomain)
{
    // One domain does heavy local work; the other is quiet until a
    // late message arrives. The kernel should take the solo fast path
    // for most of the run (covered by stats), and the late delivery
    // must still land exactly on time.
    ParallelKernel k(2, 1);
    CrossPort<int> port(k, k.domain(0), k.domain(1), usec(500));
    EventLog log;
    k.sim(0).spawn(pingSender(k.sim(0), port, 1, msec(50)));
    k.sim(1).spawn(pingReceiver(k.sim(1), port, 1, log, 1));
    k.run();

    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(std::get<1>(log[0]), msec(50) + usec(500));
    EXPECT_GT(k.stats().soloWindows, 0);
}

} // namespace
} // namespace vhive::sim

namespace vhive::cluster {
namespace {

ParallelFleetResult
runFleetScenario(int workers, int threads)
{
    ParallelFleetConfig cfg;
    cfg.workers = workers;
    cfg.simThreads = threads;
    cfg.coldStartMode = core::ColdStartMode::Reap;
    cfg.keepAlive = sec(30);
    cfg.routingPolicy = RoutingPolicyKind::LocalityHash;
    cfg.workload.functions = 6;
    cfg.workload.minInterarrival = sec(2);
    cfg.workload.maxInterarrival = sec(60);
    cfg.workload.horizon = sec(120);
    ParallelFleet fleet(cfg);
    return fleet.run();
}

TEST(ParallelFleet, RunsTheAzureMix)
{
    ParallelFleetResult r = runFleetScenario(2, 1);
    EXPECT_GT(r.invocations, 0);
    EXPECT_GT(r.coldStarts, 0);
    EXPECT_EQ(r.invocations, r.coldStarts + r.warmHits);
    EXPECT_EQ(r.e2eLatencyMs.count(), r.invocations);
    EXPECT_GT(r.eventsProcessed, 0);
    EXPECT_GT(r.windows, 0);
    EXPECT_GT(r.messages, 0);
    // Every invocation pays two fabric hops plus real worker time.
    EXPECT_GE(r.e2eLatencyMs.percentile(0), 1.0);
}

TEST(ParallelFleet, BitIdenticalAcrossThreadCounts)
{
    ParallelFleetResult ref = runFleetScenario(3, 1);
    std::uint64_t ref_digest = ref.digest();
    ASSERT_GT(ref.invocations, 0);
    for (int threads : {2, 4, 8}) {
        ParallelFleetResult r = runFleetScenario(3, threads);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
        EXPECT_EQ(r.invocations, ref.invocations);
        EXPECT_EQ(r.coldStarts, ref.coldStarts);
        EXPECT_EQ(r.warmHits, ref.warmHits);
        EXPECT_EQ(r.scaleDowns, ref.scaleDowns);
        EXPECT_EQ(r.eventsProcessed, ref.eventsProcessed);
        EXPECT_EQ(r.windows, ref.windows);
        EXPECT_EQ(r.messages, ref.messages);
        EXPECT_EQ(r.e2eLatencyMs.values(), ref.e2eLatencyMs.values());
        EXPECT_EQ(r.coldE2eMs.values(), ref.coldE2eMs.values());
    }
}

ParallelFleetResult
runSharedScenario(core::ColdStartMode mode, int threads, int shards,
                  bool traffic)
{
    ParallelFleetConfig cfg;
    cfg.workers = 4;
    cfg.simThreads = threads;
    cfg.coldStartMode = mode;
    cfg.sharedSnapshots = true;
    cfg.sharedStoreShards = shards;
    cfg.chunkPlacement = net::ChunkPlacementPolicy::OverlapAware;
    cfg.routingPolicy = RoutingPolicyKind::LocalityHash;
    cfg.keepAlive = sec(30);
    if (traffic) {
        TrafficConfig tc;
        tc.functions = 8;
        tc.tenants = 3;
        tc.aggregateRps = 2.0;
        tc.horizon = sec(120);
        tc.diurnal.amplitude = 0.5;
        tc.diurnal.period = sec(120);
        BurstSpec crowd;
        crowd.kind = BurstKind::FlashCrowd;
        crowd.tenant = 1;
        crowd.start = sec(40);
        crowd.duration = sec(20);
        crowd.multiplier = 8.0;
        tc.bursts.push_back(crowd);
        cfg.traffic = tc;
    } else {
        cfg.workload.functions = 6;
        cfg.workload.minInterarrival = sec(2);
        cfg.workload.maxInterarrival = sec(20);
        cfg.workload.horizon = sec(120);
    }
    ParallelFleet fleet(cfg);
    return fleet.run();
}

TEST(ParallelFleet, SharedTieredBitIdenticalAcrossThreadCounts)
{
    // The tentpole contract: the fleet-shared data plane (store
    // domain, staging, adoption, port-backed fetches) keeps digests
    // bit-identical across sim thread counts.
    ParallelFleetResult ref = runSharedScenario(
        core::ColdStartMode::TieredReap, 1, 4, false);
    ASSERT_GT(ref.invocations, 0);
    EXPECT_GT(ref.snapshotBuilds, 0);
    EXPECT_GT(ref.stagedBytes, 0);
    EXPECT_EQ(static_cast<int>(ref.storeShards.size()), 4);
    std::uint64_t ref_digest = ref.digest();
    for (int threads : {2, 4, 8}) {
        ParallelFleetResult r = runSharedScenario(
            core::ColdStartMode::TieredReap, threads, 4, false);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
    }
}

TEST(ParallelFleet, SharedDedupBitIdenticalAcrossThreadCounts)
{
    // DedupReap exercises the chunked staging path: fleet-wide chunk
    // index, per-chunk placement broadcast, sharded batched GETs.
    ParallelFleetResult ref = runSharedScenario(
        core::ColdStartMode::DedupReap, 1, 4, false);
    ASSERT_GT(ref.invocations, 0);
    EXPECT_GT(ref.chunksUploaded, 0);
    EXPECT_GT(ref.chunksDeduped, 0);
    EXPECT_GT(ref.dedupSavedBytes, 0);
    std::uint64_t ref_digest = ref.digest();
    for (int threads : {2, 4, 8}) {
        ParallelFleetResult r = runSharedScenario(
            core::ColdStartMode::DedupReap, threads, 4, false);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
    }
}

TEST(ParallelFleet, TrafficDrivenSharedBitIdentical)
{
    // Open-loop TrafficEngine arrivals (diurnal + flash crowd) on the
    // shared data plane stay deterministic across thread counts.
    ParallelFleetResult ref = runSharedScenario(
        core::ColdStartMode::TieredReap, 1, 2, true);
    ASSERT_GT(ref.invocations, 0);
    std::uint64_t ref_digest = ref.digest();
    for (int threads : {2, 4}) {
        ParallelFleetResult r = runSharedScenario(
            core::ColdStartMode::TieredReap, threads, 2, true);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
    }
}

TEST(ParallelFleet, PoliciesRouteAcrossWorkers)
{
    // Sanity: with several workers and warm-first routing, cold
    // starts land on more than one worker (round-robin spreads).
    ParallelFleetConfig cfg;
    cfg.workers = 4;
    cfg.simThreads = 2;
    cfg.routingPolicy = RoutingPolicyKind::WarmFirst;
    cfg.workload.functions = 8;
    cfg.workload.minInterarrival = sec(2);
    cfg.workload.maxInterarrival = sec(30);
    cfg.workload.horizon = sec(60);
    ParallelFleet fleet(cfg);
    ParallelFleetResult r = fleet.run();
    EXPECT_GT(r.invocations, 0);
    EXPECT_GT(r.coldStarts, 1);
}

} // namespace
} // namespace vhive::cluster
