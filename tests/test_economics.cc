/**
 * @file
 * Cache & storage economics property suite: byte-budgeted caches
 * never exceed their budgets, refcounts stay sane under eviction
 * pressure, single-flight pins survive mid-fetch, the prefetch
 * shield holds exactly until the predicted window, delta re-staging
 * moves exactly the changed-chunk set, fleet-wide retirement leaves
 * zero dangling store bytes, the accounting balances under chaos
 * faults, and — the parallel contract — budgeted runs keep digests
 * bit-identical across sim thread counts while zero-budget runs are
 * bit-identical to the historical behaviour.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cluster/cluster.hh"
#include "cluster/parallel_fleet.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "util/rng.hh"
#include "util/units.hh"
#include "vmm/snapshot.hh"

namespace vhive {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

storage::ChunkRef
chunk(std::uint64_t hash, Bytes stored = 40 * kKiB)
{
    return storage::ChunkRef{hash, 64 * kKiB, stored};
}

// ------------------------------------------- budgeted ChunkStore core

TEST(BudgetedChunkStore, NeverExceedsBudgetUnderRandomTraffic)
{
    // Property: with no pins outstanding, resident stored bytes obey
    // the budget after *every* operation, and refcounts never go
    // negative no matter how releases interleave with evictions.
    for (auto policy : {storage::EvictionPolicyKind::Lru,
                        storage::EvictionPolicyKind::SharingAware,
                        storage::EvictionPolicyKind::PrefetchPinned}) {
        storage::ChunkStore cs;
        const Bytes budget = 512 * kKiB;
        cs.setBudget(budget, policy);

        Rng rng(0xEC0ull +
                static_cast<std::uint64_t>(static_cast<int>(policy)));
        for (int i = 0; i < 4000; ++i) {
            auto h = static_cast<std::uint64_t>(
                1 + rng.uniformInt(0, 63));
            switch (rng.uniformInt(0, 3)) {
              case 0:
              case 1:
                cs.addRef(chunk(h, (8 + h % 48) * kKiB),
                          static_cast<Time>(i));
                break;
              case 2:
                cs.release(h);
                break;
              default:
                cs.touch(h);
                break;
            }
            ASSERT_LE(cs.storedBytes(), budget)
                << "op " << i << " policy " << static_cast<int>(policy);
            ASSERT_GE(cs.refCount(h), 0);
            ASSERT_GE(cs.storedBytes(), 0);
            ASSERT_GE(cs.chunkCount(), 0);
        }
        // Inventory identity: everything inserted either left through
        // an eviction path or is still resident.
        EXPECT_EQ(cs.stats().inserts - cs.stats().evictions -
                      cs.stats().budgetEvictions,
                  cs.chunkCount());
        EXPECT_GE(cs.stats().peakStoredBytes, cs.storedBytes());
    }
}

TEST(BudgetedChunkStore, SingleFlightPinSurvivesBudgetPressure)
{
    // A pinned chunk (single-flight admission, in-progress read) is
    // never an eviction victim, even as the oldest LRU entry under
    // heavy pressure; unpinning returns it to the victim pool.
    storage::ChunkStore cs;
    cs.setBudget(256 * kKiB, storage::EvictionPolicyKind::Lru);

    cs.addRef(chunk(0xAAAA, 64 * kKiB), 0);
    cs.pin(0xAAAA);
    // Pressure: 20 more chunks, far past the budget — everything
    // unpinned cycles out, the pinned fetch target survives.
    for (std::uint64_t h = 1; h <= 20; ++h)
        cs.addRef(chunk(h, 64 * kKiB), static_cast<Time>(h));
    EXPECT_TRUE(cs.contains(0xAAAA));
    EXPECT_LE(cs.storedBytes(), 256 * kKiB + 64 * kKiB)
        << "only the pinned bytes may overhang the budget";

    cs.unpin(0xAAAA);
    cs.release(0xAAAA); // zero refs: evictable again
    for (std::uint64_t h = 21; h <= 40; ++h)
        cs.addRef(chunk(h, 64 * kKiB), static_cast<Time>(h));
    EXPECT_FALSE(cs.contains(0xAAAA));
    EXPECT_LE(cs.storedBytes(), 256 * kKiB);
}

TEST(BudgetedChunkStore, PrefetchShieldHoldsExactlyUntilWindow)
{
    // The PrefetchPinned policy shields prefetched chunks from
    // eviction until their predicted-window end; after that they age
    // out like anything else.
    storage::ChunkStore cs;
    cs.setBudget(256 * kKiB, storage::EvictionPolicyKind::PrefetchPinned);

    cs.addRef(chunk(0xBBBB, 64 * kKiB), 0);
    cs.pinUntil(0xBBBB, sec(30));

    for (std::uint64_t h = 1; h <= 16; ++h)
        cs.addRef(chunk(h, 64 * kKiB), sec(10));
    EXPECT_TRUE(cs.contains(0xBBBB))
        << "shielded inside the predicted window";

    for (std::uint64_t h = 17; h <= 32; ++h)
        cs.addRef(chunk(h, 64 * kKiB), sec(40));
    EXPECT_FALSE(cs.contains(0xBBBB))
        << "shield expired with the window";
    EXPECT_LE(cs.storedBytes(), 256 * kKiB);
}

TEST(BudgetedChunkStore, RefcountProtectionRetainsAtZeroAndShieldsRefs)
{
    // The fleet staged-index role: referenced chunks are never budget
    // victims, zero-ref chunks are *retained* as the evictable pool
    // (a re-stage is a dedup hit, not an upload), and pressure evicts
    // only from that pool.
    storage::ChunkStore cs;
    cs.setBudget(512 * kKiB, storage::EvictionPolicyKind::Lru,
                 /*refcount_protected=*/true);

    cs.addRef(chunk(0xCCCC, 64 * kKiB), 0);
    EXPECT_FALSE(cs.release(0xCCCC)); // retained at zero refs
    EXPECT_TRUE(cs.contains(0xCCCC));
    EXPECT_FALSE(cs.addRef(chunk(0xCCCC, 64 * kKiB), 1)) // dedup hit
        << "re-staging a retained chunk must not re-upload";
    EXPECT_EQ(cs.stats().dedupHits, 1);
    cs.release(0xCCCC); // back to the zero-ref evictable pool

    // Live references survive arbitrary pressure; the budget can only
    // reclaim the zero-ref pool — which is exactly {0xCCCC}.
    for (std::uint64_t h = 1; h <= 30; ++h)
        cs.addRef(chunk(h, 64 * kKiB), static_cast<Time>(h));
    EXPECT_GT(cs.stats().budgetEvictions, 0);
    EXPECT_FALSE(cs.contains(0xCCCC))
        << "the zero-ref pool is the only legal victim set";
    for (std::uint64_t h = 1; h <= 30; ++h) {
        ASSERT_TRUE(cs.contains(h))
            << "a referenced chunk must never be a budget victim";
        ASSERT_EQ(cs.refCount(h), 1);
    }
    // Protected references may legitimately overhang the budget; the
    // store reports the overhang rather than corrupting refcounts.
    EXPECT_EQ(cs.storedBytes(), 30 * 64 * kKiB);
}

// ----------------------------------------------- worker-level budgets

TEST(WorkerEconomics, PageCacheBudgetShedsAndStaysUnder)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.reap.pageCacheBudget = 2 * kMiB;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    for (const char *fn : {"helloworld", "pyaes", "json_serdes"})
        orch.registerFunction(func::profileByName(fn));

    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        for (int round = 0; round < 3; ++round)
            for (const char *fn :
                 {"helloworld", "pyaes", "json_serdes"}) {
                co_await orch.prepareSnapshot(fn);
                (void)co_await orch.invoke(
                    fn, core::ColdStartMode::TieredReap, opts);
            }
    });

    const auto &tb = orch.tierBudget();
    EXPECT_LE(tb.residentBytes(), tb.budget());
    EXPECT_GT(tb.evictedBytes(), 0) << "three working sets through a "
                                       "2 MiB tier must shed pages";
    EXPECT_GT(tb.evictions(), 0);
    EXPECT_GE(tb.peakResidentBytes(), tb.residentBytes());
}

TEST(WorkerEconomics, ChunkCacheBudgetBoundsResidentBytes)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    cfg.reap.chunkCacheBudget = 512 * kKiB;
    cfg.reap.evictionPolicy = storage::EvictionPolicyKind::SharingAware;
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    for (const char *fn : {"helloworld", "pyaes", "json_serdes"})
        orch.registerFunction(func::profileByName(fn));

    runScenario(sim, [&]() -> Task<void> {
        core::InvokeOptions opts;
        opts.forceCold = true;
        for (int round = 0; round < 2; ++round)
            for (const char *fn :
                 {"helloworld", "pyaes", "json_serdes"}) {
                co_await orch.prepareSnapshot(fn);
                (void)co_await orch.invoke(
                    fn, core::ColdStartMode::DedupReap, opts);
            }
    });

    const auto &cc = orch.localChunkCache();
    EXPECT_LE(cc.storedBytes(), cc.budget());
    EXPECT_GT(cc.stats().budgetEvictions, 0);
    EXPECT_GE(cc.stats().peakStoredBytes, cc.storedBytes());
    EXPECT_EQ(cc.stats().inserts - cc.stats().evictions -
                  cc.stats().budgetEvictions,
              cc.chunkCount());
}

TEST(WorkerEconomics, ZeroBudgetIsAccountingOnlyAndPolicyInert)
{
    // Dormancy contract: with budgets at 0 the economics layer only
    // keeps high-water marks — nothing is evicted, and the configured
    // eviction policy must not change a single simulated timestamp.
    core::LatencyBreakdown byPolicy[2];
    Bytes peak[2] = {0, 0};
    int i = 0;
    for (auto policy : {storage::EvictionPolicyKind::Lru,
                        storage::EvictionPolicyKind::SharingAware}) {
        Simulation sim;
        core::WorkerConfig cfg;
        cfg.reap.evictionPolicy = policy; // budgets stay 0
        core::Worker w(sim, cfg);
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("json_serdes"));
        runScenario(sim, [&]() -> Task<void> {
            co_await orch.prepareSnapshot("json_serdes");
            core::InvokeOptions opts;
            opts.forceCold = true;
            (void)co_await orch.invoke(
                "json_serdes", core::ColdStartMode::TieredReap, opts);
            byPolicy[i] = co_await orch.invoke(
                "json_serdes", core::ColdStartMode::TieredReap, opts);
        });
        EXPECT_EQ(orch.tierBudget().evictedBytes(), 0);
        EXPECT_EQ(orch.tierBudget().evictions(), 0);
        EXPECT_GT(orch.tierBudget().peakResidentBytes(), 0)
            << "peak accounting runs even unbudgeted";
        peak[i] = orch.tierBudget().peakResidentBytes();
        ++i;
    }
    EXPECT_EQ(byPolicy[0].total, byPolicy[1].total);
    EXPECT_EQ(peak[0], peak[1]);
}

// ------------------------------------------------- delta re-staging

TEST(DeltaRestage, MovesExactlyTheChangedChunkSet)
{
    Simulation sim;
    core::WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    core::Worker w(sim, cfg);
    auto &orch = w.orchestrator();
    orch.registerFunction(func::profileByName("json_serdes"));

    std::shared_ptr<const vmm::SnapshotManifests> v1, v2;
    runScenario(sim, [&]() -> Task<void> {
        co_await orch.prepareSnapshot("json_serdes");
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
        (void)co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
        v1 = orch.manifests("json_serdes");
        orch.invalidateRecord("json_serdes");
        (void)co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
        (void)co_await orch.invoke(
            "json_serdes", core::ColdStartMode::DedupReap, opts);
        v2 = orch.manifests("json_serdes");
    });
    ASSERT_TRUE(v1 != nullptr);
    ASSERT_TRUE(v2 != nullptr);
    ASSERT_NE(v1.get(), v2.get());

    auto hashesOf = [](const vmm::SnapshotManifests &m) {
        std::set<storage::ChunkHash> s;
        for (const auto &c : m.vmmState.chunks)
            s.insert(c.hash);
        for (const auto &c : m.ws.chunks)
            s.insert(c.hash);
        return s;
    };
    std::set<storage::ChunkHash> oldSet = hashesOf(*v1);
    std::set<storage::ChunkHash> newSet = hashesOf(*v2);
    std::int64_t changed = 0;
    for (storage::ChunkHash h : newSet)
        if (oldSet.find(h) == oldSet.end())
            ++changed;

    const auto &st = orch.stats("json_serdes");
    EXPECT_EQ(st.deltaRestages, 1);
    // The heart of the delta contract: uploads == the changed set,
    // nothing more (unchanged chunks dedup against the retained
    // previous version) and nothing less.
    EXPECT_EQ(st.deltaChunksUploaded, changed);
    EXPECT_GT(st.deltaChunksUploaded, 0) << "churn model must churn";
    EXPECT_LT(st.deltaChunksUploaded,
              static_cast<std::int64_t>(newSet.size()))
        << "a delta must be strictly smaller than a full re-stage";
    EXPECT_GT(st.deltaChunksUnchanged, 0);
    EXPECT_GT(st.deltaBytesUploaded, 0);

    // The previous version's exclusive chunks were released: the
    // index now holds exactly the live manifest set.
    EXPECT_EQ(orch.stagedChunkIndex().chunkCount(),
              static_cast<std::int64_t>(newSet.size()));
}

TEST(DeltaRestage, ClusterRestageMovesOnlyChangedBytes)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 4;
    cfg.coldStartMode = core::ColdStartMode::DedupReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(60);
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    c.deploy(func::profileByName("pyaes"));

    cluster::FleetStats before, after;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        for (const char *fn : {"helloworld", "pyaes"})
            (void)co_await c.invoke(fn);
        before = c.fleetStats();
        co_await c.restageFunction("helloworld");
        after = c.fleetStats();
        // The restaged function still serves everywhere.
        (void)co_await c.invoke("helloworld");
    });

    EXPECT_EQ(before.restages, 0);
    EXPECT_EQ(after.restages, 1);
    EXPECT_GT(after.deltaChunksUploaded, 0);
    // Delta uploads moved strictly fewer chunks than the function's
    // full manifest set (which the initial staging uploaded).
    EXPECT_LT(after.deltaChunksUploaded, before.chunksStored);
    EXPECT_GT(after.deltaBytesUploaded, 0);
    EXPECT_LT(after.deltaBytesUploaded, before.chunkStoredBytes);
    EXPECT_GE(after.chunkPeakStoredBytes, after.chunkStoredBytes);
}

// --------------------------------------------------- fleet-wide GC

TEST(FleetGC, RetireReleasesEveryStagedByte)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 4;
    cfg.coldStartMode = core::ColdStartMode::DedupReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(60);
    cluster::Cluster c(sim, cfg);
    const char *fns[] = {"helloworld", "pyaes", "json_serdes"};
    for (const char *fn : fns)
        c.deploy(func::profileByName(fn));

    cluster::FleetStats mid, end;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        for (const char *fn : fns)
            (void)co_await c.invoke(fn);
        co_await c.retireFunction("helloworld");
        mid = c.fleetStats();
        for (const char *fn : {"pyaes", "json_serdes"})
            co_await c.retireFunction(fn);
        end = c.fleetStats();
    });

    // Retiring one of three functions frees its exclusive chunks but
    // keeps every chunk another function still references.
    EXPECT_EQ(mid.retires, 1);
    EXPECT_GT(mid.gcReleasedBytes, 0);
    EXPECT_GT(mid.chunksStored, 0);

    // After the last retirement the index holds zero dangling bytes:
    // the GC contract the registry's refcounts must add up to.
    EXPECT_EQ(end.retires, 3);
    EXPECT_EQ(end.chunksStored, 0);
    EXPECT_EQ(end.chunkStoredBytes, 0);
    EXPECT_GE(end.gcReleasedBytes, mid.gcReleasedBytes);
}

// ------------------------------------------------ chaos interaction

TEST(EconomicsChaos, BudgetedEvictionBalancesThroughStoreOutage)
{
    // Store outages land mid-run while every budget is tight: the
    // accounting must still balance (no negative counts, budgets
    // honoured, inventory identity holds) and every invocation must
    // complete.
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 3;
    cfg.coldStartMode = core::ColdStartMode::DedupReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(5);
    cfg.scalePeriod = sec(1);
    cfg.worker.reap.pageCacheBudget = 2 * kMiB;
    cfg.worker.reap.chunkCacheBudget = 512 * kKiB;
    // Evict local artifacts too: without SSD pressure the builder
    // serves its own functions locally and the outage has no store
    // traffic to land on.
    cfg.worker.reap.ssdBudget = 8 * kMiB;
    cfg.registryChunkBudget = 8 * kMiB;
    cluster::Cluster c(sim, cfg);
    sim::FaultPlan plan(11);
    const char *fns[] = {"helloworld", "pyaes", "json_serdes"};
    for (const char *fn : fns)
        c.deploy(func::profileByName(fn));

    std::int64_t served = 0;
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // Outage windows sit relative to the post-staging clock so
        // they land mid-round, while budget pressure is refetching
        // evicted chunks.
        Time base = sim.now();
        sim::FaultSpec s;
        s.kind = sim::FaultKind::StoreOutage;
        s.target = "store/*";
        s.windows.push_back(
            sim::FaultWindow{base + sec(18), base + sec(26), 1.0, 1.0});
        s.windows.push_back(
            sim::FaultWindow{base + sec(58), base + sec(64), 1.0, 1.0});
        plan.add(s);
        c.installFaultPlan(&plan);
        // The janitor is what expires keep-alive instances; without
        // it every post-staging invocation lands warm and the outage
        // has no cold-start store traffic to stall.
        c.startAutoscaler();
        for (int round = 0; round < 8; ++round) {
            for (const char *fn : fns) {
                (void)co_await c.invoke(fn);
                ++served;
            }
            co_await sim.delay(sec(10));
        }
        c.stopAutoscaler();
        co_await c.restageFunction("pyaes");
        (void)co_await c.invoke("pyaes");
        ++served;
    });
    EXPECT_EQ(served, 25);

    auto fs = c.fleetStats();
    EXPECT_GT(fs.store.outageStalls, 0) << "outages must have landed";
    for (int w = 0; w < cfg.workers; ++w) {
        auto &orch = c.worker(w).orchestrator();
        const auto &tb = orch.tierBudget();
        EXPECT_LE(tb.residentBytes(), tb.budget()) << "worker " << w;
        const auto &cc = orch.localChunkCache();
        EXPECT_LE(cc.storedBytes(), cc.budget()) << "worker " << w;
        EXPECT_EQ(cc.stats().inserts - cc.stats().evictions -
                      cc.stats().budgetEvictions,
                  cc.chunkCount())
            << "worker " << w;
    }
    EXPECT_GE(fs.pageCachePeakBytes, 0);
    EXPECT_GT(fs.workerChunkPeakBytes, 0);
    EXPECT_EQ(fs.restages, 1);
    EXPECT_GE(fs.chunkPeakStoredBytes, fs.chunkStoredBytes);
}

// --------------------------------------------- parallel bit identity

cluster::ParallelFleetResult
runBudgetedParallel(int threads, core::ColdStartMode mode,
                    Bytes page_budget, Bytes chunk_budget,
                    Bytes ssd_budget, Bytes registry_budget,
                    storage::EvictionPolicyKind policy)
{
    cluster::ParallelFleetConfig cfg;
    cfg.workers = 4;
    cfg.simThreads = threads;
    cfg.coldStartMode = mode;
    cfg.sharedSnapshots = true;
    cfg.sharedStoreShards = 2;
    cfg.routingPolicy = cluster::RoutingPolicyKind::LocalityHash;
    cfg.controlPolicy = cluster::ControlPolicyKind::HybridHistogram;
    cfg.keepAlive = sec(4);
    cfg.worker.reap.pageCacheBudget = page_budget;
    cfg.worker.reap.chunkCacheBudget = chunk_budget;
    // A tight SSD budget is what makes home workers interesting: the
    // staging pass leaves artifacts local there, and without budget
    // eviction every LocalityHash-routed cold start takes the local
    // path and the remote/chunk tiers never see a byte.
    cfg.worker.reap.ssdBudget = ssd_budget;
    cfg.worker.reap.evictionPolicy = policy;
    cfg.registryChunkBudget = registry_budget;
    // Periodic (cron-class) arrivals: the hybrid policy can only
    // prefetch when the predicted window opens in the future, and
    // Poisson gaps put the 5th-percentile gap near zero — the window
    // has always already opened by the time the instance goes idle.
    cluster::TrafficConfig tc;
    tc.functions = 6;
    tc.tenants = 2;
    tc.horizon = sec(400);
    tc.periodicFraction = 1.0;
    tc.periodicMinPeriod = sec(40);
    tc.periodicMaxPeriod = sec(60);
    cfg.traffic = tc;
    cluster::ParallelFleet fleet(cfg);
    return fleet.run();
}

TEST(ParallelEconomics, BudgetedDigestBitIdenticalAcrossThreadCounts)
{
    // The acceptance contract: budgets, eviction, prefetch pinning
    // and the staged-index cap all active — and the digest (which
    // folds every economics counter in) still bit-identical for
    // 1/2/4/8 sim threads.
    cluster::ParallelFleetResult ref = runBudgetedParallel(
        1, core::ColdStartMode::DedupReap, 2 * kMiB, 512 * kKiB,
        8 * kMiB, 8 * kMiB,
        storage::EvictionPolicyKind::SharingAware);
    ASSERT_GT(ref.invocations, 0);
    EXPECT_GT(ref.ssdEvictions, 0);
    EXPECT_GT(ref.workerChunkPeakBytes, 0);
    EXPECT_GT(ref.fleetChunkPeakBytes, 0);
    std::uint64_t ref_digest = ref.digest();
    for (int threads : {2, 4, 8}) {
        cluster::ParallelFleetResult r = runBudgetedParallel(
            threads, core::ColdStartMode::DedupReap, 2 * kMiB,
            512 * kKiB, 8 * kMiB, 8 * kMiB,
            storage::EvictionPolicyKind::SharingAware);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
        EXPECT_EQ(r.bgPrefetches, ref.bgPrefetches);
        EXPECT_EQ(r.workerChunkBudgetEvictions,
                  ref.workerChunkBudgetEvictions);
        EXPECT_EQ(r.ssdEvictions, ref.ssdEvictions);
    }

    // The page-cache budget lives on the tiered chain; a blob-staged
    // TieredReap fleet under the same SSD pressure admits remote
    // bytes through it — and must stay just as thread-agnostic.
    cluster::ParallelFleetResult tref = runBudgetedParallel(
        1, core::ColdStartMode::TieredReap, 2 * kMiB, 0, 8 * kMiB, 0,
        storage::EvictionPolicyKind::Lru);
    ASSERT_GT(tref.invocations, 0);
    EXPECT_GT(tref.pageCachePeakBytes, 0);
    EXPECT_GT(tref.pageCacheEvictedBytes, 0);
    for (int threads : {2, 4}) {
        cluster::ParallelFleetResult r = runBudgetedParallel(
            threads, core::ColdStartMode::TieredReap, 2 * kMiB, 0,
            8 * kMiB, 0, storage::EvictionPolicyKind::Lru);
        EXPECT_EQ(r.digest(), tref.digest()) << "threads=" << threads;
    }
}

TEST(ParallelEconomics, PrefetchWarmsTierCachesOnParallelKernel)
{
    // The control plane's Prefetch verb now reaches parallel-kernel
    // workers: with tight chunk caches (residency < 1 between
    // arrivals) and a predictable gap, background prefetches fire and
    // are tracked exactly-once.
    cluster::ParallelFleetResult r = runBudgetedParallel(
        2, core::ColdStartMode::DedupReap, 2 * kMiB, 512 * kKiB,
        8 * kMiB, 0, storage::EvictionPolicyKind::PrefetchPinned);
    EXPECT_GT(r.invocations, 0);
    EXPECT_GT(r.bgPrefetches, 0)
        << "hybrid-histogram Prefetch actions must reach workers";
    EXPECT_GT(r.workerChunkPeakBytes, 0)
        << "prefetched chunks must land in the worker chunk cache";
}

TEST(ParallelEconomics, ZeroBudgetRunsAreBitIdenticalToHistorical)
{
    // Dormancy at fleet scale: budgets at 0 mean the configured
    // eviction policy cannot influence a single event — digests for
    // different policies collapse onto one value (and onto the
    // default-Lru value, i.e. the pre-economics behaviour).
    cluster::ParallelFleetResult ref = runBudgetedParallel(
        2, core::ColdStartMode::DedupReap, 0, 0, 0, 0,
        storage::EvictionPolicyKind::Lru);
    ASSERT_GT(ref.invocations, 0);
    EXPECT_EQ(ref.pageCacheEvictedBytes, 0);
    EXPECT_EQ(ref.workerChunkBudgetEvictions, 0);
    EXPECT_EQ(ref.fleetChunkBudgetEvictions, 0);
    EXPECT_EQ(ref.ssdEvictions, 0);
    for (auto policy : {storage::EvictionPolicyKind::SharingAware,
                        storage::EvictionPolicyKind::PrefetchPinned}) {
        cluster::ParallelFleetResult r = runBudgetedParallel(
            2, core::ColdStartMode::DedupReap, 0, 0, 0, 0, policy);
        EXPECT_EQ(r.digest(), ref.digest())
            << "policy " << static_cast<int>(policy);
    }
}

} // namespace
} // namespace vhive
