/**
 * @file
 * Edge-case and stress tests for the DES kernel beyond the basics in
 * test_sim.cc: empty runs, nested fork/join trees, heavy event
 * volumes, semaphore fairness, and channel ordering under bursts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::sim {
namespace {

TEST(SimulationEdge, RunOnEmptyQueueReturnsImmediately)
{
    Simulation sim;
    EXPECT_EQ(sim.run(), 0);
    EXPECT_EQ(sim.eventsProcessed(), 0);
    sim.runUntil(msec(5));
    EXPECT_EQ(sim.now(), msec(5));
}

TEST(SimulationEdge, RunUntilSameTimeIsNoop)
{
    Simulation sim;
    sim.runUntil(0);
    EXPECT_EQ(sim.now(), 0);
}

Task<void>
nest(Simulation &sim, int depth, int &leaves)
{
    if (depth == 0) {
        co_await sim.delay(usec(1));
        ++leaves;
        co_return;
    }
    // Binary fork/join tree.
    auto left = nest(sim, depth - 1, leaves);
    auto right = nest(sim, depth - 1, leaves);
    left.start(sim);
    right.start(sim);
    co_await left;
    co_await right;
}

TEST(SimulationEdge, DeepForkJoinTree)
{
    Simulation sim;
    int leaves = 0;
    sim.spawn(nest(sim, 8, leaves));
    Time end = sim.run();
    EXPECT_EQ(leaves, 256);
    // All leaves run concurrently: one microsecond total.
    EXPECT_EQ(end, usec(1));
}

TEST(SimulationEdge, HighVolumeEventOrdering)
{
    Simulation sim;
    std::vector<int> order;
    struct T {
        static Task<void>
        run(Simulation &sim, std::vector<int> &order, int id,
            Duration d)
        {
            co_await sim.delay(d);
            order.push_back(id);
        }
    };
    // 10k tasks with descending delays complete in ascending order.
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        sim.spawn(T::run(sim, order, i, usec(n - i)));
    sim.run();
    ASSERT_EQ(order.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], n - 1 - i);
}

TEST(SimulationEdge, RunUntilFiresEventExactlyAtBoundary)
{
    Simulation sim;
    std::vector<int> log;
    struct T {
        static Task<void>
        run(Simulation &sim, std::vector<int> &log, Duration d, int id)
        {
            co_await sim.delay(d);
            log.push_back(id);
        }
    };
    sim.spawn(T::run(sim, log, msec(10), 1)); // exactly at `until`
    sim.spawn(T::run(sim, log, msec(10) + 1, 2));
    sim.runUntil(msec(10));
    EXPECT_EQ(log, std::vector<int>({1}));
    EXPECT_EQ(sim.now(), msec(10));
    sim.run();
    EXPECT_EQ(log, std::vector<int>({1, 2}));
}

TEST(SimulationEdge, ScheduleAtNowAfterRunUntilDrains)
{
    // runUntil advances the clock past the last event; a spawn at the
    // new current time must still run at exactly that time.
    Simulation sim;
    Time ran_at = -1;
    struct T {
        static Task<void>
        run(Simulation &sim, Time &ran_at)
        {
            ran_at = sim.now();
            co_return;
        }
    };
    sim.runUntil(msec(5));
    sim.spawn(T::run(sim, ran_at));
    sim.run();
    EXPECT_EQ(ran_at, msec(5));
    EXPECT_EQ(sim.now(), msec(5));
}

TEST(SimulationEdge, FutureAndNowWakeupsInterleaveFifoAtOneInstant)
{
    // A and B sleep to the same future instant T (future-heap path,
    // scheduled in that order). When A wakes at T it spawns C
    // (now-queue path). FIFO seq order at T is A, B, C: B's earlier
    // schedule must not be overtaken by the freshly spawned C.
    Simulation sim;
    std::vector<char> order;
    struct C {
        static Task<void>
        run(std::vector<char> &order)
        {
            order.push_back('C');
            co_return;
        }
    };
    struct A {
        static Task<void>
        run(Simulation &sim, std::vector<char> &order)
        {
            co_await sim.delay(msec(3));
            order.push_back('A');
            sim.spawn(C::run(order));
        }
    };
    struct B {
        static Task<void>
        run(Simulation &sim, std::vector<char> &order)
        {
            co_await sim.delay(msec(3));
            order.push_back('B');
        }
    };
    sim.spawn(A::run(sim, order));
    sim.spawn(B::run(sim, order));
    sim.run();
    EXPECT_EQ(order, std::vector<char>({'A', 'B', 'C'}));
    EXPECT_EQ(sim.now(), msec(3));
}

TEST(SemaphoreEdge, FifoFairnessUnderContention)
{
    Simulation sim;
    Semaphore sem(sim, 1);
    std::vector<int> order;
    struct T {
        static Task<void>
        run(Simulation &sim, Semaphore &sem, std::vector<int> &order,
            int id, Duration arrive_at)
        {
            co_await sim.delay(arrive_at);
            co_await sem.acquire();
            SemaphoreGuard g(sem);
            order.push_back(id);
            co_await sim.delay(msec(10));
        }
    };
    // Arrival order 0..7 staggered by 1 us; service must be FIFO even
    // though the holder keeps the permit for 10 ms.
    for (int i = 0; i < 8; ++i)
        sim.spawn(T::run(sim, sem, order, i, usec(i)));
    sim.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SemaphoreEdge, ZeroPermitSemaphoreBlocksUntilRelease)
{
    Simulation sim;
    Semaphore sem(sim, 0);
    bool got = false;
    struct Waiter {
        static Task<void>
        run(Semaphore &sem, bool &got)
        {
            co_await sem.acquire();
            got = true;
        }
    };
    struct Releaser {
        static Task<void>
        run(Simulation &sim, Semaphore &sem)
        {
            co_await sim.delay(msec(1));
            sem.release();
        }
    };
    sim.spawn(Waiter::run(sem, got));
    sim.spawn(Releaser::run(sim, sem));
    sim.run();
    EXPECT_TRUE(got);
}

TEST(ChannelEdge, BurstPreservesFifo)
{
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<int> got;
    struct C {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &got, int n)
        {
            for (int i = 0; i < n; ++i)
                got.push_back(co_await ch.recv());
        }
    };
    sim.spawn(C::run(ch, got, 1000));
    // Burst-send everything at t=0 before the consumer runs.
    for (int i = 0; i < 1000; ++i)
        ch.send(i);
    sim.run();
    ASSERT_EQ(got.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(ChannelEdge, InterleavedSendRecvSameTimestamp)
{
    // send / recv strictly alternating at one timestamp must pair
    // values 1:1 without loss or duplication.
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<int> got;
    struct C {
        static Task<void>
        run(Channel<int> &ch, std::vector<int> &got, int n)
        {
            for (int i = 0; i < n; ++i)
                got.push_back(co_await ch.recv());
        }
    };
    struct P {
        static Task<void>
        run(Channel<int> &ch, int n)
        {
            for (int i = 0; i < n; ++i) {
                ch.send(i);
                co_await std::suspend_never{};
            }
        }
    };
    sim.spawn(C::run(ch, got, 64));
    sim.spawn(P::run(ch, 64));
    sim.run();
    ASSERT_EQ(got.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(GateEdge, DoubleOpenIsIdempotent)
{
    Simulation sim;
    Gate g(sim);
    int woke = 0;
    struct W {
        static Task<void>
        run(Gate &g, int &woke)
        {
            co_await g.wait();
            ++woke;
        }
    };
    sim.spawn(W::run(g, woke));
    g.openGate();
    g.openGate(); // second open must not double-schedule
    sim.run();
    EXPECT_EQ(woke, 1);
}

TEST(LatchEdge, ManyWaitersSingleArrival)
{
    Simulation sim;
    Latch latch(sim, 1);
    int woke = 0;
    struct W {
        static Task<void>
        run(Latch &l, int &woke)
        {
            co_await l.wait();
            ++woke;
        }
    };
    for (int i = 0; i < 50; ++i)
        sim.spawn(W::run(latch, woke));
    struct A {
        static Task<void>
        run(Simulation &sim, Latch &l)
        {
            co_await sim.delay(usec(3));
            l.arrive();
        }
    };
    sim.spawn(A::run(sim, latch));
    sim.run();
    EXPECT_EQ(woke, 50);
}

TEST(TaskEdge, MoveAssignReplacesUnstartedTask)
{
    Simulation sim;
    int runs = 0;
    struct T {
        static Task<void>
        run(Simulation &sim, int &runs)
        {
            co_await sim.delay(usec(1));
            ++runs;
        }
    };
    Task<void> a = T::run(sim, runs);
    // Replace before start: the first frame is destroyed unstarted.
    a = T::run(sim, runs);
    a.start(sim);
    struct J {
        static Task<void>
        run(Task<void> &a)
        {
            co_await a;
        }
    };
    sim.spawn(J::run(a));
    sim.run();
    EXPECT_EQ(runs, 1);
}

TEST(TaskEdge, AwaitAlreadyCompletedTask)
{
    Simulation sim;
    struct T {
        static Task<void>
        run(Simulation &sim)
        {
            co_await sim.delay(usec(1));
        }
    };
    struct J {
        static Task<void>
        run(Simulation &sim, Time &joined)
        {
            Task<void> t = T::run(sim);
            t.start(sim);
            co_await sim.delay(msec(1)); // t finishes long before
            co_await t;                  // must not deadlock
            joined = sim.now();
        }
    };
    Time joined = -1;
    sim.spawn(J::run(sim, joined));
    sim.run();
    EXPECT_EQ(joined, msec(1));
}

} // namespace
} // namespace vhive::sim
