/**
 * @file
 * Tests for the extension features: remote/disaggregated snapshot
 * storage (Sec. 7.1), the rootfs/container-image boot path (Sec. 6.1),
 * layout re-randomization (Sec. 7.3), fleet memory accounting
 * (Sec. 4.3), the Azure-style workload generator (Sec. 2.1), and CSV
 * artifact export.
 */

#include <gtest/gtest.h>

#include "cluster/azure_workload.hh"
#include "cluster/cluster.hh"
#include "core/loader/loader.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace vhive {
namespace {

using core::ColdStartMode;
using core::InvokeOptions;
using core::Worker;
using core::WorkerConfig;
using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

TEST(RemoteStorage, SmallReadsPayRoundTrips)
{
    Simulation sim;
    storage::DiskDevice remote(sim,
                               storage::DiskParams::remoteStorage());
    Duration took = 0;
    struct T {
        static Task<void>
        run(Simulation &sim, storage::DiskDevice &d, Duration &out)
        {
            Time t0 = sim.now();
            co_await d.read(0, 4 * kKiB);
            out = sim.now() - t0;
        }
    };
    sim.spawn(T::run(sim, remote, took));
    sim.run();
    // Network round trip dominates: far slower than the local SSD's
    // ~123 us.
    EXPECT_GT(took, usec(300));
}

TEST(RemoteStorage, BulkTransfersStreamWell)
{
    Simulation sim;
    storage::DiskDevice remote(sim,
                               storage::DiskParams::remoteStorage());
    Duration took = 0;
    struct T {
        static Task<void>
        run(Simulation &sim, storage::DiskDevice &d, Duration &out)
        {
            Time t0 = sim.now();
            co_await d.read(0, 8 * kMiB);
            out = sim.now() - t0;
        }
    };
    sim.spawn(T::run(sim, remote, took));
    sim.run();
    double mb_s = mbps(8 * kMiB, took);
    EXPECT_GT(mb_s, 300.0); // bulk transfer amortizes the RTT
}

TEST(RemoteStorage, ReapAdvantageGrowsRemotely)
{
    auto speedup = [](storage::DiskParams disk) {
        Simulation sim;
        WorkerConfig cfg;
        cfg.disk = disk;
        Worker w(sim, cfg);
        double out = 0;
        runScenario(sim, [&]() -> Task<void> {
            auto &orch = w.orchestrator();
            orch.registerFunction(func::profileByName("pyaes"));
            co_await orch.prepareSnapshot("pyaes");
            orch.flushHostCaches();
            (void)co_await orch.invoke("pyaes", ColdStartMode::Reap);
            InvokeOptions opts;
            opts.flushPageCache = true;
            opts.forceCold = true;
            auto v = co_await orch.invoke(
                "pyaes", ColdStartMode::VanillaSnapshot, opts);
            auto r =
                co_await orch.invoke("pyaes", ColdStartMode::Reap,
                                     opts);
            out = static_cast<double>(v.total) /
                  static_cast<double>(r.total);
        });
        return out;
    };
    double local = speedup(storage::DiskParams::ssd());
    double remote = speedup(storage::DiskParams::remoteStorage());
    EXPECT_GT(remote, local); // Sec. 7.1
}

TEST(RemoteStorage, ReapRemoteIsAFirstClassMode)
{
    // Sec. 7.1 as a registered SnapshotLoader: snapshot artifacts live
    // in an S3-like object store and arrive as bulk GETs.
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    core::LatencyBreakdown local, remote;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("pyaes");
        orch.flushHostCaches();
        (void)co_await orch.invoke("pyaes", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        local =
            co_await orch.invoke("pyaes", ColdStartMode::Reap, opts);
        std::int64_t gets0 = w.objectStore().stats().gets;
        remote = co_await orch.invoke(
            "pyaes", ColdStartMode::RemoteReap, opts);
        // VMM state + WS file each arrived as an object GET.
        EXPECT_GE(w.objectStore().stats().gets - gets0, 2);
    });
    EXPECT_TRUE(remote.cold);
    EXPECT_GT(remote.fetchWs, 0);
    // Same prefetch set as local REAP; eager install still eliminates
    // nearly all faults.
    EXPECT_EQ(remote.prefetchedPages, local.prefetchedPages);
    EXPECT_LT(remote.residualFaults, remote.prefetchedPages / 10);
    // The network costs something over the local O_DIRECT read, but
    // the bulk transfer keeps it the same order of magnitude.
    EXPECT_GT(remote.total, local.total);
    EXPECT_LT(remote.total, 3 * local.total);
}

TEST(RemoteStorage, SnapshotArtifactsAreStagedOnce)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::RemoteReap, opts);
        EXPECT_EQ(w.objectStore().stats().puts, 1);
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::RemoteReap, opts);
        // The upload is one-time; later cold starts only GET.
        EXPECT_EQ(w.objectStore().stats().puts, 1);

        // Invalidating the record forces a re-record and a re-stage.
        orch.invalidateRecord("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::RemoteReap, opts);
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::RemoteReap, opts);
        EXPECT_EQ(w.objectStore().stats().puts, 2);
    });
}

/**
 * Helper: the tier row for @p label. A missing row is an EXPECT
 * failure and yields a zeroed row, so chain-shape regressions fail
 * with context instead of crashing the test.
 */
core::TierBreakdown
tierRow(const core::LatencyBreakdown &bd, const std::string &label)
{
    for (const auto &t : bd.tierHits)
        if (t.tier == label)
            return t;
    ADD_FAILURE() << "no tier row labelled '" << label << "'";
    return core::TierBreakdown{label};
}

TEST(TieredReap, FallbackChainWalksDownThenWarmsUp)
{
    // The tentpole scenario: a fresh worker's first tiered cold start
    // is served by the remote tier; admission lands the bytes in the
    // page cache (with writeback to SSD), so an unflushed cold hits
    // the page cache and a flushed cold falls through to the SSD
    // copy. O_DIRECT SSD serves never pollute the cache — only
    // admission does.
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("pyaes");
        orch.flushHostCaches();
        (void)co_await orch.invoke("pyaes", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;

        // Cold 1: staging modelled a fresh worker, so every window
        // fell through page-cache and SSD to the remote tier.
        auto first = co_await orch.invoke(
            "pyaes", ColdStartMode::TieredReap, opts);
        EXPECT_EQ(first.tierHits.size(), 3u);
        auto remote = tierRow(first, "remote");
        auto ssd = tierRow(first, "local-ssd");
        auto cache = tierRow(first, "page-cache");
        EXPECT_GT(remote.hits, 0);
        EXPECT_EQ(ssd.hits, 0);
        EXPECT_EQ(cache.hits, 0);
        EXPECT_EQ(ssd.misses, remote.hits);
        EXPECT_EQ(cache.misses, remote.hits);
        // Admission populated the SSD tier with everything fetched.
        EXPECT_EQ(ssd.admissions, remote.hits);
        EXPECT_GT(remote.bytes, 0);

        // Cold 2 (no flush): admission left the bytes cache-resident,
        // so the page-cache tier serves without touching the store.
        std::int64_t gets1 = w.objectStore().stats().gets;
        InvokeOptions warmCache;
        warmCache.forceCold = true;
        auto second = co_await orch.invoke(
            "pyaes", ColdStartMode::TieredReap, warmCache);
        EXPECT_GT(tierRow(second, "page-cache").hits, 0);
        EXPECT_EQ(tierRow(second, "local-ssd").hits, 0);
        EXPECT_EQ(tierRow(second, "remote").hits, 0);
        EXPECT_EQ(w.objectStore().stats().gets, gets1);

        // Cold 3 (cache flushed): the written-back SSD copy serves.
        auto third = co_await orch.invoke(
            "pyaes", ColdStartMode::TieredReap, opts);
        EXPECT_GT(tierRow(third, "local-ssd").hits, 0);
        EXPECT_EQ(tierRow(third, "remote").hits, 0);
        EXPECT_EQ(w.objectStore().stats().gets, gets1);

        // Each step down the hierarchy costs more than the one above.
        EXPECT_LT(second.fetchWs, third.fetchWs);
        EXPECT_LT(third.fetchWs, first.fetchWs);
    });
}

TEST(TieredReap, EvictLocalArtifactsFallsBackToRemote)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::TieredReap, opts);
        auto warm = co_await orch.invoke(
            "helloworld", ColdStartMode::TieredReap, opts);
        EXPECT_EQ(tierRow(warm, "remote").hits, 0);

        // Artifact GC: the next cold start walks to the remote tier
        // again and re-admits.
        orch.evictLocalArtifacts("helloworld");
        auto evicted = co_await orch.invoke(
            "helloworld", ColdStartMode::TieredReap, opts);
        EXPECT_GT(tierRow(evicted, "remote").hits, 0);
        auto readmitted = co_await orch.invoke(
            "helloworld", ColdStartMode::TieredReap, opts);
        EXPECT_EQ(tierRow(readmitted, "remote").hits, 0);
        EXPECT_GT(tierRow(readmitted, "local-ssd").hits, 0);
    });
}

TEST(TieredReap, CacheServedFetchDoesNotResurrectLocalCopy)
{
    // Regression: after evicting the local artifacts, a tiered fetch
    // served entirely by a (re-warmed) page cache must NOT mark the
    // SSD copy valid — only full remote admission may. Otherwise the
    // next flushed cold start reads an SSD copy the model says was
    // dropped.
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::TieredReap, opts);

        // Drop the local copy, then re-warm only the page cache via a
        // buffered (WsFileCached) cold start.
        orch.evictLocalArtifacts("helloworld");
        InvokeOptions noflush;
        noflush.forceCold = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::WsFileCached,
                                   noflush);

        // Cache-served tiered fetch: proves nothing about the SSD.
        auto cached = co_await orch.invoke(
            "helloworld", ColdStartMode::TieredReap, noflush);
        EXPECT_GT(tierRow(cached, "page-cache").hits, 0);
        EXPECT_EQ(tierRow(cached, "remote").hits, 0);

        // The next flushed cold must walk to the remote tier — the
        // eviction is still in force.
        auto flushed = co_await orch.invoke(
            "helloworld", ColdStartMode::TieredReap, opts);
        EXPECT_EQ(tierRow(flushed, "local-ssd").hits, 0);
        EXPECT_GT(tierRow(flushed, "remote").hits, 0);
    });
}

TEST(TieredReap, StagesArtifactsOnceLikeRemoteReap)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::TieredReap, opts);
        EXPECT_EQ(w.objectStore().stats().puts, 1);
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::TieredReap, opts);
        EXPECT_EQ(w.objectStore().stats().puts, 1);
        // The windowed remote fetch arrived as ranged GETs.
        EXPECT_GT(w.objectStore().stats().rangedGets, 1);
    });
}

TEST(LoaderRegistry, CustomLoaderIsDispatched)
{
    // The registry is the extension point: swapping a loader changes
    // cold-start behavior with no orchestrator involvement.
    class StubLoader final : public core::loader::SnapshotLoader {
      public:
        explicit StubLoader(int *calls) : calls(calls) {}
        const char *name() const override { return "stub"; }
        bool needsSnapshot() const override { return false; }
        sim::Task<core::LatencyBreakdown>
        load(core::loader::LoadContext ctx) override
        {
            ++*calls;
            core::LatencyBreakdown bd;
            Time t0 = ctx.sim.now();
            co_await ctx.sim.delay(msec(1));
            bd.total = ctx.sim.now() - t0;
            co_return bd;
        }

      private:
        int *calls;
    };

    Simulation sim;
    Worker w(sim);
    int calls = 0;
    auto &orch = w.orchestrator();
    EXPECT_STREQ(
        orch.loaders().loaderFor(ColdStartMode::BootFromScratch)
            .name(),
        "boot");
    orch.loaders().registerLoader(ColdStartMode::BootFromScratch,
                                  std::make_unique<StubLoader>(&calls));
    orch.registerFunction(func::profileByName("helloworld"));
    core::LatencyBreakdown bd;
    runScenario(sim, [&]() -> Task<void> {
        bd = co_await orch.invoke("helloworld",
                                  ColdStartMode::BootFromScratch);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(bd.cold);
    EXPECT_EQ(bd.total, msec(1));
    EXPECT_EQ(orch.stats("helloworld").coldInvocations, 1);
}

TEST(LoaderRegistry, AllModesAreRegistered)
{
    core::loader::LoaderRegistry reg;
    const ColdStartMode all[] = {
        ColdStartMode::BootFromScratch,
        ColdStartMode::VanillaSnapshot,
        ColdStartMode::ParallelPageFaults,
        ColdStartMode::WsFileCached,
        ColdStartMode::Reap,
        ColdStartMode::RemoteReap,
        ColdStartMode::TieredReap,
        ColdStartMode::DedupReap,
        ColdStartMode::BackgroundWarm,
    };
    EXPECT_EQ(reg.modes().size(), 9u);
    for (ColdStartMode m : all) {
        ASSERT_NE(reg.find(m), nullptr);
        // Registry names agree with the mode-name table.
        EXPECT_STREQ(reg.find(m)->name(), coldStartModeName(m));
    }
    EXPECT_STREQ(reg.recordLoader().name(), "record");
}

TEST(Rootfs, BootReadsContainerImage)
{
    Simulation sim;
    Worker w(sim);
    Bytes read_before = 0, read_after = 0;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        read_before = w.disk().stats().bytesRead;
        (void)co_await orch.invoke(
            "helloworld", ColdStartMode::BootFromScratch);
        read_after = w.disk().stats().bytesRead;
    });
    const auto &p = func::profileByName("helloworld");
    // Boot pulled (at least) the configured rootfs slice from disk.
    EXPECT_GE(read_after - read_before, p.rootfsBootRead);
    // And the rootfs file exists with the image's size.
    auto f = w.fileStore().lookup("helloworld/rootfs");
    ASSERT_NE(f, storage::kInvalidFile);
    EXPECT_EQ(w.fileStore().fileSize(f), p.rootfsImage);
}

TEST(Rootfs, FrameworkImagesAreLarger)
{
    const auto &hello = func::profileByName("helloworld");
    const auto &cnn = func::profileByName("cnn_serving");
    const auto &video = func::profileByName("video_processing");
    EXPECT_GT(cnn.rootfsImage, hello.rootfsImage);
    EXPECT_GT(video.rootfsImage, hello.rootfsImage); // Debian image
}

TEST(Rerandomize, AddsInstallCostButPreservesWin)
{
    auto run = [](bool rerandomize) {
        Simulation sim;
        WorkerConfig cfg;
        cfg.reap.rerandomizeLayout = rerandomize;
        Worker w(sim, cfg);
        struct Out {
            Duration reap_total = 0;
            Duration vanilla_total = 0;
            std::int64_t rerands = 0;
        } out;
        runScenario(sim, [&]() -> Task<void> {
            auto &orch = w.orchestrator();
            orch.registerFunction(func::profileByName("helloworld"));
            co_await orch.prepareSnapshot("helloworld");
            orch.flushHostCaches();
            (void)co_await orch.invoke("helloworld",
                                       ColdStartMode::Reap);
            InvokeOptions opts;
            opts.flushPageCache = true;
            opts.forceCold = true;
            auto v = co_await orch.invoke(
                "helloworld", ColdStartMode::VanillaSnapshot, opts);
            auto r = co_await orch.invoke("helloworld",
                                          ColdStartMode::Reap, opts);
            out.vanilla_total = v.total;
            out.reap_total = r.total;
            out.rerands =
                orch.stats("helloworld").layoutRerandomizations;
        });
        return out;
    };
    auto plain = run(false);
    auto secured = run(true);
    EXPECT_EQ(plain.rerands, 0);
    EXPECT_GT(secured.rerands, 0);
    // Security costs a little...
    EXPECT_GT(secured.reap_total, plain.reap_total);
    // ...but well under the vanilla baseline (mitigation is cheap).
    EXPECT_LT(secured.reap_total, secured.vanilla_total / 2);
}

TEST(MemoryAccounting, ResidentBytesTracksInstances)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 1;
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        EXPECT_EQ(c.residentBytes(), 0);
        (void)co_await c.invoke("helloworld");
        EXPECT_GT(c.residentBytes(), 8 * kMiB);
        EXPECT_LT(c.residentBytes(), 40 * kMiB);
    });
}

TEST(MemoryAccounting, ResetStatsClearsCounters)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 1;
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        (void)co_await c.invoke("helloworld");
        EXPECT_EQ(c.stats("helloworld").coldStarts, 1);
        c.resetStats();
        EXPECT_EQ(c.stats("helloworld").coldStarts, 0);
        EXPECT_EQ(c.stats("helloworld").e2eLatencyMs.count(), 0);
    });
}

TEST(AzureWorkload, RunsAndAccounts)
{
    Simulation sim;
    cluster::ClusterConfig ccfg;
    ccfg.workers = 1;
    ccfg.keepAlive = sec(120);
    ccfg.coldStartMode = ColdStartMode::Reap;
    cluster::Cluster c(sim, ccfg);

    cluster::AzureWorkloadConfig wcfg;
    wcfg.functions = 4;
    wcfg.minInterarrival = sec(5);
    wcfg.maxInterarrival = sec(40);
    wcfg.horizon = sec(240);
    cluster::AzureWorkload workload(sim, c, wcfg);
    ASSERT_EQ(workload.functionNames().size(), 4u);

    cluster::AzureWorkloadResult result;
    runScenario(sim, [&]() -> Task<void> {
        result = co_await workload.run();
    });

    EXPECT_GT(result.invocations, 5);
    EXPECT_EQ(result.coldStarts + result.warmHits,
              result.invocations);
    EXPECT_EQ(result.e2eLatencyMs.count(), result.invocations);
    EXPECT_GT(result.avgResidentMb, 0.0);
    EXPECT_GT(result.memoryGbMin, 0.0);
    // Pre-recording keeps measured colds on the fast path: even the
    // worst cold (image_rotate-class, ~260 ms REAP) stays far below
    // its vanilla cold (~760 ms).
    EXPECT_LT(result.e2eLatencyMs.max(), 400.0);
}

TEST(AzureWorkload, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Simulation sim;
        cluster::ClusterConfig ccfg;
        ccfg.workers = 1;
        cluster::Cluster c(sim, ccfg);
        cluster::AzureWorkloadConfig wcfg;
        wcfg.functions = 3;
        wcfg.minInterarrival = sec(5);
        wcfg.maxInterarrival = sec(30);
        wcfg.horizon = sec(120);
        cluster::AzureWorkload w(sim, c, wcfg);
        cluster::AzureWorkloadResult result;
        runScenario(sim, [&]() -> Task<void> {
            result = co_await w.run();
        });
        return result;
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.coldStarts, b.coldStarts);
    EXPECT_DOUBLE_EQ(a.e2eLatencyMs.sum(), b.e2eLatencyMs.sum());
}


TEST(QueueProxy, BoundsConcurrencyAndQueues)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 1;
    cfg.maxConcurrencyPerFunction = 2;
    cluster::Cluster c(sim, cfg);
    c.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        // Warm-up + record so later colds are fast REAP starts.
        (void)co_await c.invoke("helloworld");

        struct Arrival {
            static Task<void>
            run(cluster::Cluster &c, sim::Latch *done)
            {
                (void)co_await c.invoke("helloworld");
                done->arrive();
            }
        };
        sim::Latch done(sim, 6);
        for (int i = 0; i < 6; ++i)
            sim.spawn(Arrival::run(c, &done));
        co_await done.wait();
        // At most the concurrency limit of instances ever existed.
        EXPECT_LE(c.instanceCount("helloworld"), 2);
    });
    const auto &st = c.stats("helloworld");
    // Some arrivals had to queue behind the two in-flight slots.
    EXPECT_GT(st.queueDelayMs.max(), 0.0);
    EXPECT_EQ(st.queueDelayMs.count(), 7); // all admissions sampled
}

TEST(QueueProxy, UnlimitedModeNeverQueues)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 1;
    cluster::Cluster c(sim, cfg); // default: unlimited
    c.deploy(func::profileByName("helloworld"));
    runScenario(sim, [&]() -> Task<void> {
        co_await c.prepareAllSnapshots();
        (void)co_await c.invoke("helloworld");
    });
    EXPECT_EQ(c.stats("helloworld").queueDelayMs.count(), 0);
}

TEST(MemoryCapacity, EvictsLruIdleInstance)
{
    Simulation sim;
    WorkerConfig cfg;
    // Room for roughly one small instance's working set.
    cfg.instanceMemoryCapacity = 16 * kMiB;
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("helloworld");
        co_await orch.prepareSnapshot("pyaes");

        InvokeOptions keep;
        keep.keepWarm = true;
        keep.flushPageCache = true;
        (void)co_await orch.invoke("helloworld",
                                   ColdStartMode::VanillaSnapshot,
                                   keep);
        EXPECT_EQ(orch.instanceCount("helloworld"), 1);

        // Starting pyaes exceeds the budget: helloworld (idle LRU)
        // must be deallocated first.
        (void)co_await orch.invoke(
            "pyaes", ColdStartMode::VanillaSnapshot, keep);
        EXPECT_EQ(orch.instanceCount("helloworld"), 0);
        EXPECT_EQ(orch.instanceCount("pyaes"), 1);
        EXPECT_EQ(orch.capacityEvictions(), 1);
        co_await orch.stopAllInstances("pyaes");
    });
}

TEST(MemoryCapacity, BusyInstancesAreNotEvicted)
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.instanceMemoryCapacity = 24 * kMiB;
    Worker w(sim, cfg);
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("cnn_serving"));
        orch.registerFunction(func::profileByName("pyaes"));
        co_await orch.prepareSnapshot("cnn_serving");
        co_await orch.prepareSnapshot("pyaes");

        // cnn_serving runs for ~200 ms; launch it and immediately
        // cold-start pyaes while it is busy.
        struct Long {
            static Task<void>
            run(core::Orchestrator &orch, sim::Latch *done)
            {
                InvokeOptions keep;
                keep.keepWarm = true;
                (void)co_await orch.invoke(
                    "cnn_serving", ColdStartMode::VanillaSnapshot,
                    keep);
                done->arrive();
            }
        };
        sim::Latch done(sim, 1);
        sim.spawn(Long::run(orch, &done));
        co_await sim.delay(msec(50)); // cnn is mid-flight
        (void)co_await orch.invoke("pyaes",
                                   ColdStartMode::VanillaSnapshot);
        // The busy cnn instance survived; the system ran over budget
        // rather than evicting it.
        EXPECT_EQ(orch.instanceCount("cnn_serving"), 1);
        co_await done.wait();
        co_await orch.stopAllInstances("cnn_serving");
    });
}

TEST(Csv, EscapesAndFormats)
{
    Table t({"name", "value"});
    t.row().cell("plain").cell(static_cast<std::int64_t>(7));
    t.row().cell("with,comma").cell("quote\"inside");
    std::string csv = t.csv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,7\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

} // namespace
} // namespace vhive
