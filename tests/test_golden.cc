/**
 * @file
 * Golden-trace regression harness: every registered ColdStartMode is
 * run through the Fig. 7 per-segment breakdown on helloworld and the
 * exact (nanosecond-integer) output is diffed against a checked-in
 * baseline. Loader or pipeline refactors that shift any published
 * segment fail this test; an intentional recalibration regenerates
 * the baseline:
 *
 *   VHIVE_UPDATE_GOLDEN=1 ./test_golden
 *
 * The companion test asserts the breakdown itself is bit-identical
 * across two independent simulation runs — the determinism the golden
 * diff relies on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/loader/loader.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

#ifndef VHIVE_GOLDEN_DIR
#error "VHIVE_GOLDEN_DIR must point at the checked-in golden files"
#endif

namespace vhive {
namespace {

using core::ColdStartMode;
using core::InvokeOptions;
using core::Worker;
using core::WorkerConfig;
using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

void
appendBreakdown(std::ostringstream &out, const std::string &label,
                const core::LatencyBreakdown &bd)
{
    out << "mode=" << label << " loadVmm=" << bd.loadVmm
        << " fetchWs=" << bd.fetchWs << " installWs=" << bd.installWs
        << " connRestore=" << bd.connRestore
        << " processing=" << bd.processing << " total=" << bd.total
        << " prefetched=" << bd.prefetchedPages
        << " residual=" << bd.residualFaults << "\n";
    for (const auto &t : bd.tierHits) {
        out << "  tier=" << t.tier << " hits=" << t.hits
            << " misses=" << t.misses << " admitted=" << t.admissions
            << " bytes=" << t.bytes << " time=" << t.time << "\n";
    }
}

/**
 * The Fig. 7 walk over every registered mode, rendered as exact
 * integers. One flushed, forced-cold invocation per mode, after a
 * shared record phase; TieredReap is rendered twice — fresh worker
 * (full chain walk to the remote tier) and warmed (admitted local
 * copy) — since tier placement is the mode's design axis.
 */
std::string
renderBreakdowns()
{
    Simulation sim;
    WorkerConfig cfg;
    cfg.objectStore = net::ObjectStoreParams::remote();
    Worker w(sim, cfg);
    std::ostringstream out;
    runScenario(sim, [&]() -> Task<void> {
        auto &orch = w.orchestrator();
        orch.registerFunction(func::profileByName("helloworld"));
        co_await orch.prepareSnapshot("helloworld");
        orch.flushHostCaches();
        // Shared record phase (Sec. 5.2.1).
        (void)co_await orch.invoke("helloworld", ColdStartMode::Reap);

        InvokeOptions opts;
        opts.flushPageCache = true;
        opts.forceCold = true;
        for (ColdStartMode mode : orch.loaders().modes()) {
            const char *label =
                orch.loaders().loaderFor(mode).name();
            if (mode == ColdStartMode::TieredReap ||
                mode == ColdStartMode::DedupReap) {
                // RemoteReap already staged the artifacts, so stage
                // invalidation never ran: evict explicitly to render
                // the fresh-worker chain walk (for DedupReap: the
                // chunked remote path), then the warmed one.
                orch.evictLocalArtifacts("helloworld");
                auto fresh = co_await orch.invoke("helloworld", mode,
                                                  opts);
                appendBreakdown(out, std::string(label) + "[fresh]",
                                fresh);
                auto warmed = co_await orch.invoke("helloworld", mode,
                                                   opts);
                appendBreakdown(out, std::string(label) + "[warmed]",
                                warmed);
                continue;
            }
            auto bd = co_await orch.invoke("helloworld", mode, opts);
            appendBreakdown(out, label, bd);
        }
    });
    return out.str();
}

std::string
goldenPath()
{
    return std::string(VHIVE_GOLDEN_DIR) + "/fig7_breakdown.txt";
}

TEST(GoldenTrace, Fig7BreakdownMatchesCheckedInBaseline)
{
    std::string actual = renderBreakdowns();

    if (std::getenv("VHIVE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(), std::ios::trunc);
        ASSERT_TRUE(out.good())
            << "cannot write " << goldenPath();
        out << actual;
        std::printf("regenerated %s\n", goldenPath().c_str());
        return;
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << " — generate it with VHIVE_UPDATE_GOLDEN=1 ./test_golden";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "per-segment breakdown drifted from the checked-in "
           "baseline.\nIf the change is an intentional model or "
           "calibration change, regenerate\nwith VHIVE_UPDATE_GOLDEN=1 "
           "./test_golden and commit the diff.";
}

TEST(GoldenTrace, BreakdownBitIdenticalAcrossRuns)
{
    // Two independent simulations must render byte-identical output;
    // this is the determinism the golden diff above stands on.
    EXPECT_EQ(renderBreakdowns(), renderBreakdowns());
}

} // namespace
} // namespace vhive
