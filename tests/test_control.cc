/**
 * @file
 * Predictive control plane suite (ROADMAP item 2): the hybrid-
 * histogram predictor's determinism, pre-warm exactly-once accounting
 * at the orchestrator (including an invocation arriving mid-pre-warm),
 * bit-identity of a dormant policy against no policy at all, and
 * digest stability of the parallel kernel across thread counts with
 * an active policy issuing pre-warms.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/control_policy.hh"
#include "cluster/parallel_fleet.hh"
#include "cluster/traffic.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive {
namespace {

using core::ColdStartMode;
using core::InvokeOptions;
using core::Worker;
using core::WorkerConfig;
using sim::Simulation;
using sim::Task;

template <typename Fn>
void
runScenario(Simulation &sim, Fn &&body)
{
    struct Runner {
        static Task<void>
        run(Fn &body)
        {
            co_await body();
        }
    };
    sim.spawn(Runner::run(body));
    sim.run();
}

// ----------------------------------------------------- the predictor

TEST(InterarrivalHistogram, PercentilesAreDeterministicAndOrdered)
{
    cluster::InterarrivalHistogram a, b;
    for (Duration gap : {sec(10), sec(12), sec(9), sec(11), sec(10),
                         sec(13), sec(8)}) {
        a.note(gap);
        b.note(gap);
    }
    // Same feed, same structure: the predictor draws no randomness.
    EXPECT_EQ(a.count(), b.count());
    for (double p : {5.0, 50.0, 95.0, 99.0})
        EXPECT_EQ(a.percentileGap(p), b.percentileGap(p)) << "p" << p;
    EXPECT_LE(a.percentileGap(5), a.percentileGap(50));
    EXPECT_LE(a.percentileGap(50), a.percentileGap(99));
    // 8-13 s gaps span two adjacent 5 s bins: well inside any sane
    // spread limit.
    EXPECT_FALSE(a.outOfBounds(6));
}

TEST(InterarrivalHistogram, DispersedHistoryFallsOutOfBounds)
{
    cluster::InterarrivalHistogram h;
    EXPECT_TRUE(h.outOfBounds(6)); // empty history cannot predict
    for (Duration gap : {msec(2), msec(40), sec(1), sec(30), sec(900),
                         sec(3000)})
        h.note(gap);
    // [p5, p99] spans nearly the whole bucket range.
    EXPECT_TRUE(h.outOfBounds(6));
}

TEST(HybridHistogramPolicy, RegularArrivalsYieldDeterministicPreWarm)
{
    // Two policy instances fed identical arrivals must emit identical
    // action streams, and a regular inter-arrival pattern must yield
    // a PreWarm just ahead of the predicted window.
    cluster::HybridHistogramPolicy a, b;
    Time t = 0;
    for (int i = 0; i < 6; ++i) {
        t = sec(10) * (i + 1);
        a.noteArrival("fn", t);
        b.noteArrival("fn", t);
    }

    cluster::ControlTickContext ctx;
    ctx.workers = 4;
    cluster::ControlFunctionView v;
    v.name = "fn";
    v.homeWorker = 2;
    v.idleInstances = 0;
    v.homeChunkResidency = 1.0;
    ctx.functions.push_back(v);

    bool saw_prewarm = false;
    for (Duration dt = sec(2); dt <= sec(14); dt += sec(2)) {
        ctx.now = t + dt;
        std::vector<cluster::ControlAction> out_a, out_b;
        a.tick(ctx, out_a);
        b.tick(ctx, out_b);
        ASSERT_EQ(out_a.size(), out_b.size()) << "dt=" << dt;
        for (std::size_t i = 0; i < out_a.size(); ++i) {
            EXPECT_EQ(out_a[i].kind, out_b[i].kind);
            EXPECT_EQ(out_a[i].function, out_b[i].function);
            EXPECT_EQ(out_a[i].worker, out_b[i].worker);
            if (out_a[i].kind ==
                cluster::ControlAction::Kind::PreWarm) {
                saw_prewarm = true;
                EXPECT_EQ(out_a[i].worker, 2); // hash-home target
            }
        }
    }
    EXPECT_TRUE(saw_prewarm);
}

TEST(HybridHistogramPolicy, IdleOrWarmingFunctionsAreLeftAlone)
{
    cluster::HybridHistogramPolicy p;
    for (int i = 1; i <= 6; ++i)
        p.noteArrival("fn", sec(10) * i);

    cluster::ControlTickContext ctx;
    ctx.now = sec(68);
    cluster::ControlFunctionView v;
    v.name = "fn";
    v.idleInstances = 1; // already warm: nothing to do
    v.homeChunkResidency = 1.0;
    ctx.functions.push_back(v);
    std::vector<cluster::ControlAction> out;
    p.tick(ctx, out);
    EXPECT_TRUE(out.empty());

    ctx.functions[0].idleInstances = 0;
    ctx.functions[0].warming = true; // pre-warm already in flight
    out.clear();
    p.tick(ctx, out);
    EXPECT_TRUE(out.empty());
}

// -------------------------------------- orchestrator-level pre-warm

/** Worker with a recorded TieredReap snapshot of @p name, gone cold. */
struct ColdHost
{
    Simulation sim;
    WorkerConfig cfg;
    std::unique_ptr<Worker> w;

    explicit ColdHost(const std::string &name)
    {
        w = std::make_unique<Worker>(sim, cfg);
        auto &orch = w->orchestrator();
        orch.registerFunction(func::profileByName(name));
        runScenario(sim, [&]() -> Task<void> {
            co_await orch.prepareSnapshot(name);
            InvokeOptions opts;
            opts.forceCold = true;
            (void)co_await orch.invoke(name, ColdStartMode::TieredReap,
                                       opts);
        });
    }
};

TEST(PreWarm, PreWarmThenInvokeServedExactlyOnce)
{
    ColdHost host("pyaes");
    auto &orch = host.w->orchestrator();
    std::int64_t cold0 = orch.stats("pyaes").coldInvocations;

    core::LatencyBreakdown warm_bd, again_bd;
    runScenario(host.sim, [&]() -> Task<void> {
        auto pre = co_await orch.preWarm("pyaes",
                                         ColdStartMode::BackgroundWarm);
        EXPECT_GT(pre.total, 0);
        EXPECT_EQ(orch.idleInstanceCount("pyaes"), 1);

        InvokeOptions opts;
        opts.keepWarm = true;
        warm_bd = co_await orch.invoke(
            "pyaes", ColdStartMode::BackgroundWarm, opts);
        again_bd = co_await orch.invoke(
            "pyaes", ColdStartMode::BackgroundWarm, opts);
    });

    const auto &st = orch.stats("pyaes");
    // The pre-warm is not an invocation: cold count unchanged, one
    // preWarm recorded, and the first real invocation lands warm on
    // the pre-warmed instance — exactly once.
    EXPECT_EQ(st.coldInvocations, cold0);
    EXPECT_EQ(st.preWarms, 1);
    EXPECT_FALSE(warm_bd.cold);
    EXPECT_TRUE(warm_bd.preWarmHit);
    EXPECT_EQ(st.preWarmHits, 1);
    // The hit is consumed: later warm invocations are ordinary.
    EXPECT_FALSE(again_bd.cold);
    EXPECT_FALSE(again_bd.preWarmHit);
    EXPECT_EQ(st.warmInvocations, 2);
    EXPECT_EQ(orch.wastedPreWarms(), 0);
}

TEST(PreWarm, MidWarmArrivalWaitsAndLandsPartiallyWarmed)
{
    ColdHost host("pyaes");
    auto &orch = host.w->orchestrator();
    std::int64_t cold0 = orch.stats("pyaes").coldInvocations;

    core::LatencyBreakdown bd;
    Duration full_warm = 0;
    runScenario(host.sim, [&]() -> Task<void> {
        struct Pre {
            static Task<void>
            run(core::Orchestrator &orch, Duration *took)
            {
                auto b = co_await orch.preWarm(
                    "pyaes", ColdStartMode::BackgroundWarm);
                *took = b.total;
            }
        };
        host.sim.spawn(Pre::run(orch, &full_warm));
        // The pre-warm pays its CRI control-plane hop before the
        // warming instance exists; step past it, but stay far short
        // of the ~100 ms working-set load so the arrival is genuinely
        // mid-warm.
        for (int i = 0; i < 8 && orch.warmingCount("pyaes") == 0; ++i)
            co_await host.sim.delay(msec(1));
        // The pre-warm is mid-load: the invocation must wait on its
        // ready gate and then serve warm, not start a second cold
        // path — a partially-warmed start.
        EXPECT_EQ(orch.warmingCount("pyaes"), 1);
        InvokeOptions opts;
        opts.keepWarm = true;
        bd = co_await orch.invoke(
            "pyaes", ColdStartMode::BackgroundWarm, opts);
    });

    const auto &st = orch.stats("pyaes");
    EXPECT_GT(full_warm, 0);
    EXPECT_FALSE(bd.cold);
    EXPECT_TRUE(bd.preWarmHit);
    EXPECT_EQ(st.preWarms, 1);
    EXPECT_EQ(st.preWarmHits, 1);
    EXPECT_EQ(st.warmInvocations, 1);
    EXPECT_EQ(st.coldInvocations, cold0);
    EXPECT_EQ(orch.wastedPreWarms(), 0);
}

TEST(PreWarm, UnservedPreWarmIsCountedWasted)
{
    ColdHost host("pyaes");
    auto &orch = host.w->orchestrator();

    runScenario(host.sim, [&]() -> Task<void> {
        (void)co_await orch.preWarm("pyaes",
                                    ColdStartMode::BackgroundWarm);
        (void)co_await orch.stopIdleInstances("pyaes");
    });
    EXPECT_EQ(orch.stats("pyaes").preWarms, 1);
    EXPECT_EQ(orch.stats("pyaes").preWarmHits, 0);
    EXPECT_EQ(orch.wastedPreWarms(), 1);
}

// ----------------------------------------- cluster-level bit identity

struct ClusterRun
{
    std::int64_t invocations = 0;
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t events = 0;
    std::vector<double> e2e;
};

ClusterRun
runTrafficCluster(bool dormant_policy)
{
    Simulation sim;
    cluster::ClusterConfig cfg;
    cfg.workers = 2;
    cfg.coldStartMode = ColdStartMode::TieredReap;
    cfg.sharedSnapshots = true;
    cfg.keepAlive = sec(15);
    cluster::Cluster c(sim, cfg);
    if (dormant_policy) {
        // A policy that observes every tick but never acts must leave
        // the simulation bit-identical to running no policy at all
        // (the structural-determinism contract: ticks are pure).
        c.controlPolicies().registerPolicy(
            cluster::ControlPolicyKind::HybridHistogram,
            std::make_unique<cluster::NoControlPolicy>());
        c.setControlPolicy(cluster::ControlPolicyKind::HybridHistogram);
    }

    cluster::TrafficConfig tcfg;
    tcfg.functions = 6;
    tcfg.tenants = 2;
    tcfg.aggregateRps = 0.5;
    tcfg.horizon = sec(150);
    cluster::TrafficWorkload workload(sim, c, tcfg);

    ClusterRun r;
    cluster::TrafficWorkloadResult wr;
    runScenario(sim, [&]() -> Task<void> {
        wr = co_await workload.run();
    });
    r.invocations = wr.invocations;
    r.coldStarts = wr.coldStarts;
    r.warmHits = wr.warmHits;
    r.events = sim.eventsProcessed();
    r.e2e = wr.e2eLatencyMs.values();
    return r;
}

TEST(ControlCluster, DormantPolicyBitIdenticalToNoPolicy)
{
    ClusterRun base = runTrafficCluster(false);
    ClusterRun dormant = runTrafficCluster(true);

    ASSERT_GT(base.invocations, 5);
    EXPECT_EQ(base.invocations, dormant.invocations);
    EXPECT_EQ(base.coldStarts, dormant.coldStarts);
    EXPECT_EQ(base.warmHits, dormant.warmHits);
    EXPECT_EQ(base.events, dormant.events);
    ASSERT_EQ(base.e2e.size(), dormant.e2e.size());
    for (std::size_t i = 0; i < base.e2e.size(); ++i)
        EXPECT_EQ(base.e2e[i], dormant.e2e[i]) << "sample " << i;
}

TEST(ControlCluster, ActivePolicyPreWarmsAndCutsColds)
{
    auto run = [](cluster::ControlPolicyKind policy) {
        Simulation sim;
        cluster::ClusterConfig cfg;
        cfg.workers = 2;
        cfg.coldStartMode = ColdStartMode::TieredReap;
        cfg.sharedSnapshots = true;
        cfg.keepAlive = sec(15);
        cfg.routingPolicy = cluster::RoutingPolicyKind::LocalityHash;
        cfg.controlPolicy = policy;
        cluster::Cluster c(sim, cfg);

        cluster::TrafficConfig tcfg;
        tcfg.functions = 8;
        tcfg.tenants = 2;
        tcfg.aggregateRps = 0.4;
        tcfg.horizon = sec(240);
        cluster::TrafficWorkload workload(sim, c, tcfg);
        cluster::TrafficWorkloadResult wr;
        runScenario(sim, [&]() -> Task<void> {
            wr = co_await workload.run();
        });
        cluster::FleetStats fs = c.fleetStats();
        EXPECT_EQ(wr.coldStarts + wr.warmHits + wr.failedInvocations,
                  wr.invocations);
        return std::pair<std::int64_t, cluster::FleetStats>(
            wr.coldStarts, fs);
    };

    auto [cold_none, fs_none] =
        run(cluster::ControlPolicyKind::None);
    auto [cold_hybrid, fs_hybrid] =
        run(cluster::ControlPolicyKind::HybridHistogram);

    EXPECT_EQ(fs_none.preWarms, 0);
    EXPECT_GT(fs_hybrid.preWarms, 0);
    EXPECT_GT(fs_hybrid.preWarmHits, 0);
    // The point of the layer: pre-warming converts cold starts.
    EXPECT_LT(cold_hybrid, cold_none);
    // And the waste accounting runs: an always-on fleet integrates
    // idle-warm byte-seconds under either policy.
    EXPECT_GT(fs_hybrid.wastedResidentByteSec, 0.0);
}

// --------------------------------------------------- parallel kernel

TEST(ControlParallel, ActivePolicyDigestStableAcrossThreadCounts)
{
    // The control tick runs in domain 0 against the mirrored view, so
    // an actively pre-warming fleet must stay bit-identical across
    // sim thread counts.
    auto run_fleet = [](int threads) {
        cluster::ParallelFleetConfig cfg;
        cfg.workers = 4;
        cfg.simThreads = threads;
        cfg.coldStartMode = core::ColdStartMode::TieredReap;
        cfg.sharedSnapshots = true;
        cfg.sharedStoreShards = 2;
        cfg.routingPolicy = cluster::RoutingPolicyKind::LocalityHash;
        cfg.controlPolicy = cluster::ControlPolicyKind::HybridHistogram;
        cfg.keepAlive = sec(15);
        cluster::TrafficConfig tc;
        tc.functions = 8;
        tc.tenants = 3;
        tc.aggregateRps = 0.5;
        tc.horizon = sec(150);
        cluster::BurstSpec crowd;
        crowd.kind = cluster::BurstKind::FlashCrowd;
        crowd.tenant = 1;
        crowd.start = sec(50);
        crowd.duration = sec(20);
        crowd.multiplier = 8.0;
        tc.bursts.push_back(crowd);
        cfg.traffic = tc;
        cluster::ParallelFleet fleet(cfg);
        return fleet.run();
    };

    cluster::ParallelFleetResult ref = run_fleet(1);
    ASSERT_GT(ref.invocations, 0);
    // The policy genuinely acted on the parallel kernel.
    EXPECT_GT(ref.preWarms, 0);
    EXPECT_EQ(ref.coldStarts + ref.warmHits, ref.invocations);
    std::uint64_t ref_digest = ref.digest();
    for (int threads : {2, 4, 8}) {
        cluster::ParallelFleetResult r = run_fleet(threads);
        EXPECT_EQ(r.digest(), ref_digest) << "threads=" << threads;
        EXPECT_EQ(r.preWarms, ref.preWarms) << "threads=" << threads;
    }
}

TEST(ControlParallel, NoPolicySpawnsNoControlMachinery)
{
    // controlPolicy=None spawns no tick loop at all, so the tick
    // period must be inert: if any control-plane event ran under
    // None, shrinking the period 20x would perturb the digest.
    auto run_fleet = [](Duration control_period) {
        cluster::ParallelFleetConfig cfg;
        cfg.workers = 3;
        cfg.simThreads = 2;
        cfg.workload.functions = 5;
        cfg.workload.minInterarrival = sec(2);
        cfg.workload.maxInterarrival = sec(20);
        cfg.workload.horizon = sec(90);
        cfg.controlPolicy = cluster::ControlPolicyKind::None;
        cfg.controlPeriod = control_period;
        cluster::ParallelFleet fleet(cfg);
        return fleet.run().digest();
    };
    EXPECT_EQ(run_fleet(sec(2)), run_fleet(msec(100)));
}

} // namespace
} // namespace vhive
