#include "mem/guest_memory.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::mem {

GuestMemory::GuestMemory(sim::Simulation &sim, storage::FileStore &store,
                         std::int64_t total_pages)
    : sim(sim), store(store),
      present(static_cast<size_t>(total_pages), false),
      _totalPages(total_pages)
{
    VHIVE_ASSERT(total_pages > 0);
}

void
GuestMemory::backAnonymous()
{
    _mode = BackingMode::Anonymous;
    memoryFile = storage::kInvalidFile;
    uffd = nullptr;
}

void
GuestMemory::backLazyFile(storage::FileId memory_file)
{
    VHIVE_ASSERT(memory_file != storage::kInvalidFile);
    VHIVE_ASSERT(store.fileSize(memory_file) >=
                 bytesForPages(_totalPages));
    _mode = BackingMode::LazyFile;
    memoryFile = memory_file;
    uffd = nullptr;
    // Mapping a fresh region: nothing is present yet.
    std::fill(present.begin(), present.end(), false);
    _presentPages = 0;
}

void
GuestMemory::backUffd(storage::FileId memory_file, UserFaultFd *fd)
{
    VHIVE_ASSERT(memory_file != storage::kInvalidFile);
    VHIVE_ASSERT(fd != nullptr);
    _mode = BackingMode::Uffd;
    memoryFile = memory_file;
    uffd = fd;
    std::fill(present.begin(), present.end(), false);
    _presentPages = 0;
}

bool
GuestMemory::isPresent(std::int64_t page) const
{
    VHIVE_ASSERT(page >= 0 && page < _totalPages);
    return present[static_cast<size_t>(page)];
}

void
GuestMemory::installRange(std::int64_t page, std::int64_t n_pages)
{
    VHIVE_ASSERT(page >= 0 && page + n_pages <= _totalPages);
    for (std::int64_t p = page; p < page + n_pages; ++p) {
        if (!present[static_cast<size_t>(p)]) {
            present[static_cast<size_t>(p)] = true;
            ++_presentPages;
            ++_stats.pagesInstalledByMonitor;
        }
    }
}

sim::Task<void>
GuestMemory::touchRun(std::int64_t page, std::int64_t n_pages)
{
    VHIVE_ASSERT(page >= 0 && n_pages >= 1 &&
                 page + n_pages <= _totalPages);
    _stats.pagesTouched += n_pages;

    // Walk the run, splitting into present and missing subranges.
    std::int64_t p = page;
    const std::int64_t end = page + n_pages;
    while (p < end) {
        if (present[static_cast<size_t>(p)]) {
            std::int64_t q = p;
            while (q < end && present[static_cast<size_t>(q)])
                ++q;
            _stats.minorFaults += q - p;
            co_await sim.delay(kPresentTouch * (q - p));
            p = q;
        } else {
            std::int64_t q = p;
            while (q < end && !present[static_cast<size_t>(q)])
                ++q;
            std::int64_t missing = q - p;
            ++_stats.majorFaults;
            switch (_mode) {
              case BackingMode::Anonymous:
                co_await faultAnonymous(p, missing);
                p = q;
                break;
              case BackingMode::LazyFile:
                co_await faultLazyFile(p, missing);
                p = q;
                break;
              case BackingMode::Uffd:
                // The monitor may install fewer pages than the whole
                // run; re-scan from p (at least one page is now
                // present, so the loop makes progress).
                co_await faultUffd(p, missing);
                break;
            }
        }
    }
}

sim::Task<void>
GuestMemory::faultAnonymous(std::int64_t page, std::int64_t n)
{
    co_await sim.delay(kZeroFillPerPage * n);
    for (std::int64_t p = page; p < page + n; ++p) {
        present[static_cast<size_t>(p)] = true;
    }
    _presentPages += n;
}

sim::Task<void>
GuestMemory::faultLazyFile(std::int64_t page, std::int64_t n)
{
    // Kernel mmap fault path + disk read of the missing run. The file
    // offset equals the guest-physical offset (identity mapping of the
    // snapshot memory file).
    co_await store.faultRead(memoryFile, bytesForPages(page),
                             bytesForPages(n));
    for (std::int64_t p = page; p < page + n; ++p) {
        if (!present[static_cast<size_t>(p)]) {
            present[static_cast<size_t>(p)] = true;
            ++_presentPages;
        }
    }
}

sim::Task<void>
GuestMemory::faultUffd(std::int64_t page, std::int64_t n)
{
    VHIVE_ASSERT(uffd != nullptr);
    // The monitor is responsible for installing the pages (and calls
    // installRange); when raiseAndWait returns, the pages must be
    // present.
    co_await uffd->raiseAndWait(page, n);
    if (!present[static_cast<size_t>(page)])
        panic("uffd monitor woke faulting thread without installing "
              "page %lld", static_cast<long long>(page));
}

} // namespace vhive::mem
