/**
 * @file
 * TieredPageSource: an ordered fallback chain of PageSources modelling
 * the snapshot-byte storage hierarchy the paper's Sec. 6/7 analysis
 * turns on — host page cache, local SSD, disaggregated object store.
 * Each read probes tiers top-down and is served by the first tier that
 * holds the range; bytes served by a lower tier are admitted into the
 * tiers above (warm-tier admission), so a fleet-fresh worker pays the
 * remote path once and local paths afterwards.
 *
 * Per-tier hit/miss/byte/latency accounting is kept per source and
 * surfaced through PageFetchStats, making cache/storage tiering a
 * measurable Fig. 7-style design axis ("How Low Can You Go?",
 * arXiv:2109.13319, argues cold-start floors live exactly here).
 */

#ifndef VHIVE_MEM_TIERED_SOURCE_HH
#define VHIVE_MEM_TIERED_SOURCE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/page_source.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::mem {

/**
 * A fallback chain of PageSources with warm-tier admission. Reads are
 * served by the highest (first-added) tier containing the range; every
 * probed-but-missing tier records a miss, the serving tier records a
 * hit, and admit hooks of the tiers above the serving one populate
 * them with the fetched range.
 */
class TieredPageSource final : public PageSource
{
  public:
    /** One tier of the chain. */
    struct Tier
    {
        /** Label reported in stats and bench tables. */
        std::string label;

        /** The source serving reads when this tier holds the range. */
        std::unique_ptr<PageSource> source;

        /**
         * Residency test for a range; a null predicate means the tier
         * always holds it (the chain's backstop, e.g. the remote
         * store).
         */
        std::function<bool(Bytes offset, Bytes len)> contains;

        /**
         * Populates this tier with a range served by a lower tier
         * (e.g. a buffered write landing remote bytes in the page
         * cache with asynchronous writeback). Null: not admittable.
         */
        std::function<sim::Task<void>(Bytes offset, Bytes len)> admit;

        /**
         * Notified (synchronously, before the source read) whenever
         * this tier serves a range — the recency signal a byte-budget
         * tracker needs. Null: no one is watching.
         */
        std::function<void(Bytes offset, Bytes len)> onServe;
    };

    explicit TieredPageSource(sim::Simulation &sim) : sim(sim) {}

    /** Append @p tier to the chain (probed after all earlier tiers). */
    void addTier(Tier tier);

    /** Number of tiers in the chain. */
    int tierCount() const { return static_cast<int>(tiers.size()); }

    /**
     * Admission threshold: a range served below the admittable tiers
     * is admitted only on its @p n'th such serve (ReapOptions::
     * admitAfterHits). 1 — the default — admits on first touch, the
     * historical behaviour; higher values keep one-shot ranges out of
     * the warm tiers at the cost of paying the lower tier again.
     * Serves are counted per page, so the threshold is independent of
     * the fetch's window shape (fixed and adaptive windows cut the
     * range differently across cold starts); a range is admitted only
     * once every page it covers has been served from below N times.
     * @p counts, when non-null, holds the per-page serve counters —
     * chains are rebuilt per cold start, so callers that want the
     * threshold to span cold starts must pass persistent storage
     * (e.g. hung off the function state); null uses a chain-local
     * map.
     */
    void setAdmitAfterHits(int n,
                           std::map<Bytes, int> *counts = nullptr);

    /**
     * Chain rows in tier order, followed by any rows the tier sources
     * themselves report (e.g. a chunked backstop's cache/remote
     * split). Plain file/object sources report none, so for the
     * classic chains this is exactly the per-tier rows.
     */
    std::vector<TierStats> tierStats() const override;

    const char *name() const override { return "tiered"; }
    sim::Task<void> read(Bytes offset, Bytes len) override;

  private:
    sim::Simulation &sim;
    std::vector<Tier> tiers;
    std::vector<TierStats> _stats;
    int admitAfterHits = 1;

    /** Lower-tier serves seen per range start (admission gating);
     * points at ownLowServes unless external storage was supplied. */
    std::map<Bytes, int> *lowServes = nullptr;
    std::map<Bytes, int> ownLowServes;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_TIERED_SOURCE_HH
