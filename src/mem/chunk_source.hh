/**
 * @file
 * ChunkPageSource: a PageSource that maps guest-page byte ranges onto
 * a content-addressed chunk manifest (storage::ChunkManifest). Reads
 * are served at chunk granularity from two places:
 *
 *  - the worker's resident chunk cache (storage::ChunkStore): chunks
 *    another cold start — possibly of a *different function* — already
 *    pulled cost only a local copy, which is where cross-function
 *    dedup ("How Low Can You Go?", arXiv:2109.13319) turns into saved
 *    network bytes;
 *  - the remote object store: missing chunks travel as batched ranged
 *    GETs of their *compressed* sizes (net::ObjectStore::getChunks),
 *    pay a per-chunk decompression cost on arrival, and are admitted
 *    into the resident cache.
 *
 * It is a plain PageSource, so PageFetchPipeline's fetch shapes
 * (contiguous, windowed, adaptive) and TieredPageSource composition
 * work on top unchanged. Per-path accounting surfaces through
 * tierStats() as "chunk-cache" / "chunk-remote" rows.
 */

#ifndef VHIVE_MEM_CHUNK_SOURCE_HH
#define VHIVE_MEM_CHUNK_SOURCE_HH

#include <map>
#include <memory>

#include "mem/page_source.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "util/units.hh"

namespace vhive::mem {

/**
 * Worker-wide single-flight table: chunk hash -> gate opened when the
 * in-flight fetch lands. Shared by every ChunkPageSource on a worker,
 * so concurrent cold starts — of the same or different functions —
 * neither transfer a chunk twice nor treat still-in-flight bytes as
 * resident: a reader that needs an in-flight chunk waits for the
 * owning fetch to complete, and the resident cache only ever holds
 * chunks whose bytes have actually arrived.
 */
using ChunkFlights =
    std::map<storage::ChunkHash, std::shared_ptr<sim::Gate>>;

/** Client-side chunk handling costs. */
struct ChunkSourceParams
{
    /** Decompression rate (raw output bytes/sec). */
    double decompressBandwidth = 3e9;

    /** Fixed per-chunk decompression dispatch cost. */
    Duration perChunkDecompress = usec(4);

    /** Copy rate when a chunk is served from the resident cache. */
    double cacheBandwidth = 8e9;

    /** Fixed per-chunk cache lookup + map cost. */
    Duration perChunkCacheCopy = usec(1);

    /** Max chunks coalesced into one batched ranged GET. */
    int batchChunks = 16;
};

/** Aggregate chunk-path counters, readable by loaders and benches. */
struct ChunkFetchStats
{
    /** Chunks served from the resident cache. */
    std::int64_t cacheChunks = 0;

    /** Chunks fetched from the remote store. */
    std::int64_t remoteChunks = 0;

    /** Compressed bytes that crossed the network. */
    Bytes storedBytesFetched = 0;

    /** Raw bytes reassembled from remote chunks. */
    Bytes rawBytesFetched = 0;

    /** Raw bytes served from the resident cache. */
    Bytes rawBytesFromCache = 0;
};

/**
 * PageSource over one artifact manifest. The resident cache and the
 * single-flight table are borrowed (typically the worker-wide
 * instances shared across functions); pass nullptr for a private
 * per-source one.
 */
class ChunkPageSource final : public PageSource
{
  public:
    /**
     * @p scope is the placement scope (function-name hash) stamped on
     * every store request; 0 is fine for unsharded stores.
     */
    ChunkPageSource(sim::Simulation &sim, net::ArtifactStore &store,
                    const storage::ChunkManifest &manifest,
                    storage::ChunkStore *resident_cache,
                    ChunkSourceParams params = ChunkSourceParams{},
                    ChunkFlights *flights = nullptr,
                    std::uint64_t scope = 0);

    const char *name() const override { return "chunked"; }
    sim::Task<void> read(Bytes offset, Bytes len) override;
    std::vector<TierStats> tierStats() const override;

    const ChunkFetchStats &chunkStats() const { return _chunkStats; }

    /**
     * Hold @p owner alive for this source's lifetime. The manifest is
     * borrowed by reference; when it lives inside a shared object that
     * can be dropped concurrently (a function's SnapshotManifests,
     * which Orchestrator::invalidateRecord or a re-record releases
     * while a cold start is still reading), the creator pins that
     * owner here so in-flight reads never see a freed manifest.
     */
    void retain(std::shared_ptr<const void> owner)
    {
        pinned = std::move(owner);
    }

    /** Fetch every chunk of the manifest (bulk artifact transfer). */
    sim::Task<void> readAll();

    /**
     * Background prefetch: fetch every manifest chunk not already
     * resident or in flight, one shard group at a time with a @p pace
     * pause between batches (the chunk-level analogue of
     * PageFetchPipeline::fetchBackground). Never waits on other
     * readers' flights — the point is warming, not serving a read.
     * @p pin_until, when >= 0, stamps every fetched chunk with a soft
     * prefetch shield the PrefetchPinned eviction policy honours
     * until that instant. @return raw bytes fetched.
     */
    sim::Task<Bytes> prefetchMissing(Duration pace,
                                     Time pin_until = -1);

  private:
    /**
     * Fetch one shard's group of missing chunk indices as batched
     * GETs: transfer, decompress, admit, open flight gates. @p pace
     * inserts a pause between batches (background prefetch); @p done,
     * when non-null, is arrived at on completion (concurrent per-shard
     * issue from read()). Admitted chunks are hard-pinned for the
     * duration of the group so a budgeted cache never sheds a chunk
     * mid-fetch; @p pin_until additionally soft-shields them.
     */
    sim::Task<void> fetchGroup(std::vector<size_t> group, Duration pace,
                               sim::Latch *done, Time pin_until = -1);

    sim::Simulation &sim;
    net::ArtifactStore &store;
    const storage::ChunkManifest &manifest;
    std::uint64_t scope;
    storage::ChunkStore *cache;
    storage::ChunkStore ownedCache;
    ChunkFlights *flights;
    ChunkFlights ownedFlights;
    std::shared_ptr<const void> pinned;
    ChunkSourceParams params;
    ChunkFetchStats _chunkStats;
    TierStats cacheRow;
    TierStats remoteRow;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_CHUNK_SOURCE_HH
