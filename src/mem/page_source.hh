/**
 * @file
 * The PageSource abstraction: where snapshot bytes come from when a
 * cold start moves pages into guest memory. The Fig. 7 design walk and
 * the Sec. 7.1 remote-storage scenario differ only in which source
 * backs the fetch:
 *
 *  - BufferedFileSource: pread() through the host page cache
 *    (ParallelPageFaults, WsFileCached).
 *  - DirectFileSource:   O_DIRECT, bypassing the cache (full REAP).
 *  - RemoteObjectSource: bulk object GETs from a disaggregated store
 *    over the datacenter network (RemoteReap).
 *
 * Sources translate byte ranges of their backing object into simulated
 * I/O cost; the PageFetchPipeline composes them into fetch shapes.
 */

#ifndef VHIVE_MEM_PAGE_SOURCE_HH
#define VHIVE_MEM_PAGE_SOURCE_HH

#include <string>
#include <vector>

#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/file_store.hh"
#include "util/units.hh"

namespace vhive::mem {

/**
 * Accounting row for one tier of a tiered fallback chain: which tier
 * served how many reads, how many bytes, and for how long. Plain
 * sources report none; TieredPageSource reports one row per tier.
 */
struct TierStats
{
    std::string label;

    /** Reads served by this tier. */
    std::int64_t hits = 0;

    /** Reads that probed this tier and fell through to a lower one. */
    std::int64_t misses = 0;

    /** Ranges admitted into this tier from a lower tier. */
    std::int64_t admissions = 0;

    /** Bytes served by this tier. */
    Bytes bytes = 0;

    /** Bytes admitted into this tier from below. */
    Bytes bytesAdmitted = 0;

    /** Bytes resident in this tier when the row was sampled. */
    Bytes residentBytes = 0;

    /** High-water mark of bytes resident in this tier. */
    Bytes peakResidentBytes = 0;

    /** Bytes evicted from this tier by budget pressure. */
    Bytes bytesEvicted = 0;

    /** Time spent serving from this tier (source occupancy). */
    Duration time = 0;
};

/**
 * A supplier of snapshot bytes, addressed as ranges of one backing
 * object (a file's extent or a stored object).
 */
class PageSource
{
  public:
    virtual ~PageSource() = default;

    /** Human-readable source name (diagnostics, bench tables). */
    virtual const char *name() const = 0;

    /** Bring [offset, offset+len) in; completes when all bytes did. */
    virtual sim::Task<void> read(Bytes offset, Bytes len) = 0;

    /** Per-tier accounting; empty unless the source is tiered. */
    virtual std::vector<TierStats> tierStats() const { return {}; }
};

/** pread()-path source: fills and benefits from the page cache. */
class BufferedFileSource final : public PageSource
{
  public:
    BufferedFileSource(storage::FileStore &fs, storage::FileId file)
        : fs(fs), file(file)
    {
    }

    const char *name() const override { return "buffered-file"; }
    sim::Task<void> read(Bytes offset, Bytes len) override;

  private:
    storage::FileStore &fs;
    storage::FileId file;
};

/** O_DIRECT source: device cost every time, no cache pollution. */
class DirectFileSource final : public PageSource
{
  public:
    DirectFileSource(storage::FileStore &fs, storage::FileId file)
        : fs(fs), file(file)
    {
    }

    const char *name() const override { return "direct-file"; }
    sim::Task<void> read(Bytes offset, Bytes len) override;

  private:
    storage::FileStore &fs;
    storage::FileId file;
};

/**
 * Remote object-storage source (Sec. 7.1): every read is an object
 * GET paying the store's round trip and service costs, so per-page
 * access collapses while one bulk read amortizes well.
 */
class RemoteObjectSource final : public PageSource
{
  public:
    explicit RemoteObjectSource(net::ArtifactStore &store,
                                net::PlacementKey key = {})
        : store(store), key(key)
    {
    }

    const char *name() const override { return "remote-object"; }
    sim::Task<void> read(Bytes offset, Bytes len) override;

  private:
    net::ArtifactStore &store;
    net::PlacementKey key;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_PAGE_SOURCE_HH
