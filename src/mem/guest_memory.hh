/**
 * @file
 * Guest-physical memory of a MicroVM instance. Pages materialize on
 * first touch according to the backing mode:
 *
 *  - Anonymous:  fresh zero pages (boot-from-scratch path); cheap.
 *  - LazyFile:   mapped over the snapshot's guest memory file; first
 *                touch pays the kernel mmap fault path + a disk read
 *                (vanilla Firecracker snapshot restore, Sec. 2.3).
 *  - Uffd:       registered with a UserFaultFd; faults are delivered to
 *                a userspace monitor that installs content (REAP's
 *                record and prefetch phases, Sec. 5.2).
 *
 * Accesses are expressed as runs of contiguous pages (touchRun), which
 * is the granularity at which the vCPU trace engine walks guest memory
 * and at which kernel readahead/fault-around amortizes misses.
 */

#ifndef VHIVE_MEM_GUEST_MEMORY_HH
#define VHIVE_MEM_GUEST_MEMORY_HH

#include <cstdint>
#include <vector>

#include "mem/uffd.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/file_store.hh"
#include "util/units.hh"

namespace vhive::mem {

/** How guest pages materialize on first touch. */
enum class BackingMode
{
    Anonymous, ///< zero-fill on demand (cold boot)
    LazyFile,  ///< kernel lazy paging from the snapshot memory file
    Uffd,      ///< userspace fault handling via UserFaultFd
};

/** Guest-memory statistics for the experiments. */
struct GuestMemoryStats
{
    std::int64_t majorFaults = 0; ///< misses that needed content
    std::int64_t minorFaults = 0; ///< touches to already-present pages
    std::int64_t pagesTouched = 0;
    std::int64_t pagesInstalledByMonitor = 0;
};

/**
 * Guest-physical memory with page-granular presence tracking.
 */
class GuestMemory
{
  public:
    /**
     * @param sim         Simulation kernel.
     * @param store       File store holding the snapshot memory file.
     * @param total_pages VM memory size in pages (256 MB default VMs).
     */
    GuestMemory(sim::Simulation &sim, storage::FileStore &store,
                std::int64_t total_pages);

    GuestMemory(const GuestMemory &) = delete;
    GuestMemory &operator=(const GuestMemory &) = delete;

    /** Switch to anonymous zero-fill backing (cold boot). */
    void backAnonymous();

    /**
     * Map over the guest-memory snapshot file for kernel lazy paging.
     * Pages become non-present; file offset i maps to guest page i.
     */
    void backLazyFile(storage::FileId memory_file);

    /**
     * Register with a userfault fd: faults are delivered to the monitor
     * that owns @p uffd. Backing file is still needed by the monitor to
     * resolve content, but reads happen on the monitor's side.
     */
    void backUffd(storage::FileId memory_file, UserFaultFd *uffd);

    /**
     * Touch @p n_pages contiguous pages starting at @p page: the only
     * access path for vCPU execution. Present pages cost a TLB-ish
     * nothing; missing pages pay the backing-mode specific fault cost.
     */
    sim::Task<void> touchRun(std::int64_t page, std::int64_t n_pages);

    /**
     * Install pages without faulting (monitor/prefetcher side), e.g.
     * after UFFDIO_COPY. Counts toward footprint.
     */
    void installRange(std::int64_t page, std::int64_t n_pages);

    /** Whether a single page is present. */
    bool isPresent(std::int64_t page) const;

    /** Number of resident pages (the instance's memory footprint). */
    std::int64_t presentPages() const { return _presentPages; }

    /** Total pages of guest memory. */
    std::int64_t totalPages() const { return _totalPages; }

    /** Backing file (kInvalidFile when anonymous). */
    storage::FileId backingFile() const { return memoryFile; }

    /** Current backing mode. */
    BackingMode mode() const { return _mode; }

    const GuestMemoryStats &stats() const { return _stats; }
    void resetStats() { _stats = GuestMemoryStats{}; }

  private:
    sim::Task<void> faultAnonymous(std::int64_t page, std::int64_t n);
    sim::Task<void> faultLazyFile(std::int64_t page, std::int64_t n);
    sim::Task<void> faultUffd(std::int64_t page, std::int64_t n);

    sim::Simulation &sim;
    storage::FileStore &store;
    std::vector<bool> present;
    std::int64_t _totalPages;
    std::int64_t _presentPages = 0;
    BackingMode _mode = BackingMode::Anonymous;
    storage::FileId memoryFile = storage::kInvalidFile;
    UserFaultFd *uffd = nullptr;
    GuestMemoryStats _stats;

    /** Zero-fill fault cost per page (anonymous backing). */
    static constexpr Duration kZeroFillPerPage = usec(1);

    /** Cost of touching an already-present page run. */
    static constexpr Duration kPresentTouch = static_cast<Duration>(100);
};

} // namespace vhive::mem

#endif // VHIVE_MEM_GUEST_MEMORY_HH
