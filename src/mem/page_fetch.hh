/**
 * @file
 * PageFetchPipeline: the one place snapshot pages move through on the
 * way into guest memory. A pipeline binds a PageSource to a fetch
 * shape:
 *
 *  - fetchContiguous(): one bulk read of a contiguous range (REAP's
 *    single WS-file read, the WS-file page-cached fetch, or a remote
 *    bulk GET).
 *  - fetchAndInstallPages(): N strided workers issuing page-sized
 *    reads and installing each page via UFFDIO_COPY as it lands (the
 *    ParallelPageFaults design point, Sec. 5.2 / Fig. 7).
 *  - fetchWindowed(): the range split into fixed-size windows with a
 *    bounded number in flight — N concurrent ranged GETs against the
 *    object store's per-stream bandwidth model, the remote fetch
 *    sweet-spot knob the ROADMAP's batching item calls for.
 *
 * Loaders pick a source + shape instead of open-coding I/O, so a new
 * cold-start design point is a new composition, not orchestrator
 * surgery.
 */

#ifndef VHIVE_MEM_PAGE_FETCH_HH
#define VHIVE_MEM_PAGE_FETCH_HH

#include <cstdint>
#include <vector>

#include "mem/guest_memory.hh"
#include "mem/page_source.hh"
#include "mem/uffd.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::mem {

/** Pipeline accounting, readable by loaders and benches. */
struct PageFetchStats
{
    std::int64_t contiguousFetches = 0;
    std::int64_t pageFetches = 0;
    std::int64_t windowedFetches = 0;

    /** Windows issued across all windowed fetches. */
    std::int64_t windowsIssued = 0;

    Bytes bytesFetched = 0;

    /**
     * Per-tier accounting snapshot from the source (empty unless the
     * source is a TieredPageSource). Invariant: the per-tier byte
     * counts sum to bytesFetched when all traffic is tiered.
     */
    std::vector<TierStats> tiers;
};

/**
 * Moves ranges of a PageSource toward guest memory in a chosen shape.
 * A pipeline is cheap to construct per cold start.
 */
class PageFetchPipeline
{
  public:
    PageFetchPipeline(sim::Simulation &sim, PageSource &source)
        : sim(sim), source(source)
    {
    }

    PageFetchPipeline(const PageFetchPipeline &) = delete;
    PageFetchPipeline &operator=(const PageFetchPipeline &) = delete;

    /** One bulk read of [offset, offset+len). */
    sim::Task<void> fetchContiguous(Bytes offset, Bytes len);

    /**
     * Timed variant: *out (when non-null) receives the elapsed fetch
     * time, measured from first byte requested to last byte landed —
     * usable from an overlapped task whose caller cannot time it.
     */
    sim::Task<void> fetchContiguousTimed(Bytes offset, Bytes len,
                                         Duration *out);

    /**
     * Windowed shape: [offset, offset+len) split into @p windowBytes
     * ranges with at most @p inFlight concurrent source reads (ranged
     * GETs on a remote source). Degenerates to fetchContiguous() when
     * windowBytes is zero or covers the whole range. Moves exactly the
     * same bytes as fetchContiguous() for any (windowBytes, inFlight).
     */
    sim::Task<void> fetchWindowed(Bytes offset, Bytes len,
                                  Bytes windowBytes, int inFlight);

    /** Timed variant of fetchWindowed (see fetchContiguousTimed). */
    sim::Task<void> fetchWindowedTimed(Bytes offset, Bytes len,
                                       Bytes windowBytes, int inFlight,
                                       Duration *out);

    /**
     * ParallelPageFaults shape: @p workers strided tasks issue one
     * page-sized source read per entry of @p pages, pay the
     * UFFDIO_COPY cost, and mark the page present in @p guest.
     */
    sim::Task<void>
    fetchAndInstallPages(const std::vector<std::int64_t> &pages,
                         int workers, UserFaultFd &uffd,
                         GuestMemory &guest);

    const PageFetchStats &stats() const { return _stats; }

  private:
    /** One strided worker of fetchAndInstallPages. */
    sim::Task<void>
    pageWorker(const std::vector<std::int64_t> &pages, size_t begin,
               size_t stride, UserFaultFd &uffd, GuestMemory &guest,
               sim::Latch *done);

    /** One strided worker of fetchWindowed. */
    sim::Task<void> windowWorker(Bytes offset, Bytes len,
                                 Bytes windowBytes, std::int64_t begin,
                                 std::int64_t stride,
                                 sim::Latch *done);

    /** Refresh the per-tier snapshot after a fetch completed. */
    void snapshotTiers() { _stats.tiers = source.tierStats(); }

    sim::Simulation &sim;
    PageSource &source;
    PageFetchStats _stats;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_PAGE_FETCH_HH
