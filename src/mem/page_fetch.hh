/**
 * @file
 * PageFetchPipeline: the one place snapshot pages move through on the
 * way into guest memory. A pipeline binds a PageSource to a fetch
 * shape:
 *
 *  - fetchContiguous(): one bulk read of a contiguous range (REAP's
 *    single WS-file read, the WS-file page-cached fetch, or a remote
 *    bulk GET).
 *  - fetchAndInstallPages(): N strided workers issuing page-sized
 *    reads and installing each page via UFFDIO_COPY as it lands (the
 *    ParallelPageFaults design point, Sec. 5.2 / Fig. 7).
 *  - fetchWindowed(): the range split into fixed-size windows with a
 *    bounded number in flight — N concurrent ranged GETs against the
 *    object store's per-stream bandwidth model, the remote fetch
 *    sweet-spot knob the ROADMAP's batching item calls for. With
 *    windowBytes == 0 the window is sized adaptively: an AIMD
 *    controller grows the window additively while per-GET request
 *    overhead dominates the observed service time and halves it when
 *    a GET takes far longer than its own history predicts (stream
 *    queueing), converging on the sweet spot without knowing the
 *    store's rtt/bandwidth up front.
 *
 * Loaders pick a source + shape instead of open-coding I/O, so a new
 * cold-start design point is a new composition, not orchestrator
 * surgery.
 */

#ifndef VHIVE_MEM_PAGE_FETCH_HH
#define VHIVE_MEM_PAGE_FETCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/guest_memory.hh"
#include "mem/page_source.hh"
#include "mem/uffd.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::mem {

/**
 * AIMD controller constants for the adaptive windowed fetch
 * (fetchWindowed with windowBytes == 0).
 */
struct AdaptiveWindowParams
{
    /** First (and smallest) window probed. */
    Bytes minWindow = 64 * kKiB;

    /** Largest window the controller will grow to. */
    Bytes maxWindow = 4 * kMiB;

    /** Additive increase per completed GET while overhead-bound. */
    Bytes increment = 128 * kKiB;

    /**
     * Stop growing once this fraction of a GET's observed time is
     * spent streaming (the rest being the per-request rtt + service
     * overhead). 0.65 lands the converged window in the sweet-spot
     * band bench_tiered_window_sweep maps for the remote defaults.
     */
    double efficiencyTarget = 0.65;

    /** Multiplicative decrease factor on congestion. */
    double decreaseFactor = 0.5;

    /**
     * A GET slower than this multiple of the model-predicted service
     * time is read as stream queueing -> multiplicative decrease.
     */
    double congestionFactor = 1.8;
};

/** Pipeline accounting, readable by loaders and benches. */
struct PageFetchStats
{
    std::int64_t contiguousFetches = 0;
    std::int64_t pageFetches = 0;
    std::int64_t windowedFetches = 0;

    /** Windows issued across all windowed fetches. */
    std::int64_t windowsIssued = 0;

    /** Adaptive (windowBytes == 0) fetches performed. */
    std::int64_t adaptiveFetches = 0;

    /** Background-priority fetches performed (fetchBackground). */
    std::int64_t backgroundFetches = 0;

    /** Window size the last adaptive fetch converged on. */
    Bytes convergedWindowBytes = 0;

    Bytes bytesFetched = 0;

    /**
     * @name Hedged-request accounting (fixed-window fetches with a
     * hedge delay configured; see setHedgeDelay). bytesFetched counts
     * each logical byte once; hedgedBytes is the extra wire traffic
     * the duplicate GETs caused, so a remote-only source's store-side
     * bytesServed equals bytesFetched + hedgedBytes.
     */
    /// @{

    /** Duplicate window GETs issued after the hedge delay expired. */
    std::int64_t hedgesIssued = 0;

    /** Hedges whose duplicate landed before the original GET. */
    std::int64_t hedgeWins = 0;

    /** Bytes requested by the duplicate GETs (wasted wire traffic). */
    Bytes hedgedBytes = 0;
    /// @}

    /**
     * Per-tier accounting snapshot from the source (empty unless the
     * source is a TieredPageSource). Invariant: the per-tier byte
     * counts sum to bytesFetched when all traffic is tiered.
     */
    std::vector<TierStats> tiers;
};

/**
 * Moves ranges of a PageSource toward guest memory in a chosen shape.
 * A pipeline is cheap to construct per cold start.
 */
class PageFetchPipeline
{
  public:
    PageFetchPipeline(sim::Simulation &sim, PageSource &source)
        : sim(sim), source(source)
    {
    }

    PageFetchPipeline(const PageFetchPipeline &) = delete;
    PageFetchPipeline &operator=(const PageFetchPipeline &) = delete;

    /** One bulk read of [offset, offset+len). */
    sim::Task<void> fetchContiguous(Bytes offset, Bytes len);

    /**
     * Timed variant: *out (when non-null) receives the elapsed fetch
     * time, measured from first byte requested to last byte landed —
     * usable from an overlapped task whose caller cannot time it.
     */
    sim::Task<void> fetchContiguousTimed(Bytes offset, Bytes len,
                                         Duration *out);

    /**
     * Windowed shape: [offset, offset+len) split into @p windowBytes
     * ranges with at most @p inFlight concurrent source reads (ranged
     * GETs on a remote source). windowBytes == 0 sizes windows
     * adaptively (AIMD from observed per-GET rtt/bandwidth; see
     * adaptiveParams()); degenerates to fetchContiguous() when
     * windowBytes is negative or covers the whole range. Moves exactly
     * the same bytes as fetchContiguous() for any (windowBytes,
     * inFlight).
     */
    sim::Task<void> fetchWindowed(Bytes offset, Bytes len,
                                  Bytes windowBytes, int inFlight);

    /** Timed variant of fetchWindowed (see fetchContiguousTimed). */
    sim::Task<void> fetchWindowedTimed(Bytes offset, Bytes len,
                                       Bytes windowBytes, int inFlight,
                                       Duration *out);

    /**
     * Background-priority shape: the AIMD-sized windows of the
     * adaptive fetch, but strictly sequential (one in flight) with a
     * @p pace pause between windows. Moves exactly the same bytes as
     * fetchContiguous(); used by background working-set warming and
     * schedule-driven chunk prefetch, where yielding store streams to
     * foreground cold starts matters more than fetch latency.
     */
    sim::Task<void> fetchBackground(Bytes offset, Bytes len,
                                    Duration pace);

    /** Timed variant of fetchBackground (see fetchContiguousTimed). */
    sim::Task<void> fetchBackgroundTimed(Bytes offset, Bytes len,
                                         Duration pace, Duration *out);

    /** AIMD constants of the adaptive windowed shape (mutable). */
    AdaptiveWindowParams &adaptiveParams() { return adaptive; }

    /**
     * Hedge fixed-size windowed fetches against tail stragglers: a
     * window GET still in flight @p d after issue gets a duplicate
     * GET raced against it, and the window completes on whichever
     * lands first. Loser legs are drained before the fetch returns
     * (they overlap later windows instead of serializing them), and
     * their wire bytes are accounted in stats().hedgedBytes. 0 (the
     * default) disables hedging; the fetch path is then bit-identical
     * to builds without hedging.
     */
    void setHedgeDelay(Duration d) { hedgeDelay = d; }

    /**
     * ParallelPageFaults shape: @p workers strided tasks issue one
     * page-sized source read per entry of @p pages, pay the
     * UFFDIO_COPY cost, and mark the page present in @p guest.
     */
    sim::Task<void>
    fetchAndInstallPages(const std::vector<std::int64_t> &pages,
                         int workers, UserFaultFd &uffd,
                         GuestMemory &guest);

    const PageFetchStats &stats() const { return _stats; }

  private:
    /** One strided worker of fetchAndInstallPages. */
    sim::Task<void>
    pageWorker(const std::vector<std::int64_t> &pages, size_t begin,
               size_t stride, UserFaultFd &uffd, GuestMemory &guest,
               sim::Latch *done);

    /**
     * Join of every racing GET leg one fetchWindowed call spawned;
     * the fetch drains it before returning so no leg outlives the
     * pipeline.
     */
    struct FetchJoin;

    /** First-leg-lands race of one hedged window (shared by legs). */
    struct WindowRace;

    /** One strided worker of fetchWindowed. */
    sim::Task<void> windowWorker(Bytes offset, Bytes len,
                                 Bytes windowBytes, std::int64_t begin,
                                 std::int64_t stride, sim::Latch *done,
                                 FetchJoin *join);

    /** One window read, hedged with a delayed duplicate GET. */
    sim::Task<void> hedgedRead(Bytes off, Bytes n, FetchJoin *join);

    /** One racing GET (primary or the hedge) of a hedged window. */
    sim::Task<void> hedgeLeg(Bytes off, Bytes n,
                             std::shared_ptr<WindowRace> race,
                             bool hedge, FetchJoin *join);

    /** Issues the duplicate GET when the primary outlives the delay. */
    sim::Task<void> hedgeTimer(Bytes off, Bytes n,
                               std::shared_ptr<WindowRace> race,
                               FetchJoin *join);

    /** Shared state of one adaptive fetch's AIMD controller. */
    struct AdaptiveState;

    /** The adaptive (windowBytes == 0) fetch body. */
    sim::Task<void> fetchAdaptive(Bytes offset, Bytes len,
                                  int inFlight);

    /** One in-flight GET of the adaptive fetch. */
    sim::Task<void> adaptiveWorker(Bytes offset, Bytes len,
                                   AdaptiveState *st);

    /** Refresh the per-tier snapshot after a fetch completed. */
    void snapshotTiers() { _stats.tiers = source.tierStats(); }

    sim::Simulation &sim;
    PageSource &source;
    PageFetchStats _stats;
    AdaptiveWindowParams adaptive;

    /** Hedge delay for fixed-size windowed fetches (0 = off). */
    Duration hedgeDelay = 0;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_PAGE_FETCH_HH
