#include "mem/tiered_source.hh"

#include "util/logging.hh"

namespace vhive::mem {

void
TieredPageSource::addTier(Tier tier)
{
    VHIVE_ASSERT(tier.source != nullptr);
    _stats.push_back(TierStats{tier.label});
    tiers.push_back(std::move(tier));
}

void
TieredPageSource::setAdmitAfterHits(int n, std::map<Bytes, int> *counts)
{
    VHIVE_ASSERT(n >= 1);
    admitAfterHits = n;
    lowServes = counts != nullptr ? counts : &ownLowServes;
}

sim::Task<void>
TieredPageSource::read(Bytes offset, Bytes len)
{
    VHIVE_ASSERT(!tiers.empty());
    // Probe top-down; the first tier holding the range serves it.
    size_t serving = tiers.size();
    for (size_t i = 0; i < tiers.size(); ++i) {
        if (!tiers[i].contains || tiers[i].contains(offset, len)) {
            serving = i;
            break;
        }
        ++_stats[i].misses;
    }
    if (serving == tiers.size()) {
        // Every tier declined. Chains must end in a backstop (a tier
        // with a null contains predicate, e.g. the remote store);
        // serving from a tier that just declared it lacks the bytes
        // would corrupt both the data model and the hit accounting.
        fatal("TieredPageSource: no tier holds [%lld, +%lld); the "
              "last tier must be a backstop",
              static_cast<long long>(offset),
              static_cast<long long>(len));
    }

    TierStats &st = _stats[serving];
    ++st.hits;
    st.bytes += len;
    if (tiers[serving].onServe)
        tiers[serving].onServe(offset, len);
    Time t0 = sim.now();
    co_await tiers[serving].source->read(offset, len);
    // Source occupancy: concurrent windows overlap, so summed tier
    // time can exceed wall-clock fetch time.
    st.time += sim.now() - t0;

    // Warm-tier admission: the fetched range populates every
    // admittable tier above the one that served it — but only once
    // the range has been served from below admitAfterHits times
    // (admit-on-N-hits; N=1 admits immediately).
    if (serving == 0)
        co_return;
    bool admittable = false;
    for (size_t i = 0; i < serving; ++i)
        admittable |= static_cast<bool>(tiers[i].admit);
    if (!admittable)
        co_return;
    if (admitAfterHits > 1) {
        // Per-page counting keeps the threshold window-shape
        // independent: admit only when every covered page has been
        // served from below N times, however cold starts happened to
        // cut the range into windows.
        std::map<Bytes, int> &counts =
            lowServes != nullptr ? *lowServes : ownLowServes;
        bool reached = true;
        for (Bytes page = offset / kPageSize,
                   end = (offset + len + kPageSize - 1) / kPageSize;
             page < end; ++page) {
            if (++counts[page] < admitAfterHits)
                reached = false;
        }
        if (!reached)
            co_return;
    }
    for (size_t i = 0; i < serving; ++i) {
        if (!tiers[i].admit)
            continue;
        ++_stats[i].admissions;
        _stats[i].bytesAdmitted += len;
        co_await tiers[i].admit(offset, len);
    }
}

std::vector<TierStats>
TieredPageSource::tierStats() const
{
    std::vector<TierStats> out = _stats;
    // Sources with internal structure (a chunked backstop) report
    // their own rows; append them so the split stays visible through
    // the pipeline. Plain sources report none.
    for (const Tier &t : tiers) {
        for (const TierStats &sub : t.source->tierStats())
            out.push_back(sub);
    }
    return out;
}

} // namespace vhive::mem
