#include "mem/uffd.hh"

#include "util/logging.hh"

namespace vhive::mem {

UserFaultFd::UserFaultFd(sim::Simulation &sim, UffdParams params)
    : sim(sim), _params(params), events(sim)
{
}

sim::Task<void>
UserFaultFd::raiseAndWait(std::int64_t page, std::int64_t run_pages)
{
    VHIVE_ASSERT(run_pages >= 1);
    ++_stats.faultsDelivered;
    _stats.pagesRequested += run_pages;

    // Kernel intercepts the fault and queues the event.
    co_await sim.delay(_params.faultTrap);

    FaultEvent ev;
    ev.page = page;
    ev.runPages = run_pages;
    ev.done = std::make_shared<sim::Gate>(sim);
    ev.raisedAt = sim.now();
    auto done = ev.done;
    events.send(std::move(ev));

    // The faulting thread sleeps until the monitor wakes it.
    co_await done->wait();
    co_await sim.delay(_params.wakeTarget);
}

void
UserFaultFd::sendShutdown()
{
    FaultEvent ev;
    ev.page = -1;
    ev.runPages = 1;
    ev.raisedAt = sim.now();
    events.send(std::move(ev));
}

sim::Task<FaultEvent>
UserFaultFd::nextFault()
{
    FaultEvent ev = co_await events.recv();
    co_await sim.delay(_params.monitorWake);
    co_return ev;
}

sim::Task<void>
UserFaultFd::copyCost(std::int64_t pages, std::int64_t batch)
{
    VHIVE_ASSERT(pages >= 0);
    if (pages == 0)
        co_return;
    if (batch <= 0)
        batch = pages;
    std::int64_t calls = (pages + batch - 1) / batch;
    _stats.copyCalls += calls;
    _stats.pagesInstalled += pages;
    co_await sim.delay(calls * _params.copySyscall +
                       pages * _params.copyPerPage);
}

} // namespace vhive::mem
