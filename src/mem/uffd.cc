#include "mem/uffd.hh"

#include "util/logging.hh"

namespace vhive::mem {

UserFaultFd::UserFaultFd(sim::Simulation &sim, UffdParams params)
    : sim(sim), _params(params), events(sim)
{
}

sim::Task<void>
UserFaultFd::raiseAndWait(std::int64_t page, std::int64_t run_pages)
{
    VHIVE_ASSERT(run_pages >= 1);
    ++_stats.faultsDelivered;
    _stats.pagesRequested += run_pages;

    FaultEvent ev;
    ev.page = page;
    ev.runPages = run_pages;
    ev.done = std::make_shared<sim::Gate>(sim);
    // Maturity instant: when the kernel finishes intercepting the
    // fault and the event becomes visible to the monitor.
    ev.raisedAt = sim.now() + _params.faultTrap;
    auto done = ev.done;

    if (trapOwner) {
        // A leader fault's trap completion (or the dispatcher) is
        // already scheduled at or before our maturity instant and will
        // deliver us: no kernel event of our own. The constant trap
        // cost keeps inTrap monotone in raisedAt.
        inTrap.pushBack(std::move(ev));
        ++_stats.faultsCoalesced;
    } else {
        // Leader: pay the trap cost, deliver ourselves, then sweep up
        // any followers that matured at the same instant.
        trapOwner = true;
        co_await sim.delay(_params.faultTrap);
        ++_stats.trapBatches;
        events.send(std::move(ev));
        drainMatured();
        if (inTrap.empty())
            trapOwner = false;
        else
            sim.spawn(dispatchTraps());
    }

    // The faulting thread sleeps until the monitor wakes it.
    co_await done->wait();
    co_await sim.delay(_params.wakeTarget);
}

void
UserFaultFd::drainMatured()
{
    while (!inTrap.empty() && inTrap.front().raisedAt <= sim.now())
        events.send(inTrap.popFront());
}

sim::Task<void>
UserFaultFd::dispatchTraps()
{
    while (!inTrap.empty()) {
        Time due = inTrap.front().raisedAt;
        if (due > sim.now())
            co_await sim.delay(due - sim.now());
        ++_stats.trapBatches;
        drainMatured();
    }
    trapOwner = false;
}

void
UserFaultFd::sendShutdown()
{
    FaultEvent ev;
    ev.page = -1;
    ev.runPages = 1;
    ev.raisedAt = sim.now();
    events.send(std::move(ev));
}

sim::Task<FaultEvent>
UserFaultFd::nextFault()
{
    FaultEvent ev = co_await events.recv();
    co_await sim.delay(_params.monitorWake);
    co_return ev;
}

sim::Task<void>
UserFaultFd::copyCost(std::int64_t pages, std::int64_t batch)
{
    VHIVE_ASSERT(pages >= 0);
    if (pages == 0)
        co_return;
    if (batch <= 0)
        batch = pages;
    std::int64_t calls = (pages + batch - 1) / batch;
    _stats.copyCalls += calls;
    _stats.pagesInstalled += pages;
    co_await sim.delay(calls * _params.copySyscall +
                       pages * _params.copyPerPage);
}

} // namespace vhive::mem
