#include "mem/page_source.hh"

namespace vhive::mem {

sim::Task<void>
BufferedFileSource::read(Bytes offset, Bytes len)
{
    co_await fs.readBuffered(file, offset, len);
}

sim::Task<void>
DirectFileSource::read(Bytes offset, Bytes len)
{
    co_await fs.readDirect(file, offset, len);
}

sim::Task<void>
RemoteObjectSource::read(Bytes offset, Bytes len)
{
    co_await store.getRange(offset, len, key);
}

} // namespace vhive::mem
