#include "mem/tier_budget.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/logging.hh"

namespace vhive::mem {

TierCacheBudget::TierCacheBudget(Bytes budget,
                                 storage::EvictionPolicyKind kind)
{
    setBudget(budget, kind);
}

void
TierCacheBudget::setBudget(Bytes budget,
                           storage::EvictionPolicyKind k)
{
    VHIVE_ASSERT(budget >= 0);
    _budget = budget;
    kind = k;
    policy = budget > 0 ? &storage::evictionPolicyFor(k) : nullptr;
}

void
TierCacheBudget::registerFile(std::int32_t file, Evictor evict)
{
    evictors.emplace(file, std::move(evict));
}

void
TierCacheBudget::admitted(std::int32_t file, Bytes offset, Bytes len,
                          Time now)
{
    if (len <= 0 || evictors.find(file) == evictors.end())
        return;
    Bytes first = offset / kPageSize;
    Bytes last = (offset + len - 1) / kPageSize;
    for (Bytes seg = first / kSegmentPages;
         seg <= last / kSegmentPages; ++seg) {
        Bytes lo = std::max(first, seg * kSegmentPages);
        Bytes hi = std::min(last, (seg + 1) * kSegmentPages - 1);
        std::uint64_t mask = 0;
        for (Bytes p = lo; p <= hi; ++p)
            mask |= 1ULL << (p - seg * kSegmentPages);
        Segment &s = segments[keyOf(file, seg)];
        std::uint64_t fresh = mask & ~s.pages;
        s.pages |= mask;
        s.lruSeq = ++lruCounter;
        ++s.uses;
        _resident +=
            static_cast<Bytes>(std::popcount(fresh)) * kPageSize;
    }
    _peak = std::max(_peak, _resident);
    enforce(now);
}

void
TierCacheBudget::touched(std::int32_t file, Bytes offset, Bytes len)
{
    if (len <= 0)
        return;
    Bytes first = offset / kPageSize;
    Bytes last = (offset + len - 1) / kPageSize;
    for (Bytes seg = first / kSegmentPages;
         seg <= last / kSegmentPages; ++seg) {
        auto it = segments.find(keyOf(file, seg));
        if (it == segments.end())
            continue;
        it->second.lruSeq = ++lruCounter;
        ++it->second.uses;
    }
}

void
TierCacheBudget::pinFileUntil(std::int32_t file, Time until)
{
    for (auto &[key, seg] : segments)
        if (static_cast<std::int32_t>(key >> 32) == file)
            seg.pinnedUntil = std::max(seg.pinnedUntil, until);
}

void
TierCacheBudget::invalidated(std::int32_t file)
{
    for (auto it = segments.begin(); it != segments.end();) {
        if (static_cast<std::int32_t>(it->first >> 32) == file) {
            _resident -=
                static_cast<Bytes>(std::popcount(it->second.pages)) *
                kPageSize;
            it = segments.erase(it);
        } else {
            ++it;
        }
    }
}

void
TierCacheBudget::enforce(Time now)
{
    if (_budget <= 0 || _resident <= _budget)
        return;
    std::vector<storage::EvictionCandidate> cands;
    cands.reserve(segments.size());
    for (const auto &[key, seg] : segments) {
        storage::EvictionCandidate c;
        c.key = key;
        c.bytes =
            static_cast<Bytes>(std::popcount(seg.pages)) * kPageSize;
        c.lruSeq = seg.lruSeq;
        c.shares = seg.uses;
        c.pinnedUntil = seg.pinnedUntil;
        cands.push_back(c);
    }
    while (_resident > _budget && !cands.empty()) {
        std::ptrdiff_t v = policy->pickVictim(cands, now);
        VHIVE_ASSERT(v >= 0);
        auto vi = static_cast<std::size_t>(v);
        std::uint64_t key = cands[vi].key;
        auto it = segments.find(key);
        VHIVE_ASSERT(it != segments.end());
        auto file = static_cast<std::int32_t>(key >> 32);
        Bytes seg = static_cast<Bytes>(key & 0xffffffffULL);
        Bytes bytes =
            static_cast<Bytes>(std::popcount(it->second.pages)) *
            kPageSize;
        auto ev = evictors.find(file);
        VHIVE_ASSERT(ev != evictors.end());
        // Dropping the whole segment is correct even for partially
        // tracked ones: untracked pages inside it were not resident
        // (or not ours to count), and dropFileCacheRange is idempotent.
        ev->second(seg * kSegmentBytes, kSegmentBytes);
        _resident -= bytes;
        _evicted += bytes;
        ++_evictions;
        segments.erase(it);
        cands[vi] = cands.back();
        cands.pop_back();
    }
}

} // namespace vhive::mem
