#include "mem/page_fetch.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::mem {

sim::Task<void>
PageFetchPipeline::fetchContiguous(Bytes offset, Bytes len)
{
    co_await fetchContiguousTimed(offset, len, nullptr);
}

sim::Task<void>
PageFetchPipeline::fetchContiguousTimed(Bytes offset, Bytes len,
                                        Duration *out)
{
    ++_stats.contiguousFetches;
    _stats.bytesFetched += len;
    Time t0 = sim.now();
    co_await source.read(offset, len);
    snapshotTiers();
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::fetchWindowed(Bytes offset, Bytes len,
                                 Bytes windowBytes, int inFlight)
{
    co_await fetchWindowedTimed(offset, len, windowBytes, inFlight,
                                nullptr);
}

/**
 * Tracks every racing GET leg one fetchWindowed call has spawned.
 * The fetch closes the join after its workers finish, then waits for
 * outstanding (loser) legs, so no leg outlives the fetch frame — and
 * with it the pipeline, which legs dereference.
 */
struct PageFetchPipeline::FetchJoin
{
    explicit FetchJoin(sim::Simulation &sim) : all(sim) {}

    void
    legDone()
    {
        if (--legs == 0 && closed)
            all.openGate();
    }

    sim::Gate all;
    std::int64_t legs = 0;
    bool closed = false;
};

/**
 * One hedged window's race. Held by shared_ptr so a hedge timer that
 * outlives the fetch (its race long since won) still has valid state
 * to check before it quietly expires.
 */
struct PageFetchPipeline::WindowRace
{
    explicit WindowRace(sim::Simulation &sim) : first(sim) {}

    sim::Gate first;
};

sim::Task<void>
PageFetchPipeline::fetchWindowedTimed(Bytes offset, Bytes len,
                                      Bytes windowBytes, int inFlight,
                                      Duration *out)
{
    if (windowBytes < 0 || windowBytes >= len) {
        // One window covering the range is the contiguous shape.
        co_await fetchContiguousTimed(offset, len, out);
        co_return;
    }
    if (windowBytes == 0) {
        // Adaptive mode: AIMD-size the windows from observed per-GET
        // behaviour instead of a caller-chosen constant.
        Time t0 = sim.now();
        co_await fetchAdaptive(offset, len, inFlight);
        snapshotTiers();
        if (out != nullptr)
            *out = sim.now() - t0;
        co_return;
    }
    ++_stats.windowedFetches;
    _stats.bytesFetched += len;
    std::int64_t windows = (len + windowBytes - 1) / windowBytes;
    _stats.windowsIssued += windows;

    Time t0 = sim.now();
    int workers = static_cast<int>(std::min<std::int64_t>(
        std::max(1, inFlight), windows));
    FetchJoin join(sim);
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(windowWorker(offset, len, windowBytes, w, workers,
                               &done, &join));
    }
    co_await done.wait();
    // Workers proceed on each window's first leg; drain the losers
    // before returning so no leg outlives this frame. Every race is
    // won by now, so sleeping hedge timers cannot add legs.
    join.closed = true;
    if (join.legs > 0)
        co_await join.all.wait();
    snapshotTiers();
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::windowWorker(Bytes offset, Bytes len,
                                Bytes windowBytes, std::int64_t begin,
                                std::int64_t stride, sim::Latch *done,
                                FetchJoin *join)
{
    std::int64_t windows = (len + windowBytes - 1) / windowBytes;
    for (std::int64_t i = begin; i < windows; i += stride) {
        Bytes off = offset + i * windowBytes;
        Bytes n = std::min(windowBytes, offset + len - off);
        if (hedgeDelay > 0)
            co_await hedgedRead(off, n, join);
        else
            co_await source.read(off, n);
    }
    done->arrive();
}

sim::Task<void>
PageFetchPipeline::hedgedRead(Bytes off, Bytes n, FetchJoin *join)
{
    auto race = std::make_shared<WindowRace>(sim);
    ++join->legs;
    sim.spawn(hedgeLeg(off, n, race, false, join));
    sim.spawn(hedgeTimer(off, n, race, join));
    co_await race->first.wait();
}

sim::Task<void>
PageFetchPipeline::hedgeLeg(Bytes off, Bytes n,
                            std::shared_ptr<WindowRace> race,
                            bool hedge, FetchJoin *join)
{
    co_await source.read(off, n);
    if (!race->first.isOpen()) {
        if (hedge)
            ++_stats.hedgeWins;
        race->first.openGate();
    }
    join->legDone();
}

sim::Task<void>
PageFetchPipeline::hedgeTimer(Bytes off, Bytes n,
                              std::shared_ptr<WindowRace> race,
                              FetchJoin *join)
{
    co_await sim.delay(hedgeDelay);
    if (race->first.isOpen())
        co_return;
    // The primary leg is still in flight, which keeps the join open
    // and the pipeline alive: safe to issue the duplicate GET.
    ++_stats.hedgesIssued;
    _stats.hedgedBytes += n;
    ++join->legs;
    sim.spawn(hedgeLeg(off, n, race, true, join));
}

/**
 * Shared AIMD controller of one adaptive fetch. Workers observe their
 * own GET (bytes, service time) pairs; two observations with distinct
 * sizes yield running rtt+overhead ("fixed") and bandwidth estimates,
 * from which the controller decides: grow additively while the fixed
 * cost still dominates, halve when a GET takes far longer than the
 * estimates predict (stream queueing behind the bounded link).
 */
struct PageFetchPipeline::AdaptiveState
{
    AdaptiveState(sim::Simulation &sim, const AdaptiveWindowParams &p,
                  int in_flight)
        : params(p), window(p.minWindow), slots(sim, in_flight),
          done(sim)
    {
    }

    void
    observe(Bytes bytes, Duration t)
    {
        if (havePrev && bytes != prevBytes && t != prevTime) {
            double bw = static_cast<double>(bytes - prevBytes) /
                        static_cast<double>(t - prevTime);
            if (bw > 0) {
                bwEst = bw;
                fixedEst = std::max<Duration>(
                    0, t - static_cast<Duration>(
                           static_cast<double>(bytes) / bw));
            }
        }
        havePrev = true;
        prevBytes = bytes;
        prevTime = t;

        if (bwEst > 0) {
            Duration stream = static_cast<Duration>(
                static_cast<double>(bytes) / bwEst);
            Duration expected = fixedEst + stream;
            if (static_cast<double>(t) >
                params.congestionFactor *
                    static_cast<double>(expected)) {
                // Far beyond what the per-GET model predicts: the GET
                // queued for a stream slot. Back off.
                window = std::max<Bytes>(
                    params.minWindow,
                    static_cast<Bytes>(static_cast<double>(window) *
                                       params.decreaseFactor));
                return;
            }
            double stream_frac = static_cast<double>(stream) /
                                 static_cast<double>(t);
            if (stream_frac < params.efficiencyTarget)
                window = std::min(params.maxWindow,
                                  window + params.increment);
        } else {
            // No bandwidth estimate yet: probe upward so successive
            // GETs differ in size and the estimator can solve.
            window = std::min(params.maxWindow,
                              window + params.increment);
        }
    }

    const AdaptiveWindowParams &params;
    Bytes window;
    sim::Semaphore slots;
    sim::Gate done;
    int outstanding = 0;
    bool launcherDone = false;
    std::int64_t windowsIssued = 0;

    bool havePrev = false;
    Bytes prevBytes = 0;
    Duration prevTime = 0;
    double bwEst = 0;       // bytes per nanosecond
    Duration fixedEst = 0;  // per-GET fixed cost estimate
};

sim::Task<void>
PageFetchPipeline::adaptiveWorker(Bytes offset, Bytes len,
                                  AdaptiveState *st)
{
    Time t0 = sim.now();
    co_await source.read(offset, len);
    st->observe(len, sim.now() - t0);
    st->slots.release();
    if (--st->outstanding == 0 && st->launcherDone)
        st->done.openGate();
}

sim::Task<void>
PageFetchPipeline::fetchAdaptive(Bytes offset, Bytes len, int inFlight)
{
    ++_stats.adaptiveFetches;
    _stats.bytesFetched += len;

    AdaptiveState st(sim, adaptive, std::max(1, inFlight));
    Bytes cursor = offset;
    const Bytes end = offset + len;
    while (cursor < end) {
        co_await st.slots.acquire();
        Bytes n = std::min(st.window, end - cursor);
        ++st.outstanding;
        ++st.windowsIssued;
        sim.spawn(adaptiveWorker(cursor, n, &st));
        cursor += n;
    }
    st.launcherDone = true;
    if (st.outstanding > 0)
        co_await st.done.wait();
    _stats.windowsIssued += st.windowsIssued;
    _stats.convergedWindowBytes = st.window;
}

sim::Task<void>
PageFetchPipeline::fetchBackground(Bytes offset, Bytes len,
                                   Duration pace)
{
    co_await fetchBackgroundTimed(offset, len, pace, nullptr);
}

sim::Task<void>
PageFetchPipeline::fetchBackgroundTimed(Bytes offset, Bytes len,
                                        Duration pace, Duration *out)
{
    ++_stats.backgroundFetches;
    _stats.bytesFetched += len;
    Time t0 = sim.now();
    // The adaptive controller sizes the windows, but the shape is the
    // opposite of fetchAdaptive: one GET in flight and a pacing pause
    // between windows, so a concurrent foreground fetch sees at most
    // one background GET ahead of it per stream.
    AdaptiveState st(sim, adaptive, 1);
    Bytes cursor = offset;
    const Bytes end = offset + len;
    while (cursor < end) {
        Bytes n = std::min(st.window, end - cursor);
        Time w0 = sim.now();
        co_await source.read(cursor, n);
        st.observe(n, sim.now() - w0);
        ++st.windowsIssued;
        cursor += n;
        if (pace > 0 && cursor < end)
            co_await sim.delay(pace);
    }
    _stats.windowsIssued += st.windowsIssued;
    _stats.convergedWindowBytes = st.window;
    snapshotTiers();
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::pageWorker(const std::vector<std::int64_t> &pages,
                              size_t begin, size_t stride,
                              UserFaultFd &uffd, GuestMemory &guest,
                              sim::Latch *done)
{
    for (size_t i = begin; i < pages.size(); i += stride) {
        co_await source.read(bytesForPages(pages[i]), kPageSize);
        co_await uffd.copyCost(1, 1);
        guest.installRange(pages[i], 1);
    }
    done->arrive();
}

sim::Task<void>
PageFetchPipeline::fetchAndInstallPages(
    const std::vector<std::int64_t> &pages, int workers,
    UserFaultFd &uffd, GuestMemory &guest)
{
    workers = std::max(1, workers);
    _stats.pageFetches += static_cast<std::int64_t>(pages.size());
    _stats.bytesFetched +=
        bytesForPages(static_cast<std::int64_t>(pages.size()));
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(pageWorker(pages, static_cast<size_t>(w),
                             static_cast<size_t>(workers), uffd, guest,
                             &done));
    }
    co_await done.wait();
    snapshotTiers();
}

} // namespace vhive::mem
