#include "mem/page_fetch.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::mem {

sim::Task<void>
PageFetchPipeline::fetchContiguous(Bytes offset, Bytes len)
{
    co_await fetchContiguousTimed(offset, len, nullptr);
}

sim::Task<void>
PageFetchPipeline::fetchContiguousTimed(Bytes offset, Bytes len,
                                        Duration *out)
{
    ++_stats.contiguousFetches;
    _stats.bytesFetched += len;
    Time t0 = sim.now();
    co_await source.read(offset, len);
    snapshotTiers();
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::fetchWindowed(Bytes offset, Bytes len,
                                 Bytes windowBytes, int inFlight)
{
    co_await fetchWindowedTimed(offset, len, windowBytes, inFlight,
                                nullptr);
}

sim::Task<void>
PageFetchPipeline::fetchWindowedTimed(Bytes offset, Bytes len,
                                      Bytes windowBytes, int inFlight,
                                      Duration *out)
{
    if (windowBytes <= 0 || windowBytes >= len) {
        // One window covering the range is the contiguous shape.
        co_await fetchContiguousTimed(offset, len, out);
        co_return;
    }
    ++_stats.windowedFetches;
    _stats.bytesFetched += len;
    std::int64_t windows = (len + windowBytes - 1) / windowBytes;
    _stats.windowsIssued += windows;

    Time t0 = sim.now();
    int workers = static_cast<int>(std::min<std::int64_t>(
        std::max(1, inFlight), windows));
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(windowWorker(offset, len, windowBytes, w, workers,
                               &done));
    }
    co_await done.wait();
    snapshotTiers();
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::windowWorker(Bytes offset, Bytes len,
                                Bytes windowBytes, std::int64_t begin,
                                std::int64_t stride, sim::Latch *done)
{
    std::int64_t windows = (len + windowBytes - 1) / windowBytes;
    for (std::int64_t i = begin; i < windows; i += stride) {
        Bytes off = offset + i * windowBytes;
        Bytes n = std::min(windowBytes, offset + len - off);
        co_await source.read(off, n);
    }
    done->arrive();
}

sim::Task<void>
PageFetchPipeline::pageWorker(const std::vector<std::int64_t> &pages,
                              size_t begin, size_t stride,
                              UserFaultFd &uffd, GuestMemory &guest,
                              sim::Latch *done)
{
    for (size_t i = begin; i < pages.size(); i += stride) {
        co_await source.read(bytesForPages(pages[i]), kPageSize);
        co_await uffd.copyCost(1, 1);
        guest.installRange(pages[i], 1);
    }
    done->arrive();
}

sim::Task<void>
PageFetchPipeline::fetchAndInstallPages(
    const std::vector<std::int64_t> &pages, int workers,
    UserFaultFd &uffd, GuestMemory &guest)
{
    workers = std::max(1, workers);
    _stats.pageFetches += static_cast<std::int64_t>(pages.size());
    _stats.bytesFetched +=
        bytesForPages(static_cast<std::int64_t>(pages.size()));
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(pageWorker(pages, static_cast<size_t>(w),
                             static_cast<size_t>(workers), uffd, guest,
                             &done));
    }
    co_await done.wait();
    snapshotTiers();
}

} // namespace vhive::mem
