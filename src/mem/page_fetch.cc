#include "mem/page_fetch.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::mem {

sim::Task<void>
PageFetchPipeline::fetchContiguous(Bytes offset, Bytes len)
{
    co_await fetchContiguousTimed(offset, len, nullptr);
}

sim::Task<void>
PageFetchPipeline::fetchContiguousTimed(Bytes offset, Bytes len,
                                        Duration *out)
{
    ++_stats.contiguousFetches;
    _stats.bytesFetched += len;
    Time t0 = sim.now();
    co_await source.read(offset, len);
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
PageFetchPipeline::pageWorker(const std::vector<std::int64_t> &pages,
                              size_t begin, size_t stride,
                              UserFaultFd &uffd, GuestMemory &guest,
                              sim::Latch *done)
{
    for (size_t i = begin; i < pages.size(); i += stride) {
        co_await source.read(bytesForPages(pages[i]), kPageSize);
        co_await uffd.copyCost(1, 1);
        guest.installRange(pages[i], 1);
    }
    done->arrive();
}

sim::Task<void>
PageFetchPipeline::fetchAndInstallPages(
    const std::vector<std::int64_t> &pages, int workers,
    UserFaultFd &uffd, GuestMemory &guest)
{
    workers = std::max(1, workers);
    _stats.pageFetches += static_cast<std::int64_t>(pages.size());
    _stats.bytesFetched +=
        bytesForPages(static_cast<std::int64_t>(pages.size()));
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(pageWorker(pages, static_cast<size_t>(w),
                             static_cast<size_t>(workers), uffd, guest,
                             &done));
    }
    co_await done.wait();
}

} // namespace vhive::mem
