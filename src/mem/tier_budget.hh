/**
 * @file
 * TierCacheBudget: a worker-wide byte budget over the host page-cache
 * warm tier (ROADMAP item 3). The FileStore's per-page cached bits are
 * ground truth for residency; this tracker mirrors the pages that
 * *tiered admission* put there — the bytes the economics layer
 * controls — in 64-page segments, and sheds whole segments through
 * FileStore::dropFileCacheRange when admissions push the tracked
 * bytes past the budget. Victim choice delegates to the same
 * storage::EvictionPolicy registry the chunk caches use.
 *
 * Segments (256 KiB) rather than pages keep the candidate set small
 * and make eviction drop contiguous runs — the fadvise(DONTNEED)
 * shape a real pager would use. A zero budget disables eviction but
 * keeps the resident/peak accounting, so unbudgeted runs report
 * high-water marks while remaining behaviourally identical to
 * historical builds.
 */

#ifndef VHIVE_MEM_TIER_BUDGET_HH
#define VHIVE_MEM_TIER_BUDGET_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "storage/eviction.hh"
#include "util/units.hh"

namespace vhive::mem {

class TierCacheBudget
{
  public:
    /** Pages per tracked segment (64 pages = 256 KiB). */
    static constexpr Bytes kSegmentPages = 64;
    static constexpr Bytes kSegmentBytes = kSegmentPages * kPageSize;

    /** Evicts [offset, offset+len) of one registered file's pages. */
    using Evictor = std::function<void(Bytes offset, Bytes len)>;

    explicit TierCacheBudget(
        Bytes budget = 0,
        storage::EvictionPolicyKind kind =
            storage::EvictionPolicyKind::Lru);

    void setBudget(Bytes budget, storage::EvictionPolicyKind kind);

    Bytes budget() const { return _budget; }
    Bytes residentBytes() const { return _resident; }
    Bytes peakResidentBytes() const { return _peak; }
    Bytes evictedBytes() const { return _evicted; }
    std::int64_t evictions() const { return _evictions; }

    /**
     * Register @p file's evict closure (idempotent). Admissions for
     * unregistered files are ignored — only files wired for eviction
     * are budget-tracked.
     */
    void registerFile(std::int32_t file, Evictor evict);

    /**
     * Record that tiered admission cached [offset, offset+len) of
     * @p file, then enforce the budget. @p now feeds the eviction
     * policy's prefetch-shield clock.
     */
    void admitted(std::int32_t file, Bytes offset, Bytes len,
                  Time now);

    /** Record a page-cache-tier serve (recency + sharing signal). */
    void touched(std::int32_t file, Bytes offset, Bytes len);

    /**
     * Soft prefetch shield: segments of @p file admitted so far stay
     * shielded (PrefetchPinned policy) until @p until.
     */
    void pinFileUntil(std::int32_t file, Time until);

    /**
     * Forget every tracked segment of @p file without calling the
     * evictor — the caller already dropped the pages (dropFileCaches,
     * truncate, artifact eviction).
     */
    void invalidated(std::int32_t file);

  private:
    struct Segment
    {
        std::uint64_t pages = 0; ///< bit i = page (seg*64 + i) cached
        std::uint64_t lruSeq = 0;
        std::int64_t uses = 0;
        Time pinnedUntil = -1;
    };

    static std::uint64_t
    keyOf(std::int32_t file, Bytes seg)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(file))
                << 32) |
               static_cast<std::uint64_t>(seg);
    }

    void enforce(Time now);

    Bytes _budget = 0;
    const storage::EvictionPolicy *policy = nullptr;
    storage::EvictionPolicyKind kind =
        storage::EvictionPolicyKind::Lru;
    std::unordered_map<std::int32_t, Evictor> evictors;
    std::unordered_map<std::uint64_t, Segment> segments;
    std::uint64_t lruCounter = 0;
    Bytes _resident = 0;
    Bytes _peak = 0;
    Bytes _evicted = 0;
    std::int64_t _evictions = 0;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_TIER_BUDGET_HH
