#include "mem/chunk_source.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "util/logging.hh"

namespace vhive::mem {

ChunkPageSource::ChunkPageSource(sim::Simulation &sim,
                                 net::ArtifactStore &store,
                                 const storage::ChunkManifest &manifest,
                                 storage::ChunkStore *resident_cache,
                                 ChunkSourceParams params,
                                 ChunkFlights *flights,
                                 std::uint64_t scope)
    : sim(sim), store(store), manifest(manifest), scope(scope),
      cache(resident_cache != nullptr ? resident_cache : &ownedCache),
      flights(flights != nullptr ? flights : &ownedFlights),
      params(params)
{
    VHIVE_ASSERT(params.batchChunks >= 1);
    cacheRow.label = "chunk-cache";
    remoteRow.label = "chunk-remote";
}

sim::Task<void>
ChunkPageSource::read(Bytes offset, Bytes len)
{
    auto [first, last] = manifest.chunkSpan(offset, len);

    // Classify the span synchronously (no suspension between the
    // residency check and the flight registration): resident chunks
    // cost a local copy; chunks some other read is already fetching
    // are waited for (single-flight — never transferred twice, never
    // counted resident before their bytes arrive); the rest this read
    // fetches itself, registering a flight gate per chunk.
    std::vector<size_t> missing;
    std::vector<std::shared_ptr<sim::Gate>> waits;
    std::vector<storage::ChunkHash> held;
    std::set<storage::ChunkHash> wait_seen;
    std::int64_t cache_chunks = 0, wait_chunks = 0;
    Bytes cache_portion = 0, wait_portion = 0, remote_portion = 0;
    for (size_t i = first; i <= last; ++i) {
        const storage::ChunkRef &ref = manifest.chunks[i];
        Bytes cstart = static_cast<Bytes>(i) * manifest.chunkBytes;
        Bytes portion = std::min(offset + len, cstart + ref.rawBytes) -
                        std::max(offset, cstart);
        if (cache->contains(ref.hash)) {
            // Serve-from-cache: recency for the eviction policy, and
            // a hard pin so a budgeted cache never sheds the chunk
            // between this classification and the copy below.
            cache->touch(ref.hash);
            cache->pin(ref.hash);
            held.push_back(ref.hash);
            ++cache_chunks;
            cache_portion += portion;
            continue;
        }
        auto it = flights->find(ref.hash);
        if (it != flights->end()) {
            if (wait_seen.insert(ref.hash).second)
                waits.push_back(it->second);
            ++wait_chunks;
            wait_portion += portion;
            continue;
        }
        flights->emplace(ref.hash,
                         std::make_shared<sim::Gate>(sim));
        missing.push_back(i);
        remote_portion += portion;
    }

    if (!missing.empty()) {
        ++cacheRow.misses;
        Time t0 = sim.now();
        // Group the missing chunks by the shard that stores them so
        // each batched GET hits exactly one shard. For an unsharded
        // store shardOf() is always 0, collapsing to the historical
        // one-group ordering (bit-identical batches).
        std::map<int, std::vector<size_t>> by_shard;
        for (size_t i : missing) {
            const storage::ChunkRef &ref = manifest.chunks[i];
            by_shard[store.shardOf({ref.hash, scope})].push_back(i);
        }
        // Batched ranged GETs of the compressed bytes, then a
        // decompression pass per arriving batch. Only after a batch
        // lands are its chunks admitted into the resident cache and
        // their flight gates opened. A single group issues inline
        // (bit-identical to the historical unsharded ordering);
        // multiple shard groups issue concurrently, overlapping the
        // per-shard batch RTTs that overlap-aware placement trades
        // for its waits collapse.
        if (by_shard.size() == 1) {
            co_await fetchGroup(std::move(by_shard.begin()->second), 0,
                                nullptr);
        } else {
            sim::Latch done(sim,
                            static_cast<std::int64_t>(by_shard.size()));
            for (auto &[shard, group] : by_shard) {
                (void)shard;
                sim.spawn(fetchGroup(std::move(group), 0, &done));
            }
            co_await done.wait();
        }
        ++remoteRow.hits;
        remoteRow.bytes += remote_portion;
        remoteRow.time += sim.now() - t0;
    }

    if (!waits.empty()) {
        // In-flight elsewhere: wait for the owning fetch to land the
        // bytes, then pay the local copy — honest latency, and the
        // chunk was moved over the network exactly once.
        Time t0 = sim.now();
        for (const auto &gate : waits)
            co_await gate->wait();
        co_await sim.delay(
            params.perChunkCacheCopy * wait_chunks +
            static_cast<Duration>(static_cast<double>(wait_portion) /
                                  params.cacheBandwidth * 1e9));
        ++cacheRow.hits;
        cacheRow.bytes += wait_portion;
        cacheRow.time += sim.now() - t0;
        _chunkStats.cacheChunks += wait_chunks;
        _chunkStats.rawBytesFromCache += wait_portion;
    }

    if (cache_chunks > 0) {
        Time t0 = sim.now();
        co_await sim.delay(
            params.perChunkCacheCopy * cache_chunks +
            static_cast<Duration>(static_cast<double>(cache_portion) /
                                  params.cacheBandwidth * 1e9));
        ++cacheRow.hits;
        cacheRow.bytes += cache_portion;
        cacheRow.time += sim.now() - t0;
        _chunkStats.cacheChunks += cache_chunks;
        _chunkStats.rawBytesFromCache += cache_portion;
    }

    for (storage::ChunkHash h : held)
        cache->unpin(h);
}

sim::Task<void>
ChunkPageSource::fetchGroup(std::vector<size_t> group, Duration pace,
                            sim::Latch *done, Time pin_until)
{
    // Admissions stay hard-pinned until the whole group lands: later
    // batches' budget enforcement must not shed a chunk this fetch
    // just paid for before its reader ever copies it.
    std::vector<storage::ChunkHash> held;
    held.reserve(group.size());
    for (size_t b = 0; b < group.size();
         b += static_cast<size_t>(params.batchChunks)) {
        size_t n = std::min<size_t>(
            static_cast<size_t>(params.batchChunks),
            group.size() - b);
        Bytes stored_sum = 0, raw_sum = 0, compressed_raw = 0;
        for (size_t k = b; k < b + n; ++k) {
            const storage::ChunkRef &ref = manifest.chunks[group[k]];
            stored_sum += ref.storedBytes;
            raw_sum += ref.rawBytes;
            if (ref.storedBytes < ref.rawBytes)
                compressed_raw += ref.rawBytes;
        }
        co_await store.getChunks(static_cast<std::int64_t>(n),
                                 stored_sum,
                                 {manifest.chunks[group[b]].hash,
                                  scope});
        Duration decompress =
            params.perChunkDecompress * static_cast<Duration>(n) +
            static_cast<Duration>(
                static_cast<double>(compressed_raw) /
                params.decompressBandwidth * 1e9);
        co_await sim.delay(decompress);
        for (size_t k = b; k < b + n; ++k) {
            const storage::ChunkRef &ref = manifest.chunks[group[k]];
            cache->addRef(ref, sim.now());
            cache->pin(ref.hash);
            held.push_back(ref.hash);
            if (pin_until >= 0)
                cache->pinUntil(ref.hash, pin_until);
            auto it = flights->find(ref.hash);
            if (it != flights->end()) {
                it->second->openGate();
                flights->erase(it);
            }
        }
        _chunkStats.remoteChunks += static_cast<std::int64_t>(n);
        _chunkStats.storedBytesFetched += stored_sum;
        _chunkStats.rawBytesFetched += raw_sum;
        cacheRow.admissions += static_cast<std::int64_t>(n);
        cacheRow.bytesAdmitted += raw_sum;
        if (pace > 0 && b + n < group.size())
            co_await sim.delay(pace);
    }
    for (storage::ChunkHash h : held)
        cache->unpin(h);
    // Pins held across the group may have blocked reclamation; settle
    // the budget now that they are gone.
    cache->enforceBudget(sim.now());
    if (done != nullptr)
        done->arrive();
}

sim::Task<void>
ChunkPageSource::readAll()
{
    co_await read(0, manifest.rawBytes());
}

sim::Task<Bytes>
ChunkPageSource::prefetchMissing(Duration pace, Time pin_until)
{
    Bytes before = _chunkStats.rawBytesFetched;
    // Claim every chunk neither resident nor in flight (no suspension
    // between the check and the flight registration), grouped by the
    // shard that stores it. Already-resident chunks still get the
    // prefetch shield — the predictor asked for the whole manifest to
    // survive until its window.
    std::map<int, std::vector<size_t>> by_shard;
    for (size_t i = 0; i < manifest.chunks.size(); ++i) {
        const storage::ChunkRef &ref = manifest.chunks[i];
        if (cache->contains(ref.hash)) {
            if (pin_until >= 0)
                cache->pinUntil(ref.hash, pin_until);
            continue;
        }
        if (flights->count(ref.hash))
            continue;
        flights->emplace(ref.hash, std::make_shared<sim::Gate>(sim));
        by_shard[store.shardOf({ref.hash, scope})].push_back(i);
    }
    // Background priority: one shard group at a time, paced batches —
    // unlike read(), which fans groups out for latency.
    for (auto &[shard, group] : by_shard) {
        (void)shard;
        co_await fetchGroup(std::move(group), pace, nullptr,
                            pin_until);
    }
    co_return _chunkStats.rawBytesFetched - before;
}

std::vector<TierStats>
ChunkPageSource::tierStats() const
{
    TierStats c = cacheRow;
    c.residentBytes = cache->storedBytes();
    c.peakResidentBytes = cache->stats().peakStoredBytes;
    c.bytesEvicted = cache->stats().budgetEvictedBytes;
    return {c, remoteRow};
}

} // namespace vhive::mem
