/**
 * @file
 * Model of the Linux userfaultfd mechanism (Sec. 5.2): a guest memory
 * region is registered with a user-fault file descriptor; first-touch
 * faults are delivered as events to a userspace monitor, which resolves
 * them (from any source) and installs pages via UFFDIO_COPY-style
 * operations, then wakes the faulting thread.
 */

#ifndef VHIVE_MEM_UFFD_HH
#define VHIVE_MEM_UFFD_HH

#include <memory>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::mem {

class GuestMemory;

/** One page-fault event delivered to the monitor. */
struct FaultEvent
{
    /** First missing guest page of the faulting access. */
    std::int64_t page = 0;

    /**
     * Number of contiguous missing pages in the faulting access run.
     * The kernel reports a single address; run length stands in for the
     * fault-around/readahead window the monitor may choose to serve.
     */
    std::int64_t runPages = 1;

    /** Completion gate: opened by the monitor after installing pages. */
    std::shared_ptr<sim::Gate> done;

    /** When the fault was raised (for latency accounting). */
    Time raisedAt = 0;
};

/** Cost constants for userfaultfd operations. */
struct UffdParams
{
    /**
     * Kernel fault interception + event queueing cost (paid by the
     * faulting thread).
     */
    Duration faultTrap = usec(25);

    /**
     * Monitor wake-up: epoll return, fault-message read, and the Go
     * runtime dispatching the per-instance monitor goroutine. This is
     * the dominant record-phase overhead (Sec. 6.4).
     */
    Duration monitorWake = usec(160);

    /** ioctl(UFFDIO_COPY/ZEROPAGE) fixed cost per call. */
    Duration copySyscall = usec(8);

    /** Per-page copy + page-table install cost inside UFFDIO_COPY. */
    Duration copyPerPage = static_cast<Duration>(1200);

    /** Waking the faulting vCPU thread. */
    Duration wakeTarget = usec(15);
};

/** Statistics observable by tests and benchmarks. */
struct UffdStats
{
    std::int64_t faultsDelivered = 0;
    std::int64_t pagesRequested = 0;
    std::int64_t copyCalls = 0;
    std::int64_t pagesInstalled = 0;

    /**
     * Kernel events that delivered at least one fault to the monitor
     * channel (a fault's own trap completion, or a burst-dispatcher
     * wake). With batching, a burst of N same-instant faults costs one
     * such event instead of N.
     */
    std::int64_t trapBatches = 0;

    /**
     * Faults that rode along on an already-scheduled trap event
     * instead of scheduling their own (the batching win).
     */
    std::int64_t faultsCoalesced = 0;
};

/**
 * The user-fault file descriptor: a channel of FaultEvents from a
 * registered GuestMemory to a monitor task, plus cost accounting for
 * the install path.
 */
class UserFaultFd
{
  public:
    UserFaultFd(sim::Simulation &sim, UffdParams params = UffdParams{});

    UserFaultFd(const UserFaultFd &) = delete;
    UserFaultFd &operator=(const UserFaultFd &) = delete;

    /**
     * Raise a fault (called by GuestMemory) and wait until the monitor
     * resolves it. Pays the trap cost on the faulting side.
     */
    sim::Task<void> raiseAndWait(std::int64_t page,
                                 std::int64_t run_pages);

    /**
     * Monitor side: block for the next fault event. Pays the monitor
     * wake-up cost.
     */
    sim::Task<FaultEvent> nextFault();

    /** True if a fault event is already queued (non-blocking check). */
    bool hasPending() const { return !events.empty(); }

    /**
     * Queue a shutdown sentinel (page = -1, no gate). Monitor loops
     * exit when they receive it.
     */
    void sendShutdown();

    /** True if @p ev is the shutdown sentinel. */
    static bool isShutdown(const FaultEvent &ev) { return ev.page < 0; }

    /**
     * Monitor side: UFFDIO_COPY cost of installing @p pages pages in
     * batches of @p batch (<=0 means one call for everything). The
     * caller must separately mark pages present in the GuestMemory and
     * open the fault's gate.
     */
    sim::Task<void> copyCost(std::int64_t pages, std::int64_t batch);

    const UffdParams &params() const { return _params; }
    const UffdStats &stats() const { return _stats; }
    void resetStats() { _stats = UffdStats{}; }

  private:
    /** Deliver every in-trap fault whose maturity instant has come. */
    void drainMatured();

    /**
     * Detached coroutine that delivers in-trap faults raised while a
     * leader fault owned the trap; one wake per distinct maturity
     * instant, however many faults matured there.
     */
    sim::Task<void> dispatchTraps();

    sim::Simulation &sim;
    UffdParams _params;
    UffdStats _stats;
    sim::Channel<FaultEvent> events;

    /**
     * Faults past raise but before channel delivery, FIFO. raisedAt
     * holds the maturity instant (raise time + faultTrap); the constant
     * trap cost makes the queue monotone in maturity time.
     */
    sim::SmallRing<FaultEvent, 8> inTrap;

    /**
     * True while some scheduled kernel event (a leader fault's trap
     * completion or the dispatcher) is committed to draining inTrap.
     */
    bool trapOwner = false;
};

} // namespace vhive::mem

#endif // VHIVE_MEM_UFFD_HH
