#include "func/trace_gen.hh"

#include <algorithm>
#include <set>
#include <string>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vhive::func {

namespace {

/** Guest pages below this are reserved (BIOS, early kernel). */
constexpr std::int64_t kStableBase = 512;

/** Mean gap (pages) between placed stable runs. */
constexpr double kGapMean = 2.0;

/** Unique-pool region is this many times sparser than dense packing. */
constexpr double kUniqueSparsity = 3.0;

/** Shape-shifted stable runs use this sparsity (drift modeling). */
constexpr double kShiftSparsity = 4.0;

struct Placement
{
    std::vector<AccessRun> runs;
    std::int64_t cursorEnd = 0;
    std::int64_t pages = 0;
};

/**
 * Place @p total pages as runs with geometric lengths starting at
 * @p base, separated by geometric gaps. Dense, deterministic layout.
 */
Placement
placeSequential(Rng &rng, std::int64_t base, std::int64_t total,
                double contig_mean, Phase phase, bool stable)
{
    Placement out;
    std::int64_t cursor = base;
    std::int64_t placed = 0;
    while (placed < total) {
        std::int64_t len =
            std::min<std::int64_t>(rng.geometric(contig_mean),
                                   total - placed);
        out.runs.push_back({cursor, len, 0, phase, stable});
        placed += len;
        cursor += len + rng.geometric(kGapMean);
    }
    out.cursorEnd = cursor;
    out.pages = placed;
    return out;
}

/**
 * Place @p total pages as runs at random offsets inside
 * [base, base+region), avoiding pages already in @p used. Models
 * per-invocation allocations whose placement varies with the input.
 */
Placement
placeScattered(Rng &rng, std::int64_t base, std::int64_t region,
               std::int64_t total, double contig_mean, bool stable,
               std::set<std::int64_t> &used)
{
    Placement out;
    std::int64_t placed = 0;
    std::int64_t guard = 0;
    while (placed < total) {
        std::int64_t len =
            std::min<std::int64_t>(rng.geometric(contig_mean),
                                   total - placed);
        std::int64_t start =
            base + rng.uniformInt(0, std::max<std::int64_t>(
                                         1, region - len));
        bool clash = false;
        for (std::int64_t p = start; p < start + len; ++p) {
            if (used.count(p)) {
                clash = true;
                break;
            }
        }
        if (clash) {
            if (++guard > 64 * total)
                panic("unique-page placement cannot find free space");
            continue;
        }
        for (std::int64_t p = start; p < start + len; ++p)
            used.insert(p);
        out.runs.push_back({start, len, 0, Phase::Processing, stable});
        placed += len;
    }
    out.pages = placed;
    return out;
}

} // namespace

std::vector<std::int64_t>
InvocationTrace::touchedPages() const
{
    std::vector<std::int64_t> pages;
    for (const auto &r : runs)
        for (std::int64_t p = r.page; p < r.page + r.pages; ++p)
            pages.push_back(p);
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    return pages;
}

ReuseStats
comparePageSets(const InvocationTrace &a, const InvocationTrace &b)
{
    auto pa = a.touchedPages();
    auto pb = b.touchedPages();
    ReuseStats out;
    size_t i = 0, j = 0;
    while (i < pa.size() && j < pb.size()) {
        if (pa[i] == pb[j]) {
            ++out.samePages;
            ++i;
            ++j;
        } else if (pa[i] < pb[j]) {
            ++out.onlyFirst;
            ++i;
        } else {
            ++out.onlySecond;
            ++j;
        }
    }
    out.onlyFirst += static_cast<std::int64_t>(pa.size() - i);
    out.onlySecond += static_cast<std::int64_t>(pb.size() - j);
    return out;
}

double
averageContiguity(const std::vector<std::int64_t> &sorted_pages)
{
    if (sorted_pages.empty())
        return 0.0;
    std::int64_t streaks = 1;
    for (size_t i = 1; i < sorted_pages.size(); ++i)
        if (sorted_pages[i] != sorted_pages[i - 1] + 1)
            ++streaks;
    return static_cast<double>(sorted_pages.size()) /
           static_cast<double>(streaks);
}

InvocationTrace
TraceGenerator::invocation(const FunctionProfile &profile,
                           std::int64_t invocation_id) const
{
    const std::int64_t total_vm_pages = pagesForBytes(profile.vmMemory);
    const std::int64_t stable_total = profile.stablePages();
    const std::int64_t unique_total = profile.uniquePages();
    const std::int64_t shift_total = static_cast<std::int64_t>(
        static_cast<double>(stable_total) * profile.stableDriftFrac);
    const std::int64_t common_total = stable_total - shift_total;
    const std::int64_t infra_total =
        std::min(profile.infraPages(), common_total);

    // 1. Common stable pool: same for every invocation.
    Rng stable_rng(rootSeed, profile.name + "/stable");
    Placement common =
        placeSequential(stable_rng, kStableBase, common_total,
                        profile.contiguityMean, Phase::Processing,
                        true);

    std::set<std::int64_t> used;
    for (const auto &r : common.runs)
        for (std::int64_t p = r.page; p < r.page + r.pages; ++p)
            used.insert(p);

    // 2. Shape-shifted stable slice: depends on the input's shape.
    std::int64_t shift_base = common.cursorEnd + 64;
    std::int64_t shift_region = static_cast<std::int64_t>(
        static_cast<double>(shift_total) *
        (1.0 + kGapMean / profile.contiguityMean) * kShiftSparsity);
    Placement shifted;
    if (shift_total > 0) {
        Rng shape_rng(rootSeed, profile.name + "/shape/" +
                                    std::to_string(invocation_id));
        shifted = placeScattered(shape_rng, shift_base, shift_region,
                                 shift_total, profile.contiguityMean,
                                 true, used);
    }

    // 3. Unique pool: input buffers and allocation tails.
    std::int64_t unique_base = shift_base + shift_region + 64;
    std::int64_t unique_region = static_cast<std::int64_t>(
        static_cast<double>(unique_total) *
        (1.0 + kGapMean / profile.uniqueContiguityMean) *
        kUniqueSparsity);
    // Clamp to the VM: dense regions overlap more across invocations,
    // which mirrors the guest allocator reusing pages.
    unique_region = std::min(unique_region,
                             total_vm_pages - unique_base - 64);
    VHIVE_ASSERT(unique_region > unique_total);
    Placement unique;
    if (unique_total > 0) {
        Rng unique_rng(rootSeed, profile.name + "/unique/" +
                                     std::to_string(invocation_id));
        unique = placeScattered(unique_rng, unique_base, unique_region,
                                unique_total,
                                profile.uniqueContiguityMean, false,
                                used);
    }

    // 4. Assemble: infra runs first (connection restoration), then the
    // remaining stable runs in a function-deterministic shuffled order,
    // with unique runs interleaved at input-dependent positions.
    InvocationTrace trace;
    trace.stablePageCount = common.pages + shifted.pages;
    trace.uniquePageCount = unique.pages;

    std::vector<AccessRun> infra_runs;
    std::vector<AccessRun> body;
    std::int64_t infra_pages = 0;
    for (auto &r : common.runs) {
        if (infra_pages < infra_total) {
            r.phase = Phase::ConnectionRestore;
            infra_pages += r.pages;
            infra_runs.push_back(r);
        } else {
            body.push_back(r);
        }
    }
    for (const auto &r : shifted.runs)
        body.push_back(r);

    // Function-deterministic access order for the recurring part: the
    // same code touches the same pages in the same order each time.
    Rng order_rng(rootSeed, profile.name + "/order");
    order_rng.shuffle(static_cast<std::int64_t>(body.size()),
                      [&](std::int64_t i, std::int64_t j) {
                          std::swap(body[static_cast<size_t>(i)],
                                    body[static_cast<size_t>(j)]);
                      });

    // Interleave unique runs at input-dependent positions.
    Rng mix_rng(rootSeed, profile.name + "/mix/" +
                              std::to_string(invocation_id));
    for (const auto &r : unique.runs) {
        auto pos = static_cast<size_t>(mix_rng.uniformInt(
            0, static_cast<std::int64_t>(body.size())));
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(pos), r);
    }

    trace.runs.reserve(infra_runs.size() + body.size());
    for (const auto &r : infra_runs)
        trace.runs.push_back(r);
    for (const auto &r : body)
        trace.runs.push_back(r);

    // 5. Spread the warm execution time over the processing runs.
    std::int64_t body_count = static_cast<std::int64_t>(body.size());
    if (body_count > 0) {
        Duration slice = profile.warmExec / body_count;
        Duration rem = profile.warmExec - slice * body_count;
        for (size_t i = infra_runs.size(); i < trace.runs.size(); ++i)
            trace.runs[i].computeAfter = slice;
        trace.runs.back().computeAfter += rem;
    }
    return trace;
}

InvocationTrace
TraceGenerator::boot(const FunctionProfile &profile) const
{
    const std::int64_t total_vm_pages = pagesForBytes(profile.vmMemory);
    const std::int64_t boot_total =
        std::min(pagesForBytes(profile.bootFootprint), total_vm_pages);

    // Boot covers the whole stable pool (code and data that the
    // invocation later reuses)...
    InvocationTrace inv0 = invocation(profile, 0);
    std::set<std::int64_t> used;
    InvocationTrace trace;
    for (const auto &r : inv0.runs) {
        if (!r.stable)
            continue;
        trace.runs.push_back(
            {r.page, r.pages, 0, Phase::Processing, true});
        for (std::int64_t p = r.page; p < r.page + r.pages; ++p)
            used.insert(p);
    }
    std::int64_t covered =
        static_cast<std::int64_t>(used.size());

    // ...plus everything only boot and init touch, swept in large
    // sequential chunks from the bottom of memory.
    std::int64_t page = 0;
    constexpr std::int64_t kBootRun = 32;
    while (covered < boot_total && page < total_vm_pages) {
        std::int64_t len = 0;
        while (len < kBootRun && page + len < total_vm_pages &&
               !used.count(page + len) && covered + len < boot_total) {
            ++len;
        }
        if (len > 0) {
            trace.runs.push_back(
                {page, len, 0, Phase::Processing, true});
            covered += len;
        }
        page += len ? len : 1;
    }
    trace.stablePageCount = covered;
    trace.uniquePageCount = 0;

    // Boot + init compute, spread across the trace.
    if (!trace.runs.empty()) {
        Duration total = profile.bootTime + profile.initTime;
        Duration slice =
            total / static_cast<std::int64_t>(trace.runs.size());
        for (auto &r : trace.runs)
            r.computeAfter = slice;
    }
    return trace;
}

} // namespace vhive::func
