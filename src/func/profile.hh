/**
 * @file
 * Calibrated models of the FunctionBench workloads (Table 1). Each
 * profile captures the handful of measurable properties the paper's
 * characterization reports per function: warm execution time, cold-boot
 * memory footprint (Fig. 4, blue), snapshot-restore working set
 * (Fig. 4, red), page-run contiguity (Fig. 3), the fraction of pages
 * unique to an invocation (Fig. 5), and input size (functions with
 * large inputs fetch them from an S3-like store, Sec. 6.1).
 */

#ifndef VHIVE_FUNC_PROFILE_HH
#define VHIVE_FUNC_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace vhive::func {

/**
 * SeBS-style function classes: generator families whose drawn profiles
 * stay inside a declared envelope (see classEnvelope), so workloads
 * can mix synthetic-but-plausible functions of a known character
 * instead of only the ten hand-calibrated FunctionBench profiles.
 */
enum class FunctionClass
{
    /** A hand-calibrated FunctionBench profile (no generator). */
    Generic,

    /**
     * ML inference: large read-mostly working sets (model weights),
     * tiny per-invocation unique fraction — the dedup-heavy,
     * prefetch-friendly end of the spectrum — and long framework
     * init.
     */
    MlInference,

    /**
     * Media transforms: streaming writes over the input, so a large
     * unique (allocation) fraction and little cross-invocation reuse;
     * moderate inputs fetched from the store.
     */
    Media,

    /**
     * ETL / data wrangling: bursty large inputs dominate, moderate
     * working sets and reuse.
     */
    Etl,
};

/** Short class slug ("generic", "ml", "media", "etl"). */
const char *functionClassName(FunctionClass cls);

/**
 * Declared generator envelope of one function class: every profile
 * makeClassProfile() draws stays inside these bounds (inclusive), for
 * any seed and index — the property the chaos/property suites check.
 */
struct ClassEnvelope
{
    Bytes minWorkingSet = 0;
    Bytes maxWorkingSet = 0;
    double minUniqueFrac = 0;
    double maxUniqueFrac = 0;
    double minContiguity = 0;
    double maxContiguity = 0;
    Bytes minInput = 0;
    Bytes maxInput = 0;
    double minWarmMs = 0;
    double maxWarmMs = 0;
    double minInitMs = 0;
    double maxInitMs = 0;
    Bytes minBootFootprint = 0;
    Bytes maxBootFootprint = 0;
};

/** The envelope of @p cls (Generic spans the FunctionBench pool). */
const ClassEnvelope &classEnvelope(FunctionClass cls);

/** Static model of one serverless function. */
struct FunctionProfile
{
    std::string name;
    std::string description;

    /** Generator class this profile was drawn from. */
    FunctionClass cls = FunctionClass::Generic;

    /** Warm (memory-resident) invocation processing time. */
    Duration warmExec = 0;

    /** Guest memory size of the MicroVM (Sec. 6.1: 256 MB VMs). */
    Bytes vmMemory = 256 * kMiB;

    /**
     * Memory footprint after cold boot plus one invocation (Fig. 4,
     * 148-256 MB): guest OS boot, agents, runtime init and the
     * invocation itself.
     */
    Bytes bootFootprint = 0;

    /**
     * Pages accessed while serving one invocation from a restored
     * snapshot (Fig. 4, 8-99 MB) — the REAP working set, including
     * guest infra pages.
     */
    Bytes workingSet = 0;

    /**
     * Subset of the stable working set touched during gRPC connection
     * restoration: guest kernel network stack + agents (~up to 8 MB,
     * Sec. 4.4).
     */
    Bytes infraSet = 5 * kMiB;

    /** Fraction of accessed pages unique to an invocation (Fig. 5). */
    double uniqueFrac = 0.02;

    /** Mean contiguous-run length of stable accesses (Fig. 3). */
    double contiguityMean = 2.5;

    /** Mean contiguous-run length of unique (allocation) accesses. */
    double uniqueContiguityMean = 3.5;

    /**
     * Fraction of the stable set that shifts when the input shape
     * differs (the video_processing aspect-ratio effect, Sec. 6.3).
     */
    double stableDriftFrac = 0.0;

    /** Input payload fetched from the object store (0 = none). */
    Bytes inputSize = 0;

    /**
     * Size of the function's OCI (container) image, mounted as the
     * VM's root filesystem via device-mapper during boot (Sec. 6.1).
     */
    Bytes rootfsImage = 180 * kMiB;

    /** Bytes of the rootfs actually read while booting and initing. */
    Bytes rootfsBootRead = 48 * kMiB;

    /** Guest boot time (kernel + agents) for boot-from-scratch. */
    Duration bootTime = msec(900);

    /** User-code initialization time (imports, model loading). */
    Duration initTime = msec(100);

    /** Derived: total pages accessed per invocation. */
    std::int64_t wsPages() const { return pagesForBytes(workingSet); }

    /** Derived: stable (recurring) pages per invocation. */
    std::int64_t
    stablePages() const
    {
        return static_cast<std::int64_t>(
            static_cast<double>(wsPages()) * (1.0 - uniqueFrac));
    }

    /** Derived: per-invocation unique pages. */
    std::int64_t uniquePages() const
    {
        return wsPages() - stablePages();
    }

    /** Derived: infra pages touched during connection restoration. */
    std::int64_t infraPages() const { return pagesForBytes(infraSet); }
};

/**
 * The ten functions evaluated in the paper: nine FunctionBench
 * workloads plus helloworld (Table 1). Values are calibrated so the
 * simulated Figs. 2-9 land in the paper's reported ranges; see
 * DESIGN.md and EXPERIMENTS.md.
 */
const std::vector<FunctionProfile> &functionBench();

/** Look up a profile by name; fatal() if absent. */
const FunctionProfile &profileByName(const std::string &name);

/**
 * Draw profile @p idx of class @p cls: every property is sampled
 * uniformly inside the class envelope from the named sub-stream
 * ("class/<slug>/<idx>") of @p seed, so the same (cls, seed, idx)
 * always yields the same profile and distinct indices are
 * independent. Generic ignores the seed and cycles the
 * hand-calibrated FunctionBench pool.
 */
FunctionProfile makeClassProfile(FunctionClass cls,
                                 std::uint64_t seed, int idx);

} // namespace vhive::func

#endif // VHIVE_FUNC_PROFILE_HH
