#include "func/profile.hh"

#include "util/logging.hh"

namespace vhive::func {

namespace {

FunctionProfile
make(const std::string &name, const std::string &desc, double warm_ms,
     double boot_mb, double ws_mb, double unique_frac, double contig,
     double input_mb, double init_ms)
{
    FunctionProfile p;
    p.name = name;
    p.description = desc;
    p.warmExec = msec(warm_ms);
    p.bootFootprint = static_cast<Bytes>(boot_mb * kMiB);
    p.workingSet = static_cast<Bytes>(ws_mb * kMiB);
    p.uniqueFrac = unique_frac;
    p.contiguityMean = contig;
    p.inputSize = static_cast<Bytes>(input_mb * kMiB);
    p.initTime = msec(init_ms);
    return p;
}

std::vector<FunctionProfile>
build()
{
    // Calibration notes (paper targets in parentheses):
    //  - warm_ms from Fig. 2 warm bars;
    //  - boot_mb spans Fig. 4's 148-256 MB range;
    //  - ws_mb spans Fig. 4's 8-99 MB (avg ~24-30 MB);
    //  - unique_frac from Fig. 5 (>=97% same for most functions,
    //    >=76% for the large-input ones);
    //  - contiguity from Fig. 3 (2-3 pages; lr_training ~5).
    std::vector<FunctionProfile> v;
    v.push_back(make("helloworld", "Minimal function",
                     1, 148, 8, 0.015, 3.0, 0, 50));
    v.push_back(make("chameleon", "HTML table rendering",
                     29, 160, 14, 0.020, 2.5, 0, 300));
    v.push_back(make("pyaes", "Text encryption with an AES cipher",
                     3, 152, 10, 0.020, 2.3, 0, 150));
    v.push_back(make("image_rotate", "JPEG image rotation",
                     37, 170, 22, 0.180, 2.6, 3, 400));
    v.push_back(make("json_serdes", "JSON (de)serialization",
                     27, 165, 20, 0.120, 2.4, 2, 250));
    v.push_back(make("lr_serving", "Review analysis, serving (Scikit)",
                     2, 180, 20, 0.020, 2.4, 0, 900));
    v.push_back(make("cnn_serving", "Image classification (TensorFlow)",
                     192, 256, 41, 0.030, 2.8, 0, 5000));
    v.push_back(make("rnn_serving", "Name generation (PyTorch)",
                     25, 235, 18, 0.020, 2.5, 0, 2500));
    v.push_back(make("lr_training", "Review analysis, training (Scikit)",
                     4991, 210, 99, 0.350, 5.0, 10, 900));
    v.push_back(make("video_processing", "Gray-scale effect (OpenCV)",
                     1476, 190, 38, 0.120, 2.5, 5, 700));

    // video_processing: inputs of different aspect ratios change the
    // allocator's layout, shifting a chunk of the "stable" set
    // between record and prefetch (Sec. 6.3). Together with the
    // unique pool this reproduces both Fig. 5 (>=76%% reuse) and the
    // near-1x REAP speedup of Fig. 8.
    v.back().stableDriftFrac = 0.15;
    v.back().uniqueContiguityMean = 2.5;

    // lr_training allocates large contiguous training buffers.
    v[8].uniqueContiguityMean = 5.0;

    // video_processing ships a Debian (not Alpine) image due to the
    // OpenCV installation (Table 1 footnote): a much larger rootfs.
    v[9].rootfsImage = 420 * kMiB;
    v[9].rootfsBootRead = 96 * kMiB;

    // Framework-heavy functions read more of their image on init.
    v[6].rootfsImage = 360 * kMiB;  // cnn_serving (TensorFlow)
    v[6].rootfsBootRead = 120 * kMiB;
    v[7].rootfsImage = 300 * kMiB;  // rnn_serving (PyTorch)
    v[7].rootfsBootRead = 90 * kMiB;
    return v;
}

} // namespace

const std::vector<FunctionProfile> &
functionBench()
{
    static const std::vector<FunctionProfile> profiles = build();
    return profiles;
}

const FunctionProfile &
profileByName(const std::string &name)
{
    for (const auto &p : functionBench())
        if (p.name == name)
            return p;
    fatal("unknown function profile: %s", name.c_str());
}

} // namespace vhive::func
