#include "func/profile.hh"

#include <string>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vhive::func {

const char *
functionClassName(FunctionClass cls)
{
    switch (cls) {
      case FunctionClass::Generic: return "generic";
      case FunctionClass::MlInference: return "ml";
      case FunctionClass::Media: return "media";
      case FunctionClass::Etl: return "etl";
    }
    return "?";
}

const ClassEnvelope &
classEnvelope(FunctionClass cls)
{
    // Envelopes bracket the paper's characterization: working sets
    // inside Fig. 4's 8-99 MB band, unique fractions spanning Fig. 5's
    // >=97% reuse (serving) down to the >=76% of the large-input
    // functions, contiguity in Fig. 3's 2-5 page range.
    static const ClassEnvelope ml = {
        40 * kMiB, 100 * kMiB, // working set: model weights dominate
        0.01, 0.04,            // read-mostly -> high reuse, dedup-heavy
        2.5, 4.0,              // weights read in long runs
        0, 0,                  // no store-fetched input
        2, 200,                // warm exec ms
        900, 5000,             // framework import + model load ms
        180 * kMiB, 256 * kMiB,
    };
    static const ClassEnvelope media = {
        16 * kMiB, 48 * kMiB,
        0.30, 0.60,            // streaming writes -> low reuse
        2.0, 3.0,
        2 * kMiB, 8 * kMiB,    // the photo/clip being transformed
        30, 1500,
        300, 900,
        160 * kMiB, 200 * kMiB,
    };
    static const ClassEnvelope etl = {
        12 * kMiB, 40 * kMiB,
        0.10, 0.25,
        2.2, 3.0,
        8 * kMiB, 32 * kMiB,   // bursty large inputs dominate
        20, 300,
        100, 400,
        150 * kMiB, 190 * kMiB,
    };
    // Generic spans the hand-calibrated FunctionBench pool.
    static const ClassEnvelope generic = {
        8 * kMiB, 99 * kMiB,
        0.015, 0.35,
        2.3, 5.0,
        0, 10 * kMiB,
        1, 4991,
        50, 5000,
        148 * kMiB, 256 * kMiB,
    };
    switch (cls) {
      case FunctionClass::MlInference: return ml;
      case FunctionClass::Media: return media;
      case FunctionClass::Etl: return etl;
      case FunctionClass::Generic: break;
    }
    return generic;
}

namespace {

FunctionProfile
make(const std::string &name, const std::string &desc, double warm_ms,
     double boot_mb, double ws_mb, double unique_frac, double contig,
     double input_mb, double init_ms)
{
    FunctionProfile p;
    p.name = name;
    p.description = desc;
    p.warmExec = msec(warm_ms);
    p.bootFootprint = static_cast<Bytes>(boot_mb * kMiB);
    p.workingSet = static_cast<Bytes>(ws_mb * kMiB);
    p.uniqueFrac = unique_frac;
    p.contiguityMean = contig;
    p.inputSize = static_cast<Bytes>(input_mb * kMiB);
    p.initTime = msec(init_ms);
    return p;
}

std::vector<FunctionProfile>
build()
{
    // Calibration notes (paper targets in parentheses):
    //  - warm_ms from Fig. 2 warm bars;
    //  - boot_mb spans Fig. 4's 148-256 MB range;
    //  - ws_mb spans Fig. 4's 8-99 MB (avg ~24-30 MB);
    //  - unique_frac from Fig. 5 (>=97% same for most functions,
    //    >=76% for the large-input ones);
    //  - contiguity from Fig. 3 (2-3 pages; lr_training ~5).
    std::vector<FunctionProfile> v;
    v.push_back(make("helloworld", "Minimal function",
                     1, 148, 8, 0.015, 3.0, 0, 50));
    v.push_back(make("chameleon", "HTML table rendering",
                     29, 160, 14, 0.020, 2.5, 0, 300));
    v.push_back(make("pyaes", "Text encryption with an AES cipher",
                     3, 152, 10, 0.020, 2.3, 0, 150));
    v.push_back(make("image_rotate", "JPEG image rotation",
                     37, 170, 22, 0.180, 2.6, 3, 400));
    v.push_back(make("json_serdes", "JSON (de)serialization",
                     27, 165, 20, 0.120, 2.4, 2, 250));
    v.push_back(make("lr_serving", "Review analysis, serving (Scikit)",
                     2, 180, 20, 0.020, 2.4, 0, 900));
    v.push_back(make("cnn_serving", "Image classification (TensorFlow)",
                     192, 256, 41, 0.030, 2.8, 0, 5000));
    v.push_back(make("rnn_serving", "Name generation (PyTorch)",
                     25, 235, 18, 0.020, 2.5, 0, 2500));
    v.push_back(make("lr_training", "Review analysis, training (Scikit)",
                     4991, 210, 99, 0.350, 5.0, 10, 900));
    v.push_back(make("video_processing", "Gray-scale effect (OpenCV)",
                     1476, 190, 38, 0.120, 2.5, 5, 700));

    // video_processing: inputs of different aspect ratios change the
    // allocator's layout, shifting a chunk of the "stable" set
    // between record and prefetch (Sec. 6.3). Together with the
    // unique pool this reproduces both Fig. 5 (>=76%% reuse) and the
    // near-1x REAP speedup of Fig. 8.
    v.back().stableDriftFrac = 0.15;
    v.back().uniqueContiguityMean = 2.5;

    // lr_training allocates large contiguous training buffers.
    v[8].uniqueContiguityMean = 5.0;

    // video_processing ships a Debian (not Alpine) image due to the
    // OpenCV installation (Table 1 footnote): a much larger rootfs.
    v[9].rootfsImage = 420 * kMiB;
    v[9].rootfsBootRead = 96 * kMiB;

    // Framework-heavy functions read more of their image on init.
    v[6].rootfsImage = 360 * kMiB;  // cnn_serving (TensorFlow)
    v[6].rootfsBootRead = 120 * kMiB;
    v[7].rootfsImage = 300 * kMiB;  // rnn_serving (PyTorch)
    v[7].rootfsBootRead = 90 * kMiB;
    return v;
}

} // namespace

const std::vector<FunctionProfile> &
functionBench()
{
    static const std::vector<FunctionProfile> profiles = build();
    return profiles;
}

FunctionProfile
makeClassProfile(FunctionClass cls, std::uint64_t seed, int idx)
{
    if (cls == FunctionClass::Generic) {
        const auto &pool = functionBench();
        FunctionProfile p =
            pool[static_cast<size_t>(idx) % pool.size()];
        return p;
    }
    const ClassEnvelope &env = classEnvelope(cls);
    std::string slug = functionClassName(cls);
    Rng rng(seed, "class/" + slug + "/" + std::to_string(idx));

    // One uniform per property, in a fixed documented order (warm,
    // boot, working set, unique fraction, contiguity, input, init) so
    // the draw sequence is part of the profile's identity.
    auto draw = [&rng](double lo, double hi) {
        return lo + (hi - lo) * rng.uniform();
    };
    auto drawBytes = [&draw](Bytes lo, Bytes hi) {
        return static_cast<Bytes>(draw(static_cast<double>(lo),
                                       static_cast<double>(hi)));
    };

    FunctionProfile p;
    p.cls = cls;
    p.name = slug + "_" + std::to_string(idx);
    p.description = std::string("synthetic ") + slug + " function";
    p.warmExec = msec(draw(env.minWarmMs, env.maxWarmMs));
    p.bootFootprint =
        drawBytes(env.minBootFootprint, env.maxBootFootprint);
    p.workingSet = drawBytes(env.minWorkingSet, env.maxWorkingSet);
    p.uniqueFrac = draw(env.minUniqueFrac, env.maxUniqueFrac);
    p.contiguityMean = draw(env.minContiguity, env.maxContiguity);
    p.inputSize = drawBytes(env.minInput, env.maxInput);
    p.initTime = msec(draw(env.minInitMs, env.maxInitMs));

    switch (cls) {
      case FunctionClass::MlInference:
        // Framework-heavy images (TensorFlow/PyTorch class).
        p.rootfsImage = 360 * kMiB;
        p.rootfsBootRead = 110 * kMiB;
        break;
      case FunctionClass::Media:
        // Input shape shifts the allocator's layout between record
        // and prefetch (the video_processing effect, Sec. 6.3).
        p.stableDriftFrac = 0.10;
        p.uniqueContiguityMean = 2.5;
        p.rootfsImage = 260 * kMiB;
        p.rootfsBootRead = 64 * kMiB;
        break;
      case FunctionClass::Etl:
        p.rootfsImage = 200 * kMiB;
        p.rootfsBootRead = 56 * kMiB;
        break;
      case FunctionClass::Generic:
        break;
    }
    return p;
}

const FunctionProfile &
profileByName(const std::string &name)
{
    for (const auto &p : functionBench())
        if (p.name == name)
            return p;
    fatal("unknown function profile: %s", name.c_str());
}

} // namespace vhive::func
