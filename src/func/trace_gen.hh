/**
 * @file
 * Deterministic guest-memory access-trace synthesis. An invocation's
 * trace is a sequence of contiguous page runs (with interleaved guest
 * compute) drawn from three pools:
 *
 *  - a *stable* pool derived from the function's seed: identical across
 *    invocations (code, imports, guest kernel, gRPC stack) — the
 *    phenomenon REAP exploits (Sec. 4.4);
 *  - an optional *shape-shifted* slice of the stable pool derived from
 *    the input's shape (video_processing's aspect-ratio effect);
 *  - a per-invocation *unique* pool (input buffers, allocator tails).
 *
 * Contiguous-run lengths are geometric with the profile's mean, giving
 * the paper's 2-3 page contiguity (Fig. 3), and the access order is a
 * deterministic shuffle, giving the poor spatial locality that defeats
 * OS readahead (Sec. 4.2).
 */

#ifndef VHIVE_FUNC_TRACE_GEN_HH
#define VHIVE_FUNC_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "func/profile.hh"
#include "util/units.hh"

namespace vhive::func {

/** Which cold-start phase an access run belongs to. */
enum class Phase
{
    ConnectionRestore, ///< gRPC/net-stack pages touched on reconnect
    Processing,        ///< actual function execution
};

/** One contiguous guest-page access with trailing guest compute. */
struct AccessRun
{
    std::int64_t page = 0;     ///< first guest-physical page
    std::int64_t pages = 1;    ///< run length in pages
    Duration computeAfter = 0; ///< guest compute following the access
    Phase phase = Phase::Processing;
    bool stable = true;        ///< belongs to the recurring pool
};

/** A complete per-invocation access trace. */
struct InvocationTrace
{
    std::vector<AccessRun> runs;
    std::int64_t stablePageCount = 0;
    std::int64_t uniquePageCount = 0;

    /** Total pages touched (stable + unique). */
    std::int64_t totalPages() const
    {
        return stablePageCount + uniquePageCount;
    }

    /** Sorted, deduplicated list of touched pages. */
    std::vector<std::int64_t> touchedPages() const;
};

/** Result of comparing the page sets of two invocations (Fig. 5). */
struct ReuseStats
{
    std::int64_t samePages = 0;  ///< accessed by both
    std::int64_t onlyFirst = 0;  ///< accessed only by the first
    std::int64_t onlySecond = 0; ///< accessed only by the second

    /** Fraction of the second invocation's pages seen before. */
    double
    sameFrac() const
    {
        std::int64_t total = samePages + onlySecond;
        return total ? static_cast<double>(samePages) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Compare the page sets of two invocations of the same function. */
ReuseStats comparePageSets(const InvocationTrace &a,
                           const InvocationTrace &b);

/**
 * Mean length of maximal consecutive-page streaks in a sorted page
 * list — the Fig. 3 contiguity metric.
 */
double averageContiguity(const std::vector<std::int64_t> &sorted_pages);

/**
 * Deterministic trace factory. The same (root seed, function,
 * invocation id) triple always yields an identical trace.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(std::uint64_t root_seed)
        : rootSeed(root_seed)
    {
    }

    /**
     * Synthesize the access trace of invocation @p invocation_id. The
     * invocation id selects the input (different ids model different
     * inputs; equal ids, identical inputs).
     */
    InvocationTrace invocation(const FunctionProfile &profile,
                               std::int64_t invocation_id) const;

    /**
     * Pages touched when booting the function from scratch (guest
     * kernel boot, agents, runtime init): a superset of the stable
     * pool, padded to the profile's boot footprint.
     */
    InvocationTrace boot(const FunctionProfile &profile) const;

  private:
    std::uint64_t rootSeed;
};

} // namespace vhive::func

#endif // VHIVE_FUNC_TRACE_GEN_HH
