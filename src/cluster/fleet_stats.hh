/**
 * @file
 * Fleet-wide observability: one structure aggregating what the SeBS
 * methodology (arXiv:2012.14132) says a serverless benchmark must
 * report at fleet level — cold-start latency percentiles (p50/p99/
 * p999) rather than single-host means, per-worker and fleet-summed
 * tier-hit accounting, object-store stream contention, resident
 * memory, and the snapshot-registry staging counters. Built on demand
 * by Cluster::fleetStats().
 */

#ifndef VHIVE_CLUSTER_FLEET_STATS_HH
#define VHIVE_CLUSTER_FLEET_STATS_HH

#include <cstdint>
#include <vector>

#include "core/options.hh"
#include "net/object_store.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::cluster {

/** One worker's slice of the fleet telemetry. */
struct WorkerFleetRow
{
    int worker = 0;
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;

    /** Deepest concurrent in-flight load this worker ever carried. */
    std::int64_t inFlightPeak = 0;

    /** Resident instance memory at collection time. */
    Bytes residentBytes = 0;

    /** Summed LatencyBreakdown::tierHits of this worker's colds. */
    std::vector<core::TierBreakdown> tierHits;

    /** Summed LatencyBreakdown::wastedPrefetch of this worker's
     * colds — WS pages prefetched but not touched by the served
     * input (Sec. 6.2 record/replay input-drift waste). */
    std::int64_t wastedPrefetchPages = 0;
};

/** Fleet-level aggregate over all workers and deployed functions. */
struct FleetStats
{
    int workers = 0;

    /** End-to-end latency of every cold start across the fleet (ms). */
    Samples coldE2eMs;

    /** End-to-end latency of every warm hit across the fleet (ms). */
    Samples warmE2eMs;

    /** Resident instance memory summed across workers. */
    Bytes residentBytes = 0;

    std::vector<WorkerFleetRow> perWorker;

    /** Per-tier accounting summed across workers. */
    std::vector<core::TierBreakdown> tierHits;

    /**
     * Object-store traffic: the shared store when snapshot sharing is
     * on, otherwise the per-worker stores summed. streamWaits /
     * streamWaitTime / peakStreamQueue expose data-plane contention.
     */
    net::ObjectStoreStats store{};

    /**
     * Per-shard rows of the shared store, in shard order (empty when
     * snapshot sharing is off). The summed `store` field above and
     * these rows agree by construction: mergeStoreStats over the rows
     * reproduces the aggregate.
     */
    std::vector<net::ObjectStoreStats> storeShards;

    /**
     * @name Warm-pool waste accounting (the denominator of every
     * keep-alive / pre-warm policy comparison): how much memory sat
     * resident without serving.
     */
    /// @{

    /**
     * Byte-seconds of instance memory held by idle warm instances,
     * integrated by the autoscaler each scalePeriod. This is the
     * resource bill of a keep-alive/pre-warm policy; the control
     * frontier weighs it against cold p99.
     */
    double wastedResidentByteSec = 0;

    /** Instance-seconds spent idle-warm (same integration). */
    double idleWarmInstanceSec = 0;

    /** Fleet sum of per-worker wastedPrefetchPages. */
    std::int64_t wastedPrefetchPages = 0;
    /// @}

    /** @name Predictive control plane (zero when the policy is None). */
    /// @{

    /** Pre-warm loads completed across the fleet. */
    std::int64_t preWarms = 0;

    /** Invocations served by a pre-warmed (or mid-warm) instance. */
    std::int64_t preWarmHits = 0;

    /** Pre-warmed instances retired without ever serving. */
    std::int64_t wastedPreWarms = 0;

    /** Background chunk/artifact prefetches that moved bytes. */
    std::int64_t bgPrefetches = 0;
    /// @}

    /** @name Snapshot-registry staging counters (shared mode only). */
    /// @{
    std::int64_t snapshotBuilds = 0;
    Bytes stagedBytes = 0;
    std::int64_t remoteArtifactFetches = 0;
    std::int64_t fetchFanIn = 0;
    /// @}

    /** @name Content-addressed staging (DedupReap + shared mode). */
    /// @{

    /** Raw artifact bytes described by all staged manifests. */
    Bytes chunkLogicalBytes = 0;

    /** Distinct compressed bytes resident in the staged index. */
    Bytes chunkStoredBytes = 0;

    /** Upload bytes avoided because the chunk was already staged. */
    Bytes chunkDedupSavedBytes = 0;

    /** Distinct chunks in the staged index. */
    std::int64_t chunksStored = 0;

    /** addRef()s deduplicated against an already-staged chunk. */
    std::int64_t chunksDeduped = 0;
    /// @}

    /**
     * @name Cache & storage economics: byte budgets, delta
     * re-staging and fleet GC (all zero with budgets off and no
     * restage/retire — the historical behaviour).
     */
    /// @{

    /** High-water mark of the staged index's compressed bytes. */
    Bytes chunkPeakStoredBytes = 0;

    /** Chunks budget pressure evicted from the staged index. */
    std::int64_t chunkBudgetEvictions = 0;

    /** Worker page-cache peak resident bytes, summed. */
    Bytes pageCachePeakBytes = 0;

    /** Worker page-cache bytes shed by budget pressure, summed. */
    Bytes pageCacheEvictedBytes = 0;

    /** Worker chunk-cache peak stored bytes, summed. */
    Bytes workerChunkPeakBytes = 0;

    /** Worker chunk-cache budget evictions, summed. */
    std::int64_t workerChunkBudgetEvictions = 0;

    /** Local-SSD artifact copies evicted by ssdBudget, summed. */
    std::int64_t ssdEvictions = 0;

    /** Peak local artifact bytes, summed across workers. */
    Bytes peakSsdBytes = 0;

    /** Delta re-stagings completed (restageFunction). */
    std::int64_t restages = 0;

    /** Chunks delta re-staging uploaded — the churn that moved. */
    std::int64_t deltaChunksUploaded = 0;

    /** Compressed bytes those delta uploads moved. */
    Bytes deltaBytesUploaded = 0;

    /** Functions retired fleet-wide (retireFunction). */
    std::int64_t retires = 0;

    /** Stored bytes GC reclaimed from the staged index. */
    Bytes gcReleasedBytes = 0;
    /// @}

    /**
     * Fraction of staged compressed bytes that never crossed the wire
     * thanks to dedup (0 when staging is not chunked).
     */
    double
    dedupRatio() const
    {
        Bytes total = chunkDedupSavedBytes + stagedBytes;
        return total > 0 ? static_cast<double>(chunkDedupSavedBytes) /
                               static_cast<double>(total)
                         : 0.0;
    }

    double coldP50() const { return coldE2eMs.percentile(50); }
    double coldP99() const { return coldE2eMs.percentile(99); }
    double coldP999() const { return coldE2eMs.percentile(99.9); }
};

/**
 * Merge one tier row into @p into, keyed by tier label (same label ->
 * counters summed; new label -> appended in arrival order).
 */
void mergeTierRow(std::vector<core::TierBreakdown> &into,
                  const core::TierBreakdown &row);

/** Sum @p b's request/byte/contention counters into @p a. */
void mergeStoreStats(net::ObjectStoreStats &a,
                     const net::ObjectStoreStats &b);

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_FLEET_STATS_HH
