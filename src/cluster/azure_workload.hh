/**
 * @file
 * Production-like workload synthesis following the Azure Functions
 * characterization the paper builds its motivation on (Sec. 2.1,
 * citing Shahrad et al.): most functions are invoked rarely (90%
 * less than once per minute), run shortly, and arrive unpredictably.
 * The generator deploys N functions whose mean inter-arrival times
 * are log-uniform over a configurable range and drives independent
 * Poisson arrivals for a simulated horizon while sampling the
 * fleet's resident memory.
 */

#ifndef VHIVE_CLUSTER_AZURE_WORKLOAD_HH
#define VHIVE_CLUSTER_AZURE_WORKLOAD_HH

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::cluster {

/** Configuration of the synthetic production mix. */
struct AzureWorkloadConfig
{
    /** Number of deployed functions. */
    int functions = 12;

    /** Shortest mean inter-arrival in the mix. */
    Duration minInterarrival = sec(20);

    /** Longest mean inter-arrival in the mix (sporadic tail). */
    Duration maxInterarrival = sec(900);

    /** Simulated horizon. */
    Duration horizon = sec(1800);

    /** Memory sampling period for the GB-minute integral. */
    Duration samplePeriod = sec(5);

    /** Workload synthesis seed. */
    std::uint64_t seed = 0xa27e;

    /**
     * Run REAP's one-time record phase for every function before the
     * measured window (default). Deployed production functions have
     * long since recorded their working sets; disable to study the
     * cost of records landing inside the window.
     */
    bool preRecordWorkingSets = true;

    /**
     * Indices into func::functionBench() to draw profiles from
     * (cycled). Defaults to the low/medium-weight functions so the
     * mix resembles the short-running production population.
     */
    std::vector<int> profilePool = {0, 1, 2, 3, 4, 5, 7};

    /**
     * When non-empty, profiles are generated from these function
     * classes instead of profilePool: function i is drawn by
     * func::makeClassProfile(classMix[i % size], seed, i), cycling
     * the list. Inter-arrival synthesis is unchanged (one uniform per
     * function from the same "azure-workload" stream), so switching a
     * mix between pool and classes perturbs nothing else. Empty
     * (default) keeps the historical pool-based mix bit-identical.
     */
    std::vector<func::FunctionClass> classMix;
};

/** One synthesized function of the Azure mix. */
struct AzureMixEntry
{
    func::FunctionProfile profile;
    Duration meanInterarrival;
};

/**
 * Synthesize the deterministic function mix @p cfg describes: profile
 * picks cycle through cfg.profilePool and mean inter-arrivals are
 * log-uniform over [minInterarrival, maxInterarrival], all driven by
 * Rng(cfg.seed, "azure-workload") in deployment order. Shared by
 * AzureWorkload (sequential cluster) and cluster::ParallelFleet so the
 * two drive bit-identical mixes.
 */
std::vector<AzureMixEntry> synthesizeAzureMix(
    const AzureWorkloadConfig &cfg);

/** Results of one workload run. */
struct AzureWorkloadResult
{
    Samples e2eLatencyMs;     ///< all invocations
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;

    /** Invocations reported failed after crash retries (fault runs
     * only). Invariant: coldStarts + warmHits + failedInvocations ==
     * invocations. */
    std::int64_t failedInvocations = 0;
    double avgResidentMb = 0;  ///< time-averaged fleet memory
    double memoryGbMin = 0;    ///< integral of resident memory
    std::int64_t invocations = 0;

    double
    coldFraction() const
    {
        auto total = coldStarts + warmHits;
        return total ? static_cast<double>(coldStarts) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Deploys the mix onto @p cluster and drives it. The cluster must be
 * freshly constructed (no prior deployments); the run starts the
 * autoscaler and stops it before returning.
 */
class AzureWorkload
{
  public:
    AzureWorkload(sim::Simulation &sim, Cluster &cluster,
                  AzureWorkloadConfig config = AzureWorkloadConfig{});

    /** Names of the synthesized functions (after construction). */
    const std::vector<std::string> &functionNames() const
    {
        return names;
    }

    /** Run the workload to completion and collect the results. */
    sim::Task<AzureWorkloadResult> run();

  private:
    sim::Task<void> arrivalLoop(int idx, sim::Latch *done);
    sim::Task<void> memorySampler();

    sim::Simulation &sim;
    Cluster &cluster;
    AzureWorkloadConfig cfg;
    std::vector<std::string> names;
    std::vector<Duration> interarrival;
    bool samplerStopping = false;
    double memIntegralMbSec = 0;
    Duration sampledFor = 0;
    AzureWorkloadResult result;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_AZURE_WORKLOAD_HH
