/**
 * @file
 * Pluggable invocation routing for the fleet control plane. The
 * front-end's worker pick used to be a hard-coded warm-first /
 * round-robin scan inside Cluster; it is now a RoutingPolicy strategy
 * dispatched through a small registry, keyed the same way the
 * SnapshotLoader layer keys cold-start strategies. Placement matters
 * because snapshot locality does ("How Low Can You Go?",
 * arXiv:2109.13319): a policy that concentrates a function's cold
 * starts on few workers keeps their warm tiers (page cache, local SSD
 * copies of the WS file) hot, while a spreading policy trades that for
 * load balance.
 */

#ifndef VHIVE_CLUSTER_ROUTING_POLICY_HH
#define VHIVE_CLUSTER_ROUTING_POLICY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/units.hh"

namespace vhive::cluster {

/** The built-in routing strategies (registry keys). */
enum class RoutingPolicyKind
{
    /**
     * Current production behaviour: any worker holding an idle warm
     * instance wins, otherwise rotate round-robin across the fleet.
     */
    WarmFirst,

    /** Route to the worker with the fewest in-flight invocations. */
    LeastLoaded,

    /**
     * Consistent-hash / locality-aware: each function has a home
     * worker (hash of its name on the worker ring); cold starts
     * concentrate there so the artifact tiers stay hot, spilling along
     * the ring only past saturated workers.
     */
    LocalityHash,
};

/** Human-readable policy name. */
const char *routingPolicyName(RoutingPolicyKind kind);

/**
 * Read-only view of the fleet a policy may consult. Implemented by
 * Cluster; kept abstract so policies are testable without a cluster.
 */
class FleetView
{
  public:
    virtual ~FleetView() = default;

    virtual int workerCount() const = 0;

    /** Idle warm instances of @p name on @p worker. */
    virtual std::int64_t idleInstances(int worker,
                                       const std::string &name) const = 0;

    /** Invocations currently in flight on @p worker (all functions). */
    virtual std::int64_t inFlight(int worker) const = 0;

    /** Resident instance memory on @p worker. */
    virtual Bytes residentBytes(int worker) const = 0;

    /** Whether @p worker holds a local copy of @p name's artifacts. */
    virtual bool artifactsLocal(int worker,
                                const std::string &name) const = 0;

    /**
     * Fraction of @p name's content-addressed chunks resident on
     * @p worker (0..1). With chunked artifacts (DedupReap) a worker
     * that never ran the function may still hold most of its chunks —
     * pulled by other functions sharing runtime pages — making its
     * cold start nearly local. Default: artifactsLocal as 0/1, so
     * non-chunked fleets score exactly like before.
     */
    virtual double
    chunkResidency(int worker, const std::string &name) const
    {
        return artifactsLocal(worker, name) ? 1.0 : 0.0;
    }
};

/** Everything one routing decision sees. */
struct RouteContext
{
    const std::string &name;
    const FleetView &fleet;
};

/**
 * One routing strategy. Policies are per-cluster objects and may keep
 * state across decisions (e.g. the round-robin cursor); all decisions
 * must be deterministic functions of the context and that state.
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    /** Policy name as reported in benches and diagnostics. */
    virtual const char *name() const = 0;

    /** Pick the worker index for the next invocation of ctx.name. */
    virtual int route(const RouteContext &ctx) = 0;
};

/** Warm-first + round-robin (the bit-identical default). */
class WarmFirstPolicy final : public RoutingPolicy
{
  public:
    const char *name() const override { return "warm-first"; }
    int route(const RouteContext &ctx) override;

  private:
    int rrCursor = 0;
};

/** Fewest in-flight invocations wins; ties prefer warm, then index. */
class LeastLoadedPolicy final : public RoutingPolicy
{
  public:
    const char *name() const override { return "least-loaded"; }
    int route(const RouteContext &ctx) override;
};

/** Consistent-hash home worker with ring spill past saturation. */
class LocalityHashPolicy final : public RoutingPolicy
{
  public:
    /**
     * @param spill_in_flight In-flight invocations at which a worker
     * counts as saturated and the cold start spills to the next ring
     * position.
     */
    explicit LocalityHashPolicy(std::int64_t spill_in_flight = 8)
        : spillInFlight(spill_in_flight)
    {
    }

    const char *name() const override { return "locality-hash"; }
    int route(const RouteContext &ctx) override;

    /**
     * Routing-score hook for chunk-aware placement: with @p weight
     * > 0, a cold start picks the unsaturated ring candidate
     * maximizing weight x resident-chunk overlap minus its ring
     * distance (normalized), instead of blindly staying home. Weight
     * 0 (default) keeps the historical home-then-spill behaviour
     * bit-identical.
     */
    void setOverlapWeight(double weight) { overlapWeight = weight; }
    double getOverlapWeight() const { return overlapWeight; }

    /** The function's home position on the worker ring (FNV-1a via
     * util's hashName, platform-independent). */
    static int homeWorker(const std::string &name, int workers);

  private:
    std::int64_t spillInFlight;
    double overlapWeight = 0.0;
};

/**
 * Maps each RoutingPolicyKind to its policy object. Built-ins are
 * installed at construction; registerPolicy() swaps any of them for a
 * custom strategy — the same extension path as LoaderRegistry.
 */
class RoutingPolicyRegistry
{
  public:
    RoutingPolicyRegistry();

    RoutingPolicyRegistry(const RoutingPolicyRegistry &) = delete;
    RoutingPolicyRegistry &
    operator=(const RoutingPolicyRegistry &) = delete;

    /** Policy for @p kind; fatals when none is registered. */
    RoutingPolicy &policyFor(RoutingPolicyKind kind) const;

    /** Policy for @p kind, or nullptr when none is registered. */
    RoutingPolicy *find(RoutingPolicyKind kind) const;

    /** Install (or replace) the policy behind @p kind. */
    void registerPolicy(RoutingPolicyKind kind,
                        std::unique_ptr<RoutingPolicy> policy);

    /** All registered kinds, in enum order. */
    std::vector<RoutingPolicyKind> kinds() const;

  private:
    std::map<RoutingPolicyKind, std::unique_ptr<RoutingPolicy>> policies;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_ROUTING_POLICY_HH
