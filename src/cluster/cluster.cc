#include "cluster/cluster.hh"

#include <algorithm>
#include <optional>

#include "net/rpc.hh"
#include "util/logging.hh"

namespace vhive::cluster {

namespace {

/**
 * Decrements an in-flight counter on any exit path of the invoke
 * coroutine — the same frame-destruction paths the queue-proxy
 * SemaphoreGuard covers; a leaked count would permanently skew the
 * load-aware routing policies.
 */
struct InFlightGuard
{
    explicit InFlightGuard(std::int64_t &c) : count(&c) { ++*count; }
    ~InFlightGuard() { release(); }
    InFlightGuard(const InFlightGuard &) = delete;
    InFlightGuard &operator=(const InFlightGuard &) = delete;

    void
    release()
    {
        if (count != nullptr) {
            --*count;
            count = nullptr;
        }
    }

  private:
    std::int64_t *count;
};

} // namespace

Cluster::Cluster(sim::Simulation &sim, ClusterConfig config)
    : sim(sim), cfg(std::move(config))
{
    VHIVE_ASSERT(cfg.workers >= 1);
    if (cfg.sharedSnapshots) {
        if (cfg.coldStartMode != core::ColdStartMode::TieredReap &&
            cfg.coldStartMode != core::ColdStartMode::RemoteReap &&
            cfg.coldStartMode != core::ColdStartMode::DedupReap) {
            fatal("sharedSnapshots needs a remote-capable cold-start "
                  "mode (TieredReap, RemoteReap or DedupReap), got %s",
                  core::coldStartModeName(cfg.coldStartMode));
        }
        VHIVE_ASSERT(cfg.sharedStoreShards >= 1);
        net::ShardedStoreParams sp;
        sp.shards = cfg.sharedStoreShards;
        sp.shard = cfg.sharedStore;
        sp.placement = cfg.chunkPlacement;
        _sharedStore =
            std::make_unique<net::ShardedObjectStore>(sim, sp);
    }
    for (int i = 0; i < cfg.workers; ++i) {
        core::WorkerConfig wc = cfg.worker;
        // Each worker gets its own seed stream (distinct page layouts
        // do not matter, but determinism across runs does).
        wc.seed = cfg.worker.seed + static_cast<std::uint64_t>(i);
        workers.push_back(std::make_unique<core::Worker>(
            sim, wc, _sharedStore.get()));
    }
    telemetry.resize(workers.size());
    if (cfg.sharedSnapshots) {
        _registry = std::make_unique<SnapshotRegistry>(
            sim, *_sharedStore, workers, cfg.coldStartMode);
        if (cfg.registryChunkBudget > 0)
            _registry->setChunkBudget(cfg.registryChunkBudget,
                                      cfg.registryEvictionPolicy);
    }
    activePolicy = &_policies.policyFor(cfg.routingPolicy);
    if (cfg.controlPolicy != ControlPolicyKind::None)
        activeControl = &_controlPolicies.policyFor(cfg.controlPolicy);
}

void
Cluster::setControlPolicy(ControlPolicyKind kind)
{
    activeControl = kind == ControlPolicyKind::None
                        ? nullptr
                        : &_controlPolicies.policyFor(kind);
}

void
Cluster::setRoutingPolicy(RoutingPolicyKind kind)
{
    activePolicy = &_policies.policyFor(kind);
}

void
Cluster::installFaultPlan(sim::FaultPlan *plan)
{
    if (_sharedStore)
        _sharedStore->setFaultPlan(plan, "store/shared");
    for (size_t i = 0; i < workers.size(); ++i) {
        std::string idx = std::to_string(i);
        workers[i]->objectStore().setFaultPlan(plan,
                                               "store/worker/" + idx);
        workers[i]->orchestrator().setFaultPlan(plan, "worker/" + idx);
    }
    if (_registry)
        _registry->setFaultPlan(plan);
}

void
Cluster::deploy(const func::FunctionProfile &profile)
{
    if (deployments.count(profile.name))
        fatal("function %s already deployed", profile.name.c_str());
    Deployment dep;
    dep.profile = profile;
    dep.lastUsed.assign(workers.size(), 0);
    if (cfg.maxConcurrencyPerFunction > 0) {
        dep.concurrency = std::make_unique<sim::Semaphore>(
            sim, cfg.maxConcurrencyPerFunction);
    }
    deployments.emplace(profile.name, std::move(dep));
    for (auto &w : workers)
        w->orchestrator().registerFunction(profile);
}

sim::Task<void>
Cluster::prepareAllSnapshots()
{
    if (_registry) {
        // Build-once + fan-out: one snapshot build, one record phase
        // and one put() per function, regardless of worker count.
        for (auto &entry : deployments)
            co_await _registry->ensureStaged(entry.first);
        co_return;
    }
    for (auto &entry : deployments) {
        for (auto &w : workers)
            co_await w->orchestrator().prepareSnapshot(entry.first);
    }
}

std::int64_t
Cluster::idleInstances(int worker, const std::string &name) const
{
    return workers[static_cast<size_t>(worker)]
        ->orchestrator()
        .idleInstanceCount(name);
}

std::int64_t
Cluster::inFlight(int worker) const
{
    return telemetry[static_cast<size_t>(worker)].inFlight;
}

Bytes
Cluster::residentBytes(int worker) const
{
    return workers[static_cast<size_t>(worker)]
        ->orchestrator()
        .totalResidentBytes();
}

bool
Cluster::artifactsLocal(int worker, const std::string &name) const
{
    const auto &orch = workers[static_cast<size_t>(worker)]->orchestrator();
    return orch.hasFunction(name) && orch.artifactsLocal(name);
}

double
Cluster::chunkResidency(int worker, const std::string &name) const
{
    const auto &orch =
        workers[static_cast<size_t>(worker)]->orchestrator();
    return orch.hasFunction(name) ? orch.chunkResidency(name) : 0.0;
}

sim::Task<Duration>
Cluster::invoke(const std::string &name)
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    Deployment &dep = it->second;

    if (activeControl != nullptr)
        activeControl->noteArrival(name, sim.now());

    Time t0 = sim.now();
    // Front-end + fabric hop to the worker.
    net::RpcParams rpc;
    co_await sim.delay(rpc.clusterHop);

    // Queue-proxy admission: bound in-flight invocations, FIFO. The
    // guard releases the slot on any exit path (including frame
    // destruction of a cancelled task); the explicit reset below keeps
    // the release at the same simulated point as before.
    std::optional<sim::SemaphoreGuard> admission;
    if (dep.concurrency) {
        Time q0 = sim.now();
        co_await dep.concurrency->acquire();
        admission.emplace(*dep.concurrency);
        dep.stats.queueDelayMs.add(toMs(sim.now() - q0));
    }

    core::InvokeOptions opts;
    opts.keepWarm = true;

    // Route and serve; a cold start torn down by an injected
    // WorkerCrash is re-routed (the crashed worker's instance is
    // gone, so load-aware policies see the failure) and retried up
    // to maxColdStartRetries times. Fault-free runs take exactly one
    // iteration, event-for-event identical to the pre-fault code.
    core::LatencyBreakdown bd;
    int widx = -1;
    bool artifacts_were_local = true;
    for (int attempt = 0;; ++attempt) {
        widx = activePolicy->route(RouteContext{name, *this});
        VHIVE_ASSERT(widx >= 0 && widx < workerCount());
        auto &orch = workers[static_cast<size_t>(widx)]->orchestrator();
        WorkerTelemetry &tele = telemetry[static_cast<size_t>(widx)];

        // Whether the cold start (if any) will pull staged artifacts
        // through the remote tier rather than a local copy.
        artifacts_were_local =
            _registry == nullptr || orch.artifactsLocal(name);

        InFlightGuard in_flight(tele.inFlight);
        tele.inFlightPeak = std::max(tele.inFlightPeak, tele.inFlight);
        bd = co_await orch.invoke(name, cfg.coldStartMode, opts);
        in_flight.release();

        if (!bd.crashed || attempt >= cfg.maxColdStartRetries)
            break;
        ++dep.stats.crashRetries;
    }

    admission.reset(); // return the queue-proxy slot

    co_await sim.delay(rpc.clusterHop); // response hop
    Duration e2e = sim.now() - t0;

    WorkerTelemetry &tele = telemetry[static_cast<size_t>(widx)];
    dep.lastUsed[static_cast<size_t>(widx)] = sim.now();
    dep.stats.e2eLatencyMs.add(toMs(e2e));
    if (bd.crashed) {
        // Retries exhausted: reported failed exactly once, counted in
        // neither coldStarts nor warmHits.
        ++dep.stats.failedInvocations;
    } else if (bd.cold) {
        ++dep.stats.coldStarts;
        ++tele.coldStarts;
        fleetColdMs.add(toMs(e2e));
        for (const auto &t : bd.tierHits)
            mergeTierRow(tele.tierHits, t);
        tele.wastedPrefetchPages += bd.wastedPrefetch;
        if (_registry) {
            // RemoteReap GETs the artifacts on every cold start no
            // matter what lives locally. Tiered chains report exactly
            // which tier served the WS bytes; trust that over the
            // pre-invoke snapshot (a concurrent cold start may have
            // re-localized the artifacts while this one queued).
            bool fetched_remotely =
                cfg.coldStartMode ==
                    core::ColdStartMode::RemoteReap ||
                !artifacts_were_local;
            for (const auto &t : bd.tierHits) {
                if (t.tier == "remote")
                    fetched_remotely = t.bytes > 0;
            }
            if (fetched_remotely)
                _registry->noteRemoteFetch(name, widx);
        }
    } else {
        ++dep.stats.warmHits;
        ++tele.warmHits;
        fleetWarmMs.add(toMs(e2e));
    }
    co_return e2e;
}

sim::Task<void>
Cluster::restageFunction(const std::string &name)
{
    if (deployments.find(name) == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    if (_registry != nullptr && _registry->isStaged(name)) {
        co_await _registry->restage(name);
        co_return;
    }
    // Per-worker staging: invalidate everywhere; each worker's next
    // cold start re-records and stages the delta against the
    // still-referenced previous version in its own index.
    for (auto &w : workers)
        w->orchestrator().invalidateRecord(name);
}

sim::Task<void>
Cluster::retireFunction(const std::string &name)
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    for (auto &w : workers) {
        auto &orch = w->orchestrator();
        co_await orch.stopAllInstances(name);
        orch.retireRecord(name);
    }
    if (_registry)
        _registry->retire(name);
    // Routing freshness resets: a later revival starts cold.
    it->second.lastUsed.assign(workers.size(), 0);
}

std::int64_t
Cluster::instanceCount(const std::string &name) const
{
    std::int64_t total = 0;
    for (const auto &w : workers)
        total += w->orchestrator().instanceCount(name);
    return total;
}

Bytes
Cluster::residentBytes() const
{
    Bytes total = 0;
    for (const auto &w : workers)
        total += w->orchestrator().totalResidentBytes();
    return total;
}

const FunctionClusterStats &
Cluster::stats(const std::string &name) const
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    return it->second.stats;
}

FleetStats
Cluster::fleetStats() const
{
    FleetStats fs;
    fs.workers = workerCount();
    fs.coldE2eMs = fleetColdMs;
    fs.warmE2eMs = fleetWarmMs;
    for (size_t i = 0; i < workers.size(); ++i) {
        const WorkerTelemetry &tele = telemetry[i];
        WorkerFleetRow row;
        row.worker = static_cast<int>(i);
        row.coldStarts = tele.coldStarts;
        row.warmHits = tele.warmHits;
        row.inFlightPeak = tele.inFlightPeak;
        row.residentBytes =
            workers[i]->orchestrator().totalResidentBytes();
        row.tierHits = tele.tierHits;
        row.wastedPrefetchPages = tele.wastedPrefetchPages;
        fs.residentBytes += row.residentBytes;
        fs.wastedPrefetchPages += row.wastedPrefetchPages;
        for (const auto &t : tele.tierHits)
            mergeTierRow(fs.tierHits, t);
        fs.perWorker.push_back(std::move(row));
    }
    fs.wastedResidentByteSec = _wastedResidentByteSec;
    fs.idleWarmInstanceSec = _idleWarmInstanceSec;
    for (const auto &w : workers) {
        const auto &orch = w->orchestrator();
        fs.wastedPreWarms += orch.wastedPreWarms();
        fs.bgPrefetches += orch.backgroundPrefetches();
        fs.pageCachePeakBytes += orch.tierBudget().peakResidentBytes();
        fs.pageCacheEvictedBytes += orch.tierBudget().evictedBytes();
        const auto &cc = orch.localChunkCache().stats();
        fs.workerChunkPeakBytes += cc.peakStoredBytes;
        fs.workerChunkBudgetEvictions += cc.budgetEvictions;
        fs.ssdEvictions += orch.ssdEvictions();
        fs.peakSsdBytes += orch.peakSsdBytes();
        for (const auto &entry : deployments) {
            const core::FunctionStats &st = orch.stats(entry.first);
            fs.preWarms += st.preWarms;
            fs.preWarmHits += st.preWarmHits;
            if (_registry == nullptr) {
                // Worker-local staging: delta accounting lives in the
                // per-function stats (the registry's under sharing).
                fs.restages += st.deltaRestages;
                fs.deltaChunksUploaded += st.deltaChunksUploaded;
                fs.deltaBytesUploaded += st.deltaBytesUploaded;
            }
        }
    }
    if (_sharedStore) {
        fs.store = _sharedStore->stats();
        fs.storeShards = _sharedStore->shardStats();
    } else {
        for (const auto &w : workers)
            mergeStoreStats(fs.store, w->objectStore().stats());
    }
    if (_registry) {
        fs.snapshotBuilds = _registry->totalBuilds();
        fs.stagedBytes = _registry->totalStagedBytes();
        fs.remoteArtifactFetches = _registry->totalRemoteFetches();
        for (const auto &entry : deployments) {
            if (_registry->isStaged(entry.first))
                fs.fetchFanIn +=
                    _registry->artifact(entry.first).fetchFanIn();
        }
        if (_registry->chunked()) {
            const storage::ChunkStore &idx = _registry->chunkIndex();
            fs.chunkLogicalBytes = _registry->totalLogicalBytes();
            fs.chunkStoredBytes = idx.storedBytes();
            fs.chunkDedupSavedBytes =
                _registry->totalDedupSavedBytes();
            fs.chunksStored = idx.chunkCount();
            fs.chunksDeduped = idx.stats().dedupHits;
            fs.chunkPeakStoredBytes = idx.stats().peakStoredBytes;
            fs.chunkBudgetEvictions = idx.stats().budgetEvictions;
        }
        fs.restages = _registry->totalRestages();
        for (const auto &entry : deployments) {
            if (!_registry->isStaged(entry.first))
                continue;
            const StagedArtifact &art =
                _registry->artifact(entry.first);
            fs.deltaChunksUploaded += art.deltaChunksUploaded;
            fs.deltaBytesUploaded += art.deltaBytesUploaded;
        }
        fs.retires = _registry->retires();
        fs.gcReleasedBytes = _registry->gcReleasedBytes();
    } else {
        for (const auto &w : workers)
            fs.snapshotBuilds += w->orchestrator().snapshotBuilds();
    }
    return fs;
}

void
Cluster::resetStats()
{
    for (auto &entry : deployments)
        entry.second.stats = FunctionClusterStats{};
    for (auto &tele : telemetry) {
        std::int64_t in_flight = tele.inFlight;
        tele = WorkerTelemetry{};
        // Live invocations stay counted, and remain the floor of the
        // post-reset peak (the worker demonstrably carries them now).
        tele.inFlight = in_flight;
        tele.inFlightPeak = in_flight;
    }
    fleetColdMs.clear();
    fleetWarmMs.clear();
    _wastedResidentByteSec = 0;
    _idleWarmInstanceSec = 0;
}

core::ColdStartMode
Cluster::preWarmMode() const
{
    switch (cfg.coldStartMode) {
      case core::ColdStartMode::TieredReap:
      case core::ColdStartMode::RemoteReap:
      case core::ColdStartMode::DedupReap:
      case core::ColdStartMode::BackgroundWarm:
        return core::ColdStartMode::BackgroundWarm;
      default:
        return cfg.coldStartMode;
    }
}

sim::Task<void>
Cluster::preWarmTask(std::string name, int widx)
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        co_return;
    auto &orch = workers[static_cast<size_t>(widx)]->orchestrator();
    core::LatencyBreakdown bd =
        co_await orch.preWarm(name, preWarmMode());
    if (bd.total > 0 && !bd.crashed) {
        // The pre-warmed instance is autoscaler-sanctioned activity;
        // without this the very next sweep would reap it before the
        // predicted arrival it was warmed for.
        it->second.lastUsed[static_cast<size_t>(widx)] = sim.now();
    }
}

sim::Task<void>
Cluster::backgroundPrefetchTask(std::string name, int widx,
                                Time until)
{
    co_await workers[static_cast<size_t>(widx)]
        ->orchestrator()
        .backgroundPrefetch(name, until);
}

void
Cluster::controlTick()
{
    ControlTickContext ctx;
    ctx.now = sim.now();
    ctx.workers = workerCount();
    ctx.coldP99Ms =
        fleetColdMs.count() > 0 ? fleetColdMs.percentile(99) : 0.0;
    for (const auto &tele : telemetry)
        ctx.coldStarts += tele.coldStarts;
    for (const auto &entry : deployments) {
        ControlFunctionView v;
        v.name = entry.first;
        v.homeWorker = LocalityHashPolicy::homeWorker(entry.first,
                                                      workerCount());
        std::int64_t warming = 0;
        for (const auto &w : workers) {
            v.idleInstances +=
                w->orchestrator().idleInstanceCount(entry.first);
            warming += w->orchestrator().warmingCount(entry.first);
        }
        v.warming = warming > 0;
        v.homeChunkResidency =
            chunkResidency(v.homeWorker, entry.first);
        ctx.functions.push_back(std::move(v));
    }

    std::vector<ControlAction> actions;
    activeControl->tick(ctx, actions);
    for (const ControlAction &a : actions) {
        switch (a.kind) {
          case ControlAction::Kind::PreWarm:
            sim.spawn(preWarmTask(a.function, a.worker));
            break;
          case ControlAction::Kind::Prefetch:
            sim.spawn(backgroundPrefetchTask(a.function, a.worker,
                                             a.until));
            break;
          case ControlAction::Kind::ScaleHint:
            if (a.hint > 0)
                scaleHold = std::max(scaleHold, a.hint);
            break;
        }
    }
}

sim::Task<void>
Cluster::janitor()
{
    while (!autoscalerStopping) {
        co_await sim.delay(cfg.scalePeriod);

        // Warm-pool waste accounting: integrate idle-warm bytes and
        // instance counts over the tick. Pure arithmetic, no
        // suspension — runs identically with or without a policy, so
        // a dormant control plane stays bit-identical to none.
        double dt = static_cast<double>(cfg.scalePeriod) / 1e9;
        for (const auto &w : workers) {
            const auto &orch = w->orchestrator();
            _wastedResidentByteSec +=
                static_cast<double>(orch.idleResidentBytes()) * dt;
            _idleWarmInstanceSec +=
                static_cast<double>(orch.idleInstanceTotal()) * dt;
        }

        if (activeControl != nullptr)
            controlTick();

        if (scaleHold > 0) {
            // A positive ScaleHint parks the sweep: cold p99 is over
            // target, shrinking the warm pool now would make it worse.
            --scaleHold;
            continue;
        }

        for (auto &entry : deployments) {
            Deployment &dep = entry.second;
            for (size_t i = 0; i < workers.size(); ++i) {
                auto &orch = workers[i]->orchestrator();
                if (orch.idleInstanceCount(entry.first) == 0)
                    continue;
                if (sim.now() - dep.lastUsed[i] >= cfg.keepAlive) {
                    // Scale to zero on this worker: idle instances
                    // have outlived the keep-alive window. Busy
                    // instances are left to finish their in-flight
                    // invocations.
                    std::int64_t stopped =
                        co_await orch.stopIdleInstances(entry.first);
                    if (stopped > 0)
                        ++dep.stats.scaleDowns;
                }
            }
        }
    }
    autoscalerRunning = false;
}

void
Cluster::startAutoscaler()
{
    if (autoscalerRunning)
        return;
    autoscalerRunning = true;
    autoscalerStopping = false;
    sim.spawn(janitor());
}

} // namespace vhive::cluster
