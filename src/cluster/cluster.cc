#include "cluster/cluster.hh"

#include "net/rpc.hh"
#include "util/logging.hh"

namespace vhive::cluster {

Cluster::Cluster(sim::Simulation &sim, ClusterConfig config)
    : sim(sim), cfg(std::move(config))
{
    VHIVE_ASSERT(cfg.workers >= 1);
    for (int i = 0; i < cfg.workers; ++i) {
        core::WorkerConfig wc = cfg.worker;
        // Each worker gets its own seed stream (distinct page layouts
        // do not matter, but determinism across runs does).
        wc.seed = cfg.worker.seed + static_cast<std::uint64_t>(i);
        workers.push_back(std::make_unique<core::Worker>(sim, wc));
    }
}

void
Cluster::deploy(const func::FunctionProfile &profile)
{
    if (deployments.count(profile.name))
        fatal("function %s already deployed", profile.name.c_str());
    Deployment dep;
    dep.profile = profile;
    dep.lastUsed.assign(workers.size(), 0);
    if (cfg.maxConcurrencyPerFunction > 0) {
        dep.concurrency = std::make_unique<sim::Semaphore>(
            sim, cfg.maxConcurrencyPerFunction);
    }
    deployments.emplace(profile.name, std::move(dep));
    for (auto &w : workers)
        w->orchestrator().registerFunction(profile);
}

sim::Task<void>
Cluster::prepareAllSnapshots()
{
    for (auto &entry : deployments) {
        for (auto &w : workers)
            co_await w->orchestrator().prepareSnapshot(entry.first);
    }
}

int
Cluster::route(const std::string &name)
{
    // Prefer a worker holding an idle warm instance; otherwise
    // round-robin across the fleet.
    for (size_t i = 0; i < workers.size(); ++i) {
        if (workers[i]->orchestrator().idleInstanceCount(name) > 0)
            return static_cast<int>(i);
    }
    rrCursor = (rrCursor + 1) % static_cast<int>(workers.size());
    return rrCursor;
}

sim::Task<Duration>
Cluster::invoke(const std::string &name)
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    Deployment &dep = it->second;

    Time t0 = sim.now();
    // Front-end + fabric hop to the worker.
    net::RpcParams rpc;
    co_await sim.delay(rpc.clusterHop);

    // Queue-proxy admission: bound in-flight invocations, FIFO.
    if (dep.concurrency) {
        Time q0 = sim.now();
        co_await dep.concurrency->acquire();
        dep.stats.queueDelayMs.add(toMs(sim.now() - q0));
    }

    int widx = route(name);
    core::InvokeOptions opts;
    opts.keepWarm = true;
    auto bd = co_await workers[static_cast<size_t>(widx)]
                  ->orchestrator()
                  .invoke(name, cfg.coldStartMode, opts);

    if (dep.concurrency)
        dep.concurrency->release();

    co_await sim.delay(rpc.clusterHop); // response hop
    Duration e2e = sim.now() - t0;

    dep.lastUsed[static_cast<size_t>(widx)] = sim.now();
    dep.stats.e2eLatencyMs.add(toMs(e2e));
    if (bd.cold)
        ++dep.stats.coldStarts;
    else
        ++dep.stats.warmHits;
    co_return e2e;
}

std::int64_t
Cluster::instanceCount(const std::string &name) const
{
    std::int64_t total = 0;
    for (const auto &w : workers)
        total += w->orchestrator().instanceCount(name);
    return total;
}

Bytes
Cluster::residentBytes() const
{
    Bytes total = 0;
    for (const auto &w : workers)
        total += w->orchestrator().totalResidentBytes();
    return total;
}

const FunctionClusterStats &
Cluster::stats(const std::string &name) const
{
    auto it = deployments.find(name);
    if (it == deployments.end())
        fatal("function %s is not deployed", name.c_str());
    return it->second.stats;
}

void
Cluster::resetStats()
{
    for (auto &entry : deployments)
        entry.second.stats = FunctionClusterStats{};
}

sim::Task<void>
Cluster::janitor()
{
    while (!autoscalerStopping) {
        co_await sim.delay(cfg.scalePeriod);
        for (auto &entry : deployments) {
            Deployment &dep = entry.second;
            for (size_t i = 0; i < workers.size(); ++i) {
                auto &orch = workers[i]->orchestrator();
                if (orch.idleInstanceCount(entry.first) == 0)
                    continue;
                if (sim.now() - dep.lastUsed[i] >= cfg.keepAlive) {
                    // Scale to zero on this worker: idle instances
                    // have outlived the keep-alive window.
                    co_await orch.stopAllInstances(entry.first);
                    ++dep.stats.scaleDowns;
                }
            }
        }
    }
    autoscalerRunning = false;
}

void
Cluster::startAutoscaler()
{
    if (autoscalerRunning)
        return;
    autoscalerRunning = true;
    autoscalerStopping = false;
    sim.spawn(janitor());
}

} // namespace vhive::cluster
