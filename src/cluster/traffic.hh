/**
 * @file
 * Invocation traffic generators. Production serverless arrivals are
 * sporadic (Sec. 2.1: 90% of functions invoked less than once per
 * minute), which the Poisson generator models; the closed-loop
 * generator drives steady background load (Sec. 6.3's 20 warm
 * functions experiment).
 */

#ifndef VHIVE_CLUSTER_TRAFFIC_HH
#define VHIVE_CLUSTER_TRAFFIC_HH

#include <memory>
#include <string>

#include "cluster/cluster.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace vhive::cluster {

/**
 * Open-loop Poisson arrivals: invocations fire at exponential
 * inter-arrival times regardless of completion of earlier ones.
 */
class PoissonTraffic
{
  public:
    /**
     * @param mean_interarrival Mean gap between invocation arrivals.
     * @param count             Total invocations to issue.
     */
    PoissonTraffic(sim::Simulation &sim, Cluster &cluster,
                   std::string function, Duration mean_interarrival,
                   std::int64_t count, std::uint64_t seed);

    /** Drive the load; returns when all invocations completed. */
    sim::Task<void> run();

  private:
    sim::Task<void> fireOne(sim::Latch *done);

    sim::Simulation &sim;
    Cluster &cluster;
    std::string function;
    Duration meanInterarrival;
    std::int64_t count;
    Rng rng;
};

/**
 * Closed-loop steady load: a fixed number of clients, each invoking
 * again after the previous response plus a think time. Keeps the
 * function's instances warm.
 */
class ClosedLoopTraffic
{
  public:
    ClosedLoopTraffic(sim::Simulation &sim, Cluster &cluster,
                      std::string function, int clients,
                      Duration think_time, std::uint64_t seed);

    /** Start the clients as detached tasks; they run until stop(). */
    void start();

    /**
     * Ask the clients to finish their current request and exit. The
     * clients still reference this object until they drain: callers
     * MUST keep it alive until stopAndDrain() completes (or the
     * simulation ends).
     */
    void stop() { stopping = true; }

    /** Stop and wait until every client has exited. */
    sim::Task<void> stopAndDrain();

    /** Completed invocations across all clients. */
    std::int64_t completed() const { return _completed; }

  private:
    sim::Task<void> client(int idx);

    sim::Simulation &sim;
    Cluster &cluster;
    std::string function;
    int clients;
    Duration thinkTime;
    Rng rng;
    bool stopping = false;
    std::int64_t _completed = 0;
    std::unique_ptr<sim::Latch> drain;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_TRAFFIC_HH
