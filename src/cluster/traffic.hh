/**
 * @file
 * Invocation traffic generators. Production serverless arrivals are
 * sporadic (Sec. 2.1: 90% of functions invoked less than once per
 * minute), which the Poisson generator models; the closed-loop
 * generator drives steady background load (Sec. 6.3's 20 warm
 * functions experiment).
 *
 * TrafficEngine scales this to planet-shaped load (ROADMAP item 1):
 * heavy-tailed function populations with Zipf invocation skew (the
 * "Serverless in the Wild" Azure characterization), diurnal rate
 * modulation, and synchronized burst events — tenant flash crowds and
 * deploy storms — sampled by Lewis-Shedler thinning so arrival streams
 * stay deterministic per seed. TrafficWorkload drives a sequential
 * Cluster open-loop with it; cluster::ParallelFleet consumes the same
 * engine for its per-domain arrival loops.
 */

#ifndef VHIVE_CLUSTER_TRAFFIC_HH
#define VHIVE_CLUSTER_TRAFFIC_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "func/profile.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::cluster {

/**
 * Open-loop Poisson arrivals: invocations fire at exponential
 * inter-arrival times regardless of completion of earlier ones.
 */
class PoissonTraffic
{
  public:
    /**
     * @param mean_interarrival Mean gap between invocation arrivals.
     * @param count             Total invocations to issue.
     */
    PoissonTraffic(sim::Simulation &sim, Cluster &cluster,
                   std::string function, Duration mean_interarrival,
                   std::int64_t count, std::uint64_t seed);

    /** Drive the load; returns when all invocations completed. */
    sim::Task<void> run();

  private:
    sim::Task<void> fireOne(sim::Latch *done);

    sim::Simulation &sim;
    Cluster &cluster;
    std::string function;
    Duration meanInterarrival;
    std::int64_t count;
    Rng rng;
};

/**
 * Closed-loop steady load: a fixed number of clients, each invoking
 * again after the previous response plus a think time. Keeps the
 * function's instances warm.
 */
class ClosedLoopTraffic
{
  public:
    ClosedLoopTraffic(sim::Simulation &sim, Cluster &cluster,
                      std::string function, int clients,
                      Duration think_time, std::uint64_t seed);

    /** Start the clients as detached tasks; they run until stop(). */
    void start();

    /**
     * Ask the clients to finish their current request and exit. The
     * clients still reference this object until they drain: callers
     * MUST keep it alive until stopAndDrain() completes (or the
     * simulation ends).
     */
    void stop() { stopping = true; }

    /** Stop and wait until every client has exited. */
    sim::Task<void> stopAndDrain();

    /** Completed invocations across all clients. */
    std::int64_t completed() const { return _completed; }

  private:
    sim::Task<void> client(int idx);

    sim::Simulation &sim;
    Cluster &cluster;
    std::string function;
    int clients;
    Duration thinkTime;
    Rng rng;
    bool stopping = false;
    std::int64_t _completed = 0;
    std::unique_ptr<sim::Latch> drain;
};

/** Sinusoidal day/night modulation of every function's rate. */
struct DiurnalShape
{
    /** Cycle length (a simulated "day"; shorten it for benches). */
    Duration period = sec(86400);

    /**
     * Peak-to-mean swing in [0, 0.95]: rate(t) scales by
     * 1 + amplitude * sin(2*pi * (t/period + phase)). 0 disables.
     */
    double amplitude = 0;

    /** Phase offset as a fraction of the period. */
    double phase = 0;
};

/** Kinds of synchronized burst events. */
enum class BurstKind {
    /**
     * One tenant's traffic spikes together (retry storm, marketing
     * event): every function of @p tenant multiplies its rate.
     */
    FlashCrowd,

    /**
     * A coordinated rollout re-invokes a random fraction of the whole
     * population at once (membership drawn per burst from the seed).
     */
    DeployStorm,
};

/** One burst event, relative to traffic start. */
struct BurstSpec
{
    BurstKind kind = BurstKind::FlashCrowd;
    Duration start = sec(60);
    Duration duration = sec(30);

    /** Rate multiplier applied to affected functions while active. */
    double multiplier = 10.0;

    /** FlashCrowd: the tenant whose functions spike. */
    int tenant = 0;

    /** DeployStorm: fraction of the population redeployed. */
    double fraction = 0.25;
};

/** Configuration of the planet-scale traffic model. */
struct TrafficConfig
{
    /** Deployed population size (thousands at generator scale). */
    int functions = 1000;

    /** Tenants the population is uniformly assigned to. */
    int tenants = 8;

    /**
     * Zipf exponent of the invocation-rate skew: function at
     * popularity rank r gets weight 1/(r+1)^s. ~1 matches the Azure
     * trace's heavy tail (a few hot functions, a long cold tail).
     */
    double zipfExponent = 1.1;

    /** Aggregate mean arrival rate across the population (1/sec). */
    double aggregateRps = 100.0;

    /** Simulated horizon arrivals are generated for. */
    Duration horizon = sec(600);

    DiurnalShape diurnal{};
    std::vector<BurstSpec> bursts;

    /**
     * Fraction of the population invoked on a timer (the cron-like
     * periodic class of the Azure characterization) instead of
     * Poisson arrivals. Membership, per-function period (log-uniform
     * in [periodicMinPeriod, periodicMaxPeriod]) and phase are drawn
     * from the seed; a timer neither flash-crowds nor follows the
     * diurnal curve, so periodic functions ignore burst and diurnal
     * modulation (and their Zipf rate share — aggregateRps then only
     * approximates the population total). 0 disables the class.
     */
    double periodicFraction = 0;
    Duration periodicMinPeriod = sec(60);
    Duration periodicMaxPeriod = sec(480);

    /** Per-arrival uniform timer jitter, as a fraction of the period. */
    double periodicJitter = 0.05;

    std::uint64_t seed = 0x7ea41c;

    /** Profile synthesis: same semantics as AzureWorkloadConfig. */
    std::vector<int> profilePool = {0, 1, 2, 3, 4, 5, 7};
    std::vector<func::FunctionClass> classMix;
};

/**
 * Deterministic rate model + arrival sampler. Construction
 * precomputes per-function profiles ("tr_<i>_<base>"), tenant
 * assignment, Zipf base rates and burst memberships from the seed;
 * rateAt()/nextArrival() are then pure functions of (function, time)
 * and the caller's Rng stream, so every consumer — sequential driver,
 * parallel fleet, property tests — sees the same traffic.
 */
class TrafficEngine
{
  public:
    explicit TrafficEngine(TrafficConfig config);

    const TrafficConfig &config() const { return cfg; }

    int functionCount() const { return cfg.functions; }

    const func::FunctionProfile &profile(int fn) const
    {
        return profiles[static_cast<size_t>(fn)];
    }

    /** Tenant @p fn belongs to. */
    int tenantOf(int fn) const
    {
        return tenants[static_cast<size_t>(fn)];
    }

    /** Whether burst @p b applies to @p fn. */
    bool burstAffects(int b, int fn) const
    {
        return burstMembers[static_cast<size_t>(b)]
                           [static_cast<size_t>(fn)];
    }

    /** Zipf-weighted mean rate of @p fn (1/sec), bursts aside. */
    double baseRate(int fn) const
    {
        return baseRates[static_cast<size_t>(fn)];
    }

    /** Whether @p fn fires on a timer instead of Poisson arrivals. */
    bool isPeriodic(int fn) const
    {
        return periods[static_cast<size_t>(fn)] > 0;
    }

    /** Timer period of @p fn (0 when not periodic). */
    Duration periodOf(int fn) const
    {
        return periods[static_cast<size_t>(fn)];
    }

    /** Instantaneous rate of @p fn at @p t since traffic start. */
    double rateAt(int fn, Duration t) const;

    /** Upper bound on rateAt over all t (thinning envelope). */
    double peakRate(int fn) const;

    /** Integral of rateAt over [t0, t1) (for rate-accuracy tests). */
    double expectedArrivals(int fn, Duration t0, Duration t1) const;

    /**
     * Next arrival of @p fn strictly after @p now (relative to
     * traffic start), sampled by thinning against peakRate() from
     * @p rng. May exceed the horizon; the caller bounds the loop.
     */
    Duration nextArrival(int fn, Duration now, Rng &rng) const;

  private:
    double diurnalFactor(Duration t) const;

    TrafficConfig cfg;
    std::vector<func::FunctionProfile> profiles;
    std::vector<int> tenants;
    std::vector<double> baseRates;
    std::vector<std::vector<bool>> burstMembers;
    std::vector<double> burstPeaks; ///< per-fn product of multipliers
    std::vector<Duration> periods;  ///< timer period, 0 = Poisson
    std::vector<Duration> phases;   ///< timer phase in [0, period)
};

/** Results of one open-loop traffic run. */
struct TrafficWorkloadResult
{
    Samples e2eLatencyMs;
    std::int64_t invocations = 0;
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t failedInvocations = 0;
};

/**
 * Drives a sequential Cluster with TrafficEngine arrivals, open-loop:
 * arrivals fire on schedule whether or not earlier invocations
 * completed, so flash crowds genuinely pile onto the shared data
 * plane (a closed loop would self-throttle exactly when contention
 * matters). Deploys the engine's profiles on construction.
 */
class TrafficWorkload
{
  public:
    TrafficWorkload(sim::Simulation &sim, Cluster &cluster,
                    TrafficConfig config);

    const TrafficEngine &engine() const { return eng; }

    /** Run to completion (all fired invocations finished). */
    sim::Task<TrafficWorkloadResult> run();

  private:
    sim::Task<void> arrivalLoop(int fn, sim::Latch *loops_done);
    sim::Task<void> fireOne(int fn);

    sim::Simulation &sim;
    Cluster &cluster;
    TrafficEngine eng;
    std::int64_t launched = 0;
    std::int64_t completed = 0;
    bool launchDone = false;
    std::unique_ptr<sim::Gate> drained;
    TrafficWorkloadResult result;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_TRAFFIC_HH
