/**
 * @file
 * Predictive control plane for the fleet (ROADMAP item 2).
 *
 * A `ControlPolicy` observes per-function arrival history plus a
 * fleet-state snapshot each control tick and emits actions:
 *
 *   PreWarm   — spin an instance on the function's hash-home worker
 *               ahead of the predicted next invocation, so the request
 *               lands warm (or, if it arrives mid-pre-warm, degrades to
 *               a partially-warmed start instead of a full cold one).
 *   Prefetch  — warm the home worker's chunk/tier caches in the
 *               background (no instance), cheaper than a pre-warm and
 *               useful further ahead of the predicted window.
 *   ScaleHint — p99-driven capacity hint consumed by the janitor:
 *               positive holds scale-downs while cold latency is over
 *               target, negative shrinks the idle pool faster.
 *
 * Policies are registry-keyed like `SnapshotLoader`s and
 * `RoutingPolicy`s. All built-ins are strictly deterministic: they draw
 * no random numbers and schedule no events themselves, so an installed
 * but idle policy leaves simulations bit-identical, and on the parallel
 * kernel the policy runs entirely in the control-plane domain.
 *
 * The prediction model is hybrid-histogram keep-alive from the Azure
 * trace literature ("Serverless in the Wild"): a per-function
 * inter-arrival histogram yields a [p-lo, p-hi] window for the next
 * invocation; functions whose history is too short or too dispersed
 * fall back to a plain bounded keep-alive.
 */

#ifndef VHIVE_CLUSTER_CONTROL_POLICY_HH
#define VHIVE_CLUSTER_CONTROL_POLICY_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/units.hh"

namespace vhive::cluster {

enum class ControlPolicyKind
{
    /** No control actions; the janitor runs plain keep-alive. */
    None,
    /**
     * Always-warm: any function ever invoked that has no idle instance
     * is pre-warmed every tick. Best cold p99 money can buy, and the
     * wasted-resident-bytes ceiling the histogram policy is judged
     * against.
     */
    NaiveKeepAlive,
    /** Hybrid-histogram keep-alive prediction (the paper policy). */
    HybridHistogram,
    /**
     * Replay-clairvoyant upper bound: fed the exact arrival schedule,
     * pre-warms just-in-time. Perfect accuracy, minimal waste.
     */
    Oracle,
};

const char *controlPolicyName(ControlPolicyKind kind);

/** One action requested by a policy tick. */
struct ControlAction
{
    enum class Kind { PreWarm, Prefetch, ScaleHint };

    Kind kind = Kind::PreWarm;
    /** Function the action targets (PreWarm/Prefetch). */
    std::string function;
    /** Worker to act on (the function's hash-home worker). */
    int worker = 0;
    /** ScaleHint only: >0 hold scale-downs, <0 shrink faster. */
    int hint = 0;
    /**
     * Prefetch only: end of the predicted invocation window. Budgeted
     * caches shield the prefetched bytes from eviction until this time
     * (PrefetchPinned policy); -1 = no shield.
     */
    Time until = -1;
};

/** Per-function slice of the fleet snapshot a policy ticks against. */
struct ControlFunctionView
{
    std::string name;
    /** Hash-home worker under locality routing (pre-warm target). */
    int homeWorker = 0;
    /** Idle (warm, not busy) instances fleet-wide. */
    std::int64_t idleInstances = 0;
    /** Pre-warm already in flight for this function. */
    bool warming = false;
    /** Fraction of the WS chunks resident on the home worker [0,1]. */
    double homeChunkResidency = 0;
};

/** Fleet snapshot handed to `ControlPolicy::tick`. */
struct ControlTickContext
{
    Time now = 0;
    int workers = 1;
    /** Cold-start e2e p99 so far, milliseconds (0 while no colds). */
    double coldP99Ms = 0;
    /** Cumulative cold starts so far (policies diff across ticks). */
    std::int64_t coldStarts = 0;
    std::vector<ControlFunctionView> functions;
};

/**
 * Per-function inter-arrival histogram with fixed-width bins, the
 * "Serverless in the Wild" shape (the trace policy bins at 1-minute
 * resolution over 4 hours; the simulator bins at 5 s over one hour so
 * a predicted window tracks the arrival jitter rather than the bin
 * width — with logarithmic buckets a 5-minute period lands in a
 * ~4-minute-wide bucket and every pre-warm fires uselessly early).
 * Gaps past an hour clamp into the last bin. Pure arithmetic —
 * deterministic by construction.
 */
class InterarrivalHistogram
{
  public:
    static constexpr Duration kBinWidth = sec(5);
    static constexpr int kBuckets = 720; // one simulated hour

    void note(Duration gap);

    std::int64_t count() const { return total; }

    /**
     * Inter-arrival gap at percentile @p p in [0, 100], interpolated
     * within the matching bucket; 0 when empty.
     */
    Duration percentileGap(double p) const;

    /**
     * Dispersion check for the out-of-bounds fallback: true when the
     * [p5, p99] window spans more than @p spreadLimit buckets, i.e. the
     * history is too scattered to predict from.
     */
    bool outOfBounds(int spreadLimit) const;

  private:
    static int bucketOf(Duration gap);
    static Duration bucketLo(int b);

    std::array<std::int64_t, kBuckets> counts{};
    std::int64_t total = 0;
};

/** Tunables shared by the predictive policies. */
struct ControlPolicyParams
{
    /** Pre-warm this far ahead of the predicted window start. */
    Duration preWarmLead = sec(4);
    /** Prefetch chunks when the window is within this horizon. */
    Duration prefetchHorizon = sec(30);
    /** Histogram needs this many gaps before it predicts. */
    std::int64_t minSamples = 3;
    /** OOB fallback when [p5,p99] spans more than this many buckets. */
    int spreadLimit = 6;
    /** OOB fallback: keep the function warm this long after use. */
    Duration fallbackKeepAlive = sec(120);
    /** Hold scale-downs while cold p99 exceeds this (ms). */
    double scaleTargetP99Ms = 1000.0;
};

class ControlPolicy
{
  public:
    virtual ~ControlPolicy() = default;

    virtual const char *name() const = 0;

    /** Observe one arrival for @p fn (called on the dispatch path). */
    virtual void noteArrival(const std::string &fn, Time now) = 0;

    /** Emit this tick's actions into @p out. Must not draw RNG. */
    virtual void tick(const ControlTickContext &ctx,
                      std::vector<ControlAction> &out) = 0;
};

/** `ControlPolicyKind::None`: observes nothing, emits nothing. */
class NoControlPolicy final : public ControlPolicy
{
  public:
    const char *name() const override { return "none"; }
    void noteArrival(const std::string &, Time) override {}
    void tick(const ControlTickContext &,
              std::vector<ControlAction> &) override
    {
    }
};

class NaiveKeepAlivePolicy final : public ControlPolicy
{
  public:
    const char *name() const override { return "naive-keep-alive"; }
    void noteArrival(const std::string &fn, Time now) override;
    void tick(const ControlTickContext &ctx,
              std::vector<ControlAction> &out) override;

  private:
    std::map<std::string, Time> lastArrival;
};

class HybridHistogramPolicy final : public ControlPolicy
{
  public:
    explicit HybridHistogramPolicy(ControlPolicyParams p = {})
        : params(p)
    {
    }

    const char *name() const override { return "hybrid-histogram"; }
    void noteArrival(const std::string &fn, Time now) override;
    void tick(const ControlTickContext &ctx,
              std::vector<ControlAction> &out) override;

  private:
    struct FnState
    {
        InterarrivalHistogram hist;
        Time lastArrival = 0;
        bool seen = false;
        /** Prefetch issued for the current predicted window. */
        Time prefetchedFor = -1;
    };

    ControlPolicyParams params;
    std::map<std::string, FnState> fns;
    std::int64_t lastColdStarts = 0;
};

class OraclePolicy final : public ControlPolicy
{
  public:
    explicit OraclePolicy(ControlPolicyParams p = {}) : params(p) {}

    const char *name() const override { return "oracle"; }

    /**
     * Feed the clairvoyant schedule: per-function arrival offsets
     * relative to the epoch passed to `setEpoch` (typically the
     * simulated time at which the workload's arrival loops start).
     */
    void setSchedule(const std::string &fn,
                     std::vector<Duration> offsets);
    void setEpoch(Time epoch);

    void noteArrival(const std::string &, Time) override {}
    void tick(const ControlTickContext &ctx,
              std::vector<ControlAction> &out) override;

  private:
    struct FnSchedule
    {
        std::vector<Duration> offsets;
        std::size_t cursor = 0;
        /** Prefetch issued for this upcoming arrival. */
        Time prefetchedFor = -1;
    };

    ControlPolicyParams params;
    Time epoch = 0;
    std::map<std::string, FnSchedule> fns;
};

/** Registry of control policies, keyed by kind (see RoutingPolicy). */
class ControlPolicyRegistry
{
  public:
    ControlPolicyRegistry();

    /** Look up a policy; aborts if the kind is not registered. */
    ControlPolicy &policyFor(ControlPolicyKind kind) const;

    /** Look up a policy; nullptr if the kind is not registered. */
    ControlPolicy *find(ControlPolicyKind kind) const;

    /** Register (or replace) the policy for a kind. */
    void registerPolicy(ControlPolicyKind kind,
                        std::unique_ptr<ControlPolicy> policy);

    /** All registered kinds, sorted. */
    std::vector<ControlPolicyKind> kinds() const;

  private:
    std::map<ControlPolicyKind, std::unique_ptr<ControlPolicy>> policies;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_CONTROL_POLICY_HH
