#include "cluster/azure_workload.hh"

#include <cmath>

#include "func/profile.hh"
#include "util/logging.hh"

namespace vhive::cluster {

std::vector<AzureMixEntry>
synthesizeAzureMix(const AzureWorkloadConfig &cfg)
{
    VHIVE_ASSERT(cfg.functions >= 1);
    VHIVE_ASSERT(!cfg.profilePool.empty() || !cfg.classMix.empty());
    VHIVE_ASSERT(cfg.minInterarrival > 0 &&
                 cfg.maxInterarrival >= cfg.minInterarrival);

    Rng rng(cfg.seed, "azure-workload");
    const auto &pool = func::functionBench();
    double log_min =
        std::log(static_cast<double>(cfg.minInterarrival));
    double log_max =
        std::log(static_cast<double>(cfg.maxInterarrival));
    std::vector<AzureMixEntry> mix;
    mix.reserve(static_cast<size_t>(cfg.functions));
    for (int i = 0; i < cfg.functions; ++i) {
        func::FunctionProfile p;
        if (!cfg.classMix.empty()) {
            // Class-generated mix: the profile comes from its own
            // named sub-stream, so the "azure-workload" stream below
            // sees exactly the draws it always did.
            func::FunctionClass cls =
                cfg.classMix[static_cast<size_t>(i) %
                             cfg.classMix.size()];
            p = func::makeClassProfile(cls, cfg.seed, i);
        } else {
            int pool_idx = cfg.profilePool[static_cast<size_t>(i) %
                                           cfg.profilePool.size()];
            p = pool[static_cast<size_t>(pool_idx)];
        }
        p.name = "az_" + std::to_string(i) + "_" + p.name;

        // Log-uniform inter-arrival: most functions end up sporadic,
        // matching the Azure study's long tail.
        double u = rng.uniform();
        mix.push_back(AzureMixEntry{
            std::move(p),
            static_cast<Duration>(
                std::exp(log_min + u * (log_max - log_min)))});
    }
    return mix;
}

AzureWorkload::AzureWorkload(sim::Simulation &sim, Cluster &cluster,
                             AzureWorkloadConfig config)
    : sim(sim), cluster(cluster), cfg(std::move(config))
{
    for (auto &entry : synthesizeAzureMix(cfg)) {
        names.push_back(entry.profile.name);
        cluster.deploy(entry.profile);
        interarrival.push_back(entry.meanInterarrival);
    }
}

sim::Task<void>
AzureWorkload::arrivalLoop(int idx, sim::Latch *done)
{
    Rng local(cfg.seed,
              "azure-arrivals/" + names[static_cast<size_t>(idx)]);
    Duration mean = interarrival[static_cast<size_t>(idx)];
    Time deadline = sim.now() + cfg.horizon;
    while (true) {
        Duration gap = static_cast<Duration>(
            local.exponential(static_cast<double>(mean)));
        if (sim.now() + gap >= deadline)
            break;
        co_await sim.delay(gap);
        Duration e2e =
            co_await cluster.invoke(names[static_cast<size_t>(idx)]);
        result.e2eLatencyMs.add(toMs(e2e));
        ++result.invocations;
    }
    done->arrive();
}

sim::Task<void>
AzureWorkload::memorySampler()
{
    while (!samplerStopping) {
        co_await sim.delay(cfg.samplePeriod);
        memIntegralMbSec += toMiB(cluster.residentBytes()) *
                            (static_cast<double>(cfg.samplePeriod) /
                             static_cast<double>(kSecond));
        sampledFor += cfg.samplePeriod;
    }
}

sim::Task<AzureWorkloadResult>
AzureWorkload::run()
{
    co_await cluster.prepareAllSnapshots();

    core::ColdStartMode mode = cluster.config().coldStartMode;
    bool mode_needs_record = cluster.worker(0)
                                 .orchestrator()
                                 .loaders()
                                 .loaderFor(mode)
                                 .needsRecord();
    if (cfg.preRecordWorkingSets && mode_needs_record &&
        !cluster.config().sharedSnapshots) {
        // One record-phase invocation per function per worker, off
        // the measured window. (Shared staging already recorded once
        // on each function's home worker; the other workers are meant
        // to pull the staged artifacts remotely, in-window.)
        for (const auto &n : names) {
            for (int wi = 0; wi < cluster.workerCount(); ++wi) {
                auto &orch = cluster.worker(wi).orchestrator();
                orch.flushHostCaches();
                core::InvokeOptions opts;
                opts.forceCold = true;
                (void)co_await orch.invoke(n, mode, opts);
            }
        }
        cluster.resetStats();
    }

    cluster.startAutoscaler();
    sim.spawn(memorySampler());

    sim::Latch done(sim, cfg.functions);
    for (int i = 0; i < cfg.functions; ++i)
        sim.spawn(arrivalLoop(i, &done));
    co_await done.wait();

    samplerStopping = true;
    cluster.stopAutoscaler();

    for (const auto &n : names) {
        const auto &st = cluster.stats(n);
        result.coldStarts += st.coldStarts;
        result.warmHits += st.warmHits;
        result.failedInvocations += st.failedInvocations;
    }
    result.avgResidentMb =
        sampledFor > 0 ? memIntegralMbSec /
                             (static_cast<double>(sampledFor) /
                              static_cast<double>(kSecond))
                       : 0.0;
    result.memoryGbMin = memIntegralMbSec / 1024.0 / 60.0;
    co_return result;
}

} // namespace vhive::cluster
