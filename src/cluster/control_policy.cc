#include "cluster/control_policy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::cluster {

const char *
controlPolicyName(ControlPolicyKind kind)
{
    switch (kind) {
      case ControlPolicyKind::None:
        return "none";
      case ControlPolicyKind::NaiveKeepAlive:
        return "naive-keep-alive";
      case ControlPolicyKind::HybridHistogram:
        return "hybrid-histogram";
      case ControlPolicyKind::Oracle:
        return "oracle";
    }
    return "?";
}

// ---------------------------------------------------------------------
// InterarrivalHistogram

int
InterarrivalHistogram::bucketOf(Duration gap)
{
    // Bin b covers [b * kBinWidth, (b+1) * kBinWidth); gaps past an
    // hour clamp to the last bin.
    if (gap < 0)
        return 0;
    auto b = static_cast<int>(gap / kBinWidth);
    return std::min(b, kBuckets - 1);
}

Duration
InterarrivalHistogram::bucketLo(int b)
{
    return kBinWidth * b;
}

void
InterarrivalHistogram::note(Duration gap)
{
    ++counts[static_cast<std::size_t>(bucketOf(gap))];
    ++total;
}

Duration
InterarrivalHistogram::percentileGap(double p) const
{
    if (total == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    // Smallest gap G such that at least p% of observed gaps are <= G,
    // interpolated linearly within the matching bucket.
    double target = p / 100.0 * static_cast<double>(total);
    std::int64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
        std::int64_t n = counts[static_cast<std::size_t>(b)];
        if (n == 0)
            continue;
        if (static_cast<double>(cum + n) >= target) {
            double frac =
                (target - static_cast<double>(cum)) /
                static_cast<double>(n);
            frac = std::clamp(frac, 0.0, 1.0);
            return bucketLo(b) +
                   static_cast<Duration>(
                       frac * static_cast<double>(kBinWidth));
        }
        cum += n;
    }
    return bucketLo(kBuckets);
}

bool
InterarrivalHistogram::outOfBounds(int spreadLimit) const
{
    if (total == 0)
        return true;
    return bucketOf(percentileGap(99.0)) -
               bucketOf(percentileGap(5.0)) >
           spreadLimit;
}

// ---------------------------------------------------------------------
// NaiveKeepAlivePolicy

void
NaiveKeepAlivePolicy::noteArrival(const std::string &fn, Time now)
{
    lastArrival[fn] = now;
}

void
NaiveKeepAlivePolicy::tick(const ControlTickContext &ctx,
                           std::vector<ControlAction> &out)
{
    // Always-warm: every function ever invoked keeps one instance hot
    // on its home worker, forever.
    for (const ControlFunctionView &v : ctx.functions) {
        if (!lastArrival.count(v.name))
            continue;
        if (v.idleInstances > 0 || v.warming)
            continue;
        ControlAction a;
        a.kind = ControlAction::Kind::PreWarm;
        a.function = v.name;
        a.worker = v.homeWorker;
        out.push_back(std::move(a));
    }
}

// ---------------------------------------------------------------------
// HybridHistogramPolicy

void
HybridHistogramPolicy::noteArrival(const std::string &fn, Time now)
{
    FnState &s = fns[fn];
    if (s.seen)
        s.hist.note(now - s.lastArrival);
    s.lastArrival = now;
    s.seen = true;
}

void
HybridHistogramPolicy::tick(const ControlTickContext &ctx,
                            std::vector<ControlAction> &out)
{
    for (const ControlFunctionView &v : ctx.functions) {
        auto it = fns.find(v.name);
        if (it == fns.end() || !it->second.seen)
            continue;
        FnState &s = it->second;
        if (v.idleInstances > 0 || v.warming)
            continue;

        if (s.hist.count() < params.minSamples ||
            s.hist.outOfBounds(params.spreadLimit)) {
            // Out-of-bounds fallback: too little or too scattered a
            // history to predict from — plain bounded keep-alive.
            if (ctx.now - s.lastArrival <= params.fallbackKeepAlive) {
                ControlAction a;
                a.kind = ControlAction::Kind::PreWarm;
                a.function = v.name;
                a.worker = v.homeWorker;
                out.push_back(std::move(a));
            }
            continue;
        }

        // Predicted next-invocation window from the gap histogram.
        Time wStart = s.lastArrival + s.hist.percentileGap(5.0);
        Time wEnd = s.lastArrival + s.hist.percentileGap(99.0);
        if (ctx.now > wEnd)
            continue; // prediction missed; wait for the next arrival
        if (wStart - ctx.now <= params.preWarmLead) {
            ControlAction a;
            a.kind = ControlAction::Kind::PreWarm;
            a.function = v.name;
            a.worker = v.homeWorker;
            out.push_back(std::move(a));
        } else if (wStart - ctx.now <= params.prefetchHorizon &&
                   v.homeChunkResidency < 1.0 &&
                   s.prefetchedFor != wStart) {
            s.prefetchedFor = wStart;
            ControlAction a;
            a.kind = ControlAction::Kind::Prefetch;
            a.function = v.name;
            a.worker = v.homeWorker;
            a.until = wEnd;
            out.push_back(std::move(a));
        }
    }

    // p99-driven scale hint: while cold latency is over target and
    // colds are still landing, hold the janitor's scale-downs.
    std::int64_t delta = ctx.coldStarts - lastColdStarts;
    lastColdStarts = ctx.coldStarts;
    if (delta > 0 && ctx.coldP99Ms > params.scaleTargetP99Ms) {
        ControlAction a;
        a.kind = ControlAction::Kind::ScaleHint;
        a.hint = 1;
        out.push_back(std::move(a));
    }
}

// ---------------------------------------------------------------------
// OraclePolicy

void
OraclePolicy::setSchedule(const std::string &fn,
                          std::vector<Duration> offsets)
{
    std::sort(offsets.begin(), offsets.end());
    fns[fn] = FnSchedule{std::move(offsets), 0, -1};
}

void
OraclePolicy::setEpoch(Time t)
{
    epoch = t;
}

void
OraclePolicy::tick(const ControlTickContext &ctx,
                   std::vector<ControlAction> &out)
{
    for (const ControlFunctionView &v : ctx.functions) {
        auto it = fns.find(v.name);
        if (it == fns.end())
            continue;
        FnSchedule &s = it->second;
        while (s.cursor < s.offsets.size() &&
               epoch + s.offsets[s.cursor] < ctx.now)
            ++s.cursor;
        if (s.cursor >= s.offsets.size())
            continue;
        if (v.idleInstances > 0 || v.warming)
            continue;
        Time next = epoch + s.offsets[s.cursor];
        if (next - ctx.now <= params.preWarmLead) {
            ControlAction a;
            a.kind = ControlAction::Kind::PreWarm;
            a.function = v.name;
            a.worker = v.homeWorker;
            out.push_back(std::move(a));
        } else if (next - ctx.now <= params.prefetchHorizon &&
                   v.homeChunkResidency < 1.0 &&
                   s.prefetchedFor != next) {
            s.prefetchedFor = next;
            ControlAction a;
            a.kind = ControlAction::Kind::Prefetch;
            a.function = v.name;
            a.worker = v.homeWorker;
            a.until = next;
            out.push_back(std::move(a));
        }
    }
}

// ---------------------------------------------------------------------
// ControlPolicyRegistry

ControlPolicyRegistry::ControlPolicyRegistry()
{
    registerPolicy(ControlPolicyKind::None,
                   std::make_unique<NoControlPolicy>());
    registerPolicy(ControlPolicyKind::NaiveKeepAlive,
                   std::make_unique<NaiveKeepAlivePolicy>());
    registerPolicy(ControlPolicyKind::HybridHistogram,
                   std::make_unique<HybridHistogramPolicy>());
    registerPolicy(ControlPolicyKind::Oracle,
                   std::make_unique<OraclePolicy>());
}

ControlPolicy &
ControlPolicyRegistry::policyFor(ControlPolicyKind kind) const
{
    ControlPolicy *p = find(kind);
    if (p == nullptr)
        fatal("no ControlPolicy registered for kind %d",
              static_cast<int>(kind));
    return *p;
}

ControlPolicy *
ControlPolicyRegistry::find(ControlPolicyKind kind) const
{
    auto it = policies.find(kind);
    return it == policies.end() ? nullptr : it->second.get();
}

void
ControlPolicyRegistry::registerPolicy(
    ControlPolicyKind kind, std::unique_ptr<ControlPolicy> policy)
{
    VHIVE_ASSERT(policy != nullptr);
    policies[kind] = std::move(policy);
}

std::vector<ControlPolicyKind>
ControlPolicyRegistry::kinds() const
{
    std::vector<ControlPolicyKind> out;
    out.reserve(policies.size());
    for (const auto &entry : policies)
        out.push_back(entry.first);
    return out;
}

} // namespace vhive::cluster
