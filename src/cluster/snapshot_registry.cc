#include "cluster/snapshot_registry.hh"

#include "cluster/routing_policy.hh"
#include "util/logging.hh"

namespace vhive::cluster {

SnapshotRegistry::SnapshotRegistry(
    sim::Simulation &sim, net::ObjectStore &store,
    const std::vector<std::unique_ptr<core::Worker>> &workers,
    core::ColdStartMode mode)
    : sim(sim), store(store), workers(workers), mode(mode)
{
    VHIVE_ASSERT(!workers.empty());
}

int
SnapshotRegistry::homeWorkerFor(const std::string &name) const
{
    // Same ring placement as LocalityHashPolicy, so a locality-routed
    // function's home worker is also the one that built (and kept a
    // local copy of) its artifacts.
    return LocalityHashPolicy::homeWorker(
        name, static_cast<int>(workers.size()));
}

sim::Task<void>
SnapshotRegistry::ensureStaged(const std::string &name)
{
    Entry &e = entries[name];
    if (e.art.staged)
        co_return;
    if (e.staging) {
        co_await e.done->wait();
        co_return;
    }
    e.staging = true;
    if (!e.done)
        e.done = std::make_unique<sim::Gate>(sim);

    int home = homeWorkerFor(name);
    e.art.homeWorker = home;
    e.art.fetchedBy.assign(workers.size(), false);
    core::Worker &hw = *workers[static_cast<size_t>(home)];
    auto &orch = hw.orchestrator();

    // Build once: boot + snapshot capture on the home worker.
    std::int64_t builds0 = orch.snapshotBuilds();
    co_await orch.prepareSnapshot(name);
    e.art.builds += orch.snapshotBuilds() - builds0;

    // Record once: the REAP-family record phase produces the WS and
    // trace files the fleet will prefetch from.
    if (!orch.hasRecord(name)) {
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke(name, mode, opts);
    }

    std::shared_ptr<const vmm::SnapshotManifests> manifests;
    if (chunked()) {
        // Chunked staging: upload only chunks no earlier function
        // staged. Duplicate chunks — the shared runtime pages every
        // function's snapshot carries — are referenced in the index
        // and never cross the wire again, fleet-wide.
        const vmm::SnapshotManifests &m = orch.buildManifests(name);
        manifests = orch.manifests(name);
        Bytes uploaded = 0;
        for (const storage::ChunkManifest *man :
             {&m.vmmState, &m.ws}) {
            for (const storage::ChunkRef &c : man->chunks) {
                ++e.art.chunksTotal;
                if (sharedChunks.addRef(c)) {
                    co_await store.putChunk(c.storedBytes);
                    uploaded += c.storedBytes;
                    ++e.art.chunksUploaded;
                } else {
                    e.art.dedupSavedBytes += c.storedBytes;
                }
            }
        }
        e.art.stagedBytes = uploaded;
        e.art.logicalBytes = m.rawBytes();
    } else {
        // Stage once: one put() of VMM state + WS file serves every
        // worker (vs one staged copy per worker before).
        Bytes bytes = core::stagedArtifactBytes(
            hw.config().vmm.vmmStateSize, orch.record(name));
        co_await store.put(bytes);
        e.art.stagedBytes = bytes;
    }

    // Fan the metadata out; the artifact bytes move lazily, at each
    // worker's first cold start, through the remote tier.
    const core::WorkingSetRecord &rec = orch.record(name);
    for (auto &w : workers)
        w->orchestrator().adoptStagedArtifacts(name, rec, manifests);

    e.art.staged = true;
    e.staging = false;
    e.done->openGate();
}

bool
SnapshotRegistry::isStaged(const std::string &name) const
{
    auto it = entries.find(name);
    return it != entries.end() && it->second.art.staged;
}

const StagedArtifact &
SnapshotRegistry::artifact(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        fatal("function %s was never staged", name.c_str());
    return it->second.art;
}

void
SnapshotRegistry::noteRemoteFetch(const std::string &name, int worker)
{
    auto it = entries.find(name);
    if (it == entries.end() || !it->second.art.staged)
        return;
    StagedArtifact &art = it->second.art;
    ++art.remoteFetches;
    if (worker >= 0 &&
        worker < static_cast<int>(art.fetchedBy.size()))
        art.fetchedBy[static_cast<size_t>(worker)] = true;
}

std::int64_t
SnapshotRegistry::totalBuilds() const
{
    std::int64_t n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.builds;
    return n;
}

Bytes
SnapshotRegistry::totalStagedBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.stagedBytes;
    return n;
}

std::int64_t
SnapshotRegistry::totalRemoteFetches() const
{
    std::int64_t n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.remoteFetches;
    return n;
}

Bytes
SnapshotRegistry::totalLogicalBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.logicalBytes;
    return n;
}

Bytes
SnapshotRegistry::totalDedupSavedBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.dedupSavedBytes;
    return n;
}

bool
SnapshotRegistry::chunked() const
{
    return mode == core::ColdStartMode::DedupReap;
}

} // namespace vhive::cluster
