#include "cluster/snapshot_registry.hh"

#include <algorithm>

#include "cluster/routing_policy.hh"
#include "util/logging.hh"

namespace vhive::cluster {

SnapshotRegistry::SnapshotRegistry(
    sim::Simulation &sim, net::ArtifactStore &store,
    const std::vector<std::unique_ptr<core::Worker>> &workers,
    core::ColdStartMode mode)
    : sim(sim), store(store), workers(workers), mode(mode)
{
    VHIVE_ASSERT(!workers.empty());
}

int
SnapshotRegistry::homeWorkerFor(const std::string &name) const
{
    // Same ring placement as LocalityHashPolicy, so a locality-routed
    // function's home worker is also the one that built (and kept a
    // local copy of) its artifacts.
    return LocalityHashPolicy::homeWorker(
        name, static_cast<int>(workers.size()));
}

sim::Task<void>
SnapshotRegistry::ensureStaged(const std::string &name)
{
    Entry &e = entries[name];
    if (e.art.staged)
        co_return;
    if (e.staging) {
        co_await e.done->wait();
        co_return;
    }
    e.staging = true;
    if (!e.done)
        e.done = std::make_unique<sim::Gate>(sim);

    const std::string fault_key = "staging/" + name;
    if (faults != nullptr) {
        // Staging service unavailable: work entering an outage window
        // stalls until it closes (windows are finite, so the loop
        // always exits).
        while (const sim::FaultWindow *w = faults->roll(
                   sim::FaultKind::StagingOutage, fault_key,
                   sim.now())) {
            ++faults->stats().stagingStalls;
            co_await sim.delay(w->end - sim.now());
        }
    }

    int home = homeWorkerFor(name);
    e.art.homeWorker = home;
    e.art.fetchedBy.assign(workers.size(), false);
    core::Worker &hw = *workers[static_cast<size_t>(home)];
    auto &orch = hw.orchestrator();

    // Build once: boot + snapshot capture on the home worker.
    std::int64_t builds0 = orch.snapshotBuilds();
    co_await orch.prepareSnapshot(name);
    e.art.builds += orch.snapshotBuilds() - builds0;

    // Record once: the REAP-family record phase produces the WS and
    // trace files the fleet will prefetch from.
    if (!orch.hasRecord(name)) {
        core::InvokeOptions opts;
        opts.forceCold = true;
        (void)co_await orch.invoke(name, mode, opts);
    }

    std::shared_ptr<const vmm::SnapshotManifests> manifests;
    co_await stageArtifacts(name, e, manifests);

    // Fan the metadata out; the artifact bytes move lazily, at each
    // worker's first cold start, through the remote tier.
    const core::WorkingSetRecord &rec = orch.record(name);
    for (auto &w : workers)
        w->orchestrator().adoptStagedArtifacts(name, rec, manifests);

    e.stagedManifests = manifests;
    e.art.staged = true;
    e.staging = false;
    e.done->openGate();
}

sim::Task<void>
SnapshotRegistry::stageArtifacts(
    const std::string &name, Entry &e,
    std::shared_ptr<const vmm::SnapshotManifests> &manifests)
{
    const std::string fault_key = "staging/" + name;
    core::Worker &hw =
        *workers[static_cast<size_t>(e.art.homeWorker)];
    auto &orch = hw.orchestrator();
    for (bool staged_ok = false; !staged_ok;) {
        // One staging attempt. A WorkerCrash rolled mid-pass aborts
        // it: per-attempt counters are discarded, chunk references
        // the attempt took are released (rolling the index back), the
        // lost work is paid in simulated time and the pass retries —
        // crash windows are finite and every crash advances time, so
        // the loop terminates and the function still stages exactly
        // once.
        bool crashed = false;
        if (chunked()) {
            // Chunked staging: upload only chunks no earlier function
            // staged. Duplicate chunks — the shared runtime pages
            // every function's snapshot carries — are referenced in
            // the index and never cross the wire again, fleet-wide.
            const vmm::SnapshotManifests &m = orch.buildManifests(name);
            manifests = orch.manifests(name);
            Bytes uploaded = 0;
            Bytes saved = 0;
            std::int64_t total = 0;
            std::int64_t ups = 0;
            std::vector<storage::ChunkRef> taken;
            for (const storage::ChunkManifest *man :
                 {&m.vmmState, &m.ws}) {
                for (const storage::ChunkRef &c : man->chunks) {
                    if (faults != nullptr) {
                        if (const sim::FaultWindow *w = faults->roll(
                                sim::FaultKind::WorkerCrash, fault_key,
                                sim.now())) {
                            ++faults->stats().workerCrashes;
                            co_await sim.delay(std::max<Duration>(
                                usec(1), msec(w->magnitude)));
                            crashed = true;
                            break;
                        }
                    }
                    ++total;
                    taken.push_back(c);
                    if (sharedChunks.addRef(c, sim.now())) {
                        co_await store.putChunk(
                            c.storedBytes,
                            {c.hash, net::placementScope(name)});
                        uploaded += c.storedBytes;
                        ++ups;
                    } else {
                        saved += c.storedBytes;
                    }
                }
                if (crashed)
                    break;
            }
            if (crashed) {
                // Roll back every reference this attempt took; chunks
                // it alone stored drop to zero refs and are evicted.
                for (const storage::ChunkRef &c : taken)
                    sharedChunks.release(c.hash);
                continue;
            }
            e.art.chunksTotal += total;
            e.art.chunksUploaded += ups;
            e.art.dedupSavedBytes += saved;
            e.art.stagedBytes = uploaded;
            e.art.logicalBytes = m.rawBytes();
        } else {
            if (faults != nullptr) {
                if (const sim::FaultWindow *w = faults->roll(
                        sim::FaultKind::WorkerCrash, fault_key,
                        sim.now())) {
                    ++faults->stats().workerCrashes;
                    co_await sim.delay(std::max<Duration>(
                        usec(1), msec(w->magnitude)));
                    continue;
                }
            }
            // Stage once: one put() of VMM state + WS file serves
            // every worker (vs one staged copy per worker before).
            Bytes bytes = core::stagedArtifactBytes(
                hw.config().vmm.vmmStateSize, orch.record(name));
            co_await store.put(bytes,
                               {net::placementScope(name),
                                net::placementScope(name)});
            e.art.stagedBytes = bytes;
        }
        staged_ok = true;
    }
}

sim::Task<void>
SnapshotRegistry::restage(const std::string &name)
{
    auto it = entries.find(name);
    VHIVE_ASSERT(it != entries.end());
    Entry &e = it->second;
    if (e.staging) {
        // Fold into the in-flight (re)staging pass.
        co_await e.done->wait();
        co_return;
    }
    VHIVE_ASSERT(e.art.staged);
    e.staging = true;
    e.art.staged = false;
    e.done = std::make_unique<sim::Gate>(sim); // old gate is open

    // Claim the outgoing version's references before any suspension:
    // they stay held through the new staging pass so unchanged chunks
    // dedup-hit instead of re-uploading.
    auto prev = std::move(e.stagedManifests);

    if (faults != nullptr) {
        const std::string fault_key = "staging/" + name;
        while (const sim::FaultWindow *w = faults->roll(
                   sim::FaultKind::StagingOutage, fault_key,
                   sim.now())) {
            ++faults->stats().stagingStalls;
            co_await sim.delay(w->end - sim.now());
        }
    }

    // Invalidate fleet-wide: no worker may keep serving the stale
    // version's objects, and the home worker's next invocation becomes
    // the re-record phase.
    for (auto &w : workers)
        w->orchestrator().invalidateRecord(name);

    core::Worker &hw =
        *workers[static_cast<size_t>(e.art.homeWorker)];
    auto &orch = hw.orchestrator();

    // Re-record on the home worker (same path as the first staging).
    core::InvokeOptions opts;
    opts.forceCold = true;
    (void)co_await orch.invoke(name, mode, opts);

    const std::int64_t ups0 = e.art.chunksUploaded;
    const std::int64_t tot0 = e.art.chunksTotal;
    std::shared_ptr<const vmm::SnapshotManifests> manifests;
    co_await stageArtifacts(name, e, manifests);

    ++e.art.restages;
    const std::int64_t ups = e.art.chunksUploaded - ups0;
    e.art.deltaChunksUploaded += ups;
    e.art.deltaChunksUnchanged += (e.art.chunksTotal - tot0) - ups;
    e.art.deltaBytesUploaded += e.art.stagedBytes; // per-pass bytes

    if (prev) {
        // The delta landed: release the previous version. Chunks the
        // new manifests carried over stay referenced; chunks only the
        // old version used drop their last reference here.
        sharedChunks.releaseManifest(prev->vmmState);
        sharedChunks.releaseManifest(prev->ws);
    }

    const core::WorkingSetRecord &rec = orch.record(name);
    for (auto &w : workers)
        w->orchestrator().adoptStagedArtifacts(name, rec, manifests);

    e.stagedManifests = manifests;
    e.art.staged = true;
    e.staging = false;
    e.done->openGate();
}

void
SnapshotRegistry::retire(const std::string &name)
{
    auto it = entries.find(name);
    if (it == entries.end())
        return;
    Entry &e = it->second;
    VHIVE_ASSERT(!e.staging);
    if (e.stagedManifests) {
        const Bytes bytes0 = sharedChunks.storedBytes();
        const std::int64_t chunks0 = sharedChunks.chunkCount();
        sharedChunks.releaseManifest(e.stagedManifests->vmmState);
        sharedChunks.releaseManifest(e.stagedManifests->ws);
        _gcReleasedBytes += bytes0 - sharedChunks.storedBytes();
        _gcReleasedChunks += chunks0 - sharedChunks.chunkCount();
    }
    ++_retires;
    entries.erase(it);
}

void
SnapshotRegistry::setChunkBudget(Bytes budget,
                                 storage::EvictionPolicyKind policy)
{
    sharedChunks.setBudget(budget, policy,
                           /*refcount_protected=*/true);
}

std::int64_t
SnapshotRegistry::totalRestages() const
{
    std::int64_t n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.restages;
    return n;
}

bool
SnapshotRegistry::isStaged(const std::string &name) const
{
    auto it = entries.find(name);
    return it != entries.end() && it->second.art.staged;
}

const StagedArtifact &
SnapshotRegistry::artifact(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        fatal("function %s was never staged", name.c_str());
    return it->second.art;
}

void
SnapshotRegistry::noteRemoteFetch(const std::string &name, int worker)
{
    auto it = entries.find(name);
    if (it == entries.end() || !it->second.art.staged)
        return;
    StagedArtifact &art = it->second.art;
    ++art.remoteFetches;
    if (worker >= 0 &&
        worker < static_cast<int>(art.fetchedBy.size()))
        art.fetchedBy[static_cast<size_t>(worker)] = true;
}

std::int64_t
SnapshotRegistry::totalBuilds() const
{
    std::int64_t n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.builds;
    return n;
}

Bytes
SnapshotRegistry::totalStagedBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.stagedBytes;
    return n;
}

std::int64_t
SnapshotRegistry::totalRemoteFetches() const
{
    std::int64_t n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.remoteFetches;
    return n;
}

Bytes
SnapshotRegistry::totalLogicalBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.logicalBytes;
    return n;
}

Bytes
SnapshotRegistry::totalDedupSavedBytes() const
{
    Bytes n = 0;
    for (const auto &entry : entries)
        n += entry.second.art.dedupSavedBytes;
    return n;
}

bool
SnapshotRegistry::chunked() const
{
    return mode == core::ColdStartMode::DedupReap;
}

} // namespace vhive::cluster
