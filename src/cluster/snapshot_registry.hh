/**
 * @file
 * Fleet-shared snapshot staging (the Sec. 7.1 consequence the per-
 * worker cluster left on the table): snapshot artifacts can live in
 * remote disaggregated storage, so a fleet needs to build and stage
 * each function's snapshot + working-set artifacts exactly once — one
 * build on a deterministic home worker, one put() into the shared
 * object store — and every other worker cold-starts by pulling the
 * staged artifact through its remote tier instead of rebuilding. The
 * registry turns Cluster::prepareAllSnapshots() from an
 * O(functions x workers) serial build loop into build-once + fan-out
 * metadata adoption, and tracks per-function staged bytes and fetch
 * fan-in (how many workers ever pulled the artifact remotely).
 */

#ifndef VHIVE_CLUSTER_SNAPSHOT_REGISTRY_HH
#define VHIVE_CLUSTER_SNAPSHOT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/options.hh"
#include "core/worker.hh"
#include "net/object_store.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "util/units.hh"
#include "vmm/snapshot.hh"

namespace vhive::cluster {

/** What the registry knows about one staged function. */
struct StagedArtifact
{
    /** Worker that built and recorded the artifacts. */
    int homeWorker = -1;

    /** Snapshot builds performed for this function (must stay 1). */
    std::int64_t builds = 0;

    /** Bytes put() into the shared store (VMM state + WS file). Under
     * chunked staging (DedupReap) only *newly stored* compressed chunk
     * bytes count — what actually crossed the wire. */
    Bytes stagedBytes = 0;

    /** @name Chunked staging only (zero for blob staging). */
    /// @{

    /** Raw artifact bytes the manifests describe. */
    Bytes logicalBytes = 0;

    /** Compressed bytes NOT uploaded because the chunk was already
     * staged (by this or any other function). */
    Bytes dedupSavedBytes = 0;

    /** Manifest chunks across both artifacts. */
    std::int64_t chunksTotal = 0;

    /** Chunks this staging actually uploaded. */
    std::int64_t chunksUploaded = 0;
    /// @}

    /** @name Delta re-staging (restage(); zero until one happens). */
    /// @{

    /** Completed restage() passes for this function. */
    std::int64_t restages = 0;

    /** Chunks restaging uploaded — the churned delta. */
    std::int64_t deltaChunksUploaded = 0;

    /** Compressed bytes those delta uploads moved. */
    Bytes deltaBytesUploaded = 0;

    /** Chunks restaging dedup-hit against the previous version. */
    std::int64_t deltaChunksUnchanged = 0;
    /// @}

    /** Cold starts that pulled the artifact through the remote tier. */
    std::int64_t remoteFetches = 0;

    /** Which workers ever pulled remotely (fan-in bitmap). */
    std::vector<bool> fetchedBy;

    bool staged = false;

    /** Distinct workers that pulled the staged artifact remotely. */
    std::int64_t
    fetchFanIn() const
    {
        std::int64_t n = 0;
        for (bool b : fetchedBy)
            n += b ? 1 : 0;
        return n;
    }
};

/**
 * Stages each deployed function's artifacts into the shared object
 * store exactly once, even under concurrent ensureStaged() calls (the
 * first caller builds, later callers wait on a per-function gate).
 * Owned by Cluster when cross-worker snapshot sharing is enabled.
 */
class SnapshotRegistry
{
  public:
    /**
     * @param workers The fleet (borrowed; the owning Cluster outlives
     * the registry). @param mode The cluster's cold-start mode — used
     * for the home worker's record-phase invocation so the recorded
     * artifacts match what the fleet will restore with.
     */
    SnapshotRegistry(
        sim::Simulation &sim, net::ArtifactStore &store,
        const std::vector<std::unique_ptr<core::Worker>> &workers,
        core::ColdStartMode mode);

    SnapshotRegistry(const SnapshotRegistry &) = delete;
    SnapshotRegistry &operator=(const SnapshotRegistry &) = delete;

    /**
     * Build + stage @p name's artifacts if not already staged: boot
     * and snapshot on the home worker, run the record phase there,
     * put() the artifacts into the shared store, then fan the metadata
     * out to every other worker (adoptStagedArtifacts). Concurrent
     * callers for the same function wait for the single in-flight
     * staging instead of duplicating it.
     */
    sim::Task<void> ensureStaged(const std::string &name);

    /**
     * Re-record + delta re-stage @p name (the function's code was
     * updated): invalidate the record fleet-wide, re-record on the
     * home worker, then stage the new version against the previous
     * one's still-referenced chunks — unchanged chunks dedup-hit and
     * never cross the wire again; only the churned delta uploads. The
     * previous version's references release once the delta lands, and
     * the new metadata fans out to every worker. Must already be
     * staged; a caller racing an in-flight (re)staging waits for it.
     */
    sim::Task<void> restage(const std::string &name);

    /**
     * Fleet-wide GC of @p name (the function is being retired):
     * release every shared-chunk reference its staged manifests hold
     * and forget the staging record. Chunks no other function
     * references drop out of the index — their bytes are reclaimed
     * (or, under a refcount-protected budget, retained as evictable
     * pool). Workers' own records are the caller's to retire
     * (Cluster::retireFunction does both). No-op when never staged.
     */
    void retire(const std::string &name);

    /**
     * Cap the fleet staged-chunk index at @p budget resident stored
     * bytes (0 = unlimited). Referenced chunks are shielded
     * (refcount-protected — the index must never lose a chunk a live
     * manifest needs); zero-ref chunks left behind by retire() or
     * restage() become the evictable pool.
     */
    void setChunkBudget(Bytes budget,
                        storage::EvictionPolicyKind policy =
                            storage::EvictionPolicyKind::Lru);

    /** Completed restage() passes across functions. */
    std::int64_t totalRestages() const;

    /** Functions retired (GC'd) so far. */
    std::int64_t retires() const { return _retires; }

    /** Stored bytes retire() reclaimed from the shared index. */
    Bytes gcReleasedBytes() const { return _gcReleasedBytes; }

    /** Chunks retire() dropped from the shared index. */
    std::int64_t gcReleasedChunks() const { return _gcReleasedChunks; }

    /** Whether @p name has been staged. */
    bool isStaged(const std::string &name) const;

    /** Staging record for @p name (must be staged or staging). */
    const StagedArtifact &artifact(const std::string &name) const;

    /** Deterministic home worker for @p name (hash on the ring). */
    int homeWorkerFor(const std::string &name) const;

    /** Called by the front-end when a cold start on @p worker pulled
     * the artifact through the remote tier. */
    void noteRemoteFetch(const std::string &name, int worker);

    /** Sum of builds across functions (one each when sharing works). */
    std::int64_t totalBuilds() const;

    /** Sum of staged bytes across functions. */
    Bytes totalStagedBytes() const;

    /** Sum of remote artifact fetches across functions. */
    std::int64_t totalRemoteFetches() const;

    /** Sum of raw artifact bytes staged (chunked staging only). */
    Bytes totalLogicalBytes() const;

    /** Sum of upload bytes saved by chunk dedup across functions. */
    Bytes totalDedupSavedBytes() const;

    /**
     * The fleet staged-chunk index (chunked staging): every distinct
     * chunk in the shared store, refcounted by referencing manifests.
     */
    const storage::ChunkStore &chunkIndex() const
    {
        return sharedChunks;
    }

    /** Whether this registry stages chunk manifests (DedupReap). */
    bool chunked() const;

    /**
     * Install a fault plan on staging passes; specs are matched
     * against "staging/<function>". A StagingOutage window stalls
     * ensureStaged work entering it; a WorkerCrash aborts the staging
     * pass mid-flight — chunk references taken by the aborted attempt
     * are released (the index rolls back) and the pass retries, so a
     * function is still staged exactly once. Null detaches; the plan
     * is borrowed and must outlive the registry.
     */
    void setFaultPlan(sim::FaultPlan *plan) { faults = plan; }

  private:
    struct Entry
    {
        StagedArtifact art;
        bool staging = false;
        std::unique_ptr<sim::Gate> done;

        /**
         * The staged version's manifests (chunked staging only): the
         * references the shared index holds on this function's
         * behalf, released by retire() or — after the delta lands —
         * by restage().
         */
        std::shared_ptr<const vmm::SnapshotManifests> stagedManifests;
    };

    /**
     * One staging pass (with crash-retry) for @p name on its home
     * worker: the shared body of ensureStaged() and restage().
     * Requires the record phase to have run; fills @p e's counters and
     * @p manifests (chunked staging).
     */
    sim::Task<void>
    stageArtifacts(const std::string &name, Entry &e,
                   std::shared_ptr<const vmm::SnapshotManifests>
                       &manifests);

    sim::Simulation &sim;
    net::ArtifactStore &store;
    const std::vector<std::unique_ptr<core::Worker>> &workers;
    core::ColdStartMode mode;
    std::map<std::string, Entry> entries;
    storage::ChunkStore sharedChunks;

    /** Installed fault plan (borrowed; null = fault-free). */
    sim::FaultPlan *faults = nullptr;

    /** @name GC accounting (retire()). */
    /// @{
    std::int64_t _retires = 0;
    Bytes _gcReleasedBytes = 0;
    std::int64_t _gcReleasedChunks = 0;
    /// @}
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_SNAPSHOT_REGISTRY_HH
