#include "cluster/fleet_stats.hh"

#include <algorithm>

namespace vhive::cluster {

void
mergeTierRow(std::vector<core::TierBreakdown> &into,
             const core::TierBreakdown &row)
{
    for (auto &t : into) {
        if (t.tier == row.tier) {
            t.hits += row.hits;
            t.misses += row.misses;
            t.admissions += row.admissions;
            t.bytes += row.bytes;
            // Resident/peak/evicted are cumulative worker-wide
            // samples (each cold's row carries the counter's value at
            // that instant), not per-invocation increments: summing
            // would multiply-count them, so merge by max — the
            // highest (for the monotonic counters, latest) sample.
            t.residentBytes =
                std::max(t.residentBytes, row.residentBytes);
            t.peakResidentBytes =
                std::max(t.peakResidentBytes, row.peakResidentBytes);
            t.bytesEvicted =
                std::max(t.bytesEvicted, row.bytesEvicted);
            t.time += row.time;
            return;
        }
    }
    into.push_back(row);
}

void
mergeStoreStats(net::ObjectStoreStats &a, const net::ObjectStoreStats &b)
{
    a.gets += b.gets;
    a.puts += b.puts;
    a.rangedGets += b.rangedGets;
    a.bytesServed += b.bytesServed;
    a.bytesStored += b.bytesStored;
    a.streamWaits += b.streamWaits;
    a.streamWaitTime += b.streamWaitTime;
    a.peakStreamQueue =
        std::max(a.peakStreamQueue, b.peakStreamQueue);
    a.chunkPuts += b.chunkPuts;
    a.chunkBatches += b.chunkBatches;
    a.chunksServed += b.chunksServed;
    a.requestRetries += b.requestRetries;
    a.outageStalls += b.outageStalls;
}

} // namespace vhive::cluster
