/**
 * @file
 * The vHive cluster layer (Sec. 3): a front-end/load-balancer (Istio
 * role) routing invocations to workers, and a Knative-style autoscaler
 * that keeps instances warm for a keep-alive window and scales to zero
 * afterwards — the policy that makes cold starts frequent in
 * production (Sec. 2.1: providers deallocate after 8-20 minutes of
 * inactivity).
 */

#ifndef VHIVE_CLUSTER_CLUSTER_HH
#define VHIVE_CLUSTER_CLUSTER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/options.hh"
#include "core/worker.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::cluster {

/** Cluster-level configuration. */
struct ClusterConfig
{
    /** Number of worker hosts. */
    int workers = 1;

    /** Configuration applied to every worker. */
    core::WorkerConfig worker{};

    /**
     * Idle-instance lifetime before deallocation (Sec. 2.1: providers
     * use 8-20 minutes; default 10).
     */
    Duration keepAlive = sec(600);

    /** How the workers start cold instances. */
    core::ColdStartMode coldStartMode = core::ColdStartMode::Reap;

    /** Autoscaler reconciliation period. */
    Duration scalePeriod = sec(2);

    /**
     * Knative queue-proxy behaviour: at most this many in-flight
     * invocations per function cluster-wide; excess requests queue
     * FIFO instead of scaling out. 0 = unlimited (AWS MicroManager
     * style eager scale-out).
     */
    int maxConcurrencyPerFunction = 0;
};

/** Per-function cluster-level statistics. */
struct FunctionClusterStats
{
    Samples e2eLatencyMs;   ///< end-to-end latency samples (ms)
    Samples queueDelayMs;   ///< time spent waiting in the queue-proxy
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t scaleDowns = 0;
};

/**
 * A cluster of workers behind a front-end. Functions are deployed
 * cluster-wide; invocations enter via invoke() and are routed to the
 * best worker (warm instance first, then least-loaded).
 */
class Cluster
{
  public:
    Cluster(sim::Simulation &sim, ClusterConfig config);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Deploy a function on every worker. */
    void deploy(const func::FunctionProfile &profile);

    /** Build snapshots for all deployed functions on all workers. */
    sim::Task<void> prepareAllSnapshots();

    /**
     * Start the autoscaler's keep-alive janitor (detached task). Call
     * once before driving traffic with scale-to-zero behaviour.
     */
    void startAutoscaler();

    /**
     * Ask the janitor to exit at its next tick. Without this the
     * janitor keeps the event queue non-empty and Simulation::run()
     * never returns; experiments must stop it (or use runUntil).
     */
    void stopAutoscaler() { autoscalerStopping = true; }

    /**
     * Front-end entry point: route one invocation and return its
     * end-to-end latency (including cluster fabric hops).
     */
    sim::Task<Duration> invoke(const std::string &name);

    /** Total live instances of @p name across workers. */
    std::int64_t instanceCount(const std::string &name) const;

    /** Total resident instance memory across the fleet (Sec. 4.3). */
    Bytes residentBytes() const;

    /** Cluster-level stats for @p name. */
    const FunctionClusterStats &stats(const std::string &name) const;

    /** Reset all per-function statistics (e.g. after warm-up). */
    void resetStats();

    /** Access a worker (for experiment-specific drilling). */
    core::Worker &worker(int idx) { return *workers[static_cast<size_t>(idx)]; }

    int workerCount() const
    {
        return static_cast<int>(workers.size());
    }

    const ClusterConfig &config() const { return cfg; }

  private:
    struct Deployment
    {
        func::FunctionProfile profile;
        FunctionClusterStats stats;
        /** Last time each worker served this function. */
        std::vector<Time> lastUsed;
        /** In-flight limiter (queue-proxy); null when unlimited. */
        std::unique_ptr<sim::Semaphore> concurrency;
    };

    /** Pick the worker for the next invocation of @p dep. */
    int route(const std::string &name);

    /** Keep-alive janitor loop. */
    sim::Task<void> janitor();

    sim::Simulation &sim;
    ClusterConfig cfg;
    std::vector<std::unique_ptr<core::Worker>> workers;
    std::map<std::string, Deployment> deployments;
    int rrCursor = 0;
    bool autoscalerRunning = false;
    bool autoscalerStopping = false;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_CLUSTER_HH
