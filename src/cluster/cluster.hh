/**
 * @file
 * The vHive fleet control plane (Sec. 3): a front-end/load-balancer
 * (Istio role) routing invocations to workers through a pluggable
 * RoutingPolicy, a Knative-style autoscaler that keeps instances warm
 * for a keep-alive window and scales to zero afterwards — the policy
 * that makes cold starts frequent in production (Sec. 2.1: providers
 * deallocate after 8-20 minutes of inactivity) — and, when
 * cross-worker snapshot sharing is enabled, a SnapshotRegistry that
 * stages each function's artifacts into a fleet-shared object store
 * exactly once (Sec. 7.1). Fleet-wide observability (cold p50/p99,
 * tier hits, store contention, resident memory) surfaces through
 * fleetStats().
 */

#ifndef VHIVE_CLUSTER_CLUSTER_HH
#define VHIVE_CLUSTER_CLUSTER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/control_policy.hh"
#include "cluster/fleet_stats.hh"
#include "cluster/routing_policy.hh"
#include "cluster/snapshot_registry.hh"
#include "core/options.hh"
#include "core/worker.hh"
#include "net/object_store.hh"
#include "net/sharded_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace vhive::cluster {

/** Cluster-level configuration. */
struct ClusterConfig
{
    /** Number of worker hosts. */
    int workers = 1;

    /** Configuration applied to every worker. */
    core::WorkerConfig worker{};

    /**
     * Idle-instance lifetime before deallocation (Sec. 2.1: providers
     * use 8-20 minutes; default 10).
     */
    Duration keepAlive = sec(600);

    /** How the workers start cold instances. */
    core::ColdStartMode coldStartMode = core::ColdStartMode::Reap;

    /** Autoscaler reconciliation period. */
    Duration scalePeriod = sec(2);

    /**
     * Knative queue-proxy behaviour: at most this many in-flight
     * invocations per function cluster-wide; excess requests queue
     * FIFO instead of scaling out. 0 = unlimited (AWS MicroManager
     * style eager scale-out).
     */
    int maxConcurrencyPerFunction = 0;

    /** Which RoutingPolicy the front-end dispatches through. */
    RoutingPolicyKind routingPolicy = RoutingPolicyKind::WarmFirst;

    /**
     * Which predictive ControlPolicy the autoscaler runs each
     * scalePeriod (pre-warming, chunk prefetch, scale hints). None
     * (default) keeps the janitor's plain keep-alive sweep
     * bit-identical to the historical behaviour.
     */
    ControlPolicyKind controlPolicy = ControlPolicyKind::None;

    /**
     * Cross-worker snapshot sharing (Sec. 7.1 at fleet scale): build
     * each function's snapshot once on its home worker, stage the
     * artifacts into one fleet-shared object store, and let every
     * other worker cold-start through the remote tier instead of
     * rebuilding. Requires a remote-capable cold-start mode
     * (TieredReap or RemoteReap). Off by default: per-worker staging,
     * bit-identical to the historical behaviour.
     */
    bool sharedSnapshots = false;

    /** Parameters of the fleet-shared store (sharedSnapshots only). */
    net::ObjectStoreParams sharedStore = net::ObjectStoreParams::remote();

    /**
     * Shards behind the fleet-shared store (sharedSnapshots only).
     * Each shard has its own stream bound and stats; 1 keeps the
     * historical single-store behaviour bit-identical.
     */
    int sharedStoreShards = 1;

    /** How chunk uploads spread across shards (DedupReap staging). */
    net::ChunkPlacementPolicy chunkPlacement =
        net::ChunkPlacementPolicy::Hash;

    /**
     * Cold starts torn down by an injected WorkerCrash fault are
     * re-routed and retried up to this many times before the
     * invocation is reported failed. Only reachable when a FaultPlan
     * is installed (installFaultPlan); fault-free runs never retry.
     */
    int maxColdStartRetries = 2;

    /**
     * Byte budget of the fleet staged-chunk index (sharedSnapshots +
     * DedupReap; 0 = unlimited, the historical behaviour). Chunks a
     * live manifest references are never evicted; the zero-ref pool
     * retireFunction()/restage leave behind is what budget pressure
     * reclaims. Worker-side budgets (page cache, chunk cache, local
     * SSD) live in ReapOptions.
     */
    Bytes registryChunkBudget = 0;

    /** Victim selection for the budgeted fleet chunk index. */
    storage::EvictionPolicyKind registryEvictionPolicy =
        storage::EvictionPolicyKind::Lru;
};

/** Per-function cluster-level statistics. */
struct FunctionClusterStats
{
    Samples e2eLatencyMs;   ///< end-to-end latency samples (ms)
    Samples queueDelayMs;   ///< time spent waiting in the queue-proxy
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t scaleDowns = 0;

    /**
     * @name Injected-fault accounting (zero without a fault plan).
     * Every accepted invocation lands in exactly one of coldStarts,
     * warmHits or failedInvocations: crashed attempts that were
     * retried count only in crashRetries.
     */
    /// @{

    /** Crashed cold-start attempts that were re-routed and retried. */
    std::int64_t crashRetries = 0;

    /** Invocations reported failed after exhausting crash retries. */
    std::int64_t failedInvocations = 0;
    /// @}
};

/**
 * A cluster of workers behind a front-end. Functions are deployed
 * cluster-wide; invocations enter via invoke() and are routed to the
 * worker picked by the active RoutingPolicy.
 */
class Cluster : private FleetView
{
  public:
    Cluster(sim::Simulation &sim, ClusterConfig config);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Deploy a function on every worker. */
    void deploy(const func::FunctionProfile &profile);

    /**
     * Make every deployed function cold-startable on every worker.
     * Per-worker staging (default): build a snapshot on each worker.
     * Shared staging (ClusterConfig::sharedSnapshots): build + record
     * once per function on its home worker, put() the artifacts into
     * the shared store, fan the metadata out (SnapshotRegistry).
     */
    sim::Task<void> prepareAllSnapshots();

    /**
     * Start the autoscaler's keep-alive janitor (detached task). Call
     * once before driving traffic with scale-to-zero behaviour.
     */
    void startAutoscaler();

    /**
     * Ask the janitor to exit at its next tick. Without this the
     * janitor keeps the event queue non-empty and Simulation::run()
     * never returns; experiments must stop it (or use runUntil).
     */
    void stopAutoscaler() { autoscalerStopping = true; }

    /**
     * Front-end entry point: route one invocation and return its
     * end-to-end latency (including cluster fabric hops).
     */
    sim::Task<Duration> invoke(const std::string &name);

    /**
     * The function's code was updated: invalidate its record
     * fleet-wide and re-stage the new version as a delta. Under
     * shared staging this is SnapshotRegistry::restage — one
     * re-record on the home worker, only churned chunks re-upload,
     * the old version's references release once the delta lands.
     * Per-worker staging just invalidates; each worker's next cold
     * start re-records and delta-stages against its own index.
     */
    sim::Task<void> restageFunction(const std::string &name);

    /**
     * Retire @p name fleet-wide (GC): stop every instance on every
     * worker, release each worker's record and staged-chunk
     * references (Orchestrator::retireRecord), and drop the shared
     * registry's chunks and staging entry. The deployment itself
     * stays, so the function can be invoked (and re-recorded or
     * re-staged) again later. No invocation of @p name may be in
     * flight.
     */
    sim::Task<void> retireFunction(const std::string &name);

    /** Total live instances of @p name across workers. */
    std::int64_t instanceCount(const std::string &name) const;

    /** Total resident instance memory across the fleet (Sec. 4.3). */
    Bytes residentBytes() const;

    /** Cluster-level stats for @p name. */
    const FunctionClusterStats &stats(const std::string &name) const;

    /** Fleet-wide aggregate (cold percentiles, tiers, contention). */
    FleetStats fleetStats() const;

    /** Reset all per-function statistics and fleet telemetry (e.g.
     * after warm-up). Registry staging state is untouched. */
    void resetStats();

    /** Access a worker (for experiment-specific drilling). */
    core::Worker &worker(int idx) { return *workers[static_cast<size_t>(idx)]; }

    int workerCount() const override
    {
        return static_cast<int>(workers.size());
    }

    const ClusterConfig &config() const { return cfg; }

    /** The routing-strategy registry (extension point). */
    RoutingPolicyRegistry &routingPolicies() { return _policies; }

    /** Switch the active routing policy. */
    void setRoutingPolicy(RoutingPolicyKind kind);

    /** The active routing policy. */
    RoutingPolicy &routingPolicy() { return *activePolicy; }

    /** The control-policy registry (extension point). */
    ControlPolicyRegistry &controlPolicies()
    {
        return _controlPolicies;
    }

    /** Switch the active control policy (None detaches). */
    void setControlPolicy(ControlPolicyKind kind);

    /** The active control policy; null when None. */
    ControlPolicy *controlPolicy() { return activeControl; }

    /** Shared snapshot registry; null unless sharedSnapshots. */
    SnapshotRegistry *snapshotRegistry() { return _registry.get(); }

    /** The fleet-shared store; null unless sharedSnapshots. */
    net::ShardedObjectStore *sharedObjectStore()
    {
        return _sharedStore.get();
    }

    /**
     * Install @p plan on every fault hook point of the fleet, under
     * the registry keys its specs are matched against: the shared
     * store as "store/shared", each worker's own store as
     * "store/worker/<i>", each orchestrator's cold-start path as
     * "worker/<i>", and the snapshot registry's staging passes as
     * "staging/<function>". Null detaches everywhere. The plan is
     * borrowed and must outlive the cluster (or be detached first);
     * without one, every path is bit-identical to the historical
     * fault-free behaviour.
     */
    void installFaultPlan(sim::FaultPlan *plan);

  private:
    struct Deployment
    {
        func::FunctionProfile profile;
        FunctionClusterStats stats;
        /** Last time each worker served this function. */
        std::vector<Time> lastUsed;
        /** In-flight limiter (queue-proxy); null when unlimited. */
        std::unique_ptr<sim::Semaphore> concurrency;
    };

    /** Per-worker front-end telemetry feeding fleetStats(). */
    struct WorkerTelemetry
    {
        std::int64_t coldStarts = 0;
        std::int64_t warmHits = 0;
        std::int64_t inFlight = 0;
        std::int64_t inFlightPeak = 0;
        std::vector<core::TierBreakdown> tierHits;
        std::int64_t wastedPrefetchPages = 0;
    };

    /** @name FleetView (the slice policies may consult). */
    /// @{
    std::int64_t idleInstances(int worker,
                               const std::string &name) const override;
    std::int64_t inFlight(int worker) const override;
    Bytes residentBytes(int worker) const override;
    bool artifactsLocal(int worker,
                        const std::string &name) const override;
    double chunkResidency(int worker,
                          const std::string &name) const override;
    /// @}

    /** Keep-alive janitor loop. */
    sim::Task<void> janitor();

    /**
     * The ColdStartMode pre-warm actions load through: Sec. 6.3
     * background working-set warming for the tiered/remote family
     * (yield store streams to foreground colds), the configured mode
     * itself otherwise (plain Reap must not gain tiered staging).
     */
    core::ColdStartMode preWarmMode() const;

    /** Detached pre-warm issued by a control action. */
    sim::Task<void> preWarmTask(std::string name, int widx);

    /** Detached background prefetch issued by a control action;
     * @p until shields the prefetched bytes until the predicted
     * window passes (-1 = no shield). */
    sim::Task<void> backgroundPrefetchTask(std::string name, int widx,
                                           Time until);

    /** Run the active policy's tick and apply its actions. */
    void controlTick();

    sim::Simulation &sim;
    ClusterConfig cfg;
    /** Fleet-shared object store; created before the workers that
     * borrow it (sharedSnapshots only). */
    std::unique_ptr<net::ShardedObjectStore> _sharedStore;
    std::vector<std::unique_ptr<core::Worker>> workers;
    std::unique_ptr<SnapshotRegistry> _registry;
    std::map<std::string, Deployment> deployments;
    RoutingPolicyRegistry _policies;
    RoutingPolicy *activePolicy = nullptr;
    ControlPolicyRegistry _controlPolicies;

    /** Active control policy; null when kind is None (the janitor's
     * tick is then pure keep-alive, bit-identical to no policy). */
    ControlPolicy *activeControl = nullptr;

    /** Sweep rounds the janitor skips (positive ScaleHint). */
    int scaleHold = 0;

    /** Satellite accounting integrated each scalePeriod. */
    double _wastedResidentByteSec = 0;
    double _idleWarmInstanceSec = 0;

    std::vector<WorkerTelemetry> telemetry;
    Samples fleetColdMs;
    Samples fleetWarmMs;
    bool autoscalerRunning = false;
    bool autoscalerStopping = false;
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_CLUSTER_HH
