#include "cluster/traffic.hh"

#include <cmath>

#include "util/logging.hh"

namespace vhive::cluster {

PoissonTraffic::PoissonTraffic(sim::Simulation &sim, Cluster &cluster,
                               std::string function,
                               Duration mean_interarrival,
                               std::int64_t count, std::uint64_t seed)
    : sim(sim), cluster(cluster), function(std::move(function)),
      meanInterarrival(mean_interarrival), count(count),
      rng(seed, "poisson/" + this->function)
{
    VHIVE_ASSERT(count >= 0);
    VHIVE_ASSERT(mean_interarrival > 0);
}

sim::Task<void>
PoissonTraffic::fireOne(sim::Latch *done)
{
    (void)co_await cluster.invoke(function);
    done->arrive();
}

sim::Task<void>
PoissonTraffic::run()
{
    sim::Latch done(sim, count);
    for (std::int64_t i = 0; i < count; ++i) {
        co_await sim.delay(static_cast<Duration>(rng.exponential(
            static_cast<double>(meanInterarrival))));
        sim.spawn(fireOne(&done));
    }
    co_await done.wait();
}

ClosedLoopTraffic::ClosedLoopTraffic(sim::Simulation &sim,
                                     Cluster &cluster,
                                     std::string function, int clients,
                                     Duration think_time,
                                     std::uint64_t seed)
    : sim(sim), cluster(cluster), function(std::move(function)),
      clients(clients), thinkTime(think_time),
      rng(seed, "closed/" + this->function)
{
    VHIVE_ASSERT(clients >= 1);
}

sim::Task<void>
ClosedLoopTraffic::client(int idx)
{
    (void)idx;
    while (!stopping) {
        (void)co_await cluster.invoke(function);
        ++_completed;
        co_await sim.delay(thinkTime);
    }
    drain->arrive();
}

void
ClosedLoopTraffic::start()
{
    VHIVE_ASSERT(!drain); // start() may only be called once
    drain = std::make_unique<sim::Latch>(
        sim, static_cast<std::int64_t>(clients));
    for (int i = 0; i < clients; ++i)
        sim.spawn(client(i));
}

sim::Task<void>
ClosedLoopTraffic::stopAndDrain()
{
    VHIVE_ASSERT(drain); // must have been started
    stopping = true;
    co_await drain->wait();
}

// ------------------------------------------------------ TrafficEngine

TrafficEngine::TrafficEngine(TrafficConfig config) : cfg(std::move(config))
{
    VHIVE_ASSERT(cfg.functions >= 1);
    VHIVE_ASSERT(cfg.tenants >= 1);
    VHIVE_ASSERT(cfg.zipfExponent >= 0);
    VHIVE_ASSERT(cfg.aggregateRps > 0);
    VHIVE_ASSERT(cfg.diurnal.amplitude >= 0 &&
                 cfg.diurnal.amplitude <= 0.95);
    VHIVE_ASSERT(cfg.diurnal.period > 0);
    VHIVE_ASSERT(!cfg.profilePool.empty() || !cfg.classMix.empty());

    // Profiles: same synthesis scheme as the Azure mix, distinct name
    // prefix so traffic- and mix-driven fleets never collide.
    const auto &pool = func::functionBench();
    profiles.reserve(static_cast<size_t>(cfg.functions));
    for (int i = 0; i < cfg.functions; ++i) {
        func::FunctionProfile p;
        if (!cfg.classMix.empty()) {
            func::FunctionClass cls =
                cfg.classMix[static_cast<size_t>(i) %
                             cfg.classMix.size()];
            p = func::makeClassProfile(cls, cfg.seed, i);
        } else {
            int pool_idx = cfg.profilePool[static_cast<size_t>(i) %
                                           cfg.profilePool.size()];
            p = pool[static_cast<size_t>(pool_idx)];
        }
        p.name = "tr_" + std::to_string(i) + "_" + p.name;
        profiles.push_back(std::move(p));
    }

    // Uniform tenant assignment from a named sub-stream.
    Rng trng(cfg.seed, "traffic-tenants");
    tenants.reserve(static_cast<size_t>(cfg.functions));
    for (int i = 0; i < cfg.functions; ++i)
        tenants.push_back(
            static_cast<int>(trng.uniformInt(0, cfg.tenants - 1)));

    // Zipf base rates: rank == index (function 0 is the hottest),
    // normalized so the population sums to aggregateRps.
    double norm = 0;
    for (int i = 0; i < cfg.functions; ++i)
        norm += std::pow(static_cast<double>(i + 1), -cfg.zipfExponent);
    baseRates.reserve(static_cast<size_t>(cfg.functions));
    for (int i = 0; i < cfg.functions; ++i)
        baseRates.push_back(
            cfg.aggregateRps *
            std::pow(static_cast<double>(i + 1), -cfg.zipfExponent) /
            norm);

    // Periodic (cron-like) class: membership, period and phase from
    // one named stream, three draws per function regardless of
    // outcome so one function's membership never shifts another's
    // period.
    VHIVE_ASSERT(cfg.periodicFraction >= 0 &&
                 cfg.periodicFraction <= 1);
    VHIVE_ASSERT(cfg.periodicJitter >= 0 && cfg.periodicJitter < 0.5);
    VHIVE_ASSERT(cfg.periodicMinPeriod > 0 &&
                 cfg.periodicMaxPeriod >= cfg.periodicMinPeriod);
    periods.assign(static_cast<size_t>(cfg.functions), 0);
    phases.assign(static_cast<size_t>(cfg.functions), 0);
    if (cfg.periodicFraction > 0) {
        Rng prng(cfg.seed, "traffic-periodic");
        double lo =
            std::log(static_cast<double>(cfg.periodicMinPeriod));
        double hi =
            std::log(static_cast<double>(cfg.periodicMaxPeriod));
        for (int i = 0; i < cfg.functions; ++i) {
            bool in = prng.chance(cfg.periodicFraction);
            double u = prng.uniform();
            double v = prng.uniform();
            if (!in)
                continue;
            auto period = static_cast<Duration>(
                std::exp(lo + u * (hi - lo)));
            periods[static_cast<size_t>(i)] = period;
            phases[static_cast<size_t>(i)] =
                static_cast<Duration>(v * static_cast<double>(period));
        }
    }

    // Burst membership, precomputed per burst from its own stream so
    // adding a burst never perturbs another burst's membership.
    burstMembers.reserve(cfg.bursts.size());
    for (size_t b = 0; b < cfg.bursts.size(); ++b) {
        const BurstSpec &spec = cfg.bursts[b];
        VHIVE_ASSERT(spec.duration > 0 && spec.multiplier > 0);
        std::vector<bool> members(static_cast<size_t>(cfg.functions));
        Rng brng(cfg.seed, "traffic-burst/" + std::to_string(b));
        for (int i = 0; i < cfg.functions; ++i) {
            bool in = false;
            switch (spec.kind) {
              case BurstKind::FlashCrowd:
                in = tenants[static_cast<size_t>(i)] == spec.tenant;
                break;
              case BurstKind::DeployStorm:
                // One draw per function regardless of outcome keeps
                // membership independent of earlier functions.
                in = brng.chance(spec.fraction);
                break;
            }
            members[static_cast<size_t>(i)] = in;
        }
        burstMembers.push_back(std::move(members));
    }

    // Thinning envelope: worst-case burst stack per function.
    burstPeaks.assign(static_cast<size_t>(cfg.functions), 1.0);
    for (size_t b = 0; b < cfg.bursts.size(); ++b)
        for (int i = 0; i < cfg.functions; ++i)
            if (burstAffects(static_cast<int>(b), i) &&
                cfg.bursts[b].multiplier > 1.0)
                burstPeaks[static_cast<size_t>(i)] *=
                    cfg.bursts[b].multiplier;
}

double
TrafficEngine::diurnalFactor(Duration t) const
{
    if (cfg.diurnal.amplitude == 0)
        return 1.0;
    double frac = static_cast<double>(t) /
                      static_cast<double>(cfg.diurnal.period) +
                  cfg.diurnal.phase;
    constexpr double kTau = 6.283185307179586;
    return 1.0 + cfg.diurnal.amplitude * std::sin(kTau * frac);
}

double
TrafficEngine::rateAt(int fn, Duration t) const
{
    if (isPeriodic(fn))
        return 1e9 / static_cast<double>(periodOf(fn));
    double rate = baseRate(fn) * diurnalFactor(t);
    for (size_t b = 0; b < cfg.bursts.size(); ++b) {
        const BurstSpec &spec = cfg.bursts[b];
        if (t >= spec.start && t < spec.start + spec.duration &&
            burstAffects(static_cast<int>(b), fn))
            rate *= spec.multiplier;
    }
    return rate;
}

double
TrafficEngine::peakRate(int fn) const
{
    if (isPeriodic(fn))
        return 1e9 / static_cast<double>(periodOf(fn));
    return baseRate(fn) * (1.0 + cfg.diurnal.amplitude) *
           burstPeaks[static_cast<size_t>(fn)];
}

double
TrafficEngine::expectedArrivals(int fn, Duration t0, Duration t1) const
{
    if (t1 <= t0)
        return 0;
    // Trapezoidal integration, fine enough that burst edges (step
    // functions narrower than one slice) still integrate to within
    // a slice's worth of rate.
    constexpr int kSlices = 4096;
    double dt = static_cast<double>(t1 - t0) / kSlices;
    double sum = 0;
    for (int k = 0; k < kSlices; ++k) {
        Duration ta = t0 + static_cast<Duration>(dt * k);
        Duration tb = t0 + static_cast<Duration>(dt * (k + 1));
        sum += 0.5 * (rateAt(fn, ta) + rateAt(fn, tb)) * dt;
    }
    return sum / 1e9; // rates are 1/sec, dt is ns
}

Duration
TrafficEngine::nextArrival(int fn, Duration now, Rng &rng) const
{
    if (Duration period = periodOf(fn); period > 0) {
        // Timer arrivals: the first grid point strictly after @p now,
        // plus a small uniform jitter. Exactly one draw per arrival,
        // so the stream stays aligned for every consumer (sequential
        // driver, parallel fleet, oracle replay).
        Duration phase = phases[static_cast<size_t>(fn)];
        std::int64_t k =
            now < phase ? 0 : (now - phase) / period + 1;
        Duration jitter = static_cast<Duration>(
            rng.uniform() * cfg.periodicJitter *
            static_cast<double>(period));
        Duration t = phase + k * period + jitter;
        if (t <= now)
            t = phase + (k + 1) * period + jitter;
        return t;
    }
    // Lewis-Shedler thinning: candidate gaps at the envelope rate,
    // accepted with probability rate(t)/peak. Acceptance is bounded
    // below by (1 - amplitude) / ((1 + amplitude) * burstPeak) > 0,
    // so the loop terminates with probability 1.
    double peak = peakRate(fn);
    VHIVE_ASSERT(peak > 0);
    double mean_gap_ns = 1e9 / peak;
    Duration t = now;
    for (;;) {
        Duration gap = static_cast<Duration>(
            rng.exponential(mean_gap_ns));
        t += std::max<Duration>(1, gap);
        if (rng.uniform() < rateAt(fn, t) / peak)
            return t;
    }
}

// ---------------------------------------------------- TrafficWorkload

TrafficWorkload::TrafficWorkload(sim::Simulation &sim, Cluster &cluster,
                                 TrafficConfig config)
    : sim(sim), cluster(cluster), eng(std::move(config))
{
    for (int i = 0; i < eng.functionCount(); ++i)
        cluster.deploy(eng.profile(i));
}

sim::Task<void>
TrafficWorkload::fireOne(int fn)
{
    Duration e2e = co_await cluster.invoke(eng.profile(fn).name);
    result.e2eLatencyMs.add(toMs(e2e));
    ++result.invocations;
    ++completed;
    if (launchDone && completed == launched && drained)
        drained->openGate();
}

sim::Task<void>
TrafficWorkload::arrivalLoop(int fn, sim::Latch *loops_done)
{
    Rng local(eng.config().seed,
              "traffic-arrivals/" + eng.profile(fn).name);
    Time start = sim.now();
    Duration t = 0;
    while (true) {
        t = eng.nextArrival(fn, t, local);
        if (t >= eng.config().horizon)
            break;
        co_await sim.delay(start + t - sim.now());
        // Open loop: fire and move on. The invocation completes (or
        // fails) on its own task; run() waits for the stragglers.
        ++launched;
        sim.spawn(fireOne(fn));
    }
    loops_done->arrive();
}

sim::Task<TrafficWorkloadResult>
TrafficWorkload::run()
{
    co_await cluster.prepareAllSnapshots();

    core::ColdStartMode mode = cluster.config().coldStartMode;
    bool mode_needs_record = cluster.worker(0)
                                 .orchestrator()
                                 .loaders()
                                 .loaderFor(mode)
                                 .needsRecord();
    if (mode_needs_record && !cluster.config().sharedSnapshots) {
        // Same off-window record pass as AzureWorkload: deployed
        // production functions recorded long ago. (Shared staging
        // already recorded on each home worker.)
        for (int i = 0; i < eng.functionCount(); ++i) {
            for (int wi = 0; wi < cluster.workerCount(); ++wi) {
                auto &orch = cluster.worker(wi).orchestrator();
                orch.flushHostCaches();
                core::InvokeOptions opts;
                opts.forceCold = true;
                (void)co_await orch.invoke(eng.profile(i).name, mode,
                                           opts);
            }
        }
        cluster.resetStats();
    }

    cluster.startAutoscaler();

    sim::Latch loops_done(sim, eng.functionCount());
    for (int i = 0; i < eng.functionCount(); ++i)
        sim.spawn(arrivalLoop(i, &loops_done));
    co_await loops_done.wait();

    launchDone = true;
    if (completed < launched) {
        drained = std::make_unique<sim::Gate>(sim);
        co_await drained->wait();
    }

    cluster.stopAutoscaler();

    for (int i = 0; i < eng.functionCount(); ++i) {
        const auto &st = cluster.stats(eng.profile(i).name);
        result.coldStarts += st.coldStarts;
        result.warmHits += st.warmHits;
        result.failedInvocations += st.failedInvocations;
    }
    co_return result;
}

} // namespace vhive::cluster
