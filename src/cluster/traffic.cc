#include "cluster/traffic.hh"

#include "util/logging.hh"

namespace vhive::cluster {

PoissonTraffic::PoissonTraffic(sim::Simulation &sim, Cluster &cluster,
                               std::string function,
                               Duration mean_interarrival,
                               std::int64_t count, std::uint64_t seed)
    : sim(sim), cluster(cluster), function(std::move(function)),
      meanInterarrival(mean_interarrival), count(count),
      rng(seed, "poisson/" + this->function)
{
    VHIVE_ASSERT(count >= 0);
    VHIVE_ASSERT(mean_interarrival > 0);
}

sim::Task<void>
PoissonTraffic::fireOne(sim::Latch *done)
{
    (void)co_await cluster.invoke(function);
    done->arrive();
}

sim::Task<void>
PoissonTraffic::run()
{
    sim::Latch done(sim, count);
    for (std::int64_t i = 0; i < count; ++i) {
        co_await sim.delay(static_cast<Duration>(rng.exponential(
            static_cast<double>(meanInterarrival))));
        sim.spawn(fireOne(&done));
    }
    co_await done.wait();
}

ClosedLoopTraffic::ClosedLoopTraffic(sim::Simulation &sim,
                                     Cluster &cluster,
                                     std::string function, int clients,
                                     Duration think_time,
                                     std::uint64_t seed)
    : sim(sim), cluster(cluster), function(std::move(function)),
      clients(clients), thinkTime(think_time),
      rng(seed, "closed/" + this->function)
{
    VHIVE_ASSERT(clients >= 1);
}

sim::Task<void>
ClosedLoopTraffic::client(int idx)
{
    (void)idx;
    while (!stopping) {
        (void)co_await cluster.invoke(function);
        ++_completed;
        co_await sim.delay(thinkTime);
    }
    drain->arrive();
}

void
ClosedLoopTraffic::start()
{
    VHIVE_ASSERT(!drain); // start() may only be called once
    drain = std::make_unique<sim::Latch>(
        sim, static_cast<std::int64_t>(clients));
    for (int i = 0; i < clients; ++i)
        sim.spawn(client(i));
}

sim::Task<void>
ClosedLoopTraffic::stopAndDrain()
{
    VHIVE_ASSERT(drain); // must have been started
    stopping = true;
    co_await drain->wait();
}

} // namespace vhive::cluster
