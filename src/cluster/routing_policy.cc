#include "cluster/routing_policy.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace vhive::cluster {

const char *
routingPolicyName(RoutingPolicyKind kind)
{
    switch (kind) {
      case RoutingPolicyKind::WarmFirst: return "warm-first";
      case RoutingPolicyKind::LeastLoaded: return "least-loaded";
      case RoutingPolicyKind::LocalityHash: return "locality-hash";
    }
    return "?";
}

int
WarmFirstPolicy::route(const RouteContext &ctx)
{
    const FleetView &fleet = ctx.fleet;
    int n = fleet.workerCount();
    for (int i = 0; i < n; ++i) {
        if (fleet.idleInstances(i, ctx.name) > 0)
            return i;
    }
    // No warm instance anywhere: rotate. The rotation starts at worker
    // 0 (the cursor used to pre-increment, so worker 0 was never the
    // first round-robin pick of a fresh cluster).
    int pick = rrCursor;
    rrCursor = (rrCursor + 1) % n;
    return pick;
}

int
LeastLoadedPolicy::route(const RouteContext &ctx)
{
    const FleetView &fleet = ctx.fleet;
    int n = fleet.workerCount();
    int best = 0;
    std::int64_t best_load = fleet.inFlight(0);
    bool best_warm = fleet.idleInstances(0, ctx.name) > 0;
    for (int i = 1; i < n; ++i) {
        std::int64_t load = fleet.inFlight(i);
        bool warm = fleet.idleInstances(i, ctx.name) > 0;
        if (load < best_load || (load == best_load && warm && !best_warm)) {
            best = i;
            best_load = load;
            best_warm = warm;
        }
    }
    return best;
}

int
LocalityHashPolicy::homeWorker(const std::string &name, int workers)
{
    VHIVE_ASSERT(workers >= 1);
    return static_cast<int>(hashName(name) %
                            static_cast<std::uint64_t>(workers));
}

int
LocalityHashPolicy::route(const RouteContext &ctx)
{
    const FleetView &fleet = ctx.fleet;
    int n = fleet.workerCount();
    int home = homeWorker(ctx.name, n);
    // Warm instance anywhere on the ring, nearest to home, wins.
    for (int k = 0; k < n; ++k) {
        int w = (home + k) % n;
        if (fleet.idleInstances(w, ctx.name) > 0)
            return w;
    }
    // Cold start. With chunk-aware scoring enabled, weigh each
    // unsaturated candidate's resident-chunk overlap against its ring
    // distance from home: a worker already holding most of the
    // function's chunks (pulled by other functions) restores almost
    // locally even though it is not the hash home.
    if (overlapWeight > 0.0) {
        int best = -1;
        double best_score = 0.0;
        for (int k = 0; k < n; ++k) {
            int w = (home + k) % n;
            if (fleet.inFlight(w) >= spillInFlight)
                continue;
            double score =
                overlapWeight * fleet.chunkResidency(w, ctx.name) -
                static_cast<double>(k) / static_cast<double>(n);
            if (best < 0 || score > best_score) {
                best = w;
                best_score = score;
            }
        }
        if (best >= 0)
            return best;
        return home;
    }
    // Historical behaviour: stay home so the artifact tiers
    // concentrate, spill along the ring only past saturated workers.
    for (int k = 0; k < n; ++k) {
        int w = (home + k) % n;
        if (fleet.inFlight(w) < spillInFlight)
            return w;
    }
    return home;
}

RoutingPolicyRegistry::RoutingPolicyRegistry()
{
    registerPolicy(RoutingPolicyKind::WarmFirst,
                   std::make_unique<WarmFirstPolicy>());
    registerPolicy(RoutingPolicyKind::LeastLoaded,
                   std::make_unique<LeastLoadedPolicy>());
    registerPolicy(RoutingPolicyKind::LocalityHash,
                   std::make_unique<LocalityHashPolicy>());
}

RoutingPolicy &
RoutingPolicyRegistry::policyFor(RoutingPolicyKind kind) const
{
    RoutingPolicy *policy = find(kind);
    if (policy == nullptr)
        fatal("no RoutingPolicy registered for kind %d",
              static_cast<int>(kind));
    return *policy;
}

RoutingPolicy *
RoutingPolicyRegistry::find(RoutingPolicyKind kind) const
{
    auto it = policies.find(kind);
    return it == policies.end() ? nullptr : it->second.get();
}

void
RoutingPolicyRegistry::registerPolicy(
    RoutingPolicyKind kind, std::unique_ptr<RoutingPolicy> policy)
{
    VHIVE_ASSERT(policy != nullptr);
    policies[kind] = std::move(policy);
}

std::vector<RoutingPolicyKind>
RoutingPolicyRegistry::kinds() const
{
    std::vector<RoutingPolicyKind> out;
    out.reserve(policies.size());
    for (const auto &entry : policies)
        out.push_back(entry.first);
    return out;
}

} // namespace vhive::cluster
