/**
 * @file
 * Multi-core fleet simulation: the Azure-mix fleet scenario of
 * bench_fleet_cold_p99, sharded over a sim::ParallelKernel so each
 * worker host simulates on its own core.
 *
 * Domain layout: domain 0 is the control plane (front-end router,
 * arrival synthesis, autoscaler bookkeeping mirror); domains 1..W are
 * worker hosts, each owning a full core::Worker (disk, stores,
 * orchestrator, uffd). All cross-domain interaction flows through two
 * CrossPorts per worker (invoke requests down, completion/scale
 * notices up), both with the cluster fabric-hop latency — which is
 * also the kernel's lookahead, so a window spans one fabric hop of
 * simulated time.
 *
 * Relation to cluster::Cluster: same worker model, same Azure mix
 * (cluster::synthesizeAzureMix), same fabric-hop request shape
 * (request hop + worker-side invoke + response hop), same keep-alive
 * scale-to-zero policy. The control plane routes on a *mirrored* view
 * of worker warm/in-flight state that trails reality by one fabric
 * hop — exactly what a distributed front-end would see — so absolute
 * results differ slightly from the sequential Cluster's omniscient
 * router; what the parallel kernel guarantees is that results are
 * bit-identical across thread counts (threads = 1 is the reference),
 * which tests/test_parallel.cc locks with digest().
 *
 * Shared data plane (sharedSnapshots): the fleet-shared
 * SnapshotRegistry semantics and the artifact ObjectStore run in their
 * own kernel domain (index workers + 1). Workers reach the store
 * through typed request/reply CrossPorts: a per-worker StorePortClient
 * implements net::ArtifactStore by shipping each operation to the
 * store domain and waiting for the reply, so loaders and page sources
 * work unchanged. Staging is build-once: each function's home worker
 * (same ring hash as LocalityHashPolicy) boots, records and ships a
 * Stage message; the store domain uploads (chunk-deduplicated under
 * DedupReap, sharded by net::ShardedObjectStore) and broadcasts Adopt
 * metadata — including chunk shard placements — to every worker.
 * Workers signal Ready only after adopting the whole population, so
 * traffic never races staging. All of it flows through ports, so
 * digests stay bit-identical across sim thread counts.
 *
 * Without sharedSnapshots every mode — including RemoteReap and
 * DedupReap — runs per-worker (each worker stages into its own store,
 * domain-confined), as the non-shared Cluster does.
 *
 * Traffic: cfg.traffic switches arrivals from the closed-loop Azure
 * mix to the open-loop TrafficEngine (Zipf populations, diurnal
 * modulation, burst events). Open-loop arrivals do not wait for
 * completions, so flash crowds genuinely pile onto the shared store;
 * the control plane drains in-flight requests before shutdown.
 */

#ifndef VHIVE_CLUSTER_PARALLEL_FLEET_HH
#define VHIVE_CLUSTER_PARALLEL_FLEET_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/azure_workload.hh"
#include "cluster/control_policy.hh"
#include "cluster/routing_policy.hh"
#include "cluster/traffic.hh"
#include "core/worker.hh"
#include "core/ws_file.hh"
#include "net/rpc.hh"
#include "net/sharded_store.hh"
#include "sim/fault.hh"
#include "sim/parallel.hh"
#include "storage/chunk_store.hh"
#include "util/stats.hh"
#include "vmm/snapshot.hh"

namespace vhive::cluster {

/** Configuration of a parallel fleet run. */
struct ParallelFleetConfig
{
    /** Worker hosts (= worker domains). */
    int workers = 4;

    /** Threads the kernel runs domains on (wall-clock only). */
    int simThreads = 1;

    /** Per-worker host configuration. */
    core::WorkerConfig worker{};

    /** Cold-start strategy (any mode; see sharedSnapshots). */
    core::ColdStartMode coldStartMode = core::ColdStartMode::Reap;

    /** Idle time after which instances scale to zero. */
    Duration keepAlive = sec(600);

    /** Worker-side autoscaler sweep period. */
    Duration scalePeriod = sec(2);

    /** Front-end routing strategy. */
    RoutingPolicyKind routingPolicy = RoutingPolicyKind::WarmFirst;

    /**
     * Predictive control policy, run in the control-plane domain
     * (domain 0) against the mirrored fleet view — so predictions,
     * like routing, trail worker reality by one fabric hop, and
     * digests stay bit-identical across sim thread counts. Pre-warm
     * and Prefetch actions travel to workers as first-class tracked
     * requests (a Prefetch warms the home worker's tier caches via
     * backgroundPrefetch, shielded until the predicted window by the
     * prefetch-pinned eviction policy); ScaleHint stays
     * sequential-Cluster-only. None (default) spawns no control tick
     * at all — bit-identical to the historical kernel.
     */
    ControlPolicyKind controlPolicy = ControlPolicyKind::None;

    /** Control-policy tick period (controlPolicy != None). */
    Duration controlPeriod = sec(2);

    /** The Azure mix to synthesize and drive (closed loop). */
    AzureWorkloadConfig workload{};

    /**
     * When set, arrivals come from the TrafficEngine instead of the
     * Azure mix: the engine's profiles are deployed and driven
     * open-loop (burst events overlap in flight). The workload field
     * above is ignored except for preRecordWorkingSets.
     */
    std::optional<TrafficConfig> traffic;

    /**
     * Fleet-shared staging on the parallel kernel: the snapshot
     * registry + artifact store run in their own domain and every
     * worker stages/fetches through request/reply ports. Requires a
     * remote-capable cold-start mode (TieredReap, RemoteReap or
     * DedupReap). Off (default): per-worker staging, bit-identical to
     * the historical behaviour (and no extra domain).
     */
    bool sharedSnapshots = false;

    /** Per-shard parameters of the shared store (sharedSnapshots). */
    net::ObjectStoreParams sharedStore = net::ObjectStoreParams::remote();

    /** Shards behind the shared store (sharedSnapshots; >= 1). */
    int sharedStoreShards = 1;

    /** Chunk-placement policy across shards (DedupReap staging). */
    net::ChunkPlacementPolicy chunkPlacement =
        net::ChunkPlacementPolicy::Hash;

    /**
     * Control-plane <-> worker fabric latency: the per-direction hop
     * every request pays, and the kernel's lookahead window.
     */
    Duration fabricHop = net::RpcParams{}.clusterHop;

    /**
     * Store-fault specs applied to every worker's object store. A
     * FaultPlan is not thread-safe, so each worker domain gets its
     * own plan built from these specs, seeded faultSeed + worker and
     * installed under "store/worker/<w>" — deterministic per domain
     * and safe under any simThreads. Empty (default) = fault-free,
     * bit-identical to the historical behaviour.
     */
    std::vector<sim::FaultSpec> storeFaults;

    /** Base seed of the per-worker fault plans. */
    std::uint64_t faultSeed = 0;

    /**
     * Byte budget of the fleet staged-chunk index in the store domain
     * (sharedSnapshots + DedupReap; 0 = unlimited). Referenced chunks
     * are shielded (refcount-protected), mirroring
     * SnapshotRegistry::setChunkBudget. Worker-side budgets (page
     * cache, chunk cache, local SSD) ride in `worker.reap`.
     */
    Bytes registryChunkBudget = 0;

    /** Victim selection for the budgeted fleet chunk index. */
    storage::EvictionPolicyKind registryEvictionPolicy =
        storage::EvictionPolicyKind::Lru;
};

/** Results of one parallel fleet run. */
struct ParallelFleetResult
{
    std::int64_t invocations = 0;
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t scaleDowns = 0;

    /** @name Predictive control plane (controlPolicy != None). */
    /// @{

    /** Pre-warm requests completed by workers. */
    std::int64_t preWarms = 0;

    /** Invocations served by a pre-warmed (or mid-warm) instance. */
    std::int64_t preWarmHits = 0;
    /// @}

    Samples e2eLatencyMs;  ///< all invocations, completion (Done-reply) order
    Samples coldE2eMs;     ///< cold-start invocations
    Samples warmE2eMs;     ///< warm invocations

    /** Kernel work: total events across domains, sync windows. */
    std::int64_t eventsProcessed = 0;
    std::int64_t windows = 0;
    std::int64_t messages = 0;

    /** @name Shared data plane (sharedSnapshots runs; else zero). */
    /// @{

    /** Functions staged through the store domain (one build each). */
    std::int64_t snapshotBuilds = 0;

    /** Bytes uploaded into the shared store by staging. */
    Bytes stagedBytes = 0;

    /** Upload bytes saved by fleet-wide chunk dedup (DedupReap). */
    Bytes dedupSavedBytes = 0;

    /** Chunks uploaded / referenced-without-upload by staging. */
    std::int64_t chunksUploaded = 0;
    std::int64_t chunksDeduped = 0;

    /** Cold starts that pulled artifact bytes through the store. */
    std::int64_t remoteArtifactFetches = 0;

    /** Shared-store traffic, aggregated and per shard. */
    net::ObjectStoreStats store{};
    std::vector<net::ObjectStoreStats> storeShards;
    /// @}

    /**
     * @name Cache & storage economics. All zero with budgets off and
     * no Prefetch actions — the historical behaviour. Every field is
     * folded into digest(), so the thread-count identity the
     * determinism suite asserts covers the budgeted paths too.
     */
    /// @{

    /** Control-plane Prefetch requests completed by workers. */
    std::int64_t bgPrefetches = 0;

    /** Worker page-cache peak resident bytes, summed. */
    Bytes pageCachePeakBytes = 0;

    /** Worker page-cache bytes shed by budget pressure, summed. */
    Bytes pageCacheEvictedBytes = 0;

    /** Worker chunk-cache peak stored bytes, summed. */
    Bytes workerChunkPeakBytes = 0;

    /** Worker chunk-cache budget evictions, summed. */
    std::int64_t workerChunkBudgetEvictions = 0;

    /** Local-SSD artifact copies evicted by ssdBudget, summed. */
    std::int64_t ssdEvictions = 0;

    /** Peak local artifact bytes, summed across workers. */
    Bytes peakSsdBytes = 0;

    /** Peak stored bytes of the fleet staged-chunk index. */
    Bytes fleetChunkPeakBytes = 0;

    /** Budget evictions from the fleet staged-chunk index. */
    std::int64_t fleetChunkBudgetEvictions = 0;
    /// @}

    double
    coldFraction() const
    {
        auto total = coldStarts + warmHits;
        return total ? static_cast<double>(coldStarts) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double coldP50() const { return coldE2eMs.percentile(50); }
    double coldP99() const { return coldE2eMs.percentile(99); }

    /**
     * FNV-1a fingerprint over every simulated quantity (per-sample
     * latency bit patterns in arrival order, counters, event totals).
     * Two runs are bit-identical iff digests match; the determinism
     * suite asserts equality across thread counts.
     */
    std::uint64_t digest() const;
};

/**
 * Builds the domains, wires the ports, runs the workload, aggregates.
 * One-shot: construct, run(), read the result.
 */
class ParallelFleet
{
  public:
    explicit ParallelFleet(ParallelFleetConfig config);
    ~ParallelFleet();

    ParallelFleet(const ParallelFleet &) = delete;
    ParallelFleet &operator=(const ParallelFleet &) = delete;

    /**
     * Run the fleet to completion on the configured thread count.
     * Blocking host call (not a coroutine): drives the parallel
     * kernel until every domain is quiescent.
     */
    ParallelFleetResult run();

    const sim::ParallelKernel::Stats &kernelStats() const
    {
        return kernel.stats();
    }

  private:
    /** Control -> worker commands. */
    struct WorkerMsg {
        enum Kind { Invoke, Shutdown } kind = Invoke;
        std::int64_t reqId = 0;
        int fnIdx = 0;

        /** Invoke only: control-plane pre-warm, not an invocation. */
        bool preWarm = false;

        /** Invoke only: background tier-cache prefetch, no instance. */
        bool prefetch = false;

        /** Prefetch only: shield the bytes until then (-1 = none). */
        Time pinUntil = -1;
    };

    /** Worker -> control notices. */
    struct ControlMsg {
        enum Kind { Ready, Done, ScaledDown, Bye } kind = Ready;
        std::int64_t reqId = 0;
        int fnIdx = 0;
        bool cold = false;

        /** Done of a pre-warm request (not an invocation). */
        bool preWarm = false;

        /** Done of an invocation a pre-warmed instance served. */
        bool preWarmHit = false;

        /** Worker's idle-instance count for fnIdx after the event. */
        std::int64_t idleNow = 0;

        /** Instances stopped (ScaledDown). */
        std::int64_t stopped = 0;

        /** Done of a background prefetch request. */
        bool prefetch = false;

        /**
         * Worker's chunk residency for fnIdx after the event
         * (Done replies; -1 = not reported). Feeds the control
         * plane's mirrored residency, which decides future Prefetch
         * actions — one fabric hop stale, like every mirror field.
         */
        double chunkResidency = -1;
    };

    /** Staged artifacts shipped from a home worker to the store. */
    struct StagePayload {
        int fnIdx = 0;
        core::WorkingSetRecord record;

        /** Chunk manifests (DedupReap); null for blob staging. */
        std::shared_ptr<const vmm::SnapshotManifests> manifests;

        /** Blob size to put() when not chunked. */
        Bytes blobBytes = 0;
    };

    /** Worker -> store-domain requests. */
    struct StoreMsg {
        enum Kind { Op, Stage, Bye } kind = Op;
        enum OpKind { Get, GetRange, Put, PutChunk, GetChunks } op = Get;
        std::int64_t reqId = 0;
        Bytes a = 0; ///< bytes (Get/Put/PutChunk), offset (GetRange)
        Bytes b = 0; ///< bytes (GetRange), stored bytes (GetChunks)
        std::int64_t chunks = 0;
        net::PlacementKey key{};
        std::shared_ptr<StagePayload> stage;
    };

    /** Staged metadata the store domain fans out to every worker. */
    struct AdoptPayload {
        int fnIdx = 0;
        core::WorkingSetRecord record;
        std::shared_ptr<const vmm::SnapshotManifests> manifests;

        /** Chunk shard placements (content hash -> shard). */
        std::vector<std::pair<std::uint64_t, int>> placements;
    };

    /** Store-domain -> worker replies. */
    struct StoreReply {
        enum Kind { OpDone, Adopt, Bye } kind = OpDone;
        std::int64_t reqId = 0;
        std::shared_ptr<AdoptPayload> adopt;
    };

    struct WorkerNode;

    /**
     * The worker-side face of the shared store: a net::ArtifactStore
     * whose five operations each travel as a StoreMsg over the
     * worker's toStore port and suspend until the store domain's
     * OpDone reply — so loaders and page sources use the fleet store
     * exactly like a local one, paying two fabric hops per request.
     */
    class StorePortClient final : public net::ArtifactStore
    {
      public:
        StorePortClient(ParallelFleet &fleet, int w)
            : fleet(fleet), w(w)
        {
        }

        sim::Task<void> get(Bytes bytes,
                            net::PlacementKey key = {}) override;
        sim::Task<void> getRange(Bytes offset, Bytes bytes,
                                 net::PlacementKey key = {}) override;
        sim::Task<void> put(Bytes bytes,
                            net::PlacementKey key = {}) override;
        sim::Task<void> putChunk(Bytes stored_bytes,
                                 net::PlacementKey key = {}) override;
        sim::Task<void> getChunks(std::int64_t chunks,
                                  Bytes stored_bytes,
                                  net::PlacementKey key = {}) override;

        /**
         * Mirrors the store domain's routing from the worker side:
         * adopted placements first (OverlapAware truth), content hash
         * otherwise — so ChunkPageSource groups batches per shard
         * without a round trip.
         */
        int shardOf(net::PlacementKey key) const override;
        int shardCount() const override;

      private:
        ParallelFleet &fleet;
        int w;
    };

    /** One worker domain: the host plus its message loops. */
    struct WorkerNode {
        std::unique_ptr<sim::CrossPort<WorkerMsg>> fromControl;
        std::unique_ptr<sim::CrossPort<ControlMsg>> toControl;

        /** @name Shared data plane (sharedSnapshots only). */
        /// @{
        std::unique_ptr<sim::CrossPort<StoreMsg>> toStore;
        std::unique_ptr<sim::CrossPort<StoreReply>> fromStore;
        std::unique_ptr<StorePortClient> storeClient;

        /** Gates of in-flight store ops, by request id. */
        std::unordered_map<std::int64_t, sim::Gate *> storePending;
        std::int64_t nextStoreReq = 0;

        /** Adopted chunk placements (content hash -> shard). */
        std::unordered_map<std::uint64_t, int> chunkHomes;

        /** Functions adopted; Ready fires when all of mix arrived. */
        std::int64_t adopted = 0;
        std::unique_ptr<sim::Gate> allAdopted;

        /** Cold starts that pulled bytes through the store ports. */
        std::int64_t remoteFetches = 0;
        /// @}

        /** Declared after the ports/client it may reference. */
        std::unique_ptr<core::Worker> worker;

        /** This domain's fault plan (null without storeFaults). */
        std::unique_ptr<sim::FaultPlan> faults;

        /** Completion time per function (index), for keep-alive. */
        std::vector<Time> lastUsed;

        std::int64_t liveInvokes = 0;
        std::int64_t scaleDowns = 0;
        bool stopping = false;
    };

    /** Control-side record of an in-flight request. */
    struct PendingReq {
        Time t0 = 0;
        int fnIdx = 0;
        int worker = 0;
        sim::Gate *done = nullptr;
        bool cold = false;
        bool preWarm = false;
        bool prefetch = false;
        Duration e2e = 0;
    };

    /** Mirrored worker state the routing policies consult. */
    class MirrorView final : public FleetView
    {
      public:
        explicit MirrorView(ParallelFleet &fleet) : fleet(fleet) {}
        int workerCount() const override;
        std::int64_t idleInstances(
            int worker, const std::string &name) const override;
        std::int64_t inFlight(int worker) const override;
        Bytes residentBytes(int worker) const override;
        bool artifactsLocal(int worker,
                            const std::string &name) const override;

      private:
        ParallelFleet &fleet;
    };

    /**
     * Validate @p config before any member that spawns threads is
     * constructed: genuinely unsupported combinations are rejected
     * with a clean fatal() naming the problem, from the member-init
     * list — never after the kernel's thread pool exists.
     */
    static ParallelFleetConfig checkedConfig(ParallelFleetConfig config);

    /** Store domain index (only meaningful with sharedSnapshots). */
    int storeDomain() const { return cfg.workers + 1; }

    /** LocalityHashPolicy ring home of @p name. */
    int homeWorkerOf(const std::string &name) const
    {
        return LocalityHashPolicy::homeWorker(name, cfg.workers);
    }

    /** Whether the configured mode stages chunk manifests. */
    bool chunkedMode() const
    {
        return cfg.coldStartMode == core::ColdStartMode::DedupReap;
    }

    /**
     * The ColdStartMode pre-warm requests load through: Sec. 6.3
     * background working-set warming for the tiered/remote family,
     * the configured mode itself otherwise (mirrors Cluster).
     */
    core::ColdStartMode preWarmMode() const;

    /** @name Worker-domain coroutines. */
    /// @{
    sim::Task<void> workerMain(int w);
    sim::Task<void> workerInvoke(int w, WorkerMsg msg);
    sim::Task<void> workerJanitor(int w);
    sim::Task<void> workerStorePump(int w);
    sim::Task<void> stageHomeFunctions(int w);

    /** Ship @p msg to the store domain; resumes on its OpDone. */
    sim::Task<void> storeOp(int w, StoreMsg msg);
    /// @}

    /** @name Store-domain coroutines (sharedSnapshots only). */
    /// @{
    sim::Task<void> storePump(int w);
    sim::Task<void> storeServe(int w, StoreMsg msg);
    sim::Task<void> storeStage(StoreMsg msg);
    /// @}

    /** @name Control-domain coroutines. */
    /// @{
    sim::Task<void> controlMain();
    sim::Task<void> arrivalLoop(int fn_idx, sim::Latch *done);
    sim::Task<void> trafficArrivalLoop(int fn_idx, sim::Latch *done);
    sim::Task<void> replyPump(int w, sim::Latch *ready,
                              sim::Latch *byes);

    /** Route + dispatch one invocation; returns its request id. */
    std::int64_t dispatch(int fn_idx, sim::Gate *done);

    /** Periodic ControlPolicy tick (controlPolicy != None). */
    sim::Task<void> controlTickLoop();
    /// @}

    ParallelFleetConfig cfg;
    sim::ParallelKernel kernel;
    std::vector<AzureMixEntry> mix;
    std::unordered_map<std::string, int> fnIndex;
    std::vector<std::unique_ptr<WorkerNode>> nodes;
    std::unique_ptr<TrafficEngine> trafficEng;

    /** @name Store-domain state (domain workers+1 only). */
    /// @{
    std::unique_ptr<net::ShardedObjectStore> sharedStore;
    std::unique_ptr<sim::FaultPlan> sharedFaults;
    storage::ChunkStore fleetChunks;
    std::int64_t stagingBuilds = 0;
    Bytes stagingStagedBytes = 0;
    Bytes stagingDedupSaved = 0;
    std::int64_t stagingChunksUploaded = 0;
    std::int64_t stagingChunksDeduped = 0;
    /// @}

    /** @name Control-domain state (domain 0 only). */
    /// @{
    RoutingPolicyRegistry policies;
    RoutingPolicy *activePolicy = nullptr;
    ControlPolicyRegistry controlPolicies;

    /** Active control policy; null when kind is None. */
    ControlPolicy *activeControl = nullptr;

    /** Per-function pre-warm already issued and not yet Done. */
    std::vector<char> preWarmInFlight;

    /** Per-function prefetch already issued and not yet Done. */
    std::vector<char> prefetchInFlight;

    /**
     * Mirrored chunk residency [w][fn], updated from Done replies:
     * what the control plane believes each worker holds, one fabric
     * hop stale. Source of ControlFunctionView::homeChunkResidency.
     */
    std::vector<std::vector<double>> mirrorResidency;

    /** Set after traffic drains; stops the control tick loop. */
    bool controlStopping = false;
    MirrorView view{*this};
    std::vector<std::vector<std::int64_t>> mirrorIdle; // [w][fn]
    std::vector<std::int64_t> mirrorInFlight;          // [w]
    std::unordered_map<std::int64_t, PendingReq> pending;
    std::int64_t nextReqId = 0;

    /** Open-loop drain: opened by replyPump when pending empties. */
    std::unique_ptr<sim::Gate> drainGate;
    ParallelFleetResult result;
    /// @}
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_PARALLEL_FLEET_HH
