/**
 * @file
 * Multi-core fleet simulation: the Azure-mix fleet scenario of
 * bench_fleet_cold_p99, sharded over a sim::ParallelKernel so each
 * worker host simulates on its own core.
 *
 * Domain layout: domain 0 is the control plane (front-end router,
 * arrival synthesis, autoscaler bookkeeping mirror); domains 1..W are
 * worker hosts, each owning a full core::Worker (disk, stores,
 * orchestrator, uffd). All cross-domain interaction flows through two
 * CrossPorts per worker (invoke requests down, completion/scale
 * notices up), both with the cluster fabric-hop latency — which is
 * also the kernel's lookahead, so a window spans one fabric hop of
 * simulated time.
 *
 * Relation to cluster::Cluster: same worker model, same Azure mix
 * (cluster::synthesizeAzureMix), same fabric-hop request shape
 * (request hop + worker-side invoke + response hop), same keep-alive
 * scale-to-zero policy. The control plane routes on a *mirrored* view
 * of worker warm/in-flight state that trails reality by one fabric
 * hop — exactly what a distributed front-end would see — so absolute
 * results differ slightly from the sequential Cluster's omniscient
 * router; what the parallel kernel guarantees is that results are
 * bit-identical across thread counts (threads = 1 is the reference),
 * which tests/test_parallel.cc locks with digest().
 *
 * Restrictions: cold-start modes requiring the shared SnapshotRegistry
 * (RemoteReap/DedupReap staging) are rejected — the registry is a
 * cross-worker shared object the port model does not cover yet (see
 * ROADMAP). Snapshots are prepared per worker, as the non-shared
 * Cluster does.
 */

#ifndef VHIVE_CLUSTER_PARALLEL_FLEET_HH
#define VHIVE_CLUSTER_PARALLEL_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/azure_workload.hh"
#include "cluster/routing_policy.hh"
#include "core/worker.hh"
#include "net/rpc.hh"
#include "sim/fault.hh"
#include "sim/parallel.hh"
#include "util/stats.hh"

namespace vhive::cluster {

/** Configuration of a parallel fleet run. */
struct ParallelFleetConfig
{
    /** Worker hosts (= worker domains). */
    int workers = 4;

    /** Threads the kernel runs domains on (wall-clock only). */
    int simThreads = 1;

    /** Per-worker host configuration. */
    core::WorkerConfig worker{};

    /** Cold-start strategy (registry-free modes only). */
    core::ColdStartMode coldStartMode = core::ColdStartMode::Reap;

    /** Idle time after which instances scale to zero. */
    Duration keepAlive = sec(600);

    /** Worker-side autoscaler sweep period. */
    Duration scalePeriod = sec(2);

    /** Front-end routing strategy. */
    RoutingPolicyKind routingPolicy = RoutingPolicyKind::WarmFirst;

    /** The Azure mix to synthesize and drive. */
    AzureWorkloadConfig workload{};

    /**
     * Control-plane <-> worker fabric latency: the per-direction hop
     * every request pays, and the kernel's lookahead window.
     */
    Duration fabricHop = net::RpcParams{}.clusterHop;

    /**
     * Store-fault specs applied to every worker's object store. A
     * FaultPlan is not thread-safe, so each worker domain gets its
     * own plan built from these specs, seeded faultSeed + worker and
     * installed under "store/worker/<w>" — deterministic per domain
     * and safe under any simThreads. Empty (default) = fault-free,
     * bit-identical to the historical behaviour.
     */
    std::vector<sim::FaultSpec> storeFaults;

    /** Base seed of the per-worker fault plans. */
    std::uint64_t faultSeed = 0;
};

/** Results of one parallel fleet run. */
struct ParallelFleetResult
{
    std::int64_t invocations = 0;
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    std::int64_t scaleDowns = 0;

    Samples e2eLatencyMs;  ///< all invocations, completion (Done-reply) order
    Samples coldE2eMs;     ///< cold-start invocations
    Samples warmE2eMs;     ///< warm invocations

    /** Kernel work: total events across domains, sync windows. */
    std::int64_t eventsProcessed = 0;
    std::int64_t windows = 0;
    std::int64_t messages = 0;

    double
    coldFraction() const
    {
        auto total = coldStarts + warmHits;
        return total ? static_cast<double>(coldStarts) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double coldP50() const { return coldE2eMs.percentile(50); }
    double coldP99() const { return coldE2eMs.percentile(99); }

    /**
     * FNV-1a fingerprint over every simulated quantity (per-sample
     * latency bit patterns in arrival order, counters, event totals).
     * Two runs are bit-identical iff digests match; the determinism
     * suite asserts equality across thread counts.
     */
    std::uint64_t digest() const;
};

/**
 * Builds the domains, wires the ports, runs the workload, aggregates.
 * One-shot: construct, run(), read the result.
 */
class ParallelFleet
{
  public:
    explicit ParallelFleet(ParallelFleetConfig config);
    ~ParallelFleet();

    ParallelFleet(const ParallelFleet &) = delete;
    ParallelFleet &operator=(const ParallelFleet &) = delete;

    /**
     * Run the fleet to completion on the configured thread count.
     * Blocking host call (not a coroutine): drives the parallel
     * kernel until every domain is quiescent.
     */
    ParallelFleetResult run();

    const sim::ParallelKernel::Stats &kernelStats() const
    {
        return kernel.stats();
    }

  private:
    /** Control -> worker commands. */
    struct WorkerMsg {
        enum Kind { Invoke, Shutdown } kind = Invoke;
        std::int64_t reqId = 0;
        int fnIdx = 0;
    };

    /** Worker -> control notices. */
    struct ControlMsg {
        enum Kind { Ready, Done, ScaledDown, Bye } kind = Ready;
        std::int64_t reqId = 0;
        int fnIdx = 0;
        bool cold = false;

        /** Worker's idle-instance count for fnIdx after the event. */
        std::int64_t idleNow = 0;

        /** Instances stopped (ScaledDown). */
        std::int64_t stopped = 0;
    };

    /** One worker domain: the host plus its message loops. */
    struct WorkerNode {
        std::unique_ptr<core::Worker> worker;
        std::unique_ptr<sim::CrossPort<WorkerMsg>> fromControl;
        std::unique_ptr<sim::CrossPort<ControlMsg>> toControl;

        /** This domain's fault plan (null without storeFaults). */
        std::unique_ptr<sim::FaultPlan> faults;

        /** Completion time per function (index), for keep-alive. */
        std::vector<Time> lastUsed;

        std::int64_t liveInvokes = 0;
        std::int64_t scaleDowns = 0;
        bool stopping = false;
    };

    /** Control-side record of an in-flight request. */
    struct PendingReq {
        Time t0 = 0;
        int fnIdx = 0;
        int worker = 0;
        sim::Gate *done = nullptr;
        bool cold = false;
        Duration e2e = 0;
    };

    /** Mirrored worker state the routing policies consult. */
    class MirrorView final : public FleetView
    {
      public:
        explicit MirrorView(ParallelFleet &fleet) : fleet(fleet) {}
        int workerCount() const override;
        std::int64_t idleInstances(
            int worker, const std::string &name) const override;
        std::int64_t inFlight(int worker) const override;
        Bytes residentBytes(int worker) const override;
        bool artifactsLocal(int worker,
                            const std::string &name) const override;

      private:
        ParallelFleet &fleet;
    };

    /**
     * Validate @p config before any member that spawns threads is
     * constructed: registry-backed cold-start modes are rejected with
     * a clean fatal() naming the mode, from the member-init list —
     * never after the kernel's thread pool exists.
     */
    static ParallelFleetConfig checkedConfig(ParallelFleetConfig config);

    /** @name Worker-domain coroutines. */
    /// @{
    sim::Task<void> workerMain(int w);
    sim::Task<void> workerInvoke(int w, WorkerMsg msg);
    sim::Task<void> workerJanitor(int w);
    /// @}

    /** @name Control-domain coroutines. */
    /// @{
    sim::Task<void> controlMain();
    sim::Task<void> arrivalLoop(int fn_idx, sim::Latch *done);
    sim::Task<void> replyPump(int w, sim::Latch *ready,
                              sim::Latch *byes);
    /// @}

    ParallelFleetConfig cfg;
    sim::ParallelKernel kernel;
    std::vector<AzureMixEntry> mix;
    std::unordered_map<std::string, int> fnIndex;
    std::vector<std::unique_ptr<WorkerNode>> nodes;

    /** @name Control-domain state (domain 0 only). */
    /// @{
    RoutingPolicyRegistry policies;
    RoutingPolicy *activePolicy = nullptr;
    MirrorView view{*this};
    std::vector<std::vector<std::int64_t>> mirrorIdle; // [w][fn]
    std::vector<std::int64_t> mirrorInFlight;          // [w]
    std::unordered_map<std::int64_t, PendingReq> pending;
    std::int64_t nextReqId = 0;
    ParallelFleetResult result;
    /// @}
};

} // namespace vhive::cluster

#endif // VHIVE_CLUSTER_PARALLEL_FLEET_HH
