#include "cluster/parallel_fleet.hh"

#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vhive::cluster {

namespace {

/** FNV-1a accumulation of one 64-bit quantity. */
void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
}

/** FNV-1a accumulation of one ObjectStoreStats row. */
void
fnvMixStats(std::uint64_t &h, const net::ObjectStoreStats &s)
{
    fnvMix(h, static_cast<std::uint64_t>(s.gets));
    fnvMix(h, static_cast<std::uint64_t>(s.puts));
    fnvMix(h, static_cast<std::uint64_t>(s.rangedGets));
    fnvMix(h, static_cast<std::uint64_t>(s.bytesServed));
    fnvMix(h, static_cast<std::uint64_t>(s.bytesStored));
    fnvMix(h, static_cast<std::uint64_t>(s.chunkPuts));
    fnvMix(h, static_cast<std::uint64_t>(s.chunkBatches));
    fnvMix(h, static_cast<std::uint64_t>(s.chunksServed));
    fnvMix(h, static_cast<std::uint64_t>(s.streamWaits));
    fnvMix(h, static_cast<std::uint64_t>(s.streamWaitTime));
    fnvMix(h, static_cast<std::uint64_t>(s.peakStreamQueue));
    fnvMix(h, static_cast<std::uint64_t>(s.requestRetries));
    fnvMix(h, static_cast<std::uint64_t>(s.outageStalls));
}

} // namespace

std::uint64_t
ParallelFleetResult::digest() const
{
    std::uint64_t h = 14695981039346656037ull;
    fnvMix(h, static_cast<std::uint64_t>(invocations));
    fnvMix(h, static_cast<std::uint64_t>(coldStarts));
    fnvMix(h, static_cast<std::uint64_t>(warmHits));
    fnvMix(h, static_cast<std::uint64_t>(scaleDowns));
    fnvMix(h, static_cast<std::uint64_t>(preWarms));
    fnvMix(h, static_cast<std::uint64_t>(preWarmHits));
    fnvMix(h, static_cast<std::uint64_t>(eventsProcessed));
    fnvMix(h, static_cast<std::uint64_t>(windows));
    fnvMix(h, static_cast<std::uint64_t>(messages));
    fnvMix(h, static_cast<std::uint64_t>(snapshotBuilds));
    fnvMix(h, static_cast<std::uint64_t>(stagedBytes));
    fnvMix(h, static_cast<std::uint64_t>(dedupSavedBytes));
    fnvMix(h, static_cast<std::uint64_t>(chunksUploaded));
    fnvMix(h, static_cast<std::uint64_t>(chunksDeduped));
    fnvMix(h, static_cast<std::uint64_t>(remoteArtifactFetches));
    fnvMix(h, static_cast<std::uint64_t>(bgPrefetches));
    fnvMix(h, static_cast<std::uint64_t>(pageCachePeakBytes));
    fnvMix(h, static_cast<std::uint64_t>(pageCacheEvictedBytes));
    fnvMix(h, static_cast<std::uint64_t>(workerChunkPeakBytes));
    fnvMix(h, static_cast<std::uint64_t>(workerChunkBudgetEvictions));
    fnvMix(h, static_cast<std::uint64_t>(ssdEvictions));
    fnvMix(h, static_cast<std::uint64_t>(peakSsdBytes));
    fnvMix(h, static_cast<std::uint64_t>(fleetChunkPeakBytes));
    fnvMix(h, static_cast<std::uint64_t>(fleetChunkBudgetEvictions));
    fnvMixStats(h, store);
    fnvMix(h, static_cast<std::uint64_t>(storeShards.size()));
    for (const net::ObjectStoreStats &row : storeShards)
        fnvMixStats(h, row);
    for (const Samples *s : {&e2eLatencyMs, &coldE2eMs, &warmE2eMs}) {
        fnvMix(h, static_cast<std::uint64_t>(s->count()));
        for (double v : s->values())
            fnvMix(h, std::bit_cast<std::uint64_t>(v));
    }
    return h;
}

ParallelFleetConfig
ParallelFleet::checkedConfig(ParallelFleetConfig config)
{
    // Runs in the member-init list, before the kernel's thread pool
    // is constructed: an unsupported configuration exits cleanly
    // instead of tearing down live simulation threads.
    if (config.sharedStoreShards < 1)
        fatal("ParallelFleet: sharedStoreShards must be >= 1 (got %d)",
              config.sharedStoreShards);
    if (config.sharedSnapshots &&
        config.coldStartMode != core::ColdStartMode::TieredReap &&
        config.coldStartMode != core::ColdStartMode::RemoteReap &&
        config.coldStartMode != core::ColdStartMode::DedupReap) {
        fatal("ParallelFleet sharedSnapshots requires a "
              "remote-capable cold-start mode (TieredReap, "
              "RemoteReap or DedupReap); %s keeps all artifacts "
              "local and has nothing to stage",
              core::coldStartModeName(config.coldStartMode));
    }
    return config;
}

ParallelFleet::ParallelFleet(ParallelFleetConfig config)
    : cfg(checkedConfig(std::move(config))),
      kernel(cfg.workers + 1 + (cfg.sharedSnapshots ? 1 : 0),
             cfg.simThreads)
{
    VHIVE_ASSERT(cfg.workers >= 1);

    if (cfg.traffic) {
        // Traffic-driven mix: the engine's Zipf population, driven
        // open-loop (meanInterarrival unused on this path).
        trafficEng = std::make_unique<TrafficEngine>(*cfg.traffic);
        mix.reserve(
            static_cast<std::size_t>(trafficEng->functionCount()));
        for (int i = 0; i < trafficEng->functionCount(); ++i)
            mix.push_back(AzureMixEntry{trafficEng->profile(i), 0});
    } else {
        mix = synthesizeAzureMix(cfg.workload);
    }
    for (std::size_t i = 0; i < mix.size(); ++i)
        fnIndex[mix[i].profile.name] = static_cast<int>(i);

    mirrorIdle.assign(static_cast<std::size_t>(cfg.workers),
                      std::vector<std::int64_t>(mix.size(), 0));
    mirrorInFlight.assign(static_cast<std::size_t>(cfg.workers), 0);
    activePolicy = &policies.policyFor(cfg.routingPolicy);
    preWarmInFlight.assign(mix.size(), 0);
    prefetchInFlight.assign(mix.size(), 0);
    // Mirrored chunk residency, one hop stale (refreshed by Done
    // replies). Non-shared fleets keep every artifact local, so full
    // residency everywhere; shared fleets start with residency only
    // on each function's home worker (where it records) and learn the
    // rest from replies.
    mirrorResidency.assign(
        static_cast<std::size_t>(cfg.workers),
        std::vector<double>(mix.size(), cfg.sharedSnapshots ? 0.0
                                                            : 1.0));
    if (cfg.sharedSnapshots)
        for (std::size_t i = 0; i < mix.size(); ++i)
            mirrorResidency[static_cast<std::size_t>(
                homeWorkerOf(mix[i].profile.name))][i] = 1.0;
    if (cfg.controlPolicy != ControlPolicyKind::None)
        activeControl = &controlPolicies.policyFor(cfg.controlPolicy);

    if (cfg.sharedSnapshots) {
        net::ShardedStoreParams sp;
        sp.shards = cfg.sharedStoreShards;
        sp.shard = cfg.sharedStore;
        sp.placement = cfg.chunkPlacement;
        sharedStore = std::make_unique<net::ShardedObjectStore>(
            kernel.sim(storeDomain()), sp);
        if (cfg.registryChunkBudget > 0)
            fleetChunks.setBudget(cfg.registryChunkBudget,
                                  cfg.registryEvictionPolicy,
                                  /*refcount_protected=*/true);
        if (!cfg.storeFaults.empty()) {
            // The store domain draws its own deterministic fault
            // stream (FaultPlan is not thread-safe across domains),
            // under the same "store/shared[/<s>]" tags the sequential
            // Cluster uses.
            sharedFaults = std::make_unique<sim::FaultPlan>(
                cfg.faultSeed +
                static_cast<std::uint64_t>(cfg.workers));
            for (const sim::FaultSpec &spec : cfg.storeFaults)
                sharedFaults->add(spec);
            sharedStore->setFaultPlan(sharedFaults.get(),
                                      "store/shared");
        }
    }

    nodes.reserve(static_cast<std::size_t>(cfg.workers));
    for (int w = 0; w < cfg.workers; ++w) {
        auto node = std::make_unique<WorkerNode>();
        core::WorkerConfig wc = cfg.worker;
        // Same per-worker seed derivation as cluster::Cluster.
        wc.seed = cfg.worker.seed + static_cast<std::uint64_t>(w);
        node->fromControl =
            std::make_unique<sim::CrossPort<WorkerMsg>>(
                kernel, kernel.domain(0), kernel.domain(1 + w),
                cfg.fabricHop);
        node->toControl =
            std::make_unique<sim::CrossPort<ControlMsg>>(
                kernel, kernel.domain(1 + w), kernel.domain(0),
                cfg.fabricHop);
        if (cfg.sharedSnapshots) {
            // Store ports + client must exist before the Worker: the
            // worker's loaders capture the client as their artifact
            // store.
            node->toStore =
                std::make_unique<sim::CrossPort<StoreMsg>>(
                    kernel, kernel.domain(1 + w),
                    kernel.domain(storeDomain()), cfg.fabricHop);
            node->fromStore =
                std::make_unique<sim::CrossPort<StoreReply>>(
                    kernel, kernel.domain(storeDomain()),
                    kernel.domain(1 + w), cfg.fabricHop);
            node->storeClient =
                std::make_unique<StorePortClient>(*this, w);
            node->allAdopted =
                std::make_unique<sim::Gate>(kernel.sim(1 + w));
        }
        node->worker = std::make_unique<core::Worker>(
            kernel.sim(1 + w), wc, node->storeClient.get());
        node->lastUsed.assign(mix.size(), 0);
        if (!cfg.storeFaults.empty()) {
            // One plan per domain (FaultPlan is not thread-safe),
            // seeded per worker so domains draw independent but
            // deterministic fault streams for any simThreads.
            node->faults = std::make_unique<sim::FaultPlan>(
                cfg.faultSeed + static_cast<std::uint64_t>(w));
            for (const sim::FaultSpec &spec : cfg.storeFaults)
                node->faults->add(spec);
            node->worker->objectStore().setFaultPlan(
                node->faults.get(),
                "store/worker/" + std::to_string(w));
        }
        nodes.push_back(std::move(node));
    }
}

ParallelFleet::~ParallelFleet() = default;

// ------------------------------------------------------- mirror view

int
ParallelFleet::MirrorView::workerCount() const
{
    return fleet.cfg.workers;
}

std::int64_t
ParallelFleet::MirrorView::idleInstances(int worker,
                                         const std::string &name) const
{
    auto it = fleet.fnIndex.find(name);
    if (it == fleet.fnIndex.end())
        return 0;
    return fleet.mirrorIdle[static_cast<std::size_t>(worker)]
                           [static_cast<std::size_t>(it->second)];
}

std::int64_t
ParallelFleet::MirrorView::inFlight(int worker) const
{
    return fleet.mirrorInFlight[static_cast<std::size_t>(worker)];
}

Bytes
ParallelFleet::MirrorView::residentBytes(int) const
{
    // The mirror does not track instance memory; load-aware policies
    // in this build consult idle/in-flight counters only.
    return 0;
}

bool
ParallelFleet::MirrorView::artifactsLocal(
    int worker, const std::string &name) const
{
    // Without the shared registry snapshots are prepared on every
    // worker, so artifacts are always local. With it, only the home
    // worker built locally; everyone else pulls through the store on
    // first cold start — the one-hop-stale approximation a mirrored
    // front-end would hold (it cannot see later re-localization).
    return !fleet.cfg.sharedSnapshots ||
           worker == fleet.homeWorkerOf(name);
}

// ----------------------------------------------- store port client

sim::Task<void>
ParallelFleet::StorePortClient::get(Bytes bytes, net::PlacementKey key)
{
    StoreMsg m;
    m.op = StoreMsg::Get;
    m.a = bytes;
    m.key = key;
    co_await fleet.storeOp(w, m);
}

sim::Task<void>
ParallelFleet::StorePortClient::getRange(Bytes offset, Bytes bytes,
                                         net::PlacementKey key)
{
    StoreMsg m;
    m.op = StoreMsg::GetRange;
    m.a = offset;
    m.b = bytes;
    m.key = key;
    co_await fleet.storeOp(w, m);
}

sim::Task<void>
ParallelFleet::StorePortClient::put(Bytes bytes, net::PlacementKey key)
{
    StoreMsg m;
    m.op = StoreMsg::Put;
    m.a = bytes;
    m.key = key;
    co_await fleet.storeOp(w, m);
}

sim::Task<void>
ParallelFleet::StorePortClient::putChunk(Bytes stored_bytes,
                                         net::PlacementKey key)
{
    StoreMsg m;
    m.op = StoreMsg::PutChunk;
    m.a = stored_bytes;
    m.key = key;
    co_await fleet.storeOp(w, m);
}

sim::Task<void>
ParallelFleet::StorePortClient::getChunks(std::int64_t chunks,
                                          Bytes stored_bytes,
                                          net::PlacementKey key)
{
    StoreMsg m;
    m.op = StoreMsg::GetChunks;
    m.chunks = chunks;
    m.b = stored_bytes;
    m.key = key;
    co_await fleet.storeOp(w, m);
}

int
ParallelFleet::StorePortClient::shardOf(net::PlacementKey key) const
{
    const WorkerNode &node =
        *fleet.nodes[static_cast<std::size_t>(w)];
    auto it = node.chunkHomes.find(key.content);
    if (it != node.chunkHomes.end())
        return it->second;
    return net::hashShardOf(key.content, fleet.cfg.sharedStoreShards);
}

int
ParallelFleet::StorePortClient::shardCount() const
{
    return fleet.cfg.sharedStoreShards;
}

sim::Task<void>
ParallelFleet::storeOp(int w, StoreMsg msg)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    msg.kind = StoreMsg::Op;
    msg.reqId = node.nextStoreReq++;
    sim::Gate gate(kernel.sim(1 + w));
    node.storePending.emplace(msg.reqId, &gate);
    node.toStore->send(msg);
    co_await gate.wait();
    node.storePending.erase(msg.reqId);
}

// ---------------------------------------------------- store domain

sim::Task<void>
ParallelFleet::storePump(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    sim::Simulation &ssim = kernel.sim(storeDomain());

    while (true) {
        StoreMsg msg = co_await node.toStore->recv();
        switch (msg.kind) {
          case StoreMsg::Op:
            // Served on its own task so one worker's in-flight store
            // requests overlap (reqIds disambiguate the replies).
            ssim.spawn(storeServe(w, msg));
            break;
          case StoreMsg::Stage:
            ssim.spawn(storeStage(msg));
            break;
          case StoreMsg::Bye: {
            StoreReply r;
            r.kind = StoreReply::Bye;
            node.fromStore->send(r);
            co_return;
          }
        }
    }
}

sim::Task<void>
ParallelFleet::storeServe(int w, StoreMsg msg)
{
    switch (msg.op) {
      case StoreMsg::Get:
        co_await sharedStore->get(msg.a, msg.key);
        break;
      case StoreMsg::GetRange:
        co_await sharedStore->getRange(msg.a, msg.b, msg.key);
        break;
      case StoreMsg::Put:
        co_await sharedStore->put(msg.a, msg.key);
        break;
      case StoreMsg::PutChunk:
        co_await sharedStore->putChunk(msg.a, msg.key);
        break;
      case StoreMsg::GetChunks:
        co_await sharedStore->getChunks(msg.chunks, msg.b, msg.key);
        break;
    }
    StoreReply r;
    r.kind = StoreReply::OpDone;
    r.reqId = msg.reqId;
    nodes[static_cast<std::size_t>(w)]->fromStore->send(r);
}

sim::Task<void>
ParallelFleet::storeStage(StoreMsg msg)
{
    const StagePayload &p = *msg.stage;
    const std::string &name =
        mix[static_cast<std::size_t>(p.fnIdx)].profile.name;
    std::uint64_t scope = net::placementScope(name);

    auto adopt = std::make_shared<AdoptPayload>();
    adopt->fnIdx = p.fnIdx;
    adopt->record = p.record;
    adopt->manifests = p.manifests;

    ++stagingBuilds;
    if (p.manifests) {
        // Chunked staging, mirroring SnapshotRegistry::ensureStaged:
        // upload only chunks no earlier function staged; duplicates
        // are referenced in the fleet index and never cross the wire
        // again. Every chunk's placement rides the Adopt broadcast so
        // workers group future batches by the true owning shard.
        for (const storage::ChunkManifest *man :
             {&p.manifests->vmmState, &p.manifests->ws}) {
            for (const storage::ChunkRef &c : man->chunks) {
                if (fleetChunks.addRef(
                        c, kernel.sim(storeDomain()).now())) {
                    co_await sharedStore->putChunk(c.storedBytes,
                                                   {c.hash, scope});
                    stagingStagedBytes += c.storedBytes;
                    ++stagingChunksUploaded;
                } else {
                    stagingDedupSaved += c.storedBytes;
                    ++stagingChunksDeduped;
                }
                adopt->placements.emplace_back(
                    c.hash, sharedStore->shardOf({c.hash, scope}));
            }
        }
    } else {
        // Blob staging: one put() of VMM state + WS file serves the
        // whole fleet.
        co_await sharedStore->put(p.blobBytes, {scope, scope});
        stagingStagedBytes += p.blobBytes;
    }

    StoreReply r;
    r.kind = StoreReply::Adopt;
    r.adopt = adopt;
    for (auto &node : nodes)
        node->fromStore->send(r);
}

// --------------------------------------------------- worker domain

sim::Task<void>
ParallelFleet::stageHomeFunctions(int w)
{
    // Build-once staging: this worker prepares, records and ships
    // only the functions whose LocalityHash ring home it is; every
    // other function arrives as Adopt metadata from the store domain.
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();

    for (std::size_t i = 0; i < mix.size(); ++i) {
        const std::string &name = mix[i].profile.name;
        if (homeWorkerOf(name) != w)
            continue;
        co_await orch.prepareSnapshot(name);
        if (!orch.hasRecord(name)) {
            core::InvokeOptions opts;
            opts.forceCold = true;
            (void)co_await orch.invoke(name, cfg.coldStartMode,
                                       opts);
        }
        auto payload = std::make_shared<StagePayload>();
        payload->fnIdx = static_cast<int>(i);
        payload->record = orch.record(name);
        if (chunkedMode()) {
            (void)orch.buildManifests(name);
            payload->manifests = orch.manifests(name);
        } else {
            payload->blobBytes = core::stagedArtifactBytes(
                node.worker->config().vmm.vmmStateSize,
                orch.record(name));
        }
        StoreMsg m;
        m.kind = StoreMsg::Stage;
        m.stage = std::move(payload);
        node.toStore->send(m);
    }
}

sim::Task<void>
ParallelFleet::workerStorePump(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();

    while (true) {
        StoreReply r = co_await node.fromStore->recv();
        switch (r.kind) {
          case StoreReply::OpDone: {
            auto it = node.storePending.find(r.reqId);
            VHIVE_ASSERT(it != node.storePending.end());
            it->second->openGate();
            break;
          }
          case StoreReply::Adopt: {
            // Placements first: any cold start racing the adoption
            // must already group its batches by the true shard.
            for (const auto &[hash, shard] : r.adopt->placements)
                node.chunkHomes.emplace(hash, shard);
            orch.adoptStagedArtifacts(
                mix[static_cast<std::size_t>(r.adopt->fnIdx)]
                    .profile.name,
                r.adopt->record, r.adopt->manifests);
            if (++node.adopted ==
                static_cast<std::int64_t>(mix.size()))
                node.allAdopted->openGate();
            break;
          }
          case StoreReply::Bye:
            co_return;
        }
    }
}

sim::Task<void>
ParallelFleet::workerMain(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    sim::Simulation &wsim = kernel.sim(1 + w);

    for (const auto &entry : mix)
        orch.registerFunction(entry.profile);

    if (cfg.sharedSnapshots) {
        wsim.spawn(workerStorePump(w));
        co_await stageHomeFunctions(w);
        // Staging already recorded each function once on its home
        // worker (the pre-record pass is redundant here); Ready waits
        // for the whole population so traffic never races adoption.
        co_await node.allAdopted->wait();
    } else {
        for (const auto &entry : mix)
            co_await orch.prepareSnapshot(entry.profile.name);

        bool mode_needs_record = orch.loaders()
                                     .loaderFor(cfg.coldStartMode)
                                     .needsRecord();
        if (cfg.workload.preRecordWorkingSets && mode_needs_record) {
            // One record-phase invocation per function, off the
            // measured window — mirrors AzureWorkload::run's
            // pre-record pass.
            for (const auto &entry : mix) {
                orch.flushHostCaches();
                core::InvokeOptions opts;
                opts.forceCold = true;
                (void)co_await orch.invoke(entry.profile.name,
                                           cfg.coldStartMode, opts);
            }
        }
    }

    node.toControl->send(ControlMsg{ControlMsg::Ready, 0, 0, false,
                                    0, 0});
    wsim.spawn(workerJanitor(w));

    while (true) {
        WorkerMsg msg = co_await node.fromControl->recv();
        if (msg.kind == WorkerMsg::Shutdown)
            break;
        ++node.liveInvokes;
        wsim.spawn(workerInvoke(w, msg));
    }

    // The control plane only shuts down once every reply gate has
    // resolved, so the worker is necessarily drained here.
    VHIVE_ASSERT(node.liveInvokes == 0);
    node.stopping = true;
    if (cfg.sharedSnapshots) {
        StoreMsg bye;
        bye.kind = StoreMsg::Bye;
        node.toStore->send(bye);
    }
    node.toControl->send(ControlMsg{ControlMsg::Bye, 0, 0, false,
                                    0, 0});
}

core::ColdStartMode
ParallelFleet::preWarmMode() const
{
    switch (cfg.coldStartMode) {
      case core::ColdStartMode::TieredReap:
      case core::ColdStartMode::RemoteReap:
      case core::ColdStartMode::DedupReap:
      case core::ColdStartMode::BackgroundWarm:
        return core::ColdStartMode::BackgroundWarm;
      default:
        return cfg.coldStartMode;
    }
}

sim::Task<void>
ParallelFleet::workerInvoke(int w, WorkerMsg msg)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    const std::string &name =
        mix[static_cast<std::size_t>(msg.fnIdx)].profile.name;

    if (msg.prefetch) {
        // Control-plane chunk prefetch: warm this worker's tier
        // caches ahead of the predicted window, shielding the bytes
        // from budget eviction until msg.pinUntil (the prefetch-
        // pinned policy's contract). No instance comes up and
        // keep-alive is untouched — only cache state moves.
        co_await orch.backgroundPrefetch(name, msg.pinUntil);
        --node.liveInvokes;

        ControlMsg reply;
        reply.kind = ControlMsg::Done;
        reply.reqId = msg.reqId;
        reply.fnIdx = msg.fnIdx;
        reply.prefetch = true;
        reply.idleNow = orch.idleInstanceCount(name);
        reply.chunkResidency = orch.chunkResidency(name);
        node.toControl->send(reply);
        co_return;
    }

    if (msg.preWarm) {
        // Control-plane pre-warm: load an instance ahead of the
        // predicted arrival, don't serve anything. Refresh keep-alive
        // only when an instance actually came up — a no-op or crashed
        // pre-warm must not extend a dead function's residency.
        auto pbd = co_await orch.preWarm(name, preWarmMode());
        if (pbd.total > 0 && !pbd.crashed)
            node.lastUsed[static_cast<std::size_t>(msg.fnIdx)] =
                kernel.sim(1 + w).now();
        --node.liveInvokes;

        ControlMsg reply;
        reply.kind = ControlMsg::Done;
        reply.reqId = msg.reqId;
        reply.fnIdx = msg.fnIdx;
        reply.preWarm = true;
        reply.idleNow = orch.idleInstanceCount(name);
        reply.chunkResidency = orch.chunkResidency(name);
        node.toControl->send(reply);
        co_return;
    }

    core::InvokeOptions opts;
    opts.keepWarm = true;
    auto bd = co_await orch.invoke(name, cfg.coldStartMode, opts);

    if (cfg.sharedSnapshots && bd.cold) {
        // Same detection as Cluster::invoke: RemoteReap always
        // re-fetches; tiered chains report which tier actually served
        // the WS bytes.
        bool fetched =
            cfg.coldStartMode == core::ColdStartMode::RemoteReap;
        for (const auto &t : bd.tierHits)
            if (t.tier == "remote")
                fetched = t.bytes > 0;
        if (fetched)
            ++node.remoteFetches;
    }

    node.lastUsed[static_cast<std::size_t>(msg.fnIdx)] =
        kernel.sim(1 + w).now();
    --node.liveInvokes;

    ControlMsg reply;
    reply.kind = ControlMsg::Done;
    reply.reqId = msg.reqId;
    reply.fnIdx = msg.fnIdx;
    reply.cold = bd.cold;
    reply.preWarmHit = bd.preWarmHit;
    reply.idleNow = orch.idleInstanceCount(name);
    reply.chunkResidency = orch.chunkResidency(name);
    node.toControl->send(reply);
}

sim::Task<void>
ParallelFleet::workerJanitor(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    sim::Simulation &wsim = kernel.sim(1 + w);

    while (!node.stopping) {
        co_await wsim.delay(cfg.scalePeriod);
        if (node.stopping)
            break;
        for (std::size_t fn = 0; fn < mix.size(); ++fn) {
            const std::string &name = mix[fn].profile.name;
            if (orch.idleInstanceCount(name) == 0)
                continue;
            if (wsim.now() - node.lastUsed[fn] < cfg.keepAlive)
                continue;
            std::int64_t stopped =
                co_await orch.stopIdleInstances(name);
            if (stopped > 0) {
                ++node.scaleDowns;
                ControlMsg msg;
                msg.kind = ControlMsg::ScaledDown;
                msg.fnIdx = static_cast<int>(fn);
                msg.idleNow = orch.idleInstanceCount(name);
                msg.stopped = stopped;
                node.toControl->send(msg);
            }
        }
    }
}

// --------------------------------------------------- control domain

sim::Task<void>
ParallelFleet::replyPump(int w, sim::Latch *ready, sim::Latch *byes)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    sim::Simulation &csim = kernel.sim(0);

    while (true) {
        ControlMsg msg = co_await node.toControl->recv();
        switch (msg.kind) {
          case ControlMsg::Ready:
            ready->arrive();
            break;
          case ControlMsg::Done: {
            auto it = pending.find(msg.reqId);
            VHIVE_ASSERT(it != pending.end());
            PendingReq &pr = it->second;
            Duration e2e = csim.now() - pr.t0;
            mirrorIdle[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(msg.fnIdx)] =
                msg.idleNow;
            if (msg.chunkResidency >= 0)
                mirrorResidency[static_cast<std::size_t>(w)]
                               [static_cast<std::size_t>(msg.fnIdx)] =
                    msg.chunkResidency;
            if (msg.prefetch) {
                // A prefetch only moved cache bytes: free the
                // in-flight guard and count it; no invocation, no
                // instance accounting.
                prefetchInFlight[static_cast<std::size_t>(
                    msg.fnIdx)] = 0;
                ++result.bgPrefetches;
            } else if (msg.preWarm) {
                // A pre-warm is not an invocation: it refreshes the
                // mirror and frees the in-flight guard, nothing else.
                preWarmInFlight[static_cast<std::size_t>(msg.fnIdx)] =
                    0;
                ++result.preWarms;
            } else {
                --mirrorInFlight[static_cast<std::size_t>(w)];
                ++result.invocations;
                result.e2eLatencyMs.add(toMs(e2e));
                if (msg.preWarmHit)
                    ++result.preWarmHits;
                if (msg.cold) {
                    ++result.coldStarts;
                    result.coldE2eMs.add(toMs(e2e));
                } else {
                    ++result.warmHits;
                    result.warmE2eMs.add(toMs(e2e));
                }
            }
            if (pr.done != nullptr)
                pr.done->openGate();
            pending.erase(it);
            if (drainGate && pending.empty())
                drainGate->openGate();
            break;
          }
          case ControlMsg::ScaledDown:
            mirrorIdle[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(msg.fnIdx)] =
                msg.idleNow;
            break;
          case ControlMsg::Bye:
            byes->arrive();
            co_return;
        }
    }
}

std::int64_t
ParallelFleet::dispatch(int fn_idx, sim::Gate *done)
{
    sim::Simulation &csim = kernel.sim(0);
    const std::string &name =
        mix[static_cast<std::size_t>(fn_idx)].profile.name;

    int widx = activePolicy->route(RouteContext{name, view});
    VHIVE_ASSERT(widx >= 0 && widx < cfg.workers);

    // Arrival history feeds prediction; pre-warms never land here,
    // so the policy only ever learns from real invocations.
    if (activeControl)
        activeControl->noteArrival(name, csim.now());

    std::int64_t id = nextReqId++;
    PendingReq pr;
    pr.t0 = csim.now();
    pr.fnIdx = fn_idx;
    pr.worker = widx;
    pr.done = done;
    pending.emplace(id, pr);

    // Optimistically claim the warm instance the route expects to
    // hit; the worker's Done reply re-syncs the true count.
    auto &idle = mirrorIdle[static_cast<std::size_t>(widx)]
                           [static_cast<std::size_t>(fn_idx)];
    if (idle > 0)
        --idle;
    ++mirrorInFlight[static_cast<std::size_t>(widx)];

    WorkerMsg msg;
    msg.kind = WorkerMsg::Invoke;
    msg.reqId = id;
    msg.fnIdx = fn_idx;
    nodes[static_cast<std::size_t>(widx)]->fromControl->send(msg);
    return id;
}

sim::Task<void>
ParallelFleet::arrivalLoop(int fn_idx, sim::Latch *done)
{
    sim::Simulation &csim = kernel.sim(0);
    const AzureMixEntry &entry =
        mix[static_cast<std::size_t>(fn_idx)];
    // Same arrival stream construction as AzureWorkload::arrivalLoop.
    Rng local(cfg.workload.seed,
              "azure-arrivals/" + entry.profile.name);
    Time deadline = csim.now() + cfg.workload.horizon;

    while (true) {
        Duration gap = static_cast<Duration>(local.exponential(
            static_cast<double>(entry.meanInterarrival)));
        if (csim.now() + gap >= deadline)
            break;
        co_await csim.delay(gap);

        sim::Gate gate(csim);
        (void)dispatch(fn_idx, &gate);
        co_await gate.wait(); // closed loop: next draw after reply
    }
    done->arrive();
}

sim::Task<void>
ParallelFleet::trafficArrivalLoop(int fn_idx, sim::Latch *done)
{
    // Open loop: arrivals fire on the engine's schedule whether or
    // not earlier invocations completed, so burst events genuinely
    // pile onto the fleet (a closed loop would self-throttle exactly
    // when contention matters). Same stream names as TrafficWorkload.
    sim::Simulation &csim = kernel.sim(0);
    const std::string &name =
        mix[static_cast<std::size_t>(fn_idx)].profile.name;
    Rng local(trafficEng->config().seed, "traffic-arrivals/" + name);
    Time start = csim.now();
    Duration t = 0;

    while (true) {
        t = trafficEng->nextArrival(fn_idx, t, local);
        if (t >= trafficEng->config().horizon)
            break;
        co_await csim.delay(start + t - csim.now());
        (void)dispatch(fn_idx, nullptr);
    }
    done->arrive();
}

sim::Task<void>
ParallelFleet::controlTickLoop()
{
    sim::Simulation &csim = kernel.sim(0);

    while (!controlStopping) {
        co_await csim.delay(cfg.controlPeriod);
        if (controlStopping)
            break;

        ControlTickContext ctx;
        ctx.now = csim.now();
        ctx.workers = cfg.workers;
        if (result.coldE2eMs.count() > 0)
            ctx.coldP99Ms = result.coldE2eMs.percentile(99);
        ctx.coldStarts = result.coldStarts;
        ctx.functions.reserve(mix.size());
        for (std::size_t fn = 0; fn < mix.size(); ++fn) {
            const std::string &name = mix[fn].profile.name;
            ControlFunctionView v;
            v.name = name;
            v.homeWorker = homeWorkerOf(name);
            for (int w = 0; w < cfg.workers; ++w)
                v.idleInstances +=
                    mirrorIdle[static_cast<std::size_t>(w)][fn];
            v.warming =
                preWarmInFlight[fn] != 0 || prefetchInFlight[fn] != 0;
            // One-hop-stale residency mirror, refreshed by every Done
            // reply: low residency on the home worker lets the policy
            // emit Prefetch actions, which (unlike ScaleHint, still a
            // sequential-Cluster verb) now travel to workers as
            // first-class tracked requests.
            v.homeChunkResidency =
                mirrorResidency[static_cast<std::size_t>(
                    v.homeWorker)][fn];
            ctx.functions.push_back(std::move(v));
        }

        std::vector<ControlAction> actions;
        activeControl->tick(ctx, actions);
        for (const ControlAction &a : actions) {
            bool prefetch = a.kind == ControlAction::Kind::Prefetch;
            if (a.kind != ControlAction::Kind::PreWarm && !prefetch)
                continue;
            auto it = fnIndex.find(a.function);
            if (it == fnIndex.end())
                continue;
            auto fn = static_cast<std::size_t>(it->second);
            if (prefetch ? prefetchInFlight[fn] != 0
                         : preWarmInFlight[fn] != 0)
                continue;
            int widx = a.worker;
            if (widx < 0 || widx >= cfg.workers)
                widx = homeWorkerOf(a.function);
            if (prefetch)
                prefetchInFlight[fn] = 1;
            else
                preWarmInFlight[fn] = 1;

            // First-class pending request: the shutdown drain waits
            // for its Done like any invocation, so workers never see
            // traffic after Shutdown. It does not claim mirror state.
            std::int64_t id = nextReqId++;
            PendingReq pr;
            pr.t0 = csim.now();
            pr.fnIdx = static_cast<int>(fn);
            pr.worker = widx;
            pr.preWarm = !prefetch;
            pr.prefetch = prefetch;
            pending.emplace(id, pr);

            WorkerMsg msg;
            msg.kind = WorkerMsg::Invoke;
            msg.reqId = id;
            msg.fnIdx = static_cast<int>(fn);
            msg.preWarm = !prefetch;
            msg.prefetch = prefetch;
            msg.pinUntil = a.until;
            nodes[static_cast<std::size_t>(widx)]->fromControl->send(
                msg);
        }
    }
}

sim::Task<void>
ParallelFleet::controlMain()
{
    sim::Simulation &csim = kernel.sim(0);

    sim::Latch ready(csim, cfg.workers);
    sim::Latch byes(csim, cfg.workers);
    for (int w = 0; w < cfg.workers; ++w)
        csim.spawn(replyPump(w, &ready, &byes));
    co_await ready.wait();

    if (activeControl)
        csim.spawn(controlTickLoop());

    sim::Latch done(csim, static_cast<std::int64_t>(mix.size()));
    for (std::size_t fn = 0; fn < mix.size(); ++fn)
        csim.spawn(trafficEng
                       ? trafficArrivalLoop(static_cast<int>(fn),
                                            &done)
                       : arrivalLoop(static_cast<int>(fn), &done));
    co_await done.wait();

    // Stop issuing control actions before draining: a tick runs
    // synchronously within one resumption, so after this flag no
    // pre-warm can slip in between drain and Shutdown. Pre-warms
    // already in flight are pending entries the drain waits out.
    controlStopping = true;

    if (!pending.empty()) {
        // Open-loop stragglers: wait for every in-flight request's
        // Done before asking workers to shut down.
        drainGate = std::make_unique<sim::Gate>(csim);
        co_await drainGate->wait();
    }

    for (auto &node : nodes)
        node->fromControl->send(
            WorkerMsg{WorkerMsg::Shutdown, 0, 0});
    co_await byes.wait();
}

ParallelFleetResult
ParallelFleet::run()
{
    for (int w = 0; w < cfg.workers; ++w)
        kernel.sim(1 + w).spawn(workerMain(w));
    if (cfg.sharedSnapshots)
        for (int w = 0; w < cfg.workers; ++w)
            kernel.sim(storeDomain()).spawn(storePump(w));
    kernel.sim(0).spawn(controlMain());

    kernel.run();

    result.eventsProcessed = kernel.totalEventsProcessed();
    result.windows = kernel.stats().windows;
    result.messages = kernel.stats().messages;
    for (const auto &node : nodes)
        result.scaleDowns += node->scaleDowns;
    for (const auto &node : nodes) {
        // Economics counters: fold every budget-path observable into
        // the result (and thus the digest) so the thread-count
        // identity covers eviction, pinning and SSD GC decisions.
        const auto &orch = node->worker->orchestrator();
        result.pageCachePeakBytes +=
            orch.tierBudget().peakResidentBytes();
        result.pageCacheEvictedBytes += orch.tierBudget().evictedBytes();
        const auto &cc = orch.localChunkCache().stats();
        result.workerChunkPeakBytes += cc.peakStoredBytes;
        result.workerChunkBudgetEvictions += cc.budgetEvictions;
        result.ssdEvictions += orch.ssdEvictions();
        result.peakSsdBytes += orch.peakSsdBytes();
    }
    if (cfg.sharedSnapshots) {
        result.fleetChunkPeakBytes = fleetChunks.stats().peakStoredBytes;
        result.fleetChunkBudgetEvictions =
            fleetChunks.stats().budgetEvictions;
        result.snapshotBuilds = stagingBuilds;
        result.stagedBytes = stagingStagedBytes;
        result.dedupSavedBytes = stagingDedupSaved;
        result.chunksUploaded = stagingChunksUploaded;
        result.chunksDeduped = stagingChunksDeduped;
        for (const auto &node : nodes)
            result.remoteArtifactFetches += node->remoteFetches;
        result.store = sharedStore->stats();
        result.storeShards = sharedStore->shardStats();
    }
    return result;
}

} // namespace vhive::cluster
