#include "cluster/parallel_fleet.hh"

#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vhive::cluster {

namespace {

/** FNV-1a accumulation of one 64-bit quantity. */
void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
}

} // namespace

std::uint64_t
ParallelFleetResult::digest() const
{
    std::uint64_t h = 14695981039346656037ull;
    fnvMix(h, static_cast<std::uint64_t>(invocations));
    fnvMix(h, static_cast<std::uint64_t>(coldStarts));
    fnvMix(h, static_cast<std::uint64_t>(warmHits));
    fnvMix(h, static_cast<std::uint64_t>(scaleDowns));
    fnvMix(h, static_cast<std::uint64_t>(eventsProcessed));
    fnvMix(h, static_cast<std::uint64_t>(windows));
    fnvMix(h, static_cast<std::uint64_t>(messages));
    for (const Samples *s : {&e2eLatencyMs, &coldE2eMs, &warmE2eMs}) {
        fnvMix(h, static_cast<std::uint64_t>(s->count()));
        for (double v : s->values())
            fnvMix(h, std::bit_cast<std::uint64_t>(v));
    }
    return h;
}

ParallelFleetConfig
ParallelFleet::checkedConfig(ParallelFleetConfig config)
{
    // Runs in the member-init list, before the kernel's thread pool
    // is constructed: an unsupported configuration exits cleanly
    // instead of tearing down live simulation threads.
    if (config.coldStartMode == core::ColdStartMode::RemoteReap ||
        config.coldStartMode == core::ColdStartMode::DedupReap) {
        fatal("ParallelFleet does not support registry-backed "
              "cold-start modes yet (%s needs the shared "
              "SnapshotRegistry; see ROADMAP)",
              core::coldStartModeName(config.coldStartMode));
    }
    return config;
}

ParallelFleet::ParallelFleet(ParallelFleetConfig config)
    : cfg(checkedConfig(std::move(config))),
      kernel(cfg.workers + 1, cfg.simThreads)
{
    VHIVE_ASSERT(cfg.workers >= 1);

    mix = synthesizeAzureMix(cfg.workload);
    for (std::size_t i = 0; i < mix.size(); ++i)
        fnIndex[mix[i].profile.name] = static_cast<int>(i);

    mirrorIdle.assign(static_cast<std::size_t>(cfg.workers),
                      std::vector<std::int64_t>(mix.size(), 0));
    mirrorInFlight.assign(static_cast<std::size_t>(cfg.workers), 0);
    activePolicy = &policies.policyFor(cfg.routingPolicy);

    nodes.reserve(static_cast<std::size_t>(cfg.workers));
    for (int w = 0; w < cfg.workers; ++w) {
        auto node = std::make_unique<WorkerNode>();
        core::WorkerConfig wc = cfg.worker;
        // Same per-worker seed derivation as cluster::Cluster.
        wc.seed = cfg.worker.seed + static_cast<std::uint64_t>(w);
        node->worker = std::make_unique<core::Worker>(
            kernel.sim(1 + w), wc);
        node->fromControl =
            std::make_unique<sim::CrossPort<WorkerMsg>>(
                kernel, kernel.domain(0), kernel.domain(1 + w),
                cfg.fabricHop);
        node->toControl =
            std::make_unique<sim::CrossPort<ControlMsg>>(
                kernel, kernel.domain(1 + w), kernel.domain(0),
                cfg.fabricHop);
        node->lastUsed.assign(mix.size(), 0);
        if (!cfg.storeFaults.empty()) {
            // One plan per domain (FaultPlan is not thread-safe),
            // seeded per worker so domains draw independent but
            // deterministic fault streams for any simThreads.
            node->faults = std::make_unique<sim::FaultPlan>(
                cfg.faultSeed + static_cast<std::uint64_t>(w));
            for (const sim::FaultSpec &spec : cfg.storeFaults)
                node->faults->add(spec);
            node->worker->objectStore().setFaultPlan(
                node->faults.get(),
                "store/worker/" + std::to_string(w));
        }
        nodes.push_back(std::move(node));
    }
}

ParallelFleet::~ParallelFleet() = default;

// ------------------------------------------------------- mirror view

int
ParallelFleet::MirrorView::workerCount() const
{
    return fleet.cfg.workers;
}

std::int64_t
ParallelFleet::MirrorView::idleInstances(int worker,
                                         const std::string &name) const
{
    auto it = fleet.fnIndex.find(name);
    if (it == fleet.fnIndex.end())
        return 0;
    return fleet.mirrorIdle[static_cast<std::size_t>(worker)]
                           [static_cast<std::size_t>(it->second)];
}

std::int64_t
ParallelFleet::MirrorView::inFlight(int worker) const
{
    return fleet.mirrorInFlight[static_cast<std::size_t>(worker)];
}

Bytes
ParallelFleet::MirrorView::residentBytes(int) const
{
    // The mirror does not track instance memory; load-aware policies
    // in this build consult idle/in-flight counters only.
    return 0;
}

bool
ParallelFleet::MirrorView::artifactsLocal(int, const std::string &) const
{
    // No shared registry: snapshots are prepared on every worker, so
    // artifacts are always local — same as the non-shared Cluster.
    return true;
}

// --------------------------------------------------- worker domain

sim::Task<void>
ParallelFleet::workerMain(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    sim::Simulation &wsim = kernel.sim(1 + w);

    for (const auto &entry : mix)
        orch.registerFunction(entry.profile);
    for (const auto &entry : mix)
        co_await orch.prepareSnapshot(entry.profile.name);

    bool mode_needs_record = orch.loaders()
                                 .loaderFor(cfg.coldStartMode)
                                 .needsRecord();
    if (cfg.workload.preRecordWorkingSets && mode_needs_record) {
        // One record-phase invocation per function, off the measured
        // window — mirrors AzureWorkload::run's pre-record pass.
        for (const auto &entry : mix) {
            orch.flushHostCaches();
            core::InvokeOptions opts;
            opts.forceCold = true;
            (void)co_await orch.invoke(entry.profile.name,
                                       cfg.coldStartMode, opts);
        }
    }

    node.toControl->send(ControlMsg{ControlMsg::Ready, 0, 0, false,
                                    0, 0});
    wsim.spawn(workerJanitor(w));

    while (true) {
        WorkerMsg msg = co_await node.fromControl->recv();
        if (msg.kind == WorkerMsg::Shutdown)
            break;
        ++node.liveInvokes;
        wsim.spawn(workerInvoke(w, msg));
    }

    // The control plane only shuts down once every reply gate has
    // resolved, so the worker is necessarily drained here.
    VHIVE_ASSERT(node.liveInvokes == 0);
    node.stopping = true;
    node.toControl->send(ControlMsg{ControlMsg::Bye, 0, 0, false,
                                    0, 0});
}

sim::Task<void>
ParallelFleet::workerInvoke(int w, WorkerMsg msg)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    const std::string &name =
        mix[static_cast<std::size_t>(msg.fnIdx)].profile.name;

    core::InvokeOptions opts;
    opts.keepWarm = true;
    auto bd = co_await orch.invoke(name, cfg.coldStartMode, opts);

    node.lastUsed[static_cast<std::size_t>(msg.fnIdx)] =
        kernel.sim(1 + w).now();
    --node.liveInvokes;

    ControlMsg reply;
    reply.kind = ControlMsg::Done;
    reply.reqId = msg.reqId;
    reply.fnIdx = msg.fnIdx;
    reply.cold = bd.cold;
    reply.idleNow = orch.idleInstanceCount(name);
    node.toControl->send(reply);
}

sim::Task<void>
ParallelFleet::workerJanitor(int w)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    auto &orch = node.worker->orchestrator();
    sim::Simulation &wsim = kernel.sim(1 + w);

    while (!node.stopping) {
        co_await wsim.delay(cfg.scalePeriod);
        if (node.stopping)
            break;
        for (std::size_t fn = 0; fn < mix.size(); ++fn) {
            const std::string &name = mix[fn].profile.name;
            if (orch.idleInstanceCount(name) == 0)
                continue;
            if (wsim.now() - node.lastUsed[fn] < cfg.keepAlive)
                continue;
            std::int64_t stopped =
                co_await orch.stopIdleInstances(name);
            if (stopped > 0) {
                ++node.scaleDowns;
                ControlMsg msg;
                msg.kind = ControlMsg::ScaledDown;
                msg.fnIdx = static_cast<int>(fn);
                msg.idleNow = orch.idleInstanceCount(name);
                msg.stopped = stopped;
                node.toControl->send(msg);
            }
        }
    }
}

// --------------------------------------------------- control domain

sim::Task<void>
ParallelFleet::replyPump(int w, sim::Latch *ready, sim::Latch *byes)
{
    WorkerNode &node = *nodes[static_cast<std::size_t>(w)];
    sim::Simulation &csim = kernel.sim(0);

    while (true) {
        ControlMsg msg = co_await node.toControl->recv();
        switch (msg.kind) {
          case ControlMsg::Ready:
            ready->arrive();
            break;
          case ControlMsg::Done: {
            auto it = pending.find(msg.reqId);
            VHIVE_ASSERT(it != pending.end());
            PendingReq &pr = it->second;
            Duration e2e = csim.now() - pr.t0;
            mirrorIdle[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(msg.fnIdx)] =
                msg.idleNow;
            --mirrorInFlight[static_cast<std::size_t>(w)];
            ++result.invocations;
            result.e2eLatencyMs.add(toMs(e2e));
            if (msg.cold) {
                ++result.coldStarts;
                result.coldE2eMs.add(toMs(e2e));
            } else {
                ++result.warmHits;
                result.warmE2eMs.add(toMs(e2e));
            }
            pr.done->openGate();
            pending.erase(it);
            break;
          }
          case ControlMsg::ScaledDown:
            mirrorIdle[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(msg.fnIdx)] =
                msg.idleNow;
            break;
          case ControlMsg::Bye:
            byes->arrive();
            co_return;
        }
    }
}

sim::Task<void>
ParallelFleet::arrivalLoop(int fn_idx, sim::Latch *done)
{
    sim::Simulation &csim = kernel.sim(0);
    const AzureMixEntry &entry =
        mix[static_cast<std::size_t>(fn_idx)];
    // Same arrival stream construction as AzureWorkload::arrivalLoop.
    Rng local(cfg.workload.seed,
              "azure-arrivals/" + entry.profile.name);
    Time deadline = csim.now() + cfg.workload.horizon;

    while (true) {
        Duration gap = static_cast<Duration>(local.exponential(
            static_cast<double>(entry.meanInterarrival)));
        if (csim.now() + gap >= deadline)
            break;
        co_await csim.delay(gap);

        int widx = activePolicy->route(
            RouteContext{entry.profile.name, view});
        VHIVE_ASSERT(widx >= 0 && widx < cfg.workers);

        std::int64_t id = nextReqId++;
        sim::Gate gate(csim);
        PendingReq pr;
        pr.t0 = csim.now();
        pr.fnIdx = fn_idx;
        pr.worker = widx;
        pr.done = &gate;
        pending.emplace(id, pr);

        // Optimistically claim the warm instance the route expects to
        // hit; the worker's Done reply re-syncs the true count.
        auto &idle = mirrorIdle[static_cast<std::size_t>(widx)]
                               [static_cast<std::size_t>(fn_idx)];
        if (idle > 0)
            --idle;
        ++mirrorInFlight[static_cast<std::size_t>(widx)];

        WorkerMsg msg;
        msg.kind = WorkerMsg::Invoke;
        msg.reqId = id;
        msg.fnIdx = fn_idx;
        nodes[static_cast<std::size_t>(widx)]->fromControl->send(msg);

        co_await gate.wait(); // closed loop: next draw after reply
    }
    done->arrive();
}

sim::Task<void>
ParallelFleet::controlMain()
{
    sim::Simulation &csim = kernel.sim(0);

    sim::Latch ready(csim, cfg.workers);
    sim::Latch byes(csim, cfg.workers);
    for (int w = 0; w < cfg.workers; ++w)
        csim.spawn(replyPump(w, &ready, &byes));
    co_await ready.wait();

    sim::Latch done(csim, static_cast<std::int64_t>(mix.size()));
    for (std::size_t fn = 0; fn < mix.size(); ++fn)
        csim.spawn(arrivalLoop(static_cast<int>(fn), &done));
    co_await done.wait();

    for (auto &node : nodes)
        node->fromControl->send(
            WorkerMsg{WorkerMsg::Shutdown, 0, 0});
    co_await byes.wait();
}

ParallelFleetResult
ParallelFleet::run()
{
    for (int w = 0; w < cfg.workers; ++w)
        kernel.sim(1 + w).spawn(workerMain(w));
    kernel.sim(0).spawn(controlMain());

    kernel.run();

    result.eventsProcessed = kernel.totalEventsProcessed();
    result.windows = kernel.stats().windows;
    result.messages = kernel.stats().messages;
    for (const auto &node : nodes)
        result.scaleDowns += node->scaleDowns;
    return result;
}

} // namespace vhive::cluster
