/**
 * @file
 * Coroutine task type for the DES kernel. Task<T> is a lazily-started
 * coroutine returning T. Tasks compose structurally via co_await, or run
 * detached via Simulation::spawn for forever-loop servers.
 *
 * Lifetime rules:
 *  - co_await task       starts (if needed) and joins; parent owns frame.
 *  - task.start(sim)     schedules the first resume at the current time;
 *                        the Task object still owns the frame and must be
 *                        co_awaited (or outlive completion).
 *  - sim.spawn(move(t))  detaches; the frame self-destroys on completion
 *                        or is reclaimed at simulation teardown.
 */

#ifndef VHIVE_SIM_TASK_HH
#define VHIVE_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hh"
#include "sim/simulation.hh"
#include "util/logging.hh"

namespace vhive::sim {

template <typename T>
class Task;

namespace detail {

/** State shared by all task promises. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    Simulation *sim = nullptr;
    bool started = false;
    bool detached = false;
    std::exception_ptr exception;

    /**
     * Intrusive detached-registry state (see
     * Simulation::registerDetached): spawn links the promise into the
     * simulation's list and records the type-erased frame handle for
     * teardown, so detaching costs two pointer writes instead of a
     * hash-set insertion.
     */
    std::coroutine_handle<> self;
    PromiseBase *detachedPrev = nullptr;
    PromiseBase *detachedNext = nullptr;

    /** Coroutine frames come from the slab pool, not malloc. */
    static void *
    operator new(std::size_t n)
    {
        return FramePool::allocate(n);
    }

    static void
    operator delete(void *p, std::size_t n) noexcept
    {
        FramePool::deallocate(p, n);
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }

    /**
     * On completion: resume the joining parent via symmetric transfer,
     * or self-destroy when detached.
     */
    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto &p = h.promise();
            if (p.continuation)
                return p.continuation;
            if (p.detached) {
                if (p.exception) {
                    // A detached task must not fail silently.
                    panic("unhandled exception in detached sim task");
                }
                if (p.sim)
                    p.sim->unregisterDetached(p);
                h.destroy();
            }
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }
};

template <typename T>
struct TaskPromise : PromiseBase
{
    std::optional<T> result;

    Task<T> get_return_object();

    void
    return_value(T v)
    {
        result.emplace(std::move(v));
    }
};

template <>
struct TaskPromise<void> : PromiseBase
{
    Task<void> get_return_object();

    void return_void() {}
};

} // namespace detail

/**
 * A lazily-started coroutine computing a T inside the simulation.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::TaskPromise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : coro(h) {}

    Task(Task &&other) noexcept : coro(std::exchange(other.coro, {})) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            reset();
            coro = std::exchange(other.coro, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { reset(); }

    /** True if this Task owns a coroutine frame. */
    bool valid() const { return static_cast<bool>(coro); }

    /** True once the coroutine ran to completion. */
    bool done() const { return coro && coro.done(); }

    /**
     * Schedule the first resume at the simulation's current time. Allows
     * fork/join concurrency: start several tasks, then co_await each.
     */
    void
    start(Simulation &sim)
    {
        VHIVE_ASSERT(coro);
        auto &p = coro.promise();
        if (p.started)
            return;
        p.started = true;
        p.sim = &sim;
        sim.schedule(coro, sim.now());
    }

    /** Awaiting a task starts it (if necessary) and joins it. */
    auto
    operator co_await() noexcept
    {
        struct Awaiter {
            Handle coro;

            bool await_ready() const noexcept { return coro.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                auto &p = coro.promise();
                p.continuation = parent;
                if (!p.started) {
                    p.started = true;
                    p.sim = Simulation::current();
                    return coro; // run child inline at this timestamp
                }
                // Already running; final awaiter will resume us.
                return std::noop_coroutine();
            }

            T
            await_resume()
            {
                auto &p = coro.promise();
                if (p.exception)
                    std::rethrow_exception(p.exception);
                if constexpr (!std::is_void_v<T>)
                    return std::move(*p.result);
            }
        };
        VHIVE_ASSERT(coro);
        return Awaiter{coro};
    }

    /**
     * Release ownership of the frame (used by Simulation::spawn).
     * @return the raw handle.
     */
    Handle release() { return std::exchange(coro, {}); }

  private:
    void
    reset()
    {
        if (!coro)
            return;
        auto &p = coro.promise();
        if (p.started && !coro.done()) {
            // Dropping a live task is only legal during simulation
            // teardown, where queued handles are never resumed again.
            if (!(p.sim && p.sim->tearingDown()))
                panic("sim::Task destroyed while still running");
        }
        coro.destroy();
        coro = {};
    }

    Handle coro;
};

namespace detail {

template <typename T>
Task<T>
TaskPromise<T>::get_return_object()
{
    return Task<T>(
        std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void>
TaskPromise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace vhive::sim

#endif // VHIVE_SIM_TASK_HH
