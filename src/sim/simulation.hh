/**
 * @file
 * Discrete-event simulation kernel. A Simulation owns a time-ordered
 * event queue of coroutine resumptions; simulated components are
 * coroutines (sim::Task) that suspend on delays, resources and channels.
 *
 * Determinism: events at equal timestamps fire in schedule (FIFO) order,
 * so a given seed always produces bit-identical results.
 *
 * Hot-path design (see event_queue.hh and frame_pool.hh for the two
 * main pieces): same-timestamp wakeups go through an O(1) FIFO ring,
 * future events through a timing-wheel hierarchy (near heap, 4096-slot
 * wheel, far heap) that pops in exact (when, seq) order; coroutine
 * frames come from slab-backed free lists; and detached tasks sit on
 * an intrusive list threaded through their promises, so
 * spawn/complete never hashes or allocates registry nodes.
 */

#ifndef VHIVE_SIM_SIMULATION_HH
#define VHIVE_SIM_SIMULATION_HH

#include <coroutine>
#include <cstdint>

#include "sim/event_queue.hh"
#include "util/units.hh"

namespace vhive::sim {

template <typename T>
class Task;

namespace detail {
struct PromiseBase;
} // namespace detail

/**
 * The simulation kernel: virtual clock plus pending-event queue.
 *
 * Typical use:
 * @code
 *   Simulation sim;
 *   sim.spawn(server(sim, ...));   // detached forever-loop
 *   auto t = client(sim, ...);     // structured task
 *   t.start(sim);
 *   sim.run();                     // until no runnable events remain
 * @endcode
 */
class Simulation
{
  public:
    Simulation() = default;
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time (ns since simulation start). */
    Time now() const { return _now; }

    /**
     * The simulation whose run loop is executing on this thread, or
     * nullptr outside of Simulation::run. Lets awaitables find their
     * kernel without threading a pointer through every coroutine.
     */
    static Simulation *current();

    /**
     * Schedule a coroutine resume at absolute time @p when (>= now).
     * Used by awaitables; rarely called directly.
     */
    void schedule(std::coroutine_handle<> h, Time when);

    /** Schedule a resume after @p d ns. */
    void scheduleAfter(std::coroutine_handle<> h, Duration d);

    /**
     * Awaitable that suspends the calling task for @p d simulated ns.
     * A non-positive @p d completes immediately.
     */
    auto
    delay(Duration d)
    {
        struct Awaiter {
            Simulation &sim;
            Duration d;
            bool await_ready() const noexcept { return d <= 0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim.scheduleAfter(h, d);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, d};
    }

    /**
     * Detach-and-run a task: ownership moves to the simulation, the task
     * begins at the current time, and its frame is reclaimed on
     * completion (or at simulation teardown for forever-loops).
     */
    void spawn(Task<void> task);

    /** Run until no events remain. @return final simulated time. */
    Time run();

    /**
     * Run events with timestamp <= @p until, then set the clock to
     * @p until. Events scheduled later stay queued.
     */
    void runUntil(Time until);

    /**
     * Run events with timestamp strictly before @p limit, leaving the
     * clock at the last processed event. Unlike runUntil() the clock
     * is not forced forward, so a later window (or another domain's
     * message delivery at exactly @p limit) still lands in the future.
     * This is the per-domain primitive of the parallel kernel
     * (sim/parallel.hh).
     */
    void runWindow(Time limit);

    /**
     * runWindow variant that additionally stops as soon as @p stop
     * reads true (checked between events). The parallel kernel's solo
     * fast path uses it to re-tighten its bound when the running
     * domain emits a cross-domain message.
     */
    void runWindow(Time limit, const bool &stop);

    /** True when any event is pending. */
    bool hasPending() const { return !queue.empty(); }

    /** Timestamp of the earliest pending event; requires hasPending(). */
    Time nextPendingWhen() const { return queue.nextWhen(); }

    /** Number of events processed so far (for tests/diagnostics). */
    std::int64_t eventsProcessed() const { return _eventsProcessed; }

    /** True while the destructor reclaims outstanding coroutines. */
    bool tearingDown() const { return _tearingDown; }

    /** @name Detached-task registry (internal; used by Task). */
    /// @{
    void registerDetached(detail::PromiseBase &p);
    void unregisterDetached(detail::PromiseBase &p);
    /// @}

  private:
    void step(const Event &ev);

    KernelQueue queue;
    detail::PromiseBase *detachedHead = nullptr;
    Time _now = 0;
    std::uint64_t nextSeq = 0;
    std::int64_t _eventsProcessed = 0;
    bool _tearingDown = false;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_SIMULATION_HH
