#include "sim/sync.hh"

namespace vhive::sim {

void
Gate::openGate()
{
    if (open)
        return;
    open = true;
    for (auto h : waiters)
        sim.schedule(h, sim.now());
    waiters.clear();
}

void
Semaphore::release()
{
    if (!waiters.empty()) {
        auto h = waiters.front();
        waiters.pop_front();
        // Hand the permit directly to the waiter: available stays 0.
        sim.schedule(h, sim.now());
    } else {
        ++available;
    }
}

} // namespace vhive::sim
