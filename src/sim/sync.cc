#include "sim/sync.hh"

namespace vhive::sim {

void
Gate::openGate()
{
    if (open)
        return;
    open = true;
    while (!waiters.empty())
        sim.schedule(waiters.popFront(), sim.now());
}

void
Semaphore::release()
{
    if (!waiters.empty()) {
        // Hand the permit directly to the waiter: available stays 0.
        sim.schedule(waiters.popFront(), sim.now());
    } else {
        ++available;
    }
}

} // namespace vhive::sim
