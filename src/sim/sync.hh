/**
 * @file
 * Synchronization primitives for simulated tasks: Gate (one-shot event),
 * Latch (countdown), Semaphore (FIFO counted resource), and Channel<T>
 * (unbounded FIFO message queue). All wake-ups are funnelled through the
 * simulation event queue so same-time ordering stays deterministic.
 */

#ifndef VHIVE_SIM_SYNC_HH
#define VHIVE_SIM_SYNC_HH

#include <coroutine>
#include <optional>
#include <utility>

#include "sim/simulation.hh"
#include "sim/small_ring.hh"
#include "util/logging.hh"

namespace vhive::sim {

/**
 * One-shot event. Tasks co_await wait(); open() releases all current and
 * future waiters at the current simulated time.
 */
class Gate
{
  public:
    explicit Gate(Simulation &sim) : sim(sim) {}

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    /** True once open() has been called. */
    bool isOpen() const { return open; }

    /** Release all waiters; idempotent. */
    void openGate();

    /** Awaitable: suspend until the gate opens (no-op if already open). */
    auto
    wait()
    {
        struct Awaiter {
            Gate &gate;
            bool await_ready() const noexcept { return gate.open; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                gate.waiters.pushBack(h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    Simulation &sim;
    SmallRing<std::coroutine_handle<>> waiters;
    bool open = false;
};

/**
 * Countdown latch: wait() completes after @p count arrive() calls.
 * Useful to join a dynamic number of spawned tasks (e.g. Fig. 9's
 * concurrent cold starts).
 */
class Latch
{
  public:
    Latch(Simulation &sim, std::int64_t count)
        : gate(sim), remaining(count)
    {
        VHIVE_ASSERT(count >= 0);
        if (remaining == 0)
            gate.openGate();
    }

    /** Signal one completion. */
    void
    arrive()
    {
        VHIVE_ASSERT(remaining > 0);
        if (--remaining == 0)
            gate.openGate();
    }

    /** Awaitable: resume once the count reaches zero. */
    auto wait() { return gate.wait(); }

  private:
    Gate gate;
    std::int64_t remaining;
};

/**
 * Counted resource with FIFO admission. Models disk channels, CPU cores
 * and controller serialization points.
 */
class Semaphore
{
  public:
    Semaphore(Simulation &sim, std::int64_t permits)
        : sim(sim), available(permits)
    {
        VHIVE_ASSERT(permits >= 0);
    }

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    /** Awaitable: obtain one permit, queueing FIFO when exhausted. */
    auto
    acquire()
    {
        struct Awaiter {
            Semaphore &sem;
            bool
            await_ready()
            {
                if (sem.available > 0) {
                    --sem.available;
                    return true;
                }
                return false;
            }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters.pushBack(h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Return one permit, waking the oldest waiter (if any). */
    void release();

    /** Permits currently available. */
    std::int64_t availablePermits() const { return available; }

    /** Tasks currently queued on acquire(). */
    std::int64_t queueLength() const
    {
        return static_cast<std::int64_t>(waiters.size());
    }

  private:
    Simulation &sim;
    SmallRing<std::coroutine_handle<>> waiters;
    std::int64_t available;
};

/**
 * RAII helper: acquire a semaphore for the duration of a scope.
 * Usage: `co_await sem.acquire(); SemaphoreGuard g(sem); ...`
 */
class SemaphoreGuard
{
  public:
    explicit SemaphoreGuard(Semaphore &sem) : sem(&sem) {}
    ~SemaphoreGuard()
    {
        if (sem)
            sem->release();
    }
    SemaphoreGuard(const SemaphoreGuard &) = delete;
    SemaphoreGuard &operator=(const SemaphoreGuard &) = delete;
    SemaphoreGuard(SemaphoreGuard &&o) noexcept : sem(o.sem)
    {
        o.sem = nullptr;
    }

    /** Move assignment releases any permit this guard already holds. */
    SemaphoreGuard &
    operator=(SemaphoreGuard &&o) noexcept
    {
        if (this != &o) {
            if (sem)
                sem->release();
            sem = std::exchange(o.sem, nullptr);
        }
        return *this;
    }

  private:
    Semaphore *sem;
};

/**
 * Unbounded FIFO channel carrying values of type T between tasks.
 * Multiple senders and receivers are allowed; receivers are served in
 * arrival order.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Simulation &sim) : sim(sim) {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /**
     * Enqueue a value. If a receiver is blocked, the value is handed
     * directly to the oldest one (so a later-arriving receiver cannot
     * steal it before the wake-up event fires).
     */
    void
    send(T value)
    {
        if (!receivers.empty()) {
            RecvWaiter w = receivers.popFront();
            w.slot->emplace(std::move(value));
            sim.schedule(w.handle, sim.now());
        } else {
            values.pushBack(std::move(value));
        }
    }

    /** Awaitable: dequeue the next value, blocking while empty. */
    auto
    recv()
    {
        struct Awaiter {
            Channel &ch;
            std::optional<T> slot{};

            bool
            await_ready()
            {
                if (!ch.values.empty()) {
                    slot.emplace(ch.values.popFront());
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ch.receivers.pushBack(RecvWaiter{h, &slot});
            }

            T await_resume() { return std::move(*slot); }
        };
        return Awaiter{*this};
    }

    /** Values waiting to be received. */
    std::int64_t size() const
    {
        return static_cast<std::int64_t>(values.size());
    }

    /** True when no values are queued. */
    bool empty() const { return values.empty(); }

  private:
    struct RecvWaiter {
        std::coroutine_handle<> handle;
        std::optional<T> *slot;
    };

    Simulation &sim;
    SmallRing<T, 8> values;
    SmallRing<RecvWaiter> receivers;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_SYNC_HH
