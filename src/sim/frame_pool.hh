/**
 * @file
 * Slab-backed size-class allocator for coroutine frames.
 *
 * Every task spawn/join in the simulator used to cost a malloc/free
 * pair for the coroutine frame — the second-hottest kernel cost after
 * the event queue under Orchestrator::invoke, PageFetchPipeline and
 * the cluster layer, all of which churn short-lived tasks. The pool
 * rounds frame sizes up to 64-byte classes and serves them from
 * per-class free lists carved out of 64 KiB slabs, so a steady-state
 * spawn/join cycle is two pointer swaps. Frames larger than
 * kMaxPooled (rare; no task in the tree comes close) fall through to
 * ::operator new.
 *
 * The arena is per-thread (simulations are single-threaded; tests may
 * run sims on several threads) and intentionally leaked so frames can
 * be released during any static/thread teardown order. Free lists are
 * LIFO: the most recently freed frame — still cache-hot — is reused
 * first.
 */

#ifndef VHIVE_SIM_FRAME_POOL_HH
#define VHIVE_SIM_FRAME_POOL_HH

#include <cstddef>
#include <cstdint>

namespace vhive::sim {

class FramePool
{
  public:
    /** Allocation granularity and size-class width, bytes. */
    static constexpr std::size_t kGranule = 64;

    /** Largest frame served from slabs; bigger goes to ::new. */
    static constexpr std::size_t kMaxPooled = 4096;

    /** Bytes carved per slab refill of one size class. */
    static constexpr std::size_t kSlabBytes = 64 * 1024;

    static void *allocate(std::size_t n);
    static void deallocate(void *p, std::size_t n) noexcept;

    /** Per-thread arena counters, for tests and diagnostics. */
    struct Stats {
        std::uint64_t poolAllocs = 0;   ///< allocations served from slabs
        std::uint64_t poolFrees = 0;    ///< frames returned to free lists
        std::uint64_t slabCarves = 0;   ///< slab refills performed
        std::uint64_t slabBytes = 0;    ///< total bytes held in slabs
        std::uint64_t carvedBlocks = 0; ///< blocks ever carved fresh
        std::uint64_t oversized = 0;    ///< fell through to ::operator new

        /**
         * Lower bound on allocations recycled from freed frames: each
         * carved block satisfies at most one allocation for free, so
         * anything past the carved inventory must be a reuse.
         */
        std::uint64_t
        reuses() const
        {
            return poolAllocs > carvedBlocks ? poolAllocs - carvedBlocks
                                             : 0;
        }
    };

    /** Counters of the calling thread's arena. */
    static Stats stats();

    /**
     * False when frames bypass the pool (under AddressSanitizer, so
     * stale-handle use-after-free stays detectable); pool-behavior
     * tests skip themselves in that configuration.
     */
    static bool pooling();

    /** Live pool-served frames on this thread (allocs minus frees). */
    static std::int64_t liveFrames();
};

} // namespace vhive::sim

#endif // VHIVE_SIM_FRAME_POOL_HH
