/**
 * @file
 * Conservative parallel DES kernel: shard a simulation into domains,
 * one Simulation (KernelQueue + clock + coroutine scheduler) each, and
 * run them on a thread pool in bounded time windows.
 *
 * Model
 * -----
 * Domains interact ONLY through CrossPort<T> channels, each with a
 * fixed minimum latency L >= 1 ns. The kernel repeatedly:
 *
 *  1. collects every domain's outbox into a global in-flight set,
 *  2. computes the global horizon T = min(next event, next delivery)
 *     and the window end W = T + lookahead (lookahead = min port
 *     latency over the whole kernel),
 *  3. delivers in-flight messages with deliverAt < W, sorted by
 *     (deliverAt, srcDomain, srcSeq),
 *  4. runs every domain with a runnable event before W concurrently —
 *     each executes Simulation::runWindow(W) on its own thread.
 *
 * Because a message sent inside window [T, W) is delivered no earlier
 * than now + L >= T + L = W, no domain can observe a message born in
 * the window it is executing: windows are causally closed, so the
 * domains are embarrassingly parallel inside one.
 *
 * Determinism
 * -----------
 * Every source of order is derived from simulated time and per-domain
 * sequence numbers, never from thread scheduling:
 *  - within a domain, the sequential kernel's (when, seq) contract
 *    holds untouched;
 *  - deliveries are sorted by (deliverAt, srcDomain, srcSeq), where
 *    srcSeq is a per-domain counter, so the destination's event seq
 *    assignment is reproducible;
 *  - window boundaries depend only on event/message timestamps.
 * Hence results are bit-identical across thread counts (threads = 1
 * serves as the reference), which tests/test_parallel.cc asserts.
 *
 * The single-runnable-domain fast path: when only one domain has work
 * before W, the kernel runs it inline past W, up to the earliest
 * undelivered message (whose delivery could wake another domain or
 * re-target this one). This keeps the common "one busy worker" phases
 * from paying a barrier per lookahead quantum; the bound depends only
 * on message state, so it cannot perturb determinism.
 *
 * Threading
 * ---------
 * The pool is engaged per window with a work-stealing index over the
 * runnable-domain list. The index lives in a packed claim word
 * (epoch | next index) and every claim validates the epoch in the
 * same CAS that advances the index, so a worker still holding state
 * cached from an earlier window can never claim — or even read — the
 * current window's work list. Domain state hand-off between a
 * window's worker thread and the coordinator is ordered by the pool
 * mutex, so the kernel is ThreadSanitizer-clean. Each domain's
 * coroutine frames
 * come from the running thread's FramePool arena; frames may be freed
 * on a different thread's arena than they were allocated from, which
 * FramePool supports by design.
 */

#ifndef VHIVE_SIM_PARALLEL_HH
#define VHIVE_SIM_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/simulation.hh"
#include "sim/small_ring.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace vhive::sim {

class ParallelKernel;

/** Sentinel for "no pending time" comparisons. */
inline constexpr Time kNeverTime = std::numeric_limits<Time>::max();

/** A cross-domain message parked until its delivery barrier. */
struct CrossMessage {
    Time deliverAt;
    int srcDomain;
    std::uint64_t srcSeq;
    int dstDomain;

    /** Runs on the coordinator thread at delivery. */
    std::function<void()> deliver;
};

/**
 * One shard of the simulation: a private Simulation plus an outbox of
 * messages awaiting collection. All tasks spawned into sim() must
 * confine their effects to this domain or go through a CrossPort.
 */
class Domain
{
  public:
    Domain(const Domain &) = delete;
    Domain &operator=(const Domain &) = delete;

    Simulation &sim() { return _sim; }
    const Simulation &sim() const { return _sim; }
    int id() const { return _id; }

  private:
    friend class ParallelKernel;
    template <typename T>
    friend class CrossPort;

    explicit Domain(int id) : _id(id) {}

    int _id;
    Simulation _sim;

    /** Messages sent this window, in send order (deliverAt monotone
     * per port but not across ports; collection sorts globally). */
    std::vector<CrossMessage> outbox;

    /** Per-domain send counter; breaks same-instant delivery ties. */
    std::uint64_t msgSeq = 0;

    /**
     * Set by CrossPort::send; the solo fast path interrupts its
     * current stretch on this so a freshly emitted message can
     * tighten the safe bound.
     */
    bool outboxGrew = false;
};

/**
 * The coordinator: owns the domains, the in-flight message set and the
 * worker pool, and advances all domains in lockstep windows until the
 * whole system is quiescent.
 */
class ParallelKernel
{
  public:
    /** Progress counters (for benches and determinism digests). */
    struct Stats {
        /** Synchronization windows executed (incl. solo stretches). */
        std::int64_t windows = 0;

        /** Windows where >= 2 domains ran (pool-eligible). */
        std::int64_t multiDomainWindows = 0;

        /** Windows taken by the single-domain fast path. */
        std::int64_t soloWindows = 0;

        /** Cross-domain messages delivered. */
        std::int64_t messages = 0;
    };

    /**
     * @param domains Number of shards to create.
     * @param threads Worker threads to run windows on (>= 1). Thread
     *        count affects wall-clock only, never results.
     */
    explicit ParallelKernel(int domains, int threads = 1);
    ~ParallelKernel();

    ParallelKernel(const ParallelKernel &) = delete;
    ParallelKernel &operator=(const ParallelKernel &) = delete;

    int domainCount() const { return static_cast<int>(_domains.size()); }
    int threadCount() const { return _threads; }

    Domain &domain(int i) { return *_domains[static_cast<size_t>(i)]; }

    /** Shorthand for domain(i).sim(). */
    Simulation &sim(int i) { return domain(i).sim(); }

    /** Run every domain until no events or messages remain anywhere. */
    void run();

    /** Sum of events processed across all domains. */
    std::int64_t totalEventsProcessed() const;

    const Stats &stats() const { return _stats; }

  private:
    template <typename T>
    friend class CrossPort;

    /** Called by CrossPort construction; shrinks the lookahead. */
    void
    notePortLatency(Duration latency)
    {
        VHIVE_ASSERT(latency >= 1);
        _lookahead = std::min(_lookahead, latency);
    }

    /** Move every domain's outbox into the in-flight heap. */
    void collectOutboxes();

    /** Deliver in-flight messages with deliverAt < @p horizon. */
    void deliverDue(Time horizon);

    /** Earliest in-flight delivery time, or kNeverTime. */
    Time
    nextDeliveryAt() const
    {
        return _inflight.empty() ? kNeverTime : _inflight.front().deliverAt;
    }

    /** Run the single runnable domain inline past the window. */
    void runSolo(int d, Time other_bound);

    /** Dispatch the runnable list to the pool and join the window. */
    void runWindowParallel(Time window_end);

    void workerLoop();

    /**
     * Claim the next _work index for window @p epoch, or nothing when
     * the list is exhausted or the kernel has moved on to a different
     * window. Epoch validation and index advance happen in one CAS,
     * so a claimant holding stale window state can neither consume
     * nor skip an index of the current window.
     */
    std::optional<std::size_t> claimWork(std::uint64_t epoch,
                                         std::size_t work_count);

    static Time
    satAdd(Time t, Duration d)
    {
        return (t > kNeverTime - d) ? kNeverTime : t + d;
    }

    /** Min-heap comparator on (deliverAt, srcDomain, srcSeq). */
    struct LaterDelivery {
        bool
        operator()(const CrossMessage &a, const CrossMessage &b) const
        {
            if (a.deliverAt != b.deliverAt)
                return a.deliverAt > b.deliverAt;
            if (a.srcDomain != b.srcDomain)
                return a.srcDomain > b.srcDomain;
            return a.srcSeq > b.srcSeq;
        }
    };

    std::vector<std::unique_ptr<Domain>> _domains;

    /** Min-heap of undelivered cross-domain messages. */
    std::vector<CrossMessage> _inflight;

    /** Window width: min CrossPort latency (kNeverTime if no ports). */
    Duration _lookahead = kNeverTime;

    Stats _stats;
    int _threads;

    /** @name Worker pool (created lazily on the first run() needing it). */
    /// @{
    std::vector<std::thread> _pool;
    std::mutex _mtx;
    std::condition_variable _cvStart;
    std::condition_variable _cvDone;
    std::vector<int> _work;
    std::size_t _workCount = 0;

    /**
     * Packed claim word: window epoch (mod 2^32) in the upper 32
     * bits, next _work index in the lower 32. Guards against a worker
     * preempted between waking for window N and its first claim: by
     * the time it resumes in window N+1 the stored epoch has changed,
     * so its claims fail instead of reading the rewritten _work with
     * window N's count and window end. (Aliasing a wrapped epoch
     * would require sleeping through 2^32 full windows, each a locked
     * hand-off.)
     */
    std::atomic<std::uint64_t> _claim{0};
    int _pendingTasks = 0;
    Time _windowEnd = 0;
    std::uint64_t _epoch = 0;
    bool _shutdown = false;
    /// @}
};

/**
 * Typed, latency-bearing, FIFO message channel from one domain to
 * another. send() is callable only from src-domain tasks; recv() only
 * from dst-domain tasks. Values become visible to the receiver exactly
 * at send-time + latency, with same-instant deliveries ordered by the
 * sender's send order.
 */
template <typename T>
class CrossPort
{
  public:
    CrossPort(ParallelKernel &kernel, Domain &src, Domain &dst,
              Duration latency)
        : _src(src), _dst(dst), _latency(latency)
    {
        VHIVE_ASSERT(&src != &dst);
        kernel.notePortLatency(latency);
    }

    CrossPort(const CrossPort &) = delete;
    CrossPort &operator=(const CrossPort &) = delete;

    /** Send @p value; it arrives at the destination after latency(). */
    void
    send(T value)
    {
        Time at = _src._sim.now() + _latency;
        _src.outbox.push_back(CrossMessage{
            at, _src.id(), _src.msgSeq++, _dst.id(),
            [this, at, v = std::move(value)]() mutable {
                deliverOne(at, std::move(v));
            }});
        _src.outboxGrew = true;
    }

    /**
     * Awaitable: dequeue the next value, blocking while none has been
     * delivered. A parked receiver resumes exactly at the value's
     * delivery instant.
     */
    auto
    recv()
    {
        struct Awaiter {
            CrossPort &port;
            std::optional<T> slot{};

            bool
            await_ready()
            {
                // Only values whose delivery instant has arrived are
                // visible; an early receiver must park until then.
                if (!port._pending.empty() &&
                    port._pending.front().at <= port._dst._sim.now()) {
                    slot.emplace(port._pending.popFront().value);
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (!port._pending.empty()) {
                    // Claim the front value now (preserving FIFO
                    // against later receivers) and sleep until its
                    // delivery instant.
                    Pending p = port._pending.popFront();
                    slot.emplace(std::move(p.value));
                    port._dst._sim.schedule(h, p.at);
                } else {
                    port._receivers.pushBack(RecvWaiter{h, &slot});
                }
            }

            T await_resume() { return std::move(*slot); }
        };
        return Awaiter{*this};
    }

    Duration latency() const { return _latency; }

  private:
    struct Pending {
        Time at;
        T value;
    };

    struct RecvWaiter {
        std::coroutine_handle<> handle;
        std::optional<T> *slot;
    };

    /** Coordinator-side delivery at the barrier. */
    void
    deliverOne(Time at, T value)
    {
        if (!_receivers.empty()) {
            RecvWaiter w = _receivers.popFront();
            w.slot->emplace(std::move(value));
            _dst._sim.schedule(w.handle, at);
        } else {
            _pending.pushBack(Pending{at, std::move(value)});
        }
    }

    Domain &_src;
    Domain &_dst;
    Duration _latency;

    /** Delivered values not yet consumed (dst side). */
    SmallRing<Pending, 8> _pending;

    /** Parked receivers (dst side). */
    SmallRing<RecvWaiter> _receivers;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_PARALLEL_HH
