/**
 * @file
 * Deterministic fault injection. A FaultPlan is a seeded schedule of
 * fault windows in simulated time, keyed by (FaultKind, target): the
 * data-plane components a plan is installed on (net::ObjectStore,
 * cluster::SnapshotRegistry, core::Orchestrator) consult it at their
 * hook points and degrade accordingly — an unreachable store stalls
 * requests until the outage lifts, a latency storm multiplies transfer
 * times, stragglers slow individual GETs, request errors force paid
 * retries, and a worker crash tears a cold start down mid-flight so
 * the cluster layer retries elsewhere.
 *
 * Determinism: every probabilistic decision draws from a named Rng
 * sub-stream derived from (plan seed, kind, target), and draws happen
 * only while a window is active — so a plan whose windows never open
 * perturbs nothing, and the same (seed, plan, workload) triple always
 * produces bit-identical histories. Components with no plan installed
 * (the default) skip the hooks entirely: fault-free runs are
 * bit-identical to builds without this layer.
 */

#ifndef VHIVE_SIM_FAULT_HH
#define VHIVE_SIM_FAULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hh"
#include "util/units.hh"

namespace vhive::sim {

/** The failure modes the data plane knows how to inject. */
enum class FaultKind
{
    /**
     * Object store unreachable: requests issued inside the window
     * stall until it closes (client retry-with-backoff collapses to
     * waiting out the outage in simulated time), then proceed.
     */
    StoreOutage,

    /**
     * Degraded store service: every affected request's latency is
     * multiplied by the window's magnitude.
     */
    LatencyStorm,

    /**
     * Tail-latency stragglers: each affected request independently
     * slows down by the window's magnitude with the window's
     * probability (the classic "1-in-N GETs is 10x slower" shape the
     * hedged-request mitigation targets).
     */
    Straggler,

    /**
     * Per-request error rate: an affected request fails after a
     * partial transfer and is retried — it completes, but pays the
     * aborted attempt's round trip, service cost and half the
     * streaming time again per error.
     */
    RequestError,

    /**
     * Snapshot staging unavailable: SnapshotRegistry::ensureStaged
     * work entering the window stalls until it closes.
     */
    StagingOutage,

    /**
     * Worker crash: a cold start (or a registry staging pass) rolled
     * inside the window aborts after magnitude milliseconds of lost
     * work; instances are torn down, partially taken chunk references
     * are released, and the caller retries.
     */
    WorkerCrash,
};

/** Human-readable kind name (also the Rng sub-stream prefix). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault window in simulated time. */
struct FaultWindow
{
    /** Window start (inclusive, ns of simulated time). */
    Time start = 0;

    /** Window end (exclusive). */
    Time end = 0;

    /**
     * Kind-specific intensity: latency multiplier (LatencyStorm,
     * Straggler) or milliseconds of lost work (WorkerCrash). Unused
     * by the outage kinds.
     */
    double magnitude = 1.0;

    /**
     * Per-event chance the fault fires on an event inside the window
     * (Bernoulli, drawn from the plan's (kind, target) stream).
     */
    double probability = 1.0;
};

/** A fault schedule for one kind against one target. */
struct FaultSpec
{
    FaultKind kind = FaultKind::StoreOutage;

    /**
     * Which hook point the spec applies to. Hook points identify
     * themselves with registry-style keys ("store/shared",
     * "store/worker/0", "worker/3", "staging/az_0_helloworld"); a
     * spec target of "*" matches everything and a trailing '*'
     * matches by prefix (e.g. every staging key).
     */
    std::string target = "*";

    std::vector<FaultWindow> windows;
};

/** Counters of faults actually delivered, readable by tests/benches. */
struct FaultStats
{
    /** Requests stalled by a StoreOutage window. */
    std::int64_t outageStalls = 0;

    /** Total simulated time requests spent stalled in outages. */
    Duration outageStallTime = 0;

    /** Requests slowed by a LatencyStorm window. */
    std::int64_t stormHits = 0;

    /** Requests turned into stragglers. */
    std::int64_t stragglers = 0;

    /** Request errors injected (each one paid a retry). */
    std::int64_t requestErrors = 0;

    /** Staging passes stalled by a StagingOutage window. */
    std::int64_t stagingStalls = 0;

    /** Cold starts / staging passes aborted by a WorkerCrash. */
    std::int64_t workerCrashes = 0;
};

/**
 * A seeded, registry-keyed fault schedule. Build one, add() specs,
 * install it on the components under test (they keep a raw pointer;
 * the plan must outlive them or be detached first). Thread-safety:
 * none — a plan must stay within one simulation domain. For the
 * parallel kernel, build one plan per domain from the same specs
 * (see cluster::ParallelFleetConfig::storeFaults).
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed = 0) : _seed(seed) {}

    /** Append one fault spec. */
    void add(FaultSpec spec) { _specs.push_back(std::move(spec)); }

    /**
     * The window of (kind, target) active at @p now, or nullptr.
     * Non-consuming: draws nothing, so probes are free.
     */
    const FaultWindow *windowFor(FaultKind kind,
                                 std::string_view target,
                                 Time now) const;

    /**
     * Roll the fault: when a (kind, target) window is active at
     * @p now, draw Bernoulli(window.probability) from the stream
     * named after (kind, target) and return the window when the
     * fault fires. Returns nullptr (and draws nothing) outside all
     * windows, so inactive plans never perturb the Rng state.
     */
    const FaultWindow *roll(FaultKind kind, std::string_view target,
                            Time now);

    FaultStats &stats() { return _stats; }
    const FaultStats &stats() const { return _stats; }

    const std::vector<FaultSpec> &specs() const { return _specs; }
    std::uint64_t seed() const { return _seed; }

    /** True when no spec has any window at or after @p now. */
    bool exhausted(Time now) const;

  private:
    Rng &streamFor(FaultKind kind, std::string_view target);

    std::uint64_t _seed;
    std::vector<FaultSpec> _specs;
    std::map<std::string, Rng> _streams;
    FaultStats _stats;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_FAULT_HH
