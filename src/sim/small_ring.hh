/**
 * @file
 * SmallRing<T, N>: a FIFO queue with inline capacity for N elements,
 * spilling to a heap-allocated power-of-two ring only when it grows
 * past N.
 *
 * The sync primitives (Gate, Semaphore, Channel) queue waiters and
 * values in FIFO order, and the common case across the whole simulator
 * is a queue depth of 0-4: a Semaphore convoy hands off to the front
 * waiter, a Channel ping-pong never buffers more than one value. A
 * std::deque pays a ~500-byte map allocation for that; SmallRing keeps
 * short queues entirely inside the owning primitive so the hot path
 * never touches the allocator.
 */

#ifndef VHIVE_SIM_SMALL_RING_HH
#define VHIVE_SIM_SMALL_RING_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace vhive::sim {

template <typename T, std::size_t InlineN = 4>
class SmallRing
{
    static_assert((InlineN & (InlineN - 1)) == 0,
                  "inline capacity must be a power of two");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned element types are not supported");

  public:
    SmallRing() = default;

    SmallRing(const SmallRing &) = delete;
    SmallRing &operator=(const SmallRing &) = delete;

    ~SmallRing()
    {
        clear();
        if (!isInline())
            ::operator delete(buf);
    }

    bool empty() const { return count == 0; }

    std::size_t size() const { return count; }

    T &front() { return *slot(0); }
    const T &front() const { return *slot(0); }

    void
    pushBack(T v)
    {
        if (count == cap)
            grow();
        ::new (static_cast<void *>(slot(count))) T(std::move(v));
        ++count;
    }

    T
    popFront()
    {
        T *p = slot(0);
        T v = std::move(*p);
        p->~T();
        head = (head + 1) & (cap - 1);
        --count;
        return v;
    }

    void
    clear()
    {
        while (count > 0)
            (void)popFront();
    }

  private:
    bool
    isInline() const
    {
        return buf == reinterpret_cast<const T *>(inlineBuf);
    }

    T *
    slot(std::size_t i)
    {
        return buf + ((head + i) & (cap - 1));
    }

    const T *
    slot(std::size_t i) const
    {
        return buf + ((head + i) & (cap - 1));
    }

    void
    grow()
    {
        std::size_t newCap = cap * 2;
        T *next =
            static_cast<T *>(::operator new(newCap * sizeof(T)));
        for (std::size_t i = 0; i < count; ++i) {
            T *p = slot(i);
            ::new (static_cast<void *>(next + i)) T(std::move(*p));
            p->~T();
        }
        if (!isInline())
            ::operator delete(buf);
        buf = next;
        cap = newCap;
        head = 0;
    }

    alignas(T) unsigned char inlineBuf[InlineN * sizeof(T)];
    T *buf = reinterpret_cast<T *>(inlineBuf);
    std::size_t cap = InlineN;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_SMALL_RING_HH
