/**
 * @file
 * KernelQueue: the pending-event queue for the DES kernel, now four
 * levels deep.
 *
 * The dominant scheduling pattern in this codebase is a wakeup at the
 * *current* timestamp: every Channel::send handoff, Gate::openGate,
 * Semaphore::release and Simulation::spawn resumes a coroutine at
 * sim.now(). A binary heap pays O(log n) sift plus Event copies for
 * each of those. Fleet-scale runs add a second pattern: tens of
 * thousands of *future* events (per-page fault completions, stream
 * waits, arrival timers) pending at once, where a single heap degrades
 * to deep sifts. The queue splits the work by destination time:
 *
 *  - level 1, the "now ring": a FIFO ring buffer holding events
 *    scheduled at the current timestamp. Push and pop are O(1); FIFO
 *    order is exactly ascending-seq order because seq is globally
 *    monotonic.
 *  - level 2, the "near" heap: a binary min-heap on (when, seq)
 *    holding future events in the current wheel granule (16.4 us of
 *    simulated time). Sifts stay shallow because only one granule's
 *    worth of events lives here.
 *  - level 3, the timing wheel: 4096 slots of 2^14 ns each (~67 ms of
 *    horizon). A future event beyond the near granule lands in its
 *    slot with an O(1) append; a 64-word occupancy bitmap finds the
 *    next populated slot with a handful of word scans when the near
 *    heap drains.
 *  - level 4, the "far" heap: a (when, seq) min-heap for events past
 *    the wheel horizon (keep-alive timers, arrival gaps). These are
 *    rare and migrate into the wheel as the clock approaches them.
 *
 * Determinism contract (the golden-trace referee): pop() returns the
 * pending event with the lexicographically smallest (when, seq), so
 * equal-timestamp events drain in exact schedule (FIFO) order no
 * matter which level they landed in. The clock can only advance when
 * the ring is empty, which preserves the ring invariant that all its
 * entries share the current timestamp. Level assignment is pure
 * bookkeeping — the pop order is identical to a single (when, seq)
 * heap, which tests/test_properties.cc checks against a reference heap
 * under random schedules.
 *
 * Key invariant: whenever any future event is pending, the near heap
 * is non-empty and holds the globally smallest (when, seq) future
 * event, so nextWhen() and pop() never scan the wheel. This is
 * maintained eagerly: popNear() refills from the wheel/far heap the
 * moment the near heap drains.
 */

#ifndef VHIVE_SIM_EVENT_QUEUE_HH
#define VHIVE_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/small_ring.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace vhive::sim {

/** One pending coroutine resumption. */
struct Event {
    Time when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
};

class KernelQueue
{
  public:
    bool empty() const { return ring.empty() && future == 0; }

    std::size_t size() const { return ring.size() + future; }

    /**
     * Enqueue a resumption. @p now is the simulation clock: events for
     * the current instant take the O(1) ring, later ones the wheel
     * hierarchy.
     */
    void
    push(Time when, std::uint64_t seq, std::coroutine_handle<> h,
         Time now)
    {
        if (when == now)
            ring.pushBack(Event{when, seq, h});
        else
            pushFuture(Event{when, seq, h});
    }

    /** Timestamp of the next pending event. Requires !empty(). */
    Time
    nextWhen() const
    {
        // Ring entries sit at the current instant, so when both levels
        // are populated the ring's timestamp is never later.
        return ring.empty() ? near.front().when : ring.front().when;
    }

    /** Dequeue the event with the smallest (when, seq). */
    Event
    pop()
    {
        if (ring.empty())
            return popNear();
        if (future > 0) {
            const Event &n = near.front();
            const Event &r = ring.front();
            if (n.when < r.when ||
                (n.when == r.when && n.seq < r.seq))
                return popNear();
        }
        return ring.popFront();
    }

  private:
    /** Min-heap comparator for std::{push,pop}_heap. */
    struct After {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** log2 of the wheel granule: 2^14 ns = 16.384 us per slot. */
    static constexpr int kGranuleBits = 14;

    /** log2 of the slot count: 4096 slots, ~67 ms of horizon. */
    static constexpr int kWheelBits = 12;

    static constexpr std::size_t kSlots = std::size_t{1} << kWheelBits;

    static constexpr Time
    granuleOf(Time t)
    {
        return t >> kGranuleBits;
    }

    /**
     * File a future event in the right level. Slot invariant: every
     * event in slot (g & mask) has granule g with
     * nearG < g <= nearG + kSlots, so a slot never mixes granules.
     *
     * The near-heap case is the hot path (nearly every future event in
     * steady state); the wheel/far filing lives in pushBeyondNear so
     * this body stays small enough to inline into schedule().
     */
    void
    pushFuture(Event ev)
    {
        Time g = granuleOf(ev.when);
        if (future > 0 && g <= nearG) [[likely]] {
            ++future;
            near.push_back(ev);
            std::push_heap(near.begin(), near.end(), After{});
            return;
        }
        pushBeyondNear(ev, g);
    }

    [[gnu::noinline]] void
    pushBeyondNear(Event ev, Time g)
    {
        if (future == 0) {
            // Wheel and far heap are empty; (re)anchor the near level.
            nearG = g;
            near.push_back(ev);
            future = 1;
            return;
        }
        ++future;
        if (g - nearG <= static_cast<Time>(kSlots)) {
            std::size_t idx = static_cast<std::size_t>(g) & (kSlots - 1);
            slots[idx].push_back(ev);
            occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            ++wheelCount;
        } else {
            far.push_back(ev);
            std::push_heap(far.begin(), far.end(), After{});
        }
    }

    Event
    popNear()
    {
        std::pop_heap(near.begin(), near.end(), After{});
        Event top = near.back();
        near.pop_back();
        --future;
        if (near.empty() && future > 0) [[unlikely]]
            refillNear();
        return top;
    }

    /**
     * The near heap drained but later events remain: advance the
     * anchor to the next populated granule and bulk-load it.
     */
    [[gnu::noinline]] void
    refillNear()
    {
        if (wheelCount > 0) {
            Time g = nextOccupiedGranule();
            std::size_t idx = static_cast<std::size_t>(g) & (kSlots - 1);
            // Swap the slot's storage in wholesale; the slot inherits
            // the near vector's capacity for reuse.
            near.swap(slots[idx]);
            occupied[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            wheelCount -= static_cast<std::int64_t>(near.size());
            std::make_heap(near.begin(), near.end(), After{});
            nearG = g;
        } else {
            // Everything pending lives past the wheel horizon.
            VHIVE_ASSERT(!far.empty());
            nearG = granuleOf(far.front().when);
        }
        // Far events now inside the (moved) wheel horizon migrate in;
        // ones landing exactly on the new anchor granule join the near
        // heap directly.
        while (!far.empty() &&
               granuleOf(far.front().when) - nearG <=
                   static_cast<Time>(kSlots)) {
            std::pop_heap(far.begin(), far.end(), After{});
            Event ev = far.back();
            far.pop_back();
            Time g = granuleOf(ev.when);
            if (g == nearG) {
                near.push_back(ev);
                std::push_heap(near.begin(), near.end(), After{});
            } else {
                std::size_t idx =
                    static_cast<std::size_t>(g) & (kSlots - 1);
                slots[idx].push_back(ev);
                occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
                ++wheelCount;
            }
        }
        VHIVE_ASSERT(!near.empty());
    }

    /**
     * Smallest granule > nearG with a populated wheel slot, found by
     * scanning the occupancy bitmap circularly from the anchor.
     * Requires wheelCount > 0.
     */
    Time
    nextOccupiedGranule() const
    {
        std::size_t start =
            (static_cast<std::size_t>(nearG) + 1) & (kSlots - 1);
        std::size_t word = start >> 6;
        std::uint64_t mask = ~std::uint64_t{0} << (start & 63);
        for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
            std::uint64_t bits = occupied[word] & mask;
            if (bits) {
                std::size_t idx =
                    (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
                // Distance from the anchor slot, circularly; the
                // occupied granule is nearG + distance.
                std::size_t dist =
                    (idx - (static_cast<std::size_t>(nearG) &
                            (kSlots - 1))) &
                    (kSlots - 1);
                return nearG + static_cast<Time>(dist ? dist : kSlots);
            }
            word = (word + 1) & (kWords - 1);
            mask = ~std::uint64_t{0};
        }
        panic("timing wheel bitmap empty with wheelCount > 0");
    }

    static constexpr std::size_t kWords = kSlots / 64;

    // Hot fields first: push/pop touch ring, near, nearG and future on
    // every call; keeping them on the leading cache lines matters
    // because the slot array below pushes everything after it ~96 KiB
    // out.
    SmallRing<Event, 64> ring;

    /** Future events in the anchor granule; min-heap on (when, seq). */
    std::vector<Event> near;

    /** Granule the near heap covers (valid while future > 0). */
    Time nearG = 0;

    /** Total future events across near + wheel + far. */
    std::int64_t future = 0;

    /** Events currently filed in wheel slots. */
    std::int64_t wheelCount = 0;

    /** Events past the wheel horizon; min-heap on (when, seq). */
    std::vector<Event> far;

    /** Occupancy bitmap over slots, one bit per slot. */
    std::array<std::uint64_t, kWords> occupied{};

    /** Wheel slots for granules in (nearG, nearG + kSlots]. */
    std::array<std::vector<Event>, kSlots> slots;
};

/** Historical name from the pre-wheel two-level queue. */
using EventQueue = KernelQueue;

} // namespace vhive::sim

#endif // VHIVE_SIM_EVENT_QUEUE_HH
