/**
 * @file
 * Two-level pending-event queue for the DES kernel.
 *
 * The dominant scheduling pattern in this codebase is a wakeup at the
 * *current* timestamp: every Channel::send handoff, Gate::openGate,
 * Semaphore::release and Simulation::spawn resumes a coroutine at
 * sim.now(). A binary heap pays O(log n) sift plus Event copies for
 * each of those; this queue splits the work by destination time:
 *
 *  - level 1, the "now ring": a FIFO ring buffer holding events
 *    scheduled at the current timestamp. Push and pop are O(1); FIFO
 *    order is exactly ascending-seq order because seq is globally
 *    monotonic.
 *  - level 2, the future heap: a binary min-heap on (when, seq) for
 *    events scheduled past the clock, driven by std::push_heap /
 *    std::pop_heap. (A hand-rolled 4-ary heap was benchmarked here
 *    and lost ~10% to libstdc++'s bottom-up sift on the hold-model
 *    workload, so the standard algorithms stay.)
 *
 * Determinism contract (the golden-trace referee): pop() returns the
 * pending event with the lexicographically smallest (when, seq), so
 * equal-timestamp events drain in exact schedule (FIFO) order no
 * matter which level they landed in. The clock can only advance when
 * the ring is empty, which preserves the ring invariant that all its
 * entries share the current timestamp.
 */

#ifndef VHIVE_SIM_EVENT_QUEUE_HH
#define VHIVE_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/small_ring.hh"
#include "util/units.hh"

namespace vhive::sim {

/** One pending coroutine resumption. */
struct Event {
    Time when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
};

class EventQueue
{
  public:
    bool empty() const { return ring.empty() && heap.empty(); }

    std::size_t size() const { return ring.size() + heap.size(); }

    /**
     * Enqueue a resumption. @p now is the simulation clock: events for
     * the current instant take the O(1) ring, later ones the heap.
     */
    void
    push(Time when, std::uint64_t seq, std::coroutine_handle<> h,
         Time now)
    {
        if (when == now)
            ring.pushBack(Event{when, seq, h});
        else
            heapPush(Event{when, seq, h});
    }

    /** Timestamp of the next pending event. Requires !empty(). */
    Time
    nextWhen() const
    {
        // Ring entries sit at the current instant, so when both levels
        // are populated the ring's timestamp is never later.
        return ring.empty() ? heap.front().when : ring.front().when;
    }

    /** Dequeue the event with the smallest (when, seq). */
    Event
    pop()
    {
        if (ring.empty())
            return heapPop();
        if (!heap.empty() && heap.front().when == ring.front().when &&
            heap.front().seq < ring.front().seq)
            return heapPop();
        return ring.popFront();
    }

  private:
    /** Min-heap comparator for std::{push,pop}_heap. */
    struct After {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    heapPush(Event ev)
    {
        heap.push_back(ev);
        std::push_heap(heap.begin(), heap.end(), After{});
    }

    Event
    heapPop()
    {
        std::pop_heap(heap.begin(), heap.end(), After{});
        Event top = heap.back();
        heap.pop_back();
        return top;
    }

    SmallRing<Event, 64> ring;
    std::vector<Event> heap;
};

} // namespace vhive::sim

#endif // VHIVE_SIM_EVENT_QUEUE_HH
