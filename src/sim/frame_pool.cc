#include "sim/frame_pool.hh"

#include <new>
#include <vector>

// Recycling frames through free lists would mask use-after-free on
// stale coroutine handles (the freed block goes straight to the next
// spawn instead of staying poisoned), so under AddressSanitizer every
// frame bypasses the pool and takes the instrumented system heap.
#if defined(__SANITIZE_ADDRESS__)
#define VHIVE_FRAME_POOL_BYPASS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VHIVE_FRAME_POOL_BYPASS 1
#endif
#endif
#ifndef VHIVE_FRAME_POOL_BYPASS
#define VHIVE_FRAME_POOL_BYPASS 0
#endif

namespace vhive::sim {

namespace {

struct FreeBlock {
    FreeBlock *next;
};

constexpr std::size_t kClasses =
    FramePool::kMaxPooled / FramePool::kGranule;

struct Arena {
    FreeBlock *freeLists[kClasses] = {};
    // Slab base pointers: keeps every slab reachable for
    // LeakSanitizer (free-list chains are interior pointers once
    // block 0 is handed out).
    std::vector<void *> slabs;
    FramePool::Stats stats;
};

Arena &
arena()
{
    // Leaked on purpose: a frame allocated here may be released during
    // static or thread-local teardown in any order, so the arena must
    // outlive every frame. One arena per thread; the OS reclaims it at
    // process exit.
    static thread_local Arena *a = new Arena;
    return *a;
}

constexpr std::size_t
classOf(std::size_t n)
{
    return (n + FramePool::kGranule - 1) / FramePool::kGranule - 1;
}

} // namespace

void *
FramePool::allocate(std::size_t n)
{
    if (n == 0)
        n = 1;
    Arena &a = arena();
    if (VHIVE_FRAME_POOL_BYPASS || n > kMaxPooled) {
        ++a.stats.oversized;
        return ::operator new(n);
    }
    std::size_t cls = classOf(n);
    FreeBlock *&head = a.freeLists[cls];
    if (!head) {
        std::size_t block = (cls + 1) * kGranule;
        std::size_t blocks = kSlabBytes / block;
        char *slab = static_cast<char *>(::operator new(blocks * block));
        a.slabs.push_back(slab);
        for (std::size_t i = blocks; i-- > 0;) {
            auto *b = reinterpret_cast<FreeBlock *>(slab + i * block);
            b->next = head;
            head = b;
        }
        ++a.stats.slabCarves;
        a.stats.slabBytes += blocks * block;
        a.stats.carvedBlocks += blocks;
    }
    FreeBlock *b = head;
    head = b->next;
    ++a.stats.poolAllocs;
    return b;
}

void
FramePool::deallocate(void *p, std::size_t n) noexcept
{
    if (!p)
        return;
    if (n == 0)
        n = 1;
    Arena &a = arena();
    if (VHIVE_FRAME_POOL_BYPASS || n > kMaxPooled) {
        ::operator delete(p);
        return;
    }
    std::size_t cls = classOf(n);
    auto *b = static_cast<FreeBlock *>(p);
    b->next = a.freeLists[cls];
    a.freeLists[cls] = b;
    ++a.stats.poolFrees;
}

FramePool::Stats
FramePool::stats()
{
    return arena().stats;
}

bool
FramePool::pooling()
{
    return !VHIVE_FRAME_POOL_BYPASS;
}

std::int64_t
FramePool::liveFrames()
{
    const Stats &s = arena().stats;
    return static_cast<std::int64_t>(s.poolAllocs) -
           static_cast<std::int64_t>(s.poolFrees);
}

} // namespace vhive::sim
