#include "sim/parallel.hh"

namespace vhive::sim {

ParallelKernel::ParallelKernel(int domains, int threads)
    : _threads(threads)
{
    VHIVE_ASSERT(domains >= 1);
    VHIVE_ASSERT(threads >= 1);
    _domains.reserve(static_cast<std::size_t>(domains));
    for (int i = 0; i < domains; ++i)
        _domains.emplace_back(new Domain(i));
}

ParallelKernel::~ParallelKernel()
{
    {
        std::lock_guard<std::mutex> lk(_mtx);
        _shutdown = true;
    }
    _cvStart.notify_all();
    for (auto &t : _pool)
        t.join();
}

std::int64_t
ParallelKernel::totalEventsProcessed() const
{
    std::int64_t total = 0;
    for (const auto &d : _domains)
        total += d->_sim.eventsProcessed();
    return total;
}

void
ParallelKernel::collectOutboxes()
{
    // Domain-index order keeps heap insertion deterministic (the heap
    // order itself is total on (deliverAt, srcDomain, srcSeq), so this
    // is belt and braces).
    for (auto &d : _domains) {
        for (auto &m : d->outbox) {
            _inflight.push_back(std::move(m));
            std::push_heap(_inflight.begin(), _inflight.end(),
                           LaterDelivery{});
        }
        d->outbox.clear();
    }
}

void
ParallelKernel::deliverDue(Time horizon)
{
    while (!_inflight.empty() &&
           _inflight.front().deliverAt < horizon) {
        std::pop_heap(_inflight.begin(), _inflight.end(),
                      LaterDelivery{});
        CrossMessage m = std::move(_inflight.back());
        _inflight.pop_back();
        m.deliver();
        ++_stats.messages;
    }
}

void
ParallelKernel::runSolo(int d, Time other_bound)
{
    Domain &dom = *_domains[static_cast<std::size_t>(d)];
    // Run past the window for as long as nothing can intervene. A
    // pending message m bounds the stretch at:
    //  - m.deliverAt when it targets this domain (it must not see
    //    events past its own arrival), or
    //  - m.deliverAt + lookahead otherwise: its target wakes at
    //    m.deliverAt, and the earliest consequence that can reach
    //    this domain is one port latency later.
    // Another domain's own timer wakes bound us the same way
    // (other_bound = min next event + lookahead, precomputed by the
    // caller). Messages this domain emits mid-stretch interrupt
    // runWindow via outboxGrew so the bound re-tightens around them.
    for (;;) {
        Time bound = other_bound;
        for (const auto &m : _inflight)
            bound = std::min(bound, m.dstDomain == d
                                        ? m.deliverAt
                                        : satAdd(m.deliverAt,
                                                 _lookahead));
        for (const auto &m : dom.outbox)
            bound = std::min(bound, satAdd(m.deliverAt, _lookahead));
        if (!dom._sim.hasPending() ||
            dom._sim.nextPendingWhen() >= bound)
            break;
        dom.outboxGrew = false;
        dom._sim.runWindow(bound, dom.outboxGrew);
    }
    dom.outboxGrew = false;
    ++_stats.soloWindows;
}

std::optional<std::size_t>
ParallelKernel::claimWork(std::uint64_t epoch, std::size_t work_count)
{
    const std::uint64_t tag = epoch & 0xffffffffu;
    std::uint64_t cur = _claim.load(std::memory_order_acquire);
    for (;;) {
        if ((cur >> 32) != tag)
            return std::nullopt; // kernel moved to another window
        std::size_t i = static_cast<std::size_t>(cur & 0xffffffffu);
        if (i >= work_count)
            return std::nullopt; // window's work list exhausted
        if (_claim.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
            return i;
    }
}

void
ParallelKernel::runWindowParallel(Time window_end)
{
    if (_pool.empty() && _threads > 1) {
        _pool.reserve(static_cast<std::size_t>(_threads - 1));
        for (int i = 0; i < _threads - 1; ++i)
            _pool.emplace_back([this] { workerLoop(); });
    }
    std::uint64_t epoch;
    {
        std::lock_guard<std::mutex> lk(_mtx);
        _windowEnd = window_end;
        _workCount = _work.size();
        VHIVE_ASSERT(_workCount <= 0xffffffffu);
        _pendingTasks = static_cast<int>(_work.size());
        epoch = ++_epoch;
        _claim.store((epoch & 0xffffffffu) << 32,
                     std::memory_order_release);
    }
    _cvStart.notify_all();

    // The coordinator is a full participant in the window.
    int done = 0;
    while (auto i = claimWork(epoch, _workCount)) {
        _domains[static_cast<std::size_t>(_work[*i])]->_sim.runWindow(
            window_end);
        ++done;
    }

    std::unique_lock<std::mutex> lk(_mtx);
    _pendingTasks -= done;
    _cvDone.wait(lk, [this] { return _pendingTasks == 0; });
    ++_stats.multiDomainWindows;
}

void
ParallelKernel::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(_mtx);
    for (;;) {
        _cvStart.wait(lk,
                      [&] { return _shutdown || _epoch != seen; });
        if (_shutdown)
            return;
        seen = _epoch;
        Time window_end = _windowEnd;
        std::size_t work_count = _workCount;
        lk.unlock();

        // claimWork validates `seen` against the claim word, so if
        // this thread stalls here until the coordinator has opened a
        // newer window, every claim fails and the loop falls through
        // without touching the rewritten work list.
        int done = 0;
        while (auto i = claimWork(seen, work_count)) {
            _domains[static_cast<std::size_t>(_work[*i])]
                ->_sim.runWindow(window_end);
            ++done;
        }

        lk.lock();
        _pendingTasks -= done;
        if (_pendingTasks == 0)
            _cvDone.notify_one();
    }
}

void
ParallelKernel::run()
{
    for (;;) {
        collectOutboxes();

        // Global horizon: the earliest thing that can happen anywhere.
        Time horizon = nextDeliveryAt();
        for (auto &d : _domains)
            if (d->_sim.hasPending())
                horizon = std::min(horizon, d->_sim.nextPendingWhen());
        if (horizon == kNeverTime)
            return; // globally quiescent

        Time window_end = satAdd(horizon, _lookahead);

        // Messages maturing inside the window arrive before any domain
        // runs; deliveries are (deliverAt, srcDomain, srcSeq)-sorted.
        deliverDue(window_end);

        _work.clear();
        for (auto &d : _domains)
            if (d->_sim.hasPending() &&
                d->_sim.nextPendingWhen() < window_end)
                _work.push_back(d->id());
        ++_stats.windows;

        if (_work.empty()) {
            // Deliveries parked values without waking anyone; the next
            // iteration recomputes the horizon further out. Progress
            // is guaranteed because deliverDue consumed messages.
            continue;
        }
        if (_work.size() == 1) {
            // The earliest instant any *other* domain could wake and
            // emit a message bounds how far the lone runnable domain
            // may race ahead.
            Time others = kNeverTime;
            for (auto &d : _domains)
                if (d->id() != _work[0] && d->_sim.hasPending())
                    others =
                        std::min(others, d->_sim.nextPendingWhen());
            runSolo(_work[0], satAdd(others, _lookahead));
        } else if (_threads == 1) {
            for (int d : _work)
                _domains[static_cast<std::size_t>(d)]->_sim.runWindow(
                    window_end);
            ++_stats.multiDomainWindows;
        } else {
            runWindowParallel(window_end);
        }
    }
}

} // namespace vhive::sim
