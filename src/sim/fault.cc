#include "sim/fault.hh"

namespace vhive::sim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StoreOutage: return "store-outage";
      case FaultKind::LatencyStorm: return "latency-storm";
      case FaultKind::Straggler: return "straggler";
      case FaultKind::RequestError: return "request-error";
      case FaultKind::StagingOutage: return "staging-outage";
      case FaultKind::WorkerCrash: return "worker-crash";
    }
    return "?";
}

namespace {

/** Spec-target match: exact, "*", or trailing-'*' prefix. */
bool
targetMatches(const std::string &spec, std::string_view target)
{
    if (spec == "*")
        return true;
    if (!spec.empty() && spec.back() == '*') {
        std::string_view prefix(spec.data(), spec.size() - 1);
        return target.substr(0, prefix.size()) == prefix;
    }
    return spec == target;
}

} // namespace

const FaultWindow *
FaultPlan::windowFor(FaultKind kind, std::string_view target,
                     Time now) const
{
    for (const FaultSpec &spec : _specs) {
        if (spec.kind != kind || !targetMatches(spec.target, target))
            continue;
        for (const FaultWindow &w : spec.windows) {
            if (now >= w.start && now < w.end)
                return &w;
        }
    }
    return nullptr;
}

Rng &
FaultPlan::streamFor(FaultKind kind, std::string_view target)
{
    std::string key = std::string(faultKindName(kind)) + "/" +
                      std::string(target);
    auto it = _streams.find(key);
    if (it == _streams.end())
        it = _streams.emplace(key, Rng(_seed, key)).first;
    return it->second;
}

const FaultWindow *
FaultPlan::roll(FaultKind kind, std::string_view target, Time now)
{
    const FaultWindow *w = windowFor(kind, target, now);
    if (w == nullptr)
        return nullptr;
    if (w->probability >= 1.0)
        return w;
    return streamFor(kind, target).chance(w->probability) ? w
                                                          : nullptr;
}

bool
FaultPlan::exhausted(Time now) const
{
    for (const FaultSpec &spec : _specs)
        for (const FaultWindow &w : spec.windows)
            if (w.end > now)
                return false;
    return true;
}

} // namespace vhive::sim
