#include "sim/simulation.hh"

#include "sim/task.hh"
#include "util/logging.hh"

namespace vhive::sim {

namespace {
thread_local Simulation *g_current = nullptr;
} // namespace

Simulation *
Simulation::current()
{
    return g_current;
}

Simulation::~Simulation()
{
    _tearingDown = true;
    // Reclaim detached forever-loop tasks that never completed. Their
    // frames cascade-destroy any structured children they own. Unlink
    // each promise before destroying it so a re-entrant unregister
    // (from child teardown) sees a consistent list.
    while (detachedHead) {
        detail::PromiseBase *p = detachedHead;
        detachedHead = p->detachedNext;
        if (detachedHead)
            detachedHead->detachedPrev = nullptr;
        p->detachedPrev = p->detachedNext = nullptr;
        p->self.destroy();
    }
}

void
Simulation::schedule(std::coroutine_handle<> h, Time when)
{
    VHIVE_ASSERT(h);
    if (when < _now)
        panic("scheduling into the past (%lld < %lld)",
              static_cast<long long>(when), static_cast<long long>(_now));
    queue.push(when, nextSeq++, h, _now);
}

void
Simulation::scheduleAfter(std::coroutine_handle<> h, Duration d)
{
    schedule(h, _now + (d > 0 ? d : 0));
}

void
Simulation::spawn(Task<void> task)
{
    VHIVE_ASSERT(task.valid());
    auto handle = task.release();
    auto &p = handle.promise();
    VHIVE_ASSERT(!p.started);
    p.started = true;
    p.detached = true;
    p.sim = this;
    p.self = handle;
    registerDetached(p);
    schedule(handle, _now);
}

void
Simulation::registerDetached(detail::PromiseBase &p)
{
    p.detachedPrev = nullptr;
    p.detachedNext = detachedHead;
    if (detachedHead)
        detachedHead->detachedPrev = &p;
    detachedHead = &p;
}

void
Simulation::unregisterDetached(detail::PromiseBase &p)
{
    if (p.detachedPrev) {
        p.detachedPrev->detachedNext = p.detachedNext;
    } else if (detachedHead == &p) {
        detachedHead = p.detachedNext;
    } else {
        return; // already unlinked (teardown popped it first)
    }
    if (p.detachedNext)
        p.detachedNext->detachedPrev = p.detachedPrev;
    p.detachedPrev = p.detachedNext = nullptr;
}

void
Simulation::step(const Event &ev)
{
    _now = ev.when;
    ++_eventsProcessed;
    Simulation *prev = g_current;
    g_current = this;
    ev.handle.resume();
    g_current = prev;
}

Time
Simulation::run()
{
    while (!queue.empty()) {
        Event ev = queue.pop();
        step(ev);
    }
    return _now;
}

void
Simulation::runUntil(Time until)
{
    VHIVE_ASSERT(until >= _now);
    while (!queue.empty() && queue.nextWhen() <= until) {
        Event ev = queue.pop();
        step(ev);
    }
    _now = until;
}

void
Simulation::runWindow(Time limit)
{
    while (!queue.empty() && queue.nextWhen() < limit) {
        Event ev = queue.pop();
        step(ev);
    }
}

void
Simulation::runWindow(Time limit, const bool &stop)
{
    while (!stop && !queue.empty() && queue.nextWhen() < limit) {
        Event ev = queue.pop();
        step(ev);
    }
}

} // namespace vhive::sim
