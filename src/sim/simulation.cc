#include "sim/simulation.hh"

#include "sim/task.hh"
#include "util/logging.hh"

namespace vhive::sim {

namespace {
thread_local Simulation *g_current = nullptr;
} // namespace

Simulation *
Simulation::current()
{
    return g_current;
}

Simulation::~Simulation()
{
    _tearingDown = true;
    // Reclaim detached forever-loop tasks that never completed. Their
    // frames cascade-destroy any structured children they own. Copy the
    // set first: child destruction may unregister entries.
    std::vector<void *> pending(detached.begin(), detached.end());
    detached.clear();
    for (void *addr : pending)
        std::coroutine_handle<>::from_address(addr).destroy();
}

void
Simulation::schedule(std::coroutine_handle<> h, Time when)
{
    VHIVE_ASSERT(h);
    if (when < _now)
        panic("scheduling into the past (%lld < %lld)",
              static_cast<long long>(when), static_cast<long long>(_now));
    queue.push(Event{when, nextSeq++, h});
}

void
Simulation::scheduleAfter(std::coroutine_handle<> h, Duration d)
{
    schedule(h, _now + (d > 0 ? d : 0));
}

void
Simulation::spawn(Task<void> task)
{
    VHIVE_ASSERT(task.valid());
    auto handle = task.release();
    auto &p = handle.promise();
    VHIVE_ASSERT(!p.started);
    p.started = true;
    p.detached = true;
    p.sim = this;
    registerDetached(handle);
    schedule(handle, _now);
}

void
Simulation::registerDetached(std::coroutine_handle<> h)
{
    detached.insert(h.address());
}

void
Simulation::unregisterDetached(std::coroutine_handle<> h)
{
    detached.erase(h.address());
}

void
Simulation::step(const Event &ev)
{
    _now = ev.when;
    ++_eventsProcessed;
    Simulation *prev = g_current;
    g_current = this;
    ev.handle.resume();
    g_current = prev;
}

Time
Simulation::run()
{
    while (!queue.empty()) {
        Event ev = queue.top();
        queue.pop();
        step(ev);
    }
    return _now;
}

void
Simulation::runUntil(Time until)
{
    VHIVE_ASSERT(until >= _now);
    while (!queue.empty() && queue.top().when <= until) {
        Event ev = queue.top();
        queue.pop();
        step(ev);
    }
    _now = until;
}

} // namespace vhive::sim
