#include "host/cpu_pool.hh"

// CpuPool is header-only today; this TU anchors the library target and
// keeps a stable home for future out-of-line additions.
