#include "host/cpu_pool.hh"

namespace vhive::host {

sim::Task<void>
CpuPool::exec(Duration cpu_time)
{
    co_await sem.acquire();
    sim::SemaphoreGuard guard(sem);
    co_await sim.delay(cpu_time);
}

} // namespace vhive::host
