/**
 * @file
 * Host CPU model: a pool of cores shared by simulated computations.
 * The evaluation platform is a 2x24-core Xeon (48 logical cores), with
 * 16 hardware threads made available to orchestrator goroutines
 * (Sec. 6.2), so contention matters for the Fig. 9 concurrency sweep.
 */

#ifndef VHIVE_HOST_CPU_POOL_HH
#define VHIVE_HOST_CPU_POOL_HH

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace vhive::host {

/**
 * A bank of CPU cores. exec() occupies one core for a given amount of
 * CPU time; callers queue FIFO when all cores are busy.
 */
class CpuPool
{
  public:
    CpuPool(sim::Simulation &sim, int cores)
        : sim(sim), _cores(cores), sem(sim, cores)
    {
    }

    CpuPool(const CpuPool &) = delete;
    CpuPool &operator=(const CpuPool &) = delete;

    /** Run @p cpu_time of work on one core (queueing if none free). */
    sim::Task<void> exec(Duration cpu_time);

    /** Total cores in the pool. */
    int cores() const { return _cores; }

    /** Cores currently idle. */
    std::int64_t idleCores() const { return sem.availablePermits(); }

    /** Tasks waiting for a core. */
    std::int64_t runQueueLength() const { return sem.queueLength(); }

  private:
    sim::Simulation &sim;
    int _cores;
    sim::Semaphore sem;
};

/** Platform-wide host configuration (the paper's evaluation server). */
struct HostConfig
{
    /** Logical cores on the worker host. */
    int hostCores = 48;

    /** Hardware threads available to orchestrator worker goroutines. */
    int orchestratorThreads = 16;
};

} // namespace vhive::host

#endif // VHIVE_HOST_CPU_POOL_HH
