/**
 * @file
 * Minimal aligned-column ASCII table printer used by the benchmark
 * harnesses to emit the same rows/series the paper's figures report.
 */

#ifndef VHIVE_UTIL_TABLE_HH
#define VHIVE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace vhive {

/**
 * Collects rows of string cells and renders them with aligned columns.
 * Numeric helpers format with a fixed precision so tables are diffable.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &s);

    /** Append a formatted floating-point cell. */
    Table &cell(double v, int precision = 1);

    /** Append an integer cell. */
    Table &cell(std::int64_t v);

    /** Render the table to a string (header, rule, rows). */
    std::string str() const;

    /** Render as CSV (header row + data rows), for artifact export. */
    std::string csv() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

/** Format helper: fixed precision double -> string. */
std::string fmtDouble(double v, int precision);

} // namespace vhive

#endif // VHIVE_UTIL_TABLE_HH
