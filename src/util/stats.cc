#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace vhive {

void
Samples::add(double v)
{
    data.push_back(v);
    sorted = false;
}

double
Samples::sum() const
{
    double s = 0.0;
    for (double v : data)
        s += v;
    return s;
}

double
Samples::mean() const
{
    if (data.empty())
        return 0.0;
    return sum() / static_cast<double>(data.size());
}

double
Samples::geomean() const
{
    if (data.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : data) {
        VHIVE_ASSERT(v > 0.0);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(data.size()));
}

double
Samples::min() const
{
    if (data.empty())
        return 0.0;
    return *std::min_element(data.begin(), data.end());
}

double
Samples::max() const
{
    if (data.empty())
        return 0.0;
    return *std::max_element(data.begin(), data.end());
}

double
Samples::stddev() const
{
    if (data.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double v : data)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(data.size() - 1));
}

void
Samples::ensureSorted() const
{
    if (!sorted) {
        auto &mut = const_cast<std::vector<double> &>(data);
        std::sort(mut.begin(), mut.end());
        sorted = true;
    }
}

double
Samples::percentile(double p) const
{
    if (data.empty())
        return 0.0;
    VHIVE_ASSERT(p >= 0.0 && p <= 100.0);
    ensureSorted();
    if (data.size() == 1)
        return data[0];
    double rank = (p / 100.0) * static_cast<double>(data.size() - 1);
    auto lo_idx = static_cast<size_t>(rank);
    size_t hi_idx = std::min(lo_idx + 1, data.size() - 1);
    double frac = rank - static_cast<double>(lo_idx);
    return data[lo_idx] * (1.0 - frac) + data[hi_idx] * frac;
}

void
RunningStats::add(double v)
{
    ++n;
    if (n == 1) {
        m = v;
        s = 0.0;
        lo = hi = v;
    } else {
        double m_prev = m;
        m += (v - m) / static_cast<double>(n);
        s += (v - m_prev) * (v - m);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return s / static_cast<double>(n - 1);
}

} // namespace vhive
