#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vhive {

namespace {

void
defaultSink(LogLevel level, const std::string &msg)
{
    const char *tag = "";
    switch (level) {
      case LogLevel::Inform: tag = "info: "; break;
      case LogLevel::Warn:   tag = "warn: "; break;
      case LogLevel::Panic:  tag = "panic: "; break;
      case LogLevel::Fatal:  tag = "fatal: "; break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

LogSink g_sink = &defaultSink;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = g_sink;
    g_sink = sink ? sink : &defaultSink;
    return prev;
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    g_sink(LogLevel::Inform, vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    g_sink(LogLevel::Warn, vformat(fmt, ap));
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    g_sink(LogLevel::Panic, vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    g_sink(LogLevel::Fatal, vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

} // namespace vhive
