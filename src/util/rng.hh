/**
 * @file
 * Deterministic random number generation. Every stochastic component in
 * the simulator owns a named stream derived from a root seed, so entire
 * experiments are bit-reproducible and independent of evaluation order.
 */

#ifndef VHIVE_UTIL_RNG_HH
#define VHIVE_UTIL_RNG_HH

#include <cstdint>
#include <string_view>

namespace vhive {

/**
 * SplitMix64-based generator. Small, fast, and statistically adequate for
 * workload synthesis (we are not doing cryptography).
 */
class Rng
{
  public:
    /** Construct from a raw 64-bit seed. */
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b9ULL) {}

    /**
     * Construct a named sub-stream: hashes @p name into @p seed so that
     * different components with the same root seed draw independent
     * sequences.
     */
    Rng(std::uint64_t seed, std::string_view name);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /**
     * Geometric number of successes with mean @p mean (>= 1). Used for
     * contiguous-run lengths of guest page accesses (Fig. 3).
     */
    std::int64_t geometric(double mean);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Fisher-Yates shuffle of indices [0, n); calls @p swap_fn(i, j) for
     * each swap so callers can shuffle parallel arrays.
     */
    template <typename SwapFn>
    void
    shuffle(std::int64_t n, SwapFn &&swap_fn)
    {
        for (std::int64_t i = n - 1; i > 0; --i) {
            std::int64_t j = uniformInt(0, i);
            swap_fn(i, j);
        }
    }

  private:
    std::uint64_t state;
};

/** Stable 64-bit FNV-1a hash of a string, used to derive stream seeds. */
std::uint64_t hashName(std::string_view name);

} // namespace vhive

#endif // VHIVE_UTIL_RNG_HH
