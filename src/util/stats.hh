/**
 * @file
 * Lightweight statistics containers used for experiment reporting:
 * counters, running summaries, and sample-exact percentile tracking.
 */

#ifndef VHIVE_UTIL_STATS_HH
#define VHIVE_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vhive {

/**
 * Collects scalar samples and answers summary queries. Keeps every sample
 * (experiments here produce at most a few million), so percentiles are
 * exact rather than approximated.
 */
class Samples
{
  public:
    /** Record one sample. */
    void add(double v);

    /** Number of recorded samples. */
    std::int64_t count() const { return static_cast<std::int64_t>(data.size()); }

    /** Sum of all samples; 0 when empty. */
    double sum() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Geometric mean; requires all samples > 0; 0 when empty. */
    double geomean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Sample standard deviation; 0 for fewer than two samples. */
    double stddev() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Remove all samples. */
    void clear() { data.clear(); sorted = true; }

    /** Raw access for custom post-processing. */
    const std::vector<double> &values() const { return data; }

  private:
    void ensureSorted() const;

    std::vector<double> data;
    mutable bool sorted = true;
};

/**
 * A named monotonically increasing counter.
 */
class Counter
{
  public:
    /** Increase the counter by @p delta (default 1). */
    void inc(std::int64_t delta = 1) { _value += delta; }

    /** Current value. */
    std::int64_t value() const { return _value; }

    /** Reset to zero. */
    void reset() { _value = 0; }

  private:
    std::int64_t _value = 0;
};

/**
 * Welford-style running mean/variance without sample retention, for hot
 * paths where storing every sample would be wasteful.
 */
class RunningStats
{
  public:
    /** Record one sample. */
    void add(double v);

    std::int64_t count() const { return n; }
    double mean() const { return n ? m : 0.0; }
    double variance() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

  private:
    std::int64_t n = 0;
    double m = 0.0;
    double s = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace vhive

#endif // VHIVE_UTIL_STATS_HH
