/**
 * @file
 * Status/error reporting helpers following the gem5 idiom: panic() for
 * internal invariant violations (a simulator bug), fatal() for user errors
 * (bad configuration), warn()/inform() for non-fatal diagnostics.
 */

#ifndef VHIVE_UTIL_LOGGING_HH
#define VHIVE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vhive {

/**
 * Severity used by the message sink; mostly useful for tests that want to
 * capture or silence output.
 */
enum class LogLevel { Inform, Warn, Panic, Fatal };

/** Signature of a log sink. Receives fully formatted single-line text. */
using LogSink = void (*)(LogLevel level, const std::string &msg);

/**
 * Replace the process-wide log sink.
 *
 * @param sink New sink, or nullptr to restore the default (stderr).
 * @return The previous sink.
 */
LogSink setLogSink(LogSink sink);

/** Emit an informational message (printf-style formatting). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a warning; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort. Use for conditions
 * that cannot be the user's fault.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-facing error and exit(1). Use for bad
 * configuration or invalid arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Like assert(), but active in all build types and routed to panic(). */
#define VHIVE_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::vhive::panic("assertion failed at %s:%d: %s", __FILE__,      \
                           __LINE__, #cond);                               \
        }                                                                  \
    } while (0)

} // namespace vhive

#endif // VHIVE_UTIL_LOGGING_HH
