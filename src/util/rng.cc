#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace vhive {

std::uint64_t
hashName(std::string_view name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

Rng::Rng(std::uint64_t seed, std::string_view name)
    : Rng(seed ^ hashName(name))
{
}

std::uint64_t
Rng::next()
{
    // SplitMix64 (Steele et al.); passes BigCrush when used this way.
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    VHIVE_ASSERT(lo <= hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

std::int64_t
Rng::geometric(double mean)
{
    VHIVE_ASSERT(mean >= 1.0);
    if (mean <= 1.0)
        return 1;
    // Support {1, 2, ...} with success probability p = 1/mean.
    double p = 1.0 / mean;
    double u = uniform();
    if (u <= 0.0)
        u = 1e-18;
    double v = std::log(u) / std::log(1.0 - p);
    std::int64_t k = 1 + static_cast<std::int64_t>(v);
    return k < 1 ? 1 : k;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 1e-18;
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace vhive
