#include "util/table.hh"

#include <cstdio>

#include "util/logging.hh"

namespace vhive {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

Table::Table(std::vector<std::string> headers) : cols(std::move(headers))
{
    VHIVE_ASSERT(!cols.empty());
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    VHIVE_ASSERT(!rows.empty());
    VHIVE_ASSERT(rows.back().size() < cols.size());
    rows.back().push_back(s);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    return cell(fmtDouble(v, precision));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(cols.size());
    for (size_t c = 0; c < cols.size(); ++c)
        widths[c] = cols[c].size();
    for (const auto &r : rows)
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells,
                        std::string &out) {
        for (size_t c = 0; c < cols.size(); ++c) {
            std::string cell_text = c < cells.size() ? cells[c] : "";
            out += cell_text;
            if (c + 1 < cols.size())
                out += std::string(widths[c] - cell_text.size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(cols, out);
    size_t total = 0;
    for (size_t c = 0; c < cols.size(); ++c)
        total += widths[c] + (c + 1 < cols.size() ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto &r : rows)
        emit_row(r, out);
    return out;
}

std::string
Table::csv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::string out;
    for (size_t c = 0; c < cols.size(); ++c) {
        out += escape(cols[c]);
        out += c + 1 < cols.size() ? "," : "\n";
    }
    for (const auto &r : rows) {
        for (size_t c = 0; c < cols.size(); ++c) {
            if (c < r.size())
                out += escape(r[c]);
            out += c + 1 < cols.size() ? "," : "\n";
        }
    }
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace vhive
