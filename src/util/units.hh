/**
 * @file
 * Core unit types shared by every module: simulated time (nanoseconds) and
 * byte/page quantities, plus readable literal helpers.
 */

#ifndef VHIVE_UTIL_UNITS_HH
#define VHIVE_UTIL_UNITS_HH

#include <cstdint>

namespace vhive {

/** Simulated time in nanoseconds since simulation start. */
using Time = std::int64_t;

/** Time span in nanoseconds. */
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/** Construct a duration from microseconds. */
constexpr Duration usec(double us)
{
    return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

/** Construct a duration from milliseconds. */
constexpr Duration msec(double ms)
{
    return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/** Construct a duration from seconds. */
constexpr Duration sec(double s)
{
    return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/** Convert a duration to (fractional) milliseconds, for reporting. */
constexpr double toMs(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/** Convert a duration to (fractional) microseconds, for reporting. */
constexpr double toUs(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/** Byte counts. Signed to catch accidental underflow in arithmetic. */
using Bytes = std::int64_t;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** Guest and host page size. The whole stack assumes 4 KiB pages. */
constexpr Bytes kPageSize = 4 * kKiB;

/** Number of 4 KiB pages covering @p bytes (rounding up). */
constexpr std::int64_t pagesForBytes(Bytes bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

/** Convert a page count to bytes. */
constexpr Bytes bytesForPages(std::int64_t pages)
{
    return pages * kPageSize;
}

/** Convert bytes to (fractional) MiB, for reporting. */
constexpr double toMiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kMiB);
}

/**
 * Throughput helper: MB/s (decimal, as disk vendors and the paper use)
 * achieved when moving @p bytes in @p d nanoseconds.
 */
constexpr double mbps(Bytes bytes, Duration d)
{
    if (d <= 0)
        return 0.0;
    return (static_cast<double>(bytes) / 1e6) /
           (static_cast<double>(d) / static_cast<double>(kSecond));
}

} // namespace vhive

#endif // VHIVE_UTIL_UNITS_HH
