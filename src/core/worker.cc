#include "core/worker.hh"

namespace vhive::core {

namespace {

/** Seek-heavy devices get kernel fault-path readahead (Sec. 6.3). */
storage::IoPathParams
ioForDisk(const WorkerConfig &cfg)
{
    storage::IoPathParams io = cfg.io;
    if (cfg.disk.seekLatency > 0 && io.faultReadahead == 0)
        io.faultReadahead = 48 * kKiB;
    return io;
}

} // namespace

Worker::Worker(sim::Simulation &sim, WorkerConfig config,
               net::ArtifactStore *shared_store)
    : sim(sim), cfg(config), _disk(sim, cfg.disk),
      fs(sim, _disk, ioForDisk(cfg)),
      _hostCpus(sim, cfg.hostCores),
      _orchCpus(sim, cfg.orchestratorThreads), s3(sim, cfg.objectStore),
      artifacts(shared_store != nullptr ? shared_store : &s3),
      gen(cfg.seed),
      orch(sim, fs, _hostCpus, _orchCpus, s3, gen, cfg.vmm,
           cfg.reap, cfg.uffd, artifacts)
{
    if (cfg.instanceMemoryCapacity > 0)
        orch.setMemoryCapacity(cfg.instanceMemoryCapacity);
}

} // namespace vhive::core
