#include "core/monitor.hh"

#include "util/logging.hh"

namespace vhive::core {

Monitor::Monitor(sim::Simulation &sim, storage::FileStore &fs,
                 mem::UserFaultFd &uffd, mem::GuestMemory &guest,
                 storage::FileId memory_file, Mode mode)
    : sim(sim), fs(fs), uffd(uffd), guest(guest),
      memoryFile(memory_file), _mode(mode), done(sim)
{
    VHIVE_ASSERT(memory_file != storage::kInvalidFile);
}

sim::Task<void>
Monitor::run()
{
    while (true) {
        mem::FaultEvent ev = co_await uffd.nextFault();
        if (mem::UserFaultFd::isShutdown(ev))
            break;

        // Resolve the content from the guest-memory file with a
        // buffered pread covering the faulting run (the monitor may
        // install any number of pages per fault, Sec. 5.2).
        co_await fs.readBuffered(memoryFile, bytesForPages(ev.page),
                                 bytesForPages(ev.runPages));
        co_await uffd.copyCost(ev.runPages, ev.runPages);
        guest.installRange(ev.page, ev.runPages);

        if (_mode == Mode::Record) {
            for (std::int64_t p = ev.page; p < ev.page + ev.runPages;
                 ++p) {
                record.pages.push_back(p);
            }
        }
        ++_servedFaults;
        _servedPages += ev.runPages;

        ev.done->openGate();
    }
    done.openGate();
}

} // namespace vhive::core
