/**
 * @file
 * The SnapshotLoader layer: one strategy object per ColdStartMode,
 * dispatched by the Orchestrator through a small registry. This is the
 * system's main extension point — the Fig. 7 design walk
 * (BootFromScratch -> VanillaSnapshot -> ParallelPageFaults ->
 * WsFileCached -> Reap) plus the Sec. 7.1 remote-storage scenario are
 * each a ~100-line loader composing the PageFetchPipeline, and further
 * restore strategies (background warming, tiered sources, batching
 * policies) drop in the same way.
 */

#ifndef VHIVE_CORE_LOADER_LOADER_HH
#define VHIVE_CORE_LOADER_LOADER_HH

#include <map>
#include <memory>
#include <vector>

#include "core/function_state.hh"
#include "core/options.hh"
#include "func/trace_gen.hh"
#include "host/cpu_pool.hh"
#include "mem/chunk_source.hh"
#include "mem/tier_budget.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "storage/file_store.hh"
#include "vmm/snapshot.hh"

namespace vhive::core::loader {

/**
 * Everything a loader may touch while performing one cold start:
 * simulation handles, the worker's I/O and compute resources, the
 * function's state, and the instance slot being brought up. Holds
 * references only; cheap to copy into a loader's coroutine frame.
 */
struct LoadContext
{
    sim::Simulation &sim;
    storage::FileStore &fs;
    host::CpuPool &hostCpus;
    net::ObjectStore &objectStore;
    const func::TraceGenerator &gen;
    const vmm::VmmParams &vmmParams;
    ReapOptions &reap;
    const mem::UffdParams &uffdParams;
    FunctionState &st;
    Instance &inst;
    const func::InvocationTrace &trace;
    const InvokeOptions &opts;

    /**
     * Worker-resident chunk cache, shared across functions: chunks any
     * cold start pulled remotely are served locally afterwards — also
     * for *other* functions whose manifests share them (DedupReap).
     */
    storage::ChunkStore &localChunks;

    /**
     * Store-side staged-chunk index of the object store this worker
     * stages into: records which content hashes were already uploaded
     * so duplicate chunks are put() exactly once.
     */
    storage::ChunkStore &stagedChunks;

    /**
     * The store snapshot/WS artifacts stage into and cold starts
     * fetch from (fleet-shared under cross-worker sharing). Input
     * payloads keep flowing through objectStore — the two roles are
     * distinct services in a real deployment.
     */
    net::ArtifactStore &artifactStore;

    /**
     * Worker-wide chunk single-flight table: concurrent cold starts
     * needing the same in-flight chunk wait for the one transfer
     * instead of duplicating it or seeing it as already resident.
     */
    mem::ChunkFlights &chunkFlights;

    /**
     * Worker-wide page-cache tier budget (null = untracked). Tiered
     * chains register their WS file here and report admissions and
     * serves so the budget can account — and, when non-zero, shed —
     * the warm-tier bytes tiered admission created.
     */
    mem::TierCacheBudget *tierBudget = nullptr;
};

/**
 * One cold-start strategy. A loader receives a LoadContext, brings the
 * instance to Running, serves the invocation, and returns the latency
 * segments it owns. Loaders are stateless across invocations; all
 * persistent state lives in the FunctionState.
 */
class SnapshotLoader
{
  public:
    virtual ~SnapshotLoader() = default;

    /** Mode name as reported in benches and diagnostics. */
    virtual const char *name() const = 0;

    /** Whether the mode requires a prepared snapshot. */
    virtual bool needsSnapshot() const { return true; }

    /**
     * Whether the mode requires a recorded working set. When true and
     * none exists, the invocation becomes the record phase
     * (Sec. 5.2.1) via the registry's record loader.
     */
    virtual bool needsRecord() const { return false; }

    /**
     * Expected residency of the new instance, used by the worker's
     * memory-capacity admission (Sec. 4.3).
     */
    virtual Bytes
    expectedResidency(const FunctionState &st) const
    {
        return st.profile.workingSet;
    }

    /** Perform the cold start and serve @p ctx.trace. */
    virtual sim::Task<LatencyBreakdown> load(LoadContext ctx) = 0;
};

/**
 * Maps each ColdStartMode to its loader. Built-ins are installed at
 * construction; registerLoader() swaps any of them for a custom
 * strategy (the extension path — no orchestrator changes needed).
 */
class LoaderRegistry
{
  public:
    LoaderRegistry();

    LoaderRegistry(const LoaderRegistry &) = delete;
    LoaderRegistry &operator=(const LoaderRegistry &) = delete;

    /** Loader for @p mode; fatals when none is registered. */
    SnapshotLoader &loaderFor(ColdStartMode mode) const;

    /** Loader for @p mode, or nullptr when none is registered. */
    SnapshotLoader *find(ColdStartMode mode) const;

    /** Install (or replace) the loader behind @p mode. */
    void registerLoader(ColdStartMode mode,
                        std::unique_ptr<SnapshotLoader> loader);

    /**
     * The shared record-phase loader, run when a needsRecord() mode
     * has no working-set record yet.
     */
    SnapshotLoader &recordLoader() const { return *_recordLoader; }

    /** Replace the record-phase loader. */
    void setRecordLoader(std::unique_ptr<SnapshotLoader> loader);

    /** All registered modes, in enum order. */
    std::vector<ColdStartMode> modes() const;

  private:
    std::map<ColdStartMode, std::unique_ptr<SnapshotLoader>> loaders;
    std::unique_ptr<SnapshotLoader> _recordLoader;
};

} // namespace vhive::core::loader

#endif // VHIVE_CORE_LOADER_LOADER_HH
