#include "core/loader/builtin_loaders.hh"

#include <algorithm>

#include "mem/chunk_source.hh"
#include "mem/page_fetch.hh"
#include "mem/tiered_source.hh"
#include "util/logging.hh"

namespace vhive::core::loader {

namespace {

/** Copy the serve-phase results into the breakdown. */
void
noteServe(LatencyBreakdown &bd, const vmm::InvocationBreakdown &res)
{
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
}

/** Client-side chunk costs from the ReapOptions knobs. */
mem::ChunkSourceParams
chunkParams(const ReapOptions &reap)
{
    mem::ChunkSourceParams p;
    p.decompressBandwidth = reap.chunkDecompressBandwidth;
    p.perChunkDecompress = reap.chunkDecompressOverhead;
    p.batchChunks = reap.chunkBatch;
    return p;
}

} // namespace

// --------------------------------------------------------------- Boot

sim::Task<LatencyBreakdown>
BootLoader::load(LoadContext ctx)
{
    FunctionState &st = ctx.st;
    Instance &inst = ctx.inst;
    st.ensureRootfs(ctx.fs);
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = ctx.sim.now();

    co_await inst.vm->bootFromScratch(ctx.gen.boot(st.profile),
                                      st.rootfs,
                                      st.profile.rootfsBootRead);
    bd.loadVmm = ctx.sim.now() - t0; // boot replaces VMM-state load

    auto res = co_await inst.vm->serveInvocation(ctx.trace,
                                                 &ctx.objectStore);
    noteServe(bd, res);
    bd.total = ctx.sim.now() - t0;
    inst.busy = false;
    ++st.stats.bootInvocations;
    co_return bd;
}

// ------------------------------------------------------------ Vanilla

sim::Task<LatencyBreakdown>
VanillaSnapshotLoader::load(LoadContext ctx)
{
    FunctionState &st = ctx.st;
    Instance &inst = ctx.inst;
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = ctx.sim.now();

    co_await inst.vm->loadVmmState(st.snapshot);
    co_await inst.vm->resumeLazy(st.snapshot);
    bd.loadVmm = ctx.sim.now() - t0;

    auto res = co_await inst.vm->serveInvocation(ctx.trace,
                                                 &ctx.objectStore);
    noteServe(bd, res);
    bd.total = ctx.sim.now() - t0;
    inst.busy = false;
    co_return bd;
}

// ------------------------------------------------------------- Record

sim::Task<LatencyBreakdown>
RecordLoader::load(LoadContext ctx)
{
    FunctionState &st = ctx.st;
    Instance &inst = ctx.inst;
    inst.busy = true;
    LatencyBreakdown bd;
    bd.recordPhase = true;
    Time t0 = ctx.sim.now();

    co_await inst.vm->loadVmmState(st.snapshot);

    inst.uffd =
        std::make_unique<mem::UserFaultFd>(ctx.sim, ctx.uffdParams);
    inst.vm->registerUffd(st.snapshot, inst.uffd.get());
    inst.monitor = std::make_unique<Monitor>(
        ctx.sim, ctx.fs, *inst.uffd, inst.vm->guestMemory(),
        st.snapshot.guestMemory, Monitor::Mode::Record);
    ctx.sim.spawn(inst.monitor->run());

    co_await inst.vm->resumeVcpus();
    bd.loadVmm = ctx.sim.now() - t0;

    auto res = co_await inst.vm->serveInvocation(ctx.trace,
                                                 &ctx.objectStore);
    noteServe(bd, res);
    bd.total = ctx.sim.now() - t0;

    // Post-response: persist the trace and WS files (Sec. 5.2.1).
    st.record = inst.monitor->recorded();
    st.recorded = true;
    st.remoteStaged = false; // new record invalidates staged objects
    st.tierAdmitCounts.clear(); // old content's admission history
    if (st.manifests) {
        // Re-record without a prior invalidateRecord (adaptive
        // re-record): keep the outgoing manifests as the previous
        // version so staging can diff against them — their
        // staged-chunk references stay held until the delta lands. A
        // version displaced before ever re-staging is unreachable;
        // its references go now.
        if (st.prevManifests) {
            ctx.stagedChunks.releaseManifest(
                st.prevManifests->vmmState);
            ctx.stagedChunks.releaseManifest(st.prevManifests->ws);
        }
        st.prevManifests = std::move(st.manifests);
        st.manifests.reset();
    }
    ++st.recordVersion; // v1 on first record, v2+ on re-records
    ++st.stats.recordPhases;

    auto [ws_bytes, trace_bytes] = st.ensureArtifactFiles(ctx.fs);
    // The monitor already holds the page contents; write both files
    // (buffered, with asynchronous writeback).
    co_await ctx.fs.writeBuffered(st.wsFile, 0, ws_bytes);
    co_await ctx.fs.writeBuffered(st.traceFile, 0, trace_bytes);
    st.artifactsLocal = true;

    inst.busy = false;
    co_return bd;
}

// ----------------------------------------------------- Prefetch family

sim::Task<void>
PrefetchLoader::ensureStaged(LoadContext ctx)
{
    (void)ctx;
    co_return;
}

sim::Task<void>
PrefetchLoader::preRestore(LoadContext ctx)
{
    (void)ctx;
    co_return;
}

sim::Task<void>
PrefetchLoader::fetchWs(LoadContext &ctx,
                        mem::PageFetchPipeline &pipeline, Bytes len,
                        Duration *out)
{
    (void)ctx;
    co_await pipeline.fetchContiguousTimed(0, len, out);
}

sim::Task<void>
PrefetchLoader::installWorkingSet(LoadContext &ctx)
{
    FunctionState &st = ctx.st;
    Instance &inst = ctx.inst;
    // One UFFDIO_COPY per batch, then mark contiguous runs present.
    co_await inst.uffd->copyCost(st.record.pageCount(),
                                 ctx.reap.installBatchPages);
    if (ctx.reap.rerandomizeLayout) {
        // Sec. 7.3: rewrite guest page tables so each clone gets a
        // fresh layout; proportional one-time install cost.
        co_await ctx.sim.delay(ctx.reap.rerandomizePerPage *
                               st.record.pageCount());
        ++st.stats.layoutRerandomizations;
    }
    auto sorted = st.record.sortedPages();
    size_t i = 0;
    while (i < sorted.size()) {
        size_t j = i + 1;
        while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1)
            ++j;
        inst.vm->guestMemory().installRange(
            sorted[i], static_cast<std::int64_t>(j - i));
        i = j;
    }
}

sim::Task<LatencyBreakdown>
PrefetchLoader::load(LoadContext ctx)
{
    FunctionState &st = ctx.st;
    Instance &inst = ctx.inst;
    inst.busy = true;
    co_await ensureStaged(ctx);

    LatencyBreakdown bd;
    Time t0 = ctx.sim.now();

    auto source = makeSource(ctx);
    mem::PageFetchPipeline pipeline(ctx.sim, *source);
    pipeline.setHedgeDelay(ctx.reap.hedgeAfter);
    Bytes ws_bytes = st.record.wsFileBytes();

    // Interleaved shapes own their fetch timing; overlapping would
    // leave fetch_task running past this frame's lifetime.
    bool overlap = supportsOverlap() && !interleavedInstall() &&
                   ctx.reap.overlapFetchWithVmmLoad;
    sim::Task<void> fetch_task;
    if (overlap) {
        fetch_task = fetchWs(ctx, pipeline, ws_bytes, &bd.fetchWs);
        fetch_task.start(ctx.sim);
    }

    co_await preRestore(ctx);
    co_await inst.vm->loadVmmState(st.snapshot);
    bd.loadVmm = ctx.sim.now() - t0;

    inst.uffd =
        std::make_unique<mem::UserFaultFd>(ctx.sim, ctx.uffdParams);
    inst.vm->registerUffd(st.snapshot, inst.uffd.get());

    if (interleavedInstall()) {
        Time f0 = ctx.sim.now();
        co_await pipeline.fetchAndInstallPages(
            st.record.pages, ctx.reap.parallelPfWorkers, *inst.uffd,
            inst.vm->guestMemory());
        bd.fetchWs = ctx.sim.now() - f0;
    } else {
        if (overlap)
            co_await fetch_task;
        else
            co_await fetchWs(ctx, pipeline, ws_bytes, &bd.fetchWs);
        Time i0 = ctx.sim.now();
        co_await installWorkingSet(ctx);
        bd.installWs = ctx.sim.now() - i0;
    }
    bd.prefetchedPages = st.record.pageCount();
    for (const auto &t : pipeline.stats().tiers) {
        TierBreakdown row;
        row.tier = t.label;
        row.hits = t.hits;
        row.misses = t.misses;
        row.admissions = t.admissions;
        row.bytes = t.bytes;
        row.residentBytes = t.residentBytes;
        row.peakResidentBytes = t.peakResidentBytes;
        row.bytesEvicted = t.bytesEvicted;
        row.time = t.time;
        bd.tierHits.push_back(std::move(row));
    }
    if (ctx.tierBudget != nullptr) {
        // The page-cache tier's byte economics are worker-wide (one
        // tracker spans every function's WS file), so the row carries
        // the tracker's aggregate residency rather than a per-chain
        // figure.
        for (auto &row : bd.tierHits) {
            if (row.tier != "page-cache")
                continue;
            row.residentBytes = ctx.tierBudget->residentBytes();
            row.peakResidentBytes =
                ctx.tierBudget->peakResidentBytes();
            row.bytesEvicted = ctx.tierBudget->evictedBytes();
        }
    }

    inst.monitor = std::make_unique<Monitor>(
        ctx.sim, ctx.fs, *inst.uffd, inst.vm->guestMemory(),
        st.snapshot.guestMemory, Monitor::Mode::Prefetch);
    ctx.sim.spawn(inst.monitor->run());

    std::int64_t faults0 = inst.uffd->stats().faultsDelivered;
    co_await inst.vm->resumeVcpus();

    if (!ctx.opts.warmupOnly) {
        auto res = co_await inst.vm->serveInvocation(ctx.trace,
                                                     &ctx.objectStore);
        noteServe(bd, res);
    }
    // Pre-warm (warmupOnly): the instance is left resumed and idle
    // with its working set installed; the first real invocation serves
    // warm on it.
    bd.residualFaults = inst.uffd->stats().faultsDelivered - faults0;
    bd.total = ctx.sim.now() - t0;
    inst.residualBaseline = inst.uffd->stats().faultsDelivered;

    // Sec. 7.2: detect low working-set usage and re-record next time.
    if (ctx.reap.adaptiveRerecord &&
        static_cast<double>(bd.residualFaults) >
            ctx.reap.rerecordThreshold *
                static_cast<double>(st.record.pageCount())) {
        st.recorded = false;
        st.remoteStaged = false;
        ++st.stats.rerecordsTriggered;
    }

    inst.busy = false;
    co_return bd;
}

std::unique_ptr<mem::PageSource>
ParallelPageFaultsLoader::makeSource(LoadContext &ctx) const
{
    // Page-sized reads of the full guest-memory image, via the cache.
    return std::make_unique<mem::BufferedFileSource>(
        ctx.fs, ctx.st.snapshot.guestMemory);
}

std::unique_ptr<mem::PageSource>
WsFileCachedLoader::makeSource(LoadContext &ctx) const
{
    return std::make_unique<mem::BufferedFileSource>(ctx.fs,
                                                     ctx.st.wsFile);
}

std::unique_ptr<mem::PageSource>
ReapLoader::makeSource(LoadContext &ctx) const
{
    if (ctx.reap.bypassPageCache)
        return std::make_unique<mem::DirectFileSource>(ctx.fs,
                                                       ctx.st.wsFile);
    return std::make_unique<mem::BufferedFileSource>(ctx.fs,
                                                     ctx.st.wsFile);
}

// --------------------------------------------------------- RemoteReap

namespace {

/**
 * Placement key for one function's artifacts: content and scope are
 * both the function-name hash, so blob artifacts hash-place per
 * function and chunk uploads carry the owning function as scope for
 * overlap-aware co-location. Unsharded stores ignore it.
 */
net::PlacementKey
artifactKey(const LoadContext &ctx)
{
    std::uint64_t h = net::placementScope(ctx.st.profile.name);
    return {h, h};
}

} // namespace

std::unique_ptr<mem::PageSource>
RemoteReapLoader::makeSource(LoadContext &ctx) const
{
    return std::make_unique<mem::RemoteObjectSource>(ctx.artifactStore,
                                                     artifactKey(ctx));
}

sim::Task<void>
RemoteReapLoader::ensureStaged(LoadContext ctx)
{
    // One-time upload of the snapshot artifacts (VMM state + WS file)
    // into the store — off the timed restore path, like snapshot
    // creation itself (Sec. 7.1).
    if (ctx.st.remoteStaged)
        co_return;
    co_await ctx.artifactStore.put(
        stagedArtifactBytes(ctx.vmmParams.vmmStateSize, ctx.st.record),
        artifactKey(ctx));
    ctx.st.remoteStaged = true;
}

sim::Task<void>
RemoteReapLoader::preRestore(LoadContext ctx)
{
    // The serialized VMM/device state arrives as one bulk GET, then
    // lands in the local state file's cache pages so the restore
    // deserializes from memory rather than re-reading the disk.
    co_await ctx.artifactStore.get(ctx.vmmParams.vmmStateSize,
                                   artifactKey(ctx));
    co_await ctx.fs.writeBuffered(ctx.st.snapshot.vmmState, 0,
                                  ctx.vmmParams.vmmStateSize);
}

// --------------------------------------------------------- TieredReap

std::unique_ptr<mem::PageSource>
TieredReapLoader::makeSource(LoadContext &ctx) const
{
    auto tiered = std::make_unique<mem::TieredPageSource>(ctx.sim);
    FunctionState *st = &ctx.st;
    storage::FileStore *fs = &ctx.fs;
    storage::FileId ws = st->wsFile;

    // Page-cache budget tracking: register the WS file's evictor and
    // mirror admissions/serves into the worker-wide tracker. With a
    // zero budget this is pure accounting (peak-resident reporting);
    // a non-zero budget sheds segments through dropFileCacheRange.
    mem::TierCacheBudget *tb = ctx.tierBudget;
    sim::Simulation *simp = &ctx.sim;
    if (tb != nullptr) {
        tb->registerFile(ws, [fs, ws](Bytes off, Bytes len) {
            fs->dropFileCacheRange(ws, off, len);
        });
    }

    // Admission lands remote bytes in the WS file's cache pages with
    // asynchronous writeback — one hook populates both local tiers,
    // hung off the lowest enabled local tier (the one adjacent to the
    // remote backstop) so only remote serves trigger it and the cost
    // is paid once per miss range. O_DIRECT SSD serves must never
    // admit into the page cache.
    std::function<sim::Task<void>(Bytes, Bytes)> cacheAdmit, ssdAdmit;
    if (ctx.reap.tieredAdmitOnMiss) {
        auto admitLocal = [fs, ws, tb, simp](Bytes off, Bytes len) {
            if (tb != nullptr)
                tb->admitted(ws, off, len, simp->now());
            return fs->writeBuffered(ws, off, len);
        };
        if (ctx.reap.tieredLocalTier)
            ssdAdmit = admitLocal;
        else
            cacheAdmit = admitLocal;
    }

    if (ctx.reap.tieredPageCacheTier) {
        std::function<void(Bytes, Bytes)> onServe;
        if (tb != nullptr) {
            onServe = [tb, ws](Bytes off, Bytes len) {
                tb->touched(ws, off, len);
            };
        }
        tiered->addTier(mem::TieredPageSource::Tier{
            "page-cache",
            std::make_unique<mem::BufferedFileSource>(*fs, ws),
            [fs, ws](Bytes off, Bytes len) {
                return fs->isCached(ws, off, len);
            },
            std::move(cacheAdmit), std::move(onServe)});
    }
    if (ctx.reap.tieredLocalTier) {
        tiered->addTier(mem::TieredPageSource::Tier{
            "local-ssd",
            std::make_unique<mem::DirectFileSource>(*fs, ws),
            [st](Bytes, Bytes) { return st->artifactsLocal; },
            std::move(ssdAdmit)});
    }
    tiered->addTier(mem::TieredPageSource::Tier{
        "remote", makeBackstop(ctx), nullptr, nullptr});
    // Persist the serve counters on the function so admit-on-N-hits
    // spans cold starts (the chain itself is rebuilt per start).
    tiered->setAdmitAfterHits(ctx.reap.admitAfterHits,
                              &st->tierAdmitCounts);
    return tiered;
}

std::unique_ptr<mem::PageSource>
TieredReapLoader::makeBackstop(LoadContext &ctx) const
{
    return std::make_unique<mem::RemoteObjectSource>(ctx.artifactStore,
                                                     artifactKey(ctx));
}

sim::Task<void>
TieredReapLoader::ensureStaged(LoadContext ctx)
{
    bool was_staged = ctx.st.remoteStaged;
    co_await RemoteReapLoader::ensureStaged(ctx);
    if (!was_staged && ctx.reap.tieredFreshWorker) {
        // Model the next cold start on a worker with no local copy:
        // the remote tier is the only valid one until admission
        // re-populates the chain.
        ctx.st.evictLocalArtifacts(ctx.fs);
    }
}

sim::Task<void>
TieredReapLoader::preRestore(LoadContext ctx)
{
    // The VMM/device state follows the same tiering: local copies are
    // deserialized in place; a fresh worker GETs the state object and
    // lands it in the local file's cache pages (RemoteReap's path).
    if (ctx.st.artifactsLocal)
        co_return;
    co_await RemoteReapLoader::preRestore(ctx);
}

sim::Task<void>
TieredReapLoader::fetchWs(LoadContext &ctx,
                          mem::PageFetchPipeline &pipeline, Bytes len,
                          Duration *out)
{
    co_await pipeline.fetchWindowedTimed(0, len,
                                         ctx.reap.tieredWindowBytes,
                                         ctx.reap.tieredInFlight, out);
    promoteArtifactsLocal(ctx, pipeline, len);
}

void
TieredReapLoader::promoteArtifactsLocal(LoadContext &ctx,
                                        mem::PageFetchPipeline &pipeline,
                                        Bytes len)
{
    // The worker holds a complete local copy only when admission put
    // one there: every byte of this fetch must have come from the
    // remote tier AND been admitted on the way through. A fetch
    // served (even partly) by the page cache proves nothing about the
    // SSD copy an earlier eviction may have dropped, and under
    // admit-on-N-hits a remote serve below the threshold admits
    // nothing at all.
    if (ctx.st.artifactsLocal || !ctx.reap.tieredAdmitOnMiss ||
        !ctx.reap.tieredLocalTier)
        return;
    bool remote_all = false;
    Bytes admitted = 0;
    for (const auto &t : pipeline.stats().tiers) {
        if (t.label == "remote" && t.bytes >= len)
            remote_all = true;
        // Only the chain's own local tiers prove a local file copy
        // (a chunked backstop's internal cache admissions do not).
        if (t.label == "local-ssd" || t.label == "page-cache")
            admitted += t.bytesAdmitted;
    }
    if (remote_all && admitted >= len)
        ctx.st.artifactsLocal = true;
}

// ---------------------------------------------------------- DedupReap

namespace {

/**
 * Chunked remote backstop over the function's WS manifest, pinned
 * against a concurrent invalidateRecord(). Shared by DedupReap and
 * BackgroundWarm (which keeps the chunked path for content-addressed
 * functions).
 */
std::unique_ptr<mem::PageSource>
chunkedBackstop(const LoadContext &ctx)
{
    VHIVE_ASSERT(ctx.st.manifests != nullptr);
    auto src = std::make_unique<mem::ChunkPageSource>(
        ctx.sim, ctx.artifactStore, ctx.st.manifests->ws,
        &ctx.localChunks, chunkParams(ctx.reap), &ctx.chunkFlights,
        artifactKey(ctx).scope);
    // An invalidateRecord() or re-record while this cold start is in
    // flight drops the function's manifests; the source must outlive
    // that release.
    src->retain(ctx.st.manifests);
    return src;
}

/**
 * Chunked VMM-state transfer: the state manifest's chunks arrive as
 * batched compressed GETs (minus the worker's chunk-cache holdings)
 * and land in the local state file. Shared for the same reason.
 */
sim::Task<void>
chunkedStateRestore(LoadContext ctx)
{
    VHIVE_ASSERT(ctx.st.manifests != nullptr);
    // Pinned: a concurrent invalidateRecord() must not free the
    // manifest mid-read.
    auto pinned = ctx.st.manifests;
    mem::ChunkPageSource state_src(ctx.sim, ctx.artifactStore,
                                   pinned->vmmState,
                                   &ctx.localChunks,
                                   chunkParams(ctx.reap),
                                   &ctx.chunkFlights,
                                   artifactKey(ctx).scope);
    co_await state_src.readAll();
    co_await ctx.fs.writeBuffered(ctx.st.snapshot.vmmState, 0,
                                  ctx.vmmParams.vmmStateSize);
}

} // namespace

std::unique_ptr<mem::PageSource>
DedupReapLoader::makeBackstop(LoadContext &ctx) const
{
    return chunkedBackstop(ctx);
}

sim::Task<void>
DedupReapLoader::ensureStaged(LoadContext ctx)
{
    const vmm::SnapshotManifests &m =
        ensureManifests(ctx.st, ctx.reap, ctx.vmmParams);
    // Keep m alive across the staging awaits even if a concurrent
    // invalidateRecord() drops the function's reference.
    auto pinned = ctx.st.manifests;
    // Claim the previous version's manifests (delta re-record) before
    // the first suspension point, so a concurrent second staging pass
    // cannot release them twice. Their staged-chunk references stay
    // held until staging below completes.
    auto prev = std::move(ctx.st.prevManifests);
    if (ctx.st.remoteStaged) {
        if (prev) {
            // Staged concurrently while we were dispatched: the
            // winner already released (or inherited) nothing — these
            // references are ours to drop.
            ctx.stagedChunks.releaseManifest(prev->vmmState);
            ctx.stagedChunks.releaseManifest(prev->ws);
        }
        co_return;
    }
    // Chunk-level staging: upload only chunks the staged index has
    // not seen — cross-function duplicates (and in-artifact repeats)
    // are referenced, not re-uploaded, and travel compressed. On a
    // re-record the previous version's references are still live, so
    // unchanged chunks dedup-hit here and only churned chunks move:
    // the delta.
    std::int64_t uploaded = 0;
    std::int64_t unchanged = 0;
    Bytes uploaded_bytes = 0;
    for (const storage::ChunkManifest *man : {&m.vmmState, &m.ws}) {
        for (const storage::ChunkRef &c : man->chunks) {
            if (ctx.stagedChunks.addRef(c, ctx.sim.now())) {
                ++uploaded;
                uploaded_bytes += c.storedBytes;
                co_await ctx.artifactStore.putChunk(
                    c.storedBytes, {c.hash, artifactKey(ctx).scope});
            } else {
                ++unchanged;
            }
        }
    }
    ctx.st.remoteStaged = true;
    if (prev) {
        // The delta landed: release the previous version. Chunks
        // carried over stay referenced by the new manifests; chunks
        // only the old version used drop their last reference here.
        ++ctx.st.stats.deltaRestages;
        ctx.st.stats.deltaChunksUploaded += uploaded;
        ctx.st.stats.deltaBytesUploaded += uploaded_bytes;
        ctx.st.stats.deltaChunksUnchanged += unchanged;
        ctx.stagedChunks.releaseManifest(prev->vmmState);
        ctx.stagedChunks.releaseManifest(prev->ws);
    }
    if (ctx.reap.tieredFreshWorker) {
        // Same fresh-worker model as TieredReap: the first cold start
        // after staging pays the (chunked) remote path.
        ctx.st.evictLocalArtifacts(ctx.fs);
    }
}

sim::Task<void>
DedupReapLoader::preRestore(LoadContext ctx)
{
    // The serialized VMM/device state follows the chunked path too:
    // local copies deserialize in place; otherwise its manifest chunks
    // arrive as batched compressed GETs (minus what the worker's chunk
    // cache already holds) and land in the local state file.
    if (ctx.st.artifactsLocal)
        co_return;
    co_await chunkedStateRestore(ctx);
}

// ------------------------------------------------------ BackgroundWarm

sim::Task<void>
BackgroundWarmLoader::ensureStaged(LoadContext ctx)
{
    // Content-addressed functions were chunk-staged by the dedup
    // loader or the fleet registry; blob staging would double-count
    // the artifact bytes. Blob-addressed functions keep the tiered
    // (blob) staging path.
    if (ctx.st.manifests != nullptr)
        co_return;
    co_await TieredReapLoader::ensureStaged(ctx);
}

sim::Task<void>
BackgroundWarmLoader::preRestore(LoadContext ctx)
{
    if (ctx.st.artifactsLocal)
        co_return;
    if (ctx.st.manifests != nullptr) {
        co_await chunkedStateRestore(ctx);
        co_return;
    }
    co_await TieredReapLoader::preRestore(ctx);
}

sim::Task<void>
BackgroundWarmLoader::fetchWs(LoadContext &ctx,
                              mem::PageFetchPipeline &pipeline,
                              Bytes len, Duration *out)
{
    // The background shape: one window in flight, AIMD-sized, with a
    // pacing pause between windows — warming cedes store streams and
    // fabric to concurrent foreground cold starts.
    co_await pipeline.fetchBackgroundTimed(0, len, ctx.reap.bgWarmPace,
                                           out);
    promoteArtifactsLocal(ctx, pipeline, len);
}

std::unique_ptr<mem::PageSource>
BackgroundWarmLoader::makeBackstop(LoadContext &ctx) const
{
    if (ctx.st.manifests != nullptr)
        return chunkedBackstop(ctx);
    return TieredReapLoader::makeBackstop(ctx);
}

} // namespace vhive::core::loader
