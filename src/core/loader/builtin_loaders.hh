/**
 * @file
 * The built-in cold-start strategies, one per ColdStartMode, plus the
 * shared record phase. Every page-moving loader composes the
 * mem::PageFetchPipeline over a PageSource, so the Fig. 7 design walk
 * reads as a table of (source, shape) choices:
 *
 *   BootFromScratch    — no snapshot; boot from the rootfs image
 *   VanillaSnapshot    — kernel lazy paging, per-fault disk reads
 *   ParallelPageFaults — buffered source, strided per-page workers
 *   WsFileCached       — buffered source, one contiguous WS read
 *   Reap               — direct (O_DIRECT) source, one contiguous read
 *   RemoteReap         — remote object source, bulk GETs (Sec. 7.1)
 */

#ifndef VHIVE_CORE_LOADER_BUILTIN_LOADERS_HH
#define VHIVE_CORE_LOADER_BUILTIN_LOADERS_HH

#include <memory>

#include "core/loader/loader.hh"
#include "mem/page_fetch.hh"
#include "mem/page_source.hh"

namespace vhive::core::loader {

/** Boot a new VM from the root filesystem (no snapshot). */
class BootLoader final : public SnapshotLoader
{
  public:
    const char *name() const override { return "boot"; }
    bool needsSnapshot() const override { return false; }
    Bytes
    expectedResidency(const FunctionState &st) const override
    {
        return st.profile.bootFootprint;
    }
    sim::Task<LatencyBreakdown> load(LoadContext ctx) override;
};

/** Vanilla Firecracker snapshots: lazy kernel paging (Sec. 2.3). */
class VanillaSnapshotLoader final : public SnapshotLoader
{
  public:
    const char *name() const override { return "vanilla"; }
    sim::Task<LatencyBreakdown> load(LoadContext ctx) override;
};

/**
 * The record phase (Sec. 5.2.1): first REAP-family cold start runs
 * with a recording monitor, then persists the trace and WS files.
 * Shared by every needsRecord() mode via the registry.
 */
class RecordLoader final : public SnapshotLoader
{
  public:
    const char *name() const override { return "record"; }
    sim::Task<LatencyBreakdown> load(LoadContext ctx) override;
};

/**
 * Common skeleton of the prefetching modes: restore VMM state
 * (optionally overlapped with the WS fetch), move the recorded pages
 * through a PageFetchPipeline, install them eagerly, then resume with
 * a prefetch-mode monitor serving residual faults. Subclasses pick the
 * PageSource and the fetch shape.
 */
class PrefetchLoader : public SnapshotLoader
{
  public:
    bool needsRecord() const override { return true; }
    sim::Task<LatencyBreakdown> load(LoadContext ctx) override;

  protected:
    /** Source the working-set bytes are fetched from. */
    virtual std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const = 0;

    /**
     * True: strided per-page fetch+install (ParallelPageFaults).
     * False: one contiguous fetch, then a batched eager install.
     */
    virtual bool interleavedInstall() const { return false; }

    /** Whether the WS fetch may overlap the VMM-state load. */
    virtual bool supportsOverlap() const { return false; }

    /**
     * One-time staging before timing starts (RemoteReap uploads the
     * snapshot artifacts to the object store). Default: no-op.
     */
    virtual sim::Task<void> ensureStaged(LoadContext ctx);

    /**
     * Work on the restore critical path before the local VMM-state
     * load (RemoteReap downloads the state object). Default: no-op.
     */
    virtual sim::Task<void> preRestore(LoadContext ctx);

    /**
     * The non-interleaved WS fetch shape. Default: one contiguous
     * read of [0, len). TieredReap overrides with the windowed shape.
     */
    virtual sim::Task<void> fetchWs(LoadContext &ctx,
                                    mem::PageFetchPipeline &pipeline,
                                    Bytes len, Duration *out);

  private:
    /** Batched UFFDIO_COPY install of the recorded set. */
    sim::Task<void> installWorkingSet(LoadContext &ctx);
};

/**
 * Fig. 7 design point 2: trace-directed parallel page-sized reads of
 * the guest-memory snapshot image (the trace file supplies the page
 * list; the bytes come from the memory image).
 */
class ParallelPageFaultsLoader final : public PrefetchLoader
{
  public:
    const char *name() const override { return "parallel-pf"; }

  protected:
    std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const override;
    bool interleavedInstall() const override { return true; }
};

/** Fig. 7 design point 3: one buffered WS-file read via the cache. */
class WsFileCachedLoader final : public PrefetchLoader
{
  public:
    const char *name() const override { return "ws-file"; }

  protected:
    std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const override;
};

/** Full REAP: single O_DIRECT WS read + eager install (Sec. 5.2.3). */
class ReapLoader final : public PrefetchLoader
{
  public:
    const char *name() const override { return "reap"; }

  protected:
    std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const override;
    bool supportsOverlap() const override { return true; }
};

/**
 * Sec. 7.1: REAP with snapshot artifacts in remote object storage.
 * The VMM state and WS file arrive as bulk GETs; the first use stages
 * the artifacts into the store (off the timed path).
 */
class RemoteReapLoader : public PrefetchLoader
{
  public:
    const char *name() const override { return "reap-remote"; }

  protected:
    std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const override;
    bool supportsOverlap() const override { return true; }
    sim::Task<void> ensureStaged(LoadContext ctx) override;
    sim::Task<void> preRestore(LoadContext ctx) override;
};

/**
 * REAP over a tiered fallback chain (page cache -> local SSD -> remote
 * object store) with warm-tier admission and a windowed remote fetch
 * (ReapOptions::tieredWindowBytes / tieredInFlight in-flight ranged
 * GETs). Per-tier hit/byte/latency accounting lands in
 * LatencyBreakdown::tierHits. Shares RemoteReapLoader's staging and
 * VMM-state transfer; the local tiers short-circuit both when a valid
 * local copy exists.
 */
class TieredReapLoader : public RemoteReapLoader
{
  public:
    const char *name() const override { return "reap-tiered"; }

  protected:
    std::unique_ptr<mem::PageSource>
    makeSource(LoadContext &ctx) const override;
    sim::Task<void> ensureStaged(LoadContext ctx) override;
    sim::Task<void> preRestore(LoadContext ctx) override;
    sim::Task<void> fetchWs(LoadContext &ctx,
                            mem::PageFetchPipeline &pipeline, Bytes len,
                            Duration *out) override;

    /**
     * The chain's always-holds backstop (lowest tier). Default: bulk
     * object GETs (RemoteObjectSource); DedupReap swaps in the
     * chunked source.
     */
    virtual std::unique_ptr<mem::PageSource>
    makeBackstop(LoadContext &ctx) const;

    /**
     * Post-fetch bookkeeping shared by the tiered fetch shapes: mark
     * the worker's artifact copy local when the whole fetch came from
     * the remote tier and admission re-localized every byte.
     */
    static void promoteArtifactsLocal(LoadContext &ctx,
                                      mem::PageFetchPipeline &pipeline,
                                      Bytes len);
};

/**
 * TieredReap over the content-addressed artifact layer: the remote
 * backstop is a mem::ChunkPageSource mapping WS byte ranges onto the
 * function's chunk manifest. Staging uploads each *distinct* chunk
 * once (cross-function dedup against the staged-chunk index), cold
 * starts transfer compressed chunk bytes as batched ranged GETs, and
 * chunks resident in the worker's cache — pulled by any function —
 * cost only a local copy. The VMM-state artifact follows the same
 * chunked path.
 */
class DedupReapLoader final : public TieredReapLoader
{
  public:
    const char *name() const override { return "reap-dedup"; }

  protected:
    sim::Task<void> ensureStaged(LoadContext ctx) override;
    sim::Task<void> preRestore(LoadContext ctx) override;
    std::unique_ptr<mem::PageSource>
    makeBackstop(LoadContext &ctx) const override;
};

/**
 * The Sec. 6.3 background working-set warming loader: the tiered cold
 * path with the WS fetch at background priority — sequential paced
 * AIMD windows (PageFetchPipeline::fetchBackground) instead of N
 * concurrent ones — so warming yields fabric headroom to foreground
 * cold starts. Content-addressed functions (a chunk manifest exists)
 * keep their chunked backstop and VMM-state path; staging is then the
 * dedup/registry path's job and is never re-done here. The control
 * plane uses this mode as its pre-warm vehicle (InvokeOptions::
 * warmupOnly), and it works standalone as a ColdStartMode.
 */
class BackgroundWarmLoader final : public TieredReapLoader
{
  public:
    const char *name() const override { return "bg-warm"; }

  protected:
    sim::Task<void> ensureStaged(LoadContext ctx) override;
    sim::Task<void> preRestore(LoadContext ctx) override;
    sim::Task<void> fetchWs(LoadContext &ctx,
                            mem::PageFetchPipeline &pipeline, Bytes len,
                            Duration *out) override;
    std::unique_ptr<mem::PageSource>
    makeBackstop(LoadContext &ctx) const override;
};

} // namespace vhive::core::loader

#endif // VHIVE_CORE_LOADER_BUILTIN_LOADERS_HH
