#include "core/loader/loader.hh"

#include "core/loader/builtin_loaders.hh"
#include "util/logging.hh"

namespace vhive::core::loader {

LoaderRegistry::LoaderRegistry()
{
    registerLoader(ColdStartMode::BootFromScratch,
                   std::make_unique<BootLoader>());
    registerLoader(ColdStartMode::VanillaSnapshot,
                   std::make_unique<VanillaSnapshotLoader>());
    registerLoader(ColdStartMode::ParallelPageFaults,
                   std::make_unique<ParallelPageFaultsLoader>());
    registerLoader(ColdStartMode::WsFileCached,
                   std::make_unique<WsFileCachedLoader>());
    registerLoader(ColdStartMode::Reap, std::make_unique<ReapLoader>());
    registerLoader(ColdStartMode::RemoteReap,
                   std::make_unique<RemoteReapLoader>());
    registerLoader(ColdStartMode::TieredReap,
                   std::make_unique<TieredReapLoader>());
    registerLoader(ColdStartMode::DedupReap,
                   std::make_unique<DedupReapLoader>());
    registerLoader(ColdStartMode::BackgroundWarm,
                   std::make_unique<BackgroundWarmLoader>());
    _recordLoader = std::make_unique<RecordLoader>();
}

SnapshotLoader &
LoaderRegistry::loaderFor(ColdStartMode mode) const
{
    SnapshotLoader *loader = find(mode);
    if (loader == nullptr)
        fatal("no SnapshotLoader registered for mode %d",
              static_cast<int>(mode));
    return *loader;
}

SnapshotLoader *
LoaderRegistry::find(ColdStartMode mode) const
{
    auto it = loaders.find(mode);
    return it == loaders.end() ? nullptr : it->second.get();
}

void
LoaderRegistry::registerLoader(ColdStartMode mode,
                               std::unique_ptr<SnapshotLoader> loader)
{
    VHIVE_ASSERT(loader != nullptr);
    loaders[mode] = std::move(loader);
}

void
LoaderRegistry::setRecordLoader(std::unique_ptr<SnapshotLoader> loader)
{
    VHIVE_ASSERT(loader != nullptr);
    _recordLoader = std::move(loader);
}

std::vector<ColdStartMode>
LoaderRegistry::modes() const
{
    std::vector<ColdStartMode> out;
    out.reserve(loaders.size());
    for (const auto &entry : loaders)
        out.push_back(entry.first);
    return out;
}

} // namespace vhive::core::loader
