#include "core/orchestrator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::core {

const char *
coldStartModeName(ColdStartMode mode)
{
    switch (mode) {
      case ColdStartMode::BootFromScratch: return "boot";
      case ColdStartMode::VanillaSnapshot: return "vanilla";
      case ColdStartMode::ParallelPageFaults: return "parallel-pf";
      case ColdStartMode::WsFileCached: return "ws-file";
      case ColdStartMode::Reap: return "reap";
    }
    return "?";
}

Orchestrator::Orchestrator(sim::Simulation &sim, storage::FileStore &fs,
                           host::CpuPool &host_cpus,
                           host::CpuPool &orch_cpus,
                           net::ObjectStore &object_store,
                           const func::TraceGenerator &gen,
                           vmm::VmmParams vmm_params, ReapOptions reap,
                           mem::UffdParams uffd_params)
    : sim(sim), fs(fs), hostCpus(host_cpus), orchCpus(orch_cpus),
      objectStore(object_store), gen(gen), vmmParams(vmm_params),
      reap(reap), uffdParams(uffd_params)
{
}

void
Orchestrator::registerFunction(const func::FunctionProfile &profile)
{
    VHIVE_ASSERT(!profile.name.empty());
    if (functions.count(profile.name))
        fatal("function %s already registered", profile.name.c_str());
    FunctionState st;
    st.profile = profile;
    functions.emplace(profile.name, std::move(st));
}

bool
Orchestrator::hasFunction(const std::string &name) const
{
    return functions.count(name) > 0;
}

Orchestrator::FunctionState &
Orchestrator::state(const std::string &name)
{
    auto it = functions.find(name);
    if (it == functions.end())
        fatal("function %s is not registered", name.c_str());
    return it->second;
}

const Orchestrator::FunctionState &
Orchestrator::state(const std::string &name) const
{
    auto it = functions.find(name);
    if (it == functions.end())
        fatal("function %s is not registered", name.c_str());
    return it->second;
}

void
Orchestrator::ensureRootfs(FunctionState &st)
{
    if (st.rootfs == storage::kInvalidFile) {
        // Containerd generates the root filesystem from the OCI image
        // via device-mapper (Sec. 6.1).
        st.rootfs = fs.createFile(st.profile.name + "/rootfs",
                                  st.profile.rootfsImage);
    }
}

sim::Task<void>
Orchestrator::prepareSnapshot(const std::string &name)
{
    FunctionState &st = state(name);
    if (st.hasSnapshot)
        co_return;
    ensureRootfs(st);
    st.snapshot.vmmState =
        fs.createFile(name + "/vmm_state", vmmParams.vmmStateSize);
    st.snapshot.guestMemory =
        fs.createFile(name + "/guest_mem", st.profile.vmMemory);

    auto vm = std::make_unique<vmm::MicroVm>(sim, fs, hostCpus,
                                             st.profile, vmmParams);
    co_await vm->bootFromScratch(gen.boot(st.profile), st.rootfs,
                                 st.profile.rootfsBootRead);
    co_await vm->createSnapshot(st.snapshot);
    st.hasSnapshot = true;
    // The booted instance is discarded: snapshots make keeping it
    // memory-resident unnecessary.
}

std::int64_t
Orchestrator::pickInput(FunctionState &st, const InvokeOptions &opts)
{
    if (opts.inputId >= 0)
        return opts.inputId;
    return st.nextInput++;
}

Orchestrator::Instance &
Orchestrator::createInstance(FunctionState &st)
{
    st.instances.push_back(std::make_unique<Instance>());
    Instance &inst = *st.instances.back();
    inst.vm = std::make_unique<vmm::MicroVm>(sim, fs, hostCpus,
                                             st.profile, vmmParams);
    return inst;
}

sim::Task<LatencyBreakdown>
Orchestrator::invoke(const std::string &name, ColdStartMode mode,
                     InvokeOptions opts)
{
    FunctionState &st = state(name);
    if (opts.flushPageCache)
        fs.dropCaches();

    if (!opts.forceCold) {
        for (auto &inst : st.instances) {
            if (!inst->busy && inst->vm->state() ==
                                   vmm::VmState::Running) {
                // Warm path. The guest buddy allocator reuses the
                // same guest-physical frames across invocations on a
                // live instance (Sec. 4.4), so by default a warm
                // invocation replays the instance's last input layout
                // and touches only resident pages. An explicit
                // inputId overrides this (e.g. to study drift).
                std::int64_t input = opts.inputId >= 0
                                         ? opts.inputId
                                         : inst->lastInput;
                if (input < 0)
                    input = pickInput(st, opts);
                inst->lastInput = input;
                co_return co_await invokeWarm(
                    st, *inst, gen.invocation(st.profile, input));
            }
        }
    }

    std::int64_t input = pickInput(st, opts);
    func::InvocationTrace trace = gen.invocation(st.profile, input);

    // Cold start: control-plane handling (CRI request, bookkeeping).
    co_await orchCpus.exec(kControlPlaneCost);

    if (memoryCapacity > 0) {
        // Expected residency of the new instance: its working set
        // (restore paths) or boot footprint (boot path).
        Bytes expected = mode == ColdStartMode::BootFromScratch
                             ? st.profile.bootFootprint
                             : st.profile.workingSet;
        co_await makeRoom(expected);
    }

    LatencyBreakdown bd;
    Instance &inst = createInstance(st);
    inst.lastInput = input;
    switch (mode) {
      case ColdStartMode::BootFromScratch:
        bd = co_await coldBoot(st, inst, trace, opts);
        break;
      case ColdStartMode::VanillaSnapshot:
        if (!st.hasSnapshot)
            fatal("%s: no snapshot; call prepareSnapshot first",
                  name.c_str());
        bd = co_await coldVanilla(st, inst, trace, opts);
        break;
      case ColdStartMode::ParallelPageFaults:
      case ColdStartMode::WsFileCached:
      case ColdStartMode::Reap:
        if (!st.hasSnapshot)
            fatal("%s: no snapshot; call prepareSnapshot first",
                  name.c_str());
        if (!st.recorded)
            bd = co_await coldRecord(st, inst, trace, opts);
        else
            bd = co_await coldPrefetch(st, inst, mode, trace, opts);
        break;
    }

    ++st.stats.coldInvocations;
    bd.cold = true;
    inst.lastUsedAt = sim.now();
    bd.wastedPrefetch =
        st.recorded && bd.prefetchedPages > 0
            ? st.record.wastedAgainst(trace.touchedPages())
            : 0;

    if (!opts.keepWarm)
        co_await stopInstanceByPtr(st, &inst);
    co_return bd;
}

sim::Task<LatencyBreakdown>
Orchestrator::invokeWarm(FunctionState &st,
                         Instance &inst,
                         const func::InvocationTrace &trace)
{
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = sim.now();
    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.total = sim.now() - t0;
    bd.cold = false;
    inst.busy = false;
    inst.lastUsedAt = sim.now();
    ++st.stats.warmInvocations;
    co_return bd;
}

sim::Task<LatencyBreakdown>
Orchestrator::coldBoot(FunctionState &st, Instance &inst,
                       const func::InvocationTrace &trace,
                       const InvokeOptions &opts)
{
    (void)opts;
    ensureRootfs(st);
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = sim.now();

    co_await inst.vm->bootFromScratch(gen.boot(st.profile), st.rootfs,
                                      st.profile.rootfsBootRead);
    bd.loadVmm = sim.now() - t0; // boot replaces VMM-state load

    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.total = sim.now() - t0;
    inst.busy = false;
    ++st.stats.bootInvocations;
    co_return bd;
}

sim::Task<LatencyBreakdown>
Orchestrator::coldVanilla(FunctionState &st, Instance &inst,
                          const func::InvocationTrace &trace,
                          const InvokeOptions &opts)
{
    (void)opts;
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = sim.now();

    co_await inst.vm->loadVmmState(st.snapshot);
    co_await inst.vm->resumeLazy(st.snapshot);
    bd.loadVmm = sim.now() - t0;

    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.total = sim.now() - t0;
    inst.busy = false;
    co_return bd;
}

sim::Task<LatencyBreakdown>
Orchestrator::coldRecord(FunctionState &st, Instance &inst,
                         const func::InvocationTrace &trace,
                         const InvokeOptions &opts)
{
    (void)opts;
    inst.busy = true;
    LatencyBreakdown bd;
    bd.recordPhase = true;
    Time t0 = sim.now();

    co_await inst.vm->loadVmmState(st.snapshot);

    inst.uffd = std::make_unique<mem::UserFaultFd>(sim, uffdParams);
    inst.vm->registerUffd(st.snapshot, inst.uffd.get());
    inst.monitor = std::make_unique<Monitor>(
        sim, fs, *inst.uffd, inst.vm->guestMemory(),
        st.snapshot.guestMemory, Monitor::Mode::Record);
    sim.spawn(inst.monitor->run());

    co_await inst.vm->resumeVcpus();
    bd.loadVmm = sim.now() - t0;

    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.total = sim.now() - t0;

    // Post-response: persist the trace and WS files (Sec. 5.2.1).
    st.record = inst.monitor->recorded();
    st.recorded = true;
    ++st.stats.recordPhases;
    co_await finalizeRecord(st, st.record);

    inst.busy = false;
    co_return bd;
}

sim::Task<void>
Orchestrator::fetchWorkingSet(FunctionState &st, ColdStartMode mode,
                              Duration *out)
{
    VHIVE_ASSERT(st.wsFile != storage::kInvalidFile);
    Bytes bytes = st.record.wsFileBytes();
    Time t0 = sim.now();
    if (mode == ColdStartMode::Reap && reap.bypassPageCache)
        co_await fs.readDirect(st.wsFile, 0, bytes);
    else
        co_await fs.readBuffered(st.wsFile, 0, bytes);
    if (out != nullptr)
        *out = sim.now() - t0;
}

sim::Task<void>
Orchestrator::installWorkingSet(FunctionState &st, Instance &inst)
{
    // One UFFDIO_COPY per batch, then mark contiguous runs present.
    co_await inst.uffd->copyCost(st.record.pageCount(),
                                 reap.installBatchPages);
    if (reap.rerandomizeLayout) {
        // Sec. 7.3: rewrite guest page tables so each clone gets a
        // fresh layout; proportional one-time install cost.
        co_await sim.delay(reap.rerandomizePerPage *
                           st.record.pageCount());
        ++st.stats.layoutRerandomizations;
    }
    auto sorted = st.record.sortedPages();
    size_t i = 0;
    while (i < sorted.size()) {
        size_t j = i + 1;
        while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1)
            ++j;
        inst.vm->guestMemory().installRange(
            sorted[i], static_cast<std::int64_t>(j - i));
        i = j;
    }
}

sim::Task<void>
Orchestrator::parallelFetchWorker(FunctionState &st, Instance &inst,
                                  size_t begin, size_t stride,
                                  sim::Latch *done)
{
    const auto &pages = st.record.pages;
    for (size_t i = begin; i < pages.size(); i += stride) {
        co_await fs.readBuffered(st.snapshot.guestMemory,
                                 bytesForPages(pages[i]), kPageSize);
        co_await inst.uffd->copyCost(1, 1);
        inst.vm->guestMemory().installRange(pages[i], 1);
    }
    done->arrive();
}

sim::Task<void>
Orchestrator::parallelFetchInstall(FunctionState &st, Instance &inst)
{
    int workers = std::max(1, reap.parallelPfWorkers);
    sim::Latch done(sim, workers);
    for (int w = 0; w < workers; ++w) {
        sim.spawn(parallelFetchWorker(st, inst,
                                      static_cast<size_t>(w),
                                      static_cast<size_t>(workers),
                                      &done));
    }
    co_await done.wait();
}

sim::Task<LatencyBreakdown>
Orchestrator::coldPrefetch(FunctionState &st, Instance &inst,
                           ColdStartMode mode,
                           const func::InvocationTrace &trace,
                           const InvokeOptions &opts)
{
    (void)opts;
    inst.busy = true;
    LatencyBreakdown bd;
    Time t0 = sim.now();

    bool overlap = mode == ColdStartMode::Reap &&
                   reap.overlapFetchWithVmmLoad;
    sim::Task<void> fetch_task;
    if (overlap) {
        fetch_task = fetchWorkingSet(st, mode, &bd.fetchWs);
        fetch_task.start(sim);
    }

    co_await inst.vm->loadVmmState(st.snapshot);
    bd.loadVmm = sim.now() - t0;

    inst.uffd = std::make_unique<mem::UserFaultFd>(sim, uffdParams);
    inst.vm->registerUffd(st.snapshot, inst.uffd.get());

    if (mode == ColdStartMode::ParallelPageFaults) {
        Time f0 = sim.now();
        co_await parallelFetchInstall(st, inst);
        bd.fetchWs = sim.now() - f0;
    } else {
        if (overlap)
            co_await fetch_task;
        else
            co_await fetchWorkingSet(st, mode, &bd.fetchWs);
        Time i0 = sim.now();
        co_await installWorkingSet(st, inst);
        bd.installWs = sim.now() - i0;
    }
    bd.prefetchedPages = st.record.pageCount();

    inst.monitor = std::make_unique<Monitor>(
        sim, fs, *inst.uffd, inst.vm->guestMemory(),
        st.snapshot.guestMemory, Monitor::Mode::Prefetch);
    sim.spawn(inst.monitor->run());

    std::int64_t faults0 = inst.uffd->stats().faultsDelivered;
    co_await inst.vm->resumeVcpus();

    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.residualFaults =
        inst.uffd->stats().faultsDelivered - faults0;
    bd.total = sim.now() - t0;
    inst.residualBaseline = inst.uffd->stats().faultsDelivered;

    // Sec. 7.2: detect low working-set usage and re-record next time.
    if (reap.adaptiveRerecord &&
        static_cast<double>(bd.residualFaults) >
            reap.rerecordThreshold *
                static_cast<double>(st.record.pageCount())) {
        st.recorded = false;
        ++st.stats.rerecordsTriggered;
    }

    inst.busy = false;
    co_return bd;
}

sim::Task<void>
Orchestrator::finalizeRecord(FunctionState &st,
                             const WorkingSetRecord &rec)
{
    Bytes ws_bytes = std::max<Bytes>(rec.wsFileBytes(), kPageSize);
    Bytes trace_bytes =
        std::max<Bytes>(TraceFileCodec::encodedSize(rec), 1);
    if (st.wsFile == storage::kInvalidFile) {
        st.wsFile = fs.createFile(st.profile.name + "/ws", ws_bytes);
        st.traceFile =
            fs.createFile(st.profile.name + "/trace", trace_bytes);
    } else {
        fs.truncate(st.wsFile, ws_bytes);
        fs.truncate(st.traceFile, trace_bytes);
    }
    // The monitor already holds the page contents; write both files
    // (buffered, with asynchronous writeback).
    co_await fs.writeBuffered(st.wsFile, 0, ws_bytes);
    co_await fs.writeBuffered(st.traceFile, 0, trace_bytes);
}

sim::Task<void>
Orchestrator::makeRoom(Bytes needed)
{
    while (totalResidentBytes() + needed > memoryCapacity) {
        // Find the least-recently-used idle instance fleet-wide.
        FunctionState *victim_st = nullptr;
        size_t victim_idx = 0;
        Time oldest = 0;
        bool found = false;
        for (auto &entry : functions) {
            auto &st = entry.second;
            for (size_t i = 0; i < st.instances.size(); ++i) {
                Instance &inst = *st.instances[i];
                if (inst.busy)
                    continue;
                if (!found || inst.lastUsedAt < oldest) {
                    oldest = inst.lastUsedAt;
                    victim_st = &st;
                    victim_idx = i;
                    found = true;
                }
            }
        }
        if (!found)
            co_return; // nothing evictable; admit over budget
        co_await stopInstance(*victim_st, victim_idx);
        ++_capacityEvictions;
    }
}

sim::Task<void>
Orchestrator::stopInstance(FunctionState &st, size_t index)
{
    VHIVE_ASSERT(index < st.instances.size());
    Instance &inst = *st.instances[index];
    VHIVE_ASSERT(!inst.busy);
    if (inst.uffd && inst.monitor) {
        inst.uffd->sendShutdown();
        co_await inst.monitor->doneGate().wait();
    }
    st.instances.erase(st.instances.begin() +
                       static_cast<std::ptrdiff_t>(index));
}

sim::Task<void>
Orchestrator::stopInstanceByPtr(FunctionState &st, Instance *inst)
{
    for (size_t i = 0; i < st.instances.size(); ++i) {
        if (st.instances[i].get() == inst) {
            co_await stopInstance(st, i);
            co_return;
        }
    }
    panic("stopInstanceByPtr: instance not found");
}

sim::Task<void>
Orchestrator::stopAllInstances(const std::string &name)
{
    FunctionState &st = state(name);
    while (!st.instances.empty())
        co_await stopInstance(st, st.instances.size() - 1);
}

std::int64_t
Orchestrator::instanceCount(const std::string &name) const
{
    return static_cast<std::int64_t>(state(name).instances.size());
}

std::int64_t
Orchestrator::idleInstanceCount(const std::string &name) const
{
    const FunctionState &st = state(name);
    std::int64_t idle = 0;
    for (const auto &inst : st.instances)
        if (!inst->busy)
            ++idle;
    return idle;
}

std::vector<Bytes>
Orchestrator::instanceFootprints(const std::string &name) const
{
    const FunctionState &st = state(name);
    std::vector<Bytes> out;
    out.reserve(st.instances.size());
    for (const auto &inst : st.instances)
        out.push_back(inst->vm->footprint());
    return out;
}

bool
Orchestrator::hasRecord(const std::string &name) const
{
    return state(name).recorded;
}

const WorkingSetRecord &
Orchestrator::record(const std::string &name) const
{
    const FunctionState &st = state(name);
    VHIVE_ASSERT(st.recorded);
    return st.record;
}

void
Orchestrator::invalidateRecord(const std::string &name)
{
    state(name).recorded = false;
}

const FunctionStats &
Orchestrator::stats(const std::string &name) const
{
    return state(name).stats;
}

void
Orchestrator::flushHostCaches()
{
    fs.dropCaches();
}

Bytes
Orchestrator::totalResidentBytes() const
{
    Bytes total = 0;
    for (const auto &entry : functions)
        for (const auto &inst : entry.second.instances)
            total += inst->vm->footprint();
    return total;
}

} // namespace vhive::core
