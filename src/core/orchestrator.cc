#include "core/orchestrator.hh"

#include <algorithm>

#include "mem/page_fetch.hh"
#include "util/logging.hh"

namespace vhive::core {

const char *
coldStartModeName(ColdStartMode mode)
{
    switch (mode) {
      case ColdStartMode::BootFromScratch: return "boot";
      case ColdStartMode::VanillaSnapshot: return "vanilla";
      case ColdStartMode::ParallelPageFaults: return "parallel-pf";
      case ColdStartMode::WsFileCached: return "ws-file";
      case ColdStartMode::Reap: return "reap";
      case ColdStartMode::RemoteReap: return "reap-remote";
      case ColdStartMode::TieredReap: return "reap-tiered";
      case ColdStartMode::DedupReap: return "reap-dedup";
      case ColdStartMode::BackgroundWarm: return "bg-warm";
    }
    return "?";
}

Orchestrator::Orchestrator(sim::Simulation &sim, storage::FileStore &fs,
                           host::CpuPool &host_cpus,
                           host::CpuPool &orch_cpus,
                           net::ObjectStore &object_store,
                           const func::TraceGenerator &gen,
                           vmm::VmmParams vmm_params, ReapOptions reap,
                           mem::UffdParams uffd_params,
                           net::ArtifactStore *artifact_store)
    : sim(sim), fs(fs), hostCpus(host_cpus), orchCpus(orch_cpus),
      objectStore(object_store),
      artifactStore(artifact_store != nullptr ? *artifact_store
                                              : object_store),
      gen(gen), vmmParams(vmm_params), reap(reap),
      uffdParams(uffd_params)
{
    // Cache-economics knobs: zero budgets leave every store/tracker
    // in pure-accounting mode (bit-identical to unbudgeted builds).
    _localChunks.setBudget(this->reap.chunkCacheBudget,
                           this->reap.evictionPolicy,
                           /*refcount_protected=*/false);
    _tierBudget.setBudget(this->reap.pageCacheBudget,
                          this->reap.evictionPolicy);
}

void
Orchestrator::registerFunction(const func::FunctionProfile &profile)
{
    VHIVE_ASSERT(!profile.name.empty());
    if (functions.count(profile.name))
        fatal("function %s already registered", profile.name.c_str());
    FunctionState st;
    st.profile = profile;
    functions.emplace(profile.name, std::move(st));
}

bool
Orchestrator::hasFunction(const std::string &name) const
{
    return functions.count(name) > 0;
}

FunctionState &
Orchestrator::state(const std::string &name)
{
    auto it = functions.find(name);
    if (it == functions.end())
        fatal("function %s is not registered", name.c_str());
    return it->second;
}

const FunctionState &
Orchestrator::state(const std::string &name) const
{
    auto it = functions.find(name);
    if (it == functions.end())
        fatal("function %s is not registered", name.c_str());
    return it->second;
}

sim::Task<void>
Orchestrator::prepareSnapshot(const std::string &name)
{
    FunctionState &st = state(name);
    if (st.hasSnapshot)
        co_return;
    st.ensureRootfs(fs);
    st.snapshot.vmmState =
        fs.createFile(name + "/vmm_state", vmmParams.vmmStateSize);
    st.snapshot.guestMemory =
        fs.createFile(name + "/guest_mem", st.profile.vmMemory);

    auto vm = std::make_unique<vmm::MicroVm>(sim, fs, hostCpus,
                                             st.profile, vmmParams);
    co_await vm->bootFromScratch(gen.boot(st.profile), st.rootfs,
                                 st.profile.rootfsBootRead);
    co_await vm->createSnapshot(st.snapshot);
    st.hasSnapshot = true;
    ++_snapshotBuilds;
    // The booted instance is discarded: snapshots make keeping it
    // memory-resident unnecessary.
}

void
Orchestrator::adoptStagedArtifacts(
    const std::string &name, const WorkingSetRecord &record,
    std::shared_ptr<const vmm::SnapshotManifests> manifests)
{
    FunctionState &st = state(name);
    // The registry's staging pass (or its delta restage) owns the
    // version handoff: any previous-version manifests this worker
    // still retains are stale — their references (held only when this
    // worker staged them itself) go now, not at the next re-record.
    if (st.prevManifests) {
        _stagedChunks.releaseManifest(st.prevManifests->vmmState);
        _stagedChunks.releaseManifest(st.prevManifests->ws);
        st.prevManifests.reset();
    }
    if (st.recorded) {
        // The building worker: artifacts already exist locally, the
        // registry's put() just made them shared.
        st.remoteStaged = true;
        st.manifests = std::move(manifests);
        return;
    }
    st.manifests = std::move(manifests);
    if (!st.hasSnapshot) {
        st.snapshot.vmmState = fs.createFile(name + "/vmm_state",
                                             vmmParams.vmmStateSize);
        st.snapshot.guestMemory =
            fs.createFile(name + "/guest_mem", st.profile.vmMemory);
        st.hasSnapshot = true;
    }
    st.record = record;
    st.recorded = true;
    st.ensureArtifactFiles(fs);
    st.remoteStaged = true;
    // The bytes live only in the shared store until a cold start pulls
    // them through the remote tier and admission re-localizes them.
    st.evictLocalArtifacts(fs);
}

std::int64_t
Orchestrator::pickInput(FunctionState &st, const InvokeOptions &opts)
{
    if (opts.inputId >= 0)
        return opts.inputId;
    return st.nextInput++;
}

Instance &
Orchestrator::createInstance(FunctionState &st)
{
    st.instances.push_back(std::make_unique<Instance>());
    Instance &inst = *st.instances.back();
    inst.id = ++_nextInstanceId;
    inst.vm = std::make_unique<vmm::MicroVm>(sim, fs, hostCpus,
                                             st.profile, vmmParams);
    return inst;
}

sim::Task<LatencyBreakdown>
Orchestrator::invoke(const std::string &name, ColdStartMode mode,
                     InvokeOptions opts)
{
    FunctionState &st = state(name);
    if (opts.flushPageCache)
        fs.dropCaches();

    if (!opts.forceCold) {
        for (auto &inst : st.instances) {
            if (!inst->busy && inst->vm->state() ==
                                   vmm::VmState::Running) {
                // Warm path. The guest buddy allocator reuses the
                // same guest-physical frames across invocations on a
                // live instance (Sec. 4.4), so by default a warm
                // invocation replays the instance's last input layout
                // and touches only resident pages. An explicit
                // inputId overrides this (e.g. to study drift).
                std::int64_t input = opts.inputId >= 0
                                         ? opts.inputId
                                         : inst->lastInput;
                if (input < 0)
                    input = pickInput(st, opts);
                inst->lastInput = input;
                co_return co_await invokeWarm(
                    st, *inst, gen.invocation(st.profile, input));
            }
        }
        if (!opts.warmupOnly) {
            for (auto &inst : st.instances) {
                if (!inst->warming || !inst->readyGate)
                    continue;
                // A control-plane pre-warm is mid-flight: ride it
                // instead of paying a full cold start. The gate's
                // shared_ptr and the never-reused id survive the wait
                // even if the instance is torn down (crash) meanwhile.
                auto gate = inst->readyGate;
                std::uint64_t id = inst->id;
                co_await gate->wait();
                Instance *cand = nullptr;
                for (auto &i2 : st.instances) {
                    if (i2->id == id) {
                        cand = i2.get();
                        break;
                    }
                }
                if (cand != nullptr && !cand->busy &&
                    cand->vm->state() == vmm::VmState::Running) {
                    std::int64_t input = opts.inputId >= 0
                                             ? opts.inputId
                                             : cand->lastInput;
                    if (input < 0)
                        input = pickInput(st, opts);
                    cand->lastInput = input;
                    co_return co_await invokeWarm(
                        st, *cand, gen.invocation(st.profile, input));
                }
                break; // pre-warm died; fall through to a cold start
            }
        }
    }

    std::int64_t input = pickInput(st, opts);
    func::InvocationTrace trace = gen.invocation(st.profile, input);

    // Cold start: control-plane handling (CRI request, bookkeeping),
    // then dispatch to the strategy registered for the mode.
    Time cold_t0 = sim.now();
    co_await orchCpus.exec(kControlPlaneCost);

    loader::SnapshotLoader &ld = _loaders.loaderFor(mode);

    if (memoryCapacity > 0)
        co_await makeRoom(ld.expectedResidency(st));

    if (ld.needsSnapshot() && !st.hasSnapshot)
        fatal("%s: no snapshot; call prepareSnapshot first",
              name.c_str());

    Instance &inst = createInstance(st);
    inst.lastInput = input;
    if (opts.warmupOnly) {
        inst.warming = true;
        inst.readyGate = std::make_shared<sim::Gate>(sim);
    }

    if (faults != nullptr) {
        // Worker crash mid-cold-start: the window's magnitude is the
        // milliseconds of work lost before the crash is detected. The
        // instance is torn down and the breakdown reports crashed so
        // the cluster layer can retry; this is NOT counted as a cold
        // invocation served.
        if (const sim::FaultWindow *w = faults->roll(
                sim::FaultKind::WorkerCrash, faultTag, sim.now())) {
            ++faults->stats().workerCrashes;
            ++st.stats.crashes;
            co_await sim.delay(msec(w->magnitude));
            // Open the ready gate after teardown so an invoke waiting
            // on this pre-warm wakes, fails to re-locate the instance,
            // and falls through to its own cold start.
            auto ready = inst.readyGate;
            co_await stopInstanceByPtr(st, &inst);
            if (ready)
                ready->openGate();
            LatencyBreakdown crashed_bd;
            crashed_bd.cold = true;
            crashed_bd.crashed = true;
            crashed_bd.total = sim.now() - cold_t0;
            co_return crashed_bd;
        }
    }

    loader::LoadContext ctx{sim,        fs,    hostCpus, objectStore,
                            gen,        vmmParams, reap, uffdParams,
                            st,         inst,  trace,    opts,
                            _localChunks,      _stagedChunks,
                            artifactStore,     _chunkFlights,
                            &_tierBudget};

    LatencyBreakdown bd;
    ++st.activeColds; // shield the artifacts from the SSD budget
    if (ld.needsRecord() && !st.recorded)
        bd = co_await _loaders.recordLoader().load(ctx);
    else
        bd = co_await ld.load(ctx);
    --st.activeColds;
    if (st.artifactsLocal) {
        st.artifactLruSeq = ++_artifactLru;
        enforceSsdBudget(sim.now());
    }

    if (opts.warmupOnly) {
        // Pre-warm complete: the instance sits warm and idle, the
        // gate releases any invoke that arrived mid-warm. Counted as
        // a pre-warm, not a served cold invocation.
        inst.warming = false;
        inst.preWarmed = true;
        inst.readyGate->openGate();
        ++st.stats.preWarms;
    } else {
        ++st.stats.coldInvocations;
    }
    bd.cold = true;
    inst.lastUsedAt = sim.now();
    bd.wastedPrefetch =
        st.recorded && bd.prefetchedPages > 0
            ? st.record.wastedAgainst(trace.touchedPages())
            : 0;

    if (!opts.keepWarm)
        co_await stopInstanceByPtr(st, &inst);
    co_return bd;
}

sim::Task<LatencyBreakdown>
Orchestrator::invokeWarm(FunctionState &st,
                         Instance &inst,
                         const func::InvocationTrace &trace)
{
    inst.busy = true;
    LatencyBreakdown bd;
    if (inst.preWarmed) {
        inst.preWarmed = false;
        bd.preWarmHit = true;
        ++st.stats.preWarmHits;
    }
    Time t0 = sim.now();
    auto res = co_await inst.vm->serveInvocation(trace, &objectStore);
    bd.connRestore = res.connRestore;
    bd.processing = res.processing;
    bd.majorFaults = res.majorFaults;
    bd.total = sim.now() - t0;
    bd.cold = false;
    inst.busy = false;
    inst.lastUsedAt = sim.now();
    ++st.stats.warmInvocations;
    co_return bd;
}

sim::Task<void>
Orchestrator::makeRoom(Bytes needed)
{
    while (totalResidentBytes() + needed > memoryCapacity) {
        // Find the least-recently-used idle instance fleet-wide.
        FunctionState *victim_st = nullptr;
        size_t victim_idx = 0;
        Time oldest = 0;
        bool found = false;
        for (auto &entry : functions) {
            auto &st = entry.second;
            for (size_t i = 0; i < st.instances.size(); ++i) {
                Instance &inst = *st.instances[i];
                if (inst.busy)
                    continue;
                if (!found || inst.lastUsedAt < oldest) {
                    oldest = inst.lastUsedAt;
                    victim_st = &st;
                    victim_idx = i;
                    found = true;
                }
            }
        }
        if (!found)
            co_return; // nothing evictable; admit over budget
        co_await stopInstance(*victim_st, victim_idx);
        ++_capacityEvictions;
    }
}

sim::Task<void>
Orchestrator::stopInstance(FunctionState &st, size_t index)
{
    VHIVE_ASSERT(index < st.instances.size());
    Instance &inst = *st.instances[index];
    VHIVE_ASSERT(!inst.busy);
    if (inst.preWarmed)
        ++_wastedPreWarms;
    if (inst.uffd && inst.monitor) {
        inst.uffd->sendShutdown();
        co_await inst.monitor->doneGate().wait();
    }
    st.instances.erase(st.instances.begin() +
                       static_cast<std::ptrdiff_t>(index));
}

sim::Task<void>
Orchestrator::stopInstanceByPtr(FunctionState &st, Instance *inst)
{
    for (size_t i = 0; i < st.instances.size(); ++i) {
        if (st.instances[i].get() == inst) {
            co_await stopInstance(st, i);
            co_return;
        }
    }
    panic("stopInstanceByPtr: instance not found");
}

sim::Task<void>
Orchestrator::stopAllInstances(const std::string &name)
{
    FunctionState &st = state(name);
    while (!st.instances.empty())
        co_await stopInstance(st, st.instances.size() - 1);
}

sim::Task<std::int64_t>
Orchestrator::stopIdleInstances(const std::string &name)
{
    FunctionState &st = state(name);
    // Snapshot the instances idle right now, back to front (the order
    // stopAllInstances retires). An instance that turns idle during a
    // shutdown handshake below was busy when the scale-down decision
    // was made — it was just in use and must survive this round.
    std::vector<std::uint64_t> victims;
    for (size_t i = st.instances.size(); i-- > 0;) {
        if (!st.instances[i]->busy)
            victims.push_back(st.instances[i]->id);
    }
    std::int64_t stopped = 0;
    for (std::uint64_t victim : victims) {
        // Re-locate per victim by its never-reused id: each
        // stopInstance suspends and the vector may shift (or another
        // path — capacity eviction, a warm dispatch — may have
        // claimed or retired the instance) meanwhile.
        size_t idx = st.instances.size();
        for (size_t i = 0; i < st.instances.size(); ++i) {
            if (st.instances[i]->id == victim) {
                idx = i;
                break;
            }
        }
        if (idx == st.instances.size() || st.instances[idx]->busy)
            continue;
        co_await stopInstance(st, idx);
        ++stopped;
    }
    co_return stopped;
}

std::int64_t
Orchestrator::instanceCount(const std::string &name) const
{
    return static_cast<std::int64_t>(state(name).instances.size());
}

std::int64_t
Orchestrator::idleInstanceCount(const std::string &name) const
{
    const FunctionState &st = state(name);
    std::int64_t idle = 0;
    for (const auto &inst : st.instances)
        if (!inst->busy)
            ++idle;
    return idle;
}

std::vector<Bytes>
Orchestrator::instanceFootprints(const std::string &name) const
{
    const FunctionState &st = state(name);
    std::vector<Bytes> out;
    out.reserve(st.instances.size());
    for (const auto &inst : st.instances)
        out.push_back(inst->vm->footprint());
    return out;
}

bool
Orchestrator::hasRecord(const std::string &name) const
{
    return state(name).recorded;
}

bool
Orchestrator::artifactsLocal(const std::string &name) const
{
    return state(name).artifactsLocal;
}

const WorkingSetRecord &
Orchestrator::record(const std::string &name) const
{
    const FunctionState &st = state(name);
    VHIVE_ASSERT(st.recorded);
    return st.record;
}

const vmm::SnapshotManifests &
Orchestrator::buildManifests(const std::string &name)
{
    return ensureManifests(state(name), reap, vmmParams);
}

std::shared_ptr<const vmm::SnapshotManifests>
Orchestrator::manifests(const std::string &name) const
{
    return state(name).manifests;
}

double
Orchestrator::chunkResidency(const std::string &name) const
{
    const FunctionState &st = state(name);
    // Local artifacts serve the next cold start without any remote
    // fetch (even in chunked modes the local-path loaders win), so a
    // worker holding them is fully "resident" no matter how empty its
    // chunk cache is — prefetching for it would move dead bytes.
    if (st.artifactsLocal)
        return 1.0;
    if (st.manifests)
        return _localChunks.residentFraction(st.manifests->ws);
    return 0.0;
}

void
Orchestrator::invalidateRecord(const std::string &name)
{
    FunctionState &st = state(name);
    st.recorded = false;
    st.remoteStaged = false;
    st.artifactsLocal = false;
    // Admission counters describe the old record's content.
    st.tierAdmitCounts.clear();
    if (st.manifests) {
        // Delta re-record: keep the outgoing manifests — with their
        // staged-chunk references still held — so the re-record's
        // staging can diff against them. Unchanged chunks stay
        // referenced through the swap and are never re-uploaded; the
        // old references release once the delta lands. A second
        // invalidation before that point makes the intermediate
        // version unreachable, so its references go now.
        if (st.prevManifests) {
            _stagedChunks.releaseManifest(st.prevManifests->vmmState);
            _stagedChunks.releaseManifest(st.prevManifests->ws);
        }
        st.prevManifests = std::move(st.manifests);
        st.manifests.reset();
    }
}

void
Orchestrator::retireRecord(const std::string &name)
{
    FunctionState &st = state(name);
    VHIVE_ASSERT(st.activeColds == 0);
    for (auto &m : {st.manifests, st.prevManifests}) {
        if (!m)
            continue;
        _stagedChunks.releaseManifest(m->vmmState);
        _stagedChunks.releaseManifest(m->ws);
    }
    st.manifests.reset();
    st.prevManifests.reset();
    st.recorded = false;
    st.remoteStaged = false;
    st.recordVersion = 0;
    st.prefetchPinnedUntil = -1;
    st.tierAdmitCounts.clear();
    st.evictLocalArtifacts(fs);
    if (st.wsFile != storage::kInvalidFile)
        _tierBudget.invalidated(st.wsFile);
    if (st.traceFile != storage::kInvalidFile)
        _tierBudget.invalidated(st.traceFile);
}

void
Orchestrator::enforceSsdBudget(Time now)
{
    auto localBytes = [this](const FunctionState &st) {
        return vmmParams.vmmStateSize +
               std::max<Bytes>(st.record.wsFileBytes(), kPageSize);
    };
    Bytes resident = 0;
    for (const auto &entry : functions)
        if (entry.second.recorded && entry.second.artifactsLocal)
            resident += localBytes(entry.second);
    _peakSsdBytes = std::max(_peakSsdBytes, resident);
    if (reap.ssdBudget <= 0 || resident <= reap.ssdBudget)
        return;

    const storage::EvictionPolicy &pol =
        storage::evictionPolicyFor(reap.evictionPolicy);
    std::vector<storage::EvictionCandidate> cands;
    std::vector<FunctionState *> owners;
    for (auto &entry : functions) {
        FunctionState &st = entry.second;
        // Never evict mid-cold-start (the tiered chain reads
        // artifactsLocal across suspension points), and never drop
        // the only copy (no remote stage to refetch from).
        if (!st.recorded || !st.artifactsLocal ||
            st.activeColds > 0 || !st.remoteStaged)
            continue;
        storage::EvictionCandidate c;
        c.key = net::placementScope(entry.first);
        c.bytes = localBytes(st);
        c.lruSeq = st.artifactLruSeq;
        c.shares = static_cast<std::int64_t>(st.instances.size());
        c.pinnedUntil = st.prefetchPinnedUntil;
        cands.push_back(c);
        owners.push_back(&st);
    }
    while (resident > reap.ssdBudget && !cands.empty()) {
        std::ptrdiff_t v = pol.pickVictim(cands, now);
        VHIVE_ASSERT(v >= 0);
        auto vi = static_cast<std::size_t>(v);
        FunctionState &st = *owners[vi];
        resident -= cands[vi].bytes;
        _ssdEvictedBytes += cands[vi].bytes;
        ++_ssdEvictions;
        st.evictLocalArtifacts(fs);
        if (st.wsFile != storage::kInvalidFile)
            _tierBudget.invalidated(st.wsFile);
        if (st.traceFile != storage::kInvalidFile)
            _tierBudget.invalidated(st.traceFile);
        cands[vi] = cands.back();
        cands.pop_back();
        owners[vi] = owners.back();
        owners.pop_back();
    }
}

void
Orchestrator::evictLocalArtifacts(const std::string &name)
{
    state(name).evictLocalArtifacts(fs);
}

const FunctionStats &
Orchestrator::stats(const std::string &name) const
{
    return state(name).stats;
}

void
Orchestrator::flushHostCaches()
{
    fs.dropCaches();
}

Bytes
Orchestrator::totalResidentBytes() const
{
    Bytes total = 0;
    for (const auto &entry : functions)
        for (const auto &inst : entry.second.instances)
            total += inst->vm->footprint();
    return total;
}

sim::Task<LatencyBreakdown>
Orchestrator::preWarm(const std::string &name, ColdStartMode mode)
{
    FunctionState &st = state(name);
    for (const auto &inst : st.instances) {
        if (inst->warming ||
            (!inst->busy &&
             inst->vm->state() == vmm::VmState::Running)) {
            // Already warm (or getting there): nothing to do.
            co_return LatencyBreakdown{};
        }
    }
    loader::SnapshotLoader &ld = _loaders.loaderFor(mode);
    if ((ld.needsRecord() && !st.recorded) ||
        (ld.needsSnapshot() && !st.hasSnapshot)) {
        // Nothing recorded/captured to warm from yet: the function's
        // first real invocation must run the record phase itself.
        co_return LatencyBreakdown{};
    }
    InvokeOptions opts;
    opts.keepWarm = true;
    opts.forceCold = true;
    opts.warmupOnly = true;
    co_return co_await invoke(name, mode, opts);
}

sim::Task<Bytes>
Orchestrator::backgroundPrefetch(const std::string &name,
                                 Time pin_until)
{
    FunctionState &st = state(name);
    if (!st.recorded || _bgPrefetching.count(name) > 0)
        co_return 0;
    _bgPrefetching.insert(name);
    if (pin_until >= 0) {
        // Shield the prefetched bytes (chunks, page-cache segments,
        // and the SSD artifact copy) from budget eviction until the
        // predicted invocation window passes.
        st.prefetchPinnedUntil =
            std::max(st.prefetchPinnedUntil, pin_until);
        if (st.wsFile != storage::kInvalidFile)
            _tierBudget.pinFileUntil(st.wsFile, pin_until);
    }
    Bytes moved = 0;
    if (st.manifests) {
        // Content-addressed path: paced background fetch of every WS
        // chunk neither resident nor in flight, admitted into the
        // worker chunk cache where the next cold start finds them.
        mem::ChunkSourceParams p;
        p.decompressBandwidth = reap.chunkDecompressBandwidth;
        p.perChunkDecompress = reap.chunkDecompressOverhead;
        p.batchChunks = reap.chunkBatch;
        std::uint64_t scope = net::placementScope(name);
        mem::ChunkPageSource src(sim, artifactStore, st.manifests->ws,
                                 &_localChunks, p, &_chunkFlights,
                                 scope);
        src.retain(st.manifests);
        moved = co_await src.prefetchMissing(reap.bgWarmPace,
                                             pin_until);
    } else if (st.remoteStaged && !st.artifactsLocal) {
        // Blob path: background-GET the staged WS object and land it
        // in the local WS file (page cache + async writeback), the
        // same admission a tiered cold start would have paid on the
        // critical path.
        std::uint64_t h = net::placementScope(name);
        mem::RemoteObjectSource remote(artifactStore,
                                       net::PlacementKey{h, h});
        mem::PageFetchPipeline pipeline(sim, remote);
        Bytes len = st.record.wsFileBytes();
        co_await pipeline.fetchBackground(0, len, reap.bgWarmPace);
        co_await fs.writeBuffered(st.wsFile, 0, len);
        st.artifactsLocal = true;
        moved = len;
    }
    if (pin_until >= 0 && st.wsFile != storage::kInvalidFile) {
        // Re-apply for the segments the prefetch itself just created
        // (pinFileUntil covers only segments tracked at call time).
        _tierBudget.pinFileUntil(st.wsFile, pin_until);
    }
    if (moved > 0)
        ++_bgPrefetches;
    _bgPrefetching.erase(name);
    co_return moved;
}

std::int64_t
Orchestrator::warmingCount(const std::string &name) const
{
    const FunctionState &st = state(name);
    std::int64_t warming = 0;
    for (const auto &inst : st.instances)
        if (inst->warming)
            ++warming;
    return warming;
}

Bytes
Orchestrator::idleResidentBytes() const
{
    Bytes total = 0;
    for (const auto &entry : functions)
        for (const auto &inst : entry.second.instances)
            if (!inst->busy)
                total += inst->vm->footprint();
    return total;
}

std::int64_t
Orchestrator::idleInstanceTotal() const
{
    std::int64_t idle = 0;
    for (const auto &entry : functions)
        for (const auto &inst : entry.second.instances)
            if (!inst->busy)
                ++idle;
    return idle;
}

} // namespace vhive::core
