#include "core/ws_file.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/logging.hh"

namespace vhive::core {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'R', 'E', 'A', 'P',
                                                'T', 'R', 'C', '1'};

/** Zigzag-encode a signed delta so small negatives stay small. */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

size_t
varintSize(std::uint64_t v)
{
    size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

bool
getVarint(const std::vector<std::uint8_t> &in, size_t &pos,
          std::uint64_t &out)
{
    out = 0;
    int shift = 0;
    while (pos < in.size() && shift < 64) {
        std::uint8_t b = in[pos++];
        out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, size_t len)
{
    const auto &table = crcTable();
    std::uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::vector<std::int64_t>
WorkingSetRecord::sortedPages() const
{
    std::vector<std::int64_t> out = pages;
    std::sort(out.begin(), out.end());
    return out;
}

std::int64_t
WorkingSetRecord::wastedAgainst(
    const std::vector<std::int64_t> &touched) const
{
    std::int64_t wasted = 0;
    for (std::int64_t p : pages)
        if (!std::binary_search(touched.begin(), touched.end(), p))
            ++wasted;
    return wasted;
}

Bytes
TraceFileCodec::encodedSize(const WorkingSetRecord &record)
{
    size_t size = kMagic.size();
    size += varintSize(static_cast<std::uint64_t>(record.pages.size()));
    std::int64_t prev = 0;
    for (std::int64_t p : record.pages) {
        size += varintSize(zigzag(p - prev));
        prev = p;
    }
    size += 4; // crc
    return static_cast<Bytes>(size);
}

std::vector<std::uint8_t>
TraceFileCodec::encode(const WorkingSetRecord &record)
{
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<size_t>(encodedSize(record)));
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    putVarint(out, static_cast<std::uint64_t>(record.pages.size()));
    std::int64_t prev = 0;
    for (std::int64_t p : record.pages) {
        putVarint(out, zigzag(p - prev));
        prev = p;
    }
    std::uint32_t crc = crc32(out.data(), out.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    return out;
}

std::optional<WorkingSetRecord>
TraceFileCodec::decode(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kMagic.size() + 4)
        return std::nullopt;
    if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
        return std::nullopt;

    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 +
                                                   static_cast<size_t>(
                                                       i)])
                  << (8 * i);
    if (crc32(bytes.data(), bytes.size() - 4) != stored)
        return std::nullopt;

    size_t pos = kMagic.size();
    std::uint64_t count = 0;
    if (!getVarint(bytes, pos, count))
        return std::nullopt;
    WorkingSetRecord record;
    record.pages.reserve(count);
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t raw = 0;
        if (!getVarint(bytes, pos, raw))
            return std::nullopt;
        prev += unzigzag(raw);
        if (prev < 0)
            return std::nullopt;
        record.pages.push_back(prev);
    }
    if (pos != bytes.size() - 4)
        return std::nullopt;
    return record;
}

} // namespace vhive::core
