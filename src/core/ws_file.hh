/**
 * @file
 * REAP's on-disk artifacts (Sec. 5.1): the *trace file* holds the
 * guest-memory file offsets of the recorded working-set pages; the
 * *WS file* holds a compact contiguous copy of those pages so a
 * subsequent cold start can fetch the whole set with one read.
 *
 * The trace codec is a real binary format (magic, version,
 * delta-varint page numbers, CRC32) — the simulator mirrors its
 * content in memory and sizes the simulated files from the encoding.
 */

#ifndef VHIVE_CORE_WS_FILE_HH
#define VHIVE_CORE_WS_FILE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.hh"

namespace vhive::core {

/**
 * The recorded working set of one function: guest page numbers in
 * first-fault order (the order REAP writes them into the WS file).
 */
struct WorkingSetRecord
{
    std::vector<std::int64_t> pages;

    /** Number of recorded pages. */
    std::int64_t pageCount() const
    {
        return static_cast<std::int64_t>(pages.size());
    }

    /** Size of the WS file (one 4 KiB page per entry). */
    Bytes wsFileBytes() const { return pageCount() * kPageSize; }

    /** Sorted copy of the page list (for set operations). */
    std::vector<std::int64_t> sortedPages() const;

    /**
     * Pages in this record missing from @p touched (sorted): the
     * prefetched-but-unused "mispredictions" of Sec. 7.1.
     */
    std::int64_t
    wastedAgainst(const std::vector<std::int64_t> &touched) const;
};

/** Binary trace-file codec. */
class TraceFileCodec
{
  public:
    /** Serialized size of @p record without building the buffer. */
    static Bytes encodedSize(const WorkingSetRecord &record);

    /** Encode to the on-disk byte layout. */
    static std::vector<std::uint8_t> encode(const WorkingSetRecord &r);

    /**
     * Decode; std::nullopt on corruption (bad magic/version/CRC or
     * truncation).
     */
    static std::optional<WorkingSetRecord>
    decode(const std::vector<std::uint8_t> &bytes);
};

/** CRC32 (IEEE, reflected) over a byte buffer. */
std::uint32_t crc32(const std::uint8_t *data, size_t len);

} // namespace vhive::core

#endif // VHIVE_CORE_WS_FILE_HH
