/**
 * @file
 * The vHive-CRI orchestrator (Sec. 3.2, 5.2): controls the lifecycle
 * of all function instances on one worker, acts as the data-plane
 * router holding persistent gRPC connections to instances (the AWS
 * MicroManager role, Sec. 4.1), maintains snapshot/working-set files,
 * and implements REAP's record and prefetch phases with a dedicated
 * monitor task per instance.
 */

#ifndef VHIVE_CORE_ORCHESTRATOR_HH
#define VHIVE_CORE_ORCHESTRATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hh"
#include "core/options.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "host/cpu_pool.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/file_store.hh"
#include "vmm/microvm.hh"
#include "vmm/snapshot.hh"

namespace vhive::core {

/** Per-function aggregate statistics. */
struct FunctionStats
{
    std::int64_t coldInvocations = 0;
    std::int64_t warmInvocations = 0;
    std::int64_t recordPhases = 0;
    std::int64_t rerecordsTriggered = 0;
    std::int64_t bootInvocations = 0;
    std::int64_t layoutRerandomizations = 0;
};

/** Per-invocation options. */
struct InvokeOptions
{
    /** Keep the instance warm after the invocation. */
    bool keepWarm = false;

    /** Start a fresh instance even if a warm one exists. */
    bool forceCold = false;

    /**
     * Input selector; -1 draws the next input in sequence.
     * Distinct ids model distinct inputs (Sec. 4.4).
     */
    std::int64_t inputId = -1;

    /**
     * Flush the host page cache first — the paper's cold-start
     * methodology (Sec. 4.1) simulating long inter-invocation gaps.
     */
    bool flushPageCache = false;
};

/**
 * Orchestrates function instances on a single worker host.
 */
class Orchestrator
{
  public:
    Orchestrator(sim::Simulation &sim, storage::FileStore &fs,
                 host::CpuPool &host_cpus, host::CpuPool &orch_cpus,
                 net::ObjectStore &object_store,
                 const func::TraceGenerator &gen,
                 vmm::VmmParams vmm_params = vmm::VmmParams{},
                 ReapOptions reap = ReapOptions{},
                 mem::UffdParams uffd_params = mem::UffdParams{});

    /**
     * Bound the worker's instance memory (Sec. 4.3: colocation makes
     * memory the scarce resource). Before a cold start exceeds the
     * budget, the least-recently-used idle instance is deallocated;
     * 0 disables the bound (default).
     */
    void setMemoryCapacity(Bytes capacity) { memoryCapacity = capacity; }
    Bytes getMemoryCapacity() const { return memoryCapacity; }

    /** Idle instances evicted to satisfy the memory bound. */
    std::int64_t capacityEvictions() const { return _capacityEvictions; }

    Orchestrator(const Orchestrator &) = delete;
    Orchestrator &operator=(const Orchestrator &) = delete;

    /** Register a function for deployment. */
    void registerFunction(const func::FunctionProfile &profile);

    /** True if @p name is registered. */
    bool hasFunction(const std::string &name) const;

    /**
     * Boot a VM, let it fully initialize, and capture its snapshot
     * (done once per function, off the invocation path).
     */
    sim::Task<void> prepareSnapshot(const std::string &name);

    /**
     * Serve one invocation of @p name. Routes to an idle warm instance
     * when possible, otherwise performs a cold start in @p mode. When
     * a REAP-family mode lacks a recorded working set, this invocation
     * becomes the record phase (Sec. 5.2.1).
     */
    sim::Task<LatencyBreakdown> invoke(const std::string &name,
                                       ColdStartMode mode,
                                       InvokeOptions opts = InvokeOptions());

    /** Gracefully stop and reclaim all instances of @p name. */
    sim::Task<void> stopAllInstances(const std::string &name);

    /** Number of live (warm) instances of @p name. */
    std::int64_t instanceCount(const std::string &name) const;

    /** Number of live idle instances of @p name. */
    std::int64_t idleInstanceCount(const std::string &name) const;

    /** Resident footprints of all live instances of @p name. */
    std::vector<Bytes>
    instanceFootprints(const std::string &name) const;

    /** Whether a working-set record exists for @p name. */
    bool hasRecord(const std::string &name) const;

    /** Recorded working set (must exist). */
    const WorkingSetRecord &record(const std::string &name) const;

    /** Invalidate the record so the next cold start re-records. */
    void invalidateRecord(const std::string &name);

    /** Aggregate stats for @p name. */
    const FunctionStats &stats(const std::string &name) const;

    /** Drop the host page cache (cold-invocation methodology). */
    void flushHostCaches();

    /**
     * Sum of resident footprints of all live instances across all
     * functions — the worker's memory commitment (Sec. 4.3).
     */
    Bytes totalResidentBytes() const;

    const ReapOptions &reapOptions() const { return reap; }
    ReapOptions &reapOptions() { return reap; }

  private:
    /** One live instance: VM + (optional) uffd/monitor pair. */
    struct Instance
    {
        std::unique_ptr<vmm::MicroVm> vm;
        std::unique_ptr<mem::UserFaultFd> uffd;
        std::unique_ptr<Monitor> monitor;
        bool busy = false;
        std::int64_t residualBaseline = 0;
        std::int64_t lastInput = -1;
        Time lastUsedAt = 0;
    };

    struct FunctionState
    {
        func::FunctionProfile profile;
        vmm::SnapshotFiles snapshot;
        storage::FileId rootfs = storage::kInvalidFile;
        bool hasSnapshot = false;
        storage::FileId wsFile = storage::kInvalidFile;
        storage::FileId traceFile = storage::kInvalidFile;
        WorkingSetRecord record;
        bool recorded = false;
        std::int64_t nextInput = 0;
        std::vector<std::unique_ptr<Instance>> instances;
        FunctionStats stats;
    };

    FunctionState &state(const std::string &name);
    const FunctionState &state(const std::string &name) const;

    std::int64_t pickInput(FunctionState &st,
                           const InvokeOptions &opts);

    sim::Task<LatencyBreakdown>
    invokeWarm(FunctionState &st, Instance &inst,
               const func::InvocationTrace &trace);

    sim::Task<LatencyBreakdown>
    coldBoot(FunctionState &st, Instance &inst,
             const func::InvocationTrace &trace,
             const InvokeOptions &opts);

    sim::Task<LatencyBreakdown>
    coldVanilla(FunctionState &st, Instance &inst,
                const func::InvocationTrace &trace,
                const InvokeOptions &opts);

    sim::Task<LatencyBreakdown>
    coldRecord(FunctionState &st, Instance &inst,
               const func::InvocationTrace &trace,
               const InvokeOptions &opts);

    sim::Task<LatencyBreakdown>
    coldPrefetch(FunctionState &st, Instance &inst, ColdStartMode mode,
                 const func::InvocationTrace &trace,
                 const InvokeOptions &opts);

    /** Fetch the WS file (mode-dependent path); *out = fetch time. */
    sim::Task<void> fetchWorkingSet(FunctionState &st,
                                    ColdStartMode mode, Duration *out);

    /** Eagerly install the recorded set into @p inst's guest memory. */
    sim::Task<void> installWorkingSet(FunctionState &st,
                                      Instance &inst);

    /** ParallelPageFaults design point: worker-based page fetch. */
    sim::Task<void> parallelFetchInstall(FunctionState &st,
                                         Instance &inst);

    /** One ParallelPageFaults worker: strided slice of the record. */
    sim::Task<void> parallelFetchWorker(FunctionState &st,
                                        Instance &inst, size_t begin,
                                        size_t stride,
                                        sim::Latch *done);

    /** Persist trace + WS files after a record phase. */
    sim::Task<void> finalizeRecord(FunctionState &st,
                                   const WorkingSetRecord &rec);

    /** Retire one instance (stop monitor, destroy VM). */
    sim::Task<void> stopInstance(FunctionState &st, size_t index);

    /** Retire the instance identified by pointer. */
    sim::Task<void> stopInstanceByPtr(FunctionState &st,
                                      Instance *inst);

    /** Allocate a fresh Instance slot for @p st. */
    Instance &createInstance(FunctionState &st);

    /** Create the function's rootfs image file if absent. */
    void ensureRootfs(FunctionState &st);

    /**
     * Evict LRU idle instances until @p needed more bytes fit under
     * the capacity bound (best effort; busy instances are never
     * evicted).
     */
    sim::Task<void> makeRoom(Bytes needed);

    sim::Simulation &sim;
    storage::FileStore &fs;
    host::CpuPool &hostCpus;
    host::CpuPool &orchCpus;
    net::ObjectStore &objectStore;
    const func::TraceGenerator &gen;
    vmm::VmmParams vmmParams;
    ReapOptions reap;
    mem::UffdParams uffdParams;
    std::map<std::string, FunctionState> functions;
    Bytes memoryCapacity = 0;
    std::int64_t _capacityEvictions = 0;

    /** Control-plane CPU cost of handling one cold start. */
    static constexpr Duration kControlPlaneCost = msec(2);
};

} // namespace vhive::core

#endif // VHIVE_CORE_ORCHESTRATOR_HH
