/**
 * @file
 * The vHive-CRI orchestrator (Sec. 3.2, 5.2): controls the lifecycle
 * of all function instances on one worker, acts as the data-plane
 * router holding persistent gRPC connections to instances (the AWS
 * MicroManager role, Sec. 4.1), and routes cold starts to the
 * SnapshotLoader registered for the requested mode. The cold-start
 * strategies themselves live in core/loader/ — the orchestrator only
 * does admission, warm routing, loader dispatch, and instance
 * lifecycle.
 */

#ifndef VHIVE_CORE_ORCHESTRATOR_HH
#define VHIVE_CORE_ORCHESTRATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/function_state.hh"
#include "core/loader/loader.hh"
#include "core/options.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "func/trace_gen.hh"
#include "host/cpu_pool.hh"
#include "mem/chunk_source.hh"
#include "mem/tier_budget.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/chunk_store.hh"
#include "storage/file_store.hh"
#include "vmm/microvm.hh"
#include "vmm/snapshot.hh"

namespace vhive::core {

/**
 * Orchestrates function instances on a single worker host.
 */
class Orchestrator
{
  public:
    /**
     * @param object_store Serves function *input* payloads (the
     * MinIO-on-the-same-host role, Sec. 6.1).
     * @param artifact_store Serves snapshot/WS artifact staging and
     * remote cold-start fetches; null = use @p object_store for both
     * (the single-store historical wiring). The cluster layer passes
     * the fleet-shared store here so artifact traffic and input
     * traffic stop sharing one service.
     */
    Orchestrator(sim::Simulation &sim, storage::FileStore &fs,
                 host::CpuPool &host_cpus, host::CpuPool &orch_cpus,
                 net::ObjectStore &object_store,
                 const func::TraceGenerator &gen,
                 vmm::VmmParams vmm_params = vmm::VmmParams{},
                 ReapOptions reap = ReapOptions{},
                 mem::UffdParams uffd_params = mem::UffdParams{},
                 net::ArtifactStore *artifact_store = nullptr);

    /**
     * Bound the worker's instance memory (Sec. 4.3: colocation makes
     * memory the scarce resource). Before a cold start exceeds the
     * budget, the least-recently-used idle instance is deallocated;
     * 0 disables the bound (default).
     */
    void setMemoryCapacity(Bytes capacity) { memoryCapacity = capacity; }
    Bytes getMemoryCapacity() const { return memoryCapacity; }

    /** Idle instances evicted to satisfy the memory bound. */
    std::int64_t capacityEvictions() const { return _capacityEvictions; }

    Orchestrator(const Orchestrator &) = delete;
    Orchestrator &operator=(const Orchestrator &) = delete;

    /** Register a function for deployment. */
    void registerFunction(const func::FunctionProfile &profile);

    /** True if @p name is registered. */
    bool hasFunction(const std::string &name) const;

    /**
     * Boot a VM, let it fully initialize, and capture its snapshot
     * (done once per function, off the invocation path).
     */
    sim::Task<void> prepareSnapshot(const std::string &name);

    /** Snapshots actually built on this worker (prepareSnapshot). */
    std::int64_t snapshotBuilds() const { return _snapshotBuilds; }

    /**
     * Adopt snapshot/WS artifacts another worker built and staged into
     * the shared object store (cluster::SnapshotRegistry fan-out).
     * Control-plane metadata only — no simulated time passes: the
     * local file entries are created at the staged sizes, the record
     * is shared, and `FunctionState::artifactsLocal` stays false so
     * the first cold start pulls the bytes through the remote tier
     * (TieredReap) or bulk GETs (RemoteReap). On the worker that built
     * and recorded the artifacts this only marks them remote-staged.
     */
    void adoptStagedArtifacts(
        const std::string &name, const WorkingSetRecord &record,
        std::shared_ptr<const vmm::SnapshotManifests> manifests =
            nullptr);

    /**
     * Serve one invocation of @p name. Routes to an idle warm instance
     * when possible, otherwise dispatches the SnapshotLoader registered
     * for @p mode. When a record-requiring mode lacks a recorded
     * working set, this invocation becomes the record phase
     * (Sec. 5.2.1).
     */
    sim::Task<LatencyBreakdown> invoke(const std::string &name,
                                       ColdStartMode mode,
                                       InvokeOptions opts = InvokeOptions());

    /**
     * Control-plane pre-warm: run @p mode's cold path with
     * InvokeOptions::warmupOnly — restore, install the working set,
     * resume — but serve no invocation, leaving the instance warm and
     * idle. No-op when an idle or warming instance already exists. An
     * invoke() arriving while the pre-warm is mid-flight waits on the
     * instance's ready gate and lands warm (a partially-warmed start).
     */
    sim::Task<LatencyBreakdown> preWarm(const std::string &name,
                                        ColdStartMode mode);

    /**
     * Control-plane chunk/artifact prefetch: warm this worker's caches
     * for @p name in the background without starting an instance.
     * Content-addressed functions fetch their missing WS-manifest
     * chunks (ChunkPageSource::prefetchMissing, paced); blob-staged
     * functions without a local artifact copy background-fetch the WS
     * object through the tiered admission path. Requires a recorded
     * working set (no-op otherwise). @p pin_until, when >= 0, shields
     * the prefetched bytes from budget eviction (PrefetchPinned
     * policy) until the predicted window passes. @return bytes moved.
     */
    sim::Task<Bytes> backgroundPrefetch(const std::string &name,
                                        Time pin_until = -1);

    /** Instances of @p name with a pre-warm currently in flight. */
    std::int64_t warmingCount(const std::string &name) const;

    /** Pre-warmed instances retired without ever serving. */
    std::int64_t wastedPreWarms() const { return _wastedPreWarms; }

    /** Background prefetches performed (backgroundPrefetch calls). */
    std::int64_t backgroundPrefetches() const { return _bgPrefetches; }

    /** Resident bytes held by idle (warm, not busy) instances. */
    Bytes idleResidentBytes() const;

    /** Idle (warm, not busy) instances across all functions. */
    std::int64_t idleInstanceTotal() const;

    /** Gracefully stop and reclaim all instances of @p name. */
    sim::Task<void> stopAllInstances(const std::string &name);

    /**
     * Stop only the idle instances of @p name, leaving busy ones to
     * finish their in-flight invocations. This is the autoscaler's
     * scale-down primitive: the keep-alive janitor may fire while an
     * invocation is mid-flight, and reclaiming the busy instance under
     * it would be a use-after-free in a real control plane (and an
     * assertion failure here). @return instances stopped.
     */
    sim::Task<std::int64_t> stopIdleInstances(const std::string &name);

    /** Number of live (warm) instances of @p name. */
    std::int64_t instanceCount(const std::string &name) const;

    /** Number of live idle instances of @p name. */
    std::int64_t idleInstanceCount(const std::string &name) const;

    /** Resident footprints of all live instances of @p name. */
    std::vector<Bytes>
    instanceFootprints(const std::string &name) const;

    /** Whether a working-set record exists for @p name. */
    bool hasRecord(const std::string &name) const;

    /** Whether @p name's artifacts have a valid local-SSD copy. */
    bool artifactsLocal(const std::string &name) const;

    /** Recorded working set (must exist). */
    const WorkingSetRecord &record(const std::string &name) const;

    /**
     * Build (once) and return @p name's chunk manifests under this
     * worker's chunking knobs. Requires a recorded working set.
     */
    const vmm::SnapshotManifests &
    buildManifests(const std::string &name);

    /** @p name's chunk manifests; null until built. */
    std::shared_ptr<const vmm::SnapshotManifests>
    manifests(const std::string &name) const;

    /**
     * Fraction of @p name's WS-manifest chunks resident in this
     * worker's chunk cache — the locality signal chunk-aware routing
     * weighs. Falls back to artifactsLocal (0 or 1) for functions
     * without manifests (non-chunked modes).
     */
    double chunkResidency(const std::string &name) const;

    /**
     * Worker-resident chunk cache, shared across functions (chunks
     * pulled remotely by any cold start are served locally after).
     */
    storage::ChunkStore &localChunkCache() { return _localChunks; }
    const storage::ChunkStore &localChunkCache() const
    {
        return _localChunks;
    }

    /** Staged-chunk index of this worker's own object store. */
    storage::ChunkStore &stagedChunkIndex() { return _stagedChunks; }
    const storage::ChunkStore &stagedChunkIndex() const
    {
        return _stagedChunks;
    }

    /**
     * Invalidate the record so the next cold start re-records. The
     * current manifests (if any) are retained as the *previous*
     * version — with their staged-chunk references still held — so the
     * re-record's staging can diff against them and move only the
     * changed chunks (delta manifests); the old references release
     * once the delta lands.
     */
    void invalidateRecord(const std::string &name);

    /**
     * Retire @p name's record for good (fleet GC): release every
     * staged-chunk reference the current and previous manifests hold,
     * drop the local artifact copy, and reset the record version. The
     * caller must have stopped the function's instances first (no
     * cold start may be in flight). Unlike invalidateRecord, nothing
     * is kept for delta diffing — the function is gone.
     */
    void retireRecord(const std::string &name);

    /**
     * Enforce the local-SSD artifact budget (ReapOptions::ssdBudget):
     * while the summed artifact bytes of functions with a local copy
     * exceed the budget, evict the policy's victim via
     * evictLocalArtifacts. Functions mid-cold-start, or whose only
     * copy is local (never remote-staged), are never evicted. Called
     * after every cold start; also callable directly by tests.
     */
    void enforceSsdBudget(Time now);

    /** Local-SSD artifact copies evicted by the SSD budget. */
    std::int64_t ssdEvictions() const { return _ssdEvictions; }

    /** Bytes those evictions dropped. */
    Bytes ssdEvictedBytes() const { return _ssdEvictedBytes; }

    /** High-water mark of summed local artifact bytes. */
    Bytes peakSsdBytes() const { return _peakSsdBytes; }

    /** The worker's page-cache tier budget tracker. */
    mem::TierCacheBudget &tierBudget() { return _tierBudget; }
    const mem::TierCacheBudget &tierBudget() const
    {
        return _tierBudget;
    }

    /**
     * Drop the local-SSD copy of @p name's snapshot artifacts (the
     * record itself stays valid). Models a fresh worker whose only
     * copy lives in the remote store, or local artifact GC; the next
     * tiered cold start falls through to the remote tier and
     * re-admits the bytes locally.
     */
    void evictLocalArtifacts(const std::string &name);

    /** Aggregate stats for @p name. */
    const FunctionStats &stats(const std::string &name) const;

    /** Drop the host page cache (cold-invocation methodology). */
    void flushHostCaches();

    /**
     * Sum of resident footprints of all live instances across all
     * functions — the worker's memory commitment (Sec. 4.3).
     */
    Bytes totalResidentBytes() const;

    const ReapOptions &reapOptions() const { return reap; }
    ReapOptions &reapOptions() { return reap; }

    /**
     * The cold-start strategy registry — the extension point: swap a
     * built-in loader or install one for a new mode here.
     */
    loader::LoaderRegistry &loaders() { return _loaders; }
    const loader::LoaderRegistry &loaders() const { return _loaders; }

    /**
     * Install a fault plan on this worker's cold-start path; @p tag
     * is the registry key WorkerCrash specs are matched against
     * (convention: "worker/<i>"). A cold start rolled inside an
     * active crash window pays the window's magnitude in milliseconds
     * of lost work, tears its instance down, and returns a breakdown
     * with crashed set — the cluster layer retries elsewhere. Null
     * detaches; the plan is borrowed and must outlive the
     * orchestrator (or be detached first).
     */
    void
    setFaultPlan(sim::FaultPlan *plan, std::string tag = "worker")
    {
        faults = plan;
        faultTag = std::move(tag);
    }

    /** The installed fault plan (null = none). */
    sim::FaultPlan *faultPlan() { return faults; }

  private:
    FunctionState &state(const std::string &name);
    const FunctionState &state(const std::string &name) const;

    std::int64_t pickInput(FunctionState &st,
                           const InvokeOptions &opts);

    sim::Task<LatencyBreakdown>
    invokeWarm(FunctionState &st, Instance &inst,
               const func::InvocationTrace &trace);

    /** Retire one instance (stop monitor, destroy VM). */
    sim::Task<void> stopInstance(FunctionState &st, size_t index);

    /** Retire the instance identified by pointer. */
    sim::Task<void> stopInstanceByPtr(FunctionState &st,
                                      Instance *inst);

    /** Allocate a fresh Instance slot for @p st. */
    Instance &createInstance(FunctionState &st);

    /**
     * Evict LRU idle instances until @p needed more bytes fit under
     * the capacity bound (best effort; busy instances are never
     * evicted).
     */
    sim::Task<void> makeRoom(Bytes needed);

    sim::Simulation &sim;
    storage::FileStore &fs;
    host::CpuPool &hostCpus;
    host::CpuPool &orchCpus;
    net::ObjectStore &objectStore;
    net::ArtifactStore &artifactStore;
    const func::TraceGenerator &gen;
    vmm::VmmParams vmmParams;
    ReapOptions reap;
    mem::UffdParams uffdParams;
    loader::LoaderRegistry _loaders;
    std::map<std::string, FunctionState> functions;
    storage::ChunkStore _localChunks;
    storage::ChunkStore _stagedChunks;
    mem::ChunkFlights _chunkFlights;
    mem::TierCacheBudget _tierBudget;
    Bytes memoryCapacity = 0;

    /** Installed fault plan (borrowed; null = fault-free). */
    sim::FaultPlan *faults = nullptr;

    /** Registry key crash faults are rolled under. */
    std::string faultTag = "worker";

    std::int64_t _capacityEvictions = 0;
    std::int64_t _snapshotBuilds = 0;
    std::uint64_t _nextInstanceId = 0;
    std::int64_t _wastedPreWarms = 0;
    std::int64_t _bgPrefetches = 0;
    std::int64_t _ssdEvictions = 0;
    Bytes _ssdEvictedBytes = 0;
    Bytes _peakSsdBytes = 0;

    /** Recency counter feeding FunctionState::artifactLruSeq. */
    std::uint64_t _artifactLru = 0;

    /** Functions with a background prefetch in flight (single-flight). */
    std::set<std::string> _bgPrefetching;

    /** Control-plane CPU cost of handling one cold start. */
    static constexpr Duration kControlPlaneCost = msec(2);
};

} // namespace vhive::core

#endif // VHIVE_CORE_ORCHESTRATOR_HH
