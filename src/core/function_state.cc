#include "core/function_state.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::core {

storage::FileId
FunctionState::ensureRootfs(storage::FileStore &fs)
{
    if (rootfs == storage::kInvalidFile)
        rootfs = fs.createFile(profile.name + "/rootfs",
                               profile.rootfsImage);
    return rootfs;
}

std::pair<Bytes, Bytes>
FunctionState::ensureArtifactFiles(storage::FileStore &fs)
{
    Bytes ws_bytes = std::max<Bytes>(record.wsFileBytes(), kPageSize);
    Bytes trace_bytes =
        std::max<Bytes>(TraceFileCodec::encodedSize(record), 1);
    if (wsFile == storage::kInvalidFile) {
        wsFile = fs.createFile(profile.name + "/ws", ws_bytes);
        traceFile =
            fs.createFile(profile.name + "/trace", trace_bytes);
    } else {
        fs.truncate(wsFile, ws_bytes);
        fs.truncate(traceFile, trace_bytes);
    }
    return {ws_bytes, trace_bytes};
}

const vmm::SnapshotManifests &
ensureManifests(FunctionState &st, const ReapOptions &reap,
                const vmm::VmmParams &vmm)
{
    VHIVE_ASSERT(st.recorded);
    if (!st.manifests) {
        vmm::ChunkingModel model;
        model.chunkBytes = reap.chunkBytes;
        model.compression = reap.chunkCompression;
        model.compressRatio = reap.chunkCompressRatio;
        model.crossFunctionDupRatio = reap.chunkDupRatio;
        model.sharedPoolBytes = reap.chunkSharedPoolBytes;
        model.recordVersion = std::max<std::int64_t>(st.recordVersion, 1);
        model.rerecordChurn = reap.rerecordChurn;
        // Same minimum sizing as ensureArtifactFiles so the chunked
        // and blob transfer paths describe identical artifact bytes.
        Bytes ws_bytes =
            std::max<Bytes>(st.record.wsFileBytes(), kPageSize);
        st.manifests = std::make_shared<const vmm::SnapshotManifests>(
            vmm::buildSnapshotManifests(st.profile.name,
                                        vmm.vmmStateSize, ws_bytes,
                                        model));
    }
    return *st.manifests;
}

void
FunctionState::evictLocalArtifacts(storage::FileStore &fs)
{
    artifactsLocal = false;
    if (wsFile != storage::kInvalidFile)
        fs.dropFileCaches(wsFile);
    if (traceFile != storage::kInvalidFile)
        fs.dropFileCaches(traceFile);
}

} // namespace vhive::core
