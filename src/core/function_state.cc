#include "core/function_state.hh"

#include <algorithm>

namespace vhive::core {

storage::FileId
FunctionState::ensureRootfs(storage::FileStore &fs)
{
    if (rootfs == storage::kInvalidFile)
        rootfs = fs.createFile(profile.name + "/rootfs",
                               profile.rootfsImage);
    return rootfs;
}

std::pair<Bytes, Bytes>
FunctionState::ensureArtifactFiles(storage::FileStore &fs)
{
    Bytes ws_bytes = std::max<Bytes>(record.wsFileBytes(), kPageSize);
    Bytes trace_bytes =
        std::max<Bytes>(TraceFileCodec::encodedSize(record), 1);
    if (wsFile == storage::kInvalidFile) {
        wsFile = fs.createFile(profile.name + "/ws", ws_bytes);
        traceFile =
            fs.createFile(profile.name + "/trace", trace_bytes);
    } else {
        fs.truncate(wsFile, ws_bytes);
        fs.truncate(traceFile, trace_bytes);
    }
    return {ws_bytes, trace_bytes};
}

void
FunctionState::evictLocalArtifacts(storage::FileStore &fs)
{
    artifactsLocal = false;
    if (wsFile != storage::kInvalidFile)
        fs.dropFileCaches(wsFile);
    if (traceFile != storage::kInvalidFile)
        fs.dropFileCaches(traceFile);
}

} // namespace vhive::core
