#include "core/function_state.hh"

namespace vhive::core {

storage::FileId
FunctionState::ensureRootfs(storage::FileStore &fs)
{
    if (rootfs == storage::kInvalidFile)
        rootfs = fs.createFile(profile.name + "/rootfs",
                               profile.rootfsImage);
    return rootfs;
}

} // namespace vhive::core
