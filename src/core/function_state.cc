#include "core/function_state.hh"

namespace vhive::core {

storage::FileId
FunctionState::ensureRootfs(storage::FileStore &fs)
{
    if (rootfs == storage::kInvalidFile)
        rootfs = fs.createFile(profile.name + "/rootfs",
                               profile.rootfsImage);
    return rootfs;
}

void
FunctionState::evictLocalArtifacts(storage::FileStore &fs)
{
    artifactsLocal = false;
    if (wsFile != storage::kInvalidFile)
        fs.dropFileCaches(wsFile);
    if (traceFile != storage::kInvalidFile)
        fs.dropFileCaches(traceFile);
}

} // namespace vhive::core
