/**
 * @file
 * Shared per-function control-plane state. Historically private to the
 * Orchestrator; now a first-class structure so SnapshotLoaders (the
 * cold-start strategy layer) can operate on it directly.
 */

#ifndef VHIVE_CORE_FUNCTION_STATE_HH
#define VHIVE_CORE_FUNCTION_STATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/monitor.hh"
#include "core/options.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "mem/uffd.hh"
#include "sim/sync.hh"
#include "storage/file_store.hh"
#include "util/units.hh"
#include "vmm/microvm.hh"
#include "vmm/snapshot.hh"

namespace vhive::core {

/** Per-function aggregate statistics. */
struct FunctionStats
{
    std::int64_t coldInvocations = 0;
    std::int64_t warmInvocations = 0;
    std::int64_t recordPhases = 0;
    std::int64_t rerecordsTriggered = 0;
    std::int64_t bootInvocations = 0;
    std::int64_t layoutRerandomizations = 0;

    /** Cold starts torn down by an injected WorkerCrash fault. */
    std::int64_t crashes = 0;

    /** Pre-warm cold paths completed (warmupOnly; not invocations). */
    std::int64_t preWarms = 0;

    /** Invocations served warm by a pre-warmed instance's first use. */
    std::int64_t preWarmHits = 0;

    /**
     * Delta re-record staging (this worker's lazy path): re-stagings
     * performed, chunks/bytes actually re-uploaded, and chunks carried
     * over unchanged from the previous version. The fleet registry
     * keeps its own equivalents for build-once staging.
     */
    std::int64_t deltaRestages = 0;
    std::int64_t deltaChunksUploaded = 0;
    Bytes deltaBytesUploaded = 0;
    std::int64_t deltaChunksUnchanged = 0;
};

/** One live instance: VM + (optional) uffd/monitor pair. */
struct Instance
{
    std::unique_ptr<vmm::MicroVm> vm;
    std::unique_ptr<mem::UserFaultFd> uffd;
    std::unique_ptr<Monitor> monitor;
    bool busy = false;
    std::int64_t residualBaseline = 0;
    std::int64_t lastInput = -1;
    Time lastUsedAt = 0;

    /**
     * Pre-warm lifecycle (control plane). `warming` is set while the
     * warmupOnly cold path is still running; an invoke arriving then
     * waits on `readyGate` and lands on a partially-warmed instance
     * instead of starting a full cold one. `preWarmed` marks a
     * completed pre-warm that has not served yet — cleared (and
     * counted as a hit) on first serve, or counted as wasted if the
     * instance is retired still holding it.
     */
    bool warming = false;
    bool preWarmed = false;
    std::shared_ptr<sim::Gate> readyGate;

    /**
     * Orchestrator-unique id, never reused (unlike the instance's
     * address). Anything that re-identifies an instance across a
     * suspension point must match on this, not on the pointer.
     */
    std::uint64_t id = 0;
};

/**
 * Size of the artifact bundle a remote cold start stages into and
 * fetches from the object store: the serialized VMM/device state plus
 * the compact WS file. The single definition shared by the
 * RemoteReap/TieredReap staging path and the cluster's
 * SnapshotRegistry, so build-once staging and lazy per-worker staging
 * can never price the artifact differently.
 */
inline Bytes
stagedArtifactBytes(Bytes vmm_state_size, const WorkingSetRecord &rec)
{
    return vmm_state_size + rec.wsFileBytes();
}

/** Everything the control plane tracks about one deployed function. */
struct FunctionState
{
    func::FunctionProfile profile;
    vmm::SnapshotFiles snapshot;
    storage::FileId rootfs = storage::kInvalidFile;
    bool hasSnapshot = false;
    storage::FileId wsFile = storage::kInvalidFile;
    storage::FileId traceFile = storage::kInvalidFile;
    WorkingSetRecord record;
    bool recorded = false;

    /**
     * Whether the snapshot artifacts (WS file + VMM state) have a
     * valid local copy on this worker's SSD. Set by the record phase;
     * cleared when modelling a fresh worker whose only copy lives in
     * the remote store (TieredReap staging) or when experiments evict
     * local artifacts. Gates the page-cache and local-SSD tiers of
     * tiered fallback chains.
     */
    bool artifactsLocal = false;

    /**
     * Whether the current record's snapshot artifacts have been staged
     * into the remote object store (RemoteReap). Cleared whenever the
     * record is invalidated or re-recorded.
     */
    bool remoteStaged = false;

    /**
     * Content-addressed chunk recipes for the current record's
     * artifacts (DedupReap). Built lazily by ensureManifests() once a
     * record exists; shared with adopting workers under fleet staging;
     * reset whenever the record is invalidated or re-recorded (new
     * content means new chunk identities).
     */
    std::shared_ptr<const vmm::SnapshotManifests> manifests;

    /**
     * The previous record version's manifests, kept across a
     * re-record until the new version is staged: delta staging
     * references the new chunks *first* and releases these *after*,
     * so unchanged chunks never hit zero references (and are never
     * re-uploaded). Cleared once the delta lands, and by
     * invalidateRecord.
     */
    std::shared_ptr<const vmm::SnapshotManifests> prevManifests;

    /**
     * Monotonic record version: 1 after the first record phase,
     * incremented by every re-record. Salts the content identity of
     * function-unique chunks (ReapOptions::rerecordChurn), so a
     * re-recorded working set shares most — but not all — chunks with
     * its predecessor. Version <= 1 produces bit-identical manifests
     * to builds that never re-record.
     */
    std::int64_t recordVersion = 0;

    /**
     * Cold starts currently loading this function (in flight). The
     * SSD-budget enforcer never evicts a function's local artifacts
     * mid-cold-start — the tiered chain's contains()/admit() hooks
     * read artifactsLocal across suspension points.
     */
    std::int64_t activeColds = 0;

    /**
     * Soft prefetch shield for the SSD budget: a control-plane
     * prefetch warmed this function's artifacts for a predicted
     * window ending here; the PrefetchPinned policy keeps the local
     * copy until then. -1 = never prefetched.
     */
    Time prefetchPinnedUntil = -1;

    /**
     * Recency stamp for the SSD budget's LRU: bumped (from the
     * orchestrator's counter) each time a cold start uses the local
     * artifact copy.
     */
    std::uint64_t artifactLruSeq = 0;

    /**
     * Per-page remote-serve counters backing tiered admit-on-N-hits
     * (ReapOptions::admitAfterHits > 1): how many times each WS page
     * was served from below the warm tiers. Lives here because the
     * tiered chain is rebuilt per cold start while the threshold must
     * span cold starts; cleared whenever the record changes (the
     * counters describe the old content).
     */
    std::map<Bytes, int> tierAdmitCounts;

    std::int64_t nextInput = 0;
    std::vector<std::unique_ptr<Instance>> instances;
    FunctionStats stats;

    /**
     * Create the function's rootfs image file if absent (containerd
     * generates it from the OCI image via device-mapper, Sec. 6.1).
     * @return the rootfs file id.
     */
    storage::FileId ensureRootfs(storage::FileStore &fs);

    /**
     * Drop the local-SSD copy of the snapshot artifacts: clear
     * artifactsLocal and evict their cached pages. Shared by
     * Orchestrator::evictLocalArtifacts and TieredReap's fresh-worker
     * staging so the two invalidation paths cannot diverge.
     */
    void evictLocalArtifacts(storage::FileStore &fs);

    /**
     * Create (or resize) the ws/trace file entries to match `record`.
     * The single sizing rule shared by the record phase and the
     * registry's fan-out adoption, so artifact files can never be
     * sized differently on recorded vs adopting workers.
     * @return {ws file bytes, trace file bytes}.
     */
    std::pair<Bytes, Bytes> ensureArtifactFiles(storage::FileStore &fs);
};

/**
 * Build (once) the chunk manifests describing @p st's current record
 * under the ReapOptions chunking knobs. The single manifest-sizing
 * rule shared by the DedupReap loader's lazy staging and the cluster
 * registry's build-once staging, so the two paths can never chunk the
 * same artifact differently. Requires a recorded working set.
 */
const vmm::SnapshotManifests &
ensureManifests(FunctionState &st, const ReapOptions &reap,
                const vmm::VmmParams &vmm);

} // namespace vhive::core

#endif // VHIVE_CORE_FUNCTION_STATE_HH
