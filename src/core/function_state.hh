/**
 * @file
 * Shared per-function control-plane state. Historically private to the
 * Orchestrator; now a first-class structure so SnapshotLoaders (the
 * cold-start strategy layer) can operate on it directly.
 */

#ifndef VHIVE_CORE_FUNCTION_STATE_HH
#define VHIVE_CORE_FUNCTION_STATE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/monitor.hh"
#include "core/ws_file.hh"
#include "func/profile.hh"
#include "mem/uffd.hh"
#include "storage/file_store.hh"
#include "util/units.hh"
#include "vmm/microvm.hh"
#include "vmm/snapshot.hh"

namespace vhive::core {

/** Per-function aggregate statistics. */
struct FunctionStats
{
    std::int64_t coldInvocations = 0;
    std::int64_t warmInvocations = 0;
    std::int64_t recordPhases = 0;
    std::int64_t rerecordsTriggered = 0;
    std::int64_t bootInvocations = 0;
    std::int64_t layoutRerandomizations = 0;
};

/** One live instance: VM + (optional) uffd/monitor pair. */
struct Instance
{
    std::unique_ptr<vmm::MicroVm> vm;
    std::unique_ptr<mem::UserFaultFd> uffd;
    std::unique_ptr<Monitor> monitor;
    bool busy = false;
    std::int64_t residualBaseline = 0;
    std::int64_t lastInput = -1;
    Time lastUsedAt = 0;
};

/** Everything the control plane tracks about one deployed function. */
struct FunctionState
{
    func::FunctionProfile profile;
    vmm::SnapshotFiles snapshot;
    storage::FileId rootfs = storage::kInvalidFile;
    bool hasSnapshot = false;
    storage::FileId wsFile = storage::kInvalidFile;
    storage::FileId traceFile = storage::kInvalidFile;
    WorkingSetRecord record;
    bool recorded = false;

    /**
     * Whether the snapshot artifacts (WS file + VMM state) have a
     * valid local copy on this worker's SSD. Set by the record phase;
     * cleared when modelling a fresh worker whose only copy lives in
     * the remote store (TieredReap staging) or when experiments evict
     * local artifacts. Gates the page-cache and local-SSD tiers of
     * tiered fallback chains.
     */
    bool artifactsLocal = false;

    /**
     * Whether the current record's snapshot artifacts have been staged
     * into the remote object store (RemoteReap). Cleared whenever the
     * record is invalidated or re-recorded.
     */
    bool remoteStaged = false;

    std::int64_t nextInput = 0;
    std::vector<std::unique_ptr<Instance>> instances;
    FunctionStats stats;

    /**
     * Create the function's rootfs image file if absent (containerd
     * generates it from the OCI image via device-mapper, Sec. 6.1).
     * @return the rootfs file id.
     */
    storage::FileId ensureRootfs(storage::FileStore &fs);

    /**
     * Drop the local-SSD copy of the snapshot artifacts: clear
     * artifactsLocal and evict their cached pages. Shared by
     * Orchestrator::evictLocalArtifacts and TieredReap's fresh-worker
     * staging so the two invalidation paths cannot diverge.
     */
    void evictLocalArtifacts(storage::FileStore &fs);
};

} // namespace vhive::core

#endif // VHIVE_CORE_FUNCTION_STATE_HH
