/**
 * @file
 * The per-instance REAP monitor (Sec. 5.2): a lightweight task
 * (goroutine in the paper's implementation) that owns the instance's
 * user-fault fd, serves page faults from the guest-memory snapshot
 * file, and — in record mode — logs the faulted offsets to produce the
 * trace and WS files.
 */

#ifndef VHIVE_CORE_MONITOR_HH
#define VHIVE_CORE_MONITOR_HH

#include <cstdint>

#include "core/ws_file.hh"
#include "mem/guest_memory.hh"
#include "mem/uffd.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/file_store.hh"

namespace vhive::core {

/**
 * Serves an instance's page faults until told to shut down.
 *
 * In Record mode every serviced fault is appended to the working-set
 * record. In Prefetch mode the working set was installed eagerly
 * before the vCPUs resumed, so the monitor only sees faults to pages
 * missing from the stable set (Sec. 5.2.2) and serves them on demand.
 */
class Monitor
{
  public:
    enum class Mode { Record, Prefetch };

    Monitor(sim::Simulation &sim, storage::FileStore &fs,
            mem::UserFaultFd &uffd, mem::GuestMemory &guest,
            storage::FileId memory_file, Mode mode);

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    /**
     * The monitor loop; spawn this detached. Exits after receiving the
     * uffd shutdown sentinel and then opens doneGate().
     */
    sim::Task<void> run();

    /** Opened when the loop has exited (safe-teardown handshake). */
    sim::Gate &doneGate() { return done; }

    /** Faults served so far (excludes the shutdown sentinel). */
    std::int64_t servedFaults() const { return _servedFaults; }

    /** Pages installed on demand by this monitor. */
    std::int64_t servedPages() const { return _servedPages; }

    /** Record-mode output: pages in first-fault order. */
    const WorkingSetRecord &recorded() const { return record; }

    Mode mode() const { return _mode; }

  private:
    sim::Simulation &sim;
    storage::FileStore &fs;
    mem::UserFaultFd &uffd;
    mem::GuestMemory &guest;
    storage::FileId memoryFile;
    Mode _mode;
    sim::Gate done;
    WorkingSetRecord record;
    std::int64_t _servedFaults = 0;
    std::int64_t _servedPages = 0;
};

} // namespace vhive::core

#endif // VHIVE_CORE_MONITOR_HH
