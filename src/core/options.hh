/**
 * @file
 * Cold-start mode selection and REAP tuning knobs, plus the latency
 * breakdown structure the experiments report (Figs. 2, 7, 8).
 */

#ifndef VHIVE_CORE_OPTIONS_HH
#define VHIVE_CORE_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "storage/eviction.hh"
#include "util/units.hh"

namespace vhive::core {

/**
 * How the orchestrator starts a function with no warm instance
 * (Sec. 3.2 "several modes for cold function invocations" and the
 * Fig. 7 design walk).
 */
enum class ColdStartMode
{
    /** Boot a new VM from the root filesystem (no snapshot). */
    BootFromScratch,

    /** Vanilla Firecracker snapshots: lazy kernel paging (Sec. 2.3). */
    VanillaSnapshot,

    /**
     * Fig. 7 design point 2: use the trace file to fetch working-set
     * pages with parallel page-sized reads.
     */
    ParallelPageFaults,

    /**
     * Fig. 7 design point 3: fetch the compact WS file with one
     * buffered read (through the page cache).
     */
    WsFileCached,

    /** Full REAP: single O_DIRECT WS-file read + eager install. */
    Reap,

    /**
     * Sec. 7.1: REAP with the snapshot artifacts held in remote
     * disaggregated object storage. The VMM state and WS file arrive
     * as bulk object GETs over the datacenter network instead of local
     * disk reads; residual faults are still served locally from the
     * guest-memory snapshot image.
     */
    RemoteReap,

    /**
     * REAP over a tiered fallback chain (host page cache -> local SSD
     * -> remote object store) with warm-tier admission and a windowed
     * remote fetch shape (N in-flight ranged GETs). The Sec. 7.1
     * remote-placement design space as a first-class mode: a fresh
     * worker pays the remote path once, then serves later cold starts
     * from the tiers the fetch populated.
     */
    TieredReap,

    /**
     * TieredReap with the remote tier replaced by a content-addressed
     * chunk transfer: artifacts are split into fixed-size chunks keyed
     * by content hash ("How Low Can You Go?", arXiv:2109.13319),
     * staged into the store once per *distinct chunk* rather than once
     * per function, fetched as batched ranged GETs of their compressed
     * sizes, and served locally when any earlier cold start — of any
     * function — already pulled them into the worker's chunk cache.
     */
    DedupReap,

    /**
     * Background working-set warming (the Sec. 6.3 follow-on): the
     * TieredReap/DedupReap fetch path at background priority —
     * sequential AIMD windows, paced, one in flight — so warming
     * traffic yields fabric headroom to foreground cold starts. Used
     * directly as a mode, and by the control plane as the pre-warm
     * vehicle: an invocation arriving mid-warm waits for the warm to
     * finish (a partially-warmed start) instead of paying a full cold
     * path.
     */
    BackgroundWarm,
};

/** Human-readable mode name. */
const char *coldStartModeName(ColdStartMode mode);

/** Per-invocation options. */
struct InvokeOptions
{
    /** Keep the instance warm after the invocation. */
    bool keepWarm = false;

    /** Start a fresh instance even if a warm one exists. */
    bool forceCold = false;

    /**
     * Input selector; -1 draws the next input in sequence.
     * Distinct ids model distinct inputs (Sec. 4.4).
     */
    std::int64_t inputId = -1;

    /**
     * Flush the host page cache first — the paper's cold-start
     * methodology (Sec. 4.1) simulating long inter-invocation gaps.
     */
    bool flushPageCache = false;

    /**
     * Pre-warm: run the full cold-start path (restore + WS install)
     * but do not serve an invocation — the instance is left warm and
     * idle for a later request. Set by the control plane's pre-warm
     * actions; implies the invocation counters are not bumped.
     */
    bool warmupOnly = false;
};

/** REAP mechanism knobs (ablation points; defaults match the paper). */
struct ReapOptions
{
    /** Fetch the WS file with O_DIRECT (Sec. 5.2.3). */
    bool bypassPageCache = true;

    /** Pages installed per UFFDIO_COPY call during eager install. */
    std::int64_t installBatchPages = 64;

    /**
     * Issue the WS-file fetch concurrently with VMM-state restoration
     * (off by default: the paper's Fig. 7 segments are additive).
     */
    bool overlapFetchWithVmmLoad = false;

    /** Worker goroutines for the ParallelPageFaults design point. */
    int parallelPfWorkers = 16;

    /**
     * Sec. 7.2 adaptive policy: when the fraction of residual faults
     * exceeds the threshold, re-record the working set on the next
     * cold invocation.
     */
    bool adaptiveRerecord = false;
    double rerecordThreshold = 0.5;

    /**
     * Sec. 7.3 mitigation: re-randomize the guest memory placement
     * while installing the working set, defeating cross-clone ASLR
     * leakage. Costs extra per-page guest page-table rewrites during
     * the eager install.
     */
    bool rerandomizeLayout = false;

    /** Per-page cost of the layout re-randomization rewrite. */
    Duration rerandomizePerPage = static_cast<Duration>(900);

    // ------------------------------------------------ TieredReap knobs

    /** Include the page-cache tier in the fallback chain. */
    bool tieredPageCacheTier = true;

    /** Include the local-SSD tier in the fallback chain. */
    bool tieredLocalTier = true;

    /**
     * Model the first tiered cold start on a worker holding no local
     * artifact copy (cross-worker sharing via the store): staging
     * invalidates the local tiers, so the first fetch pays the remote
     * path and re-populates them through admission.
     */
    bool tieredFreshWorker = true;

    /** Bytes fetched from a lower tier populate the tiers above. */
    bool tieredAdmitOnMiss = true;

    /**
     * Window size for the tiered WS fetch. 0 = adaptive: the pipeline
     * AIMD-sizes windows from observed per-GET rtt/bandwidth
     * (PageFetchPipeline's adaptive mode). For one bulk read, use a
     * window >= the working-set size (the single-GET RemoteReap
     * shape).
     */
    Bytes tieredWindowBytes = 1 * kMiB;

    /** Concurrent windows in flight during the tiered WS fetch. */
    int tieredInFlight = 4;

    /**
     * Warm-tier admission threshold: a remotely served range is
     * admitted into the local tiers only on its Nth remote serve.
     * 1 (default) admits on first touch — the historical behaviour;
     * higher values keep one-shot ranges from polluting local tiers.
     */
    int admitAfterHits = 1;

    /**
     * Hedged-request straggler mitigation for the prefetch-family WS
     * fetch: a window GET still in flight this long after issue gets
     * a duplicate GET raced against it, and the window proceeds on
     * whichever lands first (see PageFetchPipeline::setHedgeDelay).
     * 0 (default) disables hedging — the historical fetch path,
     * bit-identical to builds without it.
     */
    Duration hedgeAfter = 0;

    // ------------------------------------------------- DedupReap knobs

    /** Chunk size of the content-addressed artifact layer. */
    Bytes chunkBytes = 64 * kKiB;

    /** Transfer chunks compressed (decompression charged on arrival). */
    bool chunkCompression = true;

    /** Mean compressed/raw ratio of chunk contents. */
    double chunkCompressRatio = 0.55;

    /**
     * Fraction of full chunks shared with the fleet-wide runtime-page
     * pool (identical bytes across functions). ~30-50% matches the
     * cross-function redundancy reported for language runtimes.
     */
    double chunkDupRatio = 0.35;

    /**
     * Size of the fleet-wide shared runtime-page pool the duplicate
     * chunks draw from (the guest kernel + agents + language-runtime
     * image every function's snapshot carries). Expressed in bytes so
     * the dedup opportunity is chunk-size-invariant.
     */
    Bytes chunkSharedPoolBytes = 24 * kMiB;

    /** Client-side chunk decompression rate (raw bytes/sec). */
    double chunkDecompressBandwidth = 3e9;

    /** Fixed per-chunk decompression dispatch cost. */
    Duration chunkDecompressOverhead = usec(4);

    /** Max chunks coalesced into one batched ranged GET. */
    int chunkBatch = 16;

    // -------------------------------------------- BackgroundWarm knobs

    /**
     * Pause between background-warm fetch windows (and between chunk
     * batches of a background chunk prefetch): the pacing that keeps
     * warming traffic from competing with foreground cold starts.
     */
    Duration bgWarmPace = msec(1);

    // ----------------------------------------- Cache-economics knobs

    /**
     * Byte budget of the host page-cache warm tier (tiered chains).
     * 0 (default) = unlimited — the historical behaviour. Enforced
     * worker-wide at page granularity.
     */
    Bytes pageCacheBudget = 0;

    /**
     * Byte budget of the local-SSD artifact tier: total bytes of
     * locally-held snapshot artifacts across functions. 0 = unlimited.
     * Enforced at function-artifact granularity (evicting a victim
     * function's local copy, as evictLocalArtifacts does).
     */
    Bytes ssdBudget = 0;

    /**
     * Byte budget (stored/compressed bytes) of the worker's resident
     * chunk cache (DedupReap). 0 = unlimited.
     */
    Bytes chunkCacheBudget = 0;

    /** Victim selection for every budgeted worker cache. */
    storage::EvictionPolicyKind evictionPolicy =
        storage::EvictionPolicyKind::Lru;

    /**
     * Delta re-record content churn: per re-record version, the
     * probability that a function-unique chunk's content changed since
     * the previous record. Shared-pool chunks never churn (the runtime
     * image is immutable). Only re-records (version >= 2) consult
     * this, so version-1 manifests are bit-identical to builds without
     * the knob.
     */
    double rerecordChurn = 0.25;
};

/**
 * Per-tier fetch accounting as reported at the orchestrator level
 * (mirror of mem::TierStats, kept separate so core/options.hh stays a
 * leaf header).
 */
struct TierBreakdown
{
    std::string tier;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t admissions = 0;
    Bytes bytes = 0;

    /** Bytes resident in the tier when this row was sampled. */
    Bytes residentBytes = 0;

    /** High-water mark of bytes resident in the tier. */
    Bytes peakResidentBytes = 0;

    /** Bytes evicted from the tier by budget pressure. */
    Bytes bytesEvicted = 0;

    Duration time = 0;
};

/** Per-invocation latency decomposition at the orchestrator level. */
struct LatencyBreakdown
{
    Duration loadVmm = 0;     ///< spawn + VMM/device state restore
    Duration connRestore = 0; ///< gRPC session + guest infra faults
    Duration processing = 0;  ///< request + function execution
    Duration fetchWs = 0;     ///< prefetch read (REAP/WsFile/ParPF)
    Duration installWs = 0;   ///< eager UFFDIO_COPY install
    Duration total = 0;       ///< end-to-end at the orchestrator

    bool cold = false;        ///< true if a new instance was started
    bool recordPhase = false; ///< true if this invocation recorded
    bool crashed = false;     ///< injected WorkerCrash tore this cold
                              ///< start down; total counts lost work
    bool preWarmHit = false;  ///< served warm by a pre-warmed instance
                              ///< on its first use (control plane)

    std::int64_t majorFaults = 0;    ///< faults taken by the instance
    std::int64_t residualFaults = 0; ///< monitor-served faults after
                                     ///< eager install (REAP modes)
    std::int64_t prefetchedPages = 0;
    std::int64_t wastedPrefetch = 0; ///< prefetched but never touched

    /**
     * Per-tier WS-fetch accounting; populated only by loaders whose
     * PageSource is a tiered fallback chain (TieredReap).
     */
    std::vector<TierBreakdown> tierHits;
};

} // namespace vhive::core

#endif // VHIVE_CORE_OPTIONS_HH
