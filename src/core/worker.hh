/**
 * @file
 * A complete worker host: disk, file store, CPU pools, object store,
 * trace generator and the vHive-CRI orchestrator, wired together with
 * the paper's evaluation-platform defaults (Sec. 6.1: 2x24-core Xeon,
 * 256 GB RAM, Intel SATA3 SSD). Benchmarks and examples construct one
 * Worker (or several, via the cluster module) and drive it.
 */

#ifndef VHIVE_CORE_WORKER_HH
#define VHIVE_CORE_WORKER_HH

#include <cstdint>

#include "core/options.hh"
#include "core/orchestrator.hh"
#include "func/trace_gen.hh"
#include "host/cpu_pool.hh"
#include "mem/uffd.hh"
#include "net/object_store.hh"
#include "sim/simulation.hh"
#include "storage/disk.hh"
#include "storage/file_store.hh"
#include "vmm/snapshot.hh"

namespace vhive::core {

/** Everything configurable about a worker host. */
struct WorkerConfig
{
    /** Root seed for all workload synthesis on this worker. */
    std::uint64_t seed = 0x76686976; // "vhiv"

    /** Logical cores (the paper's host has 48). */
    int hostCores = 48;

    /** Hardware threads for orchestrator goroutines (Sec. 6.2). */
    int orchestratorThreads = 16;

    /** Snapshot storage device. */
    storage::DiskParams disk = storage::DiskParams::ssd();

    /** Host I/O path calibration. */
    storage::IoPathParams io{};

    /** Hypervisor cost constants. */
    vmm::VmmParams vmm{};

    /** userfaultfd cost constants. */
    mem::UffdParams uffd{};

    /** Object store (function inputs). */
    net::ObjectStoreParams objectStore{};

    /** REAP knobs. */
    ReapOptions reap{};

    /**
     * Worker memory budget for function instances (0 = unlimited).
     * When bound, cold starts evict LRU idle instances (Sec. 4.3).
     */
    Bytes instanceMemoryCapacity = 0;
};

/**
 * One worker host. Construction order matters: the simulation must be
 * declared before (and thus destroyed after) the Worker so detached
 * monitor tasks are reclaimed safely.
 */
class Worker
{
  public:
    /**
     * @param shared_store When non-null, the worker's loaders stage
     * and fetch snapshot/WS *artifacts* through this fleet-shared
     * store (one disaggregated service serving every worker,
     * Sec. 7.1). Function *input* payloads always flow through the
     * worker-private store — the two roles are distinct services in a
     * real deployment, and conflating them would let input traffic
     * masquerade as artifact bytes moved. The cluster layer passes
     * its shared store here when cross-worker snapshot sharing is
     * enabled.
     */
    explicit Worker(sim::Simulation &sim,
                    WorkerConfig config = WorkerConfig{},
                    net::ArtifactStore *shared_store = nullptr);

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    Orchestrator &orchestrator() { return orch; }
    storage::DiskDevice &disk() { return _disk; }
    storage::FileStore &fileStore() { return fs; }
    host::CpuPool &hostCpus() { return _hostCpus; }
    host::CpuPool &orchestratorCpus() { return _orchCpus; }

    /** The worker-private store (inputs; artifacts too standalone). */
    net::ObjectStore &objectStore() { return s3; }

    /** The store artifacts stage into (shared one when given). */
    net::ArtifactStore &artifactStore() { return *artifacts; }

    const func::TraceGenerator &traceGenerator() const { return gen; }
    const WorkerConfig &config() const { return cfg; }

  private:
    sim::Simulation &sim;
    WorkerConfig cfg;
    storage::DiskDevice _disk;
    storage::FileStore fs;
    host::CpuPool _hostCpus;
    host::CpuPool _orchCpus;
    net::ObjectStore s3;
    /** Points at s3, or at the fleet-shared store when one was given. */
    net::ArtifactStore *artifacts;
    func::TraceGenerator gen;
    Orchestrator orch;
};

} // namespace vhive::core

#endif // VHIVE_CORE_WORKER_HH
