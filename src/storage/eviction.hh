/**
 * @file
 * Pluggable eviction policies for byte-budgeted caches (ROADMAP item
 * 3). Every cache with a byte budget — warm page/SSD tiers, the
 * worker's resident chunk cache, the fleet's staged chunk index —
 * consults one of these policies when it must shed bytes. "How Low Can
 * You Go?" (arXiv:2109.13319) argues the practical cold-start floor is
 * set by *sharing-aware* caching under a budget, so the registry holds
 * three built-ins spanning that design axis:
 *
 *  - Lru:            classic least-recently-used; the baseline.
 *  - SharingAware:   protects entries many resident functions lean on
 *                    (live manifest references + historical serves);
 *                    the paper-motivated policy.
 *  - PrefetchPinned: honors soft pin deadlines set by ControlPolicy
 *                    prefetch actions — a prefetched range is shielded
 *                    until its predicted invocation window passes,
 *                    then competes as plain LRU.
 *
 * Policies are pure functions over a candidate list (no internal
 * state, no RNG), so victim selection is deterministic regardless of
 * container iteration order — a requirement for the parallel kernel's
 * bit-identical digests. Hard pins (entries mid-fetch or mid-read) are
 * filtered by the cache *before* candidates reach a policy; a policy
 * only ever sees entries that are safe to drop.
 */

#ifndef VHIVE_STORAGE_EVICTION_HH
#define VHIVE_STORAGE_EVICTION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.hh"

namespace vhive::storage {

enum class EvictionPolicyKind
{
    /** Least-recently-used. */
    Lru,
    /** LRU weighted down by live references + lifetime serves. */
    SharingAware,
    /** LRU that shields prefetch-pinned entries until their window. */
    PrefetchPinned,
};

const char *evictionPolicyName(EvictionPolicyKind kind);

/** One evictable cache entry, as a policy sees it. */
struct EvictionCandidate
{
    /** Cache key (chunk hash / page id) — deterministic tie-break. */
    std::uint64_t key = 0;

    /** Bytes reclaimed by evicting this entry. */
    Bytes bytes = 0;

    /** Monotonic last-touch sequence (higher = more recent). */
    std::uint64_t lruSeq = 0;

    /**
     * Sharing signal: live references (resident manifests holding the
     * entry) plus serves it has absorbed. Higher = more shared.
     */
    std::int64_t shares = 0;

    /**
     * Soft prefetch shield: the entry was prefetched for a predicted
     * invocation window ending here; < now means expired. -1 = never
     * pinned.
     */
    Time pinnedUntil = -1;
};

/**
 * Victim selector. Stateless and deterministic: equal candidate lists
 * (in any order) and equal @p now always pick the same victim.
 */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Index of the candidate to evict, or -1 when @p candidates is
     * empty. Policies must always pick when candidates exist — byte
     * budgets are hard, so a soft shield (pinnedUntil) only reorders
     * preference, never blocks reclamation outright.
     */
    virtual std::ptrdiff_t
    pickVictim(const std::vector<EvictionCandidate> &candidates,
               Time now) const = 0;
};

/** The registry: one shared immutable instance per kind. */
const EvictionPolicy &evictionPolicyFor(EvictionPolicyKind kind);

} // namespace vhive::storage

#endif // VHIVE_STORAGE_EVICTION_HH
