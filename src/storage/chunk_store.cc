#include "storage/chunk_store.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace vhive::storage {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'V', 'H', 'C', 'M',
                                                'N', 'F', 'S', '1'};

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

size_t
varintSize(std::uint64_t v)
{
    size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

bool
getVarint(const std::vector<std::uint8_t> &in, size_t &pos,
          std::uint64_t &out)
{
    out = 0;
    int shift = 0;
    while (pos < in.size() && shift < 64) {
        std::uint8_t b = in[pos++];
        out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

/** CRC32 (IEEE, reflected) — same polynomial as the trace codec. */
std::uint32_t
manifestCrc(const std::uint8_t *data, size_t len)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace

// ----------------------------------------------------- ChunkManifest

Bytes
ChunkManifest::rawBytes() const
{
    Bytes total = 0;
    for (const ChunkRef &c : chunks)
        total += c.rawBytes;
    return total;
}

Bytes
ChunkManifest::storedBytes() const
{
    Bytes total = 0;
    for (const ChunkRef &c : chunks)
        total += c.storedBytes;
    return total;
}

std::pair<size_t, size_t>
ChunkManifest::chunkSpan(Bytes offset, Bytes len) const
{
    VHIVE_ASSERT(chunkBytes > 0 && !chunks.empty());
    VHIVE_ASSERT(offset >= 0 && len > 0);
    VHIVE_ASSERT(offset + len <= rawBytes());
    size_t first = static_cast<size_t>(offset / chunkBytes);
    size_t last = static_cast<size_t>((offset + len - 1) / chunkBytes);
    VHIVE_ASSERT(last < chunks.size());
    return {first, last};
}

// ----------------------------------------------------- ManifestCodec

Bytes
ManifestCodec::encodedSize(const ChunkManifest &m)
{
    size_t size = kMagic.size();
    size += varintSize(m.artifact.size()) + m.artifact.size();
    size += varintSize(static_cast<std::uint64_t>(m.chunkBytes));
    size += varintSize(m.chunks.size());
    for (const ChunkRef &c : m.chunks) {
        size += varintSize(c.hash);
        size += varintSize(static_cast<std::uint64_t>(c.rawBytes));
        size += varintSize(static_cast<std::uint64_t>(c.storedBytes));
    }
    size += 4; // crc
    return static_cast<Bytes>(size);
}

std::vector<std::uint8_t>
ManifestCodec::encode(const ChunkManifest &m)
{
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<size_t>(encodedSize(m)));
    for (std::uint8_t b : kMagic)
        out.push_back(b);
    putVarint(out, m.artifact.size());
    for (char ch : m.artifact)
        out.push_back(static_cast<std::uint8_t>(ch));
    putVarint(out, static_cast<std::uint64_t>(m.chunkBytes));
    putVarint(out, m.chunks.size());
    for (const ChunkRef &c : m.chunks) {
        putVarint(out, c.hash);
        putVarint(out, static_cast<std::uint64_t>(c.rawBytes));
        putVarint(out, static_cast<std::uint64_t>(c.storedBytes));
    }
    std::uint32_t crc = manifestCrc(out.data(), out.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    return out;
}

std::optional<ChunkManifest>
ManifestCodec::decode(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kMagic.size() + 4)
        return std::nullopt;
    if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
        return std::nullopt;

    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(
                      bytes[bytes.size() - 4 + static_cast<size_t>(i)])
                  << (8 * i);
    if (manifestCrc(bytes.data(), bytes.size() - 4) != stored)
        return std::nullopt;

    size_t pos = kMagic.size();
    std::uint64_t name_len = 0;
    if (!getVarint(bytes, pos, name_len) ||
        pos + name_len > bytes.size() - 4)
        return std::nullopt;
    ChunkManifest m;
    m.artifact.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                      bytes.begin() +
                          static_cast<std::ptrdiff_t>(pos + name_len));
    pos += name_len;

    std::uint64_t chunk_bytes = 0, count = 0;
    if (!getVarint(bytes, pos, chunk_bytes) ||
        !getVarint(bytes, pos, count))
        return std::nullopt;
    m.chunkBytes = static_cast<Bytes>(chunk_bytes);
    if (m.chunkBytes <= 0)
        return std::nullopt;
    m.chunks.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t hash = 0, raw = 0, comp = 0;
        if (!getVarint(bytes, pos, hash) ||
            !getVarint(bytes, pos, raw) || !getVarint(bytes, pos, comp))
            return std::nullopt;
        ChunkRef ref{hash, static_cast<Bytes>(raw),
                     static_cast<Bytes>(comp)};
        // Sizing invariants: every chunk but the last is exactly the
        // nominal size, none is empty or larger than its raw form
        // claims to fit, and stored bytes are positive.
        if (ref.rawBytes <= 0 || ref.storedBytes <= 0 ||
            ref.rawBytes > m.chunkBytes)
            return std::nullopt;
        if (i + 1 < count && ref.rawBytes != m.chunkBytes)
            return std::nullopt;
        m.chunks.push_back(ref);
    }
    if (pos != bytes.size() - 4)
        return std::nullopt;
    return m;
}

// --------------------------------------------------------- ChunkStore

bool
ChunkStore::contains(ChunkHash hash) const
{
    return chunks.find(hash) != chunks.end();
}

void
ChunkStore::setBudget(Bytes budget, EvictionPolicyKind kind,
                      bool refcount_protected)
{
    VHIVE_ASSERT(budget >= 0);
    _budget = budget;
    refcountProtected = refcount_protected;
    policy = budget > 0 ? &evictionPolicyFor(kind) : nullptr;
}

void
ChunkStore::erase(std::unordered_map<ChunkHash, Slot>::iterator it)
{
    _storedBytes -= it->second.storedBytes;
    _rawBytes -= it->second.rawBytes;
    chunks.erase(it);
}

bool
ChunkStore::addRef(const ChunkRef &ref, Time now)
{
    VHIVE_ASSERT(ref.rawBytes > 0 && ref.storedBytes > 0);
    _stats.logicalRawBytes += ref.rawBytes;
    auto it = chunks.find(ref.hash);
    if (it != chunks.end()) {
        // Content identity implies size identity: equal hashes must
        // describe the same bytes.
        VHIVE_ASSERT(it->second.rawBytes == ref.rawBytes &&
                     it->second.storedBytes == ref.storedBytes);
        ++it->second.refs;
        it->second.lruSeq = ++lruCounter;
        ++_stats.dedupHits;
        _stats.dedupSavedBytes += ref.storedBytes;
        return false;
    }
    Slot slot{ref.rawBytes, ref.storedBytes, 1};
    slot.lruSeq = ++lruCounter;
    auto ins = chunks.emplace(ref.hash, slot).first;
    _storedBytes += ref.storedBytes;
    _rawBytes += ref.rawBytes;
    ++_stats.inserts;
    _stats.peakStoredBytes =
        std::max(_stats.peakStoredBytes, _storedBytes);
    _stats.peakRawBytes = std::max(_stats.peakRawBytes, _rawBytes);
    // The admission itself must never evict the chunk being admitted
    // (the caller is about to use it); shield it for the enforcement.
    ++ins->second.pins;
    enforceBudget(now);
    --ins->second.pins;
    return true;
}

bool
ChunkStore::release(ChunkHash hash)
{
    auto it = chunks.find(hash);
    if (it == chunks.end())
        return false;
    VHIVE_ASSERT(it->second.refs > 0);
    if (--it->second.refs > 0)
        return false;
    if (_budget > 0 && refcountProtected) {
        // Budgeted staged index: the last reference dropping makes
        // the chunk *evictable*, not gone — a later re-stage of the
        // same content is a dedup hit instead of an upload, and the
        // budget decides when the bytes are actually reclaimed.
        return false;
    }
    erase(it);
    ++_stats.evictions;
    return true;
}

void
ChunkStore::touch(ChunkHash hash)
{
    auto it = chunks.find(hash);
    if (it == chunks.end())
        return;
    ++it->second.uses;
    it->second.lruSeq = ++lruCounter;
}

void
ChunkStore::pin(ChunkHash hash)
{
    auto it = chunks.find(hash);
    if (it != chunks.end())
        ++it->second.pins;
}

void
ChunkStore::unpin(ChunkHash hash)
{
    auto it = chunks.find(hash);
    if (it == chunks.end())
        return;
    VHIVE_ASSERT(it->second.pins > 0);
    --it->second.pins;
}

std::int64_t
ChunkStore::pinCount(ChunkHash hash) const
{
    auto it = chunks.find(hash);
    return it == chunks.end() ? 0 : it->second.pins;
}

void
ChunkStore::pinUntil(ChunkHash hash, Time until)
{
    auto it = chunks.find(hash);
    if (it != chunks.end())
        it->second.pinnedUntil =
            std::max(it->second.pinnedUntil, until);
}

void
ChunkStore::enforceBudget(Time now)
{
    if (_budget <= 0 || _storedBytes <= _budget)
        return;
    // Snapshot the evictable set once (pins cannot change mid-call —
    // nothing here suspends) and let the policy pick victims from the
    // shrinking list until the cap holds or nothing is reclaimable.
    // Policies are deterministic argmins with full tie-breaks, so the
    // map's iteration order never leaks into victim choice.
    std::vector<EvictionCandidate> cands;
    cands.reserve(chunks.size());
    for (const auto &[hash, slot] : chunks) {
        if (slot.pins > 0)
            continue;
        if (refcountProtected && slot.refs > 0)
            continue;
        EvictionCandidate c;
        c.key = hash;
        c.bytes = slot.storedBytes;
        c.lruSeq = slot.lruSeq;
        c.shares = slot.refs + slot.uses;
        c.pinnedUntil = slot.pinnedUntil;
        cands.push_back(c);
    }
    while (_storedBytes > _budget && !cands.empty()) {
        std::ptrdiff_t v = policy->pickVictim(cands, now);
        VHIVE_ASSERT(v >= 0);
        auto vi = static_cast<std::size_t>(v);
        auto it = chunks.find(cands[vi].key);
        VHIVE_ASSERT(it != chunks.end());
        ++_stats.budgetEvictions;
        _stats.budgetEvictedBytes += it->second.storedBytes;
        erase(it);
        cands[vi] = cands.back();
        cands.pop_back();
    }
}

std::int64_t
ChunkStore::refCount(ChunkHash hash) const
{
    auto it = chunks.find(hash);
    return it == chunks.end() ? 0 : it->second.refs;
}

std::int64_t
ChunkStore::residentChunks(const ChunkManifest &m) const
{
    std::int64_t n = 0;
    for (const ChunkRef &c : m.chunks)
        n += contains(c.hash) ? 1 : 0;
    return n;
}

double
ChunkStore::residentFraction(const ChunkManifest &m) const
{
    if (m.chunks.empty())
        return 0.0;
    return static_cast<double>(residentChunks(m)) /
           static_cast<double>(m.chunkCount());
}

Bytes
ChunkStore::addManifest(const ChunkManifest &m)
{
    Bytes uploaded = 0;
    for (const ChunkRef &c : m.chunks)
        if (addRef(c))
            uploaded += c.storedBytes;
    return uploaded;
}

void
ChunkStore::releaseManifest(const ChunkManifest &m)
{
    for (const ChunkRef &c : m.chunks)
        release(c.hash);
}

} // namespace vhive::storage
