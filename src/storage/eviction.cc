#include "storage/eviction.hh"

#include "util/logging.hh"

namespace vhive::storage {

namespace {

/**
 * Deterministic argmin over candidates: @p better(a, b) returns true
 * when a should be evicted before b. Ties inside the comparator fall
 * back to lruSeq then key, so victim choice never depends on the
 * order callers enumerated their hash maps in.
 */
template <typename Better>
std::ptrdiff_t
argVictim(const std::vector<EvictionCandidate> &cs, Better better)
{
    if (cs.empty())
        return -1;
    std::size_t best = 0;
    for (std::size_t i = 1; i < cs.size(); ++i)
        if (better(cs[i], cs[best]))
            best = i;
    return static_cast<std::ptrdiff_t>(best);
}

bool
olderThen(const EvictionCandidate &a, const EvictionCandidate &b)
{
    if (a.lruSeq != b.lruSeq)
        return a.lruSeq < b.lruSeq;
    return a.key < b.key;
}

class LruPolicy final : public EvictionPolicy
{
  public:
    const char *name() const override { return "lru"; }

    std::ptrdiff_t
    pickVictim(const std::vector<EvictionCandidate> &cs,
               Time) const override
    {
        return argVictim(cs, [](const EvictionCandidate &a,
                                const EvictionCandidate &b) {
            return olderThen(a, b);
        });
    }
};

class SharingAwarePolicy final : public EvictionPolicy
{
  public:
    const char *name() const override { return "sharing-aware"; }

    std::ptrdiff_t
    pickVictim(const std::vector<EvictionCandidate> &cs,
               Time) const override
    {
        // Least-shared first: an entry one function touched once goes
        // long before a runtime chunk every resident function maps.
        return argVictim(cs, [](const EvictionCandidate &a,
                                const EvictionCandidate &b) {
            if (a.shares != b.shares)
                return a.shares < b.shares;
            return olderThen(a, b);
        });
    }
};

class PrefetchPinnedPolicy final : public EvictionPolicy
{
  public:
    const char *name() const override { return "prefetch-pinned"; }

    std::ptrdiff_t
    pickVictim(const std::vector<EvictionCandidate> &cs,
               Time now) const override
    {
        // Unshielded entries (never pinned, or window passed) are
        // plain LRU. Only when every candidate is still inside its
        // predicted window does the shield yield — budgets are hard —
        // and then the entry whose window expires soonest goes first.
        bool any_unshielded = false;
        for (const EvictionCandidate &c : cs)
            if (c.pinnedUntil < now)
                any_unshielded = true;
        if (any_unshielded) {
            std::ptrdiff_t best = -1;
            for (std::size_t i = 0; i < cs.size(); ++i) {
                if (cs[i].pinnedUntil >= now)
                    continue;
                if (best < 0 ||
                    olderThen(cs[i],
                              cs[static_cast<std::size_t>(best)]))
                    best = static_cast<std::ptrdiff_t>(i);
            }
            return best;
        }
        return argVictim(cs, [](const EvictionCandidate &a,
                                const EvictionCandidate &b) {
            if (a.pinnedUntil != b.pinnedUntil)
                return a.pinnedUntil < b.pinnedUntil;
            return olderThen(a, b);
        });
    }
};

} // namespace

const char *
evictionPolicyName(EvictionPolicyKind kind)
{
    return evictionPolicyFor(kind).name();
}

const EvictionPolicy &
evictionPolicyFor(EvictionPolicyKind kind)
{
    static const LruPolicy lru;
    static const SharingAwarePolicy sharing;
    static const PrefetchPinnedPolicy pinned;
    switch (kind) {
      case EvictionPolicyKind::Lru:
        return lru;
      case EvictionPolicyKind::SharingAware:
        return sharing;
      case EvictionPolicyKind::PrefetchPinned:
        return pinned;
    }
    fatal("evictionPolicyFor: unknown kind %d",
          static_cast<int>(kind));
}

} // namespace vhive::storage
