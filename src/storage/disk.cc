#include "storage/disk.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vhive::storage {

namespace {

Duration
transferTime(Bytes bytes, double bw_bytes_per_sec)
{
    return static_cast<Duration>(static_cast<double>(bytes) /
                                 bw_bytes_per_sec * 1e9);
}

} // namespace

DiskParams
DiskParams::ssd()
{
    DiskParams p;
    p.name = "sata3-ssd";
    p.controllerFixed = usec(8);
    p.controllerBw = 1e9;     // SATA3 interface ceiling
    p.channels = 16;
    p.channelLatency = usec(70);
    p.channelBw = 100e6;
    p.stripeBytes = 128 * kKiB;
    p.seekLatency = 0;
    return p;
}

DiskParams
DiskParams::hdd()
{
    DiskParams p;
    p.name = "sata3-hdd-7200rpm";
    p.controllerFixed = usec(8);
    p.controllerBw = 1e9;
    p.channels = 1;           // a single actuator arm
    p.channelLatency = usec(50);
    p.channelBw = 150e6;      // outer-track streaming rate
    p.stripeBytes = 128 * kKiB;
    p.seekLatency = msec(6);  // avg seek + rotational delay
    return p;
}

DiskParams
DiskParams::remoteStorage()
{
    DiskParams p;
    p.name = "remote-disaggregated";
    // Serialized NIC/submission stage; transfers share a 10 GbE link.
    p.controllerFixed = usec(15);
    p.controllerBw = 1.17e9;
    // Parallel service-side streams, each dominated by the network
    // round trip plus the service's own storage access.
    p.channels = 8;
    p.channelLatency = usec(350);
    p.channelBw = 150e6;
    p.stripeBytes = 128 * kKiB;
    p.seekLatency = 0;
    return p;
}

DiskDevice::DiskDevice(sim::Simulation &sim, DiskParams params)
    : sim(sim), _params(std::move(params)),
      controller(sim, 1),
      channelBank(sim, _params.channels)
{
    VHIVE_ASSERT(_params.channels >= 1);
    VHIVE_ASSERT(_params.stripeBytes >= kPageSize);
}

sim::Task<void>
DiskDevice::read(Bytes lba, Bytes bytes)
{
    _stats.bytesRead += bytes;
    return transfer(lba, bytes, false);
}

sim::Task<void>
DiskDevice::write(Bytes lba, Bytes bytes)
{
    _stats.bytesWritten += bytes;
    return transfer(lba, bytes, true);
}

sim::Task<void>
DiskDevice::transfer(Bytes lba, Bytes bytes, bool is_write)
{
    (void)is_write; // writes share the read service model
    VHIVE_ASSERT(lba >= 0 && bytes > 0);
    ++_stats.requests;

    auto n_subs = (bytes + _params.stripeBytes - 1) / _params.stripeBytes;
    sim::Latch done(sim, n_subs);
    Bytes off = 0;
    while (off < bytes) {
        Bytes chunk = std::min<Bytes>(_params.stripeBytes, bytes - off);
        sim.spawn(subTransfer(lba + off, chunk, &done));
        off += chunk;
    }
    co_await done.wait();
}

sim::Task<void>
DiskDevice::subTransfer(Bytes lba, Bytes bytes, sim::Latch *done)
{
    ++_stats.subRequests;

    // Stage 1: serialized controller / host-interface submission.
    co_await controller.acquire();
    co_await sim.delay(_params.controllerFixed +
                       transferTime(bytes, _params.controllerBw));
    controller.release();

    // Stage 2: media access on one of the parallel channels.
    co_await channelBank.acquire();
    Duration media = _params.channelLatency +
                     transferTime(bytes, _params.channelBw);
    if (_params.seekLatency > 0 && lba != lastEndLba) {
        media += _params.seekLatency;
        ++_stats.seeks;
    }
    lastEndLba = lba + bytes;
    co_await sim.delay(media);
    channelBank.release();

    done->arrive();
}

} // namespace vhive::storage
