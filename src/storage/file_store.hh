/**
 * @file
 * Extent-mapped files on a DiskDevice plus a host page-cache model.
 *
 * Three read paths with distinct cost structures (this split is what
 * the paper's Fig. 7 walk exploits):
 *
 *  - readBuffered(): the pread()/syscall path. Missing pages are
 *    coalesced into windows, submitted through a serialized block-layer
 *    "plug" stage (cheap), pipelined up to a depth, and inserted into
 *    the cache with per-page copy costs.
 *  - readDirect(): the O_DIRECT path. One device request for the whole
 *    range (striped internally by the device), no cache pollution; only
 *    per-page pin costs. This is REAP's WS-file fetch (Sec. 5.2.3).
 *  - faultRead(): the mmap lazy-fault path used by vanilla snapshot
 *    restore. Every miss pays fault handling plus a substantially more
 *    expensive serialized block-layer stage (fault-around, page-table
 *    and mmap_sem work), which is why lazy paging extracts only tens of
 *    MB/s from a disk capable of hundreds (Sec. 4.2, Fig. 9).
 */

#ifndef VHIVE_STORAGE_FILE_STORE_HH
#define VHIVE_STORAGE_FILE_STORE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "storage/disk.hh"
#include "util/units.hh"

namespace vhive::storage {

/** Opaque handle to a file inside a FileStore. */
using FileId = std::int32_t;

constexpr FileId kInvalidFile = -1;

/** Page-cache and I/O-path calibration constants. */
struct IoPathParams
{
    /** Max bytes fetched per buffered-miss device request. */
    Bytes windowBytes = 128 * kKiB;

    /** Concurrent in-flight windows for one buffered read. */
    int readPipelineDepth = 4;

    /** Serialized block-layer submission cost, pread path. */
    Duration preadMissPlug = usec(30);

    /** Serialized block-layer + fault machinery cost, mmap-fault path. */
    Duration faultMissPlug = usec(120);

    /** Copy-to-user cost per cached page (pread hit or after fill). */
    Duration perPageCopy = static_cast<Duration>(300);

    /** Page-cache insertion cost per page. */
    Duration perPageInsert = static_cast<Duration>(400);

    /** Per-page pin/iovec preparation cost for O_DIRECT. */
    Duration perPagePin = static_cast<Duration>(1500);

    /** Fixed syscall overhead per read/write call. */
    Duration syscall = usec(2);

    /** Minor-fault cost when the page is already resident in cache. */
    Duration minorFault = usec(2);

    /**
     * Extra bytes the kernel fault path reads ahead past the faulting
     * run. Zero for SSDs (the paper shows read-ahead is defeated by
     * the sparse access pattern); the HDD elevator/readahead amortizes
     * seeks over ~48 KiB windows (Sec. 6.3 HDD study).
     */
    Bytes faultReadahead = 0;
};

/** Statistics for cache behaviour, readable by tests and benches. */
struct FileStoreStats
{
    std::int64_t cacheHits = 0;
    std::int64_t cacheMisses = 0;
    std::int64_t directReads = 0;
    std::int64_t faultMisses = 0;
    std::int64_t dropCacheCalls = 0;
};

/**
 * A flat namespace of extent-allocated files over one DiskDevice, with
 * a shared page cache. All sizes are page-aligned internally.
 */
class FileStore
{
  public:
    FileStore(sim::Simulation &sim, DiskDevice &disk,
              IoPathParams params = IoPathParams{});

    FileStore(const FileStore &) = delete;
    FileStore &operator=(const FileStore &) = delete;

    /** Create a file of @p bytes (rounded up to pages). */
    FileId createFile(const std::string &name, Bytes bytes);

    /** Look up a file by name; kInvalidFile when absent. */
    FileId lookup(const std::string &name) const;

    /** Size in bytes (page aligned). */
    Bytes fileSize(FileId f) const;

    /** File name (for diagnostics). */
    const std::string &fileName(FileId f) const;

    /**
     * Grow or shrink a file. Growth reallocates the extent, dropping
     * cached pages (simplified; only used when re-recording WS files).
     */
    void truncate(FileId f, Bytes bytes);

    /** pread()-style buffered read; populates the cache. */
    sim::Task<void> readBuffered(FileId f, Bytes offset, Bytes len);

    /** O_DIRECT read: bypasses and does not populate the cache. */
    sim::Task<void> readDirect(FileId f, Bytes offset, Bytes len);

    /**
     * mmap lazy-fault service of @p len bytes at @p offset: the cost of
     * the kernel bringing this range in on a major fault. Populates the
     * cache. Cached ranges cost only a minor fault.
     */
    sim::Task<void> faultRead(FileId f, Bytes offset, Bytes len);

    /**
     * Buffered write: dirties cache pages at copy cost and schedules
     * asynchronous writeback to the device (not awaited).
     */
    sim::Task<void> writeBuffered(FileId f, Bytes offset, Bytes len);

    /** Synchronous O_DIRECT write (awaits device completion). */
    sim::Task<void> writeDirect(FileId f, Bytes offset, Bytes len);

    /** Whether every page of the range is cache-resident. */
    bool isCached(FileId f, Bytes offset, Bytes len) const;

    /** Drop the entire page cache (`echo 3 > drop_caches`). */
    void dropCaches();

    /** Drop one file's cached pages (fadvise DONTNEED). */
    void dropFileCaches(FileId f);

    /**
     * Drop the cached pages covering [offset, offset+len) of one file
     * (ranged fadvise DONTNEED) — the page-cache tier budget's
     * eviction primitive. Out-of-range pages are ignored.
     */
    void dropFileCacheRange(FileId f, Bytes offset, Bytes len);

    const FileStoreStats &stats() const { return _stats; }
    void resetStats() { _stats = FileStoreStats{}; }

    DiskDevice &device() { return disk; }
    const IoPathParams &params() const { return _params; }

  private:
    struct File {
        std::string name;
        Bytes baseLba = 0;
        Bytes size = 0;
        std::vector<bool> cached; // one bit per page
    };

    File &get(FileId f);
    const File &get(FileId f) const;

    /** Fetch one missing chunk through the buffered path. */
    sim::Task<void> fetchWindow(FileId f, Bytes offset, Bytes len,
                                sim::Semaphore *pipeline,
                                sim::Latch *done);

    sim::Simulation &sim;
    DiskDevice &disk;
    IoPathParams _params;
    FileStoreStats _stats;
    // deque, not vector: the coroutine I/O paths hold File& across
    // suspension points, and a concurrent createFile (another
    // invocation's cold start on the same worker) must not invalidate
    // them. Files are append-only, so deque references are stable.
    std::deque<File> files;
    sim::Semaphore plug; // serialized block-layer submission stage
    Bytes nextLba = 0;
};

} // namespace vhive::storage

#endif // VHIVE_STORAGE_FILE_STORE_HH
